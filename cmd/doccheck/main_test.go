package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCleanPackagesPass runs the checker over the packages CI gates on,
// the public SDK packages included.
func TestCleanPackagesPass(t *testing.T) {
	var out bytes.Buffer
	dirs := []string{
		"../../orthrus",
		"../../orthrus/scenariodsl",
		"../../internal/registry",
		"../../internal/scenario",
		"../../internal/partition",
		"../../internal/order",
		"../../internal/baseline",
	}
	if err := run(dirs, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "clean") {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

// TestAPISurfaceGoldens is the API-surface gate: the public packages'
// exported API must match the snapshots under docs/api/. An intentional
// API change regenerates them with
//
//	go run ./cmd/doccheck -surface ./orthrus > docs/api/orthrus.txt
//	go run ./cmd/doccheck -surface ./orthrus/scenariodsl > docs/api/orthrus_scenariodsl.txt
func TestAPISurfaceGoldens(t *testing.T) {
	cases := []struct{ dir, golden string }{
		{"../../orthrus", "../../docs/api/orthrus.txt"},
		{"../../orthrus/scenariodsl", "../../docs/api/orthrus_scenariodsl.txt"},
	}
	for _, c := range cases {
		var got bytes.Buffer
		if err := surface(c.dir, &got); err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(c.golden)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != string(want) {
			t.Errorf("%s: API surface drifted from %s — if the change is intentional, regenerate the snapshot (see test doc)\n--- got ---\n%s",
				c.dir, c.golden, got.String())
		}
	}
}

// TestSurfaceSkipsUnexported checks the surface renderer's filtering:
// unexported symbols, methods on unexported types and unexported struct
// fields stay out of the snapshot.
func TestSurfaceSkipsUnexported(t *testing.T) {
	dir := t.TempDir()
	src := `package x

type Public struct {
	Visible int
	hidden  int
}

type private struct{ X int }

func (p private) Method() {}

func (p Public) Method() {}

func helper() {}

const C = 1
const d = 2

var Exported, internalCache = 1, 2
`
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := surface(dir, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"type Public struct", "Visible", "func (p Public) Method()", "const C = 1", "var Exported = 1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("surface missing %q:\n%s", want, s)
		}
	}
	for _, banned := range []string{"hidden", "private", "helper", "d = 2", "internalCache"} {
		if strings.Contains(s, banned) {
			t.Fatalf("surface leaks %q:\n%s", banned, s)
		}
	}
}

// TestUndocumentedSymbolFails feeds a synthetic package with one
// documented and one undocumented export and expects only the latter
// reported.
func TestUndocumentedSymbolFails(t *testing.T) {
	dir := t.TempDir()
	src := `package x

// Documented is fine.
func Documented() {}

func Undocumented() {}

type Missing struct{}

// Grouped declarations are covered by the group comment.
const (
	A = 1
	B = 2
)
`
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{dir}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("undocumented symbols passed")
	}
	msg := err.Error()
	for _, want := range []string{"Undocumented", "Missing"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error does not name %s: %v", want, err)
		}
	}
	for _, clean := range []string{"Documented", ": A", ": B"} {
		if strings.Contains(msg, clean) {
			t.Fatalf("error flags documented symbol %s: %v", clean, err)
		}
	}
}

func TestNoArgsUsage(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("expected usage error")
	}
}
