package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCleanPackagesPass runs the checker over the packages CI gates on.
func TestCleanPackagesPass(t *testing.T) {
	var out bytes.Buffer
	dirs := []string{
		"../../internal/scenario",
		"../../internal/partition",
		"../../internal/order",
		"../../internal/baseline",
	}
	if err := run(dirs, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "clean") {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

// TestUndocumentedSymbolFails feeds a synthetic package with one
// documented and one undocumented export and expects only the latter
// reported.
func TestUndocumentedSymbolFails(t *testing.T) {
	dir := t.TempDir()
	src := `package x

// Documented is fine.
func Documented() {}

func Undocumented() {}

type Missing struct{}

// Grouped declarations are covered by the group comment.
const (
	A = 1
	B = 2
)
`
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{dir}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("undocumented symbols passed")
	}
	msg := err.Error()
	for _, want := range []string{"Undocumented", "Missing"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error does not name %s: %v", want, err)
		}
	}
	for _, clean := range []string{"Documented", ": A", ": B"} {
		if strings.Contains(msg, clean) {
			t.Fatalf("error flags documented symbol %s: %v", clean, err)
		}
	}
}

func TestNoArgsUsage(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("expected usage error")
	}
}
