package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

// surface renders a package directory's exported API as deterministic
// text: one entry per exported declaration (func bodies and doc comments
// stripped, unexported struct fields elided), sorted lexically. CI diffs
// this against a golden snapshot under docs/api/ so accidental breaking
// changes to the public packages fail the build.
func surface(dir string, w io.Writer) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return err
	}
	var names []string
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "package %s\n", name)
		var entries []string
		for _, file := range pkgs[name].Files {
			for _, decl := range file.Decls {
				for _, rendered := range renderDecl(fset, decl) {
					entries = append(entries, rendered)
				}
			}
		}
		sort.Strings(entries)
		for _, e := range entries {
			fmt.Fprintf(w, "\n%s\n", e)
		}
	}
	return nil
}

// renderDecl returns the exported API entries of one top-level
// declaration, already formatted.
func renderDecl(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return nil
		}
		fn := *d
		fn.Doc, fn.Body = nil, nil
		return []string{render(fset, &fn)}
	case *ast.GenDecl:
		if d.Tok == token.IMPORT {
			return nil
		}
		var out []string
		for _, spec := range d.Specs {
			s := renderSpec(fset, d.Tok, spec)
			if s != "" {
				out = append(out, s)
			}
		}
		return out
	}
	return nil
}

// renderSpec formats one exported spec of a const/var/type declaration,
// or "" if the spec exports nothing.
func renderSpec(fset *token.FileSet, tok token.Token, spec ast.Spec) string {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		if !s.Name.IsExported() {
			return ""
		}
		ts := *s
		ts.Doc, ts.Comment = nil, nil
		if st, ok := ts.Type.(*ast.StructType); ok {
			ts.Type = exportedFieldsOnly(st)
		}
		return render(fset, &ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{&ts}})
	case *ast.ValueSpec:
		vs := *s
		vs.Doc, vs.Comment = nil, nil
		// Keep only exported names; initializers stay only while they can
		// be attributed name-by-name, otherwise (tuple assignment mixing
		// exported and unexported names) they are elided with the names.
		var names []*ast.Ident
		var values []ast.Expr
		for i, name := range s.Names {
			if !name.IsExported() {
				continue
			}
			names = append(names, name)
			if len(s.Values) == len(s.Names) {
				values = append(values, s.Values[i])
			}
		}
		if len(names) == 0 {
			return ""
		}
		vs.Names = names
		vs.Values = values
		return render(fset, &ast.GenDecl{Tok: tok, Specs: []ast.Spec{&vs}})
	}
	return ""
}

// exportedFieldsOnly copies a struct type keeping exported (and exported
// embedded) fields: unexported fields are implementation detail, not API.
func exportedFieldsOnly(st *ast.StructType) *ast.StructType {
	out := &ast.StructType{Struct: st.Struct, Fields: &ast.FieldList{Opening: st.Fields.Opening, Closing: st.Fields.Closing}}
	for _, f := range st.Fields.List {
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(f.Names) == 0 {
			// Embedded field: keep if its type name is exported.
			if id := embeddedName(f.Type); id != nil && id.IsExported() {
				out.Fields.List = append(out.Fields.List, &ast.Field{Type: f.Type})
			}
			continue
		}
		if len(names) > 0 {
			out.Fields.List = append(out.Fields.List, &ast.Field{Names: names, Type: f.Type, Tag: f.Tag})
		}
	}
	return out
}

// embeddedName resolves the identifier of an embedded field type.
func embeddedName(t ast.Expr) *ast.Ident {
	switch e := t.(type) {
	case *ast.Ident:
		return e
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// render pretty-prints a node against an empty file set, discarding source
// positions, so the formatting is a pure function of the AST — blank lines
// and comments from the original source cannot leak into the snapshot.
func render(_ *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 8}
	if err := cfg.Fprint(&buf, token.NewFileSet(), node); err != nil {
		return fmt.Sprintf("render error: %v", err)
	}
	return buf.String()
}
