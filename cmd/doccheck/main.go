// Command doccheck enforces the godoc contract: every exported top-level
// symbol in the given package directories must carry a doc comment. CI
// runs it over the packages whose documentation this repository promises
// (see ARCHITECTURE.md); it exits nonzero listing any undocumented symbol.
//
//	go run ./cmd/doccheck ./internal/scenario ./internal/order
//
// With -surface it instead prints the directory's exported API as
// deterministic text — the API-surface gate: CI diffs the public packages
// against golden snapshots under docs/api/, so accidental breaking changes
// fail the build.
//
//	go run ./cmd/doccheck -surface ./orthrus | diff -u docs/api/orthrus.txt -
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-surface" {
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: doccheck -surface <package-dir>")
			os.Exit(1)
		}
		if err := surface(args[1], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := run(args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run checks every directory and returns an error naming each exported
// symbol that lacks a doc comment.
func run(dirs []string, w io.Writer) error {
	if len(dirs) == 0 {
		return fmt.Errorf("usage: doccheck <package-dir>...")
	}
	var missing []string
	for _, dir := range dirs {
		m, err := checkDir(dir)
		if err != nil {
			return err
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		return fmt.Errorf("undocumented exported symbols:\n  %s", strings.Join(missing, "\n  "))
	}
	fmt.Fprintf(w, "doccheck: %d package dir(s) clean\n", len(dirs))
	return nil
}

// checkDir parses one package directory (tests excluded) and returns
// "file:line: symbol" for every undocumented exported declaration.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc.Text() == "" && receiverExported(d) {
						report(d.Pos(), funcName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// receiverExported reports whether d is a plain function or a method on an
// exported type; methods on unexported types (e.g. heap plumbing) are not
// part of the godoc surface.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	recv := d.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	id, ok := recv.(*ast.Ident)
	return !ok || id.IsExported()
}

// funcName renders a function or method name, receiver included.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	recv := d.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// checkGenDecl handles type/const/var declarations: a doc comment on the
// grouped declaration covers all its specs, otherwise each exported spec
// needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	if d.Tok == token.IMPORT || d.Doc.Text() != "" {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc.Text() == "" && s.Comment.Text() == "" {
				report(s.Pos(), s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc.Text() != "" || s.Comment.Text() != "" {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), name.Name)
				}
			}
		}
	}
}
