package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/orthrus"
)

// stubNetRunner returns a canned net artifact instantly so the harness
// plumbing is testable without flooding real transports.
func stubNetRunner(opts orthrus.NetBenchOptions) (*orthrus.NetBenchArtifact, error) {
	return &orthrus.NetBenchArtifact{
		Schema: orthrus.NetBenchSchema,
		Cells: []orthrus.NetBenchCell{
			{Backend: "proc", N: 4, Msgs: 1000, Bytes: 270000, MsgsPerSec: 250000,
				MBPerSec: 67.5, AllocsPerMsg: 9.0, P50LatencyNS: 2_000_000, P99LatencyNS: 8_000_000},
			{Backend: "tcp", N: 10, Msgs: 1000, Bytes: 270000, MsgsPerSec: 150000,
				MBPerSec: 40.5, AllocsPerMsg: 10.0, P50LatencyNS: 9_000_000, P99LatencyNS: 20_000_000},
		},
	}, nil
}

func TestNetBenchArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_net.json")
	var out, errOut bytes.Buffer
	if err := runNetBench(&out, &errOut, path, false, stubNetRunner); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc orthrus.NetBenchArtifact
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "orthrus-bench-net/v1" {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Cells) != 2 || doc.Cells[0].Backend != "proc" || doc.Cells[1].N != 10 {
		t.Fatalf("cells not preserved: %+v", doc.Cells)
	}
	for _, header := range []string{"backend", "msgs/s", "allocs/msg", "p99-lat"} {
		if !strings.Contains(out.String(), header) {
			t.Fatalf("table missing %q:\n%s", header, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "wrote "+path) {
		t.Fatalf("stderr missing artifact note: %q", errOut.String())
	}
}

func TestNetBenchQuietAndErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_net.json")
	var out, errOut bytes.Buffer
	if err := runNetBench(&out, &errOut, path, true, stubNetRunner); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("quiet mode still rendered:\n%s", out.String())
	}
	boom := errors.New("transport exploded")
	err := runNetBench(&out, &errOut, path, true,
		func(orthrus.NetBenchOptions) (*orthrus.NetBenchArtifact, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("runner error not propagated: %v", err)
	}
}

// TestNetBenchFlagConflicts pins the CLI seams: the two harnesses are
// mutually exclusive, figure-mode flags are rejected with -bench-net,
// and -compare (a perf-artifact differ) does not apply to it.
func TestNetBenchFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "-bench-net"},
		{"-bench-net", "-fig", "3"},
		{"-bench-net", "-scale", "0.5"},
		{"-bench-net", "-compare", "old.json"},
	} {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Fatalf("run(%v) accepted conflicting flags", args)
		}
	}
}
