// Command orthrus-bench regenerates the paper's evaluation figures
// (Sec. VII). Each figure prints the same series the paper plots.
//
// Usage:
//
//	orthrus-bench -fig all -scale 0.25   # quick pass over every figure
//	orthrus-bench -fig 3 -scale 1        # full Fig. 3 sweep (slow)
//	orthrus-bench -fig 6                 # latency breakdown only
//
// Scale in (0,1] shrinks run durations, loads and the replica-count axis
// proportionally; 1 is the paper-sized configuration.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1b, 3, 4, 5, 6, 7, 8, or all")
	scale := flag.Float64("scale", 0.25, "experiment scale in (0,1]; 1 = paper-sized")
	flag.Parse()

	w := os.Stdout
	switch *fig {
	case "1b":
		experiments.Fig1b(w, *scale)
	case "3":
		experiments.Fig3(w, *scale)
	case "4":
		experiments.Fig4(w, *scale)
	case "5":
		experiments.Fig5(w, *scale)
	case "6":
		experiments.Fig6(w, *scale)
	case "7":
		experiments.Fig7(w, *scale)
	case "8":
		experiments.Fig8(w, *scale)
	case "all":
		experiments.All(w, *scale)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 1b, 3, 4, 5, 6, 7, 8, all)\n", *fig)
		os.Exit(2)
	}
}
