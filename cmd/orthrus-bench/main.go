// Command orthrus-bench regenerates the paper's evaluation figures
// (Sec. VII) through the public orthrus SDK. Each figure prints the same
// series the paper plots, and -json additionally writes the structured
// results as a machine-checkable artifact.
//
// Usage:
//
//	orthrus-bench -list                             # protocols, figures, scenarios
//	orthrus-bench -fig all -scale 0.25              # quick pass over every figure
//	orthrus-bench -fig 3,4 -scale 1                 # full Fig. 3+4 sweeps (slow)
//	orthrus-bench -fig 6                            # latency breakdown only
//	orthrus-bench -fig S1 -scenario crash-recover   # one dynamic-fault scenario
//	orthrus-bench -parallel 1                       # force a serial run
//	orthrus-bench -json BENCH_results.json          # write the JSON artifact
//	orthrus-bench -bench -q                         # hot-path perf harness -> BENCH_scale.json
//	orthrus-bench -bench -compare old.json          # perf harness + per-cell delta table vs old.json
//
// Scale in (0,1] shrinks run durations, loads and the replica-count axis
// proportionally; 1 is the paper-sized configuration. Runs fan out across
// all cores by default (-parallel 0); results are identical to a serial
// run, only faster.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/orthrus"
	"repro/orthrus/scenariodsl"
)

// artifact is the document -json writes: schema identifier, the scale the
// suite ran at, and one FigureResult per requested figure. It contains no
// timing metadata, so serial and parallel runs write identical bytes.
type artifact struct {
	Schema  string                 `json:"schema"`
	Scale   float64                `json:"scale"`
	Figures []orthrus.FigureResult `json:"figures"`
}

// selectFigures expands a -fig value into a deduplicated id list: "all"
// (alone or inside a comma-separated list) selects every figure, repeated
// ids run once, and order of first mention is preserved. Unknown ids are
// caught later by orthrus.RunFigures.
func selectFigures(fig string) ([]string, error) {
	seen := map[string]bool{}
	var ids []string
	for _, id := range strings.Split(fig, ",") {
		id = strings.TrimSpace(id)
		if id == "" || seen[id] {
			continue
		}
		if id == "all" {
			for _, all := range orthrus.FigureIDs() {
				if !seen[all] {
					seen[all] = true
					ids = append(ids, all)
				}
			}
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("-fig selects no figures (want %s, or all)", strings.Join(orthrus.FigureIDs(), ", "))
	}
	return ids, nil
}

// printList enumerates everything the registry-driven toolchain knows:
// registered protocols, reproducible figures, preset scenarios and
// Byzantine attack presets.
func printList(w io.Writer) {
	fmt.Fprintln(w, "protocols (-protocol names are case-sensitive):")
	for _, p := range orthrus.Protocols() {
		fmt.Fprintf(w, "  %-8s %s\n", p.Name(), p.Description())
	}
	fmt.Fprintln(w, "\nfigures (-fig):")
	for _, f := range orthrus.Figures() {
		fmt.Fprintf(w, "  %-3s %s\n", f.ID, f.Title)
	}
	xv := orthrus.XValInfo()
	fmt.Fprintf(w, "  %-3s %s (wall-clock; excluded from \"all\")\n", xv.ID, xv.Title)
	sk := orthrus.SoakInfo()
	fmt.Fprintf(w, "  %-3s %s (long-horizon; excluded from \"all\")\n", sk.ID, sk.Title)
	fmt.Fprintln(w, "\nscenarios (-scenario, figure S1 only):")
	for _, name := range orthrus.ScenarioPresets() {
		fmt.Fprintf(w, "  %-19s %s\n", name, scenariodsl.Describe(name))
	}
	fmt.Fprintln(w, "\nattack presets (figure S2):")
	for _, name := range orthrus.AttackPresets() {
		fmt.Fprintf(w, "  %-19s %s\n", name, scenariodsl.Describe(name))
	}
}

// errAlreadyReported marks failures the FlagSet has already printed to
// stderr, so main exits nonzero without repeating them.
var errAlreadyReported = errors.New("orthrus-bench: flag parsing failed")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errAlreadyReported) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("orthrus-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "comma-separated figures to regenerate: "+strings.Join(orthrus.FigureIDs(), ", ")+", "+orthrus.XValID+", "+orthrus.SoakID+", or all (which excludes the wall-clock "+orthrus.XValID+" and long-horizon "+orthrus.SoakID+")")
	scn := fs.String("scenario", "", "comma-separated S1 scenarios to run: "+strings.Join(orthrus.ScenarioPresets(), ", ")+" (default all; only affects fig S1)")
	scale := fs.Float64("scale", 0.25, "experiment scale in (0,1]; 1 = paper-sized")
	parallel := fs.Int("parallel", 0, "worker pool size: 0 = all cores, 1 = serial")
	jsonPath := fs.String("json", "", "write structured results to this path (e.g. BENCH_results.json; with -bench, defaults to BENCH_scale.json)")
	quiet := fs.Bool("q", false, "suppress the text rendering (useful with -json)")
	list := fs.Bool("list", false, "list registered protocols, figures and scenario presets, then exit")
	bench := fs.Bool("bench", false, "run the hot-path perf harness instead of figures and write the orthrus-bench-perf/v2 artifact")
	benchNet := fs.Bool("bench-net", false, "run the real-transport perf harness instead of figures and write the orthrus-bench-net/v1 artifact (BENCH_net.json)")
	compare := fs.String("compare", "", "with -bench: print a per-cell delta table (ns/op, allocs/op, events/s) against this orthrus-bench-perf/v2 artifact")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errAlreadyReported
	}

	if *list {
		printList(stdout)
		return nil
	}

	if *bench || *benchNet {
		// The perf harnesses have fixed grids: figure-mode flags would be
		// silently ignored, so an explicit one is a usage error rather
		// than a surprise artifact.
		mode := "-bench"
		if *benchNet {
			mode = "-bench-net"
		}
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "fig", "scenario", "parallel", "scale":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			return fmt.Errorf("orthrus-bench: %s only apply to figure runs; drop with %s", strings.Join(conflicts, ", "), mode)
		}
	}
	if *bench && *benchNet {
		return fmt.Errorf("orthrus-bench: -bench and -bench-net are separate harnesses with separate artifacts; run them one at a time")
	}
	if *bench {
		return runPerfBench(stdout, stderr, *jsonPath, *compare, *quiet, func(cfg orthrus.Config) (*orthrus.Result, error) {
			return cfg.Run(context.Background())
		})
	}
	if *benchNet {
		if *compare != "" {
			return fmt.Errorf("orthrus-bench: -compare diffs orthrus-bench-perf/v2 artifacts and only applies to -bench")
		}
		return runNetBench(stdout, stderr, *jsonPath, *quiet, orthrus.RunNetBench)
	}
	if *compare != "" {
		return fmt.Errorf("orthrus-bench: -compare requires -bench (it diffs orthrus-bench-perf/v2 artifacts)")
	}

	// Reject rather than clamp out-of-range scales: the artifact records
	// the scale verbatim, so it must be the scale the figures ran at.
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("-scale must be in (0,1], got %v", *scale)
	}

	ids, err := selectFigures(*fig)
	if err != nil {
		return err
	}
	var scenarios []string
	seenScn := map[string]bool{}
	for _, name := range strings.Split(*scn, ",") {
		if name = strings.TrimSpace(name); name != "" && !seenScn[name] {
			seenScn[name] = true
			scenarios = append(scenarios, name)
		}
	}

	// The X-val and F-soak figures run outside the deterministic suite
	// (X-val's real-measured cells are wall-clock experiments; a soak cell
	// is hours of virtual time on the serial kernel), so they dispatch
	// through RunXVal/RunSoak; the remaining ids go through RunFigures as
	// one suite. Results reassemble in the order requested.
	simIDs := make([]string, 0, len(ids))
	special := map[string]orthrus.FigureResult{}
	runXVal, runSoak := false, false
	for _, id := range ids {
		switch id {
		case orthrus.XValID:
			runXVal = true
		case orthrus.SoakID:
			runSoak = true
		default:
			simIDs = append(simIDs, id)
		}
	}

	start := time.Now()
	var results []orthrus.FigureResult
	if len(simIDs) > 0 {
		var err error
		results, err = orthrus.RunFigures(context.Background(), simIDs,
			orthrus.FigureOptions{Scenarios: scenarios, Workers: *parallel, Scale: *scale})
		if err != nil {
			return err
		}
	}
	if runXVal {
		xv, err := orthrus.RunXVal(context.Background(), *scale)
		if err != nil {
			return err
		}
		special[orthrus.XValID] = xv
	}
	if runSoak {
		sk, err := orthrus.RunSoak(context.Background(), *scale)
		if err != nil {
			return err
		}
		special[orthrus.SoakID] = sk
	}
	if len(special) > 0 {
		// Reinsert at the positions -fig requested them.
		ordered := make([]orthrus.FigureResult, 0, len(results)+len(special))
		rest := results
		for _, id := range ids {
			if f, ok := special[id]; ok {
				ordered = append(ordered, f)
				continue
			}
			ordered = append(ordered, rest[0])
			rest = rest[1:]
		}
		results = ordered
	}
	if !*quiet {
		for _, f := range results {
			f.Render(stdout)
		}
	}
	fmt.Fprintf(stderr, "ran %d figure(s) in %.1fs\n", len(results), time.Since(start).Seconds())

	if *jsonPath != "" {
		doc := artifact{Schema: "orthrus-bench/v2", Scale: *scale, Figures: results}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *jsonPath)
	}
	return nil
}
