package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/orthrus"
	"repro/orthrus/scenariodsl"
)

// The -bench perf harness: instead of regenerating figures, it measures
// the simulator hot path itself — wall time, allocations and simulated
// events per second for a fixed (protocol, n) grid — and writes the
// BENCH_scale.json artifact (schema orthrus-bench-perf/v2) that CI runs
// in smoke mode and uploads. The base grid matches the repository's
// BenchmarkScale sub-benchmarks one-to-one (bench_test.go; -short trims
// its large cells) so go-test numbers and the artifact measure identical
// work: message-level PBFT under the NIC model for n < 32, the analytic
// SB above. Two tiers extend the base grid:
//
//   - kernel-pair cells (Orthrus n = 50, 100, message-level, NIC off,
//     short window — BenchmarkScaleParallel's grid): each is measured
//     under the serial kernel and again under the parallel kernel, and
//     the cell carries parallel_* columns including the speedup and a
//     determinism cross-check (the two runs must agree bit-for-bit, or
//     the harness errors out).
//   - F-scale cells (Orthrus n = 250, 500, 1000, analytic, pulse-damped
//     like the F-scale figure's large tier): the large-n sweep the
//     ROADMAP targets, kept seconds-scale per cell.
//   - soak cell (Orthrus n = 25, 120 s of virtual time, crash/recover
//     churn, state transfer on, live-set sampling — a shortened F-soak
//     cell): its peak_live_set / final_live_set columns are the committed
//     baseline CI's soak-smoke job gates memory growth against.

// perfSchema identifies the artifact format. v2 fields per cell: ns/op,
// allocs/op, bytes/op, sim-events and sim-events/sec, plus the measured
// throughput for context; kernel-pair cells add parallel_ns_per_op,
// parallel_workers, parallel_shards and parallel_speedup. Timing fields
// vary with the host; allocs/op and sim_events are deterministic.
const perfSchema = "orthrus-bench-perf/v2"

// perfCell is one measured (protocol, n) point. The parallel_* columns
// are only present on kernel-pair cells: the same configuration measured
// again under the parallel kernel, with the speedup as serial ns/op over
// parallel ns/op (worker counts and shard counts give it context — on a
// single-core host the speedup hovers around 1 by construction).
type perfCell struct {
	Protocol        string  `json:"protocol"`
	N               int     `json:"n"`
	Tier            string  `json:"tier,omitempty"`
	AnalyticSB      bool    `json:"analytic_sb"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     uint64  `json:"allocs_per_op"`
	BytesPerOp      uint64  `json:"bytes_per_op"`
	SimEvents       uint64  `json:"sim_events"`
	SimEventsPerSec float64 `json:"sim_events_per_sec"`
	TputKTPS        float64 `json:"tput_ktps"`

	ParallelNsPerOp int64   `json:"parallel_ns_per_op,omitempty"`
	ParallelWorkers int     `json:"parallel_workers,omitempty"`
	ParallelShards  int     `json:"parallel_shards,omitempty"`
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`

	// Soak-cell columns: the run's peak and final cluster-wide live-set
	// census (deterministic, like allocs/op). The soak-smoke CI gate
	// compares a freshly measured peak against the committed baseline's.
	PeakLiveSet  int `json:"peak_live_set,omitempty"`
	FinalLiveSet int `json:"final_live_set,omitempty"`
}

// perfArtifact is the document -bench writes.
type perfArtifact struct {
	Schema string     `json:"schema"`
	Cells  []perfCell `json:"cells"`
}

// perfPoint names one grid cell. tier selects the configuration family:
// "" is the BenchmarkScale base grid, "kernel" the message-level
// kernel-pair cells, "fscale" the analytic large-n tier.
type perfPoint struct {
	protocol string
	n        int
	tier     string
}

// perfGrid is the measured grid: every protocol panel cell at
// message-level sizes, the analytic large-n cells for Orthrus, the
// kernel-pair cells and the F-scale tier.
func perfGrid() []perfPoint {
	var cells []perfPoint
	for _, p := range []string{"Orthrus", "ISS", "Ladon"} {
		for _, n := range []int{4, 10, 25} {
			cells = append(cells, perfPoint{p, n, ""})
		}
	}
	for _, n := range []int{50, 100} {
		cells = append(cells, perfPoint{"Orthrus", n, ""})
	}
	for _, n := range []int{50, 100} {
		cells = append(cells, perfPoint{"Orthrus", n, "kernel"})
	}
	for _, n := range []int{250, 500, 1000} {
		cells = append(cells, perfPoint{"Orthrus", n, "fscale"})
	}
	cells = append(cells, perfPoint{"Orthrus", 25, "soak"})
	return cells
}

// perfConfig builds the cell's run configuration. The base grid ("") is
// the SDK mirror of bench_test.go's scaleBenchCfg; the kernel tier
// mirrors scaleKernelCfg (message-level, NIC off, short window — the
// regime the parallel kernel accelerates); the fscale tier mirrors the
// F-scale figure's pulse-damped large cells.
func perfConfig(protocol string, n int, tier string) orthrus.Config {
	var opts []orthrus.Option
	switch tier {
	case "kernel":
		opts = []orthrus.Option{
			orthrus.WithProtocol(protocol),
			orthrus.WithClusterSize(n),
			orthrus.WithNet(orthrus.WAN),
			orthrus.WithAccounts(4000),
			orthrus.WithLoad(500),
			orthrus.WithDuration(1 * time.Second),
			orthrus.WithWarmup(250 * time.Millisecond),
			orthrus.WithDrain(1 * time.Second),
			orthrus.WithBatching(1024, 250*time.Millisecond),
			orthrus.WithEpochLen(128),
			orthrus.WithNIC(false),
			orthrus.WithSeed(42),
		}
	case "soak":
		scn, err := scenariodsl.Preset(scenariodsl.SoakChurnPreset, n, 120*time.Second, 42)
		if err != nil {
			panic("orthrus-bench: " + err.Error()) // the preset name is fixed
		}
		opts = []orthrus.Option{
			orthrus.WithProtocol(protocol),
			orthrus.WithClusterSize(n),
			orthrus.WithNet(orthrus.WAN),
			orthrus.WithAccounts(4000),
			orthrus.WithLoad(100),
			orthrus.WithDuration(120 * time.Second),
			orthrus.WithWarmup(12 * time.Second),
			orthrus.WithDrain(30 * time.Second),
			orthrus.WithBatching(4096, 10*time.Second),
			orthrus.WithEpochLen(4),
			orthrus.WithViewTimeout(60 * time.Second),
			orthrus.WithStateTransfer(),
			orthrus.WithLiveSetSampling(5 * time.Second),
			orthrus.WithScenario(scn),
			orthrus.WithNIC(false),
			orthrus.WithSeed(42),
		}
	case "fscale":
		opts = []orthrus.Option{
			orthrus.WithProtocol(protocol),
			orthrus.WithClusterSize(n),
			orthrus.WithNet(orthrus.WAN),
			orthrus.WithAccounts(4000),
			orthrus.WithLoad(100),
			orthrus.WithDuration(2 * time.Second),
			orthrus.WithWarmup(400 * time.Millisecond),
			orthrus.WithDrain(2 * time.Second),
			orthrus.WithBatching(4096, 500*time.Millisecond),
			orthrus.WithEpochLen(1024),
			orthrus.WithAnalyticSB(),
			orthrus.WithSeed(42),
		}
	default:
		opts = []orthrus.Option{
			orthrus.WithProtocol(protocol),
			orthrus.WithClusterSize(n),
			orthrus.WithNet(orthrus.WAN),
			orthrus.WithAccounts(4000),
			orthrus.WithLoad(2000),
			orthrus.WithDuration(4 * time.Second),
			orthrus.WithWarmup(1 * time.Second),
			orthrus.WithDrain(8 * time.Second),
			orthrus.WithBatching(1024, 100*time.Millisecond),
			orthrus.WithEpochLen(128),
			orthrus.WithSeed(42),
		}
		if n >= 32 {
			opts = append(opts, orthrus.WithAnalyticSB())
		}
	}
	return orthrus.NewConfig(opts...)
}

// measureCell runs one cell once (runs are deterministic, so a single
// iteration measures the cell exactly) and reads the allocation counters
// around it. Kernel-pair cells run a second time under the parallel
// kernel; the two results must agree bit-for-bit on every measurement —
// the perf harness doubles as a deployment-level determinism check — and
// the cell records the parallel timing columns. runner is injected for
// tests.
func measureCell(p perfPoint, runner func(orthrus.Config) (*orthrus.Result, error)) (perfCell, error) {
	cfg := perfConfig(p.protocol, p.n, p.tier)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := runner(cfg)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return perfCell{}, err
	}
	cell := perfCell{
		Protocol:    p.protocol,
		N:           p.n,
		Tier:        p.tier,
		AnalyticSB:  cfg.AnalyticSB,
		NsPerOp:     elapsed.Nanoseconds(),
		AllocsPerOp: after.Mallocs - before.Mallocs,
		BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
		SimEvents:   res.SimEvents,
		TputKTPS:    res.ThroughputTPS / 1000,
	}
	if s := elapsed.Seconds(); s > 0 {
		cell.SimEventsPerSec = float64(res.SimEvents) / s
	}
	if p.tier == "soak" {
		cell.PeakLiveSet = res.LiveSetPeak
		if n := len(res.LiveSetSamples); n > 0 {
			cell.FinalLiveSet = res.LiveSetSamples[n-1].Total
		}
	}
	if p.tier == "kernel" {
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
		pcfg := cfg
		pcfg.Kernel = orthrus.KernelParallel
		pcfg.Workers = workers
		pstart := time.Now()
		pres, err := runner(pcfg)
		pelapsed := time.Since(pstart)
		if err != nil {
			return perfCell{}, err
		}
		if pres.Confirmed != res.Confirmed || pres.SimEvents != res.SimEvents ||
			pres.ThroughputTPS != res.ThroughputTPS || pres.Latency != res.Latency {
			return perfCell{}, fmt.Errorf("parallel kernel diverged from serial on %s/n=%d:\n  serial   %v\n  parallel %v",
				p.protocol, p.n, res, pres)
		}
		cell.ParallelNsPerOp = pelapsed.Nanoseconds()
		cell.ParallelWorkers = workers
		cell.ParallelShards = pres.Shards
		if pelapsed > 0 {
			cell.ParallelSpeedup = float64(cell.NsPerOp) / float64(cell.ParallelNsPerOp)
		}
	}
	return cell, nil
}

// runPerfBench measures the whole grid and writes the artifact to
// jsonPath. The table rendering goes to stdout unless quiet; comparePath,
// when set, names an older orthrus-bench-perf/v2 artifact to print a
// per-cell delta table against after the run.
func runPerfBench(stdout, stderr io.Writer, jsonPath, comparePath string, quiet bool, runner func(orthrus.Config) (*orthrus.Result, error)) error {
	if jsonPath == "" {
		jsonPath = "BENCH_scale.json"
	}
	var old *perfArtifact
	if comparePath != "" {
		// Load (and validate) the baseline up front: a typo'd path should
		// fail before minutes of measurement, not after.
		var err error
		if old, err = readPerfArtifact(comparePath); err != nil {
			return err
		}
	}
	doc := perfArtifact{Schema: perfSchema}
	if !quiet {
		fmt.Fprintf(stdout, "%-8s %5s %-7s %10s %14s %14s %16s %10s %12s\n",
			"proto", "n", "tier", "ms/op", "allocs/op", "bytes/op", "sim-events/s", "ktps", "par-speedup")
	}
	for _, c := range perfGrid() {
		cell, err := measureCell(c, runner)
		if err != nil {
			return fmt.Errorf("orthrus-bench: cell %s/n=%d: %w", c.protocol, c.n, err)
		}
		doc.Cells = append(doc.Cells, cell)
		if !quiet {
			tier := cell.Tier
			if tier == "" {
				tier = "base"
			}
			speedup := "-"
			if cell.ParallelNsPerOp > 0 {
				speedup = fmt.Sprintf("%.2fx/%dw", cell.ParallelSpeedup, cell.ParallelWorkers)
			}
			fmt.Fprintf(stdout, "%-8s %5d %-7s %10.0f %14d %14d %16.0f %10.1f %12s\n",
				cell.Protocol, cell.N, tier, float64(cell.NsPerOp)/1e6,
				cell.AllocsPerOp, cell.BytesPerOp, cell.SimEventsPerSec, cell.TputKTPS, speedup)
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s (%d cells, schema %s)\n", jsonPath, len(doc.Cells), perfSchema)
	if old != nil {
		compareArtifacts(stdout, old, &doc, comparePath)
	}
	return nil
}

// readPerfArtifact loads and schema-checks an orthrus-bench-perf/v2 file.
func readPerfArtifact(path string) (*perfArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("orthrus-bench: -compare: %w", err)
	}
	var doc perfArtifact
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("orthrus-bench: -compare %s: %w", path, err)
	}
	if doc.Schema != perfSchema {
		return nil, fmt.Errorf("orthrus-bench: -compare %s: schema %q, want %q", path, doc.Schema, perfSchema)
	}
	return &doc, nil
}

// compareArtifacts prints the per-cell deltas between two perf artifacts:
// ns/op, allocs/op and sim-events/s, as old -> new with the relative
// change. Cells present on only one side are flagged rather than dropped,
// so grid growth shows up in review.
func compareArtifacts(w io.Writer, old, new *perfArtifact, oldName string) {
	index := make(map[perfPoint]perfCell, len(old.Cells))
	for _, c := range old.Cells {
		index[perfPoint{c.Protocol, c.N, c.Tier}] = c
	}
	fmt.Fprintf(w, "\ndelta vs %s:\n", oldName)
	fmt.Fprintf(w, "%-8s %5s %24s %26s %26s\n", "proto", "n", "ms/op", "allocs/op", "sim-events/s")
	pct := func(new, old float64) string {
		if old == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (new/old-1)*100)
	}
	for _, c := range new.Cells {
		o, ok := index[perfPoint{c.Protocol, c.N, c.Tier}]
		if !ok {
			fmt.Fprintf(w, "%-8s %5d   (new cell, no baseline)\n", c.Protocol, c.N)
			continue
		}
		delete(index, perfPoint{c.Protocol, c.N, c.Tier})
		fmt.Fprintf(w, "%-8s %5d %9.0f -> %-6.0f%7s %11d -> %-8d%7s %9.0fk -> %-7.0fk%7s\n",
			c.Protocol, c.N,
			float64(o.NsPerOp)/1e6, float64(c.NsPerOp)/1e6, pct(float64(c.NsPerOp), float64(o.NsPerOp)),
			o.AllocsPerOp, c.AllocsPerOp, pct(float64(c.AllocsPerOp), float64(o.AllocsPerOp)),
			o.SimEventsPerSec/1e3, c.SimEventsPerSec/1e3, pct(c.SimEventsPerSec, o.SimEventsPerSec))
	}
	for _, c := range old.Cells {
		if _, stale := index[perfPoint{c.Protocol, c.N, c.Tier}]; stale {
			fmt.Fprintf(w, "%-8s %5d   (baseline cell missing from this run)\n", c.Protocol, c.N)
		}
	}
}
