package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/orthrus"
)

// The -bench perf harness: instead of regenerating figures, it measures
// the simulator hot path itself — wall time, allocations and simulated
// events per second for a fixed (protocol, n) grid — and writes the
// BENCH_scale.json artifact (schema orthrus-bench-perf/v1) that CI runs
// in smoke mode and uploads. The grid matches the repository's
// BenchmarkScale sub-benchmarks one-to-one (bench_test.go; -short trims
// its large cells) so go-test numbers and the artifact measure identical
// work: message-level PBFT under the NIC model for n < 32, the analytic
// SB above.

// perfSchema identifies the artifact format. v1 fields per cell: ns/op,
// allocs/op, bytes/op, sim-events and sim-events/sec, plus the measured
// throughput for context. Timing fields vary with the host; allocs/op
// and sim_events are deterministic.
const perfSchema = "orthrus-bench-perf/v1"

// perfCell is one measured (protocol, n) point.
type perfCell struct {
	Protocol        string  `json:"protocol"`
	N               int     `json:"n"`
	AnalyticSB      bool    `json:"analytic_sb"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     uint64  `json:"allocs_per_op"`
	BytesPerOp      uint64  `json:"bytes_per_op"`
	SimEvents       uint64  `json:"sim_events"`
	SimEventsPerSec float64 `json:"sim_events_per_sec"`
	TputKTPS        float64 `json:"tput_ktps"`
}

// perfArtifact is the document -bench writes.
type perfArtifact struct {
	Schema string     `json:"schema"`
	Cells  []perfCell `json:"cells"`
}

// perfPoint names one grid cell.
type perfPoint struct {
	protocol string
	n        int
}

// perfGrid is the measured grid: every protocol panel cell at
// message-level sizes, plus the analytic large-n cells for Orthrus.
func perfGrid() []perfPoint {
	var cells []perfPoint
	for _, p := range []string{"Orthrus", "ISS", "Ladon"} {
		for _, n := range []int{4, 10, 25} {
			cells = append(cells, perfPoint{p, n})
		}
	}
	for _, n := range []int{50, 100} {
		cells = append(cells, perfPoint{"Orthrus", n})
	}
	return cells
}

// perfConfig builds the cell's run configuration — the SDK mirror of
// bench_test.go's scaleBenchCfg.
func perfConfig(protocol string, n int) orthrus.Config {
	opts := []orthrus.Option{
		orthrus.WithProtocol(protocol),
		orthrus.WithClusterSize(n),
		orthrus.WithNet(orthrus.WAN),
		orthrus.WithAccounts(4000),
		orthrus.WithLoad(2000),
		orthrus.WithDuration(4 * time.Second),
		orthrus.WithWarmup(1 * time.Second),
		orthrus.WithDrain(8 * time.Second),
		orthrus.WithBatching(1024, 100*time.Millisecond),
		orthrus.WithEpochLen(128),
		orthrus.WithSeed(42),
	}
	if n >= 32 {
		opts = append(opts, orthrus.WithAnalyticSB())
	}
	return orthrus.NewConfig(opts...)
}

// measureCell runs one cell once (runs are deterministic, so a single
// iteration measures the cell exactly) and reads the allocation counters
// around it. runner is injected for tests.
func measureCell(protocol string, n int, runner func(orthrus.Config) (*orthrus.Result, error)) (perfCell, error) {
	cfg := perfConfig(protocol, n)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := runner(cfg)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return perfCell{}, err
	}
	cell := perfCell{
		Protocol:    protocol,
		N:           n,
		AnalyticSB:  cfg.AnalyticSB,
		NsPerOp:     elapsed.Nanoseconds(),
		AllocsPerOp: after.Mallocs - before.Mallocs,
		BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
		SimEvents:   res.SimEvents,
		TputKTPS:    res.ThroughputTPS / 1000,
	}
	if s := elapsed.Seconds(); s > 0 {
		cell.SimEventsPerSec = float64(res.SimEvents) / s
	}
	return cell, nil
}

// runPerfBench measures the whole grid and writes the artifact to
// jsonPath. The table rendering goes to stdout unless quiet; comparePath,
// when set, names an older orthrus-bench-perf/v1 artifact to print a
// per-cell delta table against after the run.
func runPerfBench(stdout, stderr io.Writer, jsonPath, comparePath string, quiet bool, runner func(orthrus.Config) (*orthrus.Result, error)) error {
	if jsonPath == "" {
		jsonPath = "BENCH_scale.json"
	}
	var old *perfArtifact
	if comparePath != "" {
		// Load (and validate) the baseline up front: a typo'd path should
		// fail before minutes of measurement, not after.
		var err error
		if old, err = readPerfArtifact(comparePath); err != nil {
			return err
		}
	}
	doc := perfArtifact{Schema: perfSchema}
	if !quiet {
		fmt.Fprintf(stdout, "%-8s %5s %10s %14s %14s %16s %10s\n",
			"proto", "n", "ms/op", "allocs/op", "bytes/op", "sim-events/s", "ktps")
	}
	for _, c := range perfGrid() {
		cell, err := measureCell(c.protocol, c.n, runner)
		if err != nil {
			return fmt.Errorf("orthrus-bench: cell %s/n=%d: %w", c.protocol, c.n, err)
		}
		doc.Cells = append(doc.Cells, cell)
		if !quiet {
			fmt.Fprintf(stdout, "%-8s %5d %10.0f %14d %14d %16.0f %10.1f\n",
				cell.Protocol, cell.N, float64(cell.NsPerOp)/1e6,
				cell.AllocsPerOp, cell.BytesPerOp, cell.SimEventsPerSec, cell.TputKTPS)
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s (%d cells, schema %s)\n", jsonPath, len(doc.Cells), perfSchema)
	if old != nil {
		compareArtifacts(stdout, old, &doc, comparePath)
	}
	return nil
}

// readPerfArtifact loads and schema-checks an orthrus-bench-perf/v1 file.
func readPerfArtifact(path string) (*perfArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("orthrus-bench: -compare: %w", err)
	}
	var doc perfArtifact
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("orthrus-bench: -compare %s: %w", path, err)
	}
	if doc.Schema != perfSchema {
		return nil, fmt.Errorf("orthrus-bench: -compare %s: schema %q, want %q", path, doc.Schema, perfSchema)
	}
	return &doc, nil
}

// compareArtifacts prints the per-cell deltas between two perf artifacts:
// ns/op, allocs/op and sim-events/s, as old -> new with the relative
// change. Cells present on only one side are flagged rather than dropped,
// so grid growth shows up in review.
func compareArtifacts(w io.Writer, old, new *perfArtifact, oldName string) {
	index := make(map[perfPoint]perfCell, len(old.Cells))
	for _, c := range old.Cells {
		index[perfPoint{c.Protocol, c.N}] = c
	}
	fmt.Fprintf(w, "\ndelta vs %s:\n", oldName)
	fmt.Fprintf(w, "%-8s %5s %24s %26s %26s\n", "proto", "n", "ms/op", "allocs/op", "sim-events/s")
	pct := func(new, old float64) string {
		if old == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (new/old-1)*100)
	}
	for _, c := range new.Cells {
		o, ok := index[perfPoint{c.Protocol, c.N}]
		if !ok {
			fmt.Fprintf(w, "%-8s %5d   (new cell, no baseline)\n", c.Protocol, c.N)
			continue
		}
		delete(index, perfPoint{c.Protocol, c.N})
		fmt.Fprintf(w, "%-8s %5d %9.0f -> %-6.0f%7s %11d -> %-8d%7s %9.0fk -> %-7.0fk%7s\n",
			c.Protocol, c.N,
			float64(o.NsPerOp)/1e6, float64(c.NsPerOp)/1e6, pct(float64(c.NsPerOp), float64(o.NsPerOp)),
			o.AllocsPerOp, c.AllocsPerOp, pct(float64(c.AllocsPerOp), float64(o.AllocsPerOp)),
			o.SimEventsPerSec/1e3, c.SimEventsPerSec/1e3, pct(c.SimEventsPerSec, o.SimEventsPerSec))
	}
	for _, c := range old.Cells {
		if _, stale := index[perfPoint{c.Protocol, c.N}]; stale {
			fmt.Fprintf(w, "%-8s %5d   (baseline cell missing from this run)\n", c.Protocol, c.N)
		}
	}
}
