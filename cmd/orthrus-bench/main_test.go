package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestRunList checks -list enumerates the registry-driven protocol panel,
// figure ids and scenario presets — no hardcoded help text.
func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, marker := range []string{
		"protocols", "Orthrus", "ISS", "RCC", "Mir", "DQBFT", "Ladon",
		"figures", "S1",
		"scenarios", "crash-recover", "rolling-stragglers", "partition-heal", "flash-crowd",
	} {
		if !strings.Contains(s, marker) {
			t.Fatalf("-list output missing %q:\n%s", marker, s)
		}
	}
	if errOut.Len() != 0 {
		t.Fatalf("-list wrote to stderr: %s", errOut.String())
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-fig", "99"}, &out, &errOut); err == nil {
		t.Fatal("expected an error for an unknown figure")
	}
}

func TestRunRejectsEmptySelection(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-fig", " , "}, &out, &errOut); err == nil {
		t.Fatal("expected an error for an empty -fig list")
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-fig", "S1", "-scenario", "no-such"}, &out, &errOut); err == nil {
		t.Fatal("expected an error for an unknown scenario name")
	}
}

func TestRunRejectsOutOfRangeScale(t *testing.T) {
	for _, scale := range []string{"0", "-1", "1.5"} {
		var out, errOut bytes.Buffer
		if err := run([]string{"-scale", scale}, &out, &errOut); err == nil {
			t.Fatalf("expected an error for -scale %s", scale)
		}
	}
}

// TestRunFig1bJSONArtifact runs the cheapest figure at tiny scale and
// checks both the text rendering and the JSON artifact.
func TestRunFig1bJSONArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a miniature cluster")
	}
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	var out, errOut bytes.Buffer
	if err := run([]string{"-fig", "1b", "-scale", "0.05", "-json", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig 1b") || !strings.Contains(out.String(), "ISS") {
		t.Fatalf("unexpected text output: %s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc artifact
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if doc.Schema != "orthrus-bench/v2" {
		t.Fatalf("schema %q", doc.Schema)
	}
	if len(doc.Figures) != 1 || doc.Figures[0].Figure != "1b" {
		t.Fatalf("figures %+v", doc.Figures)
	}
	if len(doc.Figures[0].Breakdowns) != 1 || doc.Figures[0].Breakdowns[0].Total <= 0 {
		t.Fatalf("breakdown missing from artifact: %+v", doc.Figures[0])
	}
}

func TestSelectFigures(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"all", []string{"1b", "3", "4", "5", "6", "7", "8", "S1", "S2", "F-scale"}},
		{"3,3", []string{"3"}},
		{"6, 1b ,6", []string{"6", "1b"}},
		{"3,all", []string{"3", "1b", "4", "5", "6", "7", "8", "S1", "S2", "F-scale"}},
	}
	for _, c := range cases {
		got, err := selectFigures(c.in)
		if err != nil {
			t.Fatalf("selectFigures(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("selectFigures(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, in := range []string{"", " , "} {
		if _, err := selectFigures(in); err == nil {
			t.Fatalf("selectFigures(%q): expected error", in)
		}
	}
}
