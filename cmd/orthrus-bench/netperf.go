package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/orthrus"
)

// The -bench-net perf harness: the real-transport analogue of -bench.
// Instead of simulating, it floods the in-process (Proc) and
// loopback-TCP backends with proposal-sized broadcasts and measures the
// data path itself — delivered msgs/s, MB/s, allocations per delivered
// message and p50/p99 frame latency — writing the BENCH_net.json
// artifact (schema orthrus-bench-net/v1) that CI regenerates and gates
// against the committed baseline, exactly like BENCH_scale.json gates
// the simulator hot path. Rates and latencies are host-dependent;
// allocs/msg is host-stable and is the primary regression signal.

// runNetBench measures the standard grid and writes the artifact to
// jsonPath (default BENCH_net.json). runner is injected for tests.
func runNetBench(stdout, stderr io.Writer, jsonPath string, quiet bool,
	runner func(orthrus.NetBenchOptions) (*orthrus.NetBenchArtifact, error)) error {
	if jsonPath == "" {
		jsonPath = "BENCH_net.json"
	}
	art, err := runner(orthrus.NetBenchOptions{})
	if err != nil {
		return fmt.Errorf("orthrus-bench: %w", err)
	}
	if !quiet {
		renderNetBench(stdout, art)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s (%d cells, schema %s)\n", jsonPath, len(art.Cells), art.Schema)
	return nil
}

// renderNetBench prints the human-readable cell table.
func renderNetBench(w io.Writer, art *orthrus.NetBenchArtifact) {
	fmt.Fprintf(w, "%-7s %4s %12s %10s %8s %12s %12s %12s %7s\n",
		"backend", "n", "msgs", "msgs/s", "MB/s", "allocs/msg", "p50-lat", "p99-lat", "drops")
	for _, c := range art.Cells {
		fmt.Fprintf(w, "%-7s %4d %12d %10.0f %8.1f %12.1f %12s %12s %7d\n",
			c.Backend, c.N, c.Msgs, c.MsgsPerSec, c.MBPerSec, c.AllocsPerMsg,
			fmt.Sprintf("%.2fms", float64(c.P50LatencyNS)/1e6),
			fmt.Sprintf("%.2fms", float64(c.P99LatencyNS)/1e6),
			c.Drops)
	}
}
