package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/orthrus"
)

// stubRunner returns a canned result instantly so the harness logic is
// testable without multi-second simulations.
func stubRunner(cfg orthrus.Config) (*orthrus.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &orthrus.Result{
		Protocol:      cfg.Protocol,
		Replicas:      cfg.Replicas,
		ThroughputTPS: 1500,
		SimEvents:     100000,
	}, nil
}

func TestPerfBenchArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	var out, errOut bytes.Buffer
	if err := runPerfBench(&out, &errOut, path, "", false, stubRunner); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc perfArtifact
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "orthrus-bench-perf/v2" {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Cells) != len(perfGrid()) {
		t.Fatalf("cells = %d, want %d", len(doc.Cells), len(perfGrid()))
	}
	seen := map[string]bool{}
	for _, c := range doc.Cells {
		tier := c.Tier
		if tier == "" {
			tier = "base"
		}
		seen[c.Protocol+"/"+itoa(c.N)+"/"+tier] = true
		if c.SimEvents != 100000 || c.NsPerOp <= 0 || c.SimEventsPerSec <= 0 {
			t.Fatalf("cell %s/n=%d not measured: %+v", c.Protocol, c.N, c)
		}
		switch c.Tier {
		case "kernel":
			// Message-level kernel-pair cell: parallel columns measured.
			if c.AnalyticSB {
				t.Fatalf("kernel cell %s/n=%d marked analytic", c.Protocol, c.N)
			}
			if c.ParallelNsPerOp <= 0 || c.ParallelWorkers < 2 || c.ParallelSpeedup <= 0 {
				t.Fatalf("kernel cell %s/n=%d missing parallel columns: %+v", c.Protocol, c.N, c)
			}
		case "fscale":
			if !c.AnalyticSB {
				t.Fatalf("fscale cell %s/n=%d not analytic", c.Protocol, c.N)
			}
			if c.ParallelNsPerOp != 0 {
				t.Fatalf("fscale cell %s/n=%d has parallel columns: %+v", c.Protocol, c.N, c)
			}
		default:
			if (c.N >= 32) != c.AnalyticSB {
				t.Fatalf("cell %s/n=%d analytic flag wrong", c.Protocol, c.N)
			}
			if c.ParallelNsPerOp != 0 {
				t.Fatalf("base cell %s/n=%d has parallel columns: %+v", c.Protocol, c.N, c)
			}
		}
	}
	for _, want := range []string{
		"Orthrus/10/base", "ISS/25/base", "Ladon/4/base", "Orthrus/100/base",
		"Orthrus/50/kernel", "Orthrus/100/kernel",
		"Orthrus/250/fscale", "Orthrus/500/fscale", "Orthrus/1000/fscale",
	} {
		if !seen[want] {
			t.Fatalf("grid missing cell %s (have %v)", want, seen)
		}
	}
	if !strings.Contains(out.String(), "allocs/op") {
		t.Fatalf("table header missing:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "wrote "+path) {
		t.Fatalf("stderr missing artifact note: %q", errOut.String())
	}
}

func TestPerfBenchQuietAndErrors(t *testing.T) {
	dir := t.TempDir()
	t.Chdir(dir)
	var out, errOut bytes.Buffer
	// Quiet mode renders nothing to stdout.
	if err := runPerfBench(&out, &errOut, "", "", true, stubRunner); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("quiet mode wrote to stdout: %q", out.String())
	}
	// The default artifact path is BENCH_scale.json in the working dir.
	if _, err := os.Stat(filepath.Join(dir, "BENCH_scale.json")); err != nil {
		t.Fatalf("default artifact missing: %v", err)
	}
	// A failing cell surfaces with its coordinates.
	boom := errors.New("boom")
	err := runPerfBench(&out, &errOut, filepath.Join(dir, "x.json"), "", true,
		func(orthrus.Config) (*orthrus.Result, error) { return nil, boom })
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "cell Orthrus/n=4") {
		t.Fatalf("err = %v", err)
	}
}

// TestPerfBenchCompare runs the harness against a synthetic baseline and
// checks the delta table: per-cell old -> new values with relative
// changes, plus flags for cells present on only one side.
func TestPerfBenchCompare(t *testing.T) {
	dir := t.TempDir()
	// Baseline: same grid measured "slower" (double ns, half events/s),
	// one cell missing and one stale extra.
	base := perfArtifact{Schema: perfSchema}
	for i, c := range perfGrid() {
		if c.protocol == "Ladon" && c.n == 25 {
			continue // exercise the new-cell path
		}
		base.Cells = append(base.Cells, perfCell{
			Protocol: c.protocol, N: c.n, Tier: c.tier,
			NsPerOp:         int64(2000000 * (i + 1)),
			AllocsPerOp:     1000,
			SimEventsPerSec: 50000,
		})
	}
	base.Cells = append(base.Cells, perfCell{Protocol: "Retired", N: 7, NsPerOp: 1})
	baseData, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "old.json")
	if err := os.WriteFile(basePath, append(baseData, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if err := runPerfBench(&out, &errOut, filepath.Join(dir, "new.json"), basePath, true, stubRunner); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"delta vs " + basePath,
		"sim-events/s",
		"(new cell, no baseline)",
		"(baseline cell missing from this run)",
		"1000 -> ", // allocs delta renders old -> new
		"%",        // relative changes present
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("delta table missing %q:\n%s", want, got)
		}
	}

	// A bad baseline fails before any measurement.
	calls := 0
	err = runPerfBench(&out, &errOut, filepath.Join(dir, "n2.json"), filepath.Join(dir, "absent.json"), true,
		func(cfg orthrus.Config) (*orthrus.Result, error) { calls++; return stubRunner(cfg) })
	if err == nil || calls != 0 {
		t.Fatalf("missing baseline: err=%v calls=%d", err, calls)
	}
	// Wrong schema is rejected.
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runPerfBench(&out, &errOut, filepath.Join(dir, "n3.json"), badPath, true, stubRunner); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema check: err=%v", err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
