package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/orthrus"
)

// stubRunner returns a canned result instantly so the harness logic is
// testable without multi-second simulations.
func stubRunner(cfg orthrus.Config) (*orthrus.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &orthrus.Result{
		Protocol:      cfg.Protocol,
		Replicas:      cfg.Replicas,
		ThroughputTPS: 1500,
		SimEvents:     100000,
	}, nil
}

func TestPerfBenchArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	var out, errOut bytes.Buffer
	if err := runPerfBench(&out, &errOut, path, false, stubRunner); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc perfArtifact
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "orthrus-bench-perf/v1" {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Cells) != len(perfGrid()) {
		t.Fatalf("cells = %d, want %d", len(doc.Cells), len(perfGrid()))
	}
	seen := map[string]bool{}
	for _, c := range doc.Cells {
		seen[c.Protocol+"/"+itoa(c.N)] = true
		if c.SimEvents != 100000 || c.NsPerOp <= 0 || c.SimEventsPerSec <= 0 {
			t.Fatalf("cell %s/n=%d not measured: %+v", c.Protocol, c.N, c)
		}
		if (c.N >= 32) != c.AnalyticSB {
			t.Fatalf("cell %s/n=%d analytic flag wrong", c.Protocol, c.N)
		}
	}
	for _, want := range []string{"Orthrus/10", "ISS/25", "Ladon/4", "Orthrus/100"} {
		if !seen[want] {
			t.Fatalf("grid missing cell %s (have %v)", want, seen)
		}
	}
	if !strings.Contains(out.String(), "allocs/op") {
		t.Fatalf("table header missing:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "wrote "+path) {
		t.Fatalf("stderr missing artifact note: %q", errOut.String())
	}
}

func TestPerfBenchQuietAndErrors(t *testing.T) {
	dir := t.TempDir()
	t.Chdir(dir)
	var out, errOut bytes.Buffer
	// Quiet mode renders nothing to stdout.
	if err := runPerfBench(&out, &errOut, "", true, stubRunner); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("quiet mode wrote to stdout: %q", out.String())
	}
	// The default artifact path is BENCH_scale.json in the working dir.
	if _, err := os.Stat(filepath.Join(dir, "BENCH_scale.json")); err != nil {
		t.Fatalf("default artifact missing: %v", err)
	}
	// A failing cell surfaces with its coordinates.
	boom := errors.New("boom")
	err := runPerfBench(&out, &errOut, filepath.Join(dir, "x.json"), true,
		func(orthrus.Config) (*orthrus.Result, error) { return nil, boom })
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "cell Orthrus/n=4") {
		t.Fatalf("err = %v", err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
