package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer is an io.Writer the daemon writes and the test reads
// concurrently.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunFlagErrors pins the CLI error surface: flag errors are reported
// by the FlagSet (errAlreadyReported), usage errors name the problem, and
// -h exits cleanly.
func TestRunFlagErrors(t *testing.T) {
	stop := make(chan struct{})
	close(stop) // any run that gets past validation exits immediately
	cases := []struct {
		name string
		args []string
		want string // substring of the returned error; "" means nil
	}{
		{"help", []string{"-h"}, ""},
		{"bad flag", []string{"-no-such-flag"}, errAlreadyReported.Error()},
		{"bad duration", []string{"-duration", "bogus"}, errAlreadyReported.Error()},
		{"no peers", []string{"-id", "0"}, "-peers"},
		{"id out of range", []string{"-id", "5", "-peers", "a:1,b:2"}, "outside"},
		{"negative id", []string{"-peers", "a:1,b:2"}, "outside"},
		{"unknown protocol", []string{"-id", "0", "-peers", "127.0.0.1:0", "-protocol", "NoSuch"}, "unknown protocol"},
		{"negative load", []string{"-id", "0", "-peers", "127.0.0.1:0", "-load", "-1"}, "-load"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr, stop)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("run(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestRunUsageListsProtocols checks -h prints the registered protocol
// names (the baselines must be linked in).
func TestRunUsageListsProtocols(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr, nil); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Orthrus", "ISS"} {
		if !strings.Contains(stderr.String(), name) {
			t.Fatalf("usage output missing protocol %q:\n%s", name, stderr.String())
		}
	}
}

var statsRe = regexp.MustCompile(`event=stats blocks=(\d+) confirmed=(\d+)`)

// lastStats returns the latest stats line's blocks and confirmed counts.
func lastStats(out string) (blocks, confirmed int) {
	for _, m := range statsRe.FindAllStringSubmatch(out, -1) {
		blocks, _ = strconv.Atoi(m[1])
		confirmed, _ = strconv.Atoi(m[2])
	}
	return blocks, confirmed
}

// TestTCPLoopbackCluster boots a 4-replica cluster of real daemons over
// loopback TCP — pre-bound ephemeral listeners, node 0 running the
// built-in client — and waits until every replica has committed at least
// n blocks and confirmed transactions, then checks clean shutdown.
func TestTCPLoopbackCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP cluster; skipped under -short")
	}
	const n = 4
	peers := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		peers[i] = ln.Addr().String()
	}

	stop := make(chan struct{})
	outs := make([]*lockedBuffer, n)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		outs[i] = &lockedBuffer{}
		o := nodeOptions{
			id:           i,
			peers:        peers,
			protocol:     "Orthrus",
			seed:         42,
			accounts:     64,
			stats:        50 * time.Millisecond,
			batchTimeout: 50 * time.Millisecond,
			viewTimeout:  10 * time.Second,
			listener:     listeners[i],
		}
		if i == 0 {
			o.load = 200 // one client in the cluster
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- runNode(o, outs[i], io.Discard, stop)
		}()
	}

	// Wait for every replica to commit ≥ n blocks and confirm ≥ 1 tx.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ready := 0
		for i := 0; i < n; i++ {
			if blocks, confirmed := lastStats(outs[i].String()); blocks >= n && confirmed >= 1 {
				ready++
			}
		}
		if ready == n {
			break
		}
		if time.Now().After(deadline) {
			var state strings.Builder
			for i := 0; i < n; i++ {
				blocks, confirmed := lastStats(outs[i].String())
				fmt.Fprintf(&state, "node %d: blocks=%d confirmed=%d\n", i, blocks, confirmed)
			}
			t.Fatalf("cluster made no progress in 30s:\n%s", state.String())
		}
		time.Sleep(25 * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("runNode returned %v", err)
		}
	}
	for i := 0; i < n; i++ {
		out := outs[i].String()
		if !strings.Contains(out, "event=start") {
			t.Fatalf("node %d output missing event=start:\n%s", i, out)
		}
		if !strings.Contains(out, "event=stop reason=signal") {
			t.Fatalf("node %d output missing clean stop line:\n%s", i, out)
		}
	}
}
