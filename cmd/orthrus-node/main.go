// Command orthrus-node runs one consensus replica as a long-lived daemon
// over the real TCP transport: length-prefixed wire frames, lazy dials
// with reconnect backoff, and the unchanged core state machines driven by
// wall-clock timers. Start one process per replica with the same peer
// table and seed; peers may come up in any order.
//
// Usage (a local n=4 cluster):
//
//	PEERS=127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//	orthrus-node -id 0 -peers $PEERS -load 200 &
//	orthrus-node -id 1 -peers $PEERS &
//	orthrus-node -id 2 -peers $PEERS &
//	orthrus-node -id 3 -peers $PEERS &
//
// Every replica must share -peers, -protocol, -seed and -accounts (they
// determine the genesis ledger and bucket assignment). Enable the
// built-in open-loop client (-load) on exactly one node: the workload
// generator is deterministic per seed, so two client nodes would submit
// identical transactions. The daemon logs structured per-replica lines
// (event=start|net|stats|backpressure|wire-error|view-change|stop) to
// stdout and shuts down
// cleanly on SIGINT/SIGTERM or after -duration.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	_ "repro/internal/baseline" // register the comparison protocols
	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/workload"
)

// nodeOptions is the parsed configuration of one daemon process. Tests
// construct it directly (with an injected Listener and stop channel);
// run() builds it from flags and signals.
type nodeOptions struct {
	id       int
	peers    []string
	listen   string // listen address override; "" uses peers[id]
	protocol string
	seed     int64
	accounts int

	load     float64       // built-in open-loop client rate; 0 disables
	duration time.Duration // 0 runs until the stop channel fires
	stats    time.Duration // stats log line period
	queueCap int           // per-peer outbound queue cap; 0 = transport default

	batchSize    int
	batchTimeout time.Duration
	viewTimeout  time.Duration
	epochLen     uint64

	listener net.Listener // test injection; nil listens on listen/peers[id]
}

// syncWriter serializes log lines from the node loop, the client
// goroutine and the transport's connectivity callbacks.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) logf(format string, args ...any) {
	s.mu.Lock()
	fmt.Fprintf(s.w, format+"\n", args...)
	s.mu.Unlock()
}

// errAlreadyReported marks failures the FlagSet already printed.
var errAlreadyReported = errors.New("orthrus-node: flag parsing failed")

func main() {
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, os.Stderr, stop); err != nil {
		if !errors.Is(err, errAlreadyReported) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
}

// run parses flags and drives one replica until stop fires or -duration
// elapses. Split from main for tests.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("orthrus-node", flag.ContinueOnError)
	id := fs.Int("id", -1, "replica id (index into -peers)")
	peers := fs.String("peers", "", "comma-separated host:port peer table, one per replica, index = id")
	listen := fs.String("listen", "", "listen address override (default: the -peers entry for -id)")
	protocol := fs.String("protocol", "Orthrus", "protocol to run: "+strings.Join(registry.Names(), ", "))
	seed := fs.Int64("seed", 42, "genesis/workload seed; must match on every replica")
	accounts := fs.Int("accounts", 0, "genesis account population (0 = workload default); must match on every replica")
	load := fs.Float64("load", 0, "built-in open-loop client rate in tx/s (enable on exactly one node; 0 disables)")
	duration := fs.Duration("duration", 0, "run length; 0 runs until SIGINT/SIGTERM")
	stats := fs.Duration("stats", time.Second, "period of event=stats log lines")
	queueCap := fs.Int("queue-cap", 0, "per-peer outbound queue cap in frames (0 = transport default 4096); overflow drops oldest and logs event=backpressure")
	batch := fs.Int("batch", 0, "batch size (0 = engine default 4096)")
	batchTimeout := fs.Duration("batch-timeout", 0, "proposal pulse period (0 = engine default 100ms)")
	viewTimeout := fs.Duration("view-timeout", 0, "view-change timeout (0 = engine default 10s)")
	epochLen := fs.Uint64("epoch", 0, "checkpoint epoch length in blocks (0 = engine default 32)")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errAlreadyReported
	}
	o := nodeOptions{
		id:           *id,
		listen:       *listen,
		protocol:     *protocol,
		seed:         *seed,
		accounts:     *accounts,
		load:         *load,
		duration:     *duration,
		stats:        *stats,
		queueCap:     *queueCap,
		batchSize:    *batch,
		batchTimeout: *batchTimeout,
		viewTimeout:  *viewTimeout,
		epochLen:     *epochLen,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				o.peers = append(o.peers, p)
			}
		}
	}
	return runNode(o, stdout, stderr, stop)
}

// runNode validates the options, assembles transport + replica, and runs
// until the stop channel fires or the duration elapses.
func runNode(o nodeOptions, stdout, stderr io.Writer, stop <-chan struct{}) error {
	n := len(o.peers)
	if n < 1 {
		return fmt.Errorf("orthrus-node: -peers must list at least one host:port")
	}
	if o.id < 0 || o.id >= n {
		return fmt.Errorf("orthrus-node: -id %d outside the %d-entry peer table", o.id, n)
	}
	proto, err := registry.Lookup(o.protocol)
	if err != nil {
		return fmt.Errorf("orthrus-node: %w", err)
	}
	if o.load < 0 {
		return fmt.Errorf("orthrus-node: -load must be non-negative, got %g", o.load)
	}
	if o.stats <= 0 {
		o.stats = time.Second
	}
	f := (n - 1) / 3

	out := &syncWriter{w: stdout}
	logf := func(event, format string, args ...any) {
		out.logf("orthrus-node id=%d event=%s "+format, append([]any{o.id, event}, args...)...)
	}

	if o.listen != "" && o.listener == nil {
		// Listen on the override (e.g. 0.0.0.0:port behind NAT) while
		// peers keep dialing the advertised -peers entry.
		ln, err := net.Listen("tcp", o.listen)
		if err != nil {
			return fmt.Errorf("orthrus-node: listen %s: %w", o.listen, err)
		}
		o.listener = ln
	}
	node := transport.NewNode(o.id)
	tcp, err := transport.NewTCP(o.id, o.peers, node, transport.TCPOptions{
		Listener: o.listener,
		QueueCap: o.queueCap,
		Logf:     func(format string, args ...any) { logf("net", format, args...) },
	})
	if err != nil {
		return fmt.Errorf("orthrus-node: %w", err) // node loop not started yet; nothing to stop
	}
	defer func() {
		tcp.Close()
		node.Stop()
	}()

	gen := workload.New(workload.Config{Seed: o.seed, Accounts: o.accounts})

	// Counters below are touched only on the node's event-loop goroutine
	// (replica hooks and the stats timer both run there); the final stop
	// line reads them after node.Stop, when the loop is gone.
	var blocks, confirmed, aborted uint64
	ccfg := core.Config{
		N: n, F: f, ID: o.id, M: n,
		Mode:         proto.New(),
		BatchSize:    o.batchSize,
		BatchTimeout: o.batchTimeout,
		ViewTimeout:  o.viewTimeout,
		EpochLen:     o.epochLen,
		Genesis:      gen.Genesis(),
		OnBlockDeliver: func(instance int, b *types.Block) {
			blocks++
		},
		OnConfirm: func(tx *types.Transaction, success bool, at simnet.Time) {
			confirmed++
			if !success {
				aborted++
			}
		},
		OnViewChange: func(instance int, view uint64, at simnet.Time) {
			logf("view-change", "instance=%d view=%d", instance, view)
		},
	}
	replica := core.NewReplica(ccfg, node.Sim(), tcp)

	// Recurring stats line, scheduled on the node's own timer queue so it
	// reads the counters race-free on the loop goroutine. Backpressure and
	// wire-error anomalies get their own structured events, emitted only
	// when the counters moved since the previous tick — rate-limited to at
	// most one line per stats period each, however many frames were
	// dropped, so a wedged peer cannot flood the log.
	sim := node.Sim()
	var lastDropped, lastEncErrs, lastDecErrs uint64
	var statsTick func()
	statsTick = func() {
		sim.After(simnet.Duration(o.stats), func() {
			logf("stats", "blocks=%d confirmed=%d aborted=%d msgs=%d bytes=%d dropped=%d",
				blocks, confirmed, aborted, tcp.Messages(), tcp.Bytes(), tcp.Dropped())
			if d := tcp.Dropped(); d > lastDropped {
				logf("backpressure", "dropped=%d total=%d", d-lastDropped, d)
				lastDropped = d
			}
			if e, d := tcp.EncodeErrors(), tcp.DecodeErrors(); e > lastEncErrs || d > lastDecErrs {
				logf("wire-error", "encode_errors=%d decode_errors=%d", e, d)
				lastEncErrs, lastDecErrs = e, d
			}
			statsTick()
		})
	}
	statsTick()

	logf("start", "protocol=%s n=%d f=%d addr=%s seed=%d load=%g",
		o.protocol, n, f, tcp.Addr(), o.seed, o.load)
	replica.Start()
	node.Start(time.Now())

	// Built-in open-loop client: submit each transaction to the leaders
	// of its payer buckets plus the next f replicas (the censorship-
	// resistant policy of Sec. V-B), over the same wire frames as
	// protocol traffic.
	clientQuit := make(chan struct{})
	var clientWG sync.WaitGroup
	if o.load > 0 {
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			interval := time.Duration(float64(time.Second) / o.load)
			epoch := time.Now()
			targets := make([]int, 0, 2*(f+1)+1)
			seen := make([]bool, n)
			for k := 0; ; k++ {
				select {
				case <-clientQuit:
					return
				default:
				}
				if d := time.Until(epoch.Add(time.Duration(k) * interval)); d > 0 {
					select {
					case <-clientQuit:
						return
					case <-time.After(d):
					}
				}
				tx := gen.Next()
				tx.SubmitNS = int64(time.Since(epoch))
				targets = submitTargets(targets[:0], seen, tx, n, f)
				for _, target := range targets {
					tcp.Send(o.id, target, 0, &core.SubmitMsg{Tx: tx})
				}
			}
		}()
	}

	// Block until told to stop.
	reason := "signal"
	if o.duration > 0 {
		select {
		case <-stop:
		case <-time.After(o.duration):
			reason = "duration"
		}
	} else {
		<-stop
	}
	close(clientQuit)
	clientWG.Wait()
	tcp.Close()
	node.Stop()
	logf("stop", "reason=%s blocks=%d confirmed=%d aborted=%d msgs=%d bytes=%d dropped=%d",
		reason, blocks, confirmed, aborted, tcp.Messages(), tcp.Bytes(), tcp.Dropped())
	return nil
}

// submitTargets appends the replicas a client sends tx to, mirroring the
// simulated harness's policy: replica 0, plus each payer bucket's initial
// leader and the f replicas after it (m = n, so instance i's initial
// leader is replica i). seen is scratch of length n, false on entry,
// cleared again on return.
func submitTargets(dst []int, seen []bool, tx *types.Transaction, n, f int) []int {
	add := func(r int) {
		r %= n
		if !seen[r] {
			seen[r] = true
			dst = append(dst, r)
		}
	}
	add(0)
	hasPayer := false
	for _, op := range tx.Ops {
		if !op.IsPayerOp() {
			continue
		}
		hasPayer = true
		lead := core.BucketOf(op.Key, n)
		for k := 0; k <= f; k++ {
			add(lead + k)
		}
	}
	if !hasPayer { // no payer ops: route by client
		lead := core.BucketOf(tx.Client, n)
		for k := 0; k <= f; k++ {
			add(lead + k)
		}
	}
	for _, r := range dst {
		seen[r] = false
	}
	return dst
}
