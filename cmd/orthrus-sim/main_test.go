package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownProtocol(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-protocol", "Nope"}, &out, &errOut); err == nil {
		t.Fatal("expected an error for an unknown protocol")
	}
}

func TestRunParseErrorGoesToStderr(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-n", "abc"}, &out, &errOut); err == nil {
		t.Fatal("expected a parse error")
	}
	if out.Len() != 0 {
		t.Fatalf("parse error leaked to stdout: %q", out.String())
	}
	if !strings.Contains(errOut.String(), "invalid value") {
		t.Fatalf("stderr missing parse error: %q", errOut.String())
	}
}

// TestRunTinyCluster drives a minimal configuration end to end and checks
// the summary markers.
func TestRunTinyCluster(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-protocol", "Orthrus", "-n", "4", "-net", "lan",
		"-load", "300", "-duration", "2s", "-batch", "64"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, marker := range []string{"protocol     Orthrus", "network      LAN", "confirmed", "view changes", "breakdown"} {
		if !strings.Contains(s, marker) {
			t.Fatalf("output missing %q:\n%s", marker, s)
		}
	}
}

// TestRunScenarioFile drives a run from a scenario-DSL file and checks the
// per-phase windows show up under the file's base name.
func TestRunScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mini-chaos.scn")
	src := "500ms straggle x5 3\n1s crash 3\n1500ms recover 3\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	args := []string{"-protocol", "Orthrus", "-n", "4", "-net", "lan",
		"-load", "300", "-duration", "2s", "-batch", "64", "-scenario-file", path}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, marker := range []string{"phases       (mini-chaos scenario windows)", "baseline", "straggle", "crash", "recover"} {
		if !strings.Contains(s, marker) {
			t.Fatalf("output missing %q:\n%s", marker, s)
		}
	}
	var both bytes.Buffer
	if err := run(append(args, "-scenario", "crash-recover"), &both, &both); err == nil {
		t.Fatal("expected -scenario + -scenario-file to be rejected")
	}
	if err := run([]string{"-scenario-file", filepath.Join(t.TempDir(), "missing.scn")}, &out, &errOut); err == nil {
		t.Fatal("expected missing scenario file to error")
	}
}
