package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunRejectsUnknownProtocol(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-protocol", "Nope"}, &out, &errOut); err == nil {
		t.Fatal("expected an error for an unknown protocol")
	}
}

func TestRunParseErrorGoesToStderr(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-n", "abc"}, &out, &errOut); err == nil {
		t.Fatal("expected a parse error")
	}
	if out.Len() != 0 {
		t.Fatalf("parse error leaked to stdout: %q", out.String())
	}
	if !strings.Contains(errOut.String(), "invalid value") {
		t.Fatalf("stderr missing parse error: %q", errOut.String())
	}
}

// TestRunTinyCluster drives a minimal configuration end to end and checks
// the summary markers.
func TestRunTinyCluster(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-protocol", "Orthrus", "-n", "4", "-net", "lan",
		"-load", "300", "-duration", "2s", "-batch", "64"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, marker := range []string{"protocol     Orthrus", "network      LAN", "confirmed", "view changes", "breakdown"} {
		if !strings.Contains(s, marker) {
			t.Fatalf("output missing %q:\n%s", marker, s)
		}
	}
}
