// Command orthrus-sim runs a single Multi-BFT cluster configuration and
// prints a summary: throughput, client latency distribution, abort count
// and view changes. Useful for exploring one scenario without the full
// benchmark harness.
//
// Examples:
//
//	orthrus-sim -protocol Orthrus -n 16 -net wan -stragglers 1
//	orthrus-sim -protocol ISS -n 8 -net lan -load 20000 -duration 10s
//	orthrus-sim -protocol Orthrus -n 16 -faults 5 -fault-at 9s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	protocol := flag.String("protocol", "Orthrus", "protocol: Orthrus, ISS, RCC, Mir, DQBFT, Ladon")
	n := flag.Int("n", 16, "number of replicas (m = n instances)")
	netName := flag.String("net", "wan", "network profile: wan or lan")
	stragglers := flag.Int("stragglers", 0, "number of 10x-slow instances")
	faults := flag.Int("faults", 0, "replicas to crash at -fault-at (detectable faults)")
	faultAt := flag.Duration("fault-at", 9*time.Second, "crash injection time")
	byzantine := flag.Int("byzantine", 0, "undetectable (selective-participation) faulty replicas")
	load := flag.Float64("load", 10000, "client load in tx/s")
	duration := flag.Duration("duration", 15*time.Second, "submission window")
	payments := flag.Float64("payments", 0.46, "payment transaction fraction (0 uses the paper default)")
	batch := flag.Int("batch", 4096, "batch size (txs per block)")
	analytic := flag.Bool("analytic", false, "use the analytic quorum-time SB (fault-free only)")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	mode, ok := baseline.ModeByName(*protocol)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protocol)
		os.Exit(2)
	}
	net := cluster.WAN
	if *netName == "lan" {
		net = cluster.LAN
	}

	cfg := cluster.Config{
		N:                  *n,
		Protocol:           mode,
		Net:                net,
		Stragglers:         *stragglers,
		DetectableFaults:   *faults,
		FaultAt:            *faultAt,
		UndetectableFaults: *byzantine,
		Workload:           workload.Config{Seed: *seed, PaymentFraction: *payments},
		LoadTPS:            *load,
		Duration:           *duration,
		BatchSize:          *batch,
		AnalyticSB:         *analytic,
		NIC:                !*analytic,
		Seed:               *seed,
	}
	res := cluster.Run(cfg)

	fmt.Printf("protocol     %s\n", res.Protocol)
	fmt.Printf("network      %s, n=%d (m=n instances), f=%d\n", res.Net, res.N, (res.N-1)/3)
	fmt.Printf("submitted    %d txs @ %.0f tps\n", res.Submitted, *load)
	fmt.Printf("confirmed    %d in window (throughput %.1f ktps)\n", res.Confirmed, res.ThroughputTPS/1000)
	fmt.Printf("aborted      %d\n", res.Aborted)
	fmt.Printf("latency      %s\n", res.Latency.String())
	fmt.Printf("view changes %d\n", res.ViewChanges)
	fmt.Printf("sim events   %d\n", res.Events)
	fmt.Println("breakdown    (observer replica stage means)")
	for _, s := range metrics.Stages() {
		fmt.Printf("  %-16s %8.3fs\n", s.String(), res.Breakdown.Mean(s).Seconds())
	}
}
