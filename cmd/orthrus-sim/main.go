// Command orthrus-sim runs a single Multi-BFT cluster configuration and
// prints a summary: throughput, client latency distribution, abort count
// and view changes. Useful for exploring one scenario without the full
// benchmark harness.
//
// Examples:
//
//	orthrus-sim -protocol Orthrus -n 16 -net wan -stragglers 1
//	orthrus-sim -protocol ISS -n 8 -net lan -load 20000 -duration 10s
//	orthrus-sim -protocol Orthrus -n 16 -faults 5 -fault-at 9s
//	orthrus-sim -protocol Orthrus -n 10 -scenario partition-heal
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"strings"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// errAlreadyReported marks failures the FlagSet has already printed, so
// main exits nonzero without repeating them.
var errAlreadyReported = errors.New("orthrus-sim: flag parsing failed")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errAlreadyReported) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
}

func run(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("orthrus-sim", flag.ContinueOnError)
	protocol := fs.String("protocol", "Orthrus", "protocol: Orthrus, ISS, RCC, Mir, DQBFT, Ladon")
	n := fs.Int("n", 16, "number of replicas (m = n instances)")
	netName := fs.String("net", "wan", "network profile: wan or lan")
	stragglers := fs.Int("stragglers", 0, "number of 10x-slow instances")
	faults := fs.Int("faults", 0, "replicas to crash at -fault-at (detectable faults)")
	faultAt := fs.Duration("fault-at", 9*time.Second, "crash injection time")
	byzantine := fs.Int("byzantine", 0, "undetectable (selective-participation) faulty replicas")
	scn := fs.String("scenario", "", "preset fault/load scenario: "+strings.Join(scenario.Names(), ", ")+" (requires message-level PBFT)")
	load := fs.Float64("load", 10000, "client load in tx/s")
	duration := fs.Duration("duration", 15*time.Second, "submission window")
	payments := fs.Float64("payments", 0.46, "payment transaction fraction (0 uses the paper default)")
	batch := fs.Int("batch", 4096, "batch size (txs per block)")
	analytic := fs.Bool("analytic", false, "use the analytic quorum-time SB (fault-free only)")
	seed := fs.Int64("seed", 42, "simulation seed")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errAlreadyReported
	}

	mode, ok := baseline.ModeByName(*protocol)
	if !ok {
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	net := cluster.WAN
	if *netName == "lan" {
		net = cluster.LAN
	}

	cfg := cluster.Config{
		N:                  *n,
		Protocol:           mode,
		Net:                net,
		Stragglers:         *stragglers,
		DetectableFaults:   *faults,
		FaultAt:            *faultAt,
		UndetectableFaults: *byzantine,
		Workload:           workload.Config{Seed: *seed, PaymentFraction: *payments},
		LoadTPS:            *load,
		Duration:           *duration,
		BatchSize:          *batch,
		AnalyticSB:         *analytic,
		NIC:                !*analytic,
		Seed:               *seed,
	}
	if *scn != "" {
		if *analytic {
			return fmt.Errorf("-scenario requires message-level PBFT; drop -analytic")
		}
		s, err := scenario.Preset(*scn, *n, *duration, *seed)
		if err != nil {
			return err
		}
		cfg.Scenario = s
	}
	res := cluster.Run(cfg)

	fmt.Fprintf(w, "protocol     %s\n", res.Protocol)
	fmt.Fprintf(w, "network      %s, n=%d (m=n instances), f=%d\n", res.Net, res.N, (res.N-1)/3)
	fmt.Fprintf(w, "submitted    %d txs @ %.0f tps\n", res.Submitted, *load)
	fmt.Fprintf(w, "confirmed    %d in window (throughput %.1f ktps)\n", res.Confirmed, res.ThroughputTPS/1000)
	fmt.Fprintf(w, "aborted      %d\n", res.Aborted)
	fmt.Fprintf(w, "latency      %s\n", res.Latency.String())
	fmt.Fprintf(w, "view changes %d\n", res.ViewChanges)
	fmt.Fprintf(w, "sim events   %d\n", res.Events)
	if len(res.Phases) > 0 {
		fmt.Fprintf(w, "phases       (%s scenario windows)\n", *scn)
		for _, p := range res.Phases {
			fmt.Fprintf(w, "  %-20s [%5.1fs,%6.1fs)  %8.1f tps  lat=%5.2fs\n",
				p.Label, p.Start.Seconds(), p.End.Seconds(), p.ThroughputTPS, p.MeanLatency.Seconds())
		}
	}
	fmt.Fprintln(w, "breakdown    (observer replica stage means)")
	for _, s := range metrics.Stages() {
		fmt.Fprintf(w, "  %-16s %8.3fs\n", s.String(), res.Breakdown.Mean(s).Seconds())
	}
	return nil
}
