// Command orthrus-sim runs a single Multi-BFT cluster configuration
// through the public orthrus SDK and prints a summary: throughput, client
// latency distribution, abort count and view changes. Useful for exploring
// one scenario without the full benchmark harness.
//
// Examples:
//
//	orthrus-sim -protocol Orthrus -n 16 -net wan -stragglers 1
//	orthrus-sim -protocol ISS -n 8 -net lan -load 20000 -duration 10s
//	orthrus-sim -protocol Orthrus -n 16 -faults 5 -fault-at 9s
//	orthrus-sim -protocol Orthrus -n 10 -scenario partition-heal
//	orthrus-sim -protocol Orthrus -n 7 -scenario-file chaos.scn
//
// A -scenario-file holds the scenario DSL parsed by scenariodsl.Parse:
// one "<time> <kind> <operands>" event per line, e.g. "3s crash 5 6".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/orthrus"
	"repro/orthrus/scenariodsl"
)

// errAlreadyReported marks failures the FlagSet has already printed, so
// main exits nonzero without repeating them.
var errAlreadyReported = errors.New("orthrus-sim: flag parsing failed")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errAlreadyReported) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
}

func run(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("orthrus-sim", flag.ContinueOnError)
	protocol := fs.String("protocol", "Orthrus", "protocol: "+strings.Join(orthrus.ProtocolNames(), ", "))
	n := fs.Int("n", 16, "number of replicas (m = n instances)")
	netName := fs.String("net", "wan", "network profile: wan or lan")
	stragglers := fs.Int("stragglers", 0, "number of 10x-slow instances")
	faults := fs.Int("faults", 0, "replicas to crash at -fault-at (detectable faults)")
	faultAt := fs.Duration("fault-at", 9*time.Second, "crash injection time")
	byzantine := fs.Int("byzantine", 0, "undetectable (selective-participation) faulty replicas")
	scn := fs.String("scenario", "", "preset fault/load or attack scenario: "+strings.Join(append(scenariodsl.Presets(), scenariodsl.AttackPresets()...), ", ")+" (requires message-level PBFT)")
	scnFile := fs.String("scenario-file", "", "path to a scenario-DSL file (see scenariodsl.Parse; exclusive with -scenario)")
	load := fs.Float64("load", 10000, "client load in tx/s")
	duration := fs.Duration("duration", 15*time.Second, "submission window")
	payments := fs.Float64("payments", 0.46, "payment transaction fraction (0 uses the paper default; negative means all-contract)")
	batch := fs.Int("batch", 4096, "batch size (txs per block)")
	analytic := fs.Bool("analytic", false, "use the analytic quorum-time SB (fault-free only)")
	kernel := fs.String("kernel", "serial", "discrete-event kernel: serial or parallel (parallel needs -nic=false)")
	workers := fs.Int("workers", 0, "parallel-kernel worker pool size (0 = GOMAXPROCS)")
	nic := fs.Bool("nic", true, "model the shared 1 Gbps per-node NIC (message-level runs)")
	seed := fs.Int64("seed", 42, "simulation seed")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errAlreadyReported
	}

	// Pre-check the flags the SDK would reject, so errors speak in terms
	// of what the user typed rather than Go options or internal packages.
	if _, err := orthrus.LookupProtocol(*protocol); err != nil {
		return fmt.Errorf("unknown protocol %q (want one of: %s)", *protocol, strings.Join(orthrus.ProtocolNames(), ", "))
	}
	if *scn != "" && *scnFile != "" {
		return fmt.Errorf("-scenario and -scenario-file are mutually exclusive")
	}
	if (*scn != "" || *scnFile != "") && *analytic {
		return fmt.Errorf("scenarios require message-level PBFT; drop -analytic")
	}
	if *kernel != "serial" && *kernel != "parallel" {
		return fmt.Errorf("unknown kernel %q (want serial or parallel)", *kernel)
	}
	if *kernel == "parallel" && *nic {
		return fmt.Errorf("the parallel kernel does not model the shared NIC; add -nic=false")
	}
	if *kernel == "parallel" && *analytic {
		return fmt.Errorf("the parallel kernel requires message-level PBFT; drop -analytic")
	}
	net := orthrus.WAN
	if *netName == "lan" {
		net = orthrus.LAN
	}
	opts := []orthrus.Option{
		orthrus.WithProtocol(*protocol),
		orthrus.WithReplicas(*n),
		orthrus.WithNet(net),
		orthrus.WithStragglers(*stragglers, 0),
		orthrus.WithFaults(*faults, *faultAt),
		orthrus.WithByzantine(*byzantine),
		orthrus.WithLoad(*load),
		orthrus.WithDuration(*duration),
		orthrus.WithBatching(*batch, 0),
		orthrus.WithSeed(*seed),
	}
	// The flag keeps its historical semantics: 0 means "paper default"
	// (the SDK's unset state) and a negative value means an explicit
	// all-contract workload (the SDK's WithPayments(0)).
	switch {
	case *payments < 0:
		opts = append(opts, orthrus.WithPayments(0))
	case *payments != 0:
		opts = append(opts, orthrus.WithPayments(*payments))
	}
	if *analytic {
		opts = append(opts, orthrus.WithAnalyticSB())
	}
	opts = append(opts, orthrus.WithNIC(*nic))
	if *kernel == "parallel" {
		opts = append(opts, orthrus.WithKernel(orthrus.KernelParallel), orthrus.WithWorkers(*workers))
	}
	scnLabel := *scn
	if *scn != "" {
		s, err := scenariodsl.Preset(*scn, *n, *duration, *seed)
		if err != nil {
			return err
		}
		opts = append(opts, orthrus.WithScenario(s))
	}
	if *scnFile != "" {
		src, err := os.ReadFile(*scnFile)
		if err != nil {
			return err
		}
		s, err := scenariodsl.Parse(strings.TrimSuffix(filepath.Base(*scnFile), filepath.Ext(*scnFile)), string(src))
		if err != nil {
			return err
		}
		scnLabel = s.Name
		opts = append(opts, orthrus.WithScenario(s))
	}
	res, err := orthrus.Run(context.Background(), opts...)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "protocol     %s\n", res.Protocol)
	fmt.Fprintf(w, "network      %s, n=%d (m=n instances), f=%d\n", res.Net, res.Replicas, (res.Replicas-1)/3)
	fmt.Fprintf(w, "submitted    %d txs @ %.0f tps\n", res.Submitted, *load)
	fmt.Fprintf(w, "confirmed    %d in window (throughput %.1f ktps)\n", res.Confirmed, res.ThroughputTPS/1000)
	fmt.Fprintf(w, "aborted      %d\n", res.Aborted)
	fmt.Fprintf(w, "latency      %s\n", res.Latency.String())
	fmt.Fprintf(w, "view changes %d\n", res.ViewChanges)
	fmt.Fprintf(w, "sim events   %d\n", res.SimEvents)
	if res.Kernel == "parallel" {
		fmt.Fprintf(w, "kernel       parallel, %d shards\n", res.Shards)
	}
	if len(res.Phases) > 0 {
		fmt.Fprintf(w, "phases       (%s scenario windows)\n", scnLabel)
		for _, p := range res.Phases {
			fmt.Fprintf(w, "  %-20s [%5.1fs,%6.1fs)  %8.1f tps  lat=%5.2fs\n",
				p.Label, p.Start.Seconds(), p.End.Seconds(), p.ThroughputTPS, p.MeanLatency.Seconds())
		}
	}
	fmt.Fprintln(w, "breakdown    (observer replica stage means)")
	for _, s := range res.Breakdown {
		fmt.Fprintf(w, "  %-16s %8.3fs\n", s.Stage, s.Mean.Seconds())
	}
	return nil
}
