package simnet

import "container/heap"

// eventQueue is the scheduler's priority-queue seam: implementations must
// pop events in exactly the total order (at, ord). Sim selects one at
// construction (NewWithQueue); the calendar/timing-wheel queue is the
// default and the binary heap is kept as the reference implementation the
// differential property tests compare it against.
type eventQueue interface {
	push(e *event)
	pop() *event  // nil when empty
	peek() *event // nil when empty
	// popLE pops the earliest event only if its time is <= until (nil
	// otherwise): the run loop's fused peek-and-pop, one probe per event.
	popLE(until Time) *event
	len() int
	forEach(fn func(*event))
	reset() // drop every event, keeping capacity for reuse
}

// eventHeap is a min-heap over (at, ord) — the reference queue.
type eventHeap []*event

func (q eventHeap) Len() int { return len(q) }
func (q eventHeap) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].ord < q[j].ord
}
func (q eventHeap) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventHeap) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventHeap) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// heapQueue adapts eventHeap to the eventQueue seam.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) push(e *event) { heap.Push(&q.h, e) }

func (q *heapQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}

func (q *heapQueue) peek() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) popLE(until Time) *event {
	if len(q.h) == 0 || q.h[0].at > until {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}

func (q *heapQueue) len() int { return len(q.h) }

func (q *heapQueue) forEach(fn func(*event)) {
	for _, e := range q.h {
		fn(e)
	}
}

func (q *heapQueue) reset() {
	for i := range q.h {
		q.h[i] = nil
	}
	q.h = q.h[:0]
}
