package simnet_test

import (
	"fmt"
	"time"

	"repro/internal/simnet"
)

// ExampleSim_Reset shows the arena-reuse contract: a reset simulator
// replays a seeded workload with identical results — same clock, same
// event count, same RNG draws — while recycling the event pool and queue
// buckets the first run grew, so the second run allocates almost nothing.
func ExampleSim_Reset() {
	sim := simnet.New(7)
	run := func() {
		var fired int
		for i := 0; i < 3; i++ {
			d := time.Duration(1+sim.Rand().Intn(5)) * time.Millisecond
			sim.After(d, func() { fired++ })
		}
		sim.Run(simnet.Time(time.Second))
		fmt.Printf("t=%v events=%d fired=%d\n", time.Duration(sim.Now()), sim.EventsProcessed(), fired)
	}
	run()

	// Reset with the same seed: the replay is exact, on recycled arenas.
	sim.Reset(7)
	run()
	// Output:
	// t=1s events=3 fired=3
	// t=1s events=3 fired=3
}
