package simnet

import (
	"math/rand"
	"time"
)

// LatencyModel computes the one-way delay of a message of the given size
// from node `from` to node `to`. Implementations may draw jitter from rng.
type LatencyModel interface {
	Delay(from, to, size int, rng *rand.Rand) time.Duration
	// Base returns the deterministic component (no jitter) of the delay;
	// the analytic sequenced-broadcast layer uses it for closed-form quorum
	// time computation.
	Base(from, to, size int) time.Duration
}

// GeoModel models a geo-distributed deployment: nodes are assigned
// round-robin to regions; delay = inter-region base RTT/2 + serialization
// time at the bandwidth + small jitter. It reproduces the paper's 4-region
// WAN (France, US, Australia, Tokyo) and its 1 Gbps LAN.
type GeoModel struct {
	// RegionOf maps a node index to a region index.
	RegionOf func(node int) int
	// BaseLatency[i][j] is the one-way propagation delay region i -> j.
	BaseLatency [][]time.Duration
	// BandwidthBps is the per-link bandwidth in bits per second; a message
	// of size bytes adds size*8/BandwidthBps of serialization delay.
	BandwidthBps float64
	// JitterFrac is the max uniform jitter as a fraction of base latency.
	JitterFrac float64
	// LocalDelay is the delay for self-sends and intra-process handoff.
	LocalDelay time.Duration
}

// Base implements LatencyModel.
func (g *GeoModel) Base(from, to, size int) time.Duration {
	var base time.Duration
	if from == to {
		base = g.LocalDelay
	} else {
		base = g.BaseLatency[g.RegionOf(from)][g.RegionOf(to)]
		if base == 0 {
			base = g.LocalDelay
		}
	}
	if g.BandwidthBps > 0 && size > 0 {
		base += time.Duration(float64(size) * 8 / g.BandwidthBps * float64(time.Second))
	}
	return base
}

// Delay implements LatencyModel.
func (g *GeoModel) Delay(from, to, size int, rng *rand.Rand) time.Duration {
	base := g.Base(from, to, size)
	if g.JitterFrac > 0 && rng != nil {
		base += time.Duration(rng.Float64() * g.JitterFrac * float64(base))
	}
	return base
}

// wanRTT holds measured-ish RTTs (ms) between the paper's four regions:
// 0 France (eu-west-3), 1 US (us-east-1), 2 Australia (ap-southeast-2),
// 3 Tokyo (ap-northeast-1). One-way delay is RTT/2.
var wanRTT = [4][4]float64{
	{0, 80, 280, 230},
	{80, 0, 200, 150},
	{280, 200, 0, 110},
	{230, 150, 110, 0},
}

// NewWAN returns the paper's WAN profile: nodes spread round-robin over the
// four regions, 1 Gbps links, 5% jitter.
func NewWAN() *GeoModel {
	base := make([][]time.Duration, 4)
	for i := range base {
		base[i] = make([]time.Duration, 4)
		for j := range base[i] {
			base[i][j] = time.Duration(wanRTT[i][j] / 2 * float64(time.Millisecond))
		}
	}
	return &GeoModel{
		RegionOf:     func(node int) int { return node % 4 },
		BaseLatency:  base,
		BandwidthBps: 1e9,
		JitterFrac:   0.05,
		LocalDelay:   50 * time.Microsecond,
	}
}

// NewLAN returns the paper's LAN profile: a single site with sub-millisecond
// latency and 1 Gbps links.
func NewLAN() *GeoModel {
	base := [][]time.Duration{{500 * time.Microsecond}}
	return &GeoModel{
		RegionOf:     func(node int) int { return 0 },
		BaseLatency:  base,
		BandwidthBps: 1e9,
		JitterFrac:   0.05,
		LocalDelay:   50 * time.Microsecond,
	}
}

// FixedModel is a trivially uniform latency model for unit tests.
type FixedModel struct {
	D time.Duration
}

// Base implements LatencyModel.
func (f FixedModel) Base(from, to, size int) time.Duration { return f.D }

// Delay implements LatencyModel.
func (f FixedModel) Delay(from, to, size int, rng *rand.Rand) time.Duration { return f.D }
