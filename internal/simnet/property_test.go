package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property tests for the pooled event scheduler. The pooling contract
// (sim.go, ARCHITECTURE.md "Performance model"): an event is owned by the
// queue from schedule until its callback returns, then by the free pool;
// released events are zeroed; no event is ever in the queue and the pool
// at once. Execution order is the total order (at, ord) — identical for
// the timing-wheel queue and the reference heap, which the differential
// tests below pin against each other.

// queueKinds names both queue implementations for sub-test sweeps.
var queueKinds = []struct {
	name string
	kind QueueKind
}{
	{"wheel", QueueWheel},
	{"heap", QueueHeap},
}

// checkQueue verifies the implementation-specific structural invariant of
// the live queue: the heap property for the reference heap, bucket
// ordering plus cursor and count soundness for the wheel.
func checkQueue(t *testing.T, q eventQueue) {
	t.Helper()
	switch q := q.(type) {
	case *heapQueue:
		for i := range q.h {
			for _, c := range []int{2*i + 1, 2*i + 2} {
				if c < len(q.h) && q.h.Less(c, i) {
					t.Fatalf("heap invariant violated at parent %d child %d: (%d,%d) > (%d,%d)",
						i, c, q.h[i].at, q.h[i].ord, q.h[c].at, q.h[c].ord)
				}
			}
		}
	case *wheelQueue:
		n := 0
		curStart := q.curEnd - Time(1)<<q.shift
		for i := range q.buckets {
			b := q.buckets[i]
			var prev *event
			for e := b.head; e != nil; e = e.next {
				n++
				if idx := int(uint64(e.at)>>q.shift) & q.mask; idx != i {
					t.Fatalf("wheel event (%d,%d) filed in bucket %d, belongs in %d", e.at, e.ord, i, idx)
				}
				if prev != nil && !before(prev, e) {
					t.Fatalf("wheel bucket %d unsorted: (%d,%d) !< (%d,%d)",
						i, prev.at, prev.ord, e.at, e.ord)
				}
				if e.at < curStart {
					t.Fatalf("wheel cursor (start %d) passed queued event (%d,%d)", curStart, e.at, e.ord)
				}
				if e.next == nil && b.tail != e {
					t.Fatalf("wheel bucket %d tail pointer out of sync", i)
				}
				prev = e
			}
			if (b.head == nil) != (b.tail == nil) {
				t.Fatalf("wheel bucket %d head/tail out of sync", i)
			}
			// Lane structure: the skip chain visits exactly the heads of the
			// same-timestamp runs, each head's runTail is its lane's last
			// member, and the last lane is tailRun.
			var lastLane *event
			for r := b.head; r != nil; r = r.skip {
				rt := r.runTail
				if rt == nil {
					t.Fatalf("wheel bucket %d lane head (%d,%d) missing runTail", i, r.at, r.ord)
				}
				for m := r; ; m = m.next {
					if m.at != r.at {
						t.Fatalf("wheel bucket %d lane (at=%d) contains (%d,%d)", i, r.at, m.at, m.ord)
					}
					if m != r && (m.skip != nil || m.runTail != nil) {
						t.Fatalf("wheel bucket %d lane member (%d,%d) carries head links", i, m.at, m.ord)
					}
					if m == rt {
						break
					}
					if m.next == nil {
						t.Fatalf("wheel bucket %d lane (at=%d) runTail unreachable", i, r.at)
					}
				}
				if rt.next != nil && rt.next.at == r.at {
					t.Fatalf("wheel bucket %d lane (at=%d) split across runs", i, r.at)
				}
				if r.skip != nil && r.skip != rt.next {
					t.Fatalf("wheel bucket %d skip link skips events at at=%d", i, r.at)
				}
				lastLane = r
			}
			if lastLane != b.tailRun {
				t.Fatalf("wheel bucket %d tailRun out of sync", i)
			}
			if b.tailRun != nil && b.tailRun.runTail != b.tail {
				t.Fatalf("wheel bucket %d tail lane does not end at tail", i)
			}
			if occupied := q.occ[i>>6]&(1<<uint(i&63)) != 0; occupied != (b.head != nil) {
				t.Fatalf("wheel bucket %d occupancy bit %v but head nil=%v", i, occupied, b.head == nil)
			}
		}
		if n != q.n {
			t.Fatalf("wheel count %d != %d live events", q.n, n)
		}
	default:
		t.Fatalf("unknown queue implementation %T", q)
	}
}

// eventZeroed reports whether a released event carries no stale state
// (funcs are not comparable, so the struct is checked field by field).
func eventZeroed(e *event) bool {
	return e.at == 0 && e.ord == 0 && e.call == nil &&
		e.argA == nil && e.argB == nil && e.nw == nil &&
		e.from == 0 && e.to == 0 && e.size == 0 && e.msg == nil &&
		e.next == nil && e.skip == nil && e.runTail == nil
}

// queuedSet collects the identity of every live queued event.
func queuedSet(s *Sim) map[*event]bool {
	in := make(map[*event]bool, s.q.len())
	s.q.forEach(func(e *event) { in[e] = true })
	return in
}

// checkDisjoint verifies no event sits in both the queue and the pool,
// and that pooled events are fully zeroed.
func checkDisjoint(t *testing.T, s *Sim) {
	t.Helper()
	inQueue := queuedSet(s)
	for _, e := range s.pool {
		if inQueue[e] {
			t.Fatal("event present in both queue and free pool")
		}
		if !eventZeroed(e) {
			t.Fatalf("released event not zeroed: %+v", *e)
		}
	}
}

// TestSchedulerTotalOrder drives random event loads — seeded sweeps over
// mixed At/After/CallAt/AfterTimer scheduling, including events scheduled
// from inside callbacks — and asserts every execution trace is totally
// ordered by (at, ord). Every event here carries the global affinity, so
// its canonical key reduces to the global per-source count and must
// reflect scheduling order exactly. Both queue implementations are swept.
func TestSchedulerTotalOrder(t *testing.T) {
	for _, qk := range queueKinds {
		t.Run(qk.name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				rng := rand.New(rand.NewSource(seed))
				s := NewWithQueue(seed, qk.kind)
				type stamp struct {
					at  Time
					ord uint64
				}
				// nextOrd predicts the key the scheduler will assign to the
				// next globally scheduled event.
				nextOrd := func() uint64 {
					var cnt uint64 = 1
					if len(s.ordCnt) > 0 {
						cnt = s.ordCnt[0] + 1
					}
					return makeOrd(NodeNone, NodeNone, cnt)
				}
				var trace []stamp
				n := 50 + rng.Intn(200)
				var schedule func(depth int)
				schedule = func(depth int) {
					at := s.Now() + Time(rng.Intn(1000))
					ord := nextOrd() // the stamp the scheduler will assign next
					switch rng.Intn(4) {
					case 0:
						s.At(at, func() {
							trace = append(trace, stamp{s.Now(), ord})
							if depth < 3 && rng.Intn(2) == 0 {
								schedule(depth + 1)
							}
						})
					case 1:
						s.After(Duration(rng.Intn(1000)), func() {
							trace = append(trace, stamp{s.Now(), ord})
						})
					case 2:
						s.CallAt(at, func(a, b any) {
							trace = append(trace, stamp{s.Now(), ord})
						}, nil, nil)
					default:
						tm := s.AfterTimer(Duration(rng.Intn(1000)), func() {
							trace = append(trace, stamp{s.Now(), ord})
						})
						if rng.Intn(4) == 0 {
							tm.Stop()
						}
					}
				}
				for i := 0; i < n; i++ {
					schedule(0)
				}
				for s.Step() {
					checkQueue(t, s.q)
					checkDisjoint(t, s)
				}
				for i := 1; i < len(trace); i++ {
					a, b := trace[i-1], trace[i]
					if a.at > b.at || (a.at == b.at && a.ord >= b.ord) {
						t.Fatalf("seed %d: execution order violated (at,ord): (%d,%d) before (%d,%d)",
							seed, a.at, a.ord, b.at, b.ord)
					}
				}
			}
		})
	}
}

// TestQueueInvariantAfterHalt halts mid-run from a random event and checks
// the remaining queue still satisfies its structural invariant, stays
// disjoint from the pool, and that stepping can resume without corrupting
// either. Both queue implementations are swept.
func TestQueueInvariantAfterHalt(t *testing.T) {
	for _, qk := range queueKinds {
		t.Run(qk.name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				rng := rand.New(rand.NewSource(seed ^ 0x5eed))
				s := NewWithQueue(seed, qk.kind)
				n := 100 + rng.Intn(200)
				haltAt := rng.Intn(n)
				for i := 0; i < n; i++ {
					i := i
					s.After(Duration(rng.Intn(500)), func() {
						if i == haltAt {
							s.Halt()
						}
					})
				}
				s.RunAll(0)
				if !s.Halted() {
					t.Fatalf("seed %d: Halt not observed", seed)
				}
				checkQueue(t, s.q)
				checkDisjoint(t, s)
				// The engine must remain stepable after Halt (Run/RunAll stop,
				// the raw queue does not corrupt).
				for s.Step() {
					checkQueue(t, s.q)
					checkDisjoint(t, s)
				}
				if s.Pending() != 0 {
					t.Fatalf("seed %d: %d events stuck after drain", seed, s.Pending())
				}
			}
		})
	}
}

// TestPooledEventsNeverObservedAfterRelease schedules network deliveries
// and plain events, tracking the identity of every pooled event: after
// each step, no live queue entry may alias a pool entry, and every pool
// entry must be zeroed — a released event can never be observed with
// stale fields. Uses testing/quick over the load shape, for both queues.
func TestPooledEventsNeverObservedAfterRelease(t *testing.T) {
	for _, qk := range queueKinds {
		qk := qk
		t.Run(qk.name, func(t *testing.T) {
			f := func(seed int64, loadBits uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				s := NewWithQueue(seed, qk.kind)
				nw := NewNetwork(s, 4, FixedModel{D: time.Millisecond})
				delivered := 0
				for i := 0; i < 4; i++ {
					nw.Register(i, func(from int, msg any) {
						delivered++
						if m, ok := msg.(int); ok && rng.Intn(4) == 0 {
							nw.Send(0, m%4, 64, m+1)
						}
					})
				}
				load := 16 + int(loadBits)
				for i := 0; i < load; i++ {
					nw.Send(rng.Intn(4), rng.Intn(4), 128, i)
					if rng.Intn(3) == 0 {
						s.After(Duration(rng.Intn(100)), func() {})
					}
				}
				for s.Step() {
					inQueue := queuedSet(s)
					for _, e := range s.pool {
						if inQueue[e] || !eventZeroed(e) {
							return false
						}
					}
				}
				return delivered > 0 && s.Pending() == 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPoolReuseBounded pins the point of pooling: a long steady-state
// send/step cycle reuses a bounded set of event objects instead of
// allocating per message.
func TestPoolReuseBounded(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, 2, FixedModel{D: time.Millisecond})
	nw.Register(0, func(int, any) {})
	nw.Register(1, func(int, any) {})
	seen := make(map[*event]bool)
	for round := 0; round < 1000; round++ {
		nw.Send(0, 1, 64, round)
		s.q.forEach(func(e *event) { seen[e] = true })
		s.RunAll(0)
	}
	if len(seen) > 4 {
		t.Fatalf("steady-state cycle touched %d distinct event objects; pooling broken", len(seen))
	}
}
