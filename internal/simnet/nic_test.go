package simnet

import (
	"testing"
	"time"
)

func TestNICSerializationDelay(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, 2, FixedModel{D: 10 * time.Millisecond})
	nw.SetNICBps(1e9) // 1 Gbps
	var at Time
	nw.Register(0, func(from int, msg any) {})
	nw.Register(1, func(from int, msg any) { at = s.Now() })
	// 1 MB message: 8 ms egress + 10 ms propagation + 8 ms ingress = 26 ms.
	nw.Send(0, 1, 1_000_000, "big")
	s.RunAll(0)
	want := Time(26 * time.Millisecond)
	if at < want-Time(time.Millisecond) || at > want+Time(time.Millisecond) {
		t.Fatalf("delivery at %v, want ~%v", at, want)
	}
}

func TestNICEgressQueueing(t *testing.T) {
	// Two large messages from one sender must serialize on its egress link:
	// the second starts transmitting only after the first finishes.
	s := New(1)
	nw := NewNetwork(s, 3, FixedModel{D: time.Millisecond})
	nw.SetNICBps(1e9)
	var times []Time
	for i := 0; i < 3; i++ {
		i := i
		nw.Register(i, func(from int, msg any) {
			if i != 0 {
				times = append(times, s.Now())
			}
		})
	}
	nw.Send(0, 1, 1_000_000, "a") // 8 ms egress
	nw.Send(0, 2, 1_000_000, "b") // waits for a's egress
	s.RunAll(0)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := times[1] - times[0]
	if gap < Time(7*time.Millisecond) {
		t.Fatalf("second message not serialized behind first: gap %v", gap)
	}
}

func TestNICIngressQueueing(t *testing.T) {
	// Two senders converging on one receiver share its ingress link.
	s := New(1)
	nw := NewNetwork(s, 3, FixedModel{D: time.Millisecond})
	nw.SetNICBps(1e9)
	var times []Time
	nw.Register(0, func(from int, msg any) {})
	nw.Register(1, func(from int, msg any) {})
	nw.Register(2, func(from int, msg any) { times = append(times, s.Now()) })
	nw.Send(0, 2, 1_000_000, "a")
	nw.Send(1, 2, 1_000_000, "b")
	s.RunAll(0)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if gap := times[1] - times[0]; gap < Time(7*time.Millisecond) {
		t.Fatalf("ingress not shared: gap %v", gap)
	}
}

func TestNICSelfSendBypassesQueues(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, 1, FixedModel{D: time.Millisecond})
	nw.SetNICBps(1e9)
	var at Time
	nw.Register(0, func(from int, msg any) { at = s.Now() })
	nw.Send(0, 0, 1_000_000, "self")
	s.RunAll(0)
	if at != Time(time.Millisecond) {
		t.Fatalf("self-send delayed by NIC: %v", at)
	}
}

func TestNICSmallMessagesCheap(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, 2, FixedModel{D: 10 * time.Millisecond})
	nw.SetNICBps(1e9)
	var at Time
	nw.Register(0, func(from int, msg any) {})
	nw.Register(1, func(from int, msg any) { at = s.Now() })
	nw.Send(0, 1, 100, "small") // 0.8 us x2 — negligible
	s.RunAll(0)
	if at > Time(10*time.Millisecond+10*time.Microsecond) {
		t.Fatalf("small message overcharged: %v", at)
	}
}

func TestBaseDelayDeterministicAndScaled(t *testing.T) {
	s := New(1)
	wan := NewWAN()
	nw := NewNetwork(s, 8, wan)
	d1 := nw.BaseDelay(0, 2, 500)
	d2 := nw.BaseDelay(0, 2, 500)
	if d1 != d2 {
		t.Fatal("BaseDelay nondeterministic")
	}
	nw.SetOutScale(0, 10)
	if nw.BaseDelay(0, 2, 500) != 10*d1 {
		t.Fatal("BaseDelay ignores straggler scaling")
	}
}
