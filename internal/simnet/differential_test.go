package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Differential tests: the timing-wheel queue and the reference heap must
// produce the identical pop order for every (at, seq) workload — the
// wheel's whole correctness argument reduces to "indistinguishable from
// the heap".

// popAll drains q and returns the (at, seq) sequence observed.
func popAll(q eventQueue) [][2]int64 {
	var out [][2]int64
	for {
		e := q.pop()
		if e == nil {
			return out
		}
		out = append(out, [2]int64{int64(e.at), int64(e.seq)})
	}
}

// TestQueueDifferentialPopOrder drives both queue implementations through
// identical randomized push/pop interleavings — clustered timestamps,
// same-timestamp FIFO runs, sparse far-future outliers that force the
// wheel's year wraparound, and mid-stream pops — and asserts the popped
// (at, seq) sequences match element for element.
func TestQueueDifferentialPopOrder(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wheel := newWheelQueue()
		ref := &heapQueue{}
		var seq uint64
		var clock Time
		n := 200 + rng.Intn(800)
		push := func(at Time) {
			seq++
			wheel.push(&event{at: at, seq: seq})
			ref.push(&event{at: at, seq: seq})
		}
		for i := 0; i < n; i++ {
			switch rng.Intn(10) {
			case 0: // far-future outlier (timer-like): exercises year wrap
				push(clock + Time(rng.Int63n(int64(20*time.Second))))
			case 1, 2: // same-timestamp FIFO lane
				at := clock + Time(rng.Intn(1000))
				for j := 0; j < 1+rng.Intn(5); j++ {
					push(at)
				}
			case 3: // interleaved pop run: advances the clock like Step does
				for j := 0; j < rng.Intn(8); j++ {
					we, he := wheel.pop(), ref.pop()
					if (we == nil) != (he == nil) {
						t.Fatalf("seed %d: pop emptiness diverged", seed)
					}
					if we == nil {
						break
					}
					if we.at != he.at || we.seq != he.seq {
						t.Fatalf("seed %d: pop diverged: wheel (%d,%d) heap (%d,%d)",
							seed, we.at, we.seq, he.at, he.seq)
					}
					if we.at > clock {
						clock = we.at
					}
				}
			default: // clustered deliveries around the clock
				push(clock + Time(rng.Int63n(int64(300*time.Millisecond))))
			}
			if wheel.len() != ref.len() {
				t.Fatalf("seed %d: length diverged: wheel %d heap %d", seed, wheel.len(), ref.len())
			}
		}
		w, h := popAll(wheel), popAll(ref)
		if len(w) != len(h) {
			t.Fatalf("seed %d: drained %d vs %d events", seed, len(w), len(h))
		}
		for i := range w {
			if w[i] != h[i] {
				t.Fatalf("seed %d: drain diverged at %d: wheel (%d,%d) heap (%d,%d)",
					seed, i, w[i][0], w[i][1], h[i][0], h[i][1])
			}
		}
	}
}

// TestQueueDifferentialQuick is the testing/quick version: arbitrary
// timestamp vectors (interpreted as offsets, so pathological clustering
// and huge gaps both occur) must drain identically from both queues.
func TestQueueDifferentialQuick(t *testing.T) {
	f := func(offsets []uint32, popEvery uint8) bool {
		wheel := newWheelQueue()
		ref := &heapQueue{}
		var seq uint64
		var clock Time
		step := int(popEvery%7) + 2
		for i, off := range offsets {
			at := clock + Time(uint64(off)*uint64(1+i%3))
			seq++
			wheel.push(&event{at: at, seq: seq})
			ref.push(&event{at: at, seq: seq})
			if i%step == 0 {
				we, he := wheel.pop(), ref.pop()
				if we == nil || he == nil || we.at != he.at || we.seq != he.seq {
					return false
				}
				if we.at > clock {
					clock = we.at
				}
			}
		}
		w, h := popAll(wheel), popAll(ref)
		if len(w) != len(h) {
			return false
		}
		for i := range w {
			if w[i] != h[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// simTrace runs a deterministic mixed workload — network deliveries with
// reentrant sends, plain callbacks, cancelled timers, a mid-run Halt with
// resumption, and a Reset that reuses pooled nodes for a second round —
// and returns the (at, seq) execution trace.
func simTrace(kind QueueKind, seed int64) [][2]int64 {
	var trace [][2]int64
	s := NewWithQueue(seed, kind)
	for round := 0; round < 2; round++ {
		s.Reset(seed + int64(round))
		rng := rand.New(rand.NewSource(seed*31 + int64(round)))
		nw := NewNetwork(s, 4, FixedModel{D: time.Millisecond})
		record := func() { trace = append(trace, [2]int64{int64(s.Now()), int64(s.seq)}) }
		for i := 0; i < 4; i++ {
			nw.Register(i, func(from int, msg any) {
				record()
				if m, ok := msg.(int); ok && m > 0 && rng.Intn(3) == 0 {
					nw.Send(from, m%4, 64, m-1)
				}
			})
		}
		n := 150 + rng.Intn(150)
		haltAt := rng.Intn(n)
		for i := 0; i < n; i++ {
			i := i
			switch rng.Intn(4) {
			case 0:
				nw.Send(rng.Intn(4), rng.Intn(4), 128, rng.Intn(8))
			case 1:
				s.After(Duration(rng.Int63n(int64(5*time.Second))), func() {
					record()
					if i == haltAt {
						s.Halt()
					}
				})
			case 2:
				tm := s.AfterTimer(Duration(rng.Intn(2000)), record)
				if rng.Intn(3) == 0 {
					tm.Stop()
				}
			default:
				s.CallAfter(Duration(rng.Intn(100)), func(a, b any) { record() }, nil, nil)
			}
		}
		s.RunAll(0) // may stop early at the Halt
		s.halted = false
		s.RunAll(0) // resume and drain
	}
	return trace
}

// TestSimDifferentialTrace pins the scheduler end to end: the same seeded
// workload — including Halt mid-run, resumption, and pooled-node reuse
// across a Reset — executes in the identical (at, seq) order on the wheel
// and on the reference heap.
func TestSimDifferentialTrace(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		w := simTrace(QueueWheel, seed)
		h := simTrace(QueueHeap, seed)
		if len(w) != len(h) {
			t.Fatalf("seed %d: trace lengths diverged: wheel %d heap %d", seed, len(w), len(h))
		}
		for i := range w {
			if w[i] != h[i] {
				t.Fatalf("seed %d: trace diverged at %d: wheel (%d,%d) heap (%d,%d)",
					seed, i, w[i][0], w[i][1], h[i][0], h[i][1])
			}
		}
	}
}
