package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Differential tests: the timing-wheel queue and the reference heap must
// produce the identical pop order for every (at, ord) workload — the
// wheel's whole correctness argument reduces to "indistinguishable from
// the heap". The canonical ord key is not monotone in push order, so the
// workloads deliberately interleave sources and affinities to hit the
// wheel's in-lane ordered-insert paths (head replacement, mid-lane, tail
// append).

// popAll drains q and returns the (at, ord) sequence observed.
func popAll(q eventQueue) [][2]uint64 {
	var out [][2]uint64
	for {
		e := q.pop()
		if e == nil {
			return out
		}
		out = append(out, [2]uint64{uint64(e.at), e.ord})
	}
}

// ordGen hands out canonical keys the way a multi-node simulation does:
// random (dst, src) affinities with a strictly increasing per-source
// count, so keys are globally unique but arrive out of order.
type ordGen struct {
	rng  *rand.Rand
	cnts [9]uint64
}

func (g *ordGen) next() uint64 {
	src := g.rng.Intn(9) - 1
	dst := g.rng.Intn(9) - 1
	g.cnts[src+1]++
	return makeOrd(dst, src, g.cnts[src+1])
}

// TestQueueDifferentialPopOrder drives both queue implementations through
// identical randomized push/pop interleavings — clustered timestamps,
// same-timestamp lanes with out-of-order keys, sparse far-future outliers
// that force the wheel's year wraparound, and mid-stream pops — and
// asserts the popped (at, ord) sequences match element for element.
func TestQueueDifferentialPopOrder(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wheel := newWheelQueue()
		ref := &heapQueue{}
		gen := &ordGen{rng: rng}
		var clock Time
		n := 200 + rng.Intn(800)
		push := func(at Time) {
			ord := gen.next()
			wheel.push(&event{at: at, ord: ord})
			ref.push(&event{at: at, ord: ord})
		}
		for i := 0; i < n; i++ {
			switch rng.Intn(10) {
			case 0: // far-future outlier (timer-like): exercises year wrap
				push(clock + Time(rng.Int63n(int64(20*time.Second))))
			case 1, 2: // same-timestamp lane with interleaved sources
				at := clock + Time(rng.Intn(1000))
				for j := 0; j < 1+rng.Intn(5); j++ {
					push(at)
				}
			case 3: // interleaved pop run: advances the clock like Step does
				for j := 0; j < rng.Intn(8); j++ {
					we, he := wheel.pop(), ref.pop()
					if (we == nil) != (he == nil) {
						t.Fatalf("seed %d: pop emptiness diverged", seed)
					}
					if we == nil {
						break
					}
					if we.at != he.at || we.ord != he.ord {
						t.Fatalf("seed %d: pop diverged: wheel (%d,%d) heap (%d,%d)",
							seed, we.at, we.ord, he.at, he.ord)
					}
					if we.at > clock {
						clock = we.at
					}
				}
			default: // clustered deliveries around the clock
				push(clock + Time(rng.Int63n(int64(300*time.Millisecond))))
			}
			if wheel.len() != ref.len() {
				t.Fatalf("seed %d: length diverged: wheel %d heap %d", seed, wheel.len(), ref.len())
			}
		}
		w, h := popAll(wheel), popAll(ref)
		if len(w) != len(h) {
			t.Fatalf("seed %d: drained %d vs %d events", seed, len(w), len(h))
		}
		for i := range w {
			if w[i] != h[i] {
				t.Fatalf("seed %d: drain diverged at %d: wheel (%d,%d) heap (%d,%d)",
					seed, i, w[i][0], w[i][1], h[i][0], h[i][1])
			}
		}
	}
}

// TestQueueDifferentialQuick is the testing/quick version: arbitrary
// timestamp vectors (interpreted as offsets, so pathological clustering
// and huge gaps both occur) must drain identically from both queues.
func TestQueueDifferentialQuick(t *testing.T) {
	f := func(offsets []uint32, popEvery uint8) bool {
		wheel := newWheelQueue()
		ref := &heapQueue{}
		gen := &ordGen{rng: rand.New(rand.NewSource(int64(popEvery)))}
		var clock Time
		step := int(popEvery%7) + 2
		for i, off := range offsets {
			at := clock + Time(uint64(off)*uint64(1+i%3))
			ord := gen.next()
			wheel.push(&event{at: at, ord: ord})
			ref.push(&event{at: at, ord: ord})
			if i%step == 0 {
				we, he := wheel.pop(), ref.pop()
				if we == nil || he == nil || we.at != he.at || we.ord != he.ord {
					return false
				}
				if we.at > clock {
					clock = we.at
				}
			}
		}
		w, h := popAll(wheel), popAll(ref)
		if len(w) != len(h) {
			return false
		}
		for i := range w {
			if w[i] != h[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// traceStamp is one executed event in a scheduler trace: the virtual time,
// the running event count, and the affinity the event executed under.
type traceStamp struct {
	at     Time
	events uint64
	node   int
}

// simTrace runs a deterministic mixed workload — network deliveries with
// reentrant sends, node-pinned scheduling, plain callbacks, cancelled
// timers, a mid-run Halt with resumption, and a Reset that reuses pooled
// nodes for a second round — and returns the execution trace.
func simTrace(kind QueueKind, seed int64) []traceStamp {
	var trace []traceStamp
	s := NewWithQueue(seed, kind)
	for round := 0; round < 2; round++ {
		s.Reset(seed + int64(round))
		rng := rand.New(rand.NewSource(seed*31 + int64(round)))
		nw := NewNetwork(s, 4, FixedModel{D: time.Millisecond})
		record := func() { trace = append(trace, traceStamp{s.Now(), s.events, s.cur}) }
		for i := 0; i < 4; i++ {
			nw.Register(i, func(from int, msg any) {
				record()
				if m, ok := msg.(int); ok && m > 0 && rng.Intn(3) == 0 {
					nw.Send(from, m%4, 64, m-1)
				}
			})
		}
		n := 150 + rng.Intn(150)
		haltAt := rng.Intn(n)
		for i := 0; i < n; i++ {
			i := i
			switch rng.Intn(5) {
			case 0:
				nw.Send(rng.Intn(4), rng.Intn(4), 128, rng.Intn(8))
			case 1:
				s.After(Duration(rng.Int63n(int64(5*time.Second))), func() {
					record()
					if i == haltAt {
						s.Halt()
					}
				})
			case 2:
				tm := s.AfterTimer(Duration(rng.Intn(2000)), record)
				if rng.Intn(3) == 0 {
					tm.Stop()
				}
			case 3:
				On(s, rng.Intn(4)).After(Duration(rng.Intn(1500)), record)
			default:
				s.CallAfter(Duration(rng.Intn(100)), func(a, b any) { record() }, nil, nil)
			}
		}
		s.RunAll(0) // may stop early at the Halt
		s.halted = false
		s.RunAll(0) // resume and drain
	}
	return trace
}

// TestSimDifferentialTrace pins the scheduler end to end: the same seeded
// workload — including Halt mid-run, resumption, node-pinned scheduling,
// and pooled-node reuse across a Reset — executes in the identical order
// on the wheel and on the reference heap.
func TestSimDifferentialTrace(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		w := simTrace(QueueWheel, seed)
		h := simTrace(QueueHeap, seed)
		if len(w) != len(h) {
			t.Fatalf("seed %d: trace lengths diverged: wheel %d heap %d", seed, len(w), len(h))
		}
		for i := range w {
			if w[i] != h[i] {
				t.Fatalf("seed %d: trace diverged at %d: wheel %+v heap %+v",
					seed, i, w[i], h[i])
			}
		}
	}
}
