package simnet

import "testing"

// collect registers counting handlers on every node and returns the
// per-node delivery counts.
func collect(nw *Network) []int {
	got := make([]int, nw.Size())
	for i := 0; i < nw.Size(); i++ {
		i := i
		nw.Register(i, func(from int, msg any) { got[i]++ })
	}
	return got
}

func TestPartitionCutsAcrossGroups(t *testing.T) {
	sim := New(1)
	nw := NewNetwork(sim, 4, NewLAN())
	got := collect(nw)

	nw.Partition([]int{0, 1}, []int{2, 3})
	for from := 0; from < 4; from++ {
		nw.Broadcast(from, 100, "m")
	}
	sim.RunAll(0)

	// Each node hears from its own side only: itself and its partner.
	for i, n := range got {
		if n != 2 {
			t.Fatalf("node %d got %d deliveries during cut, want 2", i, n)
		}
	}

	nw.Heal()
	for from := 0; from < 4; from++ {
		nw.Broadcast(from, 100, "m")
	}
	sim.RunAll(0)
	for i, n := range got {
		if n != 2+4 {
			t.Fatalf("node %d got %d total deliveries after heal, want 6", i, n)
		}
	}
}

func TestPartitionImplicitGroup(t *testing.T) {
	sim := New(1)
	nw := NewNetwork(sim, 4, NewLAN())
	// Isolate node 3; nodes 0-2 are unlisted and form the implicit group.
	nw.Partition([]int{3})
	if !nw.LinkBlocked(0, 3) || !nw.LinkBlocked(3, 0) {
		t.Fatal("link 0<->3 should be cut")
	}
	if nw.LinkBlocked(0, 1) || nw.LinkBlocked(2, 0) {
		t.Fatal("links inside the implicit group should be open")
	}
}

// TestPartitionDropsInFlight pins the cut semantics: a message already in
// flight when the partition happens is lost, like packets on a failed path.
func TestPartitionDropsInFlight(t *testing.T) {
	sim := New(1)
	nw := NewNetwork(sim, 2, NewWAN())
	got := collect(nw)

	nw.Send(0, 1, 100, "in-flight")
	sim.At(1, func() { nw.Partition([]int{0}, []int{1}) }) // cut before delivery
	sim.RunAll(0)
	if got[1] != 0 {
		t.Fatalf("in-flight message survived the cut: %d deliveries", got[1])
	}
}

func TestSetLinkBlockedIsUnidirectional(t *testing.T) {
	sim := New(1)
	nw := NewNetwork(sim, 2, NewLAN())
	got := collect(nw)

	nw.SetLinkBlocked(0, 1, true)
	nw.Send(0, 1, 100, "dropped")
	nw.Send(1, 0, 100, "delivered")
	sim.RunAll(0)
	if got[1] != 0 || got[0] != 1 {
		t.Fatalf("asymmetric cut violated: got %v, want [1 0]", got)
	}
	// Self-links can never be cut.
	nw.SetLinkBlocked(0, 0, true)
	if nw.LinkBlocked(0, 0) {
		t.Fatal("self-link reported blocked")
	}
}
