// Package simnet is a deterministic discrete-event network simulator. It
// substitutes for the paper's AWS WAN/LAN deployment: replicas are
// event-driven state machines, messages are events scheduled on a virtual
// clock with delays drawn from a configurable latency model (4-region WAN
// or single-site LAN), and fault/straggler injection perturbs delivery.
//
// Determinism: events at equal virtual times are processed in scheduling
// order (a monotone sequence number breaks ties), and all randomness flows
// through a seeded generator, so every experiment is exactly reproducible.
//
// Scheduling: the event queue is an O(1)-amortized calendar/timing-wheel
// queue (wheel.go); the original binary min-heap survives as the
// reference implementation (heap.go, QueueHeap) that the differential
// property tests compare the wheel against. Both pop in the identical
// total order (at, seq), so results never depend on the choice.
//
// Allocation model: events are pooled. An executed event returns to a free
// list the moment its callback finishes, and the next At/Send reuses it, so
// a steady-state simulation allocates no event objects at all. Message
// deliveries are encoded as event fields rather than closures for the same
// reason. The pooling contract — an event is owned by the queue until its
// callback returns and by the pool afterwards, and released events are
// zeroed — is enforced by the property tests in property_test.go and
// documented in ARCHITECTURE.md's performance model.
package simnet

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Duration re-exports time.Duration for readability at call sites.
type Duration = time.Duration

// String formats the virtual time as a duration.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the time in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// event is one scheduled callback. Exactly one of the two callback forms
// is set: call (a function pointer with two operands — plain closures and
// cancellable timers ride in the operands, which hold func and pointer
// values without boxing allocations) or nw (a network delivery encoded as
// fields). Events are pooled: Step releases an event back to the
// simulator's free list after its callback returns, zeroing every field
// first. The struct is laid out to keep a popped event's queue links and
// ordering key on its first cache line, and the whole event in two.
type event struct {
	at  Time
	seq uint64

	// next, skip and runTail chain events inside one timing-wheel bucket
	// (wheel.go): the wheel queues pooled events intrusively, so
	// scheduling allocates no container nodes at all. next links the full
	// (at, seq) order; skip links the heads of same-timestamp runs (the
	// FIFO lanes) so an insert hops over a lane in one step; runTail, on a
	// lane's head, points at its last member for O(1) lane appends. All
	// three are owned by the queue and nil outside it. They sit next to
	// the ordering key so the queue's pop/insert path touches one cache
	// line of a cold event.
	next    *event
	skip    *event
	runTail *event

	// Closure-free callback: call(argA, argB). Used for hot-path events
	// (message deliveries to replicas, client submissions, timer wakeups)
	// where a closure per event would dominate the allocation profile.
	call       func(a, b any)
	argA, argB any

	// Network delivery: when nw is non-nil the event delivers msg from ->
	// to through nw's handler table, re-checking liveness and link state at
	// delivery time.
	nw       *Network
	from, to int32
	size     int32
	msg      any
}

// runFunc adapts a plain closure to the two-operand callback form (the
// func value rides in argA; pointer-shaped, so no boxing allocation).
func runFunc(a, _ any) { a.(func())() }

// runTimer adapts a cancellable callback: the closure rides in argA, the
// timer gate in argB.
func runTimer(a, b any) {
	if !b.(*Timer).stopped {
		a.(func())()
	}
}

// QueueKind selects the scheduler's event-queue implementation at Sim
// construction.
type QueueKind int

// The two queue implementations. QueueWheel is the default: an
// O(1)-amortized calendar/timing-wheel queue (wheel.go). QueueHeap is the
// original binary min-heap, retained as the reference implementation for
// the differential property tests and available for cross-checking runs.
const (
	QueueWheel QueueKind = iota
	QueueHeap
)

// Sim is the discrete-event engine.
type Sim struct {
	now    Time
	seq    uint64
	q      eventQueue
	pool   []*event // free list of released events
	rng    *rand.Rand
	events uint64 // total events processed, for accounting
	halted bool
}

// New creates a simulator with a seeded deterministic RNG, backed by the
// default timing-wheel queue.
func New(seed int64) *Sim {
	return NewWithQueue(seed, QueueWheel)
}

// NewWithQueue creates a simulator backed by the given queue
// implementation. Both implementations pop events in the identical total
// order (at, seq) — pinned by the differential property tests — so results
// never depend on the choice; only performance does.
func NewWithQueue(seed int64, kind QueueKind) *Sim {
	var q eventQueue
	if kind == QueueHeap {
		q = &heapQueue{}
	} else {
		q = newWheelQueue()
	}
	return &Sim{q: q, rng: rand.New(rand.NewSource(seed))}
}

// Reset returns the simulator to its just-constructed state — clock at
// zero, no queued events, counters cleared, RNG reseeded — while keeping
// every arena it has grown: the event free list, queue bucket capacity and
// scratch buffers all carry over. Queued events are released (zeroed) into
// the pool, so no references from the previous run survive. A reset Sim
// behaves exactly like New(seed): benchmark iterations and RunMany sweeps
// reuse one simulator per worker instead of re-growing these arenas every
// run (see cluster.Run).
func (s *Sim) Reset(seed int64) {
	s.q.forEach(func(e *event) {
		*e = event{}
		s.pool = append(s.pool, e)
	})
	s.q.reset()
	s.now = 0
	s.seq = 0
	s.events = 0
	s.halted = false
	s.rng.Seed(seed)
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand exposes the simulation RNG (single-threaded by construction).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// EventsProcessed returns the number of events executed so far.
func (s *Sim) EventsProcessed() uint64 { return s.events }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.q.len() }

// alloc takes an event from the pool (or allocates the pool's first use of
// this slot). The returned event is zeroed except for pooling bookkeeping.
func (s *Sim) alloc() *event {
	if n := len(s.pool); n > 0 {
		e := s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		return e
	}
	return &event{}
}

// release zeroes an executed event and returns it to the pool. Zeroing
// drops references (msg payloads, closures) so the pool never keeps dead
// objects alive, and makes use-after-release observable: a released event
// that somehow re-entered the queue would order at (0, 0).
func (s *Sim) release(e *event) {
	*e = event{}
	s.pool = append(s.pool, e)
}

// schedule stamps (at, seq) onto e and pushes it on the queue, clamping
// past times to now.
func (s *Sim) schedule(e *event, t Time) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.at, e.seq = t, s.seq
	s.q.push(e)
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	e := s.alloc()
	e.call, e.argA = runFunc, fn
	s.schedule(e, t)
}

// After schedules fn d after the current time.
func (s *Sim) After(d Duration, fn func()) { s.At(s.now+Time(d), fn) }

// CallAt schedules fn(argA, argB) at absolute virtual time t (clamped to
// now). Unlike At, a top-level fn plus pointer-shaped operands allocates
// nothing: the operands ride in the pooled event. This is the hot-path
// scheduling primitive — client submissions, analytic SB deliveries and
// consensus timer wakeups use it.
func (s *Sim) CallAt(t Time, fn func(a, b any), argA, argB any) {
	e := s.alloc()
	e.call, e.argA, e.argB = fn, argA, argB
	s.schedule(e, t)
}

// CallAfter schedules fn(argA, argB) d after the current time.
func (s *Sim) CallAfter(d Duration, fn func(a, b any), argA, argB any) {
	s.CallAt(s.now+Time(d), fn, argA, argB)
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	stopped bool
}

// Stop cancels the timer; the callback will not run.
func (t *Timer) Stop() { t.stopped = true }

// Stopped reports whether the timer was cancelled.
func (t *Timer) Stopped() bool { return t.stopped }

// AfterTimer schedules fn after d and returns a handle that can cancel it.
func (s *Sim) AfterTimer(d Duration, fn func()) *Timer {
	t := &Timer{}
	e := s.alloc()
	e.call, e.argA, e.argB = runTimer, fn, t
	s.schedule(e, s.now+Time(d))
	return t
}

// Step executes the next event. It returns false when the queue is empty.
func (s *Sim) Step() bool {
	e := s.q.pop()
	if e == nil {
		return false
	}
	s.now = e.at
	s.events++
	s.dispatch(e)
	s.release(e)
	return true
}

// dispatch runs an event's callback. The event is still owned by the
// caller (Step), which releases it afterwards; callbacks never see the
// event itself, so they cannot retain it past release.
func (s *Sim) dispatch(e *event) {
	if e.nw != nil {
		e.nw.deliver(int(e.from), int(e.to), int(e.size), e.msg)
	} else if e.call != nil {
		e.call(e.argA, e.argB)
	}
}

// Halt stops the engine: Run and RunAll return after the event that called
// Halt, leaving queued events unprocessed and the clock where it stopped.
// Cluster runs poll a cancellation hook from a scheduled event and call
// Halt to abandon a simulation early.
func (s *Sim) Halt() { s.halted = true }

// Halted reports whether Halt has been called.
func (s *Sim) Halted() bool { return s.halted }

// Run executes events until the queue drains, virtual time exceeds until,
// or Halt is called from an event. The loop uses the queue's fused
// conditional pop, probing the queue once per event.
func (s *Sim) Run(until Time) {
	for !s.halted {
		e := s.q.popLE(until)
		if e == nil {
			break
		}
		s.now = e.at
		s.events++
		s.dispatch(e)
		s.release(e)
	}
	if s.now < until && !s.halted {
		s.now = until
	}
}

// RunAll executes events until the queue drains, maxEvents is reached, or
// Halt is called; maxEvents <= 0 means no limit. It returns the number of
// events executed.
func (s *Sim) RunAll(maxEvents uint64) uint64 {
	start := s.events
	for !s.halted && s.q.len() > 0 {
		if maxEvents > 0 && s.events-start >= maxEvents {
			break
		}
		s.Step()
	}
	return s.events - start
}

// Handler consumes a message delivered to a node.
type Handler func(from int, msg any)

// Network delivers messages between registered nodes over a latency model.
type Network struct {
	sim      *Sim
	model    LatencyModel
	handlers []Handler
	// Latency fast path: when the model is a *GeoModel, the per-link base
	// propagation delays are precomputed into one flat n*n matrix at
	// topology build (NewNetwork), so a Send samples its delay with two
	// slice loads and one RNG draw — no interface dispatch and no RegionOf
	// closure calls. The model's BandwidthBps and JitterFrac are read live
	// (cluster.Run mutates them after construction); the region assignment
	// and base-latency table are snapshotted and must not change after
	// NewNetwork.
	geo      *GeoModel
	pairBase []Duration
	// outScale multiplies all delays for messages *sent by* a node; used to
	// model a straggler whose instance runs 10x slower (Sec. VII-A).
	outScale []float64
	// down marks crashed nodes: they neither send nor receive.
	down []bool
	// blocked, when non-nil, marks unidirectional link cuts as one flat
	// n*n row-major matrix (blocked[from*n+to]): it is checked both at send
	// and at delivery time, so a message already in flight when a cut
	// happens is lost unless the link is restored before its delivery
	// time. The whole matrix is one allocation, made lazily by the first
	// cut and reused for the rest of the run.
	blocked []bool
	// dropRate is the probability a message is lost (0 by default; GST
	// behavior is modeled as dropRate 0).
	dropRate float64
	// nicBps, when > 0, enables the NIC store-and-forward model: each node
	// has one egress and one ingress link of this bandwidth (bits/s) shared
	// by all its traffic. This is what makes throughput saturate under load
	// the way the paper's 1 Gbps interfaces do.
	nicBps      float64
	egressFree  []Time
	ingressFree []Time
	// Stats
	msgs  uint64
	bytes uint64
}

// NewNetwork creates a network for n nodes over the given latency model.
// A *GeoModel enables the precomputed per-link fast path (see Network).
func NewNetwork(sim *Sim, n int, model LatencyModel) *Network {
	nw := &Network{
		sim:      sim,
		model:    model,
		handlers: make([]Handler, n),
		outScale: onesVec(n),
		down:     make([]bool, n),
	}
	if g, ok := model.(*GeoModel); ok {
		nw.geo = g
		nw.pairBase = make([]Duration, n*n)
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				var base Duration
				if from == to {
					base = g.LocalDelay
				} else {
					base = g.BaseLatency[g.RegionOf(from)][g.RegionOf(to)]
					if base == 0 {
						base = g.LocalDelay
					}
				}
				nw.pairBase[from*n+to] = base
			}
		}
	}
	return nw
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Sim returns the underlying simulator.
func (nw *Network) Sim() *Sim { return nw.sim }

// Size returns the number of nodes.
func (nw *Network) Size() int { return len(nw.handlers) }

// Register installs the message handler for node id.
func (nw *Network) Register(id int, h Handler) {
	if id < 0 || id >= len(nw.handlers) {
		panic(fmt.Sprintf("simnet: register node %d out of range [0,%d)", id, len(nw.handlers)))
	}
	nw.handlers[id] = h
}

// SetOutScale sets the outgoing-delay multiplier of a node (straggler
// modeling: scale > 1 slows everything the node sends).
func (nw *Network) SetOutScale(id int, scale float64) { nw.outScale[id] = scale }

// OutScale returns the outgoing-delay multiplier of a node.
func (nw *Network) OutScale(id int) float64 { return nw.outScale[id] }

// SetDown marks a node crashed (true) or recovered (false).
func (nw *Network) SetDown(id int, down bool) { nw.down[id] = down }

// Down reports whether a node is crashed.
func (nw *Network) Down(id int) bool { return nw.down[id] }

// SetDropRate sets the uniform message-loss probability.
func (nw *Network) SetDropRate(p float64) { nw.dropRate = p }

// SetLinkBlocked cuts (true) or restores (false) the unidirectional link
// from -> to. The cut is checked at send and again at delivery time, so a
// message in flight when the cut happens is dropped unless the link is
// restored before it would deliver. Self-links cannot be cut. This is the
// low-level mutation hook behind Partition/Heal; scenarios may also use it
// directly for asymmetric cuts.
func (nw *Network) SetLinkBlocked(from, to int, blocked bool) {
	if from == to {
		return
	}
	if nw.blocked == nil {
		if !blocked {
			return
		}
		nw.blocked = make([]bool, len(nw.handlers)*len(nw.handlers))
	}
	nw.blocked[from*len(nw.handlers)+to] = blocked
}

// LinkBlocked reports whether traffic from -> to is currently cut.
func (nw *Network) LinkBlocked(from, to int) bool {
	return nw.blocked != nil && nw.blocked[from*len(nw.handlers)+to]
}

// Partition splits the network into the given groups: every link between
// nodes of different groups is cut in both directions, links within a group
// are restored. Nodes listed in no group form one additional implicit
// group. The cut replaces any previous Partition or SetLinkBlocked state;
// Heal removes it.
func (nw *Network) Partition(groups ...[]int) {
	n := len(nw.handlers)
	member := make([]int, n) // group id per node; len(groups) = implicit group
	for i := range member {
		member[i] = len(groups)
	}
	for g, nodes := range groups {
		for _, id := range nodes {
			member[id] = g
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			nw.SetLinkBlocked(a, b, member[a] != member[b])
		}
	}
}

// Heal restores every cut link (undoes Partition and SetLinkBlocked). The
// cut matrix is cleared in place, keeping its one allocation for the next
// partition of the run.
func (nw *Network) Heal() {
	for i := range nw.blocked {
		nw.blocked[i] = false
	}
}

// Messages returns the count of messages delivered.
func (nw *Network) Messages() uint64 { return nw.msgs }

// Bytes returns the total payload bytes delivered.
func (nw *Network) Bytes() uint64 { return nw.bytes }

// AddModeled folds messages that a closed-form layer models without
// simulating (the analytic SB's pre-prepare/prepare/commit traffic) into
// the delivery statistics, so Messages and Bytes stay comparable between
// message-level and analytic runs.
func (nw *Network) AddModeled(msgs, bytes uint64) {
	nw.msgs += msgs
	nw.bytes += bytes
}

// SetNICBps enables the shared-NIC model with the given per-node bandwidth
// in bits per second (0 disables it). When enabled, the latency model
// should not also charge serialization time (set its BandwidthBps to 0).
func (nw *Network) SetNICBps(bps float64) {
	nw.nicBps = bps
	if bps > 0 && nw.egressFree == nil {
		nw.egressFree = make([]Time, len(nw.handlers))
		nw.ingressFree = make([]Time, len(nw.handlers))
	}
}

// fastBase returns the jitter-free delay along the precomputed fast path,
// replicating GeoModel.Base's arithmetic exactly (operation order matters:
// the artifacts must stay byte-identical to the interface path).
func (nw *Network) fastBase(from, to, size int) Duration {
	base := nw.pairBase[from*len(nw.handlers)+to]
	if bps := nw.geo.BandwidthBps; bps > 0 && size > 0 {
		base += Duration(float64(size) * 8 / bps * float64(time.Second))
	}
	return base
}

// Delay returns the modeled propagation delay for a message of size bytes
// from -> to, including the sender's straggler scaling (NIC queueing is
// applied separately in Send). Exposed for the analytic SB.
func (nw *Network) Delay(from, to, size int) Duration {
	var d Duration
	if nw.geo != nil {
		d = nw.fastBase(from, to, size)
		if jf := nw.geo.JitterFrac; jf > 0 {
			d += Duration(nw.sim.rng.Float64() * jf * float64(d))
		}
	} else {
		d = nw.model.Delay(from, to, size, nw.sim.rng)
	}
	return Duration(float64(d) * nw.outScale[from])
}

// BaseDelay returns the deterministic (jitter-free) delay for a message of
// size bytes from -> to, including the sender's straggler scaling. The
// analytic sequenced-broadcast layer uses it for closed-form quorum times.
func (nw *Network) BaseDelay(from, to, size int) Duration {
	var d Duration
	if nw.geo != nil {
		d = nw.fastBase(from, to, size)
	} else {
		d = nw.model.Base(from, to, size)
	}
	return Duration(float64(d) * nw.outScale[from])
}

// serTime returns the time to push size bytes through one NIC link.
func (nw *Network) serTime(size int) Time {
	return Time(float64(size) * 8 / nw.nicBps * 1e9)
}

// Send delivers msg of the given size from -> to after the modeled delay.
// With the NIC model enabled, the message first queues on the sender's
// egress link, propagates, then queues on the receiver's ingress link.
// Self-sends are delivered with the model's local delay. The delivery is
// scheduled as a pooled field-encoded event, not a closure: one Send
// allocates nothing once the simulator's event pool is warm.
func (nw *Network) Send(from, to, size int, msg any) {
	if nw.down[from] || nw.down[to] || nw.LinkBlocked(from, to) {
		return
	}
	if nw.dropRate > 0 && nw.sim.rng.Float64() < nw.dropRate {
		return
	}
	prop := nw.Delay(from, to, size)
	var deliverAt Time
	if nw.nicBps > 0 && from != to {
		ser := nw.serTime(size)
		start := nw.sim.now
		if nw.egressFree[from] > start {
			start = nw.egressFree[from]
		}
		sent := start + ser
		nw.egressFree[from] = sent
		arrive := sent + Time(prop)
		recvStart := arrive
		if nw.ingressFree[to] > recvStart {
			recvStart = nw.ingressFree[to]
		}
		deliverAt = recvStart + ser
		nw.ingressFree[to] = deliverAt
	} else {
		deliverAt = nw.sim.now + Time(prop)
	}
	e := nw.sim.alloc()
	e.nw, e.from, e.to, e.size, e.msg = nw, int32(from), int32(to), int32(size), msg
	nw.sim.schedule(e, deliverAt)
}

// deliver lands a message at its destination, re-checking liveness and
// link state at delivery time (Step dispatches queued deliveries here).
func (nw *Network) deliver(from, to, size int, msg any) {
	if nw.down[to] || nw.LinkBlocked(from, to) || nw.handlers[to] == nil {
		return
	}
	nw.msgs++
	nw.bytes += uint64(size)
	nw.handlers[to](from, msg)
}

// Broadcast sends msg from -> every node including the sender itself
// (protocols typically self-deliver).
func (nw *Network) Broadcast(from, size int, msg any) {
	for to := range nw.handlers {
		nw.Send(from, to, size, msg)
	}
}
