// Package simnet is a deterministic discrete-event network simulator. It
// substitutes for the paper's AWS WAN/LAN deployment: replicas are
// event-driven state machines, messages are events scheduled on a virtual
// clock with delays drawn from a configurable latency model (4-region WAN
// or single-site LAN), and fault/straggler injection perturbs delivery.
//
// Determinism: events at equal virtual times are processed in the
// canonical order (destination node, source node, per-source count) — a
// tie-break that is a pure function of the workload, not of the engine
// that executes it — and all randomness flows through seeded generators,
// so every experiment is exactly reproducible. Because the canonical
// order is engine-independent, the conservative parallel kernel
// (kernel.go) executes the identical schedule the serial loop does, and
// measured results are bit-identical across kernels (the differential
// tests pin this).
//
// Scheduling: the event queue is an O(1)-amortized calendar/timing-wheel
// queue (wheel.go); the original binary min-heap survives as the
// reference implementation (heap.go, QueueHeap) that the differential
// property tests compare the wheel against. Both pop in the identical
// total order (at, ord), so results never depend on the choice.
//
// Allocation model: events are pooled. An executed event returns to a free
// list the moment its callback finishes, and the next At/Send reuses it, so
// a steady-state simulation allocates no event objects at all. Message
// deliveries are encoded as event fields rather than closures for the same
// reason. The pooling contract — an event is owned by the queue until its
// callback returns and by the pool afterwards, and released events are
// zeroed — is enforced by the property tests in property_test.go and
// documented in ARCHITECTURE.md's performance model.
package simnet

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Duration re-exports time.Duration for readability at call sites.
type Duration = time.Duration

// String formats the virtual time as a duration.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the time in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// event is one scheduled callback. Exactly one of the two callback forms
// is set: call (a function pointer with two operands — plain closures and
// cancellable timers ride in the operands, which hold func and pointer
// values without boxing allocations) or nw (a network delivery encoded as
// fields). Events are pooled: Step releases an event back to the
// simulator's free list after its callback returns, zeroing every field
// first. The struct is laid out to keep a popped event's queue links and
// ordering key on its first cache line, and the whole event in two.
type event struct {
	at  Time
	ord uint64

	// next, skip and runTail chain events inside one timing-wheel bucket
	// (wheel.go): the wheel queues pooled events intrusively, so
	// scheduling allocates no container nodes at all. next links the full
	// (at, ord) order; skip links the heads of same-timestamp runs (the
	// lanes) so an insert hops over a lane in one step; runTail, on a
	// lane's head, points at its last member for O(1) lane appends. All
	// three are owned by the queue and nil outside it. They sit next to
	// the ordering key so the queue's pop/insert path touches one cache
	// line of a cold event.
	next    *event
	skip    *event
	runTail *event

	// Closure-free callback: call(argA, argB). Used for hot-path events
	// (message deliveries to replicas, client submissions, timer wakeups)
	// where a closure per event would dominate the allocation profile.
	call       func(a, b any)
	argA, argB any

	// Network delivery: when nw is non-nil the event delivers msg from ->
	// to through nw's handler table, re-checking liveness and link state at
	// delivery time.
	nw       *Network
	from, to int32
	size     int32
	msg      any
}

// The canonical tie-break key. Events at equal virtual times execute in
// (dst, src, cnt) order: dst is the node the event targets (its affinity —
// the node whose state the callback touches), src is the node whose event
// scheduled it, and cnt is a per-source counter. The key is a pure
// function of the simulated workload — node i's k-th scheduling call
// produces the same key no matter which engine runs the simulation or in
// what real-time order independent nodes execute — which is what lets the
// sharded kernel reproduce the serial schedule exactly. Node -1 (NodeNone)
// is the global affinity: events scheduled outside any node context
// (setup code, scenario timelines, measurement ticks); it sorts before
// every real node at equal times, preserving the convention that
// timeline mutations apply before same-instant deliveries.
//
// Packing: dst and src ride as node+1 in 15 bits each, cnt in 34 bits
// (a single source schedules < 2^34 events per run; the scheduler panics
// on overflow rather than wrapping the order).
const (
	// NodeNone is the global affinity: no owning node.
	NodeNone = -1

	ordNodeBits = 15
	ordCntBits  = 34
	ordNodeMax  = 1<<ordNodeBits - 2 // ids are packed as node+1
	ordCntMax   = 1<<ordCntBits - 1
)

// makeOrd packs the canonical tie-break key.
func makeOrd(dst, src int, cnt uint64) uint64 {
	return uint64(dst+1)<<(ordNodeBits+ordCntBits) | uint64(src+1)<<ordCntBits | cnt
}

// ordDst unpacks the destination affinity (NodeNone for global events).
func ordDst(ord uint64) int {
	return int(ord>>(ordNodeBits+ordCntBits)) - 1
}

// runFunc adapts a plain closure to the two-operand callback form (the
// func value rides in argA; pointer-shaped, so no boxing allocation).
func runFunc(a, _ any) { a.(func())() }

// runTimer adapts a cancellable callback: the closure rides in argA, the
// timer gate in argB.
func runTimer(a, b any) {
	if !b.(*Timer).stopped {
		a.(func())()
	}
}

// QueueKind selects the scheduler's event-queue implementation at Sim
// construction.
type QueueKind int

// The two queue implementations. QueueWheel is the default: an
// O(1)-amortized calendar/timing-wheel queue (wheel.go). QueueHeap is the
// original binary min-heap, retained as the reference implementation for
// the differential property tests and available for cross-checking runs.
const (
	QueueWheel QueueKind = iota
	QueueHeap
)

// Sim is the discrete-event engine.
type Sim struct {
	now  Time
	q    eventQueue
	pool []*event // free list of released events
	rng  *rand.Rand
	seed int64
	// cur is the affinity of the currently executing event (NodeNone
	// between events and during setup). Scheduling calls without an
	// explicit destination inherit it as both halves of the canonical key;
	// curOrd is the executing event's own key (0 between events), exposed
	// so barrier-replay accounting can merge per-shard logs in exact
	// serial order.
	cur    int
	curOrd uint64
	// ordCnt holds the per-source schedule counters behind the canonical
	// tie-break, indexed by node+1. Each shard simulator of a sharded
	// kernel carries its own slice, pre-sized so it never grows (only the
	// slots of nodes the shard hosts are ever written — node i's counter
	// advances identically to the serial run's, because node i makes the
	// same scheduling calls in the same order on any kernel); ordFixed
	// marks that mode, where growth and global-affinity sources panic
	// instead of racing.
	ordCnt   []uint64
	ordFixed bool
	kind     QueueKind
	// route, when set, intercepts events whose destination lives on
	// another shard (kernel.go); it returns true when it consumed the
	// event into an outbox.
	route  func(e *event, dst int) bool
	events uint64 // total events processed, for accounting
	halted bool
}

// New creates a simulator with a seeded deterministic RNG, backed by the
// default timing-wheel queue.
func New(seed int64) *Sim {
	return NewWithQueue(seed, QueueWheel)
}

// NewWithQueue creates a simulator backed by the given queue
// implementation. Both implementations pop events in the identical total
// order (at, ord) — pinned by the differential property tests — so results
// never depend on the choice; only performance does.
func NewWithQueue(seed int64, kind QueueKind) *Sim {
	var q eventQueue
	if kind == QueueHeap {
		q = &heapQueue{}
	} else {
		q = newWheelQueue()
	}
	return &Sim{q: q, rng: rand.New(rand.NewSource(seed)), seed: seed, cur: NodeNone, kind: kind}
}

// Reset returns the simulator to its just-constructed state — clock at
// zero, no queued events, counters cleared, RNG reseeded — while keeping
// every arena it has grown: the event free list, queue bucket capacity and
// scratch buffers all carry over. Queued events are released (zeroed) into
// the pool, so no references from the previous run survive. A reset Sim
// behaves exactly like New(seed): benchmark iterations and RunMany sweeps
// reuse one simulator per worker instead of re-growing these arenas every
// run (see cluster.Run).
func (s *Sim) Reset(seed int64) {
	s.q.forEach(func(e *event) {
		*e = event{}
		s.pool = append(s.pool, e)
	})
	s.q.reset()
	s.now = 0
	clear(s.ordCnt)
	s.cur = NodeNone
	s.events = 0
	s.halted = false
	s.route = nil // a pooled sim must not keep a previous kernel's router
	s.seed = seed
	s.rng.Seed(seed)
}

// Seed returns the seed the simulator was constructed or last Reset with.
func (s *Sim) Seed() int64 { return s.seed }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand exposes the simulation RNG (single-threaded by construction).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// EventsProcessed returns the number of events executed so far.
func (s *Sim) EventsProcessed() uint64 { return s.events }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.q.len() }

// NextAt returns the timestamp of the earliest queued event, or false when
// the queue is empty. Real-transport node loops use it to sleep exactly
// until the next due timer instead of polling the wall clock.
func (s *Sim) NextAt() (Time, bool) {
	e := s.q.peek()
	if e == nil {
		return 0, false
	}
	return e.at, true
}

// alloc takes an event from the pool (or allocates the pool's first use of
// this slot). The returned event is zeroed except for pooling bookkeeping.
func (s *Sim) alloc() *event {
	if n := len(s.pool); n > 0 {
		e := s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		return e
	}
	return &event{}
}

// release zeroes an executed event and returns it to the pool. Zeroing
// drops references (msg payloads, closures) so the pool never keeps dead
// objects alive, and makes use-after-release observable: a released event
// that somehow re-entered the queue would order at (0, 0).
func (s *Sim) release(e *event) {
	*e = event{}
	s.pool = append(s.pool, e)
}

// nextCnt returns the next per-source schedule count for src (packed as
// src+1). The counter slice grows on demand for standalone sims; sharded
// sims pre-size it (growing concurrently would race across shards) and
// reject global-affinity sources, which would duplicate the serial run's
// global counter across shards.
func (s *Sim) nextCnt(src int) uint64 {
	idx := src + 1
	if idx >= len(s.ordCnt) {
		if s.ordFixed {
			panic(fmt.Sprintf("simnet: node %d outside the sharded kernel's node range", src))
		}
		grown := make([]uint64, idx+8)
		copy(grown, s.ordCnt)
		s.ordCnt = grown
	}
	if s.ordFixed && src == NodeNone {
		panic("simnet: global-affinity scheduling on a shard simulator; use a NodeSim")
	}
	s.ordCnt[idx]++
	if s.ordCnt[idx] > ordCntMax {
		panic(fmt.Sprintf("simnet: node %d exceeded %d scheduled events", src, uint64(ordCntMax)))
	}
	return s.ordCnt[idx]
}

// schedule stamps (at, ord) onto e for destination affinity dst and source
// src, and pushes it on the queue, clamping past times to now. When a
// shard router is installed and dst lives on another shard, the event is
// diverted to that shard's inbox instead (kernel.go).
func (s *Sim) schedule(e *event, t Time, dst, src int) {
	if t < s.now {
		t = s.now
	}
	if dst > ordNodeMax || dst < NodeNone {
		panic(fmt.Sprintf("simnet: node %d outside the schedulable range [-1,%d]", dst, ordNodeMax))
	}
	e.at = t
	e.ord = makeOrd(dst, src, s.nextCnt(src))
	if s.route != nil && s.route(e, dst) {
		return
	}
	s.q.push(e)
}

// At schedules fn at absolute virtual time t (clamped to now) with the
// affinity of the currently executing event (global outside any event).
func (s *Sim) At(t Time, fn func()) { s.AtNode(s.cur, t, fn) }

// AtNode schedules fn at absolute virtual time t with an explicit node
// affinity: the canonical order groups the event under dst, and a sharded
// kernel executes it on dst's shard. Use NodeNone for global events.
func (s *Sim) AtNode(dst int, t Time, fn func()) {
	e := s.alloc()
	e.call, e.argA = runFunc, fn
	s.schedule(e, t, dst, s.cur)
}

// After schedules fn d after the current time.
func (s *Sim) After(d Duration, fn func()) { s.At(s.now+Time(d), fn) }

// CallAt schedules fn(argA, argB) at absolute virtual time t (clamped to
// now). Unlike At, a top-level fn plus pointer-shaped operands allocates
// nothing: the operands ride in the pooled event. This is the hot-path
// scheduling primitive — client submissions, analytic SB deliveries and
// consensus timer wakeups use it. The affinity is inherited from the
// currently executing event.
func (s *Sim) CallAt(t Time, fn func(a, b any), argA, argB any) {
	s.CallAtNode(s.cur, t, fn, argA, argB)
}

// CallAtNode is CallAt with an explicit node affinity (see AtNode).
func (s *Sim) CallAtNode(dst int, t Time, fn func(a, b any), argA, argB any) {
	e := s.alloc()
	e.call, e.argA, e.argB = fn, argA, argB
	s.schedule(e, t, dst, s.cur)
}

// CallAfter schedules fn(argA, argB) d after the current time.
func (s *Sim) CallAfter(d Duration, fn func(a, b any), argA, argB any) {
	s.CallAt(s.now+Time(d), fn, argA, argB)
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	stopped bool
}

// Stop cancels the timer; the callback will not run.
func (t *Timer) Stop() { t.stopped = true }

// Stopped reports whether the timer was cancelled.
func (t *Timer) Stopped() bool { return t.stopped }

// AfterTimer schedules fn after d and returns a handle that can cancel it.
func (s *Sim) AfterTimer(d Duration, fn func()) *Timer {
	return s.AfterTimerNode(s.cur, d, fn)
}

// AfterTimerNode is AfterTimer with an explicit node affinity (see
// AtNode).
func (s *Sim) AfterTimerNode(dst int, d Duration, fn func()) *Timer {
	t := &Timer{}
	e := s.alloc()
	e.call, e.argA, e.argB = runTimer, fn, t
	s.schedule(e, s.now+Time(d), dst, s.cur)
	return t
}

// Step executes the next event. It returns false when the queue is empty.
func (s *Sim) Step() bool {
	e := s.q.pop()
	if e == nil {
		return false
	}
	s.now = e.at
	s.events++
	s.dispatch(e)
	s.release(e)
	return true
}

// dispatch runs an event's callback with s.cur set to the event's
// affinity, so everything the callback schedules is stamped with the
// correct canonical source. The event is still owned by the caller
// (Step), which releases it afterwards; callbacks never see the event
// itself, so they cannot retain it past release.
func (s *Sim) dispatch(e *event) {
	s.cur, s.curOrd = ordDst(e.ord), e.ord
	if e.nw != nil {
		e.nw.deliver(int(e.from), int(e.to), int(e.size), e.msg)
	} else if e.call != nil {
		e.call(e.argA, e.argB)
	}
	s.cur, s.curOrd = NodeNone, 0
}

// ExecOrd returns the canonical key of the currently executing event (0
// between events). Together with Now it totally orders observations made
// from inside callbacks — the sharded kernel's barrier replay merges
// per-shard logs stamped with (Now, ExecOrd) back into exact serial order.
func (s *Sim) ExecOrd() uint64 { return s.curOrd }

// Halt stops the engine: Run and RunAll return after the event that called
// Halt, leaving queued events unprocessed and the clock where it stopped.
// Cluster runs poll a cancellation hook from a scheduled event and call
// Halt to abandon a simulation early.
func (s *Sim) Halt() { s.halted = true }

// Halted reports whether Halt has been called.
func (s *Sim) Halted() bool { return s.halted }

// Run executes events until the queue drains, virtual time exceeds until,
// or Halt is called from an event. The loop uses the queue's fused
// conditional pop, probing the queue once per event.
func (s *Sim) Run(until Time) {
	for !s.halted {
		e := s.q.popLE(until)
		if e == nil {
			break
		}
		s.now = e.at
		s.events++
		s.dispatch(e)
		s.release(e)
	}
	if s.now < until && !s.halted {
		s.now = until
	}
}

// RunAll executes events until the queue drains, maxEvents is reached, or
// Halt is called; maxEvents <= 0 means no limit. It returns the number of
// events executed.
func (s *Sim) RunAll(maxEvents uint64) uint64 {
	start := s.events
	for !s.halted && s.q.len() > 0 {
		if maxEvents > 0 && s.events-start >= maxEvents {
			break
		}
		s.Step()
	}
	return s.events - start
}

// NodeSim is a node-pinned view of a simulator: every scheduling call
// stamps the node as both halves of the event's canonical key —
// destination affinity and source — rather than inheriting the executing
// event's. Replicas hold one (cluster constructs them with their own id),
// so state-machine timers and pulses always land on the owning node's
// shard and always draw from the node's own schedule counter — including
// when they are armed from outside the node's own events (setup, scenario
// recovery hooks at a kernel barrier), which keeps the canonical key a
// pure function of the workload on every kernel. The zero value is
// unusable; build one with On.
type NodeSim struct {
	S    *Sim
	Node int
}

// On pins sim to node: the returned view stamps node as the destination
// affinity and source of everything scheduled through it.
func On(sim *Sim, node int) NodeSim { return NodeSim{S: sim, Node: node} }

// Now returns the current virtual time.
func (n NodeSim) Now() Time { return n.S.Now() }

// At schedules fn at absolute time t on the pinned node.
func (n NodeSim) At(t Time, fn func()) {
	e := n.S.alloc()
	e.call, e.argA = runFunc, fn
	n.S.schedule(e, t, n.Node, n.Node)
}

// After schedules fn d after the current time on the pinned node.
func (n NodeSim) After(d Duration, fn func()) { n.At(n.S.now+Time(d), fn) }

// CallAt schedules fn(argA, argB) at absolute time t on the pinned node.
func (n NodeSim) CallAt(t Time, fn func(a, b any), argA, argB any) {
	e := n.S.alloc()
	e.call, e.argA, e.argB = fn, argA, argB
	n.S.schedule(e, t, n.Node, n.Node)
}

// CallAfter schedules fn(argA, argB) d after the current time on the
// pinned node.
func (n NodeSim) CallAfter(d Duration, fn func(a, b any), argA, argB any) {
	n.CallAt(n.S.now+Time(d), fn, argA, argB)
}

// CallAtNode schedules fn(argA, argB) at absolute time t with an explicit
// destination affinity, keeping the pinned node as the source — the
// client-shard primitive for cross-node hops (submissions to replicas).
func (n NodeSim) CallAtNode(dst int, t Time, fn func(a, b any), argA, argB any) {
	e := n.S.alloc()
	e.call, e.argA, e.argB = fn, argA, argB
	n.S.schedule(e, t, dst, n.Node)
}

// AfterTimer schedules fn after d on the pinned node and returns a handle
// that can cancel it.
func (n NodeSim) AfterTimer(d Duration, fn func()) *Timer {
	t := &Timer{}
	e := n.S.alloc()
	e.call, e.argA, e.argB = runTimer, fn, t
	n.S.schedule(e, n.S.now+Time(d), n.Node, n.Node)
	return t
}

// Handler consumes a message delivered to a node.
type Handler func(from int, msg any)

// Network delivers messages between registered nodes over a latency model.
type Network struct {
	sim *Sim
	// sims, when non-nil, maps each node to the shard simulator that
	// executes its events (kernel.go); nil means every node runs on sim.
	// Send reads the clock of — and schedules through — the sender's sim,
	// so the same Network serves both the serial loop and the sharded
	// kernel.
	sims     []*Sim
	model    LatencyModel
	handlers []Handler
	// Latency fast path: when the model is a *GeoModel, the per-link base
	// propagation delays are precomputed into one flat n*n matrix at
	// topology build (NewNetwork), so a Send samples its delay with two
	// slice loads and one RNG draw — no interface dispatch and no RegionOf
	// closure calls. The model's BandwidthBps and JitterFrac are read live
	// (cluster.Run mutates them after construction); the region assignment
	// and base-latency table are snapshotted and must not change after
	// NewNetwork.
	geo      *GeoModel
	pairBase []Duration
	// jit holds one counter-based jitter stream per directed link
	// (jit[from*n+to]), seeded from the run seed and the link identity.
	// Jitter is a pure function of (seed, from, to, per-link send count) —
	// not of the global event interleaving — so the serial and sharded
	// kernels sample identical delays for every message. Each stream's
	// single writer is the sender's shard. Allocated for every geo model.
	jit []uint64
	// outScale multiplies all delays for messages *sent by* a node; used to
	// model a straggler whose instance runs 10x slower (Sec. VII-A).
	outScale []float64
	// down marks crashed nodes: they neither send nor receive.
	down []bool
	// blocked, when non-nil, marks unidirectional link cuts as one flat
	// n*n row-major matrix (blocked[from*n+to]): it is checked both at send
	// and at delivery time, so a message already in flight when a cut
	// happens is lost unless the link is restored before its delivery
	// time. The whole matrix is one allocation, made lazily by the first
	// cut and reused for the rest of the run.
	blocked []bool
	// dropRate is the probability a message is lost (0 by default; GST
	// behavior is modeled as dropRate 0).
	dropRate float64
	// nicBps, when > 0, enables the NIC store-and-forward model: each node
	// has one egress and one ingress link of this bandwidth (bits/s) shared
	// by all its traffic. This is what makes throughput saturate under load
	// the way the paper's 1 Gbps interfaces do.
	nicBps      float64
	egressFree  []Time
	ingressFree []Time
	// Stats: delivered messages and bytes are counted per destination node
	// (single-writer under the sharded kernel — a node's deliveries all
	// execute on its own shard) and summed on read; modeled traffic
	// (AddModeled) is folded into the slot of node 0.
	msgsN  []uint64
	bytesN []uint64
}

// NewNetwork creates a network for n nodes over the given latency model.
// A *GeoModel enables the precomputed per-link fast path (see Network).
func NewNetwork(sim *Sim, n int, model LatencyModel) *Network {
	nw := &Network{
		sim:      sim,
		model:    model,
		handlers: make([]Handler, n),
		outScale: onesVec(n),
		down:     make([]bool, n),
		msgsN:    make([]uint64, n),
		bytesN:   make([]uint64, n),
	}
	if g, ok := model.(*GeoModel); ok {
		nw.geo = g
		nw.pairBase = make([]Duration, n*n)
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				var base Duration
				if from == to {
					base = g.LocalDelay
				} else {
					base = g.BaseLatency[g.RegionOf(from)][g.RegionOf(to)]
					if base == 0 {
						base = g.LocalDelay
					}
				}
				nw.pairBase[from*n+to] = base
			}
		}
		nw.jit = make([]uint64, n*n)
		for l := range nw.jit {
			nw.jit[l] = jitSeed(sim.seed, l)
		}
	}
	return nw
}

// jitSeed derives the initial stream state for one directed link from the
// run seed (splitmix64 of the mixed pair; distinct links never share a
// stream).
func jitSeed(seed int64, link int) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(link+1)
	return splitmix64(&x)
}

// splitmix64 advances the state and returns the next value of the stream
// (Steele et al., the standard 64-bit mixer).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// jitFloat draws the next uniform [0,1) sample from a link stream.
func jitFloat(state *uint64) float64 {
	return float64(splitmix64(state)>>11) / (1 << 53)
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Sim returns the underlying simulator.
func (nw *Network) Sim() *Sim { return nw.sim }

// Size returns the number of nodes.
func (nw *Network) Size() int { return len(nw.handlers) }

// Register installs the message handler for node id.
func (nw *Network) Register(id int, h Handler) {
	if id < 0 || id >= len(nw.handlers) {
		panic(fmt.Sprintf("simnet: register node %d out of range [0,%d)", id, len(nw.handlers)))
	}
	nw.handlers[id] = h
}

// SetOutScale sets the outgoing-delay multiplier of a node (straggler
// modeling: scale > 1 slows everything the node sends).
func (nw *Network) SetOutScale(id int, scale float64) { nw.outScale[id] = scale }

// OutScale returns the outgoing-delay multiplier of a node.
func (nw *Network) OutScale(id int) float64 { return nw.outScale[id] }

// SetDown marks a node crashed (true) or recovered (false).
func (nw *Network) SetDown(id int, down bool) { nw.down[id] = down }

// Down reports whether a node is crashed.
func (nw *Network) Down(id int) bool { return nw.down[id] }

// SetDropRate sets the uniform message-loss probability.
func (nw *Network) SetDropRate(p float64) { nw.dropRate = p }

// SetLinkBlocked cuts (true) or restores (false) the unidirectional link
// from -> to. The cut is checked at send and again at delivery time, so a
// message in flight when the cut happens is dropped unless the link is
// restored before it would deliver. Self-links cannot be cut. This is the
// low-level mutation hook behind Partition/Heal; scenarios may also use it
// directly for asymmetric cuts.
func (nw *Network) SetLinkBlocked(from, to int, blocked bool) {
	if from == to {
		return
	}
	if nw.blocked == nil {
		if !blocked {
			return
		}
		nw.blocked = make([]bool, len(nw.handlers)*len(nw.handlers))
	}
	nw.blocked[from*len(nw.handlers)+to] = blocked
}

// LinkBlocked reports whether traffic from -> to is currently cut.
func (nw *Network) LinkBlocked(from, to int) bool {
	return nw.blocked != nil && nw.blocked[from*len(nw.handlers)+to]
}

// Partition splits the network into the given groups: every link between
// nodes of different groups is cut in both directions, links within a group
// are restored. Nodes listed in no group form one additional implicit
// group. The cut replaces any previous Partition or SetLinkBlocked state;
// Heal removes it.
func (nw *Network) Partition(groups ...[]int) {
	n := len(nw.handlers)
	member := make([]int, n) // group id per node; len(groups) = implicit group
	for i := range member {
		member[i] = len(groups)
	}
	for g, nodes := range groups {
		for _, id := range nodes {
			member[id] = g
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			nw.SetLinkBlocked(a, b, member[a] != member[b])
		}
	}
}

// Heal restores every cut link (undoes Partition and SetLinkBlocked). The
// cut matrix is cleared in place, keeping its one allocation for the next
// partition of the run.
func (nw *Network) Heal() {
	for i := range nw.blocked {
		nw.blocked[i] = false
	}
}

// Messages returns the count of messages delivered (summed over the
// per-node counters; call only with all shards quiesced).
func (nw *Network) Messages() uint64 {
	var total uint64
	for _, m := range nw.msgsN {
		total += m
	}
	return total
}

// Bytes returns the total payload bytes delivered (summed over the
// per-node counters; call only with all shards quiesced).
func (nw *Network) Bytes() uint64 {
	var total uint64
	for _, b := range nw.bytesN {
		total += b
	}
	return total
}

// AddModeled folds messages that a closed-form layer models without
// simulating (the analytic SB's pre-prepare/prepare/commit traffic) into
// the delivery statistics, so Messages and Bytes stay comparable between
// message-level and analytic runs.
func (nw *Network) AddModeled(msgs, bytes uint64) {
	nw.msgsN[0] += msgs
	nw.bytesN[0] += bytes
}

// SetNICBps enables the shared-NIC model with the given per-node bandwidth
// in bits per second (0 disables it). When enabled, the latency model
// should not also charge serialization time (set its BandwidthBps to 0).
func (nw *Network) SetNICBps(bps float64) {
	nw.nicBps = bps
	if bps > 0 && nw.egressFree == nil {
		nw.egressFree = make([]Time, len(nw.handlers))
		nw.ingressFree = make([]Time, len(nw.handlers))
	}
}

// fastBase returns the jitter-free delay along the precomputed fast path,
// replicating GeoModel.Base's arithmetic exactly (operation order matters:
// the artifacts must stay byte-identical to the interface path).
func (nw *Network) fastBase(from, to, size int) Duration {
	base := nw.pairBase[from*len(nw.handlers)+to]
	if bps := nw.geo.BandwidthBps; bps > 0 && size > 0 {
		base += Duration(float64(size) * 8 / bps * float64(time.Second))
	}
	return base
}

// Delay returns the modeled propagation delay for a message of size bytes
// from -> to, including the sender's straggler scaling (NIC queueing is
// applied separately in Send). Exposed for the analytic SB. On the geo
// fast path the jitter sample advances the per-link stream, so the k-th
// send over a link draws the same jitter in every kernel.
func (nw *Network) Delay(from, to, size int) Duration {
	var d Duration
	if nw.geo != nil {
		d = nw.fastBase(from, to, size)
		if jf := nw.geo.JitterFrac; jf > 0 {
			d += Duration(jitFloat(&nw.jit[from*len(nw.handlers)+to]) * jf * float64(d))
		}
	} else {
		d = nw.model.Delay(from, to, size, nw.sim.rng)
	}
	return Duration(float64(d) * nw.outScale[from])
}

// BaseDelay returns the deterministic (jitter-free) delay for a message of
// size bytes from -> to, including the sender's straggler scaling. The
// analytic sequenced-broadcast layer uses it for closed-form quorum times.
func (nw *Network) BaseDelay(from, to, size int) Duration {
	var d Duration
	if nw.geo != nil {
		d = nw.fastBase(from, to, size)
	} else {
		d = nw.model.Base(from, to, size)
	}
	return Duration(float64(d) * nw.outScale[from])
}

// serTime returns the time to push size bytes through one NIC link.
func (nw *Network) serTime(size int) Time {
	return Time(float64(size) * 8 / nw.nicBps * 1e9)
}

// Send delivers msg of the given size from -> to after the modeled delay.
// With the NIC model enabled, the message first queues on the sender's
// egress link, propagates, then queues on the receiver's ingress link.
// Self-sends are delivered with the model's local delay. The delivery is
// scheduled as a pooled field-encoded event, not a closure: one Send
// allocates nothing once the simulator's event pool is warm.
func (nw *Network) Send(from, to, size int, msg any) {
	if nw.down[from] || nw.down[to] || nw.LinkBlocked(from, to) {
		return
	}
	sim := nw.simFor(from)
	if nw.dropRate > 0 && sim.rng.Float64() < nw.dropRate {
		return
	}
	prop := nw.Delay(from, to, size)
	var deliverAt Time
	if nw.nicBps > 0 && from != to {
		ser := nw.serTime(size)
		start := sim.now
		if nw.egressFree[from] > start {
			start = nw.egressFree[from]
		}
		sent := start + ser
		nw.egressFree[from] = sent
		arrive := sent + Time(prop)
		recvStart := arrive
		if nw.ingressFree[to] > recvStart {
			recvStart = nw.ingressFree[to]
		}
		deliverAt = recvStart + ser
		nw.ingressFree[to] = deliverAt
	} else {
		deliverAt = sim.now + Time(prop)
	}
	e := sim.alloc()
	e.nw, e.from, e.to, e.size, e.msg = nw, int32(from), int32(to), int32(size), msg
	sim.schedule(e, deliverAt, to, from)
}

// simFor returns the simulator that executes node's events: the node's
// shard under the sharded kernel, the single engine otherwise.
func (nw *Network) simFor(node int) *Sim {
	if nw.sims != nil {
		return nw.sims[node]
	}
	return nw.sim
}

// SetSharded installs the node -> shard-simulator map (kernel.go). The
// NIC model and message dropping read and mutate cross-node state at send
// time, so both are serial-only; the kernel's validation rejects them
// before ever getting here, and this panics as a backstop.
func (nw *Network) SetSharded(sims []*Sim) {
	if nw.nicBps > 0 || nw.dropRate > 0 {
		panic("simnet: NIC model and drop rate require the serial kernel")
	}
	if len(sims) != len(nw.handlers) {
		panic(fmt.Sprintf("simnet: shard map covers %d of %d nodes", len(sims), len(nw.handlers)))
	}
	nw.sims = sims
}

// MinCrossBase returns the minimum jitter-free propagation delay over all
// directed links that cross shards under the given node -> shard
// assignment (0 when no link crosses). This is the conservative kernel's
// lookahead: every cross-shard send adds at least this much to the
// sender's clock, because jitter only adds and outScale ≥ 1 is enforced by
// the kernel's validation. Requires the geo fast path.
func (nw *Network) MinCrossBase(shardOf []int) Duration {
	n := len(nw.handlers)
	if nw.pairBase == nil {
		panic("simnet: lookahead requires a GeoModel latency matrix")
	}
	var min Duration
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if shardOf[from] == shardOf[to] {
				continue
			}
			if b := nw.pairBase[from*n+to]; min == 0 || b < min {
				min = b
			}
		}
	}
	return min
}

// deliver lands a message at its destination, re-checking liveness and
// link state at delivery time (Step dispatches queued deliveries here).
func (nw *Network) deliver(from, to, size int, msg any) {
	if nw.down[to] || nw.LinkBlocked(from, to) || nw.handlers[to] == nil {
		return
	}
	nw.msgsN[to]++
	nw.bytesN[to] += uint64(size)
	nw.handlers[to](from, msg)
}

// Broadcast sends msg from -> every node including the sender itself
// (protocols typically self-deliver).
func (nw *Network) Broadcast(from, size int, msg any) {
	for to := range nw.handlers {
		nw.Send(from, to, size, msg)
	}
}
