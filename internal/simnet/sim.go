// Package simnet is a deterministic discrete-event network simulator. It
// substitutes for the paper's AWS WAN/LAN deployment: replicas are
// event-driven state machines, messages are events scheduled on a virtual
// clock with delays drawn from a configurable latency model (4-region WAN
// or single-site LAN), and fault/straggler injection perturbs delivery.
//
// Determinism: events at equal virtual times are processed in scheduling
// order (a monotone sequence number breaks ties), and all randomness flows
// through a seeded generator, so every experiment is exactly reproducible.
//
// Allocation model: events are pooled. An executed event returns to a free
// list the moment its callback finishes, and the next At/Send reuses it, so
// a steady-state simulation allocates no event objects at all. Message
// deliveries are encoded as event fields rather than closures for the same
// reason. The pooling contract — an event is owned by the queue until its
// callback returns and by the pool afterwards, and released events are
// zeroed — is enforced by the property tests in property_test.go and
// documented in ARCHITECTURE.md's performance model.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Duration re-exports time.Duration for readability at call sites.
type Duration = time.Duration

// String formats the virtual time as a duration.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the time in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// event is one scheduled callback. Exactly one of the three callback forms
// is set: fn (a plain closure), call (a closure-free function pointer with
// two operands), or nw (a network delivery encoded as fields). Events are
// pooled: Step releases an event back to the simulator's free list after
// its callback returns, zeroing every field first.
type event struct {
	at  Time
	seq uint64

	fn func()

	// Closure-free callback: call(argA, argB). Used for hot-path events
	// (message deliveries to replicas, client submissions, timer wakeups)
	// where a closure per event would dominate the allocation profile.
	call       func(a, b any)
	argA, argB any

	// Network delivery: when nw is non-nil the event delivers msg from ->
	// to through nw's handler table, re-checking liveness and link state at
	// delivery time.
	nw       *Network
	from, to int
	size     int
	msg      any

	// timer, when non-nil, gates the callback: a stopped timer turns the
	// event into a no-op.
	timer *Timer
}

// eventQueue is a min-heap over (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is the discrete-event engine.
type Sim struct {
	now    Time
	seq    uint64
	queue  eventQueue
	pool   []*event // free list of released events
	rng    *rand.Rand
	events uint64 // total events processed, for accounting
	halted bool
}

// New creates a simulator with a seeded deterministic RNG.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand exposes the simulation RNG (single-threaded by construction).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// EventsProcessed returns the number of events executed so far.
func (s *Sim) EventsProcessed() uint64 { return s.events }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

// alloc takes an event from the pool (or allocates the pool's first use of
// this slot). The returned event is zeroed except for pooling bookkeeping.
func (s *Sim) alloc() *event {
	if n := len(s.pool); n > 0 {
		e := s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		return e
	}
	return &event{}
}

// release zeroes an executed event and returns it to the pool. Zeroing
// drops references (msg payloads, closures) so the pool never keeps dead
// objects alive, and makes use-after-release observable: a released event
// that somehow re-entered the queue would order at (0, 0).
func (s *Sim) release(e *event) {
	*e = event{}
	s.pool = append(s.pool, e)
}

// schedule stamps (at, seq) onto e and pushes it on the queue, clamping
// past times to now.
func (s *Sim) schedule(e *event, t Time) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.at, e.seq = t, s.seq
	heap.Push(&s.queue, e)
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	e := s.alloc()
	e.fn = fn
	s.schedule(e, t)
}

// After schedules fn d after the current time.
func (s *Sim) After(d Duration, fn func()) { s.At(s.now+Time(d), fn) }

// CallAt schedules fn(argA, argB) at absolute virtual time t (clamped to
// now). Unlike At, a top-level fn plus pointer-shaped operands allocates
// nothing: the operands ride in the pooled event. This is the hot-path
// scheduling primitive — client submissions, analytic SB deliveries and
// consensus timer wakeups use it.
func (s *Sim) CallAt(t Time, fn func(a, b any), argA, argB any) {
	e := s.alloc()
	e.call, e.argA, e.argB = fn, argA, argB
	s.schedule(e, t)
}

// CallAfter schedules fn(argA, argB) d after the current time.
func (s *Sim) CallAfter(d Duration, fn func(a, b any), argA, argB any) {
	s.CallAt(s.now+Time(d), fn, argA, argB)
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	stopped bool
}

// Stop cancels the timer; the callback will not run.
func (t *Timer) Stop() { t.stopped = true }

// Stopped reports whether the timer was cancelled.
func (t *Timer) Stopped() bool { return t.stopped }

// AfterTimer schedules fn after d and returns a handle that can cancel it.
func (s *Sim) AfterTimer(d Duration, fn func()) *Timer {
	t := &Timer{}
	e := s.alloc()
	e.fn = fn
	e.timer = t
	s.schedule(e, s.now+Time(d))
	return t
}

// Step executes the next event. It returns false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	s.events++
	s.dispatch(e)
	s.release(e)
	return true
}

// dispatch runs an event's callback. The event is still owned by the
// caller (Step), which releases it afterwards; callbacks never see the
// event itself, so they cannot retain it past release.
func (s *Sim) dispatch(e *event) {
	if e.timer != nil && e.timer.stopped {
		return
	}
	switch {
	case e.nw != nil:
		e.nw.deliver(e.from, e.to, e.size, e.msg)
	case e.call != nil:
		e.call(e.argA, e.argB)
	default:
		if e.fn != nil {
			e.fn()
		}
	}
}

// Halt stops the engine: Run and RunAll return after the event that called
// Halt, leaving queued events unprocessed and the clock where it stopped.
// Cluster runs poll a cancellation hook from a scheduled event and call
// Halt to abandon a simulation early.
func (s *Sim) Halt() { s.halted = true }

// Halted reports whether Halt has been called.
func (s *Sim) Halted() bool { return s.halted }

// Run executes events until the queue drains, virtual time exceeds until,
// or Halt is called from an event.
func (s *Sim) Run(until Time) {
	for !s.halted && len(s.queue) > 0 && s.queue[0].at <= until {
		s.Step()
	}
	if s.now < until && !s.halted {
		s.now = until
	}
}

// RunAll executes events until the queue drains, maxEvents is reached, or
// Halt is called; maxEvents <= 0 means no limit. It returns the number of
// events executed.
func (s *Sim) RunAll(maxEvents uint64) uint64 {
	start := s.events
	for !s.halted && len(s.queue) > 0 {
		if maxEvents > 0 && s.events-start >= maxEvents {
			break
		}
		s.Step()
	}
	return s.events - start
}

// Handler consumes a message delivered to a node.
type Handler func(from int, msg any)

// Network delivers messages between registered nodes over a latency model.
type Network struct {
	sim      *Sim
	model    LatencyModel
	handlers []Handler
	// outScale multiplies all delays for messages *sent by* a node; used to
	// model a straggler whose instance runs 10x slower (Sec. VII-A).
	outScale []float64
	// down marks crashed nodes: they neither send nor receive.
	down []bool
	// blocked, when non-nil, marks unidirectional link cuts as one flat
	// n*n row-major matrix (blocked[from*n+to]): it is checked both at send
	// and at delivery time, so a message already in flight when a cut
	// happens is lost unless the link is restored before its delivery
	// time. The whole matrix is one allocation, made lazily by the first
	// cut and reused for the rest of the run.
	blocked []bool
	// dropRate is the probability a message is lost (0 by default; GST
	// behavior is modeled as dropRate 0).
	dropRate float64
	// nicBps, when > 0, enables the NIC store-and-forward model: each node
	// has one egress and one ingress link of this bandwidth (bits/s) shared
	// by all its traffic. This is what makes throughput saturate under load
	// the way the paper's 1 Gbps interfaces do.
	nicBps      float64
	egressFree  []Time
	ingressFree []Time
	// Stats
	msgs  uint64
	bytes uint64
}

// NewNetwork creates a network for n nodes over the given latency model.
func NewNetwork(sim *Sim, n int, model LatencyModel) *Network {
	return &Network{
		sim:      sim,
		model:    model,
		handlers: make([]Handler, n),
		outScale: onesVec(n),
		down:     make([]bool, n),
	}
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Sim returns the underlying simulator.
func (nw *Network) Sim() *Sim { return nw.sim }

// Size returns the number of nodes.
func (nw *Network) Size() int { return len(nw.handlers) }

// Register installs the message handler for node id.
func (nw *Network) Register(id int, h Handler) {
	if id < 0 || id >= len(nw.handlers) {
		panic(fmt.Sprintf("simnet: register node %d out of range [0,%d)", id, len(nw.handlers)))
	}
	nw.handlers[id] = h
}

// SetOutScale sets the outgoing-delay multiplier of a node (straggler
// modeling: scale > 1 slows everything the node sends).
func (nw *Network) SetOutScale(id int, scale float64) { nw.outScale[id] = scale }

// OutScale returns the outgoing-delay multiplier of a node.
func (nw *Network) OutScale(id int) float64 { return nw.outScale[id] }

// SetDown marks a node crashed (true) or recovered (false).
func (nw *Network) SetDown(id int, down bool) { nw.down[id] = down }

// Down reports whether a node is crashed.
func (nw *Network) Down(id int) bool { return nw.down[id] }

// SetDropRate sets the uniform message-loss probability.
func (nw *Network) SetDropRate(p float64) { nw.dropRate = p }

// SetLinkBlocked cuts (true) or restores (false) the unidirectional link
// from -> to. The cut is checked at send and again at delivery time, so a
// message in flight when the cut happens is dropped unless the link is
// restored before it would deliver. Self-links cannot be cut. This is the
// low-level mutation hook behind Partition/Heal; scenarios may also use it
// directly for asymmetric cuts.
func (nw *Network) SetLinkBlocked(from, to int, blocked bool) {
	if from == to {
		return
	}
	if nw.blocked == nil {
		if !blocked {
			return
		}
		nw.blocked = make([]bool, len(nw.handlers)*len(nw.handlers))
	}
	nw.blocked[from*len(nw.handlers)+to] = blocked
}

// LinkBlocked reports whether traffic from -> to is currently cut.
func (nw *Network) LinkBlocked(from, to int) bool {
	return nw.blocked != nil && nw.blocked[from*len(nw.handlers)+to]
}

// Partition splits the network into the given groups: every link between
// nodes of different groups is cut in both directions, links within a group
// are restored. Nodes listed in no group form one additional implicit
// group. The cut replaces any previous Partition or SetLinkBlocked state;
// Heal removes it.
func (nw *Network) Partition(groups ...[]int) {
	n := len(nw.handlers)
	member := make([]int, n) // group id per node; len(groups) = implicit group
	for i := range member {
		member[i] = len(groups)
	}
	for g, nodes := range groups {
		for _, id := range nodes {
			member[id] = g
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			nw.SetLinkBlocked(a, b, member[a] != member[b])
		}
	}
}

// Heal restores every cut link (undoes Partition and SetLinkBlocked). The
// cut matrix is cleared in place, keeping its one allocation for the next
// partition of the run.
func (nw *Network) Heal() {
	for i := range nw.blocked {
		nw.blocked[i] = false
	}
}

// Messages returns the count of messages delivered.
func (nw *Network) Messages() uint64 { return nw.msgs }

// Bytes returns the total payload bytes delivered.
func (nw *Network) Bytes() uint64 { return nw.bytes }

// AddModeled folds messages that a closed-form layer models without
// simulating (the analytic SB's pre-prepare/prepare/commit traffic) into
// the delivery statistics, so Messages and Bytes stay comparable between
// message-level and analytic runs.
func (nw *Network) AddModeled(msgs, bytes uint64) {
	nw.msgs += msgs
	nw.bytes += bytes
}

// SetNICBps enables the shared-NIC model with the given per-node bandwidth
// in bits per second (0 disables it). When enabled, the latency model
// should not also charge serialization time (set its BandwidthBps to 0).
func (nw *Network) SetNICBps(bps float64) {
	nw.nicBps = bps
	if bps > 0 && nw.egressFree == nil {
		nw.egressFree = make([]Time, len(nw.handlers))
		nw.ingressFree = make([]Time, len(nw.handlers))
	}
}

// Delay returns the modeled propagation delay for a message of size bytes
// from -> to, including the sender's straggler scaling (NIC queueing is
// applied separately in Send). Exposed for the analytic SB.
func (nw *Network) Delay(from, to, size int) Duration {
	d := nw.model.Delay(from, to, size, nw.sim.rng)
	return Duration(float64(d) * nw.outScale[from])
}

// BaseDelay returns the deterministic (jitter-free) delay for a message of
// size bytes from -> to, including the sender's straggler scaling. The
// analytic sequenced-broadcast layer uses it for closed-form quorum times.
func (nw *Network) BaseDelay(from, to, size int) Duration {
	d := nw.model.Base(from, to, size)
	return Duration(float64(d) * nw.outScale[from])
}

// serTime returns the time to push size bytes through one NIC link.
func (nw *Network) serTime(size int) Time {
	return Time(float64(size) * 8 / nw.nicBps * 1e9)
}

// Send delivers msg of the given size from -> to after the modeled delay.
// With the NIC model enabled, the message first queues on the sender's
// egress link, propagates, then queues on the receiver's ingress link.
// Self-sends are delivered with the model's local delay. The delivery is
// scheduled as a pooled field-encoded event, not a closure: one Send
// allocates nothing once the simulator's event pool is warm.
func (nw *Network) Send(from, to, size int, msg any) {
	if nw.down[from] || nw.down[to] || nw.LinkBlocked(from, to) {
		return
	}
	if nw.dropRate > 0 && nw.sim.rng.Float64() < nw.dropRate {
		return
	}
	prop := nw.Delay(from, to, size)
	var deliverAt Time
	if nw.nicBps > 0 && from != to {
		ser := nw.serTime(size)
		start := nw.sim.now
		if nw.egressFree[from] > start {
			start = nw.egressFree[from]
		}
		sent := start + ser
		nw.egressFree[from] = sent
		arrive := sent + Time(prop)
		recvStart := arrive
		if nw.ingressFree[to] > recvStart {
			recvStart = nw.ingressFree[to]
		}
		deliverAt = recvStart + ser
		nw.ingressFree[to] = deliverAt
	} else {
		deliverAt = nw.sim.now + Time(prop)
	}
	e := nw.sim.alloc()
	e.nw, e.from, e.to, e.size, e.msg = nw, from, to, size, msg
	nw.sim.schedule(e, deliverAt)
}

// deliver lands a message at its destination, re-checking liveness and
// link state at delivery time (Step dispatches queued deliveries here).
func (nw *Network) deliver(from, to, size int, msg any) {
	if nw.down[to] || nw.LinkBlocked(from, to) || nw.handlers[to] == nil {
		return
	}
	nw.msgs++
	nw.bytes += uint64(size)
	nw.handlers[to](from, msg)
}

// Broadcast sends msg from -> every node including the sender itself
// (protocols typically self-deliver).
func (nw *Network) Broadcast(from, size int, msg any) {
	for to := range nw.handlers {
		nw.Send(from, to, size, msg)
	}
}
