package simnet

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// Kernel differential tests: the conservative sharded kernel must be
// observationally identical to the serial loop — per-node delivery
// sequences, global measurements taken at ticks, event counts, message
// counters and final clocks all bit-equal. The workload below is a pure
// function of (node, message, time): handlers use no shared RNG, so any
// divergence is a kernel bug, not test nondeterminism.

// kRec is one observation a node makes: a delivery (from >= 0) or a
// locally scheduled callback (from < 0 tags the kind).
type kRec struct {
	at   Time
	from int
	msg  int
}

// kGlobal is one measurement taken by a global-affinity tick event.
type kGlobal struct {
	at    Time
	msgs  uint64
	bytes uint64
}

// kObs collects everything a run exposes to measurement.
type kObs struct {
	perNode [][]kRec
	global  []kGlobal
	events  uint64
	msgs    uint64
	bytes   uint64
	now     Time
	halted  bool
}

const (
	kNodes = 8
	kUntil = Time(40 * time.Millisecond)
)

// kernelWorkload wires the deterministic workload onto a simulator and
// network, given the scheduling views for nodes, client and global code.
// haltAt > 0 arms a global Halt at that time.
func kernelWorkload(nw *Network, global *Sim, nodeOn func(int) NodeSim, client NodeSim, obs *kObs, haltAt Time) {
	n := nw.Size()
	obs.perNode = make([][]kRec, n)
	record := func(node, from, msg int, at Time) {
		obs.perNode[node] = append(obs.perNode[node], kRec{at, from, msg})
	}
	for i := 0; i < n; i++ {
		i := i
		ns := nodeOn(i)
		nw.Register(i, func(from int, msg any) {
			m := msg.(int)
			record(i, from, m, ns.Now())
			if m <= 0 {
				return
			}
			hop := (i*7 + m*13) % n
			if hop == i {
				hop = (hop + 1) % n
			}
			switch m % 4 {
			case 0: // timer-driven resend: node-pinned delayed hop
				ns.After(Duration(m%9+1)*100*time.Microsecond, func() {
					record(i, -2, m, ns.Now())
					nw.Send(i, hop, 64+m%128, m-1)
				})
			case 1: // cancellable timer, deterministically stopped half the time
				tm := ns.AfterTimer(Duration(m%5+1)*200*time.Microsecond, func() {
					record(i, -3, m, ns.Now())
				})
				if (i+m)%2 == 0 {
					tm.Stop()
				}
			default: // immediate hop
				nw.Send(i, hop, 64+m%128, m-1)
			}
		})
	}
	// Seed traffic: every node opens a short gossip chain.
	for i := 0; i < n; i++ {
		nw.Send(i, (i+1)%n, 100, 5+i%4)
	}
	// Open-loop client source: submissions delivered to rotating targets
	// after the modeled base delay, exactly the cluster shape.
	var submit func(j int)
	submit = func(j int) {
		if Time(j)*Time(800*time.Microsecond) > kUntil {
			return
		}
		target := j % n
		d := nw.BaseDelay(target, (target+3)%n, 256)
		client.CallAtNode(target, client.Now()+Time(d), func(a, b any) {
			t, m := a.(int), b.(int)
			record(t, -9, m, Time(0)) // at filled by caller clock below
			obs.perNode[t][len(obs.perNode[t])-1].at = nodeOn(t).Now()
			nw.Send(t, (t+5)%n, 256, m%6)
		}, target, j)
		client.After(800*time.Microsecond, func() { submit(j + 1) })
	}
	client.After(200*time.Microsecond, func() { submit(0) })
	// Global timeline: measurement ticks plus scenario mutations at
	// statically known times — the barrier-aligned global events.
	tick := Time(3 * time.Millisecond)
	for k := 1; Time(k)*tick <= kUntil; k++ {
		k := k
		global.At(Time(k)*tick, func() {
			obs.global = append(obs.global, kGlobal{global.Now(), nw.Messages(), nw.Bytes()})
			switch k {
			case 2:
				nw.SetOutScale(1, 2.0) // straggler slowdown (scale > 1 only)
			case 3:
				nw.SetDown(2, true) // crash
			case 5:
				nw.SetDown(2, false) // recover
				nw.SetLinkBlocked(0, 5, true)
			case 7:
				nw.SetLinkBlocked(0, 5, false)
				// A global event that injects traffic: stamped through the
				// sender's shard counter, delivered like any node send.
				nw.Send(4, 6, 512, 3)
			}
		})
	}
	if haltAt > 0 {
		global.At(haltAt, global.Halt)
	}
}

// runSerial executes the workload on the serial reference loop.
func runSerial(seed int64, kind QueueKind, lan bool, haltAt Time) kObs {
	s := NewWithQueue(seed, kind)
	geo := NewWAN()
	if lan {
		geo = NewLAN()
	}
	nw := NewNetwork(s, kNodes, geo)
	var obs kObs
	kernelWorkload(nw, s, func(i int) NodeSim { return On(s, i) }, On(s, kNodes), &obs, haltAt)
	s.Run(kUntil)
	obs.events = s.EventsProcessed()
	obs.msgs, obs.bytes = nw.Messages(), nw.Bytes()
	obs.now, obs.halted = s.Now(), s.Halted()
	return obs
}

// runParallel executes the identical workload on the sharded kernel.
// Returns the kernel too so tests can inspect its stats and seams.
func runParallel(t *testing.T, seed int64, kind QueueKind, lan bool, workers int, haltAt Time) (kObs, *Kernel) {
	t.Helper()
	g := NewWithQueue(seed, kind)
	geo := NewWAN()
	if lan {
		geo = NewLAN()
	}
	nw := NewNetwork(g, kNodes, geo)
	plan, nshards := nw.PlanShards(workers)
	if plan == nil {
		t.Fatalf("PlanShards(%d) declined to shard", workers)
	}
	k := NewKernel(g, nw, plan, nshards, kNodes, workers)
	var obs kObs
	kernelWorkload(nw, g, k.NodeOn, k.ClientOn(), &obs, haltAt)
	k.Run(kUntil)
	obs.events = k.EventsProcessed()
	obs.msgs, obs.bytes = nw.Messages(), nw.Bytes()
	obs.now, obs.halted = g.Now(), k.Halted()
	return obs, k
}

// diffObs fails the test on the first observable divergence.
func diffObs(t *testing.T, label string, serial, parallel kObs) {
	t.Helper()
	for i := range serial.perNode {
		if !reflect.DeepEqual(serial.perNode[i], parallel.perNode[i]) {
			a, b := serial.perNode[i], parallel.perNode[i]
			for j := 0; j < len(a) || j < len(b); j++ {
				var sa, sb kRec
				if j < len(a) {
					sa = a[j]
				}
				if j < len(b) {
					sb = b[j]
				}
				if sa != sb {
					t.Fatalf("%s: node %d diverged at obs %d: serial %+v parallel %+v (lens %d/%d)",
						label, i, j, sa, sb, len(a), len(b))
				}
			}
		}
	}
	if !reflect.DeepEqual(serial.global, parallel.global) {
		t.Fatalf("%s: global ticks diverged:\nserial   %+v\nparallel %+v", label, serial.global, parallel.global)
	}
	if serial.events != parallel.events {
		t.Fatalf("%s: event counts diverged: serial %d parallel %d", label, serial.events, parallel.events)
	}
	if serial.msgs != parallel.msgs || serial.bytes != parallel.bytes {
		t.Fatalf("%s: traffic diverged: serial (%d,%d) parallel (%d,%d)",
			label, serial.msgs, serial.bytes, parallel.msgs, parallel.bytes)
	}
	if serial.now != parallel.now || serial.halted != parallel.halted {
		t.Fatalf("%s: clock diverged: serial (%v,%v) parallel (%v,%v)",
			label, serial.now, serial.halted, parallel.now, parallel.halted)
	}
}

// TestKernelDifferential pins parallel ≡ serial across topologies (WAN
// region shards, LAN stripes), queue kinds, worker counts and seeds:
// every observable — per-node delivery sequences with timestamps, global
// tick measurements, event totals, message/byte counters, final clock —
// must be bit-identical.
func TestKernelDifferential(t *testing.T) {
	for _, lan := range []bool{false, true} {
		for _, kind := range []QueueKind{QueueWheel, QueueHeap} {
			for seed := int64(1); seed <= 4; seed++ {
				serial := runSerial(seed, kind, lan, 0)
				for _, workers := range []int{2, 4} {
					label := fmt.Sprintf("lan=%v kind=%d seed=%d workers=%d", lan, kind, seed, workers)
					parallel, k := runParallel(t, seed, kind, lan, workers, 0)
					diffObs(t, label, serial, parallel)
					if k.Windows() == 0 || k.Merged() == 0 {
						t.Fatalf("%s: kernel did no parallel work (windows=%d merged=%d)",
							label, k.Windows(), k.Merged())
					}
				}
			}
		}
	}
}

// TestKernelDifferentialHalt pins the Halt path: a global Halt mid-run
// must stop both kernels at the identical instant with identical state.
func TestKernelDifferentialHalt(t *testing.T) {
	haltAt := Time(11 * time.Millisecond)
	for _, lan := range []bool{false, true} {
		serial := runSerial(7, QueueWheel, lan, haltAt)
		if !serial.halted || serial.now != haltAt {
			t.Fatalf("serial halt misfired: halted=%v now=%v", serial.halted, serial.now)
		}
		parallel, _ := runParallel(t, 7, QueueWheel, lan, 4, haltAt)
		diffObs(t, fmt.Sprintf("halt lan=%v", lan), serial, parallel)
	}
}

// TestKernelCrossQueueDifferential closes the square: the parallel wheel
// run must equal the serial heap run (and vice versa), so queue choice
// and kernel choice are independently interchangeable.
func TestKernelCrossQueueDifferential(t *testing.T) {
	serialHeap := runSerial(3, QueueHeap, false, 0)
	parallelWheel, _ := runParallel(t, 3, QueueWheel, false, 4, 0)
	diffObs(t, "serial-heap vs parallel-wheel", serialHeap, parallelWheel)
}

// TestKernelLookaheadInvariant checks the conservative floor on every
// cross-shard hand-off: replica-shard events merge at or beyond the
// window end (start + lookahead), client events at or beyond the window
// start, and no event ever merges back into the shard that sent it.
func TestKernelLookaheadInvariant(t *testing.T) {
	for _, lan := range []bool{false, true} {
		g := NewWithQueue(42, QueueWheel)
		geo := NewWAN()
		if lan {
			geo = NewLAN()
		}
		nw := NewNetwork(g, kNodes, geo)
		plan, nshards := nw.PlanShards(4)
		if plan == nil {
			t.Fatal("PlanShards declined to shard")
		}
		k := NewKernel(g, nw, plan, nshards, kNodes, 4)
		merges := 0
		k.onMerge = func(e *event, srcShard int, windowStart, windowEnd Time) {
			merges++
			dst := ordDst(e.ord)
			if srcShard == nshards { // client source
				if e.at < windowStart {
					t.Fatalf("client merge below window start: at %v window [%v,%v)", e.at, windowStart, windowEnd)
				}
				return
			}
			if e.at < windowEnd {
				t.Fatalf("lookahead violated: shard %d event at %v window [%v,%v)", srcShard, e.at, windowStart, windowEnd)
			}
			if e.at < windowStart+Time(k.Lookahead()) {
				t.Fatalf("merge below start+lookahead: at %v start %v look %v", e.at, windowStart, k.Lookahead())
			}
			if plan[dst] == srcShard {
				t.Fatalf("event for node %d merged back into its own shard %d", dst, srcShard)
			}
		}
		var obs kObs
		kernelWorkload(nw, g, k.NodeOn, k.ClientOn(), &obs, 0)
		k.Run(kUntil)
		if merges == 0 {
			t.Fatal("no cross-shard merges observed")
		}
		if k.MaxOutbox() == 0 {
			t.Fatal("outbox high-water mark not recorded")
		}
	}
}

// TestKernelShardQueueInvariants runs the structural queue checks from
// property_test.go against every shard queue mid-flight: at barriers each
// shard queue must still be a well-formed (at, ord) structure and the
// shard pools must stay disjoint.
func TestKernelShardQueueInvariants(t *testing.T) {
	g := NewWithQueue(9, QueueWheel)
	nw := NewNetwork(g, kNodes, NewWAN())
	plan, nshards := nw.PlanShards(4)
	k := NewKernel(g, nw, plan, nshards, kNodes, 4)
	var obs kObs
	kernelWorkload(nw, g, k.NodeOn, k.ClientOn(), &obs, 0)
	checked := 0
	// Global ticks run at barriers with every shard quiescent: piggyback
	// the structural checks there.
	tick := Time(5 * time.Millisecond)
	for i := 1; i <= 7; i++ {
		i := i
		g.At(Time(i)*tick, func() {
			checked++
			for _, s := range k.shards {
				checkQueue(t, s.q)
			}
			checkQueue(t, k.client.q)
			checkQueue(t, g.q)
		})
	}
	k.Run(kUntil)
	if checked == 0 {
		t.Fatal("no barrier checks ran")
	}
	sims := append([]*Sim{g, k.client}, k.shards...)
	for _, s := range sims {
		checkDisjoint(t, s)
	}
	checkDisjointAcross(t, sims)
}

// checkDisjointAcross verifies no pooled or queued event is shared
// between any two simulators: cross-shard hand-off moves ownership, it
// never aliases.
func checkDisjointAcross(t *testing.T, sims []*Sim) {
	t.Helper()
	owner := make(map[*event]int)
	for i, s := range sims {
		claim := func(e *event) {
			if prev, ok := owner[e]; ok {
				t.Fatalf("event shared between sims %d and %d", prev, i)
			}
			owner[e] = i
		}
		s.q.forEach(claim)
		for _, e := range s.pool {
			claim(e)
		}
	}
}

// TestPlanShards pins the shard-planning policy: WAN shards by region
// (splitting a region would collapse the 40 ms lookahead to the 50 µs
// local delay), LAN stripes round-robin, and the planner declines when
// sharding is impossible or pointless.
func TestPlanShards(t *testing.T) {
	sim := New(1)
	wan := NewNetwork(sim, 8, NewWAN())
	plan, nshards := wan.PlanShards(4)
	if nshards != 4 || plan == nil {
		t.Fatalf("WAN 8x4: got %d shards", nshards)
	}
	for i, sh := range plan {
		if sh != i%4 {
			t.Fatalf("WAN shard of node %d = %d, want region %d", i, sh, i%4)
		}
	}
	if got := wan.MinCrossBase(plan); got != 40*time.Millisecond {
		t.Fatalf("WAN lookahead = %v, want 40ms", got)
	}

	// More workers than regions: capped at the region count.
	if _, nshards = wan.PlanShards(16); nshards != 4 {
		t.Fatalf("WAN 8x16: got %d shards, want 4", nshards)
	}
	// Two workers over four regions: regions fold onto two shards.
	plan, nshards = wan.PlanShards(2)
	if nshards != 2 {
		t.Fatalf("WAN 8x2: got %d shards", nshards)
	}
	for i, sh := range plan {
		if sh != (i%4)%2 {
			t.Fatalf("WAN 8x2 shard of node %d = %d", i, sh)
		}
	}

	sim2 := New(1)
	lan := NewNetwork(sim2, 6, NewLAN())
	plan, nshards = lan.PlanShards(4)
	if nshards != 4 {
		t.Fatalf("LAN 6x4: got %d shards", nshards)
	}
	for i, sh := range plan {
		if sh != i%4 {
			t.Fatalf("LAN stripe of node %d = %d", i, sh)
		}
	}
	if got := lan.MinCrossBase(plan); got != 500*time.Microsecond {
		t.Fatalf("LAN lookahead = %v, want 500µs", got)
	}

	// Declines: single worker, no geo fast path, single node.
	if plan, _ := wan.PlanShards(1); plan != nil {
		t.Fatal("PlanShards(1) should decline")
	}
	sim3 := New(1)
	fixed := NewNetwork(sim3, 8, FixedModel{D: time.Millisecond})
	if plan, _ := fixed.PlanShards(4); plan != nil {
		t.Fatal("PlanShards without geo fast path should decline")
	}
	sim4 := New(1)
	one := NewNetwork(sim4, 1, NewWAN())
	if plan, _ := one.PlanShards(4); plan != nil {
		t.Fatal("PlanShards with one node should decline")
	}
}

// TestKernelRejectsServices pins the serial-only guards: NIC queueing and
// message drops mutate cross-shard state at send time and must be
// rejected at SetSharded.
func TestKernelRejectsSerialOnly(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("nic", func() {
		g := New(1)
		nw := NewNetwork(g, 8, NewWAN())
		nw.SetNICBps(1e9)
		plan, nshards := nw.PlanShards(4)
		NewKernel(g, nw, plan, nshards, 8, 4)
	})
	mustPanic("drops", func() {
		g := New(1)
		nw := NewNetwork(g, 8, NewWAN())
		nw.SetDropRate(0.01)
		plan, nshards := nw.PlanShards(4)
		NewKernel(g, nw, plan, nshards, 8, 4)
	})
	mustPanic("node-halt", func() {
		g := New(1)
		nw := NewNetwork(g, 8, NewWAN())
		plan, nshards := nw.PlanShards(4)
		k := NewKernel(g, nw, plan, nshards, 8, 4)
		k.NodeOn(0).After(time.Millisecond, func() { k.simOf[0].Halt() })
		k.Run(Time(10 * time.Millisecond))
	})
}
