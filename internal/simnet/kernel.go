package simnet

import (
	"fmt"
	"sync"
)

// Conservative parallel-DES kernel. Replicas are partitioned into shards,
// each with its own Sim (clock, event queue, event pool); a coordinator
// alternates safe execution windows with barriers. The window length is
// the lookahead: the minimum jitter-free propagation delay of any link
// that crosses shards, so an event executed anywhere inside a window can
// only schedule cross-shard work at or beyond the window's end. Shards
// therefore run a window concurrently without ever needing an event the
// other shards have not sent yet — the classic conservative synchronous
// protocol, with the lookahead read off the GeoModel base-delay matrix
// that the Network precomputes anyway.
//
// Determinism contract: the kernel executes the exact event schedule the
// serial loop does. Three mechanisms carry the proof:
//
//  1. The canonical tie-break key (sim.go): equal-time events order by
//     (dst, src, per-source count), a pure function of the workload. Each
//     shard pops its own queue in (at, ord) order, and since every event
//     executes on its destination's shard, the per-node event sequence —
//     the only order a node can observe — is identical to the serial
//     run's. Cross-shard merge order is irrelevant: the destination queue
//     re-sorts by the same key.
//  2. Per-link jitter streams (Network.jit): delay sampling depends only
//     on (seed, link, per-link send count), not on global interleaving.
//  3. Windows never span a global event. Scenario mutations, measurement
//     ticks and fault injections live on the global Sim at statically
//     known times; the coordinator clamps every window to the next global
//     event time and runs global events at barriers, with every shard
//     quiescent and every clock aligned — exactly the state the serial
//     loop is in when it executes them.
//
// The client shard is a pure source: the open-loop submission chain
// schedules into replica shards but never receives, so its (possibly
// sub-lookahead) send delays cannot constrain the window. Each window the
// client runs first, its outbox merges, then the replica shards run the
// same window in parallel.
//
// Memory model: shard state is touched only by its worker goroutine
// during a window; coordinator↔worker hand-offs go through a job channel
// and WaitGroup, so every barrier is a full happens-before edge. Outboxes
// are single-writer (the owning shard during windows, the coordinator at
// barriers). The serial-only configurations — NIC queueing, message
// drops, analytic SB, sub-unity straggler scales, Halt from node events —
// mutate or observe cross-shard state at send time and are rejected up
// front (SetSharded, cluster validation) or trapped at the first
// violation (route, mergeOutbox panics).
type Kernel struct {
	global     *Sim
	client     *Sim
	nw         *Network
	shards     []*Sim
	simOf      []*Sim // node -> owning shard sim
	shardOf    []int
	clientNode int
	look       Time
	workers    int
	// outbox[i] holds shard i's cross-shard events until the next barrier
	// (index len(shards) is the client's). Bounded in practice by one
	// window's sends; maxOutbox records the high-water mark.
	outbox [][]*event

	// Stats, for bench columns and the differential harness.
	windows   uint64
	barriers  uint64
	merged    uint64
	maxOutbox int

	// onMerge, when set, observes every cross-shard hand-off at its merge
	// barrier (test seam for the lookahead property suite).
	onMerge func(e *event, srcShard int, windowStart, windowEnd Time)

	// onBarrier, when set, runs at every synchronization barrier — shards
	// quiescent, outboxes merged, clocks aligned, before the barrier's
	// global events. The cluster harness replays its per-shard measurement
	// logs here, in canonical (at, ord) order, so shared-state hooks
	// (confirmation accounting, block-delivery observers) observe the
	// exact serial sequence without any cross-shard synchronization on the
	// hot path.
	onBarrier func(now Time)
}

// SetBarrierHook installs fn to run at every synchronization barrier with
// every shard quiescent and all clocks aligned to the barrier time. Call
// it once, before Run.
func (k *Kernel) SetBarrierHook(fn func(now Time)) { k.onBarrier = fn }

// PlanShards partitions the network's nodes into at most workers shards
// for the conservative kernel, returning the node -> shard assignment and
// the shard count. Multi-region topologies shard by region (the paper's
// WAN: four regions, 40 ms minimum cross-region delay — intra-region
// links fall back to the 50 µs local delay, so splitting a region would
// collapse the lookahead three orders of magnitude). Single-region
// topologies (LAN) stripe nodes round-robin: every inter-node link
// carries the same base delay, so any partition keeps the full lookahead.
// Returns (nil, 1) when sharding is impossible or pointless: fewer than
// two workers, no GeoModel fast path, fewer than two nodes.
func (nw *Network) PlanShards(workers int) ([]int, int) {
	n := len(nw.handlers)
	if workers <= 1 || nw.geo == nil || n < 2 {
		return nil, 1
	}
	regions := make([]int, n)
	distinct := make(map[int]int) // region id -> dense index
	for i := 0; i < n; i++ {
		r := nw.geo.RegionOf(i)
		if _, ok := distinct[r]; !ok {
			distinct[r] = len(distinct)
		}
		regions[i] = distinct[r]
	}
	shardOf := make([]int, n)
	var nshards int
	if len(distinct) >= 2 {
		nshards = min(workers, len(distinct))
		for i := 0; i < n; i++ {
			shardOf[i] = regions[i] % nshards
		}
	} else {
		nshards = min(workers, n)
		for i := 0; i < n; i++ {
			shardOf[i] = i % nshards
		}
	}
	if nshards < 2 || nw.MinCrossBase(shardOf) <= 0 {
		return nil, 1
	}
	return shardOf, nshards
}

// NewKernel builds the sharded kernel over an existing global simulator
// and network: one fresh Sim per shard plus one for the client source,
// the node -> shard routing installed on the network, and the lookahead
// derived from the assignment. clientNode is the scheduling affinity of
// the client source (by convention the first id past the replicas).
// Replicas must be constructed against NodeOn views after this call, and
// global-affinity events (scenario timelines, ticks) must stay on the
// global simulator.
func NewKernel(global *Sim, nw *Network, shardOf []int, nshards, clientNode, workers int) *Kernel {
	n := len(nw.handlers)
	if len(shardOf) != n {
		panic(fmt.Sprintf("simnet: shard plan covers %d of %d nodes", len(shardOf), n))
	}
	look := nw.MinCrossBase(shardOf)
	if look <= 0 {
		panic("simnet: sharded kernel requires a positive lookahead")
	}
	if workers < 1 {
		workers = nshards
	}
	k := &Kernel{
		global:     global,
		nw:         nw,
		shardOf:    shardOf,
		clientNode: clientNode,
		look:       Time(look),
		workers:    workers,
		shards:     make([]*Sim, nshards),
		simOf:      make([]*Sim, n),
		outbox:     make([][]*event, nshards+1),
	}
	newShard := func() *Sim {
		s := NewWithQueue(global.seed, global.kind)
		s.ordCnt = make([]uint64, clientNode+2)
		s.ordFixed = true
		return s
	}
	for i := range k.shards {
		k.shards[i] = newShard()
	}
	k.client = newShard()
	for node, sh := range shardOf {
		k.simOf[node] = k.shards[sh]
	}
	nw.SetSharded(k.simOf)
	for i := range k.shards {
		i := i
		si := k.shards[i]
		si.route = func(e *event, dst int) bool {
			if dst == NodeNone {
				panic("simnet: node event scheduled a global-affinity event under the sharded kernel")
			}
			if dst == clientNode {
				panic("simnet: replica event scheduled onto the client source shard")
			}
			if k.simOf[dst] == si {
				return false
			}
			k.outbox[i] = append(k.outbox[i], e)
			return true
		}
	}
	k.client.route = func(e *event, dst int) bool {
		if dst == clientNode {
			return false
		}
		k.outbox[nshards] = append(k.outbox[nshards], e)
		return true
	}
	// Global-affinity code occasionally schedules node events outside any
	// shard context (fault injection arming replica work); at setup and at
	// barriers every shard is quiescent, so routing them straight into the
	// owning queue is safe.
	global.route = func(e *event, dst int) bool {
		if dst == NodeNone {
			return false
		}
		k.ownSim(dst).q.push(e)
		return true
	}
	return k
}

// ownSim returns the simulator that owns a destination affinity.
func (k *Kernel) ownSim(node int) *Sim {
	if node == k.clientNode {
		return k.client
	}
	return k.simOf[node]
}

// NodeOn returns the node-pinned scheduling view replicas must be
// constructed with: node state lives on its shard's simulator.
func (k *Kernel) NodeOn(node int) NodeSim { return On(k.ownSim(node), node) }

// ClientOn returns the client source's scheduling view.
func (k *Kernel) ClientOn() NodeSim { return On(k.client, k.clientNode) }

// Lookahead returns the kernel's window length.
func (k *Kernel) Lookahead() Duration { return Duration(k.look) }

// NumShards returns the number of replica shards.
func (k *Kernel) NumShards() int { return len(k.shards) }

// Workers returns the configured worker-pool size.
func (k *Kernel) Workers() int { return k.workers }

// Windows returns the number of parallel windows executed.
func (k *Kernel) Windows() uint64 { return k.windows }

// Barriers returns the number of synchronization barriers taken.
func (k *Kernel) Barriers() uint64 { return k.barriers }

// Merged returns the number of cross-shard events handed over at
// barriers.
func (k *Kernel) Merged() uint64 { return k.merged }

// MaxOutbox returns the high-water mark of any shard's outbox — the
// bound on inbox buffering the conservative protocol actually needed.
func (k *Kernel) MaxOutbox() int { return k.maxOutbox }

// EventsProcessed sums executed events over every simulator of the
// kernel; equal to the serial run's count for the same workload.
func (k *Kernel) EventsProcessed() uint64 {
	total := k.global.events + k.client.events
	for _, s := range k.shards {
		total += s.events
	}
	return total
}

// Halted reports whether the run was stopped by Halt (necessarily from a
// global event).
func (k *Kernel) Halted() bool { return k.global.halted }

// shardJob is one window assignment handed to a worker.
type shardJob struct {
	s   *Sim
	end Time
}

// Run executes events on every shard until the clocks reach until
// (inclusive, matching Sim.Run), the queues drain, or a global event
// calls Halt.
func (k *Kernel) Run(until Time) {
	untilX := until + 1
	nworkers := min(k.workers, len(k.shards))
	jobs := make(chan shardJob, len(k.shards))
	var winWG, workerWG sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for j := range jobs {
				j.s.Run(j.end - 1)
				winWG.Done()
			}
		}()
	}
	defer func() {
		close(jobs)
		workerWG.Wait()
	}()

	for w := k.global.now; !k.global.halted; {
		end := w + k.look
		if g := k.global.q.peek(); g != nil && g.at < end {
			end = g.at
		}
		if end > untilX {
			end = untilX
		}
		if end > w {
			// The client source runs the window first; its outbox must merge
			// before the replica shards run the same window, because
			// client -> replica delays may undercut the lookahead.
			k.client.Run(end - 1)
			if k.client.halted {
				panic("simnet: Halt from a client event requires the serial kernel")
			}
			k.mergeOutbox(len(k.shards), w, end, w)
			winWG.Add(len(k.shards))
			for _, s := range k.shards {
				jobs <- shardJob{s, end}
			}
			winWG.Wait()
			k.windows++
			for i, s := range k.shards {
				if s.halted {
					panic("simnet: Halt from a node event requires the serial kernel")
				}
				k.mergeOutbox(i, w, end, end)
			}
		}
		if end == untilX {
			// The window just covered through until itself; the horizon sits
			// past every runnable event, so there is no barrier to take (a
			// barrier would advance the clocks beyond the serial run's).
			break
		}
		// Barrier: every shard quiescent through end-1. Align the clocks so
		// global events (and anything they send) observe the serial clock.
		k.setNow(end)
		k.barriers++
		if k.onBarrier != nil {
			k.onBarrier(end)
		}
		for !k.global.halted {
			g := k.global.q.peek()
			if g == nil || g.at != end {
				break
			}
			k.global.Step()
		}
		w = end
		if k.global.halted || k.idle() {
			break
		}
	}
	if !k.global.halted {
		k.setNow(until)
	} else {
		// Serial Halt leaves the clock at the halting event's time; align
		// the shard clocks with it.
		k.setNow(k.global.now)
	}
}

// mergeOutbox drains outbox[src] into the destination queues, enforcing
// the conservative floor: replica-shard events must land at or beyond the
// window end (window start + lookahead); client-source events at or
// beyond the window start (the client ran before the shards).
func (k *Kernel) mergeOutbox(src int, windowStart, windowEnd, floor Time) {
	box := k.outbox[src]
	if len(box) > k.maxOutbox {
		k.maxOutbox = len(box)
	}
	for _, e := range box {
		if e.at < floor {
			panic(fmt.Sprintf(
				"simnet: lookahead violated: cross-shard event at %v below floor %v (window [%v,%v))",
				e.at, floor, windowStart, windowEnd))
		}
		if k.onMerge != nil {
			k.onMerge(e, src, windowStart, windowEnd)
		}
		k.ownSim(ordDst(e.ord)).q.push(e)
		k.merged++
	}
	clear(box) // drop references before reuse
	k.outbox[src] = box[:0]
}

// setNow advances every clock to t (never backwards).
func (k *Kernel) setNow(t Time) {
	if k.global.now < t {
		k.global.now = t
	}
	if k.client.now < t {
		k.client.now = t
	}
	for _, s := range k.shards {
		if s.now < t {
			s.now = t
		}
	}
}

// idle reports whether every queue has drained (outboxes are empty at
// every barrier by construction).
func (k *Kernel) idle() bool {
	if k.global.q.len() > 0 || k.client.q.len() > 0 {
		return false
	}
	for _, s := range k.shards {
		if s.q.len() > 0 {
			return false
		}
	}
	return true
}
