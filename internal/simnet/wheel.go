package simnet

import (
	"math/bits"
	"slices"
)

// wheelQueue is the default scheduler queue: a calendar queue (a
// self-resizing single-level timing wheel, Brown 1988) over the total event
// order (at, ord). The virtual time axis is divided into power-of-two
// buckets of width 1<<shift nanoseconds; bucket index is
// (at>>shift)&mask, so one "year" spans len(buckets)<<shift nanoseconds
// and far-future events wrap around and share buckets with near ones.
//
// Buckets are intrusive sorted linked lists threaded through the pooled
// events themselves (event.next), so the wheel allocates no container
// nodes: scheduling an event never allocates, and Sim.Reset keeps the
// bucket array as part of the simulator's arena. Each bucket's list is
// kept sorted by (at, ord). The canonical ord key is not monotone in push
// order (a later push can carry a smaller key), so same-timestamp lanes
// are maintained by ordered insertion — with an O(1) append fast path for
// the common case of a push that sorts after the lane tail.
//
// A scan cursor (cur, curEnd) walks bucket windows in time order. The
// queue maintains the invariant that no queued event is earlier than the
// cursor's window start: pushes behind the cursor rewind it. A full
// fruitless rotation (only far-year events remain) falls back to a direct
// minimum scan and jumps the cursor to the winner's window.
//
// The bucket count tracks the population (grow at 1 event/bucket, shrink
// at 1/8) and every resize re-estimates the bucket width from a strided
// sample of queued timestamps (median adjacent gap — see estimateShift),
// aiming at about one event per bucket in the densest region, so a push
// is almost always an O(1) head or tail link and a pop skips at most a
// few empty windows. A walk meter forces a same-size resize when inserts
// start scanning long lane chains anyway (see push), so a width the
// estimator got wrong is corrected after a bounded amount of wasted
// work. Dense message bursts and sparse timer tails both keep O(1)
// amortized push/pop. All sizing decisions are pure functions of the
// queue contents — determinism is unaffected by them.
type wheelQueue struct {
	buckets []wheelBucket
	// occ is the occupancy bitmap (bit i set iff buckets[i] is non-empty):
	// the scan jumps over empty stretches 64 buckets per word instead of
	// probing them one by one, which keeps pop cheap for sparse phases
	// (drains, analytic runs) without giving up the fine bucket width the
	// dense phases want.
	occ    []uint64
	mask   int  // len(buckets)-1; len is a power of two
	shift  uint // bucket width is 1<<shift nanoseconds
	n      int  // queued events
	cur    int  // scan cursor: bucket whose window is being examined
	curEnd Time // exclusive end of cur's current window
	// ready records that findMin already positioned the cursor and nothing
	// has moved since: the peek-then-pop pattern of Sim.Run probes the
	// wheel once per event, not twice. Any push invalidates it.
	ready   bool
	scratch []*event
	sample  []Time
	// walkSteps meters the lane-head walks in insert since the last
	// resize. A width estimate that leaves a bucket with hundreds of
	// distinct-timestamp lanes (an aligned timer pulse landing a dense
	// burst inside one coarse bucket) turns every mid-bucket insert into
	// a linear scan; once the meter exceeds a multiple of the population,
	// push forces a same-size resize to re-estimate the width from the
	// current contents, so a pathological era costs O(n) wasted steps,
	// not O(n^2). Purely a performance trigger — order is unaffected.
	walkSteps uint64
}

// wheelBucket is one calendar bucket: a (at, ord)-sorted intrusive list
// organized as same-timestamp runs (lanes). head/tail bound the full
// next-linked order; tailRun is the head of the last lane. headAt mirrors
// head.at so the scan never dereferences a cold event just to decide
// whether a bucket's turn has come; it is meaningless when head is nil.
// Two buckets can never share a headAt (equal timestamps always land in
// the same bucket), so headAt alone orders bucket heads.
//
// lastIns is the in-lane insertion finger: the event most recently placed
// by laneInsert's interior walk, valid while it is still queued at
// lastInsAt. Lockstep workloads (n replicas x m instances rescheduling
// aligned proposal pulses) insert thousands of events into one lane in
// ascending ord order; once any higher-ord event sits in that lane the
// O(1) tail append no longer applies and each insert would walk the lane
// from its head — quadratic in the lane length. Resuming from the finger
// makes an ascending burst O(1) amortized again. The finger is a pure
// search hint: it never changes where an event lands, only how the spot
// is found, so pop order — and determinism — are unaffected.
type wheelBucket struct {
	head, tail *event
	tailRun    *event
	lastIns    *event
	headAt     Time
	tailAt     Time // mirrors tail.at; meaningless when tail is nil
	lastInsAt  Time // mirrors lastIns.at; meaningless when lastIns is nil
}

const (
	wheelMinBuckets = 64
	wheelInitShift  = 20 // ~1 ms buckets before the first re-estimation
	wheelMinShift   = 10 // ~1 µs minimum bucket width
	wheelMaxShift   = 33 // ~8.6 s maximum bucket width
)

func newWheelQueue() *wheelQueue {
	w := &wheelQueue{
		buckets: make([]wheelBucket, wheelMinBuckets),
		occ:     make([]uint64, wheelMinBuckets/64),
		mask:    wheelMinBuckets - 1,
		shift:   wheelInitShift,
	}
	w.curEnd = 1 << w.shift
	return w
}

func (w *wheelQueue) len() int { return w.n }

// before is the scheduler's total order.
func before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.ord < b.ord
}

// insert links e into its bucket, keeping the list sorted by (at, ord).
// The walk steps over whole same-timestamp lanes via the skip chain, so
// its cost is the number of distinct timestamps in the bucket, not the
// number of events — a thousand-event lockstep lane (replica pulse
// batches) is one hop, plus an in-lane walk only when e sorts strictly
// inside an existing lane.
func (w *wheelQueue) insert(e *event) {
	idx := int(uint64(e.at)>>w.shift) & w.mask
	b := &w.buckets[idx]
	w.n++
	if b.head == nil {
		e.next, e.skip, e.runTail = nil, nil, e
		b.head, b.tail, b.tailRun = e, e, e
		b.headAt, b.tailAt = e.at, e.at
		w.occ[idx>>6] |= 1 << uint(idx&63)
		return
	}
	if e.at > b.tailAt {
		// New latest lane.
		e.next, e.skip, e.runTail = nil, nil, e
		b.tail.next = e
		b.tailRun.skip = e
		b.tail, b.tailRun = e, e
		b.tailAt = e.at
		return
	}
	if e.at == b.tailAt && e.ord > b.tail.ord {
		// Append to the tail lane: O(1) — the common fast path (b.tail
		// carries the lane's largest key).
		e.next, e.skip, e.runTail = nil, nil, nil
		b.tail.next = e
		b.tail = e
		b.tailRun.runTail = e
		return
	}
	if e.at < b.headAt {
		// New earliest lane.
		e.next, e.skip, e.runTail = b.head, b.head, e
		b.head = e
		b.headAt = e.at
		return
	}
	// Walk lane heads for e's position, charging the steps to the walk
	// meter that triggers re-estimation (see push).
	var prev *event
	r := b.head
	for r.at < e.at {
		prev = r
		r = r.skip
		w.walkSteps++
	}
	if r.at != e.at {
		// New lane between prev and r (prev is non-nil: e.at > b.headAt
		// was established above).
		pt := prev.runTail
		e.next, e.skip, e.runTail = pt.next, r, e
		pt.next = e
		prev.skip = e
		return
	}
	w.laneInsert(b, prev, r, e)
}

// laneInsert places e inside lane r (whose events share e.at), keeping the
// lane sorted by ord. prev is the head of the preceding lane, nil when r
// heads the bucket. ord keys are globally unique, so strict comparisons
// partition every case.
func (w *wheelQueue) laneInsert(b *wheelBucket, prev, r, e *event) {
	rt := r.runTail
	if e.ord > rt.ord {
		// Append at the lane tail.
		e.next, e.skip, e.runTail = rt.next, nil, nil
		rt.next = e
		r.runTail = e
		if b.tail == rt {
			b.tail = e
		}
		return
	}
	if e.ord < r.ord {
		// e becomes the lane head, inheriting r's head links (rt is still
		// the lane's last member — it equals r for a single-member lane).
		e.next, e.skip, e.runTail = r, r.skip, rt
		r.skip, r.runTail = nil, nil
		if prev == nil {
			b.head = e
		} else {
			prev.skip = e
			prev.runTail.next = e
		}
		if b.tailRun == r {
			b.tailRun = e
		}
		return
	}
	// Strictly inside the lane: walk to the insertion point, resuming
	// from the last interior insertion when it lies at or before e's spot
	// in this same lane. The loop terminates before rt (rt.ord > e.ord
	// was established above).
	m := r
	if b.lastIns != nil && b.lastInsAt == e.at && b.lastIns.ord < e.ord {
		m = b.lastIns
	}
	for m.next.ord < e.ord {
		m = m.next
	}
	e.next, e.skip, e.runTail = m.next, nil, nil
	m.next = e
	b.lastIns, b.lastInsAt = e, e.at
}

// push inserts e and maintains the cursor invariant.
func (w *wheelQueue) push(e *event) {
	w.ready = false
	if w.n >= len(w.buckets) {
		w.resize(2 * len(w.buckets))
	} else if w.walkSteps > uint64(4*w.n)+4096 {
		// Insert walks are running hot: the bucket width no longer fits
		// the timestamp distribution (a dense burst landed inside coarse
		// buckets). Rebuild at the same size to re-estimate the width; the
		// O(n) relink is amortized against the >= 4n walk steps it ends.
		w.resize(len(w.buckets))
	}
	w.insert(e)
	if e.at < w.curEnd-(Time(1)<<w.shift) {
		// Never leave the cursor past a queued event: rewind to e's window.
		w.cur = int(uint64(e.at)>>w.shift) & w.mask
		w.curEnd = (e.at>>w.shift + 1) << w.shift
	}
}

// nextOccupied returns the wrapped distance from bucket i to the nearest
// occupied bucket at or after it (0 when i itself is occupied). The queue
// must be non-empty.
func (w *wheelQueue) nextOccupied(i int) int {
	if word := w.occ[i>>6] >> uint(i&63); word != 0 {
		return bits.TrailingZeros64(word)
	}
	d := 64 - i&63
	for wi := (i>>6 + 1) & (len(w.occ) - 1); ; wi = (wi + 1) & (len(w.occ) - 1) {
		if word := w.occ[wi]; word != 0 {
			return d + bits.TrailingZeros64(word)
		}
		d += 64
	}
}

// findMin positions the cursor on the bucket holding the earliest queued
// event and reports whether the queue is non-empty. After it returns true,
// buckets[cur].head is the (at, ord)-minimum.
func (w *wheelQueue) findMin() bool {
	if w.n == 0 {
		return false
	}
	width := Time(1) << w.shift
	for remaining := w.mask + 1; remaining > 0; {
		d := w.nextOccupied(w.cur)
		if d >= remaining {
			break
		}
		w.cur = (w.cur + d) & w.mask
		w.curEnd += Time(d) * width
		if w.buckets[w.cur].headAt < w.curEnd {
			return true
		}
		// Occupied, but only by future-year events: step past it.
		w.cur = (w.cur + 1) & w.mask
		w.curEnd += width
		remaining -= d + 1
	}
	// A full rotation found nothing: only far-year events remain. Jump the
	// cursor straight to the earliest one.
	bestAt := Time(0)
	bi := -1
	for wi, word := range w.occ {
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if b := &w.buckets[i]; bi < 0 || b.headAt < bestAt {
				bestAt, bi = b.headAt, i
			}
		}
	}
	w.cur = bi
	w.curEnd = (bestAt>>w.shift + 1) << w.shift
	return true
}

// peek returns the earliest event without removing it (nil when empty).
func (w *wheelQueue) peek() *event {
	if !w.findMin() {
		return nil
	}
	w.ready = true
	return w.buckets[w.cur].head
}

// popLE removes and returns the earliest event if its time is <= until.
func (w *wheelQueue) popLE(until Time) *event {
	if !w.findMin() {
		return nil
	}
	b := &w.buckets[w.cur]
	if b.headAt > until {
		return nil
	}
	return w.remove(b)
}

// pop removes and returns the earliest event (nil when empty).
func (w *wheelQueue) pop() *event {
	if w.ready {
		w.ready = false
	} else if !w.findMin() {
		return nil
	}
	return w.remove(&w.buckets[w.cur])
}

// remove unlinks and returns the head of the cursor bucket b.
func (w *wheelQueue) remove(b *wheelBucket) *event {
	w.ready = false
	e := b.head
	nh := e.next
	if b.lastIns == e {
		// The insertion finger leaves the queue; drop the hint.
		b.lastIns = nil
	}
	if e.runTail != e && nh != nil {
		// e headed a multi-event lane: promote the next member to lane
		// head, inheriting the lane tail and skip link.
		nh.runTail = e.runTail
		nh.skip = e.skip
	}
	b.head = nh
	if nh == nil {
		b.tail, b.tailRun = nil, nil
		w.occ[w.cur>>6] &^= 1 << uint(w.cur&63)
	} else {
		b.headAt = nh.at
		if b.tailRun == e {
			b.tailRun = nh
		}
	}
	e.next, e.skip, e.runTail = nil, nil, nil
	w.n--
	if w.n < len(w.buckets)/8 && len(w.buckets) > wheelMinBuckets {
		w.resize(len(w.buckets) / 2)
	}
	return e
}

// forEach visits every queued event in unspecified order. The next link is
// read before fn runs, so fn may zero or release the event (Sim.Reset
// does).
func (w *wheelQueue) forEach(fn func(*event)) {
	for i := range w.buckets {
		for e := w.buckets[i].head; e != nil; {
			nx := e.next
			fn(e)
			e = nx
		}
	}
}

// reset empties the queue, keeping the bucket array for reuse (Sim.Reset's
// arena contract). The width estimate carries over; it only affects
// performance, never order. Callers must have unlinked or released the
// queued events first (Sim.Reset releases them through forEach).
func (w *wheelQueue) reset() {
	for i := range w.buckets {
		w.buckets[i] = wheelBucket{}
	}
	clear(w.occ)
	w.n = 0
	w.cur = 0
	w.curEnd = 1 << w.shift
	w.ready = false
}

// resize rebuilds the wheel with nb buckets, re-estimating the bucket
// width from the queued events, and relinks everything. Amortized O(1)
// per operation under the grow/shrink thresholds.
func (w *wheelQueue) resize(nb int) {
	w.walkSteps = 0
	all := w.scratch[:0]
	for i := range w.buckets {
		for e := w.buckets[i].head; e != nil; e = e.next {
			all = append(all, e)
		}
		w.buckets[i] = wheelBucket{}
	}
	w.shift = w.estimateShift(all)
	if cap(w.buckets) >= nb {
		w.buckets = w.buckets[:nb]
	} else {
		w.buckets = make([]wheelBucket, nb)
	}
	if cap(w.occ) >= nb/64 {
		w.occ = w.occ[:nb/64]
		clear(w.occ)
	} else {
		w.occ = make([]uint64, nb/64)
	}
	w.mask = nb - 1
	w.n = 0
	w.cur = 0
	w.curEnd = 1 << w.shift
	if len(all) > 0 {
		// Restart the cursor at the earliest event's window; nothing is
		// earlier, so the relinking below cannot invalidate it.
		min := all[0]
		for _, e := range all[1:] {
			if before(e, min) {
				min = e
			}
		}
		w.cur = int(uint64(min.at)>>w.shift) & w.mask
		w.curEnd = (min.at>>w.shift + 1) << w.shift
	}
	for _, e := range all {
		w.insert(e)
	}
	for i := range all {
		all[i] = nil
	}
	w.scratch = all[:0]
}

// estimateShift picks the bucket width: about the typical inter-event
// spacing (targeting one event per bucket) where the population is
// densest, computed from a strided sample of timestamps. The width must
// resolve the dense mode of the distribution, not its mean: a broadcast
// burst packs thousands of distinct timestamps into a few hundred
// microseconds while view-change deadlines sit a minute out, and a
// mean-spacing width leaves the whole burst in one bucket whose lane
// walk is then linear per insert. The median adjacent sample gap tracks
// the dense mode by construction — the sparse timer tail contributes few
// samples, so its huge gaps land above the median, while lockstep lanes
// (equal timestamps, one hop to step over) contribute zero gaps that are
// skipped below it.
func (w *wheelQueue) estimateShift(all []*event) uint {
	if len(all) < 8 {
		return w.shift
	}
	s := w.sample[:0]
	stride := max(len(all)/256, 1)
	for i := 0; i < len(all); i += stride {
		s = append(s, all[i].at)
	}
	slices.Sort(s)
	// Turn the sorted sample into adjacent gaps (in place), sort, and take
	// the median nonzero gap. Each sample gap spans stride queued events,
	// so the per-event spacing divides it by the stride.
	for i := len(s) - 1; i > 0; i-- {
		s[i] -= s[i-1]
	}
	g := s[1:]
	slices.Sort(g)
	nz := 0
	for nz < len(g) && g[nz] == 0 {
		nz++
	}
	if nz == len(g) {
		// Every sampled timestamp equal: pure lockstep lanes, any width
		// works. Keep the current one.
		w.sample = s[:0]
		return w.shift
	}
	med := g[nz+(len(g)-nz)/2]
	w.sample = s[:0]
	gap := uint64(med) / uint64(stride)
	// Aim for a quarter event per bucket: scanning an empty window is a
	// sequential array load, far cheaper than walking an intrusive list
	// whose nodes are cold, so over-provisioning buckets wins.
	gap /= 4
	shift := uint(wheelMinShift)
	for shift < wheelMaxShift && (uint64(1)<<shift) < gap {
		shift++
	}
	return shift
}
