package simnet

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	s.RunAll(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != Time(3*time.Millisecond) {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	s.RunAll(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var fired []Time
	s.After(time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.After(time.Millisecond, func() { fired = append(fired, s.Now()) })
	})
	s.RunAll(0)
	if len(fired) != 2 || fired[1] != Time(2*time.Millisecond) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Second, func() { count++ })
	}
	s.Run(Time(5 * time.Second))
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.AfterTimer(time.Millisecond, func() { fired = true })
	tm.Stop()
	s.RunAll(0)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
}

func TestSchedulePastClamps(t *testing.T) {
	s := New(1)
	s.After(time.Second, func() {
		s.At(0, func() {}) // in the past; should clamp, not panic or loop
	})
	s.RunAll(0)
	if s.Now() != Time(time.Second) {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestNetworkDelivery(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, 2, FixedModel{D: 10 * time.Millisecond})
	var gotFrom int
	var gotMsg any
	var at Time
	nw.Register(1, func(from int, msg any) { gotFrom, gotMsg, at = from, msg, s.Now() })
	nw.Register(0, func(from int, msg any) {})
	nw.Send(0, 1, 100, "hello")
	s.RunAll(0)
	if gotFrom != 0 || gotMsg != "hello" {
		t.Fatalf("got from=%d msg=%v", gotFrom, gotMsg)
	}
	if at != Time(10*time.Millisecond) {
		t.Fatalf("delivered at %v", at)
	}
	if nw.Messages() != 1 || nw.Bytes() != 100 {
		t.Fatalf("stats msgs=%d bytes=%d", nw.Messages(), nw.Bytes())
	}
}

func TestNetworkBroadcastIncludesSelf(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, 3, FixedModel{D: time.Millisecond})
	got := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		nw.Register(i, func(from int, msg any) { got[i]++ })
	}
	nw.Broadcast(0, 10, "x")
	s.RunAll(0)
	for i, c := range got {
		if c != 1 {
			t.Fatalf("node %d received %d messages", i, c)
		}
	}
}

func TestNetworkDownNode(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, 2, FixedModel{D: time.Millisecond})
	received := 0
	nw.Register(0, func(from int, msg any) {})
	nw.Register(1, func(from int, msg any) { received++ })
	nw.SetDown(1, true)
	nw.Send(0, 1, 10, "x")
	s.RunAll(0)
	if received != 0 {
		t.Fatal("down node received a message")
	}
	nw.SetDown(1, false)
	nw.Send(0, 1, 10, "x")
	s.RunAll(0)
	if received != 1 {
		t.Fatal("recovered node did not receive")
	}
	// A down sender cannot send.
	nw.SetDown(0, true)
	nw.Send(0, 1, 10, "x")
	s.RunAll(0)
	if received != 1 {
		t.Fatal("down sender delivered a message")
	}
}

func TestNetworkCrashMidFlight(t *testing.T) {
	// A message in flight when the destination crashes must not deliver.
	s := New(1)
	nw := NewNetwork(s, 2, FixedModel{D: 10 * time.Millisecond})
	received := 0
	nw.Register(0, func(from int, msg any) {})
	nw.Register(1, func(from int, msg any) { received++ })
	nw.Send(0, 1, 10, "x")
	s.After(5*time.Millisecond, func() { nw.SetDown(1, true) })
	s.RunAll(0)
	if received != 0 {
		t.Fatal("message delivered to node that crashed mid-flight")
	}
}

func TestStragglerOutScale(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, 2, FixedModel{D: 10 * time.Millisecond})
	var at Time
	nw.Register(0, func(from int, msg any) {})
	nw.Register(1, func(from int, msg any) { at = s.Now() })
	nw.SetOutScale(0, 10)
	nw.Send(0, 1, 10, "x")
	s.RunAll(0)
	if at != Time(100*time.Millisecond) {
		t.Fatalf("straggler message arrived at %v, want 100ms", at)
	}
	if nw.OutScale(0) != 10 {
		t.Fatal("OutScale getter wrong")
	}
}

func TestDropRate(t *testing.T) {
	s := New(7)
	nw := NewNetwork(s, 2, FixedModel{D: time.Millisecond})
	received := 0
	nw.Register(0, func(from int, msg any) {})
	nw.Register(1, func(from int, msg any) { received++ })
	nw.SetDropRate(1.0)
	for i := 0; i < 50; i++ {
		nw.Send(0, 1, 1, i)
	}
	s.RunAll(0)
	if received != 0 {
		t.Fatalf("dropRate=1 delivered %d messages", received)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New(99)
		nw := NewNetwork(s, 4, NewWAN())
		var times []Time
		for i := 0; i < 4; i++ {
			i := i
			nw.Register(i, func(from int, msg any) { times = append(times, s.Now()) })
		}
		for i := 0; i < 4; i++ {
			nw.Broadcast(i, 500, i)
		}
		s.RunAll(0)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWANRegionsAsymmetry(t *testing.T) {
	wan := NewWAN()
	// Nodes 0 and 4 share region 0 (France); node 2 is Australia.
	same := wan.Base(0, 4, 0)
	far := wan.Base(0, 2, 0)
	if same >= far {
		t.Fatalf("intra-region %v >= France-Australia %v", same, far)
	}
	if got := wan.Base(0, 2, 0); got != 140*time.Millisecond {
		t.Fatalf("France->Australia base = %v, want 140ms", got)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	lan := NewLAN()
	small := lan.Base(0, 1, 0)
	big := lan.Base(0, 1, 1e6) // 1 MB at 1 Gbps = 8 ms extra
	extra := big - small
	if extra < 7*time.Millisecond || extra > 9*time.Millisecond {
		t.Fatalf("serialization delay for 1MB = %v, want ~8ms", extra)
	}
}

func TestJitterBounded(t *testing.T) {
	s := New(5)
	wan := NewWAN()
	base := wan.Base(0, 1, 500)
	for i := 0; i < 100; i++ {
		d := wan.Delay(0, 1, 500, s.Rand())
		if d < base || float64(d) > float64(base)*1.051 {
			t.Fatalf("jittered delay %v outside [base, base*1.05] (base %v)", d, base)
		}
	}
}
