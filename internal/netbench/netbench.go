// Package netbench measures the real-transport data path end to end:
// wire encoding, framing, queuing, socket (or in-process) delivery and
// decoding, with the consensus state machines replaced by
// counting/timestamping handlers so the numbers isolate the transport
// layer itself. It is the real-backend analogue of the simulator perf
// harness behind `orthrus-bench -bench`: the artifact it produces
// (BENCH_net.json, schema orthrus-bench-net/v1) is committed to the
// repository and gated in CI against regressions the same way
// BENCH_scale.json gates the simulation hot path.
//
// Traffic shape: every replica broadcasts proposal-sized messages — a
// pbft.PrePrepare carrying a block of TxsPerBlock transactions — as fast
// as a global in-flight bound allows (the bound keeps outbound queues
// below their drop cap, mimicking a self-clocked protocol). Proposals
// are the dominant bytes on a consensus wire and exercise the full
// encode/decode path including nested collections; the block's
// ProposeNS field carries the send timestamp, so every delivery yields
// one frame-latency sample with no extra wire fields.
package netbench

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pbft"
	"repro/internal/transport"
	"repro/internal/types"
)

// Schema identifies the artifact format written by Run. v1 cells carry
// delivered message/byte totals, msgs/s, MB/s, allocations per delivered
// message, and p50/p99 frame latency. Rates and latencies vary with the
// host; allocs/msg is host-stable and is the primary regression gate.
const Schema = "orthrus-bench-net/v1"

// Cell is one measured (backend, n) point. A "message" is one delivered
// frame: a broadcast from one replica to an n-replica cluster counts n
// messages (self-delivery included), matching what Transport.Messages
// reports on real backends.
type Cell struct {
	// Backend is "proc" (in-process node loops) or "tcp" (loopback
	// sockets, one endpoint per replica).
	Backend string `json:"backend"`
	// N is the cluster size.
	N int `json:"n"`
	// Msgs is the number of delivered messages measured.
	Msgs uint64 `json:"msgs"`
	// Bytes is the total delivered encoded payload bytes.
	Bytes uint64 `json:"bytes"`
	// Drops counts outbound frames discarded at a peer-queue cap during
	// the run; nonzero means the in-flight bound failed to keep queues
	// below their caps and the rates underestimate the transport.
	Drops uint64 `json:"drops"`
	// MsgsPerSec is delivered messages per wall-clock second.
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// MBPerSec is delivered payload megabytes (1e6 bytes) per second.
	MBPerSec float64 `json:"mb_per_sec"`
	// AllocsPerMsg is heap allocations per delivered message across the
	// whole process (senders, queues, sockets, decoders, handlers).
	AllocsPerMsg float64 `json:"allocs_per_msg"`
	// P50LatencyNS and P99LatencyNS are percentiles over per-delivery
	// frame latency: wall time from just before the sender's Broadcast
	// call to the receiver handler observing the message. Under a full
	// send throttle this is queueing-dominated — it measures the data
	// path under load, not an unloaded RTT.
	P50LatencyNS int64 `json:"p50_latency_ns"`
	P99LatencyNS int64 `json:"p99_latency_ns"`
}

// Artifact is the document `orthrus-bench -bench-net` writes.
type Artifact struct {
	Schema string `json:"schema"`
	Cells  []Cell `json:"cells"`
}

// Options tunes a Run; the zero value measures the standard grid.
type Options struct {
	// Broadcasts overrides the per-sender broadcast count (0 sizes each
	// cell to ~targetDeliveries total deliveries). Tests use small values.
	Broadcasts int
	// TxsPerBlock sets the proposal payload shape (0 = 4 transactions,
	// ~500 encoded bytes per message).
	TxsPerBlock int
	// Backends restricts the grid ("proc", "tcp"); nil measures both.
	Backends []string
	// Sizes restricts the cluster-size axis; nil measures {4, 10}.
	Sizes []int
}

// targetDeliveries sizes default cells: enough deliveries for stable
// rates on a quiet host, small enough to keep the whole grid seconds-scale.
const targetDeliveries = 120_000

// maxOutstanding bounds globally unacknowledged deliveries (sent*n minus
// handler-observed), keeping per-peer queues far below transport.TCP's
// 4096-frame drop cap so a default run measures a drop-free data path.
const maxOutstanding = 2048

// Run measures the configured grid and returns the artifact.
func Run(opts Options) (*Artifact, error) {
	backends := opts.Backends
	if backends == nil {
		backends = []string{"proc", "tcp"}
	}
	sizes := opts.Sizes
	if sizes == nil {
		sizes = []int{4, 10}
	}
	art := &Artifact{Schema: Schema}
	for _, backend := range backends {
		for _, n := range sizes {
			cell, err := runCell(backend, n, opts)
			if err != nil {
				return nil, fmt.Errorf("netbench: %s/n=%d: %w", backend, n, err)
			}
			art.Cells = append(art.Cells, cell)
		}
	}
	return art, nil
}

// env abstracts the two backends behind the operations the harness
// drives: per-replica broadcast entry points, delivered-traffic counters
// and teardown.
type env struct {
	broadcast func(from int, msg any)
	messages  func() uint64
	bytes     func() uint64
	drops     func() uint64
	close     func()
}

// sample builds the proposal message template one sender reuses: the
// encoder runs synchronously inside Broadcast, so mutating the template's
// ProposeNS between calls is race-free.
func sample(from, txs int) *pbft.PrePrepare {
	b := &types.Block{
		Instance: from,
		SN:       1,
		Rank:     7,
		State:    types.StateVector{3, 1, 4, 1, 5, 9, 2, 6},
		Proposer: from,
		Sig:      []byte{0xCA, 0xFE, 0xBA, 0xBE},
	}
	for i := 0; i < txs; i++ {
		b.Txs = append(b.Txs, types.Transaction{
			Ops: []types.Op{
				{Key: types.Key(fmt.Sprintf("payer-%d-%d", from, i)), Type: types.Owned, Kind: types.OpDecrement, Amount: 30},
				{Key: types.Key(fmt.Sprintf("payee-%d-%d", from, i)), Type: types.Owned, Kind: types.OpIncrement, Amount: 30},
			},
			Client:  types.Key(fmt.Sprintf("client-%d-%d", from, i)),
			Nonce:   uint64(i),
			Sig:     []byte{1, 2, 3, 4, 5, 6, 7, 8},
			Payload: []byte{9, 9, 9, 9, 9, 9, 9, 9},
		})
	}
	return &pbft.PrePrepare{Instance: from, View: 0, Seq: uint64(from), Block: b}
}

func runCell(backend string, n int, opts Options) (Cell, error) {
	broadcasts := opts.Broadcasts
	if broadcasts <= 0 {
		broadcasts = targetDeliveries / (n * n)
	}
	txs := opts.TxsPerBlock
	if txs <= 0 {
		txs = 4
	}

	// One latency slice per receiver, appended to only by that receiver's
	// event-loop goroutine; preallocated so the measured phase allocates
	// nothing in the harness itself.
	lats := make([][]int64, n)
	for i := range lats {
		lats[i] = make([]int64, 0, n*broadcasts)
	}
	var delivered atomic.Uint64
	epoch := time.Now()

	handlerFor := func(id int) func(int, any) {
		return func(from int, msg any) {
			if m, ok := msg.(*pbft.PrePrepare); ok {
				lats[id] = append(lats[id], int64(time.Since(epoch))-m.Block.ProposeNS)
			}
			delivered.Add(1)
		}
	}

	var e env
	switch backend {
	case "proc":
		p := transport.NewProc(n)
		for i := 0; i < n; i++ {
			p.Register(i, handlerFor(i))
		}
		p.Start(epoch)
		e = env{
			broadcast: func(from int, msg any) { p.Broadcast(from, 0, msg) },
			messages:  p.Messages,
			bytes:     p.Bytes,
			drops:     func() uint64 { return 0 },
			close:     p.Stop,
		}
	case "tcp":
		listeners := make([]net.Listener, n)
		peers := make([]string, n)
		for i := range peers {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return Cell{}, err
			}
			listeners[i] = ln
			peers[i] = ln.Addr().String()
		}
		ts := make([]*transport.TCP, n)
		nodes := make([]*transport.Node, n)
		for i := range ts {
			nodes[i] = transport.NewNode(i)
			tr, err := transport.NewTCP(i, peers, nodes[i], transport.TCPOptions{Listener: listeners[i]})
			if err != nil {
				return Cell{}, err
			}
			tr.Register(i, handlerFor(i))
			nodes[i].Start(epoch)
			ts[i] = tr
		}
		sum := func(f func(*transport.TCP) uint64) func() uint64 {
			return func() (total uint64) {
				for _, t := range ts {
					total += f(t)
				}
				return
			}
		}
		e = env{
			broadcast: func(from int, msg any) { ts[from].Broadcast(from, 0, msg) },
			messages:  sum((*transport.TCP).Messages),
			bytes:     sum((*transport.TCP).Bytes),
			drops:     sum((*transport.TCP).Dropped),
			close: func() {
				for i := range ts {
					ts[i].Close()
					nodes[i].Stop()
				}
			},
		}
	default:
		return Cell{}, fmt.Errorf("unknown backend %q", backend)
	}
	defer e.close()

	// Measured phase: every replica floods broadcasts under the global
	// in-flight bound; allocations are read around the whole phase.
	var memBefore, memAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&memBefore)
	start := time.Now()

	var sent atomic.Uint64
	var wg sync.WaitGroup
	for from := 0; from < n; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			tmpl := sample(from, txs)
			for k := 0; k < broadcasts; k++ {
				for sent.Load()*uint64(n)-delivered.Load() > maxOutstanding {
					time.Sleep(50 * time.Microsecond)
				}
				tmpl.Block.ProposeNS = int64(time.Since(epoch))
				e.broadcast(from, tmpl)
				sent.Add(1)
			}
		}(from)
	}
	wg.Wait()

	// Drain: every sent frame is delivered or (anomalously) dropped.
	expected := func() uint64 { return sent.Load()*uint64(n) - e.drops() }
	deadline := time.Now().Add(30 * time.Second)
	for delivered.Load() < expected() {
		if time.Now().After(deadline) {
			return Cell{}, fmt.Errorf("drain stalled: %d/%d delivered after 30s", delivered.Load(), expected())
		}
		time.Sleep(200 * time.Microsecond)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&memAfter)

	cell := Cell{
		Backend: backend,
		N:       n,
		Msgs:    e.messages(),
		Bytes:   e.bytes(),
		Drops:   e.drops(),
	}
	if s := elapsed.Seconds(); s > 0 {
		cell.MsgsPerSec = float64(cell.Msgs) / s
		cell.MBPerSec = float64(cell.Bytes) / s / 1e6
	}
	if cell.Msgs > 0 {
		cell.AllocsPerMsg = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(cell.Msgs)
	}
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		cell.P50LatencyNS = all[len(all)/2]
		cell.P99LatencyNS = all[len(all)*99/100]
	}
	return cell, nil
}
