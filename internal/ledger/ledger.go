// Package ledger implements the replicated object store and the escrow
// mechanism of Orthrus (paper Sec. V-C, Algorithm 2).
//
// The store holds owned objects (accounts with balances) and shared objects
// (contract records). The escrow log elog temporarily reserves decremental
// amounts so that (a) multi-payer payments split across SB instances stay
// atomic, and (b) payments are not blocked behind globally-ordered contract
// transactions touching the same payer.
package ledger

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// Store is one replica's object state. It is not safe for concurrent use;
// replicas in the simulator are single-threaded event handlers.
type Store struct {
	owned  map[types.Key]types.Amount // account balances (escrowed funds already deducted)
	shared map[types.Key]types.Amount // contract record values
	// elog: escrow requests keyed by transaction, each holding the ops that
	// were applied and must be undone on abort (Algorithm 2's (o, tx) pairs).
	elog map[types.TxID][]types.Op
	// opsFree pools the elog's op slices: commit/abort return a slice here
	// and the next escrow reuses it, so the steady-state escrow cycle
	// allocates nothing. A pooled slice must not be observed through
	// EscrowedOps after its entry commits or aborts (the performance-model
	// ownership rule; stores are single-threaded).
	opsFree [][]types.Op
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		owned:  make(map[types.Key]types.Amount),
		shared: make(map[types.Key]types.Amount),
		elog:   make(map[types.TxID][]types.Op),
	}
}

// Credit sets up an initial balance (genesis allocation).
func (s *Store) Credit(k types.Key, amount types.Amount) { s.owned[k] += amount }

// Balance returns the current balance of an owned object. Escrowed amounts
// are already deducted (they sit in the escrow log until commit/abort).
func (s *Store) Balance(k types.Key) types.Amount { return s.owned[k] }

// SharedValue returns the current value of a shared object.
func (s *Store) SharedValue(k types.Key) types.Amount { return s.shared[k] }

// SetShared initializes a shared record (genesis).
func (s *Store) SetShared(k types.Key, v types.Amount) { s.shared[k] = v }

// EscrowedOps returns the escrowed ops of tx (nil if none). Exposed for
// tests and invariant checks.
func (s *Store) EscrowedOps(id types.TxID) []types.Op { return s.elog[id] }

// EscrowCount returns the number of transactions with live escrows.
func (s *Store) EscrowCount() int { return len(s.elog) }

// TotalOwned sums all account balances plus amounts held in escrow —
// the conserved quantity for payment workloads.
func (s *Store) TotalOwned() types.Amount {
	var sum types.Amount
	for _, v := range s.owned {
		sum += v
	}
	for _, ops := range s.elog {
		for _, op := range ops {
			if op.IsPayerOp() {
				sum += op.Amount
			}
		}
	}
	return sum
}

// Escrow attempts the escrow operation for one op of tx (Algorithm 2,
// function escrow): apply the decrement; if the resulting value satisfies
// the condition, keep it and record the request in elog; otherwise the
// state is untouched and false is returned.
func (s *Store) Escrow(op types.Op, id types.TxID) bool {
	if !op.IsPayerOp() {
		return false
	}
	value := s.owned[op.Key] - op.Amount
	if value < op.Con {
		return false
	}
	s.owned[op.Key] = value
	ops, ok := s.elog[id]
	if !ok {
		if n := len(s.opsFree); n > 0 {
			ops = s.opsFree[n-1][:0]
			s.opsFree[n-1] = nil
			s.opsFree = s.opsFree[:n-1]
		} else {
			ops = make([]types.Op, 0, 2)
		}
	}
	s.elog[id] = append(ops, op)
	return true
}

// Escrowed reports whether (op, tx) is in the escrow log.
func (s *Store) Escrowed(op types.Op, id types.TxID) bool {
	for _, e := range s.elog[id] {
		if e == op {
			return true
		}
	}
	return false
}

// AllEscrowed reports whether every owned decremental op of tx has been
// escrowed (Algorithm 2, function allEscrowed).
func (s *Store) AllEscrowed(tx *types.Transaction) bool {
	id := tx.ID()
	for _, op := range tx.Ops {
		if op.IsPayerOp() && !s.Escrowed(op, id) {
			return false
		}
	}
	return true
}

// CommitEscrow makes tx's escrowed deductions permanent by dropping the
// escrow entries (Algorithm 2, function commitEscrow). The balances were
// already decremented at escrow time.
func (s *Store) CommitEscrow(id types.TxID) {
	if ops, ok := s.elog[id]; ok {
		s.opsFree = append(s.opsFree, ops)
		delete(s.elog, id)
	}
}

// AbortEscrow undoes and removes all escrow requests of tx (Algorithm 2,
// function abortEscrow): the reserved amounts return to their accounts.
func (s *Store) AbortEscrow(id types.TxID) {
	ops, ok := s.elog[id]
	if !ok {
		return
	}
	for _, op := range ops {
		s.owned[op.Key] += op.Amount // undo the decrement
	}
	s.opsFree = append(s.opsFree, ops)
	delete(s.elog, id)
}

// TrimPool caps the pooled free-list of escrow op slices at max entries,
// releasing the rest to the garbage collector. Long-horizon checkpoint GC
// calls it so a burst of concurrent escrows does not pin its high-water
// mark for the remainder of a days-long run.
func (s *Store) TrimPool(max int) {
	if max < 0 || len(s.opsFree) <= max {
		return
	}
	for i := max; i < len(s.opsFree); i++ {
		s.opsFree[i] = nil
	}
	s.opsFree = s.opsFree[:max]
}

// ApplyIncrement applies an incremental op on an owned object.
func (s *Store) ApplyIncrement(op types.Op) error {
	if op.Type != types.Owned || op.Kind != types.OpIncrement {
		return fmt.Errorf("ledger: ApplyIncrement on %v/%v", op.Type, op.Kind)
	}
	s.owned[op.Key] += op.Amount
	return nil
}

// ApplyShared executes a shared-object op (assign or read). Reads return
// the value; assigns overwrite it. Non-commutative: callers must invoke
// this only in global order.
func (s *Store) ApplyShared(op types.Op) (types.Amount, error) {
	if op.Type != types.Shared {
		return 0, fmt.Errorf("ledger: ApplyShared on owned object %q", op.Key)
	}
	switch op.Kind {
	case types.OpAssign:
		s.shared[op.Key] = op.Amount
		return op.Amount, nil
	case types.OpRead:
		return s.shared[op.Key], nil
	case types.OpIncrement:
		s.shared[op.Key] += op.Amount
		return s.shared[op.Key], nil
	case types.OpDecrement:
		v := s.shared[op.Key] - op.Amount
		if v < op.Con {
			return s.shared[op.Key], fmt.Errorf("ledger: shared decrement below condition on %q", op.Key)
		}
		s.shared[op.Key] = v
		return v, nil
	default:
		return 0, fmt.Errorf("ledger: unknown op kind %v", op.Kind)
	}
}

// Snapshot captures the full owned/shared state in a canonical order, used
// by safety property tests to compare replicas (Theorem 1).
type Snapshot struct {
	Owned  []KV
	Shared []KV
}

// KV is one key/value pair of a snapshot.
type KV struct {
	Key   types.Key
	Value types.Amount
}

// Snapshot returns the canonical state snapshot. Escrowed amounts are folded
// back into their accounts so snapshots of replicas with in-flight escrows
// at identical logical states still compare equal.
func (s *Store) Snapshot() Snapshot {
	owned := make(map[types.Key]types.Amount, len(s.owned))
	for k, v := range s.owned {
		owned[k] = v
	}
	for _, ops := range s.elog {
		for _, op := range ops {
			owned[op.Key] += op.Amount
		}
	}
	var snap Snapshot
	for k, v := range owned {
		snap.Owned = append(snap.Owned, KV{k, v})
	}
	for k, v := range s.shared {
		snap.Shared = append(snap.Shared, KV{k, v})
	}
	sort.Slice(snap.Owned, func(i, j int) bool { return snap.Owned[i].Key < snap.Owned[j].Key })
	sort.Slice(snap.Shared, func(i, j int) bool { return snap.Shared[i].Key < snap.Shared[j].Key })
	return snap
}

// Equal compares two snapshots.
func (a Snapshot) Equal(b Snapshot) bool {
	if len(a.Owned) != len(b.Owned) || len(a.Shared) != len(b.Shared) {
		return false
	}
	for i := range a.Owned {
		if a.Owned[i] != b.Owned[i] {
			return false
		}
	}
	for i := range a.Shared {
		if a.Shared[i] != b.Shared[i] {
			return false
		}
	}
	return true
}
