package ledger_test

import (
	"fmt"

	"repro/internal/ledger"
	"repro/internal/types"
)

// Example demonstrates the escrow lifecycle of Algorithm 2: reserve, then
// either commit (deduction becomes permanent) or abort (funds return).
func Example() {
	st := ledger.NewStore()
	st.Credit("alice", 100)

	tx := types.NewPayment("alice", "bob", 30, 1)
	if st.Escrow(tx.Ops[0], tx.ID()) {
		fmt.Println("escrowed, alice:", st.Balance("alice"))
	}
	st.CommitEscrow(tx.ID())
	_ = st.ApplyIncrement(tx.Ops[1])
	fmt.Println("committed, alice:", st.Balance("alice"), "bob:", st.Balance("bob"))

	// A second, unaffordable escrow fails without touching state.
	big := types.NewPayment("alice", "bob", 1000, 2)
	fmt.Println("overdraft allowed:", st.Escrow(big.Ops[0], big.ID()))

	// Output:
	// escrowed, alice: 70
	// committed, alice: 70 bob: 30
	// overdraft allowed: false
}
