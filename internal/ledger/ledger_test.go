package ledger

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestEscrowBasic(t *testing.T) {
	s := NewStore()
	s.Credit("alice", 10)
	tx := types.NewPayment("alice", "bob", 4, 1)
	op := tx.Ops[0]
	if !s.Escrow(op, tx.ID()) {
		t.Fatal("escrow of affordable amount failed")
	}
	if s.Balance("alice") != 6 {
		t.Fatalf("balance after escrow = %d", s.Balance("alice"))
	}
	if !s.Escrowed(op, tx.ID()) || !s.AllEscrowed(tx) {
		t.Fatal("escrow not recorded")
	}
	s.CommitEscrow(tx.ID())
	if s.Balance("alice") != 6 {
		t.Fatalf("commit changed balance: %d", s.Balance("alice"))
	}
	if s.EscrowCount() != 0 {
		t.Fatal("elog not cleaned after commit")
	}
}

func TestEscrowInsufficientFunds(t *testing.T) {
	s := NewStore()
	s.Credit("alice", 3)
	tx := types.NewPayment("alice", "bob", 4, 1)
	if s.Escrow(tx.Ops[0], tx.ID()) {
		t.Fatal("escrow beyond balance succeeded")
	}
	if s.Balance("alice") != 3 {
		t.Fatalf("failed escrow mutated balance: %d", s.Balance("alice"))
	}
	if s.AllEscrowed(tx) {
		t.Fatal("AllEscrowed true with no escrow")
	}
}

func TestEscrowRespectsCondition(t *testing.T) {
	s := NewStore()
	s.Credit("alice", 10)
	op := types.Op{Key: "alice", Type: types.Owned, Kind: types.OpDecrement, Amount: 6, Con: 5}
	tx := &types.Transaction{Client: "alice", Ops: []types.Op{op}}
	if s.Escrow(op, tx.ID()) {
		t.Fatal("escrow violating condition (10-6 < 5) succeeded")
	}
	op2 := types.Op{Key: "alice", Type: types.Owned, Kind: types.OpDecrement, Amount: 5, Con: 5}
	if !s.Escrow(op2, tx.ID()) {
		t.Fatal("escrow exactly at condition failed")
	}
}

func TestAbortEscrowRefunds(t *testing.T) {
	s := NewStore()
	s.Credit("alice", 10)
	s.Credit("bob", 5)
	tx := types.NewMultiPayment("alice", []types.Transfer{
		{From: "alice", To: "carol", Amount: 3},
		{From: "bob", To: "carol", Amount: 2},
	}, 1)
	for _, op := range tx.Ops {
		if op.IsPayerOp() {
			if !s.Escrow(op, tx.ID()) {
				t.Fatal("escrow failed")
			}
		}
	}
	if s.Balance("alice") != 7 || s.Balance("bob") != 3 {
		t.Fatal("escrow deductions wrong")
	}
	s.AbortEscrow(tx.ID())
	if s.Balance("alice") != 10 || s.Balance("bob") != 5 {
		t.Fatalf("abort did not refund: alice=%d bob=%d", s.Balance("alice"), s.Balance("bob"))
	}
	if s.EscrowCount() != 0 {
		t.Fatal("elog not cleaned after abort")
	}
}

func TestEscrowRejectsNonPayerOps(t *testing.T) {
	s := NewStore()
	s.Credit("alice", 10)
	inc := types.Op{Key: "alice", Type: types.Owned, Kind: types.OpIncrement, Amount: 1}
	if s.Escrow(inc, types.TxID{}) {
		t.Fatal("escrow of increment accepted")
	}
	sh := types.NewSharedAssign("rec", 1)
	if s.Escrow(sh, types.TxID{}) {
		t.Fatal("escrow of shared op accepted")
	}
}

func TestTotalOwnedConservedAcrossEscrowLifecycle(t *testing.T) {
	s := NewStore()
	s.Credit("alice", 100)
	s.Credit("bob", 50)
	before := s.TotalOwned()
	tx := types.NewPayment("alice", "bob", 30, 1)
	if !s.Escrow(tx.Ops[0], tx.ID()) {
		t.Fatal("escrow failed")
	}
	if s.TotalOwned() != before {
		t.Fatalf("escrow changed total: %d != %d", s.TotalOwned(), before)
	}
	s.CommitEscrow(tx.ID())
	if err := s.ApplyIncrement(tx.Ops[1]); err != nil {
		t.Fatal(err)
	}
	if s.TotalOwned() != before {
		t.Fatalf("commit+credit changed total: %d != %d", s.TotalOwned(), before)
	}
}

func TestApplyShared(t *testing.T) {
	s := NewStore()
	if _, err := s.ApplyShared(types.NewSharedAssign("rec", 42)); err != nil {
		t.Fatal(err)
	}
	if s.SharedValue("rec") != 42 {
		t.Fatalf("assign failed: %d", s.SharedValue("rec"))
	}
	v, err := s.ApplyShared(types.NewSharedRead("rec"))
	if err != nil || v != 42 {
		t.Fatalf("read = %d, %v", v, err)
	}
	if _, err := s.ApplyShared(types.Op{Key: "a", Type: types.Owned, Kind: types.OpAssign}); err == nil {
		t.Fatal("ApplyShared accepted owned object")
	}
	// Shared decrement below condition errors without mutating.
	s.SetShared("pool", 5)
	if _, err := s.ApplyShared(types.Op{Key: "pool", Type: types.Shared, Kind: types.OpDecrement, Amount: 10}); err == nil {
		t.Fatal("shared overdraft accepted")
	}
	if s.SharedValue("pool") != 5 {
		t.Fatal("failed shared decrement mutated state")
	}
}

func TestApplyIncrementValidation(t *testing.T) {
	s := NewStore()
	if err := s.ApplyIncrement(types.Op{Key: "a", Type: types.Owned, Kind: types.OpDecrement, Amount: 1}); err == nil {
		t.Fatal("ApplyIncrement accepted decrement")
	}
}

func TestSnapshotEqualityFoldsEscrows(t *testing.T) {
	a := NewStore()
	b := NewStore()
	for _, st := range []*Store{a, b} {
		st.Credit("alice", 10)
		st.Credit("bob", 5)
		st.SetShared("rec", 7)
	}
	// a has an in-flight escrow; snapshots must still match because the
	// escrowed amount is folded back.
	tx := types.NewPayment("alice", "bob", 3, 1)
	if !a.Escrow(tx.Ops[0], tx.ID()) {
		t.Fatal("escrow failed")
	}
	if !a.Snapshot().Equal(b.Snapshot()) {
		t.Fatal("snapshots with in-flight escrow differ")
	}
	// After commit+credit they genuinely differ.
	a.CommitEscrow(tx.ID())
	if a.Snapshot().Equal(b.Snapshot()) {
		t.Fatal("snapshots equal after committed transfer")
	}
}

func TestSnapshotOrderingCanonical(t *testing.T) {
	s := NewStore()
	s.Credit("zed", 1)
	s.Credit("alice", 2)
	snap := s.Snapshot()
	if snap.Owned[0].Key != "alice" || snap.Owned[1].Key != "zed" {
		t.Fatalf("snapshot not sorted: %+v", snap.Owned)
	}
}

// Property: escrow/abort is an exact inverse — any random sequence of
// escrows followed by aborting all of them restores initial balances, and
// total owned value is conserved throughout (Lemma 5 substrate).
func TestEscrowAbortInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		accounts := []types.Key{"a", "b", "c", "d"}
		initial := map[types.Key]types.Amount{}
		for _, k := range accounts {
			amt := types.Amount(rng.Intn(100))
			s.Credit(k, amt)
			initial[k] = amt
		}
		total := s.TotalOwned()
		var ids []types.TxID
		for i := 0; i < 20; i++ {
			from := accounts[rng.Intn(len(accounts))]
			to := accounts[rng.Intn(len(accounts))]
			tx := types.NewPayment(from, to, types.Amount(rng.Intn(40)), uint64(i))
			if s.Escrow(tx.Ops[0], tx.ID()) {
				ids = append(ids, tx.ID())
			}
			if s.TotalOwned() != total {
				return false
			}
		}
		for _, id := range ids {
			s.AbortEscrow(id)
		}
		for _, k := range accounts {
			if s.Balance(k) != initial[k] {
				return false
			}
		}
		return s.TotalOwned() == total && s.EscrowCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: balances never go negative no matter the escrow interleaving
// (no double spend at the store level).
func TestNoOverdraftProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		s.Credit("payer", types.Amount(rng.Intn(50)))
		for i := 0; i < 30; i++ {
			tx := types.NewPayment("payer", "payee", types.Amount(rng.Intn(20)), uint64(i))
			committed := s.Escrow(tx.Ops[0], tx.ID())
			if s.Balance("payer") < 0 {
				return false
			}
			if committed && rng.Intn(2) == 0 {
				s.AbortEscrow(tx.ID())
			} else if committed {
				s.CommitEscrow(tx.ID())
			}
		}
		return s.Balance("payer") >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: commutativity of successful payment sets (Lemma 2) — executing
// the same set of affordable payments in any permutation yields the same
// final balances.
func TestPaymentCommutativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		accounts := []types.Key{"a", "b", "c"}
		// Large initial balances so every payment succeeds regardless of order.
		mkStore := func() *Store {
			s := NewStore()
			for _, k := range accounts {
				s.Credit(k, 1_000_000)
			}
			return s
		}
		var txs []*types.Transaction
		for i := 0; i < 15; i++ {
			from := accounts[rng.Intn(len(accounts))]
			to := accounts[rng.Intn(len(accounts))]
			txs = append(txs, types.NewPayment(from, to, types.Amount(rng.Intn(100)), uint64(i)))
		}
		exec := func(order []int) Snapshot {
			s := mkStore()
			for _, i := range order {
				tx := txs[i]
				if !s.Escrow(tx.Ops[0], tx.ID()) {
					return Snapshot{} // should not happen
				}
				s.CommitEscrow(tx.ID())
				if err := s.ApplyIncrement(tx.Ops[1]); err != nil {
					return Snapshot{}
				}
			}
			return s.Snapshot()
		}
		fwd := make([]int, len(txs))
		for i := range fwd {
			fwd[i] = i
		}
		shuffled := append([]int(nil), fwd...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return exec(fwd).Equal(exec(shuffled))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
