package scenario

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/errs"
	"repro/internal/simnet"
)

// TestBuildSortsAndValidates is the table-driven compiler test: each case
// assembles a timeline through the builder and checks the compiled event
// order and the Validate verdict for a 7-replica cluster.
func TestBuildSortsAndValidates(t *testing.T) {
	cases := []struct {
		name      string
		build     func() *Scenario
		wantOrder []Kind
		wantErr   bool
	}{
		{
			name: "sorted by time regardless of insertion order",
			build: func() *Scenario {
				return New("x").
					RecoverAt(4*time.Second, 5).
					CrashAt(2*time.Second, 5).
					StraggleAt(1*time.Second, 10, 3).
					Build()
			},
			wantOrder: []Kind{Straggle, Crash, Recover},
		},
		{
			name: "ties keep insertion order",
			build: func() *Scenario {
				return New("x").
					HealAt(3*time.Second).
					LoadSurgeAt(3*time.Second, 2).
					PartitionAt(3*time.Second, []int{1, 2}).
					Build()
			},
			wantOrder: []Kind{Heal, LoadSurge, Partition},
		},
		{
			name:      "crash without nodes rejected",
			build:     func() *Scenario { return &Scenario{Name: "x", Events: []Event{{Kind: Crash}}} },
			wantOrder: []Kind{Crash},
			wantErr:   true,
		},
		{
			name: "node out of range rejected",
			build: func() *Scenario {
				return New("x").CrashAt(time.Second, 7).Build() // n=7: valid ids are 0..6
			},
			wantOrder: []Kind{Crash},
			wantErr:   true,
		},
		{
			name: "negative time rejected",
			build: func() *Scenario {
				return &Scenario{Name: "x", Events: []Event{{At: -time.Second, Kind: Heal}}}
			},
			wantOrder: []Kind{Heal},
			wantErr:   true,
		},
		{
			name: "overlapping partition groups rejected",
			build: func() *Scenario {
				return New("x").PartitionAt(time.Second, []int{1, 2}, []int{2, 3}).Build()
			},
			wantOrder: []Kind{Partition},
			wantErr:   true,
		},
		{
			name:      "zero straggle scale rejected",
			build:     func() *Scenario { return New("x").StraggleAt(time.Second, 0, 1).Build() },
			wantOrder: []Kind{Straggle},
			wantErr:   true,
		},
		{
			name:      "zero load multiplier rejected",
			build:     func() *Scenario { return New("x").LoadSurgeAt(time.Second, 0).Build() },
			wantOrder: []Kind{LoadSurge},
			wantErr:   true,
		},
		{
			name:      "huge load multiplier rejected",
			build:     func() *Scenario { return New("x").LoadSurgeAt(time.Second, 101).Build() },
			wantOrder: []Kind{LoadSurge},
			wantErr:   true,
		},
		{
			// The builder/DSL validation-skew regression: the DSL always
			// rejected a partition with no groups; the builder must too.
			name:      "partition with zero groups rejected",
			build:     func() *Scenario { return New("x").PartitionAt(time.Second).Build() },
			wantOrder: []Kind{Partition},
			wantErr:   true,
		},
		{
			name: "partition with an empty group rejected",
			build: func() *Scenario {
				return New("x").PartitionAt(time.Second, []int{1, 2}, nil).Build()
			},
			wantOrder: []Kind{Partition},
			wantErr:   true,
		},
		{
			// A single non-empty group is a real cut: the unlisted replicas
			// form the implicit other side (the partition-heal preset
			// depends on this shape).
			name: "partition with one non-empty group accepted",
			build: func() *Scenario {
				return New("x").PartitionAt(time.Second, []int{1, 2}).Build()
			},
			wantOrder: []Kind{Partition},
		},
		{
			name: "attack verbs accepted",
			build: func() *Scenario {
				return New("x").
					EquivocateAt(1*time.Second, 1).
					CensorAt(2*time.Second, 2).
					MuteLeaderAt(3*time.Second, 3, 4).
					Build()
			},
			wantOrder: []Kind{Equivocate, Censor, MuteLeader},
		},
		{
			name:      "equivocate without nodes rejected",
			build:     func() *Scenario { return New("x").EquivocateAt(time.Second).Build() },
			wantOrder: []Kind{Equivocate},
			wantErr:   true,
		},
		{
			name:      "censor with out-of-range node rejected",
			build:     func() *Scenario { return New("x").CensorAt(time.Second, 7).Build() },
			wantOrder: []Kind{Censor},
			wantErr:   true,
		},
		{
			name:      "mute-leader without nodes rejected",
			build:     func() *Scenario { return New("x").MuteLeaderAt(time.Second).Build() },
			wantOrder: []Kind{MuteLeader},
			wantErr:   true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.build()
			var order []Kind
			for _, e := range s.Events {
				order = append(order, e.Kind)
			}
			if !reflect.DeepEqual(order, tc.wantOrder) {
				t.Fatalf("event order %v, want %v", order, tc.wantOrder)
			}
			err := s.Validate(7)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate(7) = %v, wantErr=%v", err, tc.wantErr)
			}
			// Builder validation speaks the same typed error as the DSL.
			if err != nil && !errors.Is(err, errs.ErrInvalidConfig) {
				t.Fatalf("Validate(7) error %v does not wrap errs.ErrInvalidConfig", err)
			}
		})
	}
}

// TestApplyDispatchesInOrder applies a timeline to a simulator with
// recording hooks and checks every event fires, at its time, in order.
func TestApplyDispatchesInOrder(t *testing.T) {
	s := New("x").
		CrashAt(2*time.Second, 5, 6).
		StraggleAt(1*time.Second, 10, 3).
		PartitionAt(3*time.Second, []int{0, 1}).
		HealAt(4*time.Second).
		LoadSurgeAt(5*time.Second, 2).
		RecoverAt(6*time.Second, 5, 6).
		EquivocateAt(7*time.Second, 1).
		CensorAt(8*time.Second, 2).
		MuteLeaderAt(9*time.Second, 3, 4).
		Build()

	sim := simnet.New(1)
	var got []string
	log := func(format string, args ...any) {
		got = append(got, fmt.Sprintf("%v ", time.Duration(sim.Now()))+fmt.Sprintf(format, args...))
	}
	s.Apply(sim, Hooks{
		Crash:      func(id int) { log("crash %d", id) },
		Recover:    func(id int) { log("recover %d", id) },
		Straggle:   func(id int, scale float64) { log("straggle %d x%g", id, scale) },
		Partition:  func(groups [][]int) { log("partition %v", groups) },
		Heal:       func() { log("heal") },
		LoadFactor: func(mult float64) { log("load x%g", mult) },
		Equivocate: func(id int) { log("equivocate %d", id) },
		Censor:     func(id int) { log("censor %d", id) },
		MuteLeader: func(id int) { log("mute-leader %d", id) },
	})
	sim.RunAll(0)

	want := []string{
		"1s straggle 3 x10",
		"2s crash 5",
		"2s crash 6",
		"3s partition [[0 1]]",
		"4s heal",
		"5s load x2",
		"6s recover 5",
		"6s recover 6",
		"7s equivocate 1",
		"8s censor 2",
		"9s mute-leader 3",
		"9s mute-leader 4",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hook trace:\n%v\nwant:\n%v", got, want)
	}
}

// TestApplyNilHooks checks unset hooks make events no-ops instead of
// panicking.
func TestApplyNilHooks(t *testing.T) {
	s := New("x").CrashAt(time.Second, 1).HealAt(2 * time.Second).Build()
	sim := simnet.New(1)
	s.Apply(sim, Hooks{})
	sim.RunAll(0) // must not panic
}

func TestPhases(t *testing.T) {
	s := New("x").
		CrashAt(2*time.Second, 5).
		StraggleAt(2*time.Second, 10, 3).
		RecoverAt(4*time.Second, 5).
		Build()
	got := s.Phases()
	want := []Phase{
		{Label: "baseline", Start: 0},
		{Label: "crash+straggle", Start: 2 * time.Second},
		{Label: "recover", Start: 4 * time.Second},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Phases() = %v, want %v", got, want)
	}
}

// TestPhasesEventAtZero: events at t=0 relabel the baseline phase instead
// of opening an empty extra window.
func TestPhasesEventAtZero(t *testing.T) {
	s := New("x").StraggleAt(0, 10, 1).HealAt(3 * time.Second).Build()
	got := s.Phases()
	want := []Phase{
		{Label: "straggle", Start: 0},
		{Label: "heal", Start: 3 * time.Second},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Phases() = %v, want %v", got, want)
	}
}

// TestPresetsDeterministicAndValid: every preset validates against its
// cluster size and is reproducible from its seed.
func TestPresetsDeterministicAndValid(t *testing.T) {
	for _, name := range append(Names(), AttackNames()...) {
		for _, n := range []int{4, 7, 16} {
			a, err := Preset(name, n, 10*time.Second, 42)
			if err != nil {
				t.Fatalf("Preset(%q, %d): %v", name, n, err)
			}
			if err := a.Validate(n); err != nil {
				t.Fatalf("Preset(%q, %d) invalid: %v", name, n, err)
			}
			b, _ := Preset(name, n, 10*time.Second, 42)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("Preset(%q, %d) not deterministic:\n%v\nvs\n%v", name, n, a, b)
			}
			for _, e := range a.Events {
				for _, id := range e.Nodes {
					if id == 0 {
						t.Fatalf("Preset(%q, %d) targets the observer replica 0: %v", name, n, e)
					}
				}
			}
		}
	}
	if _, err := Preset("no-such", 7, time.Second, 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := Preset(CrashRecover, 3, time.Second, 1); err == nil {
		t.Fatal("n=3 accepted")
	}
}
