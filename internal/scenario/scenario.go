// Package scenario provides a declarative, composable timeline of mid-run
// fault and load events for cluster experiments. The paper's evaluation
// (Sec. VII) only exercises static fault shapes — a fixed straggler count
// or a crash set injected once — whereas real deployments see dynamic
// conditions: crashes that recover, partitions that heal, stragglers that
// come and go, load surges. A Scenario expresses such a timeline as pure
// data; cluster.Run compiles it onto the discrete-event simulator via
// Apply, so any protocol runs any scenario without protocol-code changes.
//
// A scenario is built fluently and is immutable after Build:
//
//	s := scenario.New("demo").
//		StraggleAt(1*time.Second, 10, 4).
//		CrashAt(3*time.Second, 5, 6).
//		RecoverAt(6*time.Second, 5, 6).
//		Build()
//
// Determinism: a Scenario is plain data, Apply schedules its events at
// fixed virtual times on the seeded simulator, and the preset generators
// draw victim choices from their own seeded RNG — so a given (scenario,
// seed, config) triple reproduces exactly, serial or parallel (the
// determinism regression tests in internal/experiments pin this down).
//
// Event times also delimit the per-phase measurement windows cluster.Run
// reports (cluster.PhaseWindow), which is how the S1 figure family shows
// throughput collapsing and recovering around each event.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/errs"
	"repro/internal/simnet"
)

// Kind identifies what an Event does to the running cluster.
type Kind int

// The event vocabulary. Crash/Recover act on replicas (protocol engines
// stop and resume, the network endpoint goes down and comes back);
// Partition/Heal act on links; Straggle rescales a node's egress delay and
// proposal pulse (scale 1 heals it); LoadSurge rescales the open-loop
// client submission rate. The last three are Byzantine attacks: from their
// event time on, the named replicas equivocate (conflicting proposals to
// disjoint halves), censor (drop every pending transaction from their
// proposals) or go leader-mute (swallow all leader-role traffic). Attacks
// are one-way switches — the view-change machinery, not a timeline event,
// ends them by rotating leadership away from the attacker.
const (
	Crash Kind = iota
	Recover
	Partition
	Heal
	Straggle
	LoadSurge
	Equivocate
	Censor
	MuteLeader
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case Straggle:
		return "straggle"
	case LoadSurge:
		return "load-surge"
	case Equivocate:
		return "equivocate"
	case Censor:
		return "censor"
	case MuteLeader:
		return "mute-leader"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one timeline entry: at virtual time At, apply Kind to the run.
// Which auxiliary fields matter depends on Kind: Nodes for Crash, Recover
// and Straggle; Groups for Partition; Scale for Straggle (outgoing-delay
// and pulse multiplier) and LoadSurge (submission-rate multiplier).
type Event struct {
	At     time.Duration
	Kind   Kind
	Nodes  []int
	Groups [][]int
	Scale  float64
}

// String renders the event compactly, e.g. "3s crash nodes=[5 6]".
func (e Event) String() string {
	s := fmt.Sprintf("%v %s", e.At, e.Kind)
	switch e.Kind {
	case Crash, Recover, Equivocate, Censor, MuteLeader:
		s += fmt.Sprintf(" nodes=%v", e.Nodes)
	case Straggle:
		s += fmt.Sprintf(" nodes=%v x%g", e.Nodes, e.Scale)
	case Partition:
		s += fmt.Sprintf(" groups=%v", e.Groups)
	case LoadSurge:
		s += fmt.Sprintf(" x%g", e.Scale)
	}
	return s
}

// Scenario is a named, time-ordered fault/load timeline. Build sorts the
// events; treat the struct as immutable afterwards — cluster configurations
// share Scenario pointers across parallel runs.
type Scenario struct {
	Name   string
	Events []Event
}

// Builder assembles a Scenario fluently; every method returns the builder
// for chaining and Build finalizes it.
type Builder struct {
	s Scenario
}

// New starts a scenario with the given name (used in run labels and the S1
// figure's rows).
func New(name string) *Builder {
	return &Builder{s: Scenario{Name: name}}
}

// CrashAt stops the given replicas at time at: their protocol engines halt
// and their network endpoints go down.
func (b *Builder) CrashAt(at time.Duration, nodes ...int) *Builder {
	b.s.Events = append(b.s.Events, Event{At: at, Kind: Crash, Nodes: nodes})
	return b
}

// RecoverAt restarts previously crashed replicas at time at. A recovered
// replica rejoins consensus voting but does not replay blocks missed while
// down (no state transfer is modeled).
func (b *Builder) RecoverAt(at time.Duration, nodes ...int) *Builder {
	b.s.Events = append(b.s.Events, Event{At: at, Kind: Recover, Nodes: nodes})
	return b
}

// PartitionAt cuts the network into the given groups at time at; nodes
// listed in no group form one additional implicit group. A message
// crossing the cut is dropped if the link is still cut when it would
// deliver — so messages in flight at the cut are lost unless a heal
// lands before their delivery time.
func (b *Builder) PartitionAt(at time.Duration, groups ...[]int) *Builder {
	b.s.Events = append(b.s.Events, Event{At: at, Kind: Partition, Groups: groups})
	return b
}

// HealAt removes every link cut at time at.
func (b *Builder) HealAt(at time.Duration) *Builder {
	b.s.Events = append(b.s.Events, Event{At: at, Kind: Heal})
	return b
}

// StraggleAt makes the given nodes stragglers from time at on: everything
// they send is slowed by scale and their proposal pulses dilate by scale
// (the paper's Sec. VII-A straggler model, but switchable mid-run).
// Scale 1 restores normal speed.
func (b *Builder) StraggleAt(at time.Duration, scale float64, nodes ...int) *Builder {
	b.s.Events = append(b.s.Events, Event{At: at, Kind: Straggle, Nodes: nodes, Scale: scale})
	return b
}

// LoadSurgeAt multiplies the open-loop client submission rate by mult from
// time at on. Mult 1 restores the configured rate; Validate bounds mult to
// (0, 100] so the surged submission interval stays a sane virtual-time
// step.
func (b *Builder) LoadSurgeAt(at time.Duration, mult float64) *Builder {
	b.s.Events = append(b.s.Events, Event{At: at, Kind: LoadSurge, Scale: mult})
	return b
}

// EquivocateAt turns the given replicas into equivocating leaders from time
// at on: each block they lead is proposed in two conflicting versions to
// disjoint replica halves. Neither half can reach a quorum, so the attacked
// instances stall until their honest members rotate the view.
func (b *Builder) EquivocateAt(at time.Duration, nodes ...int) *Builder {
	b.s.Events = append(b.s.Events, Event{At: at, Kind: Equivocate, Nodes: nodes})
	return b
}

// CensorAt turns the given replicas into censoring leaders from time at on:
// every pending transaction is dropped from their proposals (they keep
// proposing, so only the bucket-aging censorship detector — not the crash
// detector — can catch them and rotate the view).
func (b *Builder) CensorAt(at time.Duration, nodes ...int) *Builder {
	b.s.Events = append(b.s.Events, Event{At: at, Kind: Censor, Nodes: nodes})
	return b
}

// MuteLeaderAt silences the given replicas' leader roles from time at on:
// proposals and NewView messages are swallowed while votes continue, so
// every instance they lead undergoes a view change. Muting several
// replicas at one time is the view-change-storm attack.
func (b *Builder) MuteLeaderAt(at time.Duration, nodes ...int) *Builder {
	b.s.Events = append(b.s.Events, Event{At: at, Kind: MuteLeader, Nodes: nodes})
	return b
}

// Build finalizes the scenario: events are stably sorted by time (ties keep
// insertion order) and the result must not be mutated afterwards.
func (b *Builder) Build() *Scenario {
	s := b.s
	s.Events = append([]Event(nil), s.Events...)
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return &s
}

// Validate checks the scenario against a cluster of n replicas: event
// times must be non-negative, node indices in [0, n), partition groups
// non-empty, disjoint and in range, straggle scales positive, load
// multipliers in (0, 100], and Crash/Straggle/attack node lists non-empty.
// Every failure wraps errs.ErrInvalidConfig, the same sentinel the
// scenariodsl parser uses, so one errors.Is check covers a scenario however
// it was built. cluster.Run validates before starting.
func (s *Scenario) Validate(n int) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: scenario %q: %s", errs.ErrInvalidConfig, s.Name, fmt.Sprintf(format, args...))
	}
	for i, e := range s.Events {
		if e.At < 0 {
			return fail("event %d (%s) has negative time", i, e)
		}
		switch e.Kind {
		case Crash, Recover, Straggle, Equivocate, Censor, MuteLeader:
			if len(e.Nodes) == 0 {
				return fail("event %d (%s) names no nodes", i, e)
			}
			for _, id := range e.Nodes {
				if id < 0 || id >= n {
					return fail("event %d (%s) targets node %d outside [0,%d)", i, e, id, n)
				}
			}
			if e.Kind == Straggle && e.Scale <= 0 {
				return fail("event %d (%s) has non-positive scale", i, e)
			}
		case Partition:
			// The same shape checks the DSL parser enforces: at least one
			// group, no empty groups. (A single non-empty group is a real
			// cut — the unlisted nodes form the implicit other side.)
			if len(e.Groups) == 0 {
				return fail("event %d (%s) names no groups", i, e)
			}
			seen := make(map[int]bool)
			for _, g := range e.Groups {
				if len(g) == 0 {
					return fail("event %d (%s) has an empty group", i, e)
				}
				for _, id := range g {
					if id < 0 || id >= n {
						return fail("event %d (%s) targets node %d outside [0,%d)", i, e, id, n)
					}
					if seen[id] {
						return fail("event %d (%s) lists node %d in two groups", i, e, id)
					}
					seen[id] = true
				}
			}
		case LoadSurge:
			if e.Scale <= 0 || e.Scale > 100 {
				return fail("event %d (%s) has load multiplier outside (0,100]", i, e)
			}
		case Heal:
			// no operands
		default:
			return fail("event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Hooks connects a scenario to a running cluster: Apply invokes these as
// its events fire. Any nil hook makes the corresponding event a no-op,
// which lets partial harnesses (or tests) apply scenarios selectively.
type Hooks struct {
	// Crash stops replica node (protocol engines and network endpoint).
	Crash func(node int)
	// Recover restarts replica node.
	Recover func(node int)
	// Straggle rescales node's egress delay and proposal pulse; 1 heals.
	Straggle func(node int, scale float64)
	// Partition cuts the network into groups (see Builder.PartitionAt).
	Partition func(groups [][]int)
	// Heal removes all link cuts.
	Heal func()
	// LoadFactor rescales the client submission rate; 1 restores it.
	LoadFactor func(mult float64)
	// Equivocate switches replica node to equivocating-leader behavior.
	Equivocate func(node int)
	// Censor switches replica node to censoring-leader behavior.
	Censor func(node int)
	// MuteLeader silences replica node's leader role.
	MuteLeader func(node int)
}

// Apply schedules every event on the simulator at its virtual time,
// dispatching to the hooks. Events at equal times run in timeline order
// (the simulator breaks ties by scheduling order), so Apply is fully
// deterministic.
func (s *Scenario) Apply(sim *simnet.Sim, h Hooks) {
	for _, e := range s.Events {
		e := e
		sim.At(simnet.Time(e.At), func() {
			switch e.Kind {
			case Crash:
				if h.Crash != nil {
					for _, id := range e.Nodes {
						h.Crash(id)
					}
				}
			case Recover:
				if h.Recover != nil {
					for _, id := range e.Nodes {
						h.Recover(id)
					}
				}
			case Straggle:
				if h.Straggle != nil {
					for _, id := range e.Nodes {
						h.Straggle(id, e.Scale)
					}
				}
			case Partition:
				if h.Partition != nil {
					h.Partition(e.Groups)
				}
			case Heal:
				if h.Heal != nil {
					h.Heal()
				}
			case LoadSurge:
				if h.LoadFactor != nil {
					h.LoadFactor(e.Scale)
				}
			case Equivocate:
				if h.Equivocate != nil {
					for _, id := range e.Nodes {
						h.Equivocate(id)
					}
				}
			case Censor:
				if h.Censor != nil {
					for _, id := range e.Nodes {
						h.Censor(id)
					}
				}
			case MuteLeader:
				if h.MuteLeader != nil {
					for _, id := range e.Nodes {
						h.MuteLeader(id)
					}
				}
			}
		})
	}
}

// Phase marks the start of one measurement window: scenarios divide a run
// into phases at their (distinct) event times, and cluster.Run reports
// metrics per phase.
type Phase struct {
	// Label names the window after the events starting it ("baseline" for
	// the first, else the kinds joined by '+', e.g. "crash+straggle").
	Label string
	// Start is the window's opening virtual time.
	Start time.Duration
}

// Phases returns the measurement windows the scenario induces: a "baseline"
// phase from time zero, then one phase per distinct event time, labeled by
// the kinds of the events firing there. Consecutive duplicate kinds at one
// time collapse into a single label component.
func (s *Scenario) Phases() []Phase {
	phases := []Phase{{Label: "baseline", Start: 0}}
	for i := 0; i < len(s.Events); {
		at := s.Events[i].At
		var kinds []string
		for ; i < len(s.Events) && s.Events[i].At == at; i++ {
			k := s.Events[i].Kind.String()
			if len(kinds) == 0 || kinds[len(kinds)-1] != k {
				kinds = append(kinds, k)
			}
		}
		if at == 0 {
			// Events at t=0 reshape the baseline rather than open a phase.
			phases[0].Label = strings.Join(kinds, "+")
			continue
		}
		phases = append(phases, Phase{Label: strings.Join(kinds, "+"), Start: at})
	}
	return phases
}
