package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/errs"
)

// The named presets of the S1 scenario suite, in figure order.
const (
	// CrashRecover crashes f replicas at 30% of the run and recovers them
	// at 60%.
	CrashRecover = "crash-recover"
	// RollingStragglers walks one 10x straggler across three consecutive
	// replicas, one per 20%-of-run window.
	RollingStragglers = "rolling-stragglers"
	// PartitionHeal isolates f replicas at 30% of the run and heals the cut
	// at 60%. The majority side keeps exactly a 2f+1 quorum.
	PartitionHeal = "partition-heal"
	// FlashCrowd triples the client submission rate between 35% and 65% of
	// the run.
	FlashCrowd = "flash-crowd"
)

// The named attack presets of the S2 robustness suite, in figure order.
// Each attack starts at 30% of the run and ends when the honest replicas
// rotate the victims out of their leader roles — the recovery is part of
// what the figure measures.
const (
	// Equivocation makes one replica an equivocating leader at 30% of the
	// run.
	Equivocation = "equivocation"
	// Censorship makes one replica a censoring leader at 30% of the run.
	Censorship = "censorship"
	// SilentLeader leader-mutes one replica at 30% of the run.
	SilentLeader = "silent-leader"
	// ViewChangeStorm leader-mutes f replicas at once at 30% of the run,
	// forcing view changes across many SB instances in one window.
	ViewChangeStorm = "view-change-storm"
)

// SoakChurn is the long-horizon churn preset behind the F-soak figure: a
// rotating victim crashes every tenth of the run and recovers half a cycle
// later, eight cycles total, so at any horizon some replica has recently
// crashed, caught up through state transfer, and rejoined. It is not part
// of the S1 suite (Names) — the soak harness selects it explicitly.
const SoakChurn = "soak-churn"

// Names returns the preset identifiers in S1 figure order.
func Names() []string {
	return []string{CrashRecover, RollingStragglers, PartitionHeal, FlashCrowd}
}

// AttackNames returns the Byzantine attack preset identifiers in S2 figure
// order.
func AttackNames() []string {
	return []string{Equivocation, Censorship, SilentLeader, ViewChangeStorm}
}

// Describe returns a one-line description of a preset timeline for CLI
// listings; unknown names describe as the empty string.
func Describe(name string) string {
	switch name {
	case CrashRecover:
		return "crash f replicas at 30% of the run, recover them at 60%"
	case RollingStragglers:
		return "walk one 10x straggler across three replicas, one per 20% window"
	case PartitionHeal:
		return "isolate f replicas at 30% of the run, heal the cut at 60%"
	case FlashCrowd:
		return "triple the client submission rate between 35% and 65% of the run"
	case Equivocation:
		return "one leader equivocates from 30% of the run until rotated out"
	case Censorship:
		return "one leader censors all transactions from 30% of the run until rotated out"
	case SilentLeader:
		return "one leader goes silent at 30% of the run, forcing a view change"
	case ViewChangeStorm:
		return "f leaders go silent at once at 30% of the run — a view-change storm"
	case SoakChurn:
		return "a rotating victim crashes every 10% of the run and recovers 5% (at most 30s) later, eight cycles"
	}
	return ""
}

// Preset builds the named scenario for an n-replica cluster whose
// submission window is dur long. Victim replicas are drawn from [1, n) —
// replica 0 stays alive as the metrics observer — using an RNG seeded from
// seed, so the same (name, n, dur, seed) always yields the same timeline.
func Preset(name string, n int, dur time.Duration, seed int64) (*Scenario, error) {
	if n < 4 {
		return nil, fmt.Errorf("%w: scenario: preset %q needs n >= 4, got %d", errs.ErrInvalidConfig, name, n)
	}
	f := (n - 1) / 3
	rng := rand.New(rand.NewSource(seed))
	frac := func(p float64) time.Duration { return time.Duration(float64(dur) * p) }
	switch name {
	case CrashRecover:
		victims := pickVictims(rng, n, f)
		return New(name).
			CrashAt(frac(0.3), victims...).
			RecoverAt(frac(0.6), victims...).
			Build(), nil
	case RollingStragglers:
		start := 1 + rng.Intn(n-1)
		b := New(name)
		for i := 0; i < 3; i++ {
			v := 1 + (start-1+i)%(n-1) // walk within [1, n)
			b.StraggleAt(frac(0.2+0.2*float64(i)), 10, v)
			b.StraggleAt(frac(0.2+0.2*float64(i+1)), 1, v)
		}
		return b.Build(), nil
	case PartitionHeal:
		minority := pickVictims(rng, n, f)
		return New(name).
			PartitionAt(frac(0.3), minority). // the rest form the implicit majority
			HealAt(frac(0.6)).
			Build(), nil
	case FlashCrowd:
		return New(name).
			LoadSurgeAt(frac(0.35), 3).
			LoadSurgeAt(frac(0.65), 1).
			Build(), nil
	case Equivocation:
		return New(name).
			EquivocateAt(frac(0.3), pickVictims(rng, n, 1)...).
			Build(), nil
	case Censorship:
		return New(name).
			CensorAt(frac(0.3), pickVictims(rng, n, 1)...).
			Build(), nil
	case SilentLeader:
		return New(name).
			MuteLeaderAt(frac(0.3), pickVictims(rng, n, 1)...).
			Build(), nil
	case ViewChangeStorm:
		return New(name).
			MuteLeaderAt(frac(0.3), pickVictims(rng, n, f)...).
			Build(), nil
	case SoakChurn:
		// Eight crash/recover cycles; with n-1 candidate victims the
		// rotation wraps, but a wrapped victim has long since rejoined. The
		// outage is half a cycle but capped at 30 s of virtual time: block-
		// replay catch-up can only repair gaps its peers' archives still
		// cover (one epoch of hysteresis past the stable checkpoint floor,
		// i.e. 2 x EpochLen x BatchTimeout under the soak configuration), so
		// on hour-long runs an uncapped 5% outage would outlive the
		// archives and leave the victim a permanent laggard — snapshot
		// installation below the GC floor is explicitly out of scope.
		perm := rng.Perm(n - 1)
		down := frac(0.05)
		if down > 30*time.Second {
			down = 30 * time.Second
		}
		b := New(name)
		for i := 0; i < 8; i++ {
			v := perm[i%(n-1)] + 1
			b.CrashAt(frac(0.1+0.1*float64(i)), v)
			b.RecoverAt(frac(0.1+0.1*float64(i))+down, v)
		}
		return b.Build(), nil
	default:
		return nil, fmt.Errorf("%w: scenario: unknown preset %q (want one of %v or %v)",
			errs.ErrInvalidConfig, name, Names(), AttackNames())
	}
}

// pickVictims draws k distinct replicas from [1, n), ascending.
func pickVictims(rng *rand.Rand, n, k int) []int {
	perm := rng.Perm(n - 1)
	victims := make([]int, k)
	for i := 0; i < k; i++ {
		victims[i] = perm[i] + 1
	}
	// Insertion sort keeps the timeline readable and the order stable.
	for i := 1; i < len(victims); i++ {
		for j := i; j > 0 && victims[j] < victims[j-1]; j-- {
			victims[j], victims[j-1] = victims[j-1], victims[j]
		}
	}
	return victims
}
