package scenario_test

import (
	"fmt"
	"time"

	"repro/internal/scenario"
)

// ExampleNew builds a composite timeline — a straggler window overlapping
// a crash-recover cycle — and shows the compiled, time-sorted events and
// the measurement phases they induce.
func ExampleNew() {
	s := scenario.New("demo").
		CrashAt(3*time.Second, 5, 6).
		StraggleAt(1*time.Second, 10, 4).
		RecoverAt(6*time.Second, 5, 6).
		StraggleAt(6*time.Second, 1, 4).
		Build()

	for _, e := range s.Events {
		fmt.Println(e)
	}
	for _, p := range s.Phases() {
		fmt.Printf("phase %q from %v\n", p.Label, p.Start)
	}
	// Output:
	// 1s straggle nodes=[4] x10
	// 3s crash nodes=[5 6]
	// 6s recover nodes=[5 6]
	// 6s straggle nodes=[4] x1
	// phase "baseline" from 0s
	// phase "straggle" from 1s
	// phase "crash" from 3s
	// phase "recover+straggle" from 6s
}

// ExamplePreset shows the seeded scenario generators behind the S1 figure
// family: the same (name, n, duration, seed) always yields the same
// timeline.
func ExamplePreset() {
	s, err := scenario.Preset(scenario.PartitionHeal, 7, 10*time.Second, 42)
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Name)
	for _, e := range s.Events {
		fmt.Println(e)
	}
	// Output:
	// partition-heal
	// 3s partition groups=[[1 6]]
	// 6s heal
}
