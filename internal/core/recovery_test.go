package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/types"
)

// The crash -> recover -> state-transfer catch-up matrix: a victim replica
// misses deliveries while down, rejoins, and repairs its log gap by
// replaying only the missed blocks from its peers — never anything below
// its own prefix, and never the same slot twice. Runs cover LAN and WAN
// delay models, two cluster sizes, and several seeds.

// catchUpCluster instruments a testCluster with a per-replica delivery log
// keyed (instance, seq) so the matrix can assert digest agreement and
// no-replay.
type catchUpCluster struct {
	*testCluster
	// delivered[slot][replica] is the delivered digest; deliveries[replica]
	// counts per-slot delivery events, so any count > 1 is a replay.
	delivered  map[blockSlot]map[int]types.BlockID
	deliveries []map[blockSlot]int
}

func newCatchUpCluster(t *testing.T, n int, seed int64, wan bool) *catchUpCluster {
	t.Helper()
	cc := &catchUpCluster{
		delivered:  map[blockSlot]map[int]types.BlockID{},
		deliveries: make([]map[blockSlot]int, n),
	}
	mutate := func(i int, cfg *core.Config) {
		cfg.StateTransfer = true
		cfg.EpochLen = 4
		// Keep the outage inside the repair envelope, like the soak preset
		// does: block-replay catch-up reaches one epoch below the stable
		// floor, so the 500 ms outage (plus the catch-up round trips) must
		// stay under an epoch = EpochLen x BatchTimeout = 800 ms.
		cfg.BatchTimeout = 200 * time.Millisecond
		cfg.ViewTimeout = 2 * time.Second
		cc.deliveries[i] = map[blockSlot]int{}
		cfg.OnBlockDeliver = func(instance int, b *types.Block) {
			slot := blockSlot{instance: instance, seq: b.SN}
			if cc.delivered[slot] == nil {
				cc.delivered[slot] = map[int]types.BlockID{}
			}
			cc.delivered[slot][i] = b.Digest()
			cc.deliveries[i][slot]++
		}
	}
	genesis := genesisRich(accountNames(12)...)
	if wan {
		cc.testCluster = newTestClusterSeed(t, n, core.OrthrusMode(), genesis, mutate, seed)
	} else {
		cc.testCluster = newTestCluster(t, n, core.OrthrusMode(), genesis, mutate)
	}
	return cc
}

func accountNames(k int) []types.Key {
	var names []types.Key
	for i := 0; i < k; i++ {
		names = append(names, types.Key(fmt.Sprintf("acct%d", i)))
	}
	return names
}

// runCatchUpMatrixCell drives one cell: staggered payments over 8 s, the
// victim down [2 s, 2.5 s) — within the archives' one-epoch hysteresis
// (epochs are EpochLen x BatchTimeout deep) so the gap is fully repairable.
func runCatchUpMatrixCell(t *testing.T, n int, seed int64, wan bool) {
	t.Helper()
	cc := newCatchUpCluster(t, n, seed, wan)
	rng := rand.New(rand.NewSource(seed))
	names := accountNames(12)
	for i := 0; i < 40; i++ {
		from := names[rng.Intn(len(names))]
		to := names[rng.Intn(len(names))]
		tx := types.NewPayment(from, to, types.Amount(rng.Intn(9)+1), uint64(i))
		at := simnet.Time(time.Duration(rng.Intn(8000)) * time.Millisecond)
		cc.sim.At(at, func() {
			tx.SubmitNS = int64(cc.sim.Now())
			for _, r := range cc.replicas {
				_ = r.SubmitTx(tx)
			}
		})
	}

	victim := 1 + rng.Intn(n-1) // replica 0 stays up as the observer
	t.Logf("victim = replica %d", victim)
	var stableAtCrash uint64
	cc.sim.At(simnet.Time(2*time.Second), func() {
		_, stableAtCrash = cc.replicas[victim].Epoch()
		cc.replicas[victim].Stop()
		cc.nw.SetDown(victim, true)
	})
	cc.sim.At(simnet.Time(2500*time.Millisecond), func() {
		cc.nw.SetDown(victim, false)
		cc.replicas[victim].Recover()
	})
	cc.run(16 * time.Second)

	requireSlotAgreement(t, cc.delivered)
	for i, counts := range cc.deliveries {
		for slot, k := range counts {
			if k > 1 {
				t.Fatalf("replica %d delivered instance %d seq %d %d times: pre-checkpoint replay",
					i, slot.instance, slot.seq, k)
			}
		}
	}
	v := cc.replicas[victim]
	if v.StateTransferApplied() == 0 {
		t.Fatalf("victim %d repaired its gap without the catch-up protocol (view-change no-ops?)", victim)
	}
	// The victim's catch-up must have closed the gap completely: after
	// quiescence it delivers and stabilizes like everyone else, which is
	// only possible with a contiguous log (a residual gap would wedge its
	// delivery cursor and freeze its boundary digests).
	if _, stable := v.Epoch(); stable <= stableAtCrash {
		t.Fatalf("victim's stable epoch stuck at %d since the crash: gap never healed", stable)
	}
	cc.requireConsistent(t)
}

func TestCrashRecoverCatchUpMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 6 multi-second simulated clusters")
	}
	for _, cell := range []struct {
		n   int
		wan bool
	}{{7, false}, {10, true}} {
		for seed := int64(1); seed <= 3; seed++ {
			cell, seed := cell, seed
			net := "lan"
			if cell.wan {
				net = "wan"
			}
			t.Run(fmt.Sprintf("n=%d/%s/seed=%d", cell.n, net, seed), func(t *testing.T) {
				t.Parallel()
				runCatchUpMatrixCell(t, cell.n, seed, cell.wan)
			})
		}
	}
}
