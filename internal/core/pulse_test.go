package core

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/types"
)

// countingSB is a minimal SB stub that records Propose calls: always
// proposable, never delivering. It lets the pulse-loop tests observe
// exactly how many proposal pulses fired per instance.
type countingSB struct {
	proposed int
	next     uint64
}

func (c *countingSB) CanPropose() bool       { return true }
func (c *countingSB) NextProposeSeq() uint64 { return c.next }
func (c *countingSB) Propose(*types.Block) error {
	c.proposed++
	c.next++
	return nil
}
func (c *countingSB) SetTarget(uint64) {}
func (c *countingSB) IsLeader() bool   { return true }
func (c *countingSB) Leader() int      { return 0 }
func (c *countingSB) View() uint64     { return 0 }
func (c *countingSB) Stop()            {}

// TestPulseStaleWakeupAfterRecover is the core half of the timer re-arm
// audit: a Stop/Recover cycle leaves a stale pulse wakeup in flight (the
// closure-free pulse events carry the generation they were scheduled
// under), and that wakeup must neither fire a pulse nor reschedule itself
// — otherwise every crash-recovery would leave two proposal loops running
// on the instance, doubling its pulse rate forever. Runs against both
// scheduler queues.
func TestPulseStaleWakeupAfterRecover(t *testing.T) {
	for _, q := range []struct {
		name string
		kind simnet.QueueKind
	}{{"wheel", simnet.QueueWheel}, {"heap", simnet.QueueHeap}} {
		t.Run(q.name, func(t *testing.T) {
			sim := simnet.NewWithQueue(1, q.kind)
			nw := simnet.NewNetwork(sim, 1, simnet.FixedModel{D: time.Millisecond})
			sb := &countingSB{}
			r := NewReplica(Config{
				N: 1, F: 0, ID: 0, M: 1,
				Mode:         Mode{Name: "stub", NewGlobal: func(m int) GlobalOrdering { return WorkerOrdering{Ord: nil} }},
				BatchTimeout: 100 * time.Millisecond,
				SB:           func(instance int, hooks SBHooks) SB { return sb },
			}, simnet.On(sim, 0), nw)
			r.Start() // first pulse at t=100ms
			sim.Run(simnet.Time(150 * time.Millisecond))
			if sb.proposed != 1 {
				t.Fatalf("proposed %d pulses before the crash, want 1", sb.proposed)
			}
			// Crash with the 200ms pulse in flight, then recover quickly:
			// Recover schedules a fresh loop (next pulse at 260ms); the stale
			// 200ms wakeup must be a no-op.
			r.Stop()
			sim.Run(simnet.Time(160 * time.Millisecond))
			r.Recover()
			sim.Run(simnet.Time(470 * time.Millisecond))
			// Single loop: pulses at 260, 360, 460 only.
			if got := sb.proposed - 1; got != 3 {
				t.Fatalf("proposed %d pulses after recovery in 310ms, want 3 (stale wakeup fired or loop doubled)", got)
			}
			// A second rapid Stop/Recover cycle with the 560ms pulse in
			// flight must also leave exactly one loop.
			r.Stop()
			r.Recover() // next pulse at 570ms... then 670, 770, 870, 970
			before := sb.proposed
			sim.Run(simnet.Time(1000 * time.Millisecond))
			if got := sb.proposed - before; got != 5 {
				t.Fatalf("proposed %d pulses after second recovery in 530ms, want 5", got)
			}
		})
	}
}
