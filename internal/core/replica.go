package core

import (
	"crypto/sha256"
	"time"

	"repro/internal/crypto"
	"repro/internal/ledger"
	"repro/internal/order"
	"repro/internal/partition"
	"repro/internal/pbft"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Config parameterizes one replica.
type Config struct {
	N  int // replicas
	F  int // fault threshold
	ID int // this replica
	M  int // worker SB instances (paper: m = n)

	Mode Mode

	BatchSize    int           // max transactions per block (paper: 4096)
	BatchTimeout time.Duration // proposal pulse interval
	PulseScale   float64       // straggler: multiplies this replica's pulse
	Window       int           // pipelined proposals per instance
	ViewTimeout  time.Duration // PBFT view-change timeout (paper: 10 s)
	TxSize       int           // modeled tx wire size (paper: 500 B)
	EpochLen     uint64        // blocks per instance per epoch
	EpochLead    int           // epochs an instance may run ahead (non-strict)

	// ByzantineMute makes this replica vote only in the instance it leads
	// (the undetectable fault of Sec. VII-E).
	ByzantineMute bool

	// Censor is a Byzantine fault-injection hook: when this replica leads
	// an instance, it silently skips transactions the predicate matches.
	// Honest configurations leave it nil.
	Censor func(tx *types.Transaction) bool

	// CensorshipBlocks is the censorship detector's patience: if the
	// oldest feasible transaction in a bucket stays unproposed while this
	// many blocks deliver, the replica complains and votes to replace the
	// instance's leader (Sec. V-B). 0 selects the default of 64.
	CensorshipBlocks uint64

	// StateTransfer enables checkpoint-anchored catch-up: the replica
	// archives delivered blocks back to the stable-checkpoint floor, answers
	// peers' StateTransferReq broadcasts with a CheckpointCert plus the
	// block runs the requester is missing, and on Recover (or on observing a
	// checkpoint quorum it cannot match locally) requests the same from its
	// peers. Off by default: without it Recover keeps the pre-existing
	// contract (rejoin voting, leave the delivery gap).
	StateTransfer bool

	// SB overrides the sequenced-broadcast implementation; nil selects
	// message-level PBFT over the simulated network.
	SB SBBuilder

	// TraceStages records per-transaction stage timestamps (observer
	// replicas only; it costs memory).
	TraceStages bool

	// Genesis initializes the ledger (same on every replica).
	Genesis func(st *ledger.Store)

	// OnConfirm fires once per transaction when this replica confirms it
	// (executed successfully or aborted).
	OnConfirm func(tx *types.Transaction, success bool, at simnet.Time)
	// OnViewChange fires when an instance installs a new view.
	OnViewChange func(instance int, view uint64, at simnet.Time)
	// OnBlockDeliver fires on every worker-instance SB delivery, before the
	// block executes. The safety property suite records (instance, SN,
	// digest) triples through it to assert no two honest replicas ever
	// deliver conflicting blocks; nil costs nothing.
	OnBlockDeliver func(instance int, b *types.Block)

	// Keys signs proposals; optional (nil disables signing, which large
	// simulations use — the channels are authenticated either way).
	Keys *crypto.KeyRing
}

// StageTrace holds the five per-transaction timestamps of the paper's
// latency breakdown (Fig. 6). Zero means "not reached".
type StageTrace struct {
	Submit    simnet.Time // client handed the tx to the system
	Received  simnet.Time // replica received and bucketed it
	Proposed  simnet.Time // first included in a broadcast block
	Delivered simnet.Time // first SB delivery (partial order reached)
	Confirmed simnet.Time // executed/aborted (global order if applicable)
}

// CheckpointMsg is the end-of-epoch checkpoint broadcast (Sec. V-D).
type CheckpointMsg struct {
	Epoch   uint64
	Digest  [32]byte
	Replica int
}

// SubmitMsg carries a client transaction over a transport to a replica's
// message handler. The simulated cluster bypasses it (clients invoke
// SubmitTx through scheduled events); real transports, where clients are
// separate goroutines or processes, deliver submissions like any other
// message so they serialize with the replica's event loop.
type SubmitMsg struct {
	Tx *types.Transaction
}

// Network is the transport seam a replica drives: handler registration and
// fire-and-forget sends with a modeled size hint. *simnet.Network satisfies
// it natively; internal/transport provides wall-clock implementations that
// carry messages over goroutine channels or TCP, ignoring the size hint in
// favor of actual encoded wire sizes.
type Network interface {
	Register(id int, h simnet.Handler)
	Send(from, to, size int, msg any)
	Broadcast(from, size int, msg any)
}

// Replica is one Multi-BFT node: it participates in all SB instances,
// leads the instance(s) whose current view maps to it, and executes the
// resulting partial and global logs.
type Replica struct {
	cfg Config
	// sim is the replica's node-pinned scheduling view (simnet.On(sim,
	// ID)): proposal pulses and timers stamp this node's canonical key and
	// execute on its shard under the parallel kernel.
	sim simnet.NodeSim
	nw  Network

	sbs []SB // M worker SB instances (+1 sequencer if enabled)
	// sbHandle caches each SB's message handler (nil when the SB is not
	// message-level): the network dispatcher calls through this table
	// instead of re-asserting the optional interface on every delivery.
	sbHandle []func(int, pbft.Message)
	buckets  *partition.Set
	store    *ledger.Store
	global   GlobalOrdering
	rank     order.RankTracker
	state    types.StateVector // delivered blocks per worker instance

	// execState counts escrow-phased (executed) blocks per instance; blocks
	// escrow-phase only once execState covers their referenced state b.S.
	execState types.StateVector
	// execQ[i] with execQhead[i] form a head-indexed deque of delivered
	// blocks awaiting their escrow phase: consuming advances the head and
	// a fully drained queue rewinds to its backing array instead of
	// sliding off it, so steady-state delivery appends allocate nothing.
	execQ     [][]*types.Block
	execQhead []int
	// execQocc marks instances with a non-empty execQ (bit per instance):
	// the escrow fixed point visits only live queues instead of scanning
	// all M per delivery.
	execQocc []uint64
	// glogQ with glogHead is the same deque shape for globally confirmed
	// blocks awaiting in-order execution.
	glogQ    []glogCursor
	glogHead int

	// proposedDebits tracks amounts this replica (as leader) has promised in
	// proposed-but-not-yet-executed blocks, so feasibility validation of new
	// batches does not double-spend a payer across pipelined blocks.
	proposedDebits map[types.Key]types.Amount

	// Per-transaction trackers: transactions stamped with a dense run
	// index (types.Transaction.Idx, assigned by cluster.Run) live in a
	// slice addressed by Idx-1 — no 32-byte-key hashing on the deliver
	// path. Unindexed transactions (direct API use, custom sources) fall
	// back to the ID-keyed map.
	trackersIdx []*txTracker
	// trackersFloor is the index below which every trackersIdx entry has
	// been released by gcEpoch; the GC scan resumes there, so releasing the
	// whole run's trackers costs amortized O(1) per transaction.
	trackersFloor int
	trackerSlab   []txTracker
	trackers      map[types.TxID]*txTracker
	stages        map[types.TxID]*StageTrace

	// routeBuf is the reusable scratch for bucket routing: SubmitTx and the
	// leader's feasibility checks route every transaction without
	// allocating. Replicas are single-threaded event handlers, so one
	// buffer suffices; only tracker() retains routes (in its own slice).
	routeBuf []int

	seqRefs []types.BlockRef // refs awaiting sequencer proposal

	// Epoch & checkpoint state.
	epoch       uint64 // current epoch (delivery obligation)
	stableEpoch uint64 // epochs with a stable checkpoint
	ckptVotes   map[uint64]map[int][32]byte
	// ckptHighest[r] is one past the highest epoch replica r has voted for
	// (0 = no live vote). Only the highest pending vote per replica is
	// retained in ckptVotes — a newer vote evicts the older one — so the
	// vote maps hold at most N entries no matter how many far-future epoch
	// numbers a faulty replica spams (the same bound vcVotes carries).
	ckptHighest []uint64
	// ckptSent is one past the highest epoch this replica has broadcast a
	// checkpoint for. maybeFinishEpoch only ever finishes r.epoch, which is
	// monotone, so a watermark replaces the old unbounded sent-set.
	ckptSent uint64
	instHash [][32]byte // rolling digest of delivered blocks per instance
	// bound[e][i] snapshots instHash[i] the moment instance i delivered the
	// last block of epoch e — the canonical per-instance boundary hash.
	// Epoch digests hash these snapshots, never the live instHash, so two
	// replicas that delivered the same epoch agree on its digest regardless
	// of how far either has run ahead. Pruned by gcEpoch; the stable
	// boundary itself is retained for CheckpointCert responses.
	bound map[uint64][][32]byte
	// pendEpoch/pendDigest record the highest checkpoint quorum this
	// replica has observed but not yet matched locally (behind, or
	// diverged). Delivery re-checks it at every epoch boundary; with
	// StateTransfer it also triggers a catch-up request on divergence.
	pendEpoch  uint64
	pendDigest [32]byte
	pendSet    bool

	// State-transfer machinery (cfg.StateTransfer only). archive[i] holds
	// the delivered blocks of instance i from archiveBase[i] (the stable
	// GC floor) to state[i]; gcEpoch prunes it as checkpoints stabilize, so
	// its live size is bounded by the epoch run-ahead. stResps collects
	// peers' catch-up responses until enough arrive to apply; it is cleared
	// on every new request and at every stabilization.
	archive     [][]*types.Block
	archiveBase []uint64
	stResps     map[int]*StateTransferResp
	// stReqEpoch is the highest quorum epoch a lag-triggered catch-up
	// request has been sent for: a laggard re-requests at most once per
	// epoch while checkpoint quorums keep arriving for epochs it has not
	// finished (each round closes the gap to the then-tip; the next
	// epoch's quorum mops up whatever committed during the round trip).
	stReqEpoch uint64
	// stApplied counts blocks applied through catch-up (tests assert a
	// recovered replica repaired its gap without pre-checkpoint replay).
	stApplied uint64

	// liveTrackers counts transaction trackers currently retained (map and
	// index entries together); gcEpoch decrements it as finished trackers
	// are released. The soak harness samples it through LiveSet.
	liveTrackers int

	stalledUntil simnet.Time // Mir-style global stall deadline

	// lastComplain remembers, per instance, one past the view this replica
	// last complained about (0 = never), so the censorship detector votes
	// once per view.
	lastComplain []uint64

	// adversary holds this replica's Byzantine behavior switches; every
	// PBFT engine of the replica shares a pointer to it, so a scenario
	// event flips the behavior across all instances the replica leads.
	adversary pbft.Adversary
	// censorAll makes the replica censor every transaction while leading
	// (the scenario-driven variant of the cfg.Censor predicate).
	censorAll bool

	// Counters.
	confirmedOK  uint64
	confirmedBad uint64
	stopped      bool
	// pulseGen invalidates in-flight pulse loops across Stop/Recover cycles
	// so a quick recovery does not leave two loops running per instance.
	pulseGen uint64
	// pulseSlots back the closure-free pulse events: one per SB instance,
	// allocated once, carried as the CallAfter operand for every pulse of
	// that instance (the generation rides in the other operand).
	pulseSlots []pulseSlot
}

// pulseSlot names one instance's pulse loop for the closure-free
// scheduler events.
type pulseSlot struct {
	r        *Replica
	instance int
}

// NewReplica builds a replica attached to a network transport (simulated
// or real; see Network). Call Start to begin proposing. The same Config
// (except ID) must be used everywhere.
func NewReplica(cfg Config, sim simnet.NodeSim, nw Network) *Replica {
	if cfg.M <= 0 {
		cfg.M = cfg.N
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 4096
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = 100 * time.Millisecond
	}
	if cfg.PulseScale <= 0 {
		cfg.PulseScale = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.ViewTimeout <= 0 {
		cfg.ViewTimeout = 10 * time.Second
	}
	if cfg.TxSize <= 0 {
		cfg.TxSize = 500
	}
	if cfg.EpochLen == 0 {
		cfg.EpochLen = 32
	}
	if cfg.EpochLead <= 0 {
		cfg.EpochLead = 4
	}
	if cfg.CensorshipBlocks == 0 {
		cfg.CensorshipBlocks = 64
	}
	r := &Replica{
		cfg:            cfg,
		sim:            sim,
		nw:             nw,
		buckets:        partition.NewSet(cfg.M),
		store:          ledger.NewStore(),
		global:         cfg.Mode.NewGlobal(cfg.M),
		state:          make(types.StateVector, cfg.M),
		execState:      make(types.StateVector, cfg.M),
		execQ:          make([][]*types.Block, cfg.M),
		execQhead:      make([]int, cfg.M),
		execQocc:       make([]uint64, (cfg.M+63)/64),
		proposedDebits: make(map[types.Key]types.Amount),
		trackers:       make(map[types.TxID]*txTracker),
		ckptVotes:      make(map[uint64]map[int][32]byte),
		ckptHighest:    make([]uint64, cfg.N),
		instHash:       make([][32]byte, cfg.M),
		bound:          make(map[uint64][][32]byte),
		lastComplain:   make([]uint64, cfg.M),
	}
	if cfg.StateTransfer {
		r.archive = make([][]*types.Block, cfg.M)
		r.archiveBase = make([]uint64, cfg.M)
		r.stResps = make(map[int]*StateTransferResp)
	}
	if cfg.TraceStages {
		r.stages = make(map[types.TxID]*StageTrace)
	}
	if cfg.Genesis != nil {
		cfg.Genesis(r.store)
	}
	nInst := cfg.M
	if cfg.Mode.Sequencer {
		nInst++
	}
	build := cfg.SB
	if build == nil {
		build = r.pbftBuilder()
	}
	r.sbs = make([]SB, nInst)
	r.pulseSlots = make([]pulseSlot, nInst)
	for i := range r.pulseSlots {
		r.pulseSlots[i] = pulseSlot{r: r, instance: i}
	}
	for i := 0; i < nInst; i++ {
		i := i
		hooks := SBHooks{
			OnDeliver:    func(b *types.Block) { r.onDeliver(i, b) },
			OnViewChange: func(view uint64, leader int) { r.onViewChange(i, view) },
			MakeNoop: func(sn uint64) *types.Block {
				// No-op fills carry a fresh rank so the dynamic ordering's
				// floor keeps advancing past a replaced leader's gap.
				return &types.Block{Instance: i, SN: sn, Rank: r.rank.Highest() + 1}
			},
		}
		r.sbs[i] = build(i, hooks)
	}
	r.sbHandle = make([]func(int, pbft.Message), nInst)
	for i, sb := range r.sbs {
		if h, ok := sb.(interface{ Handle(int, pbft.Message) }); ok {
			r.sbHandle[i] = h.Handle
		}
	}
	nw.Register(cfg.ID, r.handle)
	return r
}

// pbftBuilder returns the default SBBuilder: message-level PBFT engines
// sharing this replica's network endpoint.
func (r *Replica) pbftBuilder() SBBuilder {
	return func(instance int, hooks SBHooks) SB {
		ecfg := pbft.Config{
			N: r.cfg.N, F: r.cfg.F, ID: r.cfg.ID, Instance: instance,
			Window:       r.cfg.Window,
			Timeout:      r.cfg.ViewTimeout,
			TxSize:       r.cfg.TxSize,
			MakeNoop:     hooks.MakeNoop,
			OnDeliver:    hooks.OnDeliver,
			OnViewChange: hooks.OnViewChange,
			// A Byzantine selective-participation replica votes only in the
			// instance it initially leads (instance index == replica ID).
			Mute:      r.cfg.ByzantineMute && instance != r.cfg.ID,
			Adversary: &r.adversary,
		}
		return pbft.New(ecfg, &instanceTransport{nw: r.nw, id: r.cfg.ID}, r.sim)
	}
}

// instanceTransport adapts the shared network endpoint to pbft.Transport.
type instanceTransport struct {
	nw Network
	id int
}

func (t *instanceTransport) Broadcast(size int, msg pbft.Message) { t.nw.Broadcast(t.id, size, msg) }
func (t *instanceTransport) Send(to, size int, msg pbft.Message)  { t.nw.Send(t.id, to, size, msg) }

// handle is the network-facing message dispatcher.
func (r *Replica) handle(from int, msg any) {
	if r.stopped {
		return
	}
	switch m := msg.(type) {
	case pbft.Message:
		i := m.PBFTInstance()
		if i >= 0 && i < len(r.sbHandle) {
			if h := r.sbHandle[i]; h != nil {
				h(from, m)
			}
		}
	case *CheckpointMsg:
		r.onCheckpoint(m)
	case *StateTransferReq:
		r.onStateTransferReq(m)
	case *StateTransferResp:
		r.onStateTransferResp(m)
	case *SubmitMsg:
		_ = r.SubmitTx(m.Tx)
	}
}

// Start arms failure detection and begins the proposal pulse loops.
func (r *Replica) Start() {
	for i := range r.sbs {
		if uint64(i) < uint64(r.cfg.M) {
			r.sbs[i].SetTarget(r.cfg.EpochLen)
		}
		r.schedulePulse(i)
	}
}

// Stop halts the replica (crash). Engines ignore further events.
func (r *Replica) Stop() {
	r.stopped = true
	r.pulseGen++
	for _, e := range r.sbs {
		e.Stop()
	}
}

// Recover restarts a stopped replica: SB engines resume handling messages
// and the proposal pulse loops restart. The replica rejoins consensus
// voting for new sequence numbers immediately. Without Config.StateTransfer
// it does not replay blocks it missed while down, so its local delivery log
// may keep a gap until a view change fills it (the cluster's client-visible
// metrics only need f+1 live replicas); with StateTransfer it additionally
// broadcasts a catch-up request, and peers answer with the latest stable
// CheckpointCert plus the delivered blocks past this replica's own prefix —
// the gap repairs by replaying only those blocks, never pre-checkpoint
// history. Engines that do not support resumption (the analytic SB) are
// left stopped.
func (r *Replica) Recover() {
	if !r.stopped {
		return
	}
	r.stopped = false
	r.pulseGen++
	for i := range r.sbs {
		if res, ok := r.sbs[i].(interface{ Resume() }); ok {
			res.Resume()
		}
		r.schedulePulse(i)
	}
	if r.cfg.StateTransfer {
		r.requestStateTransfer()
	}
}

// SetEquivocate switches the replica's equivocating-leader behavior at
// runtime (scenario attack injection): from the next proposal on, every
// block it leads is proposed in two conflicting versions to disjoint
// replica halves. The flag is shared by all of the replica's PBFT engines.
func (r *Replica) SetEquivocate(on bool) { r.adversary.Equivocate = on }

// SetMuteLeader silences (or restores) the replica's leader role at
// runtime: proposals and NewView messages are swallowed while votes
// continue, forcing view changes in every instance it leads.
func (r *Replica) SetMuteLeader(on bool) { r.adversary.MuteLeader = on }

// SetCensorAll makes the replica censor every pending transaction while
// leading (or stops doing so): it keeps proposing empty blocks, so only
// the bucket-aging censorship detector at honest replicas can rotate it
// out.
func (r *Replica) SetCensorAll(on bool) { r.censorAll = on }

// SetPulseScale changes the replica's proposal-pulse multiplier at runtime
// (scenario straggler injection): the next scheduled pulse picks it up.
// Scale 1 restores normal speed.
func (r *Replica) SetPulseScale(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	r.cfg.PulseScale = scale
}

// Store exposes the ledger for examples and invariant checks.
func (r *Replica) Store() *ledger.Store { return r.store }

// State returns the replica's current state vector (copy).
func (r *Replica) State() types.StateVector { return r.state.Clone() }

// Confirmed returns (successes, aborts) counted so far.
func (r *Replica) Confirmed() (ok, failed uint64) { return r.confirmedOK, r.confirmedBad }

// PendingGlobal returns blocks delivered but not yet globally confirmed.
func (r *Replica) PendingGlobal() int { return r.global.PendingCount() }

// Stages returns the stage trace for a transaction (TraceStages only).
func (r *Replica) Stages(id types.TxID) (StageTrace, bool) {
	if r.stages == nil {
		return StageTrace{}, false
	}
	s, ok := r.stages[id]
	if !ok {
		return StageTrace{}, false
	}
	return *s, true
}

// SubmitTx receives a client transaction (already transported; the cluster
// layer models client-to-replica delay). Submit time travels in tx.SubmitNS.
func (r *Replica) SubmitTx(tx *types.Transaction) error {
	if r.stopped {
		return nil
	}
	if err := tx.Validate(); err != nil {
		return err
	}
	r.routeBuf = r.appendRoute(r.routeBuf[:0], tx)
	for _, i := range r.routeBuf {
		r.buckets.Bucket(i).Push(tx)
	}
	if r.stages != nil {
		st := r.stageOf(tx.ID())
		st.Submit = simnet.Time(tx.SubmitNS)
		if st.Received == 0 {
			st.Received = r.sim.Now()
		}
	}
	return nil
}

func (r *Replica) stageOf(id types.TxID) *StageTrace {
	st, ok := r.stages[id]
	if !ok {
		st = &StageTrace{}
		r.stages[id] = st
	}
	return st
}

// routeOf returns the bucket indices a transaction is assigned to under the
// current mode (every payer's bucket for Orthrus, first bucket otherwise).
// The result is freshly allocated; hot paths use appendRoute with the
// replica's scratch buffer instead.
func (r *Replica) routeOf(tx *types.Transaction) []int {
	return r.appendRoute(nil, tx)
}

// appendRoute appends tx's bucket route onto dst and returns the extended
// slice (see routeOf).
func (r *Replica) appendRoute(dst []int, tx *types.Transaction) []int {
	start := len(dst)
	dst = r.buckets.AppendBucketsOf(dst, tx)
	if len(dst) == start {
		dst = append(dst, r.buckets.Assign(tx.Client))
	}
	if !r.cfg.Mode.SplitMultiPayer && len(dst)-start > 1 {
		dst = dst[:start+1]
	}
	return dst
}

// --- proposal pulses ---

func (r *Replica) schedulePulse(instance int) {
	d := time.Duration(float64(r.cfg.BatchTimeout) * r.cfg.PulseScale)
	if r.cfg.ByzantineMute {
		// The undetectable Byzantine behavior of Sec. VII-E: keep proposing
		// in the led instance, but only just often enough to stay under the
		// failure detector's timeout — the instance crawls without ever
		// triggering a view change.
		d = r.cfg.ViewTimeout * 4 / 5
	}
	// Closure-free: the pulse slot and generation ride in the pooled
	// event's operands, so a steady proposal pulse allocates nothing.
	r.sim.CallAfter(d, pulseFire, &r.pulseSlots[instance], r.pulseGen)
}

// pulseFire is the pulse-loop callback (top-level so CallAfter schedules
// it without a closure allocation). A stale generation — the replica
// stopped or recovered since this pulse was scheduled — makes it a no-op,
// so Stop/Recover cycles never leave two loops running on one instance.
func pulseFire(a, b any) {
	p := a.(*pulseSlot)
	r := p.r
	if r.stopped || b.(uint64) != r.pulseGen {
		return
	}
	r.pulse(p.instance)
	r.schedulePulse(p.instance)
}

// pulse attempts one proposal on an instance this replica currently leads.
func (r *Replica) pulse(instance int) {
	e := r.sbs[instance]
	if !e.CanPropose() {
		return
	}
	if r.sim.Now() < r.stalledUntil {
		return // Mir-style global stall during view change
	}
	if instance == r.cfg.M {
		r.pulseSequencer(e)
		return
	}
	if r.epochPaused(instance) {
		return
	}
	// pullValidTx (Algorithm 1 line 6): pull the oldest transactions whose
	// payer legs on this instance are feasible under the current executed
	// state, accounting for debits already promised in pipelined blocks and
	// earlier in this batch. Infeasible transactions are re-queued — their
	// funds may arrive via a credit from another instance.
	pulled := r.buckets.Bucket(instance).Pull(r.cfg.BatchSize)
	batch := pulled[:0]
	var requeue []*types.Transaction
	for _, tx := range pulled {
		if r.censorAll || (r.cfg.Censor != nil && r.cfg.Censor(tx)) {
			requeue = append(requeue, tx) // Byzantine: silently skip
			continue
		}
		if r.legFeasible(tx, instance) {
			r.promiseDebits(tx, instance)
			batch = append(batch, tx)
		} else {
			requeue = append(requeue, tx)
		}
	}
	for _, tx := range requeue {
		r.buckets.Bucket(instance).Push(tx)
	}
	b := &types.Block{
		Instance:  instance,
		SN:        e.NextProposeSeq(),
		Rank:      r.rank.Highest() + 1,
		State:     r.execState.Clone(),
		Proposer:  r.cfg.ID,
		ProposeNS: int64(r.sim.Now()),
	}
	for _, tx := range batch {
		b.Txs = append(b.Txs, *tx)
	}
	r.rank.Observe(b.Rank)
	if r.cfg.Keys != nil {
		d := b.Digest()
		b.Sig = r.cfg.Keys.Replica(r.cfg.ID).Sign(d[:])
	}
	_ = e.Propose(b) // CanPropose was checked; a race-free sim cannot fail here
}

// legFeasible reports whether the payer operations of tx handled by the
// given instance could escrow under the current executed state, minus the
// debits this leader has already promised elsewhere.
func (r *Replica) legFeasible(tx *types.Transaction, instance int) bool {
	for _, op := range tx.Ops {
		if !op.IsPayerOp() {
			continue
		}
		if r.cfg.Mode.SplitMultiPayer && r.buckets.Assign(op.Key) != instance {
			continue // another instance validates that leg
		}
		if r.store.Balance(op.Key)-r.proposedDebits[op.Key]-op.Amount < op.Con {
			return false
		}
	}
	return true
}

// promiseDebits reserves the batch's debits against future feasibility
// checks until the block executes.
func (r *Replica) promiseDebits(tx *types.Transaction, instance int) {
	for _, op := range tx.Ops {
		if !op.IsPayerOp() {
			continue
		}
		if r.cfg.Mode.SplitMultiPayer && r.buckets.Assign(op.Key) != instance {
			continue
		}
		r.proposedDebits[op.Key] += op.Amount
	}
}

// releaseProposedDebits undoes promiseDebits once a self-proposed block has
// reached its escrow phase (the real escrow now holds the funds).
func (r *Replica) releaseProposedDebits(b *types.Block) {
	for i := range b.Txs {
		for _, op := range b.Txs[i].Ops {
			if !op.IsPayerOp() {
				continue
			}
			if r.cfg.Mode.SplitMultiPayer && r.buckets.Assign(op.Key) != b.Instance {
				continue
			}
			if v := r.proposedDebits[op.Key] - op.Amount; v > 0 {
				r.proposedDebits[op.Key] = v
			} else {
				delete(r.proposedDebits, op.Key)
			}
		}
	}
}

// pulseSequencer proposes a DQBFT ordering block referencing delivered
// worker blocks in arrival order.
func (r *Replica) pulseSequencer(e SB) {
	if len(r.seqRefs) == 0 {
		return
	}
	b := &types.Block{
		Instance:  r.cfg.M,
		SN:        e.NextProposeSeq(),
		Refs:      r.seqRefs,
		Proposer:  r.cfg.ID,
		ProposeNS: int64(r.sim.Now()),
	}
	r.seqRefs = nil
	_ = e.Propose(b)
}

// epochPaused reports whether the instance must wait at an epoch barrier.
func (r *Replica) epochPaused(instance int) bool {
	delivered := r.state[instance]
	if r.cfg.Mode.StrictEpochBarrier {
		// May not propose past the current epoch's allotment until every
		// instance finished it (checkpoint advances r.epoch).
		return delivered >= (r.epoch+1)*r.cfg.EpochLen &&
			uint64(r.sbs[instance].NextProposeSeq()) >= (r.epoch+1)*r.cfg.EpochLen
	}
	// Bounded run-ahead: at most EpochLead epochs past the stable one.
	limit := (r.stableEpoch + uint64(r.cfg.EpochLead)) * r.cfg.EpochLen
	return r.sbs[instance].NextProposeSeq() >= limit
}

// --- delivery path ---

// onDeliver handles an SB delivery (Algorithm 1's sb-deliver upcall).
func (r *Replica) onDeliver(instance int, b *types.Block) {
	if instance == r.cfg.M {
		// Dedicated sequencer block: drives DQBFT global confirmation.
		for _, gb := range r.global.OnSequencerDeliver(b) {
			r.glogQ = append(r.glogQ, glogCursor{block: gb})
		}
		r.drainGlogQueue()
		return
	}
	if r.cfg.OnBlockDeliver != nil {
		r.cfg.OnBlockDeliver(instance, b)
	}
	r.state[instance] = b.SN + 1
	r.rank.Observe(b.Rank)
	// Fold the block into the instance's rolling checkpoint digest. The
	// concatenation runs through a stack buffer and the one-shot Sum256 —
	// byte-identical to hashing the two writes through a streaming digest,
	// without its allocations.
	var fold [64]byte
	copy(fold[:32], r.instHash[instance][:])
	d := b.Digest()
	copy(fold[32:], d[:])
	r.instHash[instance] = sha256.Sum256(fold[:])
	if (b.SN+1)%r.cfg.EpochLen == 0 {
		// Epoch boundary: snapshot the canonical per-instance hash (see the
		// bound field). Boundaries below the stable floor were already
		// checkpointed and pruned; re-recording them would only leak.
		if e := (b.SN+1)/r.cfg.EpochLen - 1; e+1 >= r.stableEpoch {
			bd, ok := r.bound[e]
			if !ok {
				bd = make([][32]byte, r.cfg.M)
				r.bound[e] = bd
			}
			bd[instance] = r.instHash[instance]
		}
	}
	if r.archive != nil {
		r.archive[instance] = append(r.archive[instance], b)
	}

	// Mark contained transactions as in-flight so replaced leaders do not
	// re-propose them from their bucket copies.
	bucket := r.buckets.Bucket(instance)
	for i := range b.Txs {
		bucket.MarkConfirmed(&b.Txs[i])
	}
	// Censorship detection (Sec. V-B): the leader keeps delivering blocks
	// while an old, locally feasible transaction sits unproposed in this
	// bucket — complain (vote for a view change), once per view.
	bucket.Tick()
	if tx, age, ok := bucket.Oldest(); ok && age > r.cfg.CensorshipBlocks && r.legFeasible(tx, instance) {
		view := r.sbs[instance].View()
		if last := r.lastComplain[instance]; last < view+1 {
			r.lastComplain[instance] = view + 1
			if c, okc := r.sbs[instance].(interface{ Complain() }); okc {
				c.Complain()
			}
		}
	}
	if r.stages != nil {
		for i := range b.Txs {
			st := r.stageOf(b.Txs[i].ID())
			if st.Proposed == 0 {
				st.Proposed = simnet.Time(b.ProposeNS)
			}
			if st.Delivered == 0 {
				st.Delivered = r.sim.Now()
			}
		}
	}

	// Queue the block for its escrow phase (gated on state coverage) and
	// feed the global ordering; whatever became globally confirmed joins
	// the in-order global execution queue.
	r.execQ[instance] = append(r.execQ[instance], b)
	r.execQocc[instance>>6] |= 1 << uint(instance&63)
	for _, gb := range r.global.OnWorkerDeliver(b) {
		r.glogQ = append(r.glogQ, glogCursor{block: gb})
	}
	r.drainExecQueues()

	// DQBFT: the sequencer leader queues a reference for ordering.
	if r.cfg.Mode.Sequencer && r.sbs[r.cfg.M].IsLeader() {
		r.seqRefs = append(r.seqRefs, types.BlockRef{Instance: instance, SN: b.SN})
	}

	r.maybeFinishEpoch()
}

// onViewChange reacts to a new view: Mir stalls everything for one timeout.
func (r *Replica) onViewChange(instance int, view uint64) {
	if instance < r.cfg.M && r.sbs[instance].Leader() != r.cfg.ID {
		// Lost leadership: un-delivered promises of that instance may never
		// execute. Dropping all promised debits is conservative for other
		// instances but only over-admits transactions, which the escrow
		// abort path handles deterministically.
		r.proposedDebits = make(map[types.Key]types.Amount)
	}
	if r.cfg.Mode.EpochStallOnViewChange {
		until := r.sim.Now() + simnet.Time(r.cfg.ViewTimeout)
		if until > r.stalledUntil {
			r.stalledUntil = until
		}
	}
	if r.cfg.OnViewChange != nil {
		r.cfg.OnViewChange(instance, view, r.sim.Now())
	}
}
