package core

import (
	"math/bits"

	"repro/internal/types"
)

// Execution model
//
// Delivery (SB order) and execution are decoupled:
//
//   - Each worker instance has an execution queue of delivered blocks. A
//     block escrow-phases only once the replica's *executed* state vector
//     covers the block's referenced state b.S ("the escrow is performed on
//     the system state b.S referred to by the transaction or any subsequent
//     state derived from it", Sec. V-C). This makes escrow outcomes
//     deterministic: the leader validated the batch under b.S, credits only
//     grow balances, and a payer's debits are serialized in one instance.
//
//   - Globally confirmed blocks enter a FIFO execution queue. The head
//     transaction executes only when it is ready (its escrow phase finished
//     on every involved instance); later entries never overtake it, so
//     shared-object operations run in exactly the global order everywhere.

// txTracker follows one transaction across the instances it was assigned
// to: which instances escrowed its payer operations, how many global-log
// occurrences have been processed, and its final outcome. Escrow progress
// is a bitmask over positions in instances (a transaction belongs to a
// handful of buckets at most), which keeps the tracker to two allocations
// — the struct and its route slice — per transaction per replica.
type txTracker struct {
	tx        *types.Transaction
	instances []int // buckets/instances the tx belongs to; aliases routeArr when short
	// routeArr inlines the route storage for the common case (a payment
	// touches one or two buckets, a contract a handful), so a tracker is
	// one allocation, not two.
	routeArr     [4]int
	escrowedBits uint64 // bit i set: instances[i]'s payer ops escrowed
	// escrowedHi extends the bitmask for route positions 64 and up: a
	// transaction with more than 64 distinct payer buckets (unbounded
	// payer lists are reachable through the SDK at large m) allocates one
	// small overflow word slice; everything else stays on the inline word.
	escrowedHi []uint64
	occurSeen  int // glog occurrences processed so far
	failed     bool
	done       bool
}

func (r *Replica) tracker(tx *types.Transaction) *txTracker {
	// Fast path: transactions stamped with a dense run index (cluster.Run)
	// resolve through a slice — no 32-byte key hashing per occurrence.
	if i := tx.Idx; i != 0 {
		if uint64(len(r.trackersIdx)) < i {
			grown := make([]*txTracker, max(int(i), 2*len(r.trackersIdx)))
			copy(grown, r.trackersIdx)
			r.trackersIdx = grown
		}
		if t := r.trackersIdx[i-1]; t != nil {
			return t
		}
		t := r.newTracker(tx)
		r.trackersIdx[i-1] = t
		r.liveTrackers++
		return t
	}
	id := tx.ID()
	t, ok := r.trackers[id]
	if !ok {
		t = r.newTracker(tx)
		r.trackers[id] = t
		r.liveTrackers++
	}
	return t
}

// trackerSlabSize is the chunk size for tracker slab allocation.
const trackerSlabSize = 256

// newTracker builds a tracker with its route. Trackers are carved from a
// replica-local slab (they live for the whole run, so there is nothing to
// pool) and reuse the inline route array when the route is short — one
// bulk allocation per 256 transactions instead of two per transaction.
func (r *Replica) newTracker(tx *types.Transaction) *txTracker {
	if len(r.trackerSlab) == 0 {
		r.trackerSlab = make([]txTracker, trackerSlabSize)
	}
	t := &r.trackerSlab[0]
	r.trackerSlab = r.trackerSlab[1:]
	t.tx = tx
	t.instances = r.appendRoute(t.routeArr[:0], tx)
	return t
}

// escrowed reports whether the given instance's payer ops escrowed.
func (t *txTracker) escrowed(instance int) bool {
	for i, inst := range t.instances {
		if inst == instance {
			if i < 64 {
				return t.escrowedBits&(1<<uint(i)) != 0
			}
			w := (i - 64) / 64
			return w < len(t.escrowedHi) && t.escrowedHi[w]&(1<<uint((i-64)%64)) != 0
		}
	}
	return false
}

// markEscrowed records a successful escrow phase on instance.
func (t *txTracker) markEscrowed(instance int) {
	for i, inst := range t.instances {
		if inst != instance {
			continue
		}
		if i < 64 {
			t.escrowedBits |= 1 << uint(i)
			return
		}
		if t.escrowedHi == nil {
			t.escrowedHi = make([]uint64, (len(t.instances)-64+63)/64)
		}
		t.escrowedHi[(i-64)/64] |= 1 << uint((i-64)%64)
		return
	}
}

// escrowedCount returns the number of instances whose escrow phase
// succeeded.
func (t *txTracker) escrowedCount() int {
	n := bits.OnesCount64(t.escrowedBits)
	for _, w := range t.escrowedHi {
		n += bits.OnesCount64(w)
	}
	return n
}

// ready reports whether the transaction's escrow phase concluded on every
// instance it belongs to (successfully or by failing).
func (t *txTracker) ready() bool {
	return t.failed || t.done || t.escrowedCount() == len(t.instances)
}

// confirm finalizes a transaction at this replica: exactly once per tx.
func (r *Replica) confirm(t *txTracker, success bool) {
	if t.done {
		return
	}
	t.done = true
	if success {
		r.confirmedOK++
	} else {
		r.confirmedBad++
	}
	if r.stages != nil {
		st := r.stageOf(t.tx.ID())
		if st.Confirmed == 0 {
			st.Confirmed = r.sim.Now()
		}
	}
	if r.cfg.OnConfirm != nil {
		r.cfg.OnConfirm(t.tx, success, r.sim.Now())
	}
}

// drainExecQueues escrow-phases delivered blocks whose state references are
// satisfied. One instance's progress can unblock another, so it loops until
// a fixed point. The occupancy bitset keeps each pass proportional to the
// instances that actually hold queued blocks (ascending order, exactly as
// the full scan visited them) instead of all M.
func (r *Replica) drainExecQueues() {
	for progress := true; progress; {
		progress = false
		for wi, word := range r.execQocc {
			for word != 0 {
				i := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				q, h := r.execQ[i], r.execQhead[i]
				for h < len(q) {
					b := q[h]
					if r.cfg.Mode.FastPathPayments && !r.execState.Covers(b.State) {
						break
					}
					q[h] = nil
					h++
					r.execState[i] = b.SN + 1
					if r.cfg.Mode.FastPathPayments {
						r.execPartial(i, b)
					}
					if b.Proposer == r.cfg.ID {
						r.releaseProposedDebits(b)
					}
					progress = true
				}
				if h == len(q) {
					// Drained: rewind onto the backing array so future
					// deliveries append without growing.
					q, h = q[:0], 0
					r.execQocc[wi] &^= 1 << uint(i&63)
				}
				r.execQ[i], r.execQhead[i] = q, h
			}
		}
	}
	r.drainGlogQueue()
}

// execPartial processes one block of a partial log under Orthrus's fast
// path (Algorithm 1 lines 20-30): escrow this instance's payer operations;
// abort the whole transaction if any escrow fails; once every involved
// instance has escrowed, commit payments immediately. Contract transactions
// keep their escrows and wait for the global log.
func (r *Replica) execPartial(instance int, b *types.Block) {
	for i := range b.Txs {
		tx := &b.Txs[i]
		t := r.tracker(tx)
		if t.done || t.failed || t.escrowed(instance) {
			continue
		}
		id := tx.ID()
		ok := true
		for _, op := range tx.Ops {
			if !op.IsPayerOp() || r.buckets.Assign(op.Key) != instance {
				continue
			}
			if !r.store.Escrow(op, id) {
				ok = false
				break
			}
		}
		if !ok {
			// An escrow failed: undo everything escrowed so far for this
			// transaction, on every instance (Solution I: atomic abort).
			r.store.AbortEscrow(id)
			t.failed = true
			r.confirm(t, false)
			continue
		}
		t.markEscrowed(instance)
		if t.escrowedCount() == len(t.instances) && tx.Kind() == types.Payment {
			// All payer escrows committed: the payment is decided. Apply
			// credits and confirm without waiting for the global log.
			r.store.CommitEscrow(id)
			r.applyCredits(tx)
			r.confirm(t, true)
		}
	}
}

// applyCredits applies the incremental owned-object operations of tx.
func (r *Replica) applyCredits(tx *types.Transaction) {
	for _, op := range tx.Ops {
		if op.Type == types.Owned && op.Kind == types.OpIncrement {
			_ = r.store.ApplyIncrement(op) // increments cannot fail
		}
	}
}

// glogCursor walks the transactions of one globally confirmed block.
type glogCursor struct {
	block *types.Block
	next  int
}

// drainGlogQueue executes globally confirmed blocks strictly in order. The
// head transaction may have to wait for its escrow phase (driven by the
// per-instance queues); nothing overtakes it.
func (r *Replica) drainGlogQueue() {
	for r.glogHead < len(r.glogQ) {
		cur := &r.glogQ[r.glogHead]
		for cur.next < len(cur.block.Txs) {
			tx := &cur.block.Txs[cur.next]
			t := r.tracker(tx)
			if t.occurSeen+1 < len(t.instances) {
				// Not the last occurrence of a multi-instance transaction:
				// skip it here; the final occurrence executes it.
				t.occurSeen++
				cur.next++
				continue
			}
			if r.cfg.Mode.FastPathPayments {
				if tx.Kind() == types.Payment || t.done || t.failed {
					// Payments confirmed (or aborted) via the fast path.
					t.occurSeen++
					cur.next++
					continue
				}
				if !t.ready() {
					return // wait for the escrow phase; order preserved
				}
				t.occurSeen++
				cur.next++
				r.execContractOrthrus(t)
				continue
			}
			// Baselines: everything executes sequentially in global order.
			t.occurSeen++
			cur.next++
			if !t.done && !t.failed {
				r.execSequential(t)
			}
		}
		r.glogQ[r.glogHead] = glogCursor{}
		r.glogHead++
	}
	// Fully drained: rewind onto the backing array.
	r.glogQ, r.glogHead = r.glogQ[:0], 0
}

// execContractOrthrus finalizes a contract transaction at its global-log
// position: shared-object operations run now (the non-commutative part),
// then the escrows taken at partial-log time commit or abort together.
func (r *Replica) execContractOrthrus(t *txTracker) {
	id := t.tx.ID()
	if t.failed || !r.store.AllEscrowed(t.tx) {
		r.store.AbortEscrow(id)
		r.confirm(t, false)
		return
	}
	if !r.execShared(t.tx) {
		r.store.AbortEscrow(id)
		r.confirm(t, false)
		return
	}
	r.store.CommitEscrow(id)
	r.applyCredits(t.tx)
	r.confirm(t, true)
}

// execSequential executes a transaction entirely at its global-log position
// (the baseline protocols): payer debits, shared operations, then credits;
// any failure rolls back via the escrow log.
func (r *Replica) execSequential(t *txTracker) {
	id := t.tx.ID()
	for _, op := range t.tx.Ops {
		if op.IsPayerOp() {
			if !r.store.Escrow(op, id) {
				r.store.AbortEscrow(id)
				r.confirm(t, false)
				return
			}
		}
	}
	if !r.execShared(t.tx) {
		r.store.AbortEscrow(id)
		r.confirm(t, false)
		return
	}
	r.store.CommitEscrow(id)
	r.applyCredits(t.tx)
	r.confirm(t, true)
}

// execShared runs the shared-object operations of tx; it reports success.
// On failure, earlier shared effects of the same tx remain applied — every
// replica executes the identical prefix in the identical global position,
// so consistency across replicas is preserved.
func (r *Replica) execShared(tx *types.Transaction) bool {
	for _, op := range tx.Ops {
		if op.Type != types.Shared {
			continue
		}
		if _, err := r.store.ApplyShared(op); err != nil {
			return false
		}
	}
	return true
}
