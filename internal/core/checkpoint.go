package core

import (
	"crypto/sha256"

	"repro/internal/partition"
	"repro/internal/types"
)

// BucketOf returns the bucket/instance index an owned-object key maps to;
// exported for the cluster harness and clients that want to route
// submissions to the responsible instance's leader.
func BucketOf(k types.Key, m int) int { return partition.Assign(k, m) }

// maybeFinishEpoch checks whether every worker instance has delivered its
// allotment for the current epoch; if so it broadcasts a checkpoint message
// (Sec. V-D) covering the epoch's blocks.
func (r *Replica) maybeFinishEpoch() {
	end := (r.epoch + 1) * r.cfg.EpochLen
	for _, delivered := range r.state {
		if delivered < end {
			return
		}
	}
	if r.ckptSent[r.epoch] {
		return
	}
	r.ckptSent[r.epoch] = true
	msg := &CheckpointMsg{Epoch: r.epoch, Digest: r.epochDigest(), Replica: r.cfg.ID}
	r.nw.Broadcast(r.cfg.ID, 128, msg)
}

// epochDigest summarizes the blocks processed this epoch: the hash of all
// per-instance rolling digests. Replicas that delivered the same blocks in
// the same per-instance order produce the same digest.
func (r *Replica) epochDigest() [32]byte {
	h := sha256.New()
	for i := range r.instHash {
		h.Write(r.instHash[i][:])
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// onCheckpoint collects checkpoint votes; a quorum of 2f+1 matching digests
// makes the checkpoint stable, enabling garbage collection and advancing
// the epoch obligation of the failure detector.
func (r *Replica) onCheckpoint(m *CheckpointMsg) {
	if m.Epoch < r.stableEpoch {
		return
	}
	votes, ok := r.ckptVotes[m.Epoch]
	if !ok {
		votes = make(map[int][32]byte)
		r.ckptVotes[m.Epoch] = votes
	}
	if _, dup := votes[m.Replica]; dup {
		return
	}
	votes[m.Replica] = m.Digest
	// Count the most common digest (honest replicas match; Byzantine ones
	// may diverge and are simply not counted toward the quorum).
	counts := make(map[[32]byte]int)
	best := 0
	for _, d := range votes {
		counts[d]++
		if counts[d] > best {
			best = counts[d]
		}
	}
	if best < 2*r.cfg.F+1 {
		return
	}
	if m.Epoch+1 > r.stableEpoch {
		r.stableEpoch = m.Epoch + 1
		r.gcEpoch()
		if m.Epoch >= r.epoch {
			r.epoch = m.Epoch + 1
			// Extend the delivery obligation for the failure detector.
			target := (r.epoch + 1) * r.cfg.EpochLen
			for i := 0; i < r.cfg.M; i++ {
				r.sbs[i].SetTarget(target)
			}
		}
	}
}

// gcEpoch discards data the stable checkpoint makes obsolete: confirmed-tx
// dedup records, finished trackers, and old checkpoint votes. Unexecuted
// transactions whose tracker finished are dropped with them.
func (r *Replica) gcEpoch() {
	r.buckets.GC()
	for id, t := range r.trackers {
		if t.done && t.occurSeen >= len(t.instances) {
			delete(r.trackers, id)
		}
	}
	for e := range r.ckptVotes {
		if e+1 < r.stableEpoch {
			delete(r.ckptVotes, e)
		}
	}
	for e := range r.ckptSent {
		if e+1 < r.stableEpoch {
			delete(r.ckptSent, e)
		}
	}
}

// SBs exposes the SB instances for tests and the cluster harness.
func (r *Replica) SBs() []SB { return r.sbs }

// Epoch returns (current epoch obligation, stable checkpointed epochs).
func (r *Replica) Epoch() (current, stable uint64) { return r.epoch, r.stableEpoch }
