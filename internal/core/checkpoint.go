package core

import (
	"crypto/sha256"

	"repro/internal/partition"
	"repro/internal/types"
)

// BucketOf returns the bucket/instance index an owned-object key maps to;
// exported for the cluster harness and clients that want to route
// submissions to the responsible instance's leader.
func BucketOf(k types.Key, m int) int { return partition.Assign(k, m) }

// maybeFinishEpoch checks whether every worker instance has delivered its
// allotment for the current epoch; if so it broadcasts a checkpoint message
// (Sec. V-D) covering the epoch's blocks, then re-examines any remote
// checkpoint quorum that was waiting on the local boundary digest.
func (r *Replica) maybeFinishEpoch() {
	end := (r.epoch + 1) * r.cfg.EpochLen
	for _, delivered := range r.state {
		if delivered < end {
			return
		}
	}
	if r.epoch >= r.ckptSent {
		if d, ok := r.localDigest(r.epoch); ok {
			r.ckptSent = r.epoch + 1
			msg := &CheckpointMsg{Epoch: r.epoch, Digest: d, Replica: r.cfg.ID}
			r.nw.Broadcast(r.cfg.ID, 128, msg)
		}
	}
	if r.pendSet {
		r.tryStabilize(r.pendEpoch, r.pendDigest)
	}
}

// localDigest returns the replica's own digest for epoch e: the hash of the
// per-instance boundary snapshots taken as each instance delivered the
// epoch's last block. Replicas that delivered the same epoch produce the
// same digest no matter how far either has since run ahead. ok is false
// until every instance has crossed the boundary (or after the snapshots
// were pruned below the stable floor).
func (r *Replica) localDigest(e uint64) (d [32]byte, ok bool) {
	end := (e + 1) * r.cfg.EpochLen
	for _, delivered := range r.state {
		if delivered < end {
			return d, false
		}
	}
	bd, ok := r.bound[e]
	if !ok {
		return d, false
	}
	h := sha256.New()
	for i := range bd {
		h.Write(bd[i][:])
	}
	copy(d[:], h.Sum(nil))
	return d, true
}

// ckptQuorum is the checkpoint stability threshold. ceil((n+f+1)/2)
// guarantees any two quorums intersect in at least one honest replica —
// the classical 2f+1 only does when n = 3f+1 exactly — so at most one
// digest per epoch can ever stabilize.
func (r *Replica) ckptQuorum() int { return (r.cfg.N + r.cfg.F + 2) / 2 }

// onCheckpoint collects checkpoint votes; a quorum of matching digests
// makes the checkpoint stable, enabling garbage collection and advancing
// the epoch obligation of the failure detector. Each replica holds at most
// one live vote (a newer epoch evicts the older), so a faulty replica
// spamming far-future epoch numbers cannot grow the vote maps — the same
// bound PR 6 put on view-change votes.
func (r *Replica) onCheckpoint(m *CheckpointMsg) {
	if m.Replica < 0 || m.Replica >= r.cfg.N {
		return // Byzantine: vote from a nonexistent replica
	}
	if m.Epoch < r.stableEpoch || m.Epoch+1 <= r.ckptHighest[m.Replica] {
		return // already covered, or not newer than the sender's live vote
	}
	if prev := r.ckptHighest[m.Replica]; prev > 0 {
		if votes, ok := r.ckptVotes[prev-1]; ok {
			delete(votes, m.Replica)
			if len(votes) == 0 {
				delete(r.ckptVotes, prev-1)
			}
		}
	}
	r.ckptHighest[m.Replica] = m.Epoch + 1
	votes, ok := r.ckptVotes[m.Epoch]
	if !ok {
		votes = make(map[int][32]byte)
		r.ckptVotes[m.Epoch] = votes
	}
	votes[m.Replica] = m.Digest
	// Count the most common digest (honest replicas match; Byzantine ones
	// may diverge and are simply not counted toward the quorum).
	counts := make(map[[32]byte]int)
	best := 0
	var bestD [32]byte
	for _, d := range votes {
		counts[d]++
		if counts[d] > best {
			best = counts[d]
			bestD = d
		}
	}
	if best < r.ckptQuorum() {
		return
	}
	r.tryStabilize(m.Epoch, bestD)
}

// tryStabilize attempts to make epoch e's checkpoint stable under quorum
// digest d. Stabilization requires the replica's OWN boundary digest to
// match the quorum's: a replica must never garbage-collect on other
// replicas' say-so — if it diverged, it would discard exactly the state it
// needs to repair. A replica that cannot match yet records the quorum as
// pending and re-checks at every epoch boundary; one that has delivered
// the full epoch and still disagrees is truly diverged (e.g. a delivery
// gap from a crash) and requests state-transfer catch-up when enabled.
//
// An incomplete epoch under a stable quorum also triggers catch-up, at
// most once per epoch: a quorum finished an epoch the replica has not,
// so it is lagging. One catch-up round only reaches the cluster tip as
// of the request — under real latency the tip moves during the round
// trip — so a recovering replica converges by re-requesting on each new
// quorum epoch until delivery goes live again; without the retry the
// residual gap wedges delivery (parked commits above a hole no one
// re-sends) and the replica never finishes another epoch.
func (r *Replica) tryStabilize(e uint64, d [32]byte) {
	if e < r.stableEpoch {
		return
	}
	local, complete := r.localDigest(e)
	if !complete || local != d {
		if !r.pendSet || e > r.pendEpoch {
			r.pendEpoch, r.pendDigest, r.pendSet = e, d, true
		}
		if r.cfg.StateTransfer && (complete || e > r.stReqEpoch) {
			r.stReqEpoch = e
			r.requestStateTransfer()
		}
		return
	}
	if r.pendSet && r.pendEpoch <= e {
		r.pendSet = false
	}
	r.stableEpoch = e + 1
	r.gcEpoch()
	if e >= r.epoch {
		r.epoch = e + 1
		// Extend the delivery obligation for the failure detector.
		target := (r.epoch + 1) * r.cfg.EpochLen
		for i := 0; i < r.cfg.M; i++ {
			r.sbs[i].SetTarget(target)
		}
	}
	// The obligation moved: epochs delivered while this one stabilized may
	// already be complete, so their checkpoints broadcast immediately.
	r.maybeFinishEpoch()
}

// gcEpoch discards data the stable checkpoint makes obsolete: confirmed-tx
// dedup records, finished trackers, the escrow-pool high-water mark,
// pre-checkpoint archive and boundary snapshots, old checkpoint votes, and
// (with state transfer, which supersedes their laggard-repair role) the
// engines' retained delivered-block rings. Everything released here is
// execution-irrelevant — delivery, execution, and messaging never read it
// again — so collection inside a deterministic event handler keeps serial
// and parallel kernels bit-identical.
func (r *Replica) gcEpoch() {
	r.buckets.GC()
	for id, t := range r.trackers {
		if t.done && t.occurSeen >= len(t.instances) {
			delete(r.trackers, id)
			r.liveTrackers--
		}
	}
	// Index-addressed trackers release in place; old transactions finish
	// first, so a floor watermark keeps the scan amortized linear over the
	// run instead of quadratic in total transactions.
	for idx := r.trackersFloor; idx < len(r.trackersIdx); idx++ {
		if t := r.trackersIdx[idx]; t != nil && t.done && t.occurSeen >= len(t.instances) {
			r.trackersIdx[idx] = nil
			r.liveTrackers--
		}
	}
	for r.trackersFloor < len(r.trackersIdx) && r.trackersIdx[r.trackersFloor] == nil {
		r.trackersFloor++
	}
	if r.archive != nil {
		// The archive keeps one epoch of hysteresis below the stable floor:
		// a replica that crashed shortly before the boundary asks for blocks
		// the boundary already covers, and serving them is the only repair
		// path below the floor (there is no snapshot installation). One
		// epoch bounds the extra retention at M x EpochLen blocks.
		floor := uint64(0)
		if r.stableEpoch > 1 {
			floor = (r.stableEpoch - 1) * r.cfg.EpochLen
		}
		for i := range r.archive {
			if r.archiveBase[i] >= floor {
				continue
			}
			drop := int(floor - r.archiveBase[i])
			if drop > len(r.archive[i]) {
				drop = len(r.archive[i])
			}
			a := r.archive[i]
			keep := copy(a, a[drop:])
			for j := keep; j < len(a); j++ {
				a[j] = nil
			}
			r.archive[i] = a[:keep]
			r.archiveBase[i] += uint64(drop)
		}
		for k := range r.stResps {
			delete(r.stResps, k)
		}
		// Retained rings repair laggards through NewView; state transfer
		// supersedes that below the stable floor.
		for i := 0; i < r.cfg.M; i++ {
			if rel, ok := r.sbs[i].(interface{ ReleaseBelow(uint64) }); ok {
				rel.ReleaseBelow(floor)
			}
		}
	}
	for e := range r.bound {
		// Keep the stable boundary itself: CheckpointCert responses cite it.
		if e+1 < r.stableEpoch {
			delete(r.bound, e)
		}
	}
	for e := range r.ckptVotes {
		if e+1 < r.stableEpoch {
			delete(r.ckptVotes, e)
		}
	}
	r.store.TrimPool(64)
}

// SBs exposes the SB instances for tests and the cluster harness.
func (r *Replica) SBs() []SB { return r.sbs }

// Epoch returns (current epoch obligation, stable checkpointed epochs).
func (r *Replica) Epoch() (current, stable uint64) { return r.epoch, r.stableEpoch }
