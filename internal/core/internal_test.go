package core

import (
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/types"
)

// White-box tests for replica internals that are awkward to reach through
// the cluster-level integration tests.

func newBareReplica(t *testing.T, mode Mode) *Replica {
	t.Helper()
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, 4, simnet.FixedModel{D: time.Millisecond})
	cfg := Config{
		N: 4, F: 1, ID: 0, M: 4,
		Mode:         mode,
		BatchSize:    8,
		BatchTimeout: 10 * time.Millisecond,
		Genesis: func(st *ledger.Store) {
			st.Credit("alice", 100)
			st.Credit("bob", 50)
		},
	}
	return NewReplica(cfg, simnet.On(sim, cfg.ID), nw)
}

func TestRouteOfSplitVsNoSplit(t *testing.T) {
	// Find two payers in different buckets.
	var p1, p2 types.Key
	p1 = "alice"
	for i := 0; ; i++ {
		p2 = types.Key(string(rune('a'+i%26)) + "payer")
		if partition.Assign(p1, 4) != partition.Assign(p2, 4) {
			break
		}
	}
	tx := types.NewMultiPayment(p1, []types.Transfer{
		{From: p1, To: "z", Amount: 1},
		{From: p2, To: "z", Amount: 1},
	}, 1)

	orthrus := newBareReplica(t, OrthrusMode())
	if got := orthrus.routeOf(tx); len(got) != 2 {
		t.Fatalf("split route = %v", got)
	}
	noSplit := OrthrusMode()
	noSplit.SplitMultiPayer = false
	base := newBareReplica(t, noSplit)
	if got := base.routeOf(tx); len(got) != 1 {
		t.Fatalf("no-split route = %v", got)
	}
}

func TestRouteOfMintFallsBackToClient(t *testing.T) {
	r := newBareReplica(t, OrthrusMode())
	mint := &types.Transaction{Client: "faucet", Ops: []types.Op{
		{Key: "alice", Type: types.Owned, Kind: types.OpIncrement, Amount: 5},
	}}
	got := r.routeOf(mint)
	if len(got) != 1 || got[0] != partition.Assign("faucet", 4) {
		t.Fatalf("mint route = %v", got)
	}
}

func TestLegFeasibleTracksPromisedDebits(t *testing.T) {
	r := newBareReplica(t, OrthrusMode())
	inst := partition.Assign("alice", 4)
	tx1 := types.NewPayment("alice", "bob", 60, 1)
	tx2 := types.NewPayment("alice", "bob", 60, 2)
	if !r.legFeasible(tx1, inst) {
		t.Fatal("tx1 should be feasible (balance 100)")
	}
	r.promiseDebits(tx1, inst)
	if r.legFeasible(tx2, inst) {
		t.Fatal("tx2 feasible despite 60 already promised of 100")
	}
	// Releasing the promise (block executed) restores feasibility of the
	// *remaining* balance only; after the escrow the real balance governs.
	b := &types.Block{Instance: inst, Proposer: 0, Txs: []types.Transaction{*tx1}}
	r.releaseProposedDebits(b)
	if !r.legFeasible(tx2, inst) {
		t.Fatal("promise not released")
	}
}

func TestEpochDigestMatchesAcrossReplicas(t *testing.T) {
	mk := func() *Replica {
		sim := simnet.New(1)
		nw := simnet.NewNetwork(sim, 4, simnet.FixedModel{D: time.Millisecond})
		cfg := Config{N: 4, F: 1, ID: 0, M: 4, Mode: OrthrusMode(), EpochLen: 1}
		return NewReplica(cfg, simnet.On(sim, cfg.ID), nw)
	}
	a, b := mk(), mk()
	for i := 0; i < 4; i++ {
		blk := &types.Block{Instance: i, SN: 0, Rank: 1}
		a.onDeliver(i, blk)
		b.onDeliver(i, blk)
	}
	da, ok := a.localDigest(0)
	if !ok {
		t.Fatal("epoch 0 incomplete after delivering every instance")
	}
	if db, _ := b.localDigest(0); da != db {
		t.Fatal("epoch digests diverge on identical deliveries")
	}
	// The digest is canonical: running ahead past the boundary must not
	// change it (the old live-hash digest did, so replicas at different
	// run-ahead depths could never stabilize a WAN checkpoint).
	a.onDeliver(1, &types.Block{Instance: 1, SN: 1, Rank: 2})
	if d, _ := a.localDigest(0); d != da {
		t.Fatal("run-ahead past the boundary changed the epoch digest")
	}
	// A different block inside the epoch does change it.
	c := mk()
	for i := 0; i < 4; i++ {
		c.onDeliver(i, &types.Block{Instance: i, SN: 0, Rank: 7})
	}
	if dc, _ := c.localDigest(0); dc == da {
		t.Fatal("different blocks produced identical epoch digests")
	}
}

// epochReplica builds a 4-replica-cluster member with 1-block epochs, so a
// single delivery round per instance completes an epoch; rank parameterizes
// the delivered blocks so two replicas can diverge on purpose.
func epochReplica(t *testing.T, stateTransfer bool) *Replica {
	t.Helper()
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, 4, simnet.FixedModel{D: time.Millisecond})
	cfg := Config{N: 4, F: 1, ID: 0, M: 4, Mode: OrthrusMode(), EpochLen: 1,
		StateTransfer: stateTransfer}
	return NewReplica(cfg, simnet.On(sim, cfg.ID), nw)
}

func deliverEpoch0(r *Replica, rank uint64) {
	for i := 0; i < 4; i++ {
		r.onDeliver(i, &types.Block{Instance: i, SN: 0, Rank: rank})
	}
}

// TestCheckpointVoteSpamBounded pins the one-live-vote-per-replica bound on
// the checkpoint vote maps: a faulty replica spamming far-future epoch
// numbers must never grow ckptVotes beyond one entry for itself (the same
// bound PR 6 put on view-change votes), and votes citing nonexistent
// replica ids must be rejected outright.
func TestCheckpointVoteSpamBounded(t *testing.T) {
	r := newBareReplica(t, OrthrusMode())
	live := func() int {
		n := 0
		for _, votes := range r.ckptVotes {
			n += len(votes)
		}
		return n
	}
	for e := uint64(0); e < 1000; e++ {
		r.onCheckpoint(&CheckpointMsg{Epoch: e, Digest: [32]byte{1}, Replica: 1})
	}
	if got := live(); got != 1 {
		t.Fatalf("1000-epoch spam from one replica left %d live votes, want 1", got)
	}
	if len(r.ckptVotes) != 1 {
		t.Fatalf("spam left %d epoch entries, want 1", len(r.ckptVotes))
	}
	// Byzantine sender ids outside [0, N) must not touch any state.
	r.onCheckpoint(&CheckpointMsg{Epoch: 5, Digest: [32]byte{2}, Replica: -1})
	r.onCheckpoint(&CheckpointMsg{Epoch: 5, Digest: [32]byte{2}, Replica: 4})
	if got := live(); got != 1 {
		t.Fatalf("out-of-range replica ids changed the vote maps: %d live votes", got)
	}
	// Every replica spamming at once (distinct digests, so no quorum ever
	// forms) still holds at most one live vote each.
	for e := uint64(0); e < 1000; e++ {
		for rid := 0; rid < 4; rid++ {
			r.onCheckpoint(&CheckpointMsg{Epoch: e, Digest: [32]byte{byte(rid)}, Replica: rid})
		}
	}
	if got := live(); got > 4 {
		t.Fatalf("cluster-wide spam left %d live votes, want <= N=4", got)
	}
}

// TestCheckpointStabilizeRequiresLocalDigestMatch pins the GC safety rule: a
// replica must never stabilize (and garbage-collect) on a quorum digest its
// own boundary digest does not match — a diverged replica would discard
// exactly the state it needs to repair. With state transfer enabled the
// mismatch triggers a catch-up request instead.
func TestCheckpointStabilizeRequiresLocalDigestMatch(t *testing.T) {
	// The honest cluster's digest for epoch 0, from a twin that delivered
	// rank-1 blocks everywhere.
	honest := epochReplica(t, false)
	deliverEpoch0(honest, 1)
	quorumD, ok := honest.localDigest(0)
	if !ok {
		t.Fatal("twin's epoch 0 incomplete")
	}

	// The diverged replica delivered different (rank-7) blocks, so its local
	// digest disagrees with the quorum's. Seed a stale catch-up response to
	// observe requestStateTransfer clearing it.
	r := epochReplica(t, true)
	deliverEpoch0(r, 7)
	r.stResps[2] = &StateTransferResp{Replica: 2}
	for rid := 1; rid <= 3; rid++ {
		r.onCheckpoint(&CheckpointMsg{Epoch: 0, Digest: quorumD, Replica: rid})
	}
	if _, stable := r.Epoch(); stable != 0 {
		t.Fatal("diverged replica stabilized a checkpoint on the quorum's say-so")
	}
	if !r.pendSet || r.pendEpoch != 0 || r.pendDigest != quorumD {
		t.Fatal("mismatched quorum not recorded as pending")
	}
	if len(r.stResps) != 0 {
		t.Fatal("complete-but-mismatched digest did not request state transfer")
	}

	// The matching replica stabilizes from the same votes.
	m := epochReplica(t, false)
	deliverEpoch0(m, 1)
	for rid := 1; rid <= 3; rid++ {
		m.onCheckpoint(&CheckpointMsg{Epoch: 0, Digest: quorumD, Replica: rid})
	}
	if _, stable := m.Epoch(); stable != 1 {
		t.Fatalf("matching replica did not stabilize (stable=%d)", stable)
	}
}

func TestGlogHeadBlockingPreservesOrder(t *testing.T) {
	// Two contract transactions confirmed in global order; the first's
	// escrow phase is incomplete, so neither may execute until it is ready,
	// and then both run in order.
	r := newBareReplica(t, OrthrusMode())
	con1 := types.NewContractCall("alice", []types.Key{"alice"}, 1,
		[]types.Op{types.NewSharedAssign("rec", 1)}, 1)
	con2 := types.NewContractCall("bob", []types.Key{"bob"}, 1,
		[]types.Op{types.NewSharedAssign("rec", 2)}, 2)
	inst1 := partition.Assign("alice", 4)
	// Track both transactions; only con2's escrow phase has run.
	t1 := r.tracker(con1)
	t2 := r.tracker(con2)
	r.store.Escrow(con2.Ops[0], con2.ID())
	t2.markEscrowed(t2.instances[0])

	r.glogQ = append(r.glogQ,
		glogCursor{block: &types.Block{Instance: inst1, Txs: []types.Transaction{*con1}}},
		glogCursor{block: &types.Block{Instance: t2.instances[0], Txs: []types.Transaction{*con2}}},
	)
	r.drainGlogQueue()
	if t1.done || t2.done {
		t.Fatal("execution overtook an unready glog head")
	}
	// Complete con1's escrow phase; both must now execute in order, leaving
	// rec = 2 (con2 last).
	r.store.Escrow(con1.Ops[0], con1.ID())
	t1.markEscrowed(t1.instances[0])
	r.drainGlogQueue()
	if !t1.done || !t2.done {
		t.Fatal("glog queue did not drain after head became ready")
	}
	if v := r.store.SharedValue("rec"); v != 2 {
		t.Fatalf("rec = %d, want 2 (global order violated)", v)
	}
}

func TestByzantinePulseInterval(t *testing.T) {
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, 4, simnet.FixedModel{D: time.Millisecond})
	cfg := Config{N: 4, F: 1, ID: 2, M: 4, Mode: OrthrusMode(),
		BatchTimeout: 10 * time.Millisecond, ViewTimeout: time.Second,
		ByzantineMute: true}
	r := NewReplica(cfg, simnet.On(sim, cfg.ID), nw)
	r.Start()
	// Over 2 virtual seconds a Byzantine replica proposing at 0.8x the
	// view timeout makes at most ~3 proposals in its own instance, versus
	// ~200 pulses for an honest one.
	sim.Run(simnet.Time(2 * time.Second))
	if sn := r.sbs[2].NextProposeSeq(); sn > 4 {
		t.Fatalf("Byzantine replica proposed %d blocks in 2s; should crawl", sn)
	}
}

func TestTrackerWideInstanceSets(t *testing.T) {
	// Routes longer than 64 positions (a transaction with >64 distinct
	// payer buckets at large m) must track escrow progress exactly; the
	// inline word overflows into escrowedHi.
	for _, width := range []int{1, 2, 63, 64, 65, 100, 128} {
		tr := &txTracker{instances: make([]int, width)}
		for i := range tr.instances {
			tr.instances[i] = i * 3 // arbitrary distinct instance ids
		}
		for i, inst := range tr.instances {
			if tr.escrowed(inst) {
				t.Fatalf("width %d: position %d escrowed before marking", width, i)
			}
			tr.markEscrowed(inst)
			if !tr.escrowed(inst) {
				t.Fatalf("width %d: position %d not escrowed after marking", width, i)
			}
			if got := tr.escrowedCount(); got != i+1 {
				t.Fatalf("width %d: escrowedCount = %d after %d marks", width, got, i+1)
			}
		}
		if !tr.ready() {
			t.Fatalf("width %d: tracker not ready with every instance escrowed", width)
		}
		tr.markEscrowed(tr.instances[0]) // idempotent
		if got := tr.escrowedCount(); got != width {
			t.Fatalf("width %d: re-mark changed count to %d", width, got)
		}
	}
}
