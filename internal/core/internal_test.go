package core

import (
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/partition"
	"repro/internal/simnet"
	"repro/internal/types"
)

// White-box tests for replica internals that are awkward to reach through
// the cluster-level integration tests.

func newBareReplica(t *testing.T, mode Mode) *Replica {
	t.Helper()
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, 4, simnet.FixedModel{D: time.Millisecond})
	cfg := Config{
		N: 4, F: 1, ID: 0, M: 4,
		Mode:         mode,
		BatchSize:    8,
		BatchTimeout: 10 * time.Millisecond,
		Genesis: func(st *ledger.Store) {
			st.Credit("alice", 100)
			st.Credit("bob", 50)
		},
	}
	return NewReplica(cfg, simnet.On(sim, cfg.ID), nw)
}

func TestRouteOfSplitVsNoSplit(t *testing.T) {
	// Find two payers in different buckets.
	var p1, p2 types.Key
	p1 = "alice"
	for i := 0; ; i++ {
		p2 = types.Key(string(rune('a'+i%26)) + "payer")
		if partition.Assign(p1, 4) != partition.Assign(p2, 4) {
			break
		}
	}
	tx := types.NewMultiPayment(p1, []types.Transfer{
		{From: p1, To: "z", Amount: 1},
		{From: p2, To: "z", Amount: 1},
	}, 1)

	orthrus := newBareReplica(t, OrthrusMode())
	if got := orthrus.routeOf(tx); len(got) != 2 {
		t.Fatalf("split route = %v", got)
	}
	noSplit := OrthrusMode()
	noSplit.SplitMultiPayer = false
	base := newBareReplica(t, noSplit)
	if got := base.routeOf(tx); len(got) != 1 {
		t.Fatalf("no-split route = %v", got)
	}
}

func TestRouteOfMintFallsBackToClient(t *testing.T) {
	r := newBareReplica(t, OrthrusMode())
	mint := &types.Transaction{Client: "faucet", Ops: []types.Op{
		{Key: "alice", Type: types.Owned, Kind: types.OpIncrement, Amount: 5},
	}}
	got := r.routeOf(mint)
	if len(got) != 1 || got[0] != partition.Assign("faucet", 4) {
		t.Fatalf("mint route = %v", got)
	}
}

func TestLegFeasibleTracksPromisedDebits(t *testing.T) {
	r := newBareReplica(t, OrthrusMode())
	inst := partition.Assign("alice", 4)
	tx1 := types.NewPayment("alice", "bob", 60, 1)
	tx2 := types.NewPayment("alice", "bob", 60, 2)
	if !r.legFeasible(tx1, inst) {
		t.Fatal("tx1 should be feasible (balance 100)")
	}
	r.promiseDebits(tx1, inst)
	if r.legFeasible(tx2, inst) {
		t.Fatal("tx2 feasible despite 60 already promised of 100")
	}
	// Releasing the promise (block executed) restores feasibility of the
	// *remaining* balance only; after the escrow the real balance governs.
	b := &types.Block{Instance: inst, Proposer: 0, Txs: []types.Transaction{*tx1}}
	r.releaseProposedDebits(b)
	if !r.legFeasible(tx2, inst) {
		t.Fatal("promise not released")
	}
}

func TestEpochDigestMatchesAcrossReplicas(t *testing.T) {
	a := newBareReplica(t, OrthrusMode())
	b := newBareReplica(t, OrthrusMode())
	blk := &types.Block{Instance: 1, SN: 0, Rank: 1}
	for _, r := range []*Replica{a, b} {
		r.onDeliver(1, blk)
	}
	if a.epochDigest() != b.epochDigest() {
		t.Fatal("epoch digests diverge on identical deliveries")
	}
	// A different delivery order across instances changes nothing per
	// instance, but a different block does.
	c := newBareReplica(t, OrthrusMode())
	c.onDeliver(1, &types.Block{Instance: 1, SN: 0, Rank: 2})
	if a.epochDigest() == c.epochDigest() {
		t.Fatal("different blocks produced identical epoch digests")
	}
}

func TestGlogHeadBlockingPreservesOrder(t *testing.T) {
	// Two contract transactions confirmed in global order; the first's
	// escrow phase is incomplete, so neither may execute until it is ready,
	// and then both run in order.
	r := newBareReplica(t, OrthrusMode())
	con1 := types.NewContractCall("alice", []types.Key{"alice"}, 1,
		[]types.Op{types.NewSharedAssign("rec", 1)}, 1)
	con2 := types.NewContractCall("bob", []types.Key{"bob"}, 1,
		[]types.Op{types.NewSharedAssign("rec", 2)}, 2)
	inst1 := partition.Assign("alice", 4)
	// Track both transactions; only con2's escrow phase has run.
	t1 := r.tracker(con1)
	t2 := r.tracker(con2)
	r.store.Escrow(con2.Ops[0], con2.ID())
	t2.markEscrowed(t2.instances[0])

	r.glogQ = append(r.glogQ,
		glogCursor{block: &types.Block{Instance: inst1, Txs: []types.Transaction{*con1}}},
		glogCursor{block: &types.Block{Instance: t2.instances[0], Txs: []types.Transaction{*con2}}},
	)
	r.drainGlogQueue()
	if t1.done || t2.done {
		t.Fatal("execution overtook an unready glog head")
	}
	// Complete con1's escrow phase; both must now execute in order, leaving
	// rec = 2 (con2 last).
	r.store.Escrow(con1.Ops[0], con1.ID())
	t1.markEscrowed(t1.instances[0])
	r.drainGlogQueue()
	if !t1.done || !t2.done {
		t.Fatal("glog queue did not drain after head became ready")
	}
	if v := r.store.SharedValue("rec"); v != 2 {
		t.Fatalf("rec = %d, want 2 (global order violated)", v)
	}
}

func TestByzantinePulseInterval(t *testing.T) {
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, 4, simnet.FixedModel{D: time.Millisecond})
	cfg := Config{N: 4, F: 1, ID: 2, M: 4, Mode: OrthrusMode(),
		BatchTimeout: 10 * time.Millisecond, ViewTimeout: time.Second,
		ByzantineMute: true}
	r := NewReplica(cfg, simnet.On(sim, cfg.ID), nw)
	r.Start()
	// Over 2 virtual seconds a Byzantine replica proposing at 0.8x the
	// view timeout makes at most ~3 proposals in its own instance, versus
	// ~200 pulses for an honest one.
	sim.Run(simnet.Time(2 * time.Second))
	if sn := r.sbs[2].NextProposeSeq(); sn > 4 {
		t.Fatalf("Byzantine replica proposed %d blocks in 2s; should crawl", sn)
	}
}

func TestTrackerWideInstanceSets(t *testing.T) {
	// Routes longer than 64 positions (a transaction with >64 distinct
	// payer buckets at large m) must track escrow progress exactly; the
	// inline word overflows into escrowedHi.
	for _, width := range []int{1, 2, 63, 64, 65, 100, 128} {
		tr := &txTracker{instances: make([]int, width)}
		for i := range tr.instances {
			tr.instances[i] = i * 3 // arbitrary distinct instance ids
		}
		for i, inst := range tr.instances {
			if tr.escrowed(inst) {
				t.Fatalf("width %d: position %d escrowed before marking", width, i)
			}
			tr.markEscrowed(inst)
			if !tr.escrowed(inst) {
				t.Fatalf("width %d: position %d not escrowed after marking", width, i)
			}
			if got := tr.escrowedCount(); got != i+1 {
				t.Fatalf("width %d: escrowedCount = %d after %d marks", width, got, i+1)
			}
		}
		if !tr.ready() {
			t.Fatalf("width %d: tracker not ready with every instance escrowed", width)
		}
		tr.markEscrowed(tr.instances[0]) // idempotent
		if got := tr.escrowedCount(); got != width {
			t.Fatalf("width %d: re-mark changed count to %d", width, got)
		}
	}
}
