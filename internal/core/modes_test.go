package core_test

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/types"
)

// TestDQBFTOrdersViaSequencer checks that under DQBFT contract effects are
// identical across replicas even though confirmation flows through the
// dedicated sequencer instance.
func TestDQBFTOrdersViaSequencer(t *testing.T) {
	c := newTestCluster(t, 4, baseline.DQBFTMode(), genesisRich("a", "b", "c", "d"), nil)
	var txs []*types.Transaction
	for i, client := range []types.Key{"a", "b", "c", "d"} {
		tx := types.NewContractCall(client, []types.Key{client}, 1,
			[]types.Op{types.NewSharedAssign("rec", types.Amount(10+i))}, uint64(i))
		txs = append(txs, tx)
		c.submit(tx)
	}
	c.run(8 * time.Second)
	for _, tx := range txs {
		c.requireOutcome(t, tx, true)
	}
	c.requireConsistent(t)
}

// TestMirStallsAllInstancesOnViewChange: after a crash fault, Mir's epoch
// change pauses every instance for a timeout, visibly reducing deliveries
// relative to ISS under the identical fault.
func TestMirStallsAllInstancesOnViewChange(t *testing.T) {
	run := func(mode core.Mode) uint64 {
		c := newTestCluster(t, 4, mode, genesisRich("alice", "bob"), func(i int, cfg *core.Config) {
			cfg.ViewTimeout = 1 * time.Second
		})
		// Crash replica 3's instance leader at 1s.
		c.sim.At(simnet.Time(1*time.Second), func() {
			c.replicas[3].Stop()
			c.nw.SetDown(3, true)
		})
		for i := 0; i < 20; i++ {
			c.submit(types.NewPayment("alice", "bob", 1, uint64(i)))
		}
		c.run(8 * time.Second)
		// Count blocks delivered at replica 0 across instances.
		var delivered uint64
		for _, sn := range c.replicas[0].State() {
			delivered += sn
		}
		return delivered
	}
	mir := run(baseline.MirMode())
	iss := run(baseline.ISSMode())
	if mir >= iss {
		t.Fatalf("Mir delivered %d >= ISS %d despite global stall", mir, iss)
	}
}

// TestStageTraceOrdering: the observer's five timestamps must be
// monotonically non-decreasing for confirmed transactions.
func TestStageTraceOrdering(t *testing.T) {
	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("alice", "bob"), func(i int, cfg *core.Config) {
		if i == 0 {
			cfg.TraceStages = true
		}
	})
	tx := types.NewPayment("alice", "bob", 5, 1)
	c.submit(tx)
	c.run(3 * time.Second)
	c.requireOutcome(t, tx, true)
	st, ok := c.replicas[0].Stages(tx.ID())
	if !ok {
		t.Fatal("no stage trace recorded")
	}
	if st.Received < st.Submit || st.Proposed < st.Received ||
		st.Delivered < st.Proposed || st.Confirmed < st.Delivered {
		t.Fatalf("stage order violated: %+v", st)
	}
	if st.Confirmed == 0 {
		t.Fatal("confirmed stage missing")
	}
}

// TestPendingGlobalDrains: after quiescence nothing stays stuck in the
// global ordering.
func TestPendingGlobalDrains(t *testing.T) {
	for _, mode := range []core.Mode{core.OrthrusMode(), baseline.LadonMode(), baseline.ISSMode()} {
		c := newTestCluster(t, 4, mode, genesisRich("alice", "bob"), nil)
		for i := 0; i < 10; i++ {
			c.submit(types.NewPayment("alice", "bob", 1, uint64(i)))
		}
		c.run(6 * time.Second)
		for i, r := range c.replicas {
			if p := r.PendingGlobal(); p > 4 { // at most the in-flight window
				t.Fatalf("%s replica %d has %d blocks pending global order", mode.Name, i, p)
			}
		}
	}
}

// TestSubmitInvalidRejected: SubmitTx validates.
func TestSubmitInvalidRejected(t *testing.T) {
	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("alice"), nil)
	bad := &types.Transaction{Client: "alice"} // no ops
	if err := c.replicas[0].SubmitTx(bad); err == nil {
		t.Fatal("invalid tx accepted")
	}
}

// TestConfirmedCounters: the replica's counters match the callback totals.
func TestConfirmedCounters(t *testing.T) {
	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("alice", "bob"), nil)
	for i := 0; i < 8; i++ {
		c.submit(types.NewPayment("alice", "bob", 1, uint64(i)))
	}
	c.run(5 * time.Second)
	ok, failed := c.replicas[0].Confirmed()
	if int(ok) != len(c.results[0]) || failed != 0 {
		t.Fatalf("counters ok=%d failed=%d, callbacks=%d", ok, failed, len(c.results[0]))
	}
}
