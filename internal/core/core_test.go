package core_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/simnet"
	"repro/internal/types"
)

// testCluster wires n replicas of one protocol over a fixed-latency network.
type testCluster struct {
	sim      *simnet.Sim
	nw       *simnet.Network
	replicas []*core.Replica
	results  []map[types.TxID]bool // per-replica confirm outcomes
}

func newTestCluster(t *testing.T, n int, mode core.Mode, genesis func(*ledger.Store), mutate func(i int, cfg *core.Config)) *testCluster {
	t.Helper()
	c := &testCluster{sim: simnet.New(1)}
	c.nw = simnet.NewNetwork(c.sim, n, simnet.FixedModel{D: 5 * time.Millisecond})
	c.results = make([]map[types.TxID]bool, n)
	for i := 0; i < n; i++ {
		i := i
		c.results[i] = make(map[types.TxID]bool)
		cfg := core.Config{
			N: n, F: (n - 1) / 3, ID: i, M: n,
			Mode:         mode,
			BatchSize:    8,
			BatchTimeout: 30 * time.Millisecond,
			ViewTimeout:  2 * time.Second,
			EpochLen:     8,
			Genesis:      genesis,
			OnConfirm: func(tx *types.Transaction, success bool, at simnet.Time) {
				if _, dup := c.results[i][tx.ID()]; dup {
					t.Errorf("replica %d confirmed tx %s twice", i, tx.ID())
				}
				c.results[i][tx.ID()] = success
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		c.replicas = append(c.replicas, core.NewReplica(cfg, simnet.On(c.sim, i), c.nw))
	}
	for _, r := range c.replicas {
		r.Start()
	}
	return c
}

// submit hands a tx to every replica at the current virtual time.
func (c *testCluster) submit(tx *types.Transaction) {
	tx.SubmitNS = int64(c.sim.Now())
	for _, r := range c.replicas {
		_ = r.SubmitTx(tx)
	}
}

func (c *testCluster) run(d time.Duration) { c.sim.Run(c.sim.Now() + simnet.Time(d)) }

// requireOutcome asserts every replica confirmed the tx with the outcome.
func (c *testCluster) requireOutcome(t *testing.T, tx *types.Transaction, want bool) {
	t.Helper()
	for i, res := range c.results {
		got, ok := res[tx.ID()]
		if !ok {
			t.Fatalf("replica %d never confirmed tx %s", i, tx.ID())
		}
		if got != want {
			t.Fatalf("replica %d outcome %v, want %v for tx %s", i, got, want, tx.ID())
		}
	}
}

// requireConsistent asserts all replicas hold identical ledger snapshots.
func (c *testCluster) requireConsistent(t *testing.T) {
	t.Helper()
	base := c.replicas[0].Store().Snapshot()
	for i := 1; i < len(c.replicas); i++ {
		if !c.replicas[i].Store().Snapshot().Equal(base) {
			t.Fatalf("replica %d snapshot differs from replica 0", i)
		}
	}
}

func genesisRich(names ...types.Key) func(*ledger.Store) {
	return func(st *ledger.Store) {
		for _, n := range names {
			st.Credit(n, 1000)
		}
	}
}

func TestOrthrusSimplePayment(t *testing.T) {
	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("alice", "bob"), nil)
	tx := types.NewPayment("alice", "bob", 100, 1)
	c.submit(tx)
	c.run(3 * time.Second)
	c.requireOutcome(t, tx, true)
	c.requireConsistent(t)
	st := c.replicas[0].Store()
	if st.Balance("alice") != 900 || st.Balance("bob") != 1100 {
		t.Fatalf("balances alice=%d bob=%d", st.Balance("alice"), st.Balance("bob"))
	}
	if st.EscrowCount() != 0 {
		t.Fatal("escrows leaked")
	}
}

func TestOrthrusMultiPayerAtomicCommit(t *testing.T) {
	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("alice", "bob", "carol"), nil)
	// The paper's Appendix B tx1: Alice and Bob each pay 1 to Carol; the
	// two legs run in different instances and commit atomically.
	tx := types.NewMultiPayment("alice", []types.Transfer{
		{From: "alice", To: "carol", Amount: 10},
		{From: "bob", To: "carol", Amount: 20},
	}, 1)
	c.submit(tx)
	c.run(3 * time.Second)
	c.requireOutcome(t, tx, true)
	c.requireConsistent(t)
	st := c.replicas[0].Store()
	if st.Balance("alice") != 990 || st.Balance("bob") != 980 || st.Balance("carol") != 1030 {
		t.Fatalf("balances %d/%d/%d", st.Balance("alice"), st.Balance("bob"), st.Balance("carol"))
	}
}

func TestOrthrusContractTransaction(t *testing.T) {
	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("alice", "bob"), nil)
	tx := types.NewContractCall("alice", []types.Key{"alice", "bob"}, 5,
		[]types.Op{types.NewSharedAssign("record", 42)}, 1)
	c.submit(tx)
	c.run(4 * time.Second)
	c.requireOutcome(t, tx, true)
	c.requireConsistent(t)
	st := c.replicas[0].Store()
	if st.SharedValue("record") != 42 {
		t.Fatalf("shared record = %d", st.SharedValue("record"))
	}
	if st.Balance("alice") != 995 || st.Balance("bob") != 995 {
		t.Fatalf("fees not charged: %d/%d", st.Balance("alice"), st.Balance("bob"))
	}
}

func TestOrthrusDependentPayments(t *testing.T) {
	// Bob starts empty; Alice pays Bob, then Bob pays Carol. The second
	// payment is only feasible after the first credit lands — the leader
	// re-queues it until then (cross-instance partial-order dependency).
	c := newTestCluster(t, 4, core.OrthrusMode(), func(st *ledger.Store) {
		st.Credit("alice", 100)
	}, nil)
	tx1 := types.NewPayment("alice", "bob", 50, 1)
	tx2 := types.NewPayment("bob", "carol", 30, 1)
	c.submit(tx1)
	c.submit(tx2)
	c.run(6 * time.Second)
	c.requireOutcome(t, tx1, true)
	c.requireOutcome(t, tx2, true)
	c.requireConsistent(t)
	st := c.replicas[0].Store()
	if st.Balance("alice") != 50 || st.Balance("bob") != 20 || st.Balance("carol") != 30 {
		t.Fatalf("balances %d/%d/%d", st.Balance("alice"), st.Balance("bob"), st.Balance("carol"))
	}
}

func TestOrthrusConflictingPaymentsSamePayer(t *testing.T) {
	// Alice has 100 and issues two 70-token payments: exactly one succeeds
	// (the other stays infeasible and unconfirmed), never both.
	c := newTestCluster(t, 4, core.OrthrusMode(), func(st *ledger.Store) {
		st.Credit("alice", 100)
	}, nil)
	tx1 := types.NewPayment("alice", "bob", 70, 1)
	tx2 := types.NewPayment("alice", "carol", 70, 2)
	c.submit(tx1)
	c.submit(tx2)
	c.run(4 * time.Second)
	c.requireConsistent(t)
	st := c.replicas[0].Store()
	if st.Balance("alice") != 30 {
		t.Fatalf("alice = %d, want exactly one 70 spent", st.Balance("alice"))
	}
	if st.Balance("bob")+st.Balance("carol") != 70 {
		t.Fatalf("transferred %d, want 70", st.Balance("bob")+st.Balance("carol"))
	}
}

func TestOrthrusPaymentNotBlockedByContract(t *testing.T) {
	// Solution II: a contract transaction and a later payment share payer
	// Alice. The payment must confirm from the partial log even though the
	// contract waits for the global log. We verify both succeed and that
	// escrow kept Alice's spending consistent.
	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("alice", "bob"), nil)
	contract := types.NewContractCall("alice", []types.Key{"alice"}, 100,
		[]types.Op{types.NewSharedAssign("rec", 7)}, 1)
	pay := types.NewPayment("alice", "bob", 200, 2)
	c.submit(contract)
	c.submit(pay)
	c.run(4 * time.Second)
	c.requireOutcome(t, contract, true)
	c.requireOutcome(t, pay, true)
	c.requireConsistent(t)
	st := c.replicas[0].Store()
	if st.Balance("alice") != 700 {
		t.Fatalf("alice = %d, want 700", st.Balance("alice"))
	}
}

func TestBaselineProtocolsConfirmAndAgree(t *testing.T) {
	for _, mode := range baseline.AllModes() {
		mode := mode
		t.Run(mode.Name, func(t *testing.T) {
			c := newTestCluster(t, 4, mode, genesisRich("alice", "bob", "carol"), nil)
			var txs []*types.Transaction
			for i := 0; i < 6; i++ {
				txs = append(txs, types.NewPayment("alice", "bob", 10, uint64(i)))
			}
			con := types.NewContractCall("carol", []types.Key{"carol"}, 1,
				[]types.Op{types.NewSharedAssign("rec", 5)}, 100)
			txs = append(txs, con)
			for _, tx := range txs {
				c.submit(tx)
			}
			c.run(6 * time.Second)
			for _, tx := range txs {
				c.requireOutcome(t, tx, true)
			}
			c.requireConsistent(t)
			st := c.replicas[0].Store()
			if st.Balance("alice") != 940 || st.Balance("bob") != 1060 {
				t.Fatalf("%s balances %d/%d", mode.Name, st.Balance("alice"), st.Balance("bob"))
			}
			if st.SharedValue("rec") != 5 {
				t.Fatalf("%s shared value %d", mode.Name, st.SharedValue("rec"))
			}
		})
	}
}

func TestContractOrderingConsistentAcrossReplicas(t *testing.T) {
	// Several contract transactions assign different values to one shared
	// record from different clients/instances; every replica must end with
	// the same final value (Observation 3 / Lemma 3).
	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("a", "b", "c", "d"), nil)
	var txs []*types.Transaction
	for i, client := range []types.Key{"a", "b", "c", "d"} {
		tx := types.NewContractCall(client, []types.Key{client}, 1,
			[]types.Op{types.NewSharedAssign("rec", types.Amount(100+i))}, uint64(i))
		txs = append(txs, tx)
		c.submit(tx)
	}
	c.run(6 * time.Second)
	for _, tx := range txs {
		c.requireOutcome(t, tx, true)
	}
	c.requireConsistent(t)
	v := c.replicas[0].Store().SharedValue("rec")
	if v < 100 || v > 103 {
		t.Fatalf("final shared value %d not one of the assigned values", v)
	}
}

func TestEpochCheckpointAdvances(t *testing.T) {
	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("alice", "bob"), nil)
	for i := 0; i < 20; i++ {
		c.submit(types.NewPayment("alice", "bob", 1, uint64(i)))
	}
	c.run(12 * time.Second)
	for i, r := range c.replicas {
		_, stable := r.Epoch()
		if stable == 0 {
			t.Fatalf("replica %d never stabilized a checkpoint", i)
		}
	}
}

func TestMixedWorkloadManyClients(t *testing.T) {
	var names []types.Key
	for i := 0; i < 12; i++ {
		names = append(names, types.Key(fmt.Sprintf("acct%d", i)))
	}
	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich(names...), nil)
	var txs []*types.Transaction
	for i := 0; i < 40; i++ {
		from := names[i%len(names)]
		to := names[(i+3)%len(names)]
		var tx *types.Transaction
		switch i % 4 {
		case 0, 1:
			tx = types.NewPayment(from, to, 5, uint64(i))
		case 2:
			tx = types.NewMultiPayment(from, []types.Transfer{
				{From: from, To: to, Amount: 2},
				{From: names[(i+5)%len(names)], To: to, Amount: 3},
			}, uint64(i))
		case 3:
			tx = types.NewContractCall(from, []types.Key{from}, 1,
				[]types.Op{types.NewSharedAssign(types.Key(fmt.Sprintf("rec%d", i%3)), types.Amount(i))}, uint64(i))
		}
		txs = append(txs, tx)
		c.submit(tx)
	}
	c.run(10 * time.Second)
	for _, tx := range txs {
		c.requireOutcome(t, tx, true)
	}
	c.requireConsistent(t)
	// Conservation: total owned tokens unchanged (12 accounts x 1000 minus
	// contract fees, which execSequential/execContract burn as debits
	// without credits: 10 contract txs x 1 fee).
	total := c.replicas[0].Store().TotalOwned()
	if total != 12*1000-10 {
		t.Fatalf("total owned = %d, want %d", total, 12*1000-10)
	}
}

func TestOrthrusPaymentFasterThanContract(t *testing.T) {
	// The fast path must confirm a payment strictly before a concurrently
	// submitted contract confirms via the global log (on average, and in
	// this deterministic setup, always).
	var payAt, conAt simnet.Time
	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("alice", "bob", "x"), func(i int, cfg *core.Config) {
		if i != 0 {
			return
		}
		inner := cfg.OnConfirm
		cfg.OnConfirm = func(tx *types.Transaction, success bool, at simnet.Time) {
			inner(tx, success, at)
			if tx.Kind() == types.Payment {
				payAt = at
			} else {
				conAt = at
			}
		}
	})
	pay := types.NewPayment("alice", "bob", 1, 1)
	con := types.NewContractCall("x", []types.Key{"x"}, 1,
		[]types.Op{types.NewSharedAssign("rec", 1)}, 2)
	c.submit(pay)
	c.submit(con)
	c.run(5 * time.Second)
	c.requireOutcome(t, pay, true)
	c.requireOutcome(t, con, true)
	if payAt == 0 || conAt == 0 || payAt > conAt {
		t.Fatalf("payment confirmed at %v, contract at %v; fast path not faster", payAt, conAt)
	}
}

func TestDeterministicCluster(t *testing.T) {
	run := func() types.Amount {
		c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("alice", "bob"), nil)
		for i := 0; i < 10; i++ {
			c.submit(types.NewPayment("alice", "bob", types.Amount(i+1), uint64(i)))
		}
		c.run(5 * time.Second)
		return c.replicas[0].Store().Balance("bob")
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}
