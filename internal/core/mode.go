// Package core implements the Multi-BFT replica framework and the Orthrus
// protocol on top of it (paper Algorithm 1). A Replica runs m parallel
// PBFT-based sequenced-broadcast instances over a simulated network,
// partitions client transactions into buckets, maintains partial logs and a
// global log, and executes transactions with the escrow mechanism.
//
// The framework is parameterized by a Mode, which captures what
// distinguishes the protocols the paper evaluates: how the global log is
// built (predetermined positions, dynamic ranks, or a dedicated sequencer
// instance), whether payments bypass global ordering (Orthrus's fast path),
// whether multi-payer transactions are split across instances, and how the
// system reacts to leader failure. Package baseline provides the modes for
// ISS, Mir-BFT, RCC, DQBFT and Ladon.
package core

import (
	"repro/internal/order"
	"repro/internal/types"
)

// SB is one sequenced-broadcast instance seen from one replica: the paper's
// black box with broadcast/deliver primitives (Sec. III-C). The default
// implementation is message-level PBFT (package pbft); the benchmark
// harness substitutes an analytic quorum-time implementation (package sb)
// for large replica counts.
type SB interface {
	// CanPropose reports whether this replica may broadcast the next block
	// (it leads the current view and the pipeline window has room).
	CanPropose() bool
	// NextProposeSeq returns the sequence number the next proposal takes.
	NextProposeSeq() uint64
	// Propose broadcasts a block; the caller must be the current leader.
	Propose(b *types.Block) error
	// SetTarget arms the failure detector: sequence numbers below target
	// are expected to deliver or a view change fires.
	SetTarget(target uint64)
	// IsLeader reports whether this replica leads the current view.
	IsLeader() bool
	// Leader returns the current view's leader.
	Leader() int
	// View returns the current view number.
	View() uint64
	// Stop halts the instance (crash).
	Stop()
}

// SBHooks are the upcalls an SB implementation drives into the replica.
type SBHooks struct {
	// OnDeliver fires exactly once per sequence number, in order.
	OnDeliver func(b *types.Block)
	// OnViewChange fires when a new view installs.
	OnViewChange func(view uint64, leader int)
	// MakeNoop builds a filler block for gap sequence numbers.
	MakeNoop func(sn uint64) *types.Block
}

// SBBuilder constructs the SB instance with the given index for a replica.
type SBBuilder func(instance int, hooks SBHooks) SB

// GlobalOrdering merges delivered blocks into the globally confirmed
// sequence. Implementations must be deterministic functions of the local
// delivery sequence so all honest replicas agree without communication.
type GlobalOrdering interface {
	// Both deliver hooks may return a scratch slice owned by the ordering,
	// valid only until the next call — callers consume it immediately.
	// OnWorkerDeliver is invoked for every block delivered by a worker SB
	// instance; it returns blocks that became globally confirmed, in order.
	OnWorkerDeliver(b *types.Block) []*types.Block
	// OnSequencerDeliver is invoked for blocks of the dedicated sequencer
	// instance (DQBFT); non-sequencer modes never receive this call.
	OnSequencerDeliver(b *types.Block) []*types.Block
	// PendingCount returns delivered-but-unconfirmed blocks.
	PendingCount() int
}

// WorkerOrdering adapts a plain order.Orderer (predetermined or dynamic)
// into a GlobalOrdering that ignores sequencer blocks.
type WorkerOrdering struct {
	Ord order.Orderer
}

// OnWorkerDeliver implements GlobalOrdering.
func (w WorkerOrdering) OnWorkerDeliver(b *types.Block) []*types.Block { return w.Ord.Deliver(b) }

// OnSequencerDeliver implements GlobalOrdering.
func (w WorkerOrdering) OnSequencerDeliver(b *types.Block) []*types.Block { return nil }

// PendingCount implements GlobalOrdering.
func (w WorkerOrdering) PendingCount() int { return w.Ord.PendingCount() }

// Mode selects a Multi-BFT protocol variant.
type Mode struct {
	// Name identifies the protocol in output ("Orthrus", "ISS", ...).
	Name string
	// NewGlobal builds the global ordering over m worker instances.
	NewGlobal func(m int) GlobalOrdering
	// FastPathPayments confirms payment transactions directly from partial
	// logs via the escrow mechanism, bypassing the global log (Orthrus).
	FastPathPayments bool
	// SplitMultiPayer assigns multi-payer transactions to every payer's
	// bucket (Orthrus); otherwise the first payer's bucket only.
	SplitMultiPayer bool
	// Sequencer adds a dedicated ordering SB instance (DQBFT): worker
	// blocks are globally ordered by reference blocks decided on it.
	Sequencer bool
	// EpochStallOnViewChange stalls every instance while any view change is
	// in progress (Mir-BFT's epoch-change behavior).
	EpochStallOnViewChange bool
	// StrictEpochBarrier pauses instances that finished their epoch
	// allotment until all instances catch up (pre-determined protocols).
	// Without it, instances may run a bounded number of epochs ahead.
	StrictEpochBarrier bool
}

// OrthrusMode returns the paper's protocol: dynamic rank-based global
// ordering for contract transactions, escrow-based fast path for payments,
// and multi-payer splitting with atomicity via escrow.
func OrthrusMode() Mode {
	return Mode{
		Name:             "Orthrus",
		NewGlobal:        func(m int) GlobalOrdering { return WorkerOrdering{Ord: order.NewDynamic(m)} },
		FastPathPayments: true,
		SplitMultiPayer:  true,
	}
}
