package core

import (
	"crypto/sha256"

	"repro/internal/types"
)

// State-transfer catch-up (Config.StateTransfer)
//
// A replica that was down misses deliveries it can never regain through the
// normal path: its pbft engines hold no commit certificates for the missed
// sequences, so its delivery log keeps a gap forever while live peers run
// ahead and, after checkpoint GC, discard the blocks it would need. The
// catch-up protocol repairs the gap by replaying the blocks themselves:
//
//  1. The recovering replica broadcasts StateTransferReq with its delivered
//     state vector (its contiguous per-instance prefix).
//  2. Every live peer answers with its latest stable CheckpointCert plus,
//     per instance, the contiguous run of archived blocks from the
//     requester's prefix up to the peer's own tip.
//  3. Once 2f+1 responses arrived, the requester applies, per instance and
//     strictly in sequence order, each block vouched for by f+1 matching
//     copies (at least one honest sender). Application drives the normal
//     delivery path — the engine's cursor advances via SkipDelivered, then
//     onDeliver executes, folds digests, and feeds the global order exactly
//     as a live delivery would — so the replica provably never re-executes
//     anything below its own prefix, i.e. never replays pre-checkpoint
//     history it already holds.
//  4. A cert carried by f+1 identical responses is adopted once the local
//     log covers its boundary, stabilizing the checkpoint (and running GC)
//     without waiting for the next live vote quorum.
//
// Peers can only serve what their own GC still holds: requesters more than
// one stable checkpoint behind the cluster receive the archived suffix
// starting at the peers' GC floor and keep a gap below it. That residue
// heals on the next request round if any peer still holds the missing run;
// a replica down for many epochs rejoins consensus either way (it votes for
// new sequences immediately) but stops contributing matching checkpoint
// digests. Snapshot installation below the floor is future work.

// StateTransferReq asks peers for catch-up data: the requester's current
// per-instance delivered state; responders send back everything past it.
type StateTransferReq struct {
	Replica int
	State   types.StateVector
}

// CheckpointCert cites a stable checkpoint: one past the covered epoch, the
// quorum digest, and the per-instance boundary hashes the digest commits to
// (Stable == 0 means the responder has no stable checkpoint yet).
type CheckpointCert struct {
	Stable uint64
	Digest [32]byte
	Bound  [][32]byte
}

// BlockRun is a contiguous run of one instance's delivered blocks,
// ascending from Blocks[0].SN.
type BlockRun struct {
	Instance int
	Blocks   []*types.Block
}

// StateTransferResp is one peer's catch-up answer.
type StateTransferResp struct {
	Replica int
	Cert    CheckpointCert
	Runs    []BlockRun
}

// requestStateTransfer broadcasts a catch-up request carrying the replica's
// delivered state vector. Previously collected responses answer an older
// request (a smaller prefix) and are dropped.
func (r *Replica) requestStateTransfer() {
	if r.stResps == nil {
		return
	}
	for k := range r.stResps {
		delete(r.stResps, k)
	}
	req := &StateTransferReq{Replica: r.cfg.ID, State: r.state.Clone()}
	r.nw.Broadcast(r.cfg.ID, 32+8*r.cfg.M, req)
}

// onStateTransferReq answers a peer's catch-up request with the latest
// stable checkpoint cert and the archived block runs past the requester's
// prefix. An empty answer is still sent: the requester counts responses
// toward its 2f+1 threshold before applying what better-placed peers hold.
func (r *Replica) onStateTransferReq(m *StateTransferReq) {
	if !r.cfg.StateTransfer || m.Replica < 0 || m.Replica >= r.cfg.N ||
		m.Replica == r.cfg.ID || len(m.State) != r.cfg.M {
		return
	}
	resp := &StateTransferResp{Replica: r.cfg.ID}
	size := 64
	if r.stableEpoch > 0 {
		if bd, ok := r.bound[r.stableEpoch-1]; ok {
			h := sha256.New()
			for i := range bd {
				h.Write(bd[i][:])
			}
			cert := CheckpointCert{Stable: r.stableEpoch, Bound: append([][32]byte(nil), bd...)}
			copy(cert.Digest[:], h.Sum(nil))
			resp.Cert = cert
			size += 32 * (len(bd) + 1)
		}
	}
	for i := 0; i < r.cfg.M; i++ {
		from := m.State[i]
		if from < r.archiveBase[i] {
			from = r.archiveBase[i] // below the GC floor; serve the suffix
		}
		if from >= r.state[i] {
			continue
		}
		// Fresh slice header per response: the archive's backing array keeps
		// shrinking under GC and must not be aliased across replica shards.
		blocks := append([]*types.Block(nil), r.archive[i][from-r.archiveBase[i]:]...)
		resp.Runs = append(resp.Runs, BlockRun{Instance: i, Blocks: blocks})
		for _, b := range blocks {
			size += 96 + len(b.Txs)*r.cfg.TxSize
		}
	}
	r.nw.Send(r.cfg.ID, m.Replica, size, resp)
}

// onStateTransferResp collects catch-up answers and applies them once 2f+1
// peers responded (late answers re-trigger application and may close
// residual gaps).
func (r *Replica) onStateTransferResp(m *StateTransferResp) {
	if !r.cfg.StateTransfer || r.stResps == nil ||
		m.Replica < 0 || m.Replica >= r.cfg.N || m.Replica == r.cfg.ID {
		return
	}
	r.stResps[m.Replica] = m
	if len(r.stResps) >= 2*r.cfg.F+1 {
		r.applyStateTransfer()
	}
}

// applyStateTransfer replays vouched-for blocks through the normal delivery
// path, per instance in strict sequence order from the replica's own tip.
// Response iteration is by replica index so serial and parallel kernels
// make bit-identical choices.
func (r *Replica) applyStateTransfer() {
	for i := 0; i < r.cfg.M; i++ {
		sd, ok := r.sbs[i].(interface{ SkipDelivered(*types.Block) bool })
		if !ok {
			return // engine cannot skip (analytic SB); leave the gap
		}
		for {
			// Re-read the tip every round: onDeliver advances it, and a
			// stabilization fired from inside may clear stResps entirely.
			next := r.state[i]
			var chosen *types.Block
			var cands []*types.Block
			var votes []int
			for rid := 0; rid < r.cfg.N && chosen == nil; rid++ {
				resp, ok := r.stResps[rid]
				if !ok {
					continue
				}
				b := runBlockAt(resp.Runs, i, next)
				if b == nil {
					continue
				}
				d := b.Digest()
				seen := false
				for ci := range cands {
					if cands[ci].Digest() == d {
						votes[ci]++
						seen = true
						if votes[ci] >= r.cfg.F+1 {
							chosen = cands[ci]
						}
						break
					}
				}
				if !seen {
					cands = append(cands, b)
					votes = append(votes, 1)
					if r.cfg.F == 0 {
						chosen = b
					}
				}
			}
			// SkipDelivered drives the engine's OnDeliver hook — the block
			// executes through onDeliver exactly like a live delivery.
			if chosen == nil || !sd.SkipDelivered(chosen) {
				break
			}
			r.stApplied++
		}
	}
	r.adoptCert()
}

// runBlockAt returns the block with sequence sn for instance among runs,
// or nil if the runs do not cover it.
func runBlockAt(runs []BlockRun, instance int, sn uint64) *types.Block {
	for _, run := range runs {
		if run.Instance != instance || len(run.Blocks) == 0 {
			continue
		}
		first := run.Blocks[0].SN
		if sn < first || sn-first >= uint64(len(run.Blocks)) {
			continue
		}
		if b := run.Blocks[sn-first]; b != nil && b.SN == sn {
			return b
		}
	}
	return nil
}

// adoptCert stabilizes the highest checkpoint cert that f+1 responders
// agree on (at least one honest voucher) once the local log has caught up
// to its boundary — a matching local digest is exactly the stabilization
// condition, so the recovered replica garbage-collects without waiting for
// the next live vote quorum. Certs whose digest does not commit to their
// own Bound vector are discarded as malformed.
func (r *Replica) adoptCert() {
	type certKey struct {
		stable uint64
		digest [32]byte
	}
	counts := make(map[certKey]int)
	bestStable := uint64(0)
	var bestD [32]byte
	for rid := 0; rid < r.cfg.N; rid++ {
		resp, ok := r.stResps[rid]
		if !ok || resp.Cert.Stable == 0 || len(resp.Cert.Bound) != r.cfg.M {
			continue
		}
		h := sha256.New()
		for i := range resp.Cert.Bound {
			h.Write(resp.Cert.Bound[i][:])
		}
		var d [32]byte
		copy(d[:], h.Sum(nil))
		if d != resp.Cert.Digest {
			continue
		}
		k := certKey{resp.Cert.Stable, resp.Cert.Digest}
		counts[k]++
		// With at most f faulty replicas, only one cert per stable height
		// can reach f+1 copies, so the winner is iteration-order free.
		if counts[k] >= r.cfg.F+1 && k.stable > bestStable {
			bestStable, bestD = k.stable, k.digest
		}
	}
	if bestStable > r.stableEpoch {
		r.tryStabilize(bestStable-1, bestD)
	}
}

// StateTransferApplied returns how many blocks this replica applied through
// catch-up rather than live SB delivery (tests assert gap repair happened
// without pre-checkpoint replay).
func (r *Replica) StateTransferApplied() uint64 { return r.stApplied }

// LiveSet is a point-in-time census of the replica-retained state the
// long-horizon GC is responsible for bounding. The soak harness samples it
// across replicas; a flat profile after warmup is the "memory bounded at
// any virtual-time horizon" acceptance signal.
type LiveSet struct {
	Trackers  int // transaction trackers retained (index + map)
	ExecQ     int // delivered blocks awaiting their escrow phase
	GlogQ     int // globally confirmed blocks awaiting in-order execution
	Escrows   int // live escrow-log entries in the ledger
	Archive   int // state-transfer archive blocks above the stable GC floor
	Slots     int // in-flight pbft slots across instances
	Retained  int // delivered blocks engines retain for NewView repair
	CkptVotes int // live checkpoint votes
}

// Total sums the census fields.
func (s LiveSet) Total() int {
	return s.Trackers + s.ExecQ + s.GlogQ + s.Escrows + s.Archive +
		s.Slots + s.Retained + s.CkptVotes
}

// LiveSet reports the replica's current retained-state census.
func (r *Replica) LiveSet() LiveSet {
	ls := LiveSet{
		Trackers: r.liveTrackers,
		Escrows:  r.store.EscrowCount(),
		GlogQ:    len(r.glogQ) - r.glogHead,
	}
	for i := range r.execQ {
		ls.ExecQ += len(r.execQ[i]) - r.execQhead[i]
	}
	for i := range r.archive {
		ls.Archive += len(r.archive[i])
	}
	for _, sb := range r.sbs {
		if inf, ok := sb.(interface{ InFlight() int }); ok {
			ls.Slots += inf.InFlight()
		}
		if ret, ok := sb.(interface{ Retained() int }); ok {
			ls.Retained += ret.Retained()
		}
	}
	for _, votes := range r.ckptVotes {
		ls.CkptVotes += len(votes)
	}
	return ls
}
