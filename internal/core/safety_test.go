package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
)

// randomWorkloadCluster runs a randomized mixed workload over a jittery WAN
// and returns the cluster after quiescence. Used by the safety properties.
func randomWorkloadCluster(t *testing.T, seed int64, mode core.Mode) (*testCluster, []*types.Transaction) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var names []types.Key
	for i := 0; i < 10; i++ {
		names = append(names, types.Key(fmt.Sprintf("acct%d", i)))
	}
	c := newTestClusterSeed(t, 4, mode, genesisRich(names...), nil, seed)
	var txs []*types.Transaction
	for i := 0; i < 30; i++ {
		from := names[rng.Intn(len(names))]
		to := names[rng.Intn(len(names))]
		var tx *types.Transaction
		switch rng.Intn(5) {
		case 0, 1, 2:
			tx = types.NewPayment(from, to, types.Amount(rng.Intn(20)+1), uint64(i))
		case 3:
			other := names[rng.Intn(len(names))]
			tx = types.NewMultiPayment(from, []types.Transfer{
				{From: from, To: to, Amount: types.Amount(rng.Intn(10) + 1)},
				{From: other, To: to, Amount: types.Amount(rng.Intn(10) + 1)},
			}, uint64(i))
		case 4:
			tx = types.NewContractCall(from, []types.Key{from}, 1,
				[]types.Op{types.NewSharedAssign(types.Key(fmt.Sprintf("rec%d", rng.Intn(3))), types.Amount(rng.Intn(100)))}, uint64(i))
		}
		txs = append(txs, tx)
		// Stagger submissions randomly over the first two seconds. tx is
		// declared fresh each iteration, so the closure capture is safe.
		at := simnet.Time(time.Duration(rng.Intn(2000)) * time.Millisecond)
		c.sim.At(at, func() {
			tx.SubmitNS = int64(c.sim.Now())
			for _, r := range c.replicas {
				_ = r.SubmitTx(tx)
			}
		})
	}
	c.run(15 * time.Second)
	return c, txs
}

// TestSafetyUnderRandomSchedules is Theorem 1 as a property test: across
// random workloads, jittery delivery schedules and every protocol mode, all
// replicas that confirmed the full workload hold identical object values.
func TestSafetyUnderRandomSchedules(t *testing.T) {
	modes := []core.Mode{core.OrthrusMode(), baseline.ISSMode(), baseline.LadonMode(), baseline.DQBFTMode()}
	for seed := int64(1); seed <= 5; seed++ {
		for _, mode := range modes {
			mode := mode
			t.Run(fmt.Sprintf("%s/seed=%d", mode.Name, seed), func(t *testing.T) {
				c, txs := randomWorkloadCluster(t, seed, mode)
				// Every tx confirmed at every replica with the same outcome.
				for _, tx := range txs {
					want, ok := c.results[0][tx.ID()]
					if !ok {
						t.Fatalf("replica 0 never confirmed tx %s", tx.ID())
					}
					for i := 1; i < len(c.replicas); i++ {
						got, ok := c.results[i][tx.ID()]
						if !ok || got != want {
							t.Fatalf("replica %d outcome %v/%v vs %v for tx %s", i, got, ok, want, tx.ID())
						}
					}
				}
				c.requireConsistent(t)
				// No funds stuck in escrow after quiescence.
				for i, r := range c.replicas {
					if n := r.Store().EscrowCount(); n != 0 {
						t.Fatalf("replica %d leaked %d escrows", i, n)
					}
				}
			})
		}
	}
}

// TestConservationUnderRandomSchedules: total owned value changes only by
// burnt contract fees — never created or destroyed by payments (Lemma 2's
// conservation corollary).
func TestConservationUnderRandomSchedules(t *testing.T) {
	for seed := int64(10); seed <= 14; seed++ {
		c, txs := randomWorkloadCluster(t, seed, core.OrthrusMode())
		fees := types.Amount(0)
		for _, tx := range txs {
			if tx.Kind() == types.Contract && c.results[0][tx.ID()] {
				fees += tx.TotalDebit() - tx.TotalCredit()
			}
		}
		want := types.Amount(10*1000) - fees
		if got := c.replicas[0].Store().TotalOwned(); got != want {
			t.Fatalf("seed %d: total owned %d, want %d", seed, got, want)
		}
	}
}

// blockSlot identifies one SB delivery slot across the cluster.
type blockSlot struct {
	instance int
	seq      uint64
}

// runAttackPreset runs one Byzantine attack preset (see
// scenario.AttackNames) on an n-replica cluster and returns the run result
// plus every replica's delivery log, keyed (instance, seq) -> replica ->
// block digest. The censorship detector is armed at 8 blocks so a
// censoring leader is voted out well inside the 6-second window.
func runAttackPreset(t *testing.T, preset string, n int, net cluster.NetProfile, seed int64) (*cluster.Result, map[blockSlot]map[int]types.BlockID) {
	t.Helper()
	const dur = 6 * time.Second
	scn, err := scenario.Preset(preset, n, dur, seed)
	if err != nil {
		t.Fatal(err)
	}
	delivered := map[blockSlot]map[int]types.BlockID{}
	res := cluster.Run(cluster.Config{
		N:                n,
		Protocol:         core.OrthrusMode(),
		Net:              net,
		Scenario:         scn,
		Workload:         workload.Config{Accounts: 500, Seed: seed},
		LoadTPS:          300,
		Duration:         dur,
		Warmup:           500 * time.Millisecond,
		Drain:            dur,
		BatchSize:        64,
		ViewTimeout:      time.Second,
		CensorshipBlocks: 8,
		NIC:              true,
		Seed:             seed,
		OnBlockDeliver: func(replica, instance int, b *types.Block) {
			slot := blockSlot{instance: instance, seq: b.SN}
			if delivered[slot] == nil {
				delivered[slot] = map[int]types.BlockID{}
			}
			delivered[slot][replica] = b.Digest()
		},
	})
	return res, delivered
}

// victimsOf extracts the attacked replica set from a preset's timeline.
func victimsOf(scn *scenario.Scenario) map[int]bool {
	victims := map[int]bool{}
	for _, e := range scn.Events {
		switch e.Kind {
		case scenario.Equivocate, scenario.Censor, scenario.MuteLeader:
			for _, id := range e.Nodes {
				victims[id] = true
			}
		}
	}
	return victims
}

// requireSlotAgreement is the paper's safety property over a delivery log:
// no two replicas commit conflicting blocks for the same (instance, seq).
// The check covers every replica — a Byzantine leader misbehaves on the
// proposal side only, so its own deliveries must agree with the honest
// quorum too.
func requireSlotAgreement(t *testing.T, delivered map[blockSlot]map[int]types.BlockID) {
	t.Helper()
	slots := 0
	for slot, byReplica := range delivered {
		var want types.BlockID
		first := true
		for replica, digest := range byReplica {
			if first {
				want, first = digest, false
				continue
			}
			if digest != want {
				t.Fatalf("conflicting commits at instance %d seq %d: replica %d delivered %s, another %s",
					slot.instance, slot.seq, replica, digest, want)
			}
		}
		slots++
	}
	if slots == 0 {
		t.Fatal("delivery log is empty: nothing committed anywhere")
	}
}

// TestAttackPresetSafety drives every Byzantine attack preset across seeds
// and asserts the safety property — no two replicas commit conflicting
// blocks for the same (instance, seq) — plus recovery: the attack phase
// still confirms transactions (the view-change machinery rotates the
// victims out) and the attack provokes at least one view change.
func TestAttackPresetSafety(t *testing.T) {
	for _, preset := range scenario.AttackNames() {
		for seed := int64(1); seed <= 2; seed++ {
			preset, seed := preset, seed
			t.Run(fmt.Sprintf("%s/seed=%d", preset, seed), func(t *testing.T) {
				t.Parallel()
				res, delivered := runAttackPreset(t, preset, 7, cluster.LAN, seed)
				requireSlotAgreement(t, delivered)
				if res.ViewChanges == 0 {
					t.Fatal("attack provoked no view change")
				}
				if len(res.Phases) != 2 {
					t.Fatalf("want baseline+attack phases, got %+v", res.Phases)
				}
				if att := res.Phases[1]; att.Confirmed == 0 {
					t.Fatalf("no confirmations after attack onset: %+v", res.Phases)
				}
			})
		}
	}
}

// TestViewChangeStormSafetyWAN is the paper-shaped stress cell: a
// view-change storm mutes f leaders at once on a 10-replica WAN cluster.
// Safety must hold across the storm and throughput must come back once the
// storm's view changes rotate the muted leaders out.
func TestViewChangeStormSafetyWAN(t *testing.T) {
	res, delivered := runAttackPreset(t, scenario.ViewChangeStorm, 10, cluster.WAN, 1)
	requireSlotAgreement(t, delivered)
	if res.ViewChanges == 0 {
		t.Fatal("storm provoked no view change")
	}
	if att := res.Phases[len(res.Phases)-1]; att.Confirmed == 0 {
		t.Fatalf("cluster never recovered from the storm: %+v", res.Phases)
	}
}

// TestAttackPresetVictimsAreLeaderRoles pins the preset generator's
// contract: victims never include replica 0 (the metrics observer) and the
// storm attacks exactly f replicas.
func TestAttackPresetVictimsAreLeaderRoles(t *testing.T) {
	const n, f = 10, 3
	for _, preset := range scenario.AttackNames() {
		scn, err := scenario.Preset(preset, n, 10*time.Second, 7)
		if err != nil {
			t.Fatal(err)
		}
		victims := victimsOf(scn)
		if victims[0] {
			t.Fatalf("%s: replica 0 picked as victim", preset)
		}
		want := 1
		if preset == scenario.ViewChangeStorm {
			want = f
		}
		if len(victims) != want {
			t.Fatalf("%s: %d victims, want %d", preset, len(victims), want)
		}
	}
}

// newTestClusterSeed is newTestCluster with an explicit simulation seed so
// property tests explore different jitter schedules.
func newTestClusterSeed(t *testing.T, n int, mode core.Mode, genesis func(*ledger.Store), mutate func(i int, cfg *core.Config), seed int64) *testCluster {
	t.Helper()
	c := &testCluster{sim: simnet.New(seed)}
	c.nw = simnet.NewNetwork(c.sim, n, simnet.NewWAN())
	c.results = make([]map[types.TxID]bool, n)
	for i := 0; i < n; i++ {
		i := i
		c.results[i] = make(map[types.TxID]bool)
		cfg := core.Config{
			N: n, F: (n - 1) / 3, ID: i, M: n,
			Mode:         mode,
			BatchSize:    8,
			BatchTimeout: 50 * time.Millisecond,
			ViewTimeout:  5 * time.Second,
			EpochLen:     16,
			Genesis:      genesis,
			OnConfirm: func(tx *types.Transaction, success bool, at simnet.Time) {
				c.results[i][tx.ID()] = success
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		c.replicas = append(c.replicas, core.NewReplica(cfg, simnet.On(c.sim, i), c.nw))
	}
	for _, r := range c.replicas {
		r.Start()
	}
	return c
}
