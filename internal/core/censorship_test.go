package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/partition"
	"repro/internal/types"
)

// TestCensorshipDetectionReplacesLeader injects a Byzantine leader that
// silently skips one victim transaction while proposing everything else.
// The censorship detector (bucket aging, Sec. V-B) must trigger a view
// change on that instance, after which the new honest leader proposes the
// victim transaction and it confirms everywhere.
func TestCensorshipDetectionReplacesLeader(t *testing.T) {
	victim := types.NewPayment("alice", "bob", 5, 999)
	victimID := victim.ID()
	victimBucket := partition.Assign("alice", 4)

	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("alice", "bob", "carol"), func(i int, cfg *core.Config) {
		cfg.CensorshipBlocks = 8
		cfg.ViewTimeout = 500 * time.Millisecond
		if i == victimBucket {
			// The instance leader censors the victim transaction.
			cfg.Censor = func(tx *types.Transaction) bool { return tx.ID() == victimID }
		}
	})

	c.submit(victim)
	// Background traffic in the same bucket keeps the censoring leader
	// delivering blocks, aging the victim transaction.
	for i := 0; i < 30; i++ {
		c.submit(types.NewPayment("alice", "carol", 1, uint64(i)))
	}
	c.run(20 * time.Second)

	c.requireOutcome(t, victim, true)
	c.requireConsistent(t)
	// The censored instance must have advanced past view 0.
	if v := c.replicas[0].SBs()[victimBucket].View(); v == 0 {
		t.Fatal("censoring leader was never replaced")
	}
}

// TestNoSpuriousViewChangeWithoutCensorship runs the same traffic with an
// honest leader: the detector must stay quiet.
func TestNoSpuriousViewChangeWithoutCensorship(t *testing.T) {
	c := newTestCluster(t, 4, core.OrthrusMode(), genesisRich("alice", "bob", "carol"), func(i int, cfg *core.Config) {
		cfg.CensorshipBlocks = 8
		cfg.ViewTimeout = 500 * time.Millisecond
	})
	for i := 0; i < 30; i++ {
		c.submit(types.NewPayment("alice", "carol", 1, uint64(i)))
	}
	c.run(15 * time.Second)
	for inst, sb := range c.replicas[0].SBs() {
		if v := sb.View(); v != 0 {
			t.Fatalf("instance %d advanced to view %d without faults", inst, v)
		}
	}
	c.requireConsistent(t)
}

// TestInfeasibleTxDoesNotTriggerComplaint: an underfunded transaction ages
// in the bucket but must not cause leader replacement — the leader is
// excused because the transaction is not feasible.
func TestInfeasibleTxDoesNotTriggerComplaint(t *testing.T) {
	c := newTestCluster(t, 4, core.OrthrusMode(), func(st *ledger.Store) {
		st.Credit("alice", 100)
		st.Credit("poor", 1)
	}, func(i int, cfg *core.Config) {
		cfg.CensorshipBlocks = 8
		cfg.ViewTimeout = 500 * time.Millisecond
	})
	// Underfunded: poor has 1, tries to pay 50.
	bad := types.NewPayment("poor", "bob", 50, 1)
	c.submit(bad)
	for i := 0; i < 30; i++ {
		c.submit(types.NewPayment("alice", "bob", 1, uint64(i)))
	}
	c.run(15 * time.Second)
	for inst, sb := range c.replicas[0].SBs() {
		if v := sb.View(); v != 0 {
			t.Fatalf("instance %d view-changed over an infeasible tx", inst)
		}
	}
	if _, ok := c.results[0][bad.ID()]; ok {
		t.Fatal("underfunded tx somehow confirmed")
	}
}
