package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/workload"
)

// blockKey identifies one committed block slot for cross-validation.
type blockKey struct {
	Instance int
	SN       uint64
}

// digestLog is one replica's committed tx-carrying blocks.
type digestLog map[blockKey]types.BlockID

// newXvalSource builds a fresh deterministic workload source; each
// backend regenerates the scripted transactions from the same seed so the
// two runs never share mutable transaction objects.
func newXvalSource() workload.Source {
	return workload.New(workload.Config{
		Accounts:        64,
		PaymentFraction: 1,
		Seed:            7,
	})
}

const (
	xvalN   = 4
	xvalTxs = 200
)

// runSimDigests commits the scripted workload on the simulated network
// and returns each replica's committed tx-carrying block digests. All
// transactions are submitted to every replica before the run starts, so
// batch assembly order is the submission order on both backends.
func runSimDigests(t *testing.T, mode core.Mode) []digestLog {
	t.Helper()
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, xvalN, simnet.NewLAN())
	gen := newXvalSource()
	genesis := gen.Genesis()
	logs := make([]digestLog, xvalN)
	replicas := make([]*core.Replica, xvalN)
	for i := 0; i < xvalN; i++ {
		i := i
		logs[i] = digestLog{}
		ccfg := core.Config{
			N: xvalN, F: 1, ID: i, M: xvalN,
			Mode:         mode,
			BatchSize:    4096,
			BatchTimeout: 100 * time.Millisecond,
			ViewTimeout:  10 * time.Second,
			TxSize:       500,
			EpochLen:     32,
			Genesis:      genesis,
			OnBlockDeliver: func(instance int, b *types.Block) {
				if len(b.Txs) > 0 {
					logs[i][blockKey{instance, b.SN}] = b.Digest()
				}
			},
		}
		replicas[i] = core.NewReplica(ccfg, simnet.On(sim, i), nw)
	}
	for k := 0; k < xvalTxs; k++ {
		tx := gen.Next()
		for _, r := range replicas {
			if err := r.SubmitTx(tx); err != nil {
				t.Fatalf("sim SubmitTx: %v", err)
			}
		}
	}
	for _, r := range replicas {
		r.Start()
	}
	sim.Run(simnet.Time(2 * time.Second))
	return logs
}

// runRealDigests commits the same scripted workload over the in-process
// real transport and returns the same per-replica digest logs. `want`
// (from the sim run) tells the poll loop when every replica has seen all
// cross-validated blocks, so the test ends as soon as consensus does.
func runRealDigests(t *testing.T, mode core.Mode, want digestLog) []digestLog {
	t.Helper()
	proc := transport.NewProc(xvalN)
	gen := newXvalSource()
	genesis := gen.Genesis()
	var mu sync.Mutex
	logs := make([]digestLog, xvalN)
	replicas := make([]*core.Replica, xvalN)
	for i := 0; i < xvalN; i++ {
		i := i
		logs[i] = digestLog{}
		ccfg := core.Config{
			N: xvalN, F: 1, ID: i, M: xvalN,
			Mode:         mode,
			BatchSize:    4096,
			BatchTimeout: 100 * time.Millisecond,
			ViewTimeout:  10 * time.Second,
			TxSize:       500,
			EpochLen:     32,
			Genesis:      genesis,
			OnBlockDeliver: func(instance int, b *types.Block) {
				if len(b.Txs) > 0 {
					mu.Lock()
					logs[i][blockKey{instance, b.SN}] = b.Digest()
					mu.Unlock()
				}
			},
		}
		replicas[i] = core.NewReplica(ccfg, proc.Node(i).Sim(), proc)
	}
	// Pre-start submission on this goroutine, in generation order: every
	// replica's buckets hold the transactions in the identical sequence
	// the sim run used. The content-digest memoization is warmed first so
	// the shared *Transaction values are strictly read-only once the
	// replica goroutines exist.
	for k := 0; k < xvalTxs; k++ {
		tx := gen.Next()
		tx.ID()
		for _, r := range replicas {
			if err := r.SubmitTx(tx); err != nil {
				t.Fatalf("real SubmitTx: %v", err)
			}
		}
	}
	for _, r := range replicas {
		r.Start()
	}
	proc.Start(time.Now())
	defer proc.Stop()

	covered := func() bool {
		mu.Lock()
		defer mu.Unlock()
		for i := range logs {
			for k := range want {
				if _, ok := logs[i][k]; !ok {
					return false
				}
			}
		}
		return true
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && !covered() {
		time.Sleep(5 * time.Millisecond)
	}
	proc.Stop()
	return logs
}

// TestCrossValidationDigests pins the tentpole property: the same seeded
// workload committed on the simulated network and on the in-process real
// transport produces identical block digests per (instance, sequence) at
// every replica, for all three protocols. Only transaction-carrying
// blocks are compared: the digests of empty heartbeat blocks cover the
// proposer's delivered-state vector and rank, which under real wall-clock
// scheduling depend on measured message interleaving rather than the
// modeled schedule. Tx-carrying first blocks are interleaving-independent
// (their proposals causally precede every delivery), so their digests —
// covering instance, sequence, rank, state vector, and the ordered
// transaction IDs — must agree bit for bit.
func TestCrossValidationDigests(t *testing.T) {
	modes := []core.Mode{core.OrthrusMode(), baseline.ISSMode(), baseline.LadonMode()}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.Name, func(t *testing.T) {
			t.Parallel()
			simLogs := runSimDigests(t, mode)
			want := simLogs[0]
			if len(want) == 0 {
				t.Fatal("sim run committed no tx-carrying blocks")
			}
			// All sim replicas agree with replica 0 (sanity: agreement).
			for i, l := range simLogs {
				for k, d := range want {
					if got, ok := l[k]; !ok || got != d {
						t.Fatalf("sim replica %d diverges at %+v", i, k)
					}
				}
			}
			realLogs := runRealDigests(t, mode, want)
			for i, l := range realLogs {
				for k, d := range want {
					got, ok := l[k]
					if !ok {
						t.Fatalf("real replica %d never committed block %+v", i, k)
					}
					if got != d {
						t.Errorf("real replica %d block %+v digest %s != sim %s", i, k, got, d)
					}
				}
			}
		})
	}
}

// TestRunRealSmoke pins the measurement harness end to end: a short real
// run confirms transactions, reports throughput and latency, counts only
// protocol traffic, and converges replica state.
func TestRunRealSmoke(t *testing.T) {
	res := RunReal(Config{
		N:            4,
		Protocol:     core.OrthrusMode(),
		Net:          LAN,
		LoadTPS:      400,
		Duration:     1200 * time.Millisecond,
		Warmup:       400 * time.Millisecond,
		Drain:        8 * time.Second,
		BatchTimeout: 50 * time.Millisecond,
		Workload:     workload.Config{Accounts: 64, PaymentFraction: 1, Seed: 3},
		CaptureState: true,
	})
	if res.Kernel != KernelReal {
		t.Fatalf("Kernel = %q, want %q", res.Kernel, KernelReal)
	}
	if res.Submitted == 0 || res.Confirmed == 0 {
		t.Fatalf("no progress: submitted=%d confirmed=%d", res.Submitted, res.Confirmed)
	}
	if res.ThroughputTPS <= 0 {
		t.Fatalf("ThroughputTPS = %v", res.ThroughputTPS)
	}
	if res.Latency.Count() == 0 || res.Latency.Mean() <= 0 {
		t.Fatalf("latency not measured: %s", res.Latency.String())
	}
	if res.Messages == 0 {
		t.Fatal("no protocol messages counted")
	}
	if !res.Converged {
		t.Fatal("replica states diverged")
	}
}

// TestRunRealRejectsSimOnlyKnobs pins the harness's refusal to silently
// ignore simulation-only configuration.
func TestRunRealRejectsSimOnlyKnobs(t *testing.T) {
	cases := map[string]Config{
		"analytic":  {N: 4, Protocol: core.OrthrusMode(), AnalyticSB: true},
		"nic":       {N: 4, Protocol: core.OrthrusMode(), NIC: true},
		"straggler": {N: 4, Protocol: core.OrthrusMode(), Stragglers: 1},
		"crash":     {N: 4, Protocol: core.OrthrusMode(), DetectableFaults: 1},
		"byzantine": {N: 4, Protocol: core.OrthrusMode(), UndetectableFaults: 1},
		"parallel":  {N: 4, Protocol: core.OrthrusMode(), Kernel: KernelParallel},
	}
	for name, cfg := range cases {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("RunReal accepted a simulation-only knob")
				}
			}()
			RunReal(cfg)
		})
	}
}
