package cluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
)

// Cluster-level kernel-differential suite: for every supported
// configuration family, a run on the conservative parallel kernel must
// produce a Result bit-identical to the serial reference — throughput,
// the full latency distribution, series bins, breakdown, counters, view
// changes, event totals and message counts — and the streaming observer
// hooks must fire with identical payloads in identical order.

// obsLog captures every observer callback a run makes, in order.
type obsLog struct {
	confirms []string
	windows  []WindowStat
	phases   []PhaseWindow
	blocks   []string
}

// observe wires the capturing hooks onto cfg.
func (o *obsLog) observe(cfg *Config, blocks bool) {
	cfg.OnConfirm = func(tx *types.Transaction, success bool, reply simnet.Time) {
		o.confirms = append(o.confirms, fmt.Sprintf("%s %v %d", tx.ID(), success, reply))
	}
	cfg.OnWindow = func(w WindowStat) { o.windows = append(o.windows, w) }
	if cfg.Scenario != nil {
		cfg.OnPhase = func(p PhaseWindow) { o.phases = append(o.phases, p) }
	}
	if blocks {
		cfg.OnBlockDeliver = func(replica, instance int, b *types.Block) {
			o.blocks = append(o.blocks, fmt.Sprintf("%d %d %d %x", replica, instance, b.SN, b.Digest()))
		}
	}
}

// diffResults fails on the first field where the two runs diverge.
func diffResults(t *testing.T, label string, serial, parallel *Result, so, po *obsLog) {
	t.Helper()
	if serial.Submitted != parallel.Submitted || serial.Confirmed != parallel.Confirmed ||
		serial.Aborted != parallel.Aborted {
		t.Fatalf("%s: counters diverged: serial (%d,%d,%d) parallel (%d,%d,%d)", label,
			serial.Submitted, serial.Confirmed, serial.Aborted,
			parallel.Submitted, parallel.Confirmed, parallel.Aborted)
	}
	if serial.ThroughputTPS != parallel.ThroughputTPS {
		t.Fatalf("%s: throughput diverged: %v vs %v", label, serial.ThroughputTPS, parallel.ThroughputTPS)
	}
	if !reflect.DeepEqual(serial.Latency, parallel.Latency) {
		t.Fatalf("%s: latency distribution diverged: %s vs %s", label,
			serial.Latency.String(), parallel.Latency.String())
	}
	if !reflect.DeepEqual(serial.Series, parallel.Series) {
		t.Fatalf("%s: time series diverged", label)
	}
	if !reflect.DeepEqual(serial.Breakdown, parallel.Breakdown) {
		t.Fatalf("%s: stage breakdown diverged", label)
	}
	if !reflect.DeepEqual(serial.Phases, parallel.Phases) {
		t.Fatalf("%s: phase windows diverged:\nserial   %+v\nparallel %+v", label, serial.Phases, parallel.Phases)
	}
	if serial.ViewChanges != parallel.ViewChanges {
		t.Fatalf("%s: view changes diverged: %d vs %d", label, serial.ViewChanges, parallel.ViewChanges)
	}
	if serial.Events != parallel.Events {
		t.Fatalf("%s: event totals diverged: %d vs %d", label, serial.Events, parallel.Events)
	}
	if serial.Messages != parallel.Messages {
		t.Fatalf("%s: message counts diverged: %d vs %d", label, serial.Messages, parallel.Messages)
	}
	if serial.Halted != parallel.Halted {
		t.Fatalf("%s: halt state diverged", label)
	}
	if so != nil {
		if !reflect.DeepEqual(so.confirms, po.confirms) {
			i := 0
			for ; i < len(so.confirms) && i < len(po.confirms) && so.confirms[i] == po.confirms[i]; i++ {
			}
			t.Fatalf("%s: confirm stream diverged at %d (lens %d/%d)", label, i, len(so.confirms), len(po.confirms))
		}
		if !reflect.DeepEqual(so.windows, po.windows) {
			t.Fatalf("%s: window stream diverged", label)
		}
		if !reflect.DeepEqual(so.phases, po.phases) {
			t.Fatalf("%s: phase stream diverged", label)
		}
		if !reflect.DeepEqual(so.blocks, po.blocks) {
			i := 0
			for ; i < len(so.blocks) && i < len(po.blocks) && so.blocks[i] == po.blocks[i]; i++ {
			}
			t.Fatalf("%s: block-delivery stream diverged at %d (lens %d/%d)", label, i, len(so.blocks), len(po.blocks))
		}
	}
}

// diffCfg is a short differential workload: heavy enough to cross shard
// boundaries constantly, short enough for the CI budget.
func diffCfg(net NetProfile, seed int64) Config {
	return Config{
		N:            8,
		Protocol:     core.OrthrusMode(),
		Net:          net,
		Workload:     workload.Config{Accounts: 150, Seed: seed},
		LoadTPS:      300,
		Duration:     2 * time.Second,
		Warmup:       500 * time.Millisecond,
		Drain:        3 * time.Second,
		BatchSize:    32,
		BatchTimeout: 40 * time.Millisecond,
		EpochLen:     16,
		ViewTimeout:  2 * time.Second,
		Seed:         seed,
	}
}

// runBoth executes cfg on both kernels with full observer capture and
// returns everything for comparison. Workers is fixed rather than
// GOMAXPROCS so the shard plan is machine-independent.
func runBoth(cfg Config, workers int, blocks bool) (sr, pr *Result, so, po *obsLog) {
	scfg := cfg
	so = &obsLog{}
	so.observe(&scfg, blocks)
	sr = Run(scfg)

	pcfg := cfg
	pcfg.Kernel = KernelParallel
	pcfg.Workers = workers
	po = &obsLog{}
	po.observe(&pcfg, blocks)
	pr = Run(pcfg)
	if pr.Shards < 2 {
		panic(fmt.Sprintf("parallel run fell back to serial (%d shards); the differential is vacuous", pr.Shards))
	}
	return
}

// TestKernelDifferentialBaseline pins the fault-free families on both
// network profiles across seeds and worker counts.
func TestKernelDifferentialBaseline(t *testing.T) {
	for _, net := range []NetProfile{WAN, LAN} {
		for seed := int64(1); seed <= 2; seed++ {
			cfg := diffCfg(net, seed)
			for _, workers := range []int{2, 4} {
				sr, pr, so, po := runBoth(cfg, workers, true)
				diffResults(t, fmt.Sprintf("%v seed=%d workers=%d", net, seed, workers), sr, pr, so, po)
			}
		}
	}
}

// TestKernelDifferentialStragglers pins the straggler family (slowdowns
// only — speed-ups are serial-only): outgoing-delay scaling and pulse
// scaling must not perturb equivalence.
func TestKernelDifferentialStragglers(t *testing.T) {
	cfg := diffCfg(WAN, 3)
	cfg.Stragglers = 2
	cfg.StragglerFactor = 10
	sr, pr, so, po := runBoth(cfg, 4, false)
	diffResults(t, "stragglers", sr, pr, so, po)
}

// TestKernelDifferentialFaults pins the crash (detectable) and Byzantine
// (undetectable) families, including view-change accounting.
func TestKernelDifferentialFaults(t *testing.T) {
	cfg := diffCfg(WAN, 4)
	cfg.DetectableFaults = 1
	cfg.FaultAt = 800 * time.Millisecond
	cfg.ViewTimeout = 1 * time.Second
	sr, pr, so, po := runBoth(cfg, 4, false)
	if sr.ViewChanges == 0 {
		t.Fatal("fault scenario drove no view changes; the differential is vacuous")
	}
	diffResults(t, "crash", sr, pr, so, po)

	cfg = diffCfg(LAN, 5)
	cfg.UndetectableFaults = 1
	sr, pr, so, po = runBoth(cfg, 3, false)
	diffResults(t, "byzantine", sr, pr, so, po)
}

// TestKernelDifferentialScenario pins the scenario family: mid-run
// crash/recover, a partition that heals, a load surge and a moving
// straggler, with per-phase windows and streaming phase emission.
func TestKernelDifferentialScenario(t *testing.T) {
	scn := scenario.New("diff-scn").
		CrashAt(600*time.Millisecond, 7).
		RecoverAt(1200*time.Millisecond, 7).
		PartitionAt(1400*time.Millisecond, []int{0, 1, 2, 3, 4, 5}, []int{6, 7}).
		HealAt(1700*time.Millisecond).
		LoadSurgeAt(900*time.Millisecond, 2).
		StraggleAt(1100*time.Millisecond, 5, 6).
		StraggleAt(1600*time.Millisecond, 1, 6).
		Build()
	cfg := diffCfg(WAN, 6)
	cfg.Scenario = scn
	cfg.CensorshipBlocks = 16
	sr, pr, so, po := runBoth(cfg, 4, false)
	if len(sr.Phases) == 0 {
		t.Fatal("scenario produced no phase windows")
	}
	diffResults(t, "scenario", sr, pr, so, po)
}

// TestKernelDifferentialStateTransferGC pins the long-horizon machinery on
// both kernels: with checkpoint GC and state transfer enabled and a victim
// crashing and recovering mid-run, the catch-up traffic, the GC points and
// every downstream measurement must stay bit-identical — collection and
// repair both happen inside deterministic event handlers, so the parallel
// kernel must replay them exactly.
func TestKernelDifferentialStateTransferGC(t *testing.T) {
	scn := scenario.New("st-churn").
		CrashAt(600*time.Millisecond, 7).
		RecoverAt(700*time.Millisecond, 7). // within the one-epoch archive hysteresis (4 x 40 ms)
		Build()
	cfg := diffCfg(WAN, 9)
	cfg.Scenario = scn
	cfg.StateTransfer = true
	cfg.EpochLen = 4
	sr, pr, so, po := runBoth(cfg, 4, true)
	if sr.StateTransferApplied == 0 {
		t.Fatal("no catch-up blocks applied; the state-transfer differential is vacuous")
	}
	if sr.StateTransferApplied != pr.StateTransferApplied {
		t.Fatalf("catch-up accounting diverged: serial %d parallel %d",
			sr.StateTransferApplied, pr.StateTransferApplied)
	}
	diffResults(t, "state-transfer", sr, pr, so, po)
}

// TestKernelDifferentialHalt pins early cancellation: both kernels must
// stop at the same virtual window with identical partial measurements.
func TestKernelDifferentialHalt(t *testing.T) {
	cfg := diffCfg(WAN, 7)
	windows := 0
	cfg.Halt = func() bool { windows++; return windows > 3 }
	so := &obsLog{}
	so.observe(&cfg, false)
	sr := Run(cfg)

	pcfg := diffCfg(WAN, 7)
	pwindows := 0
	pcfg.Halt = func() bool { pwindows++; return pwindows > 3 }
	pcfg.Kernel = KernelParallel
	pcfg.Workers = 4
	po := &obsLog{}
	po.observe(&pcfg, false)
	pr := Run(pcfg)

	if !sr.Halted {
		t.Fatal("serial run did not halt")
	}
	diffResults(t, "halt", sr, pr, so, po)
}

// TestKernelDifferentialProtocols sweeps every registered protocol mode
// through a short run on both kernels: the equivalence must hold for
// every global-ordering flavor, not just Orthrus.
func TestKernelDifferentialProtocols(t *testing.T) {
	for _, mode := range baseline.AllModes() {
		mode := mode
		t.Run(mode.Name, func(t *testing.T) {
			cfg := diffCfg(LAN, 11)
			cfg.Protocol = mode
			cfg.Duration = 1500 * time.Millisecond
			cfg.Drain = 2 * time.Second
			sr, pr, so, po := runBoth(cfg, 4, false)
			diffResults(t, mode.Name, sr, pr, so, po)
		})
	}
}

// TestKernelParallelStateConverges sanity-checks CaptureState under the
// parallel kernel: all replicas' ledgers agree and match the serial run.
func TestKernelParallelStateConverges(t *testing.T) {
	cfg := diffCfg(LAN, 13)
	cfg.CaptureState = true
	sr, pr, _, _ := runBoth(cfg, 4, false)
	if !sr.Converged || !pr.Converged {
		t.Fatalf("state divergence: serial=%v parallel=%v", sr.Converged, pr.Converged)
	}
	if !pr.State.Snapshot().Equal(sr.State.Snapshot()) {
		t.Fatal("serial and parallel final ledgers differ")
	}
}

// TestKernelParallelValidation pins the serial-only rejections.
func TestKernelParallelValidation(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		Run(cfg)
	}
	base := diffCfg(WAN, 1)
	base.Kernel = KernelParallel

	cfg := base
	cfg.AnalyticSB = true
	mustPanic("analytic", cfg)

	cfg = base
	cfg.NIC = true
	mustPanic("nic", cfg)

	cfg = base
	cfg.Stragglers = 1
	cfg.StragglerFactor = 0.5
	mustPanic("speedup", cfg)

	cfg = base
	cfg.Scenario = scenario.New("fast").StraggleAt(time.Second, 0.5, 1).Build()
	mustPanic("scenario-speedup", cfg)
}

// TestKernelFallbackSerial pins the graceful fallback: configurations the
// planner cannot shard usefully (a single worker) run serially and still
// produce the identical result.
func TestKernelFallbackSerial(t *testing.T) {
	cfg := diffCfg(LAN, 17)
	sr := Run(cfg)
	cfg.Kernel = KernelParallel
	cfg.Workers = 1
	pr := Run(cfg)
	diffResults(t, "fallback", sr, pr, nil, nil)
}
