package cluster

import (
	"time"

	"repro/internal/scenario"
	"repro/internal/simnet"
)

// phaseTracker bins client-visible confirmations into the measurement
// windows a scenario induces. Every window is half-open: a confirmation
// whose reply lands exactly on a phase boundary belongs to the window the
// boundary opens, never the one it closes — including boundaries that
// coincide with a 0.5 s series-bin edge, where the streamed OnPhase
// emission and the final Result.Phases must agree (the regression tests in
// phase_test.go pin this). The final window owns every reply from its
// Start on; replies landing after the nominal end of the run raise its End
// at finalization so the reported rate stays Confirmed / (End - Start)
// over a span that actually contains the confirmations it counts.
//
// The tracker's buffers are allocated once per run and reused across a
// halted run's re-binning pass; recording a confirmation allocates
// nothing.
type phaseTracker struct {
	windows []PhaseWindow
	lat     []time.Duration // per-window client-latency sums
	emitted []bool          // streamed mid-run by OnPhase
	skipped []bool          // halted before the window opened; never emitted
	maxEnd  simnet.Time     // latest reply recorded in the final window
}

// newPhaseTracker derives the nominal windows from the scenario's event
// times: one window per phase, closed by the next phase's start or the end
// of the run. Events at or past runEnd collapse to zero-width windows;
// zero-width windows never own a reply (indexOf's last-wins rule), so
// their counts stay zero by construction.
func newPhaseTracker(scn *scenario.Scenario, runEnd time.Duration) *phaseTracker {
	ps := scn.Phases()
	pt := &phaseTracker{
		windows: make([]PhaseWindow, len(ps)),
		lat:     make([]time.Duration, len(ps)),
		emitted: make([]bool, len(ps)),
		skipped: make([]bool, len(ps)),
	}
	for i, p := range ps {
		end := runEnd
		if i+1 < len(ps) && ps[i+1].Start < end {
			end = ps[i+1].Start
		}
		start := p.Start
		if start > end {
			start = end
		}
		pt.windows[i] = PhaseWindow{Label: p.Label, Start: start, End: end}
	}
	return pt
}

// indexOf returns the window owning a reply at virtual time at: the last
// window whose Start is <= at. Equal-Start windows resolve to the latest,
// which keeps zero-width windows (scenario events at or past the end of
// the run) empty, and a reply exactly on a boundary goes to the window the
// boundary opens — the half-open rule.
func (pt *phaseTracker) indexOf(at simnet.Time) int {
	idx := 0
	for i := 1; i < len(pt.windows); i++ {
		if simnet.Time(pt.windows[i].Start) <= at {
			idx = i
		}
	}
	return idx
}

// record bins one confirmation by its client-visible reply time.
func (pt *phaseTracker) record(reply simnet.Time, lat time.Duration) {
	i := pt.indexOf(reply)
	pt.windows[i].Confirmed++
	pt.lat[i] += lat
	if i == len(pt.windows)-1 && reply > pt.maxEnd {
		pt.maxEnd = reply
	}
}

// reset clears the recorded counts, keeping the window bounds; a halted
// run re-bins from the surviving confirmations.
func (pt *phaseTracker) reset() {
	for i := range pt.windows {
		pt.windows[i].Confirmed = 0
		pt.lat[i] = 0
	}
	pt.maxEnd = 0
}

// stat reads window i's accumulators into a finished PhaseWindow. A window
// is final once virtual time reaches its End: replies are recorded before
// they land, and a reply exactly at End belongs to the next window, so
// nothing can join a closed window.
func (pt *phaseTracker) stat(i int) PhaseWindow {
	p := pt.windows[i]
	if winLen := (p.End - p.Start).Seconds(); winLen > 0 {
		p.ThroughputTPS = float64(p.Confirmed) / winLen
	}
	if p.Confirmed > 0 {
		p.MeanLatency = pt.lat[i] / time.Duration(p.Confirmed)
	}
	return p
}

// finalize computes every window's rates and returns the finished slice.
// The final window's End is raised just past its last recorded reply when
// confirmations outlast the nominal end of the run, preserving the
// half-open invariant. On a halted run, windows are clamped to the elapsed
// virtual time — phases the halt preempted entirely are marked skipped so
// the caller never emits them — and the caller must have re-binned (reset
// + record) only the replies that landed before the stop.
func (pt *phaseTracker) finalize(elapsed time.Duration, halted bool) []PhaseWindow {
	last := len(pt.windows) - 1
	if last >= 0 && !halted && time.Duration(pt.maxEnd) >= pt.windows[last].End {
		pt.windows[last].End = time.Duration(pt.maxEnd) + time.Nanosecond
	}
	out := make([]PhaseWindow, len(pt.windows))
	for i := range pt.windows {
		if halted {
			if pt.windows[i].Start >= elapsed {
				pt.skipped[i] = true
			}
			if pt.windows[i].Start > elapsed {
				pt.windows[i].Start = elapsed
			}
			if pt.windows[i].End > elapsed {
				pt.windows[i].End = elapsed
			}
		}
		out[i] = pt.stat(i)
	}
	return out
}
