package cluster

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/types"
	"repro/internal/workload"
)

func smallCfg(mode core.Mode) Config {
	return Config{
		N:            4,
		Protocol:     mode,
		Net:          LAN,
		Workload:     workload.Config{Accounts: 200, Seed: 1},
		LoadTPS:      400,
		Duration:     4 * time.Second,
		Warmup:       1 * time.Second,
		Drain:        6 * time.Second,
		BatchSize:    64,
		BatchTimeout: 50 * time.Millisecond,
		EpochLen:     16,
		ViewTimeout:  2 * time.Second,
		Seed:         7,
	}
}

func TestRunOrthrusSmall(t *testing.T) {
	res := Run(smallCfg(core.OrthrusMode()))
	if res.Submitted == 0 {
		t.Fatal("nothing submitted")
	}
	if res.Confirmed == 0 {
		t.Fatalf("nothing confirmed of %d submitted", res.Submitted)
	}
	if res.ThroughputTPS <= 0 {
		t.Fatal("zero throughput")
	}
	if res.Latency.Count() == 0 || res.Latency.Mean() <= 0 {
		t.Fatal("no latency samples")
	}
	// Nearly everything should confirm by the end of the drain.
	if float64(res.Latency.Count()) < 0.9*float64(res.Submitted) {
		t.Fatalf("only %d of %d txs reached f+1 replies", res.Latency.Count(), res.Submitted)
	}
	if res.Aborted > res.Submitted/20 {
		t.Fatalf("%d aborts of %d", res.Aborted, res.Submitted)
	}
}

func TestRunEveryProtocolSmall(t *testing.T) {
	for _, mode := range baseline.AllModes() {
		mode := mode
		t.Run(mode.Name, func(t *testing.T) {
			res := Run(smallCfg(mode))
			if res.Confirmed == 0 {
				t.Fatalf("%s confirmed nothing (submitted %d)", mode.Name, res.Submitted)
			}
		})
	}
}

func TestRunAnalyticSBSmall(t *testing.T) {
	cfg := smallCfg(core.OrthrusMode())
	cfg.AnalyticSB = true
	res := Run(cfg)
	if res.Confirmed == 0 {
		t.Fatal("analytic SB run confirmed nothing")
	}
}

func TestAnalyticVsMessageLevelAgreeOnLatencyScale(t *testing.T) {
	// The analytic SB should produce latency within ~2x of message-level
	// PBFT under identical (jitter-free comparison is inside package sb;
	// here we check end-to-end scale).
	base := smallCfg(core.OrthrusMode())
	base.Net = WAN
	base.LoadTPS = 200
	msg := Run(base)
	ana := base
	ana.AnalyticSB = true
	anaRes := Run(ana)
	if msg.Latency.Count() == 0 || anaRes.Latency.Count() == 0 {
		t.Fatal("missing samples")
	}
	lo, hi := msg.Latency.Mean()/2, msg.Latency.Mean()*2
	if anaRes.Latency.Mean() < lo || anaRes.Latency.Mean() > hi {
		t.Fatalf("analytic mean %v outside [%v, %v] of message-level %v",
			anaRes.Latency.Mean(), lo, hi, msg.Latency.Mean())
	}
}

func TestStragglerHurtsISSMoreThanOrthrus(t *testing.T) {
	// The paper's core claim at miniature scale: with one straggler, a
	// pre-determined protocol's latency inflates far more than Orthrus's.
	mk := func(mode core.Mode) Config {
		cfg := smallCfg(mode)
		cfg.Net = WAN
		cfg.Stragglers = 1
		cfg.LoadTPS = 200
		cfg.Duration = 6 * time.Second
		cfg.Drain = 30 * time.Second
		return cfg
	}
	orthrus := Run(mk(core.OrthrusMode()))
	iss := Run(mk(baseline.ISSMode()))
	if orthrus.Latency.Count() == 0 || iss.Latency.Count() == 0 {
		t.Fatal("missing samples")
	}
	if orthrus.Latency.Mean() >= iss.Latency.Mean() {
		t.Fatalf("Orthrus mean %v not below ISS mean %v under straggler",
			orthrus.Latency.Mean(), iss.Latency.Mean())
	}
}

func TestDetectableFaultTriggersViewChangeAndRecovers(t *testing.T) {
	cfg := smallCfg(core.OrthrusMode())
	cfg.N = 4
	cfg.DetectableFaults = 1
	cfg.FaultAt = 2 * time.Second
	cfg.Duration = 8 * time.Second
	cfg.Drain = 10 * time.Second
	cfg.ViewTimeout = 1 * time.Second
	res := Run(cfg)
	if res.ViewChanges == 0 {
		t.Fatal("no view change observed after crash fault")
	}
	if res.Confirmed == 0 {
		t.Fatal("system did not recover to confirm transactions")
	}
}

func TestUndetectableFaultsStillLive(t *testing.T) {
	cfg := smallCfg(core.OrthrusMode())
	cfg.UndetectableFaults = 1
	res := Run(cfg)
	if res.Confirmed == 0 {
		t.Fatal("no confirmations with one mute replica")
	}
	if res.ViewChanges != 0 {
		t.Fatalf("undetectable fault caused %d view changes", res.ViewChanges)
	}
}

func TestBreakdownStagesPopulated(t *testing.T) {
	res := Run(smallCfg(core.OrthrusMode()))
	if res.Breakdown.Total() <= 0 {
		t.Fatal("empty breakdown")
	}
}

func TestDeterministicResults(t *testing.T) {
	a := Run(smallCfg(core.OrthrusMode()))
	b := Run(smallCfg(core.OrthrusMode()))
	if a.Confirmed != b.Confirmed || a.Latency.Mean() != b.Latency.Mean() {
		t.Fatalf("nondeterministic: %d/%v vs %d/%v",
			a.Confirmed, a.Latency.Mean(), b.Confirmed, b.Latency.Mean())
	}
}

func TestNICModelRun(t *testing.T) {
	cfg := smallCfg(core.OrthrusMode())
	cfg.NIC = true
	res := Run(cfg)
	if res.Confirmed == 0 {
		t.Fatal("NIC-model run confirmed nothing")
	}
}

func TestConfigLabel(t *testing.T) {
	cfg := Config{N: 16, Protocol: core.OrthrusMode(), Net: WAN}
	if got := cfg.Label(); got != "Orthrus/WAN/n=16" {
		t.Fatalf("plain label %q", got)
	}
	cfg.Stragglers = 1
	cfg.UndetectableFaults = 2
	cfg.Workload.PaymentFraction = 0.46
	got := cfg.Label()
	want := "Orthrus/WAN/n=16/straggler=1/byz=2/pay=0.46"
	if got != want {
		t.Fatalf("label %q, want %q", got, want)
	}
	cfg.Workload.PaymentFraction = -1 // explicit-0% sentinel
	cfg.Stragglers, cfg.UndetectableFaults = 0, 0
	if got := cfg.Label(); got != "Orthrus/WAN/n=16/pay=0.00" {
		t.Fatalf("sentinel label %q", got)
	}
}

// TestConfigLabelDisambiguates is the collision regression: two configs
// differing only in scenario or only in transaction source must render
// different labels, or the runner's job keys (and suite artifacts) would
// silently merge distinct cells.
func TestConfigLabelDisambiguates(t *testing.T) {
	base := Config{N: 16, Protocol: core.OrthrusMode(), Net: WAN}

	scenarioed := base
	scenarioed.Scenario = scenario.New("demo").CrashAt(time.Second, 1).Build()
	if base.Label() == scenarioed.Label() {
		t.Fatalf("scenario config shares label %q with plain config", base.Label())
	}
	otherScenario := base
	otherScenario.Scenario = scenario.New("other").CrashAt(time.Second, 1).Build()
	if scenarioed.Label() == otherScenario.Label() {
		t.Fatalf("different scenarios share label %q", scenarioed.Label())
	}

	replayed := base
	replayed.Source = workload.NewTrace([]*types.Transaction{types.NewPayment("a", "b", 1, 1)}, 100)
	if base.Label() == replayed.Label() {
		t.Fatalf("trace-replay config shares label %q with synthetic config", base.Label())
	}
	if got, want := replayed.Label(), "Orthrus/WAN/n=16/replay"; got != want {
		t.Fatalf("replay label %q, want %q", got, want)
	}

	// A non-trace custom source labels as /src, not as a trace replay.
	scripted := base
	scripted.Source = workload.New(workload.Config{Seed: 9})
	if got, want := scripted.Label(), "Orthrus/WAN/n=16/src"; got != want {
		t.Fatalf("custom-source label %q, want %q", got, want)
	}
}
