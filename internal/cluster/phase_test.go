package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/simnet"
)

// mkTracker builds a phaseTracker over a scenario with events at the
// given times (all Heal — the kinds are irrelevant to windowing).
func mkTracker(runEnd time.Duration, eventTimes ...time.Duration) *phaseTracker {
	b := scenario.New("t")
	for _, at := range eventTimes {
		b.HealAt(at)
	}
	return newPhaseTracker(b.Build(), runEnd)
}

// TestPhaseBoundaryHalfOpen pins the regression: a confirmation whose
// reply lands exactly on a phase boundary — including a boundary that
// coincides with a 0.5 s series-bin edge — belongs to the window the
// boundary opens, and the streamed per-phase counts match the final ones.
func TestPhaseBoundaryHalfOpen(t *testing.T) {
	// Boundary at exactly 2.5s: a 0.5s metric window edge.
	pt := mkTracker(18*time.Second, 2500*time.Millisecond)
	at := func(d time.Duration) simnet.Time { return simnet.Time(d) }
	pt.record(at(2500*time.Millisecond-1), time.Millisecond) // last tick of baseline
	pt.record(at(2500*time.Millisecond), time.Millisecond)   // exactly on the edge
	pt.record(at(2500*time.Millisecond+1), time.Millisecond) // first tick after
	// The streamed value for the closed baseline window...
	streamed := pt.stat(0)
	out := pt.finalize(18*time.Second, false)
	if streamed.Confirmed != 1 || out[0].Confirmed != 1 {
		t.Fatalf("baseline window [0, 2.5s) counted %d streamed / %d final, want 1 (boundary must not drift)",
			streamed.Confirmed, out[0].Confirmed)
	}
	if out[1].Confirmed != 2 {
		t.Fatalf("window [2.5s, ...) counted %d, want 2 (boundary reply belongs to the opening window)", out[1].Confirmed)
	}
	if sum := out[0].Confirmed + out[1].Confirmed; sum != 3 {
		t.Fatalf("windows count %d confirmations, want all 3", sum)
	}
}

// TestPhaseWindowCountsPinned fixes the exact per-window counts for a
// three-phase timeline with replies scattered on and around every
// boundary.
func TestPhaseWindowCountsPinned(t *testing.T) {
	pt := mkTracker(10*time.Second, 2*time.Second, 4*time.Second)
	replies := []time.Duration{
		1 * time.Second, 1999 * time.Millisecond, // baseline
		2 * time.Second, 3 * time.Second, 3999 * time.Millisecond, // phase 1
		4 * time.Second, 9 * time.Second, // phase 2
	}
	for _, r := range replies {
		pt.record(simnet.Time(r), time.Millisecond)
	}
	out := pt.finalize(10*time.Second, false)
	want := []int{2, 3, 2}
	for i, w := range want {
		if out[i].Confirmed != w {
			t.Fatalf("window %d (%q [%v,%v)) counted %d, want %d",
				i, out[i].Label, out[i].Start, out[i].End, out[i].Confirmed, w)
		}
		if out[i].ThroughputTPS != float64(w)/(out[i].End-out[i].Start).Seconds() {
			t.Fatalf("window %d rate %f inconsistent with its bounds", i, out[i].ThroughputTPS)
		}
	}
	// Windows tile the run: contiguous half-open intervals.
	for i := 1; i < len(out); i++ {
		if out[i].Start != out[i-1].End {
			t.Fatalf("windows not contiguous: [%v,%v) then [%v,%v)",
				out[i-1].Start, out[i-1].End, out[i].Start, out[i].End)
		}
	}
}

// TestFinalPhaseExtendsToLateReplies pins the other half of the drift
// fix: replies landing after the nominal end of the run stay in the final
// window, whose End is raised past the last of them so the reported rate
// covers a span containing every counted confirmation.
func TestFinalPhaseExtendsToLateReplies(t *testing.T) {
	runEnd := 6 * time.Second
	pt := mkTracker(runEnd, 2*time.Second)
	late := runEnd + 300*time.Millisecond
	pt.record(simnet.Time(5*time.Second), time.Millisecond)
	pt.record(simnet.Time(runEnd), time.Millisecond) // exactly at nominal end
	pt.record(simnet.Time(late), time.Millisecond)
	out := pt.finalize(runEnd, false)
	if out[1].Confirmed != 3 {
		t.Fatalf("final window counted %d, want 3", out[1].Confirmed)
	}
	if out[1].End <= late {
		t.Fatalf("final window End %v does not cover its last reply %v", out[1].End, late)
	}
	want := float64(3) / (out[1].End - out[1].Start).Seconds()
	if out[1].ThroughputTPS != want {
		t.Fatalf("final window rate %f, want %f", out[1].ThroughputTPS, want)
	}
}

// TestZeroWidthWindowsStayEmpty: scenario events at or past the end of
// the run collapse to zero-width windows, which must never own a reply
// (the last-wins rule at equal Starts) nor report a rate.
func TestZeroWidthWindowsStayEmpty(t *testing.T) {
	runEnd := 4 * time.Second
	pt := mkTracker(runEnd, 4*time.Second, 5*time.Second)
	pt.record(simnet.Time(3*time.Second), time.Millisecond)
	pt.record(simnet.Time(4*time.Second), time.Millisecond) // boundary at run end
	out := pt.finalize(runEnd, false)
	if out[1].Confirmed != 0 {
		t.Fatalf("zero-width window [4s,4s) counted %d replies", out[1].Confirmed)
	}
	if out[2].Confirmed != 2-1 {
		t.Fatalf("final window counted %d, want 1", out[2].Confirmed)
	}
	if out[0].Confirmed != 1 {
		t.Fatalf("baseline counted %d, want 1", out[0].Confirmed)
	}
}

// TestScenarioEventOnSeriesBinEdgeEndToEnd runs a real cluster with a
// scenario boundary exactly on a 0.5 s series-bin edge and checks the
// phase windows partition every recorded confirmation: the sum of
// per-window counts equals the run's latency sample count, and streamed
// OnPhase values equal the final Result.Phases.
func TestScenarioEventOnSeriesBinEdgeEndToEnd(t *testing.T) {
	scn := scenario.New("edge").
		StraggleAt(1500*time.Millisecond, 5, 3).
		StraggleAt(2500*time.Millisecond, 1, 3).
		Build()
	cfg := smallCfg(core.OrthrusMode())
	cfg.Scenario = scn
	var streamed []PhaseWindow
	cfg.OnPhase = func(p PhaseWindow) { streamed = append(streamed, p) }
	res := Run(cfg)
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %v", res.Phases)
	}
	sum := 0
	for _, p := range res.Phases {
		sum += p.Confirmed
	}
	if sum != res.Latency.Count() {
		t.Fatalf("phase windows count %d confirmations, run recorded %d — boundary drift", sum, res.Latency.Count())
	}
	if len(streamed) != len(res.Phases) {
		t.Fatalf("streamed %d phases, result has %d", len(streamed), len(res.Phases))
	}
	for i, p := range streamed {
		if p != res.Phases[i] {
			t.Fatalf("streamed phase %d %+v != final %+v", i, p, res.Phases[i])
		}
	}
	for i := 1; i < len(res.Phases); i++ {
		if res.Phases[i].Start != res.Phases[i-1].End {
			t.Fatalf("phases not contiguous: %+v", res.Phases)
		}
	}
}
