package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// scenarioBase is a small LAN cluster configuration for scenario tests:
// message-level PBFT, short view timeout so fault recovery fits the run.
func scenarioBase(n int, scn *scenario.Scenario) Config {
	return Config{
		N:           n,
		Protocol:    core.OrthrusMode(),
		Net:         LAN,
		Scenario:    scn,
		Workload:    workload.Config{Accounts: 500, Seed: 42},
		LoadTPS:     400,
		Duration:    6 * time.Second,
		Warmup:      500 * time.Millisecond,
		Drain:       6 * time.Second,
		BatchSize:   64,
		ViewTimeout: 1 * time.Second,
		NIC:         true,
		Seed:        42,
	}
}

// TestPartitionHealLiveness pins the partition semantics end to end: a
// 2/2 split of a 4-replica cluster leaves no side with a 2f+1 quorum, so
// no transaction commits during the cut; after the heal the view changes
// complete and the backlog catches up.
func TestPartitionHealLiveness(t *testing.T) {
	scn := scenario.New("split-heal").
		PartitionAt(2*time.Second, []int{0, 1}, []int{2, 3}).
		HealAt(4 * time.Second).
		Build()
	res := Run(scenarioBase(4, scn))

	if len(res.Phases) != 3 {
		t.Fatalf("want 3 phases (baseline/partition/heal), got %+v", res.Phases)
	}
	pre, cut, post := res.Phases[0], res.Phases[1], res.Phases[2]
	if pre.Confirmed == 0 {
		t.Fatal("no confirmations before the cut")
	}
	// In-flight replies may land just after the cut, but commits require a
	// 3-of-4 quorum neither side has: the second half of the cut window
	// must be silent. Series bins are 0.5 s wide.
	for bin := 5; bin < 8; bin++ { // [2.5s, 4.0s)
		if tput := res.Series.Throughput(bin); tput > 0 {
			t.Fatalf("commits across the cut: bin %d has %.1f tps", bin, tput)
		}
	}
	if cut.Confirmed >= pre.Confirmed {
		t.Fatalf("cut phase confirmed %d >= baseline %d", cut.Confirmed, pre.Confirmed)
	}
	if post.Confirmed == 0 {
		t.Fatal("no catch-up after heal: post-heal phase confirmed nothing")
	}
	if res.ViewChanges == 0 {
		t.Fatal("expected view changes while partitioned")
	}
}

// TestCrashRecoverScenario crashes two of seven replicas mid-run and
// recovers them: the cluster (f=2) must keep confirming throughout, the
// crashed leaders' instances must view-change, and phase windows must tile
// the run.
func TestCrashRecoverScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 7-replica cluster for 12 virtual seconds")
	}
	scn := scenario.New("crash-recover").
		CrashAt(2*time.Second, 5, 6).
		RecoverAt(4*time.Second, 5, 6).
		Build()
	res := Run(scenarioBase(7, scn))

	if len(res.Phases) != 3 {
		t.Fatalf("want 3 phases, got %+v", res.Phases)
	}
	for i, p := range res.Phases {
		if p.Confirmed == 0 {
			t.Fatalf("phase %d (%s) confirmed nothing: %+v", i, p.Label, res.Phases)
		}
		if i > 0 && res.Phases[i-1].End != p.Start {
			t.Fatalf("phase windows do not tile: %+v", res.Phases)
		}
	}
	if res.Phases[0].Label != "baseline" || res.Phases[1].Label != "crash" || res.Phases[2].Label != "recover" {
		t.Fatalf("phase labels wrong: %+v", res.Phases)
	}
	if res.ViewChanges == 0 {
		t.Fatal("crashed leaders' instances should have view-changed")
	}
}

// TestLoadSurgePhases checks the flash-crowd path: tripling the client
// rate mid-run must show up as a higher confirmed rate in the surge phase.
func TestLoadSurgePhases(t *testing.T) {
	scn := scenario.New("flash").
		LoadSurgeAt(2*time.Second, 3).
		LoadSurgeAt(4*time.Second, 1).
		Build()
	res := Run(scenarioBase(4, scn))

	if len(res.Phases) != 3 {
		t.Fatalf("want 3 phases, got %+v", res.Phases)
	}
	base, surge := res.Phases[0], res.Phases[1]
	if surge.ThroughputTPS < 1.5*base.ThroughputTPS {
		t.Fatalf("surge phase %.1f tps not clearly above baseline %.1f tps",
			surge.ThroughputTPS, base.ThroughputTPS)
	}
	// The submission count itself must reflect the surge: 6 s at 400 tps
	// plus 2 s of 3x is ~4000 rather than ~2400.
	if res.Submitted < 3200 {
		t.Fatalf("submitted %d, want the surged ~4000", res.Submitted)
	}
}

// TestScenarioLabel: scenarios namespace the run label for job keys.
func TestScenarioLabel(t *testing.T) {
	scn := scenario.New("demo").HealAt(time.Second).Build()
	cfg := Config{N: 4, Protocol: core.OrthrusMode(), Scenario: scn}
	if got, want := cfg.Label(), "Orthrus/WAN/n=4/scn=demo"; got != want {
		t.Fatalf("Label() = %q, want %q", got, want)
	}
}

// TestScenarioRejectsAnalyticSB: scenarios mutate the message-level
// network, so the closed-form SB must be rejected loudly.
func TestScenarioRejectsAnalyticSB(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AnalyticSB + Scenario did not panic")
		}
	}()
	cfg := scenarioBase(4, scenario.New("x").HealAt(time.Second).Build())
	cfg.AnalyticSB = true
	Run(cfg)
}

// TestLoadSurgeExtremeMultiplierTerminates: the submission loop must keep
// advancing virtual time even when the surged interval truncates toward
// zero (the multiplier is Validate-bounded, but the clamp is defense in
// depth against tiny base intervals).
func TestLoadSurgeExtremeMultiplierTerminates(t *testing.T) {
	scn := scenario.New("extreme").LoadSurgeAt(time.Second, 100).Build()
	cfg := scenarioBase(4, scn)
	cfg.LoadTPS = 50000 // 20µs base interval -> 200ns surged
	cfg.TotalTxs = 3000 // bound the run; termination is what's under test
	cfg.Duration = 1500 * time.Millisecond
	cfg.Warmup = 200 * time.Millisecond
	cfg.Drain = 2 * time.Second
	res := Run(cfg) // must terminate
	if res.Submitted == 0 {
		t.Fatal("nothing submitted")
	}
}
