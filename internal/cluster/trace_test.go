package cluster

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestRunWithReplayedTrace freezes a synthetic workload into the CSV trace
// format and replays it through a full cluster — the paper's
// reset-and-replay methodology end to end.
func TestRunWithReplayedTrace(t *testing.T) {
	g := workload.New(workload.Config{Seed: 9, Accounts: 300, ContractCallers: 1})
	var buf bytes.Buffer
	if err := g.Export(&buf, 500); err != nil {
		t.Fatal(err)
	}
	trace, err := workload.ReadTrace(&buf, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(core.OrthrusMode())
	cfg.Source = trace
	res := Run(cfg)
	if res.Confirmed == 0 {
		t.Fatal("trace replay confirmed nothing")
	}
	if res.Aborted > res.Submitted/20 {
		t.Fatalf("trace replay aborted %d of %d", res.Aborted, res.Submitted)
	}
}

// TestTraceReplayDeterministicAcrossRuns: two runs over the same trace and
// seed produce identical results.
func TestTraceReplayDeterministicAcrossRuns(t *testing.T) {
	g := workload.New(workload.Config{Seed: 10, Accounts: 100, ContractCallers: 1})
	var buf bytes.Buffer
	if err := g.Export(&buf, 200); err != nil {
		t.Fatal(err)
	}
	run := func() (int, time.Duration) {
		trace, err := workload.ReadTrace(bytes.NewReader(buf.Bytes()), 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallCfg(core.OrthrusMode())
		cfg.Source = trace
		res := Run(cfg)
		return res.Confirmed, res.Latency.Mean()
	}
	c1, l1 := run()
	c2, l2 := run()
	if c1 != c2 || l1 != l2 {
		t.Fatalf("trace replay nondeterministic: %d/%v vs %d/%v", c1, l1, c2, l2)
	}
}
