package cluster_test

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// ExampleRun drives a minimal 4-replica Orthrus cluster over a simulated
// LAN. Every run is a seeded, self-contained simulation, so the outcome is
// exactly reproducible.
func ExampleRun() {
	res := cluster.Run(cluster.Config{
		N:         4,
		Protocol:  core.OrthrusMode(),
		Net:       cluster.LAN,
		Workload:  workload.Config{Accounts: 200, Seed: 7},
		LoadTPS:   400,
		Duration:  2 * time.Second,
		Warmup:    400 * time.Millisecond,
		Drain:     4 * time.Second,
		BatchSize: 64,
		NIC:       true,
		Seed:      7,
	})
	fmt.Println("protocol:", res.Protocol)
	fmt.Println("confirmed some transactions:", res.Confirmed > 0)
	fmt.Println("nothing aborted:", res.Aborted == 0)
	// Output:
	// protocol: Orthrus
	// confirmed some transactions: true
	// nothing aborted: true
}

// ExampleConfig_Label shows the stable run key the parallel runner uses:
// it names the measured cell, including the scenario axis.
func ExampleConfig_Label() {
	scn := scenario.New("flash-crowd").LoadSurgeAt(3*time.Second, 2).Build()
	cfg := cluster.Config{N: 16, Protocol: core.OrthrusMode(), Net: cluster.WAN,
		Stragglers: 1, Scenario: scn}
	fmt.Println(cfg.Label())
	// Output:
	// Orthrus/WAN/n=16/straggler=1/scn=flash-crowd
}
