package cluster

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/workload"
)

// scaleCfg is a capped large-n configuration: the analytic SB (the regime
// every n >= 32 figure cell runs in), a bounded transaction count and a
// short window, so a 100-replica cluster run stays test-sized.
func scaleCfg(mode core.Mode, n int) Config {
	return Config{
		N:            n,
		Protocol:     mode,
		Net:          WAN,
		Workload:     workload.Config{Accounts: 500, Seed: 3},
		LoadTPS:      300,
		TotalTxs:     150,
		Duration:     3 * time.Second,
		Warmup:       500 * time.Millisecond,
		Drain:        6 * time.Second,
		BatchSize:    256,
		BatchTimeout: 100 * time.Millisecond,
		EpochLen:     64,
		ViewTimeout:  10 * time.Second,
		AnalyticSB:   true,
		Seed:         11,
	}
}

// TestLargeClusterEveryProtocol is the first-class large-n check: each
// F-scale protocol commits client transactions at n = 100 (and the
// supported maximum 128 for Orthrus), with the quorum math f = (n-1)/3
// implied by f+1 replies per client-visible confirmation.
func TestLargeClusterEveryProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n sweep skipped in -short")
	}
	cells := []struct {
		mode core.Mode
		n    int
	}{
		{core.OrthrusMode(), 100},
		{baseline.ISSMode(), 100},
		{baseline.LadonMode(), 100},
		{core.OrthrusMode(), 128},
	}
	for _, c := range cells {
		c := c
		t.Run(c.mode.Name+"/n="+itoa(c.n), func(t *testing.T) {
			res := Run(scaleCfg(c.mode, c.n))
			if res.Submitted == 0 {
				t.Fatal("nothing submitted")
			}
			if res.Latency.Count() < res.Submitted*9/10 {
				t.Fatalf("only %d of %d txs reached f+1 replies", res.Latency.Count(), res.Submitted)
			}
			if res.Aborted > res.Submitted/20 {
				t.Fatalf("%d aborts of %d", res.Aborted, res.Submitted)
			}
			if res.Messages == 0 {
				t.Fatal("no modeled messages recorded")
			}
		})
	}
}

// TestLargeClusterDeterministic pins determinism through the analytic
// SB's quorum-time cache: two identical n=50 runs (fresh caches each)
// must agree on every count, and a straggled run must differ — proving
// the cache keys on the out-scale vector rather than serving stale
// times.
func TestLargeClusterDeterministic(t *testing.T) {
	a := Run(scaleCfg(core.OrthrusMode(), 50))
	b := Run(scaleCfg(core.OrthrusMode(), 50))
	if a.Confirmed != b.Confirmed || a.Events != b.Events || a.Messages != b.Messages ||
		a.Latency.Mean() != b.Latency.Mean() {
		t.Fatalf("identical configs diverged:\n%v\nvs\n%v", a, b)
	}
	scfg := scaleCfg(core.OrthrusMode(), 50)
	scfg.Stragglers = 1
	s := Run(scfg)
	if s.Latency.Mean() == a.Latency.Mean() && s.Events == a.Events {
		t.Fatal("straggled run identical to clean run; out-scale ignored")
	}
}

// TestMessagesPerCommitGrowsWithN pins the F-scale message metric: the
// modeled per-commit message cost at n = 50 must exceed n = 4 (PBFT
// traffic is quadratic in n), and both must be recorded.
func TestMessagesPerCommitGrowsWithN(t *testing.T) {
	small := Run(scaleCfg(core.OrthrusMode(), 4))
	large := Run(scaleCfg(core.OrthrusMode(), 50))
	if small.Confirmed == 0 || large.Confirmed == 0 {
		t.Fatalf("confirmations missing: n=4 %d, n=50 %d", small.Confirmed, large.Confirmed)
	}
	smallPer := float64(small.Messages) / float64(small.Confirmed)
	largePer := float64(large.Messages) / float64(large.Confirmed)
	if largePer <= smallPer {
		t.Fatalf("msgs/commit did not grow with n: n=4 %.1f, n=50 %.1f", smallPer, largePer)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
