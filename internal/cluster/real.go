package cluster

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/workload"
)

// KernelReal names the engine RunReal reports in Result.Kernel: replicas
// execute on real goroutines under wall-clock time instead of inside the
// discrete-event simulator.
const KernelReal = "real"

// realMeta is the client-side accounting for one transaction under the
// real backend. Unlike the simulator's dense Idx-addressed slice, entries
// are keyed by content digest: the wire codec deliberately strips the
// local Idx, so replica confirmation hooks see copies with Idx = 0.
type realMeta struct {
	submit  simnet.Time
	reply   simnet.Time
	replies int
	done    bool
}

// RunReal executes one experiment over the in-process real transport
// (transport.Proc) and returns measurements in the same Result shape as
// the simulated Run: one event-loop goroutine per replica, wall-clock
// timers, and every message wire-encoded and decoded between replicas.
//
// The measured numbers are wall-clock facts about this machine, not
// modeled WAN/LAN predictions, and they are not deterministic — two runs
// with the same seed return similar, never identical, Results. Config.Net
// only labels the result. Knobs that mutate the simulated network or
// replica lifecycles (stragglers, faults, scenarios, the NIC model,
// analytic SB, the parallel kernel) have no real-backend implementation
// and panic, mirroring Run's treatment of invalid combinations; the
// public SDK rejects them with a friendly error first.
func RunReal(cfg Config) *Result {
	cfg = cfg.withDefaults()
	switch {
	case cfg.AnalyticSB:
		panic("cluster: the real transport backend requires message-level PBFT; disable AnalyticSB")
	case cfg.Scenario != nil:
		panic("cluster: scenarios run on the simulated network; the real transport backend does not support them")
	case cfg.NIC:
		panic("cluster: the NIC bandwidth model is simulation-only; the real transport backend measures real links")
	case cfg.Stragglers > 0:
		panic("cluster: stragglers are simulation-only; the real transport backend cannot slow real replicas")
	case cfg.DetectableFaults > 0 || cfg.UndetectableFaults > 0:
		panic("cluster: fault injection is simulation-only on the real transport backend")
	case cfg.Kernel == KernelParallel:
		panic("cluster: the parallel kernel executes simulations; the real transport backend is already concurrent")
	}
	n := cfg.N
	f := (n - 1) / 3

	proc := transport.NewProc(n)
	res := &Result{Protocol: cfg.Protocol.Name, Net: cfg.Net.String(), N: n,
		Series: metrics.NewTimeSeries(500 * time.Millisecond), Breakdown: &metrics.Breakdown{},
		Kernel: KernelReal}
	var gen workload.Source = cfg.Source
	if gen == nil {
		gen = workload.New(cfg.Workload)
	}
	genesis := gen.Genesis()

	// Confirmation hooks fire on n replica goroutines; one mutex funnels
	// them through the same accounting the serial simulator runs inline.
	// It also serializes the user-facing observation hooks, preserving the
	// sim backend's one-at-a-time hook contract.
	var mu sync.Mutex
	meta := make(map[types.TxID]*realMeta, 1024)
	order := make([]types.TxID, 0, 1024) // submission order, for the breakdown pass
	doneN := 0
	clientDone := false

	windowEnd := simnet.Time(cfg.Duration)
	// applyConfirm mirrors Run's closure of the same name: the (f+1)-th
	// replica reply makes a transaction client-visible. There is no
	// modeled reply hop to add — `at` is already the wall-clock time (ns
	// since the epoch) at which the confirming replica answered.
	applyConfirm := func(tx *types.Transaction, success bool, at simnet.Time) {
		mu.Lock()
		defer mu.Unlock()
		m, ok := meta[tx.ID()]
		if !ok || m.done {
			return
		}
		m.replies++
		if m.replies < f+1 {
			return
		}
		m.done = true
		m.reply = at
		doneN++
		lat := time.Duration(at - m.submit)
		res.Latency.Add(lat)
		res.Series.Record(at, lat)
		if !success {
			res.Aborted++
		}
		if at >= simnet.Time(cfg.Warmup) && at <= windowEnd {
			res.Confirmed++
		}
		if cfg.OnConfirm != nil {
			cfg.OnConfirm(tx, success, at)
		}
	}

	replicas := make([]*core.Replica, n)
	for i := 0; i < n; i++ {
		i := i
		ccfg := core.Config{
			N: n, F: f, ID: i, M: n,
			Mode:             cfg.Protocol,
			BatchSize:        cfg.BatchSize,
			BatchTimeout:     cfg.BatchTimeout,
			Window:           cfg.Window,
			ViewTimeout:      cfg.ViewTimeout,
			TxSize:           cfg.TxSize,
			EpochLen:         cfg.EpochLen,
			CensorshipBlocks: cfg.CensorshipBlocks,
			Genesis:          genesis,
			TraceStages:      i == 0,
			OnConfirm:        applyConfirm,
			OnViewChange: func(instance int, view uint64, at simnet.Time) {
				if i == 0 {
					mu.Lock()
					res.ViewChanges++
					mu.Unlock()
				}
			},
		}
		if cfg.OnBlockDeliver != nil {
			ccfg.OnBlockDeliver = func(instance int, b *types.Block) {
				mu.Lock()
				cfg.OnBlockDeliver(i, instance, b)
				mu.Unlock()
			}
		}
		replicas[i] = core.NewReplica(ccfg, proc.Node(i).Sim(), proc)
	}
	for _, r := range replicas {
		r.Start() // queues the first pulses; nothing runs until the loops start
	}
	epoch := time.Now()
	proc.Start(epoch)
	defer proc.Stop()

	// Open-loop client on its own goroutine: the same submission schedule
	// as the simulator (first transaction at Warmup/2, one every
	// 1/LoadTPS), paced by absolute wall-clock deadlines so generation
	// cost does not stretch the intervals. Submissions travel through
	// Proc.InjectTo — wire-encoded once and shared (immutably) across
	// the targets, decoded per receiver like everything else, but uncounted,
	// matching the sim harness where client traffic bypasses the network
	// counters.
	clientFinished := make(chan struct{})
	go func() {
		defer close(clientFinished)
		interval := time.Duration(float64(time.Second) / cfg.LoadTPS)
		targetBuf := make([]int, 0, 2*(f+1)+1)
		targetSeen := make([]bool, n)
		leaders := &leaderCache{n: n, m: make(map[types.Key]int, 1024)}
		submitted := 0
		for k := 0; ; k++ {
			at := cfg.Warmup/2 + time.Duration(k)*interval
			if at > cfg.Duration || (cfg.TotalTxs > 0 && submitted >= cfg.TotalTxs) {
				break
			}
			if d := time.Until(epoch.Add(at)); d > 0 {
				time.Sleep(d)
			}
			tx := gen.Next()
			now := simnet.Time(time.Since(epoch))
			tx.SubmitNS = int64(now)
			id := tx.ID()
			mu.Lock()
			meta[id] = &realMeta{submit: now}
			order = append(order, id)
			mu.Unlock()
			targetBuf = appendSubmitTargets(targetBuf[:0], targetSeen, leaders, tx, n, f)
			proc.InjectTo(n, targetBuf, &core.SubmitMsg{Tx: tx})
			submitted++
		}
		mu.Lock()
		res.Submitted = submitted
		clientDone = true
		mu.Unlock()
	}()

	// Run until the drain budget expires, or earlier once every submitted
	// transaction has confirmed (wall time is real here — don't waste it).
	allDone := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return clientDone && doneN == len(order)
	}
	deadline := epoch.Add(cfg.Duration + cfg.Drain)
	for time.Now().Before(deadline) {
		if allDone() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	<-clientFinished
	proc.Stop() // replica goroutines are gone after this: reads below are safe

	res.Messages = proc.Messages()
	for i := 0; i < n; i++ {
		res.Events += proc.Node(i).Sim().S.EventsProcessed()
	}
	if window := (cfg.Duration - cfg.Warmup).Seconds(); window > 0 {
		res.ThroughputTPS = float64(res.Confirmed) / window
	}

	// Observer breakdown, as in Run; the reply stage is whatever wall time
	// passed between the observer's confirmation and the client-visible
	// (f+1)-th reply (zero when the observer itself completed the quorum).
	obs := replicas[0]
	for _, id := range order {
		m := meta[id]
		st, ok := obs.Stages(id)
		if !ok || st.Confirmed == 0 || st.Submit == 0 {
			continue
		}
		res.Breakdown.Add(metrics.StageSend, time.Duration(st.Received-st.Submit))
		res.Breakdown.Add(metrics.StagePreprocess, time.Duration(st.Proposed-st.Received))
		res.Breakdown.Add(metrics.StagePartial, time.Duration(st.Delivered-st.Proposed))
		res.Breakdown.Add(metrics.StageGlobal, time.Duration(st.Confirmed-st.Delivered))
		if m.done && m.reply > st.Confirmed {
			res.Breakdown.Add(metrics.StageReply, time.Duration(m.reply-st.Confirmed))
		} else {
			res.Breakdown.Add(metrics.StageReply, 0)
		}
	}

	if cfg.CaptureState {
		res.State = replicas[0].Store()
		snap := res.State.Snapshot()
		res.Converged = true
		for i := 1; i < n; i++ {
			if !replicas[i].Store().Snapshot().Equal(snap) {
				res.Converged = false
				break
			}
		}
	}
	return res
}
