package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/workload"
)

// TestProcCrashRecoverCatchUp drives the crash -> recover -> state-transfer
// path over the in-process real transport: the StateTransferReq/Resp and
// checkpoint certificate messages cross a real wire codec and land on real
// event-loop goroutines, not the shared simulator. A victim replica stops
// mid-run, misses several epochs of deliveries, recovers, and must repair
// its log through the catch-up protocol — never delivering a slot twice —
// until its log and ledger converge with the live replicas'.
//
// RunReal rejects fault injection by design (the measured harness has no
// scenario engine), so the cluster is built directly: replicas on
// transport.Proc node loops, with the crash and recovery scheduled on the
// victim's own loop via its node-pinned timer view before the loops start.
func TestProcCrashRecoverCatchUp(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock run")
	}
	const (
		n      = 4
		victim = 2
		txs    = 120
	)
	proc := transport.NewProc(n)
	gen := workload.New(workload.Config{Accounts: 64, PaymentFraction: 1, Seed: 11})
	genesis := gen.Genesis()

	type slot struct {
		instance int
		sn       uint64
	}
	var mu sync.Mutex
	logs := make([]map[slot]types.BlockID, n)
	counts := make([]map[slot]int, n)
	replicas := make([]*core.Replica, n)
	for i := 0; i < n; i++ {
		i := i
		logs[i] = map[slot]types.BlockID{}
		counts[i] = map[slot]int{}
		ccfg := core.Config{
			N: n, F: 1, ID: i, M: n,
			Mode:          core.OrthrusMode(),
			BatchSize:     4096,
			BatchTimeout:  100 * time.Millisecond,
			ViewTimeout:   10 * time.Second,
			EpochLen:      4,
			StateTransfer: true,
			Genesis:       genesis,
			OnBlockDeliver: func(instance int, b *types.Block) {
				mu.Lock()
				logs[i][slot{instance, b.SN}] = b.Digest()
				counts[i][slot{instance, b.SN}]++
				mu.Unlock()
			},
		}
		replicas[i] = core.NewReplica(ccfg, proc.Node(i).Sim(), proc)
	}
	// The outage must stay inside the block-replay repair envelope: peers
	// retain one epoch (EpochLen x BatchTimeout = 400 ms) of archive below
	// the stable floor, so 300 ms down plus millisecond-scale in-process
	// round trips is always repairable. Scheduled before Start so the
	// victim's private timer queue is still single-threaded.
	vs := replicas[victim]
	proc.Node(victim).Sim().At(simnet.Time(400*time.Millisecond), vs.Stop)
	proc.Node(victim).Sim().At(simnet.Time(700*time.Millisecond), vs.Recover)

	for _, r := range replicas {
		r.Start()
	}
	proc.Start(time.Now())
	defer proc.Stop()

	// Feed payments through the crash window so tx-carrying blocks span
	// it: outage [400 ms, 700 ms), submissions over ~2.4 s.
	go func() {
		for k := 0; k < txs; k++ {
			tx := gen.Next()
			tx.ID() // warm the digest memo before sharing across loops
			for id := 0; id < n; id++ {
				proc.Inject(n, id, &core.SubmitMsg{Tx: tx})
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Quiescence: all four delivery logs identical at one sampling instant
	// (the victim's can only match once its gap is fully repaired) and far
	// enough along that the crash window is behind them.
	aligned := func() bool {
		mu.Lock()
		defer mu.Unlock()
		if len(logs[0]) < 60 {
			return false
		}
		for i := 1; i < n; i++ {
			if len(logs[i]) != len(logs[0]) {
				return false
			}
			for k, d := range logs[0] {
				if got, ok := logs[i][k]; !ok || got != d {
					return false
				}
			}
		}
		return true
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !aligned() {
		time.Sleep(5 * time.Millisecond)
	}
	proc.Stop() // loops exited: replica state is safe to read directly
	if !aligned() {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("logs never converged: sizes %d/%d/%d/%d",
			len(logs[0]), len(logs[1]), len(logs[2]), len(logs[3]))
	}
	if got := replicas[victim].StateTransferApplied(); got == 0 {
		t.Fatal("victim repaired its gap without the catch-up protocol")
	}
	for i, c := range counts {
		for k, v := range c {
			if v > 1 {
				t.Fatalf("replica %d delivered instance %d seq %d %d times: pre-checkpoint replay",
					i, k.instance, k.sn, v)
			}
		}
	}
	base := replicas[0].Store().Snapshot()
	for i := 1; i < n; i++ {
		if !replicas[i].Store().Snapshot().Equal(base) {
			t.Fatalf("replica %d ledger diverged", i)
		}
	}
}
