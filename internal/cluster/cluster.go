// Package cluster is the experiment harness: it assembles n replicas of a
// chosen protocol over a simulated WAN or LAN, drives an open-loop client
// workload, injects stragglers and faults, and measures what the paper
// plots — throughput, client latency (submission to f+1 replies), 0.5 s
// time series, and the five-stage latency breakdown.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/sb"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
)

// NetProfile selects the network environment.
type NetProfile int

// The two environments of Sec. VII-A.
const (
	WAN NetProfile = iota // 4 regions: France, US, Australia, Tokyo
	LAN                   // single site, 1 Gbps
)

// String implements fmt.Stringer.
func (p NetProfile) String() string {
	if p == LAN {
		return "LAN"
	}
	return "WAN"
}

// Config describes one experiment run.
type Config struct {
	N        int       // replicas (m = n instances)
	Protocol core.Mode // which Multi-BFT protocol
	Net      NetProfile

	// Stragglers slows this many instances by StragglerFactor (default 10x,
	// Sec. VII-A). Straggled replicas are chosen from the high indices.
	Stragglers      int
	StragglerFactor float64

	// DetectableFaults crashes this many replicas at FaultAt (Fig. 7).
	DetectableFaults int
	FaultAt          time.Duration
	// UndetectableFaults marks this many replicas Byzantine: they vote only
	// in the instance they lead (Fig. 8).
	UndetectableFaults int

	// Scenario schedules mid-run fault and load events (crashes that
	// recover, partitions that heal, moving stragglers, load surges) on top
	// of the static configuration above; see package scenario. When set,
	// Result.Phases reports per-phase metric windows delimited by the
	// scenario's event times. Scenarios mutate the simulated network and
	// replica lifecycles, so they require message-level PBFT (AnalyticSB
	// must be false). The Scenario is shared read-only across parallel runs
	// and must not be mutated after Build.
	Scenario *scenario.Scenario

	Workload workload.Config
	// Source overrides the synthetic generator with a custom transaction
	// source (e.g. a replayed trace, workload.ReadTrace); nil uses Workload.
	Source   workload.Source
	LoadTPS  float64       // open-loop submission rate
	TotalTxs int           // optional cap on submitted transactions
	Duration time.Duration // submission window
	Warmup   time.Duration // excluded from throughput accounting
	Drain    time.Duration // extra time for in-flight txs to confirm

	BatchSize    int
	BatchTimeout time.Duration
	Window       int
	EpochLen     uint64
	ViewTimeout  time.Duration
	TxSize       int
	// CensorshipBlocks is the per-bucket censorship detector's patience in
	// delivered blocks (Sec. V-B); 0 selects the replica default of 64.
	// Lower it when a scenario censors leaders so detection fits the run.
	CensorshipBlocks uint64

	// StateTransfer enables checkpoint-anchored catch-up (core.Config.
	// StateTransfer): replicas archive delivered blocks up to the stable
	// checkpoint floor and a recovering replica refills its log gap from
	// 2f+1 peers instead of waiting for view-change no-ops. Scenario crash/
	// recover churn over long horizons wants this on; the default off keeps
	// the pre-existing recovery behavior.
	StateTransfer bool

	// SampleLiveSet, when positive, schedules a cluster-wide retained-state
	// census every interval of virtual time: the sum of every replica's
	// core.LiveSet plus the scheduler's pending event count, reported in
	// Result.LiveSetSamples/LiveSetPeak. The soak figure gates on a flat
	// profile after warmup. Sampling reads replica state from a bookkeeping
	// event, which would cross shard boundaries under the parallel kernel,
	// so it requires the serial kernel.
	SampleLiveSet time.Duration

	// AnalyticSB swaps message-level PBFT for the closed-form quorum-time
	// SB (fault-free runs only; stragglers are supported).
	AnalyticSB bool
	// NIC enables the shared 1 Gbps per-node bandwidth model
	// (message-level SB only).
	NIC bool

	Seed int64

	// Observation hooks stream measurements out of a running simulation
	// (the public orthrus SDK's Observer rides on these). All are optional
	// and fire on the simulation goroutine in deterministic virtual-time
	// order; they must only read, never mutate the cluster. OnWindow and
	// Halt schedule one bookkeeping event per 0.5 s of virtual time, so
	// Result.Events grows slightly when either is set; measured results are
	// unaffected.

	// OnConfirm fires at every client-visible confirmation (the (f+1)-th
	// reply), with the reply's virtual arrival time.
	OnConfirm func(tx *types.Transaction, success bool, reply simnet.Time)
	// OnWindow fires once per closed 0.5 s series bin, in order, including
	// empty bins.
	OnWindow func(w WindowStat)
	// OnPhase fires once per scenario phase as soon as its measurement
	// window is final — mid-run for phases that close before the run ends,
	// at finalization for the rest. Requires a Scenario.
	OnPhase func(p PhaseWindow)
	// OnBlockDeliver fires on every worker-instance block delivery at every
	// replica, before execution. The safety property suite records
	// (replica, instance, SN, digest) through it; nil costs nothing.
	OnBlockDeliver func(replica, instance int, b *types.Block)
	// Halt is polled at every 0.5 s window boundary; returning true stops
	// the simulation immediately (Result.Halted) with whatever has been
	// measured so far. The public SDK wires context cancellation here.
	Halt func() bool
	// CaptureState retains the observer replica's ledger store on the
	// Result and checks that all replicas' final snapshots agree. Only
	// meaningful for fault-free runs: crashed or partitioned replicas miss
	// blocks (no state transfer is modeled) and will report divergence.
	CaptureState bool

	// Kernel selects the engine executing the discrete-event simulation:
	// the serial reference loop (default) or the conservative sharded
	// parallel kernel, which partitions replicas across a worker pool and
	// produces bit-identical results (the kernel-differential suite pins
	// this). Parallel requires message-level PBFT without the NIC model,
	// and every straggler scale must be >= 1 (speed-ups would undercut the
	// lookahead). Topologies that cannot shard usefully fall back to the
	// serial loop.
	Kernel Kernel
	// Workers bounds the parallel kernel's worker pool and shard count;
	// 0 uses GOMAXPROCS. Measured results are identical for every value.
	Workers int
}

// Kernel selects the engine that executes the simulation.
type Kernel int

const (
	// KernelSerial is the reference single-threaded event loop.
	KernelSerial Kernel = iota
	// KernelParallel is the conservative sharded kernel (simnet.Kernel):
	// WAN runs shard by region, LAN runs stripe round-robin, and shards
	// execute lookahead-bounded windows concurrently between barriers.
	KernelParallel
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	if k == KernelParallel {
		return "parallel"
	}
	return "serial"
}

func (c Config) withDefaults() Config {
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = 10
	}
	if c.Duration <= 0 {
		c.Duration = 20 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = 2 * time.Second
	}
	if c.Drain <= 0 {
		c.Drain = 2 * c.Duration
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4096
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 100 * time.Millisecond
	}
	if c.EpochLen == 0 {
		c.EpochLen = 32
	}
	if c.ViewTimeout <= 0 {
		c.ViewTimeout = 10 * time.Second
	}
	if c.TxSize <= 0 {
		c.TxSize = 500
	}
	if c.LoadTPS <= 0 {
		c.LoadTPS = 1000
	}
	return c
}

// Label returns a stable, human-readable key for this configuration; the
// runner's job lists use it to identify runs. It names the measured cell
// (protocol, network, size, fault axis, scenario, transaction source), not
// every knob, so it is unique within one figure's grid but not across
// figures — suite-level callers namespace it (see internal/experiments
// suiteJobs). A negative PaymentFraction is the workload's explicit-0%
// sentinel and labels as pay=0.00. A custom Source measures a different
// cell than the synthetic generator even under otherwise identical knobs,
// so it labels as /replay (a workload.Trace) or /src (any other source);
// two configs differing only in the contents of a custom source still
// share a label.
func (c Config) Label() string {
	s := fmt.Sprintf("%s/%s/n=%d", c.Protocol.Name, c.Net, c.N)
	if c.Stragglers > 0 {
		s += fmt.Sprintf("/straggler=%d", c.Stragglers)
	}
	if c.DetectableFaults > 0 {
		s += fmt.Sprintf("/crash=%d", c.DetectableFaults)
	}
	if c.UndetectableFaults > 0 {
		s += fmt.Sprintf("/byz=%d", c.UndetectableFaults)
	}
	if c.Scenario != nil {
		s += "/scn=" + c.Scenario.Name
	}
	if c.Source != nil {
		if _, ok := c.Source.(*workload.Trace); ok {
			s += "/replay"
		} else {
			s += "/src"
		}
	}
	if frac := c.Workload.PaymentFraction; frac < 0 {
		s += "/pay=0.00"
	} else if frac > 0 {
		s += fmt.Sprintf("/pay=%.2f", frac)
	}
	return s
}

// Result aggregates one run's measurements.
type Result struct {
	Protocol string
	Net      string
	N        int

	Submitted int
	Confirmed int // confirmed by f+1 replicas (client-visible)
	Aborted   int // confirmed unsuccessfully

	// ThroughputTPS counts client-visible confirmations inside the
	// submission window, divided by the window length (minus warmup).
	ThroughputTPS float64
	// Latency is the client-observed distribution: submission to the
	// (f+1)-th reply, including the reply's network delay.
	Latency metrics.Latency
	// Series bins confirmations over 0.5 s intervals (Fig. 7).
	Series *metrics.TimeSeries
	// Breakdown is the observer replica's five-stage split (Fig. 6).
	Breakdown *metrics.Breakdown

	// Phases holds per-phase metric windows when a Scenario is configured:
	// one window per scenario phase (see scenario.Scenario.Phases), nil
	// otherwise.
	Phases []PhaseWindow

	ViewChanges int
	Events      uint64 // simulator events processed (cost accounting)
	// Messages counts protocol messages delivered over the simulated
	// network. Analytic-SB runs fold in the closed-form model's
	// pre-prepare/prepare/commit traffic (simnet.Network.AddModeled), so
	// the count stays comparable across SB implementations; the F-scale
	// figure divides it by Confirmed for messages-per-commit.
	Messages uint64

	// Kernel names the engine that executed the run ("serial" or
	// "parallel"), and Shards the parallel kernel's shard count (0 for
	// serial, including parallel requests that fell back). Engine choice
	// never changes measured results — these exist for bench reporting and
	// for tests to assert a parallel request actually sharded.
	Kernel string
	Shards int

	// LiveSetSamples holds the periodic retained-state censuses when
	// Config.SampleLiveSet is set (nil otherwise), and LiveSetPeak the
	// largest sampled Total. The soak harness asserts the profile flattens
	// after warmup — bounded memory at any virtual-time horizon.
	LiveSetSamples []LiveSetSample
	LiveSetPeak    int

	// StateTransferApplied counts blocks applied through the checkpoint-
	// anchored catch-up protocol rather than live SB delivery, summed
	// across replicas (always 0 unless Config.StateTransfer). The recovery
	// tests assert gap repair happened without pre-checkpoint replay.
	StateTransferApplied uint64

	// Halted reports the run was stopped early by Config.Halt; the
	// measurements cover only the virtual time before the stop.
	Halted bool
	// State is the observer replica's final ledger store and Converged
	// whether every replica's final snapshot equals it. Both are only set
	// when Config.CaptureState is true.
	State     *ledger.Store
	Converged bool
}

// WindowStat is one closed 0.5 s series bin, streamed to Config.OnWindow:
// confirmations whose client-visible reply landed in [Start, End), the
// resulting rate, and their mean latency.
type WindowStat struct {
	Index         int
	Start, End    time.Duration
	Confirmed     int
	ThroughputTPS float64
	MeanLatency   time.Duration
}

// PhaseWindow is one scenario-delimited measurement window: raw
// confirmation counts and rates between two consecutive event times (the
// last window extends to the end of the run, submission plus drain).
// Unlike the run-level ThroughputTPS, phases do not exclude warmup and
// count every confirmation by its client-visible reply time — they measure
// the scenario's dynamics, not steady state.
type PhaseWindow struct {
	// Label names the phase after the scenario events opening it
	// ("baseline" for the first window).
	Label string
	// Start and End bound the window in virtual time since run start.
	Start, End time.Duration
	// Confirmed counts client-visible confirmations whose reply landed in
	// the window.
	Confirmed int
	// ThroughputTPS is Confirmed divided by the window length.
	ThroughputTPS float64
	// MeanLatency averages the client-observed latency of the window's
	// confirmations (0 if none).
	MeanLatency time.Duration
}

// LiveSetSample is one cluster-wide retained-state census: the categories
// checkpoint GC is responsible for bounding (summed across replicas) plus
// the scheduler's pending event count, taken at one instant of virtual
// time. Total sums every category; the soak figure plots it.
type LiveSetSample struct {
	At        time.Duration // virtual time of the census
	Events    int           // scheduler events pending
	Trackers  int           // transaction trackers retained
	Slots     int           // in-flight pbft slots
	ExecQ     int           // delivered blocks awaiting escrow
	GlogQ     int           // confirmed blocks awaiting execution
	Escrows   int           // live escrow-log entries
	Archive   int           // state-transfer archive blocks
	Retained  int           // blocks retained for NewView repair
	CkptVotes int           // live checkpoint votes
	Total     int           // all of the above
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%-8s %s n=%-3d tput=%8.1f tps  lat(%s)  confirmed=%d aborted=%d vc=%d",
		r.Protocol, r.Net, r.N, r.ThroughputTPS, r.Latency.String(), r.Confirmed, r.Aborted, r.ViewChanges)
}

// txMeta tracks client-side accounting for one transaction. It is stored
// by value in a dense slice addressed by the transaction's run index
// (types.Transaction.Idx, stamped at submission) — no per-transaction
// pointer allocations and no ID hashing on the reply path — and carries
// the client-visible reply time once the (f+1)-th reply lands.
type txMeta struct {
	id      types.TxID // content digest, for the observer's stage lookup
	submit  simnet.Time
	reply   simnet.Time // client-visible reply time; set when done
	home    int32       // replica co-located with the submitting client
	replies int32
	done    bool
}

// hookRec is one deferred measurement-hook firing under the parallel
// kernel. Shared accounting (confirmation counters, series bins, user
// observers) cannot run on shard goroutines, so replica hooks append
// these to their shard's log — stamped with the executing event's virtual
// time and canonical key — and the coordinator replays the merged logs at
// every barrier in exactly the order the serial loop would have fired
// them.
type hookRec struct {
	at       simnet.Time
	ord      uint64 // executing event's canonical key (simnet.Sim.ExecOrd)
	tx       *types.Transaction
	block    *types.Block
	replica  int32
	instance int32
	success  bool
	kind     uint8
}

// hookRec kinds.
const (
	hookConfirm uint8 = iota
	hookBlock
)

// simPool recycles simulators across runs: Sim.Reset reuses the event
// pool, queue buckets and scratch arenas a previous run grew, so
// benchmark iterations and RunMany sweeps stop re-growing megabytes of
// scheduler state per run. Reset restores the exact just-constructed
// state, so results are identical whether a Sim is fresh or reused (the
// determinism contract).
var simPool = sync.Pool{New: func() any { return simnet.New(0) }}

// Run executes one experiment and returns its measurements.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	if cfg.AnalyticSB && (cfg.DetectableFaults > 0 || cfg.UndetectableFaults > 0) {
		panic("cluster: analytic SB does not support fault injection; use message-level PBFT")
	}
	if cfg.Scenario != nil {
		if cfg.AnalyticSB {
			panic("cluster: scenarios require message-level PBFT; disable AnalyticSB")
		}
		if err := cfg.Scenario.Validate(cfg.N); err != nil {
			panic("cluster: " + err.Error())
		}
	}
	if cfg.Kernel == KernelParallel {
		if cfg.AnalyticSB {
			panic("cluster: the parallel kernel requires message-level PBFT; disable AnalyticSB")
		}
		if cfg.NIC {
			panic("cluster: the NIC bandwidth model requires the serial kernel")
		}
		if cfg.StragglerFactor < 1 {
			panic("cluster: straggler speed-ups (factor < 1) require the serial kernel")
		}
		if cfg.Scenario != nil {
			for _, e := range cfg.Scenario.Events {
				if e.Kind == scenario.Straggle && e.Scale < 1 {
					panic("cluster: scenario speed-ups (straggle scale < 1) require the serial kernel")
				}
			}
		}
		if cfg.SampleLiveSet > 0 {
			panic("cluster: live-set sampling reads every replica from one bookkeeping event; use the serial kernel")
		}
	}
	n := cfg.N
	f := (n - 1) / 3
	sim := simPool.Get().(*simnet.Sim)
	sim.Reset(cfg.Seed)
	defer func() {
		sim.Reset(0) // drop references from this run before pooling
		simPool.Put(sim)
	}()

	var model *simnet.GeoModel
	if cfg.Net == LAN {
		model = simnet.NewLAN()
	} else {
		model = simnet.NewWAN()
	}
	if cfg.AnalyticSB {
		model.JitterFrac = 0 // closed-form times need deterministic delays
	}
	nw := simnet.NewNetwork(sim, n, model)
	if cfg.NIC && !cfg.AnalyticSB {
		model.BandwidthBps = 0 // serialization moves into the NIC queues
		nw.SetNICBps(1e9)
	}

	// Engine selection: the sharded kernel executes the identical event
	// schedule, so everything below is kernel-agnostic; the only parallel
	// specialization is deferring shared-state measurement hooks into
	// per-shard logs replayed at barriers. When the topology cannot shard
	// usefully (one worker, too few nodes), fall back to the serial loop.
	var kern *simnet.Kernel
	var shardOf []int
	nodeOn := func(i int) simnet.NodeSim { return simnet.On(sim, i) }
	client := simnet.On(sim, n)
	if cfg.Kernel == KernelParallel {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if plan, nshards := nw.PlanShards(workers); plan != nil {
			kern = simnet.NewKernel(sim, nw, plan, nshards, n, workers)
			shardOf = plan
			nodeOn = kern.NodeOn
			client = kern.ClientOn()
		}
	}

	res := &Result{Protocol: cfg.Protocol.Name, Net: cfg.Net.String(), N: n,
		Series: metrics.NewTimeSeries(500 * time.Millisecond), Breakdown: &metrics.Breakdown{},
		Kernel: KernelSerial.String()}
	if kern != nil {
		res.Kernel = KernelParallel.String()
		res.Shards = kern.NumShards()
	}
	var gen workload.Source = cfg.Source
	if gen == nil {
		gen = workload.New(cfg.Workload)
	}
	genesis := gen.Genesis()

	// Client-side metadata, indexed by the dense run index stamped onto
	// every submitted transaction (Idx-1).
	meta := make([]txMeta, 0, 1024)

	// Scenario phase windows: confirmations are binned by reply time into
	// half-open windows delimited by the scenario's event times (see
	// phaseTracker). The series buffers are sized for the whole run up
	// front so the measurement path never reallocates them.
	runEnd := cfg.Duration + cfg.Drain
	res.Series.Reserve(int(runEnd/res.Series.Bin) + 2)
	var pt *phaseTracker
	if cfg.Scenario != nil {
		pt = newPhaseTracker(cfg.Scenario, runEnd)
	}
	// Phases that close mid-run stream out the moment they are final; the
	// rest (at minimum the last phase) are emitted at finalization below.
	if pt != nil && cfg.OnPhase != nil {
		for i := range pt.windows {
			if pt.windows[i].End >= runEnd {
				continue
			}
			i := i
			sim.At(simnet.Time(pt.windows[i].End), func() {
				pt.emitted[i] = true
				cfg.OnPhase(pt.stat(i))
			})
		}
	}

	// Shared analytic SB instances, created lazily per instance index.
	var analytic map[int]*sb.Instance
	if cfg.AnalyticSB {
		analytic = make(map[int]*sb.Instance)
	}

	windowEnd := simnet.Time(cfg.Duration)
	// applyConfirm is the client-side confirmation accounting: the
	// (f+1)-th replica reply makes a transaction client-visible. Serial
	// runs call it straight from the replica's hook; parallel runs log
	// hook firings per shard and replay them through this same function at
	// kernel barriers, merged in canonical (at, ord) order — the exact
	// serial call sequence.
	applyConfirm := func(i int, tx *types.Transaction, success bool, at simnet.Time) {
		if tx.Idx == 0 || tx.Idx > uint64(len(meta)) {
			return
		}
		m := &meta[tx.Idx-1]
		if m.done {
			return
		}
		m.replies++
		if m.replies < int32(f+1) {
			return
		}
		m.done = true
		reply := at + simnet.Time(nw.BaseDelay(i, int(m.home), 256))
		m.reply = reply
		lat := time.Duration(reply - m.submit)
		res.Latency.Add(lat)
		res.Series.Record(reply, lat)
		if pt != nil {
			pt.record(reply, lat)
		}
		if !success {
			res.Aborted++
		}
		if reply >= simnet.Time(cfg.Warmup) && reply <= windowEnd {
			res.Confirmed++
		}
		if cfg.OnConfirm != nil {
			cfg.OnConfirm(tx, success, reply)
		}
	}
	// Per-shard measurement logs for the parallel kernel: each shard's
	// worker is the only writer of its log, and the coordinator drains
	// them at barriers (see replayHooks below).
	var hookLogs [][]hookRec
	if kern != nil {
		hookLogs = make([][]hookRec, kern.NumShards())
	}
	replicas := make([]*core.Replica, n)
	for i := 0; i < n; i++ {
		i := i
		ccfg := core.Config{
			N: n, F: f, ID: i, M: n,
			Mode:             cfg.Protocol,
			BatchSize:        cfg.BatchSize,
			BatchTimeout:     cfg.BatchTimeout,
			Window:           cfg.Window,
			ViewTimeout:      cfg.ViewTimeout,
			TxSize:           cfg.TxSize,
			EpochLen:         cfg.EpochLen,
			StateTransfer:    cfg.StateTransfer,
			CensorshipBlocks: cfg.CensorshipBlocks,
			Genesis:          genesis,
			TraceStages:      i == 0,
			OnConfirm: func(tx *types.Transaction, success bool, at simnet.Time) {
				applyConfirm(i, tx, success, at)
			},
			OnViewChange: func(instance int, view uint64, at simnet.Time) {
				if i == 0 {
					res.ViewChanges++
				}
			},
		}
		if cfg.OnBlockDeliver != nil {
			ccfg.OnBlockDeliver = func(instance int, b *types.Block) {
				cfg.OnBlockDeliver(i, instance, b)
			}
		}
		if kern != nil {
			// Shared-state hooks fire on shard goroutines under the parallel
			// kernel: defer them into the shard's log instead, stamped with
			// the executing event's canonical key for barrier replay.
			sh := shardOf[i]
			ssim := nodeOn(i).S
			ccfg.OnConfirm = func(tx *types.Transaction, success bool, at simnet.Time) {
				hookLogs[sh] = append(hookLogs[sh], hookRec{
					at: at, ord: ssim.ExecOrd(), tx: tx,
					replica: int32(i), success: success, kind: hookConfirm,
				})
			}
			if cfg.OnBlockDeliver != nil {
				ccfg.OnBlockDeliver = func(instance int, b *types.Block) {
					hookLogs[sh] = append(hookLogs[sh], hookRec{
						at: ssim.Now(), ord: ssim.ExecOrd(), block: b,
						replica: int32(i), instance: int32(instance), kind: hookBlock,
					})
				}
			}
		}
		// Straggled instances are led by the highest-index replicas.
		if cfg.Stragglers > 0 && i >= n-cfg.Stragglers {
			ccfg.PulseScale = cfg.StragglerFactor
		}
		if cfg.UndetectableFaults > 0 && i >= n-cfg.UndetectableFaults {
			ccfg.ByzantineMute = true
		}
		if cfg.AnalyticSB {
			ccfg.SB = func(instance int, hooks core.SBHooks) core.SB {
				inst, ok := analytic[instance]
				if !ok {
					inst = sb.NewInstance(sb.Config{
						N: n, F: f, Instance: instance,
						Window: cfg.Window, TxSize: cfg.TxSize,
					}, sim, nw)
					analytic[instance] = inst
				}
				return inst.Port(i, hooks.OnDeliver)
			}
		}
		replicas[i] = core.NewReplica(ccfg, nodeOn(i), nw)
	}
	// Barrier replay for the parallel kernel: drain the per-shard hook
	// logs in canonical (at, ord) order — a k-way merge of already-sorted
	// logs — through the identical accounting the serial loop runs inline.
	// Entries within one event (a block delivery followed by confirmations)
	// share a key and replay in logged order.
	var replayHooks func(simnet.Time)
	if kern != nil {
		replayIdx := make([]int, len(hookLogs))
		replayHooks = func(simnet.Time) {
			for {
				best := -1
				for s := range hookLogs {
					if replayIdx[s] >= len(hookLogs[s]) {
						continue
					}
					e := &hookLogs[s][replayIdx[s]]
					if best == -1 {
						best = s
						continue
					}
					be := &hookLogs[best][replayIdx[best]]
					if e.at < be.at || (e.at == be.at && e.ord < be.ord) {
						best = s
					}
				}
				if best == -1 {
					break
				}
				e := hookLogs[best][replayIdx[best]]
				replayIdx[best]++
				switch e.kind {
				case hookConfirm:
					applyConfirm(int(e.replica), e.tx, e.success, e.at)
				case hookBlock:
					cfg.OnBlockDeliver(int(e.replica), int(e.instance), e.block)
				}
			}
			for s := range hookLogs {
				hookLogs[s] = hookLogs[s][:0]
				replayIdx[s] = 0
			}
		}
		kern.SetBarrierHook(replayHooks)
	}
	// Straggler network scaling: everything the straggled replicas send is
	// slowed, modeling an instance that runs 10x slower end to end.
	for s := 0; s < cfg.Stragglers; s++ {
		nw.SetOutScale(n-1-s, cfg.StragglerFactor)
	}
	for _, r := range replicas {
		r.Start()
	}

	// Detectable faults: crash the chosen replicas at FaultAt (Fig. 7).
	if cfg.DetectableFaults > 0 {
		at := simnet.Time(cfg.FaultAt)
		for k := 0; k < cfg.DetectableFaults; k++ {
			victim := n - 1 - k
			sim.At(at, func() {
				replicas[victim].Stop()
				nw.SetDown(victim, true)
			})
		}
	}

	// Scenario events: compiled onto the simulator's timeline, mutating the
	// network, the replica lifecycles and the client load factor mid-run.
	loadMult := 1.0
	if cfg.Scenario != nil {
		cfg.Scenario.Apply(sim, scenario.Hooks{
			Crash: func(id int) {
				replicas[id].Stop()
				nw.SetDown(id, true)
			},
			Recover: func(id int) {
				nw.SetDown(id, false)
				replicas[id].Recover()
			},
			Straggle: func(id int, scale float64) {
				nw.SetOutScale(id, scale)
				replicas[id].SetPulseScale(scale)
			},
			Partition:  func(groups [][]int) { nw.Partition(groups...) },
			Heal:       nw.Heal,
			LoadFactor: func(mult float64) { loadMult = mult },
			Equivocate: func(id int) { replicas[id].SetEquivocate(true) },
			Censor:     func(id int) { replicas[id].SetCensorAll(true) },
			MuteLeader: func(id int) { replicas[id].SetMuteLeader(true) },
		})
	}

	// Open-loop clients: one transaction every 1/(LoadTPS*loadMult)
	// seconds, submitted to the (current) leaders of its buckets plus the
	// next f replicas each (censorship resistance, Sec. V-B) and to the
	// observer.
	interval := time.Duration(float64(time.Second) / cfg.LoadTPS)
	submitted := 0
	// Per-transaction scratch, reused across the whole run (the simulation
	// is single-threaded): target list plus a dedup vector indexed by
	// replica. Individual submissions are scheduled as closure-free call
	// events — one transaction allocates its metadata entry and nothing
	// else on the client side.
	targetBuf := make([]int, 0, 2*(f+1)+1)
	targetSeen := make([]bool, n)
	leaders := &leaderCache{n: n, m: make(map[types.Key]int, 1024)}
	// The client rides its own scheduling affinity (node id n — a pure
	// source, never a delivery target): under the parallel kernel the
	// whole submission chain runs on the client shard and its cross-node
	// hops merge into the replica shards, and under the serial loop the
	// identical stamping keeps the canonical event keys kernel-independent.
	var submitNext func(at simnet.Time)
	submitNext = func(at simnet.Time) {
		if at > windowEnd || (cfg.TotalTxs > 0 && submitted >= cfg.TotalTxs) {
			return
		}
		client.At(at, func() {
			tx := gen.Next()
			tx.SubmitNS = int64(client.Now())
			home := submitted % n
			tx.Idx = uint64(submitted + 1) // dense run index for slice-addressed state
			meta = append(meta, txMeta{id: tx.ID(), submit: client.Now(), home: int32(home)})
			targetBuf = appendSubmitTargets(targetBuf[:0], targetSeen, leaders, tx, n, f)
			for _, target := range targetBuf {
				d := nw.BaseDelay(home, target, cfg.TxSize)
				client.CallAtNode(target, client.Now()+simnet.Time(d), submitToReplica, replicas[target], tx)
			}
			submitted++
			res.Submitted = submitted
			gap := time.Duration(float64(interval) / loadMult)
			if gap <= 0 {
				gap = 1 // virtual time must advance or the loop never ends
			}
			submitNext(at + simnet.Time(gap))
		})
	}
	submitNext(simnet.Time(cfg.Warmup) / 2)

	// Streaming windows and cancellation: one bookkeeping event per 0.5 s
	// of virtual time polls Halt and reports the just-closed series bin
	// (final by the same argument as phaseStat's). Bins still open when the
	// ticks end — a trailing partial bin, or bins reached only by replies
	// landing after runEnd — are flushed after the simulation below.
	windowsEmitted := 0
	if cfg.OnWindow != nil || cfg.Halt != nil {
		win := res.Series.Bin
		var tick func(k int)
		tick = func(k int) {
			sim.At(simnet.Time(win)*simnet.Time(k), func() {
				if cfg.Halt != nil && cfg.Halt() {
					res.Halted = true
					sim.Halt()
					return
				}
				if cfg.OnWindow != nil {
					i := k - 1
					cfg.OnWindow(WindowStat{
						Index:         i,
						Start:         time.Duration(i) * win,
						End:           time.Duration(k) * win,
						Confirmed:     res.Series.Count(i),
						ThroughputTPS: res.Series.Throughput(i),
						MeanLatency:   res.Series.MeanLatency(i),
					})
					windowsEmitted = k
				}
				if simnet.Time(win)*simnet.Time(k+1) <= simnet.Time(runEnd) {
					tick(k + 1)
				}
			})
		}
		tick(1)
	}

	// Live-set census ticks: one bookkeeping event per SampleLiveSet of
	// virtual time walks every replica and records the retained-state sum
	// plus the scheduler's pending events (serial kernel only — validated
	// above; the walk would cross shard boundaries under the parallel one).
	if cfg.SampleLiveSet > 0 {
		var census func(k int)
		census = func(k int) {
			sim.At(simnet.Time(cfg.SampleLiveSet)*simnet.Time(k), func() {
				s := LiveSetSample{
					At:     cfg.SampleLiveSet * time.Duration(k),
					Events: sim.Pending(),
				}
				for _, r := range replicas {
					ls := r.LiveSet()
					s.Trackers += ls.Trackers
					s.Slots += ls.Slots
					s.ExecQ += ls.ExecQ
					s.GlogQ += ls.GlogQ
					s.Escrows += ls.Escrows
					s.Archive += ls.Archive
					s.Retained += ls.Retained
					s.CkptVotes += ls.CkptVotes
				}
				s.Total = s.Events + s.Trackers + s.Slots + s.ExecQ + s.GlogQ +
					s.Escrows + s.Archive + s.Retained + s.CkptVotes
				res.LiveSetSamples = append(res.LiveSetSamples, s)
				if s.Total > res.LiveSetPeak {
					res.LiveSetPeak = s.Total
				}
				if cfg.SampleLiveSet*time.Duration(k+1) <= runEnd {
					census(k + 1)
				}
			})
		}
		census(1)
	}

	if kern != nil {
		kern.Run(windowEnd + simnet.Time(cfg.Drain))
		// The horizon window takes no barrier; drain hooks it logged.
		replayHooks(0)
		res.Events = kern.EventsProcessed()
	} else {
		sim.Run(windowEnd + simnet.Time(cfg.Drain))
		res.Events = sim.EventsProcessed()
	}
	res.Messages = nw.Messages()

	// A halted run measures only the elapsed virtual time: divide the
	// confirmations by the window that actually ran, not the configured
	// one, so partial throughput is a rate and not a fraction of one.
	window := (cfg.Duration - cfg.Warmup).Seconds()
	if res.Halted {
		if end := time.Duration(sim.Now()); end < cfg.Duration {
			window = (end - cfg.Warmup).Seconds()
		}
	}
	if window > 0 {
		res.ThroughputTPS = float64(res.Confirmed) / window
	}
	// Bins the ticker has not streamed yet — the partial bin past the last
	// 0.5 s multiple, or bins opened by replies landing after runEnd — are
	// closed now that the simulation stopped; emit them in order.
	if cfg.OnWindow != nil {
		for i := windowsEmitted; i < res.Series.Bins(); i++ {
			cfg.OnWindow(WindowStat{
				Index:         i,
				Start:         time.Duration(i) * res.Series.Bin,
				End:           time.Duration(i+1) * res.Series.Bin,
				Confirmed:     res.Series.Count(i),
				ThroughputTPS: res.Series.Throughput(i),
				MeanLatency:   res.Series.MeanLatency(i),
			})
		}
	}
	// Phase finalization. On a halted run the recorded counts include
	// confirmations whose replies had not landed when the simulation
	// stopped; re-bin from the metadata so every window counts exactly the
	// replies inside its clamped bounds, then clamp to the elapsed virtual
	// time — phases the halt preempted entirely are never emitted.
	if pt != nil {
		elapsed := time.Duration(sim.Now())
		if res.Halted {
			pt.reset()
			for i := range meta {
				if m := &meta[i]; m.done && m.reply < simnet.Time(elapsed) {
					pt.record(m.reply, time.Duration(m.reply-m.submit))
				}
			}
		}
		res.Phases = pt.finalize(elapsed, res.Halted)
		if cfg.OnPhase != nil {
			for i := range res.Phases {
				if !pt.emitted[i] && !pt.skipped[i] {
					cfg.OnPhase(res.Phases[i])
				}
			}
		}
	}

	// Observer breakdown (Fig. 6): stage deltas from replica 0's trace plus
	// the client-side reply time.
	obs := replicas[0]
	for i := range meta {
		m := &meta[i]
		st, ok := obs.Stages(m.id)
		if !ok || st.Confirmed == 0 || st.Submit == 0 {
			continue
		}
		res.Breakdown.Add(metrics.StageSend, time.Duration(st.Received-st.Submit))
		res.Breakdown.Add(metrics.StagePreprocess, time.Duration(st.Proposed-st.Received))
		res.Breakdown.Add(metrics.StagePartial, time.Duration(st.Delivered-st.Proposed))
		res.Breakdown.Add(metrics.StageGlobal, time.Duration(st.Confirmed-st.Delivered))
		if m.done && m.reply > st.Confirmed {
			res.Breakdown.Add(metrics.StageReply, time.Duration(m.reply-st.Confirmed))
		} else {
			res.Breakdown.Add(metrics.StageReply, time.Duration(nw.BaseDelay(0, int(m.home), 256)))
		}
	}

	for _, r := range replicas {
		res.StateTransferApplied += r.StateTransferApplied()
	}

	if cfg.CaptureState {
		res.State = replicas[0].Store()
		snap := res.State.Snapshot()
		res.Converged = true
		for i := 1; i < n; i++ {
			if !replicas[i].Store().Snapshot().Equal(snap) {
				res.Converged = false
				break
			}
		}
	}
	return res
}

// submitToReplica is the client-submission event callback: delivering a
// transaction to one replica. Top-level so the scheduler's call events
// carry it without a closure allocation.
func submitToReplica(replica, tx any) {
	_ = replica.(*core.Replica).SubmitTx(tx.(*types.Transaction))
}

// appendSubmitTargets appends the replicas a client sends tx to onto dst:
// each involved instance's initial leader plus the f replicas after it,
// and replica 0 (the tracing observer). m = n, so instance i's initial
// leader is i. seen is caller-provided scratch of length n, all-false on
// entry; it is cleared again before returning. Duplicate payers resolve to
// already-seen leaders, so iterating ops directly matches the distinct
// payer list. leaders memoizes the sha256-based key-to-leader mapping for
// the run.
func appendSubmitTargets(dst []int, seen []bool, leaders *leaderCache, tx *types.Transaction, n, f int) []int {
	add := func(dst []int, r int) []int {
		r %= n
		if !seen[r] {
			seen[r] = true
			dst = append(dst, r)
		}
		return dst
	}
	dst = add(dst, 0)
	hasPayer := false
	for _, op := range tx.Ops {
		if !op.IsPayerOp() {
			continue
		}
		hasPayer = true
		lead := leaders.of(op.Key)
		for k := 0; k <= f; k++ {
			dst = add(dst, lead+k)
		}
	}
	if !hasPayer { // no payer ops: route by client
		lead := leaders.of(tx.Client)
		for k := 0; k <= f; k++ {
			dst = add(dst, lead+k)
		}
	}
	for _, r := range dst {
		seen[r] = false
	}
	return dst
}

// leaderCache memoizes core.BucketOf per key for one run: the assignment
// hashes the key with sha256, and the open-loop client resolves the same
// few thousand account keys for the whole run.
type leaderCache struct {
	n int
	m map[types.Key]int
}

func (c *leaderCache) of(k types.Key) int {
	if v, ok := c.m[k]; ok {
		return v
	}
	v := core.BucketOf(k, c.n)
	c.m[k] = v
	return v
}
