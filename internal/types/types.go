// Package types defines the core data model of the Orthrus reproduction:
// objects, operations, transactions, blocks and system-state vectors, along
// with deterministic binary encodings used for hashing and signing.
//
// The model follows Sec. III-B of the paper. Objects are long-lived records
// identified by a key. Owned objects (accounts) support commutative
// incremental/decremental operations guarded by a condition (usually
// "balance must stay >= 0"). Shared objects belong to smart contracts and
// support non-commutative operations such as assignment, which force the
// enclosing transaction through the global log.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// Amount is a token quantity. Balances and transfer amounts are integral;
// the unit is arbitrary (think wei/satoshi).
type Amount int64

// Key identifies an object. For owned objects it is the owner's address;
// for shared objects it is the contract record's identifier.
type Key string

// ObjectType distinguishes owned (account) objects from shared (contract
// state) objects.
type ObjectType uint8

const (
	// Owned objects have a single owner; decrements require the owner's
	// signature. Accounts are owned objects.
	Owned ObjectType = iota
	// Shared objects have no owner and may be mutated by any authorized
	// contract transaction.
	Shared
)

// String implements fmt.Stringer.
func (t ObjectType) String() string {
	switch t {
	case Owned:
		return "owned"
	case Shared:
		return "shared"
	default:
		return fmt.Sprintf("ObjectType(%d)", uint8(t))
	}
}

// OpKind enumerates the operations a transaction may request on an object.
type OpKind uint8

const (
	// OpIncrement adds Amount to the object's value. Commutative.
	OpIncrement OpKind = iota
	// OpDecrement subtracts Amount from the object's value, subject to the
	// condition that the resulting value stays >= Con. Commutative with
	// decrements on other objects; serialized per object via buckets.
	OpDecrement
	// OpAssign overwrites the object's value with Amount. Non-commutative;
	// only valid on shared objects and forces global ordering.
	OpAssign
	// OpRead observes the object's value without modifying it. Used by
	// contract transactions whose outcome depends on shared state.
	OpRead
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpIncrement:
		return "inc"
	case OpDecrement:
		return "dec"
	case OpAssign:
		return "assign"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Commutative reports whether the operation commutes with other operations
// of the same kind on distinct objects (and with increments on the same
// object). Assignments and reads of shared state are not commutative.
func (k OpKind) Commutative() bool {
	return k == OpIncrement || k == OpDecrement
}

// Op is one operation of a transaction on one object (the paper's per-object
// (key, op, con, type) tuple embedded in tx.O).
type Op struct {
	Key    Key        // object identifier
	Type   ObjectType // owned or shared
	Kind   OpKind     // operation to perform
	Amount Amount     // operand: delta for inc/dec, new value for assign
	Con    Amount     // condition: post-state must satisfy value >= Con
}

// IsPayerOp reports whether this op withdraws from an owned object, i.e. the
// op that determines bucket assignment (Sec. V-A: owned + decremental).
func (o Op) IsPayerOp() bool {
	return o.Type == Owned && o.Kind == OpDecrement
}

// TxKind classifies transactions per Sec. III-B.
type TxKind uint8

const (
	// Payment transactions touch only owned objects with inc/dec ops. They
	// are confirmed from partial logs without global ordering.
	Payment TxKind = iota
	// Contract transactions may touch shared objects and non-commutative
	// ops; they are confirmed through the global log.
	Contract
)

// String implements fmt.Stringer.
func (k TxKind) String() string {
	switch k {
	case Payment:
		return "payment"
	case Contract:
		return "contract"
	default:
		return fmt.Sprintf("TxKind(%d)", uint8(k))
	}
}

// TxID is the content digest of a transaction.
type TxID [32]byte

// String returns a short hex prefix for logging.
func (id TxID) String() string { return hex.EncodeToString(id[:8]) }

// Transaction is a client request (paper: tx = (O, id, sigma)).
type Transaction struct {
	Ops      []Op   // operations, at least one owned object involved
	Client   Key    // submitting client's account (an owned object)
	Nonce    uint64 // client-chosen uniquifier
	Sig      []byte // client signature over the canonical encoding
	Payload  []byte // opaque payload (models the 500-byte tx body)
	SubmitNS int64  // client submit time (virtual ns); not hashed

	// Idx is a dense 1-based per-run index stamped by the submission layer
	// (cluster.Run). It is not part of the content digest and carries no
	// protocol meaning; replicas use it to index per-transaction state with
	// a slice instead of hashing the 32-byte ID. 0 means "unindexed" —
	// consumers must fall back to ID-keyed maps (transactions built
	// directly by tests or custom sources).
	Idx uint64

	id     TxID
	hashed bool
}

// Kind derives the transaction class from its operations: any shared object
// or non-commutative op makes it a contract transaction.
func (tx *Transaction) Kind() TxKind {
	for _, op := range tx.Ops {
		if op.Type == Shared || !op.Kind.Commutative() {
			return Contract
		}
	}
	return Payment
}

// Payers returns the distinct owned-object keys with decremental operations,
// in first-appearance order. These determine bucket assignment.
func (tx *Transaction) Payers() []Key {
	var out []Key
	seen := make(map[Key]bool, len(tx.Ops))
	for _, op := range tx.Ops {
		if op.IsPayerOp() && !seen[op.Key] {
			seen[op.Key] = true
			out = append(out, op.Key)
		}
	}
	return out
}

// TotalDebit sums the decremental amounts over owned objects.
func (tx *Transaction) TotalDebit() Amount {
	var sum Amount
	for _, op := range tx.Ops {
		if op.IsPayerOp() {
			sum += op.Amount
		}
	}
	return sum
}

// TotalCredit sums the incremental amounts over owned objects.
func (tx *Transaction) TotalCredit() Amount {
	var sum Amount
	for _, op := range tx.Ops {
		if op.Type == Owned && op.Kind == OpIncrement {
			sum += op.Amount
		}
	}
	return sum
}

// Balanced reports whether debits equal credits over owned objects —
// a conservation sanity check for pure payments.
func (tx *Transaction) Balanced() bool { return tx.TotalDebit() == tx.TotalCredit() }

// ID returns the transaction's content digest, computed lazily and cached.
// The digest covers Ops, Client and Nonce (not Sig, Payload or timing).
func (tx *Transaction) ID() TxID {
	if !tx.hashed {
		h := sha256.New()
		var buf [8]byte
		writeStr := func(s string) {
			binary.BigEndian.PutUint64(buf[:], uint64(len(s)))
			h.Write(buf[:])
			h.Write([]byte(s))
		}
		writeStr(string(tx.Client))
		binary.BigEndian.PutUint64(buf[:], tx.Nonce)
		h.Write(buf[:])
		binary.BigEndian.PutUint64(buf[:], uint64(len(tx.Ops)))
		h.Write(buf[:])
		for _, op := range tx.Ops {
			writeStr(string(op.Key))
			h.Write([]byte{byte(op.Type), byte(op.Kind)})
			binary.BigEndian.PutUint64(buf[:], uint64(op.Amount))
			h.Write(buf[:])
			binary.BigEndian.PutUint64(buf[:], uint64(op.Con))
			h.Write(buf[:])
		}
		copy(tx.id[:], h.Sum(nil))
		tx.hashed = true
	}
	return tx.id
}

// SigningBytes returns the canonical byte string a client signs.
func (tx *Transaction) SigningBytes() []byte {
	id := tx.ID()
	return id[:]
}

// Validate performs stateless format checks: at least one op, at least one
// owned object (every tx is initiated by a client account), non-negative
// amounts, and assign ops only on shared objects.
func (tx *Transaction) Validate() error {
	if len(tx.Ops) == 0 {
		return fmt.Errorf("transaction %s has no operations", tx.ID())
	}
	ownedSeen := false
	for i, op := range tx.Ops {
		if op.Key == "" {
			return fmt.Errorf("transaction %s op %d has empty key", tx.ID(), i)
		}
		if op.Amount < 0 {
			return fmt.Errorf("transaction %s op %d has negative amount %d", tx.ID(), i, op.Amount)
		}
		if op.Kind == OpAssign && op.Type != Shared {
			return fmt.Errorf("transaction %s op %d assigns to an owned object", tx.ID(), i)
		}
		if op.Type == Owned {
			ownedSeen = true
		}
	}
	if !ownedSeen {
		return fmt.Errorf("transaction %s involves no owned object", tx.ID())
	}
	return nil
}

// StateVector is the Multi-BFT system state S = (sn_0, ..., sn_{m-1}):
// element i is the number of blocks delivered by instance i (so the next
// expected sequence number). The zero-length vector denotes the initial
// state of a system whose instance count is not yet known.
type StateVector []uint64

// Clone returns a deep copy.
func (s StateVector) Clone() StateVector {
	out := make(StateVector, len(s))
	copy(out, s)
	return out
}

// Covers reports whether s has delivered at least everything in t
// (pointwise >=). A block proposed under state t may be executed under any
// covering state s ("any subsequent state derived through valid updates").
func (s StateVector) Covers(t StateVector) bool {
	if len(s) < len(t) {
		return false
	}
	for i, v := range t {
		if s[i] < v {
			return false
		}
	}
	return true
}

// Equal reports pointwise equality.
func (s StateVector) Equal(t StateVector) bool {
	if len(s) != len(t) {
		return false
	}
	for i, v := range t {
		if s[i] != v {
			return false
		}
	}
	return true
}

// String renders the vector compactly, e.g. "(3,0,5)".
func (s StateVector) String() string {
	b := make([]byte, 0, 2+4*len(s))
	b = append(b, '(')
	for i, v := range s {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendUint(b, v)
	}
	return string(append(b, ')'))
}

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// BlockID identifies a block by content digest.
type BlockID [32]byte

// String returns a short hex prefix for logging.
func (id BlockID) String() string { return hex.EncodeToString(id[:8]) }

// Block is a batch of transactions proposed by the leader of one SB
// instance (paper: b = (txs, ins, sn, S, sigma); the Rank field carries
// Ladon's monotonic rank used by the dynamic global ordering algorithm).
type Block struct {
	Instance int           // SB instance that produced the block
	SN       uint64        // sequence number within the instance
	Rank     uint64        // Ladon rank assigned at proposal time
	State    StateVector   // system state the block's txs were validated under
	Txs      []Transaction // transaction batch
	// Refs lists worker blocks whose global order this block decides; used
	// only by dedicated-sequencer protocols (DQBFT), empty otherwise.
	Refs      []BlockRef
	Proposer  int    // replica index of the proposing leader
	Sig       []byte // leader signature over Digest()
	ProposeNS int64  // proposal time (virtual ns); not hashed

	digest   BlockID
	digested bool
}

// BlockRef identifies a block by instance and sequence number.
type BlockRef struct {
	Instance int
	SN       uint64
}

// Digest returns the block's content digest (instance, sn, rank, state and
// the IDs of contained transactions).
func (b *Block) Digest() BlockID {
	if !b.digested {
		h := sha256.New()
		var buf [8]byte
		put := func(v uint64) {
			binary.BigEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
		put(uint64(b.Instance))
		put(b.SN)
		put(b.Rank)
		put(uint64(len(b.State)))
		for _, v := range b.State {
			put(v)
		}
		put(uint64(len(b.Txs)))
		for i := range b.Txs {
			id := b.Txs[i].ID()
			h.Write(id[:])
		}
		put(uint64(len(b.Refs)))
		for _, r := range b.Refs {
			put(uint64(r.Instance))
			put(r.SN)
		}
		copy(b.digest[:], h.Sum(nil))
		b.digested = true
	}
	return b.digest
}

// OrderKey is the (rank, instance) pair used by the dynamic global ordering
// algorithm; blocks are globally ordered by rank, ties broken by instance.
type OrderKey struct {
	Rank     uint64
	Instance int
}

// Less reports whether k precedes o in global order (paper: k < o, written
// "k ≺ o").
func (k OrderKey) Less(o OrderKey) bool {
	if k.Rank != o.Rank {
		return k.Rank < o.Rank
	}
	return k.Instance < o.Instance
}

// Key returns the block's global ordering key.
func (b *Block) Key() OrderKey { return OrderKey{Rank: b.Rank, Instance: b.Instance} }

// SortBlocks orders blocks by their global OrderKey in place.
func SortBlocks(bs []*Block) {
	sort.Slice(bs, func(i, j int) bool { return bs[i].Key().Less(bs[j].Key()) })
}
