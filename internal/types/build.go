package types

// This file provides convenience constructors for the two transaction
// shapes the paper discusses: single/multi-payer payments and contract
// invocations. They are used by tests, examples and the workload generator.

// NewPayment builds a single-payer, single-payee payment transaction:
// payer transfers amount to payee. The condition on the payer enforces a
// non-negative balance after the decrement.
func NewPayment(payer, payee Key, amount Amount, nonce uint64) *Transaction {
	return &Transaction{
		Ops: []Op{
			{Key: payer, Type: Owned, Kind: OpDecrement, Amount: amount, Con: 0},
			{Key: payee, Type: Owned, Kind: OpIncrement, Amount: amount, Con: 0},
		},
		Client: payer,
		Nonce:  nonce,
	}
}

// Transfer describes one leg of a multi-party payment.
type Transfer struct {
	From   Key
	To     Key
	Amount Amount
}

// NewMultiPayment builds a payment with multiple payers and/or payees. The
// transaction is atomic: the escrow mechanism commits it only if every
// payer's decrement succeeds (paper Challenge/Solution I).
func NewMultiPayment(client Key, transfers []Transfer, nonce uint64) *Transaction {
	tx := &Transaction{Client: client, Nonce: nonce}
	// Aggregate per-account deltas so each account appears once per
	// direction, matching the paper's sub-transaction decomposition.
	debits := map[Key]Amount{}
	credits := map[Key]Amount{}
	var order []Key
	seen := map[Key]bool{}
	note := func(k Key) {
		if !seen[k] {
			seen[k] = true
			order = append(order, k)
		}
	}
	for _, t := range transfers {
		debits[t.From] += t.Amount
		credits[t.To] += t.Amount
		note(t.From)
		note(t.To)
	}
	for _, k := range order {
		if d := debits[k]; d > 0 {
			tx.Ops = append(tx.Ops, Op{Key: k, Type: Owned, Kind: OpDecrement, Amount: d, Con: 0})
		}
	}
	for _, k := range order {
		if c := credits[k]; c > 0 {
			tx.Ops = append(tx.Ops, Op{Key: k, Type: Owned, Kind: OpIncrement, Amount: c, Con: 0})
		}
	}
	return tx
}

// NewContractCall builds a contract transaction: each caller pays fee into
// escrow, and the contract performs non-commutative operations on shared
// records. The shared ops force the transaction through the global log.
func NewContractCall(client Key, callers []Key, fee Amount, shared []Op, nonce uint64) *Transaction {
	tx := &Transaction{Client: client, Nonce: nonce}
	for _, c := range callers {
		tx.Ops = append(tx.Ops, Op{Key: c, Type: Owned, Kind: OpDecrement, Amount: fee, Con: 0})
	}
	tx.Ops = append(tx.Ops, shared...)
	return tx
}

// NewSharedAssign is a helper for contract workloads: an assignment op on a
// shared record.
func NewSharedAssign(record Key, value Amount) Op {
	return Op{Key: record, Type: Shared, Kind: OpAssign, Amount: value}
}

// Clone returns an independent copy of the transaction with its own Ops
// slice (Payload stays shared read-only). The harness stamps per-run
// fields on submitted transactions — SubmitNS, the lazily cached digest —
// so a transaction reused across runs (especially concurrent ones) must be
// cloned per run.
func (tx *Transaction) Clone() *Transaction {
	cp := *tx
	cp.Ops = append([]Op(nil), tx.Ops...)
	return &cp
}

// NewSharedRead is a helper for contract workloads: a read of a shared
// record.
func NewSharedRead(record Key) Op {
	return Op{Key: record, Type: Shared, Kind: OpRead}
}
