package types

import (
	"testing"
	"testing/quick"
)

func TestTxKindClassification(t *testing.T) {
	pay := NewPayment("alice", "bob", 10, 1)
	if pay.Kind() != Payment {
		t.Fatalf("payment classified as %v", pay.Kind())
	}
	con := NewContractCall("alice", []Key{"alice"}, 1, []Op{NewSharedAssign("rec", 7)}, 1)
	if con.Kind() != Contract {
		t.Fatalf("contract classified as %v", con.Kind())
	}
	// A transaction with only owned objects but an assign is invalid, and a
	// read on shared state is a contract.
	read := &Transaction{Client: "alice", Ops: []Op{
		{Key: "alice", Type: Owned, Kind: OpDecrement, Amount: 1},
		NewSharedRead("rec"),
	}}
	if read.Kind() != Contract {
		t.Fatalf("shared read classified as %v", read.Kind())
	}
}

func TestTxPayers(t *testing.T) {
	tx := NewMultiPayment("alice", []Transfer{
		{From: "alice", To: "carol", Amount: 1},
		{From: "bob", To: "carol", Amount: 1},
		{From: "alice", To: "dave", Amount: 2},
	}, 1)
	payers := tx.Payers()
	if len(payers) != 2 || payers[0] != "alice" || payers[1] != "bob" {
		t.Fatalf("payers = %v, want [alice bob]", payers)
	}
	if tx.TotalDebit() != 4 || tx.TotalCredit() != 4 || !tx.Balanced() {
		t.Fatalf("debit=%d credit=%d", tx.TotalDebit(), tx.TotalCredit())
	}
}

func TestTxIDDeterministicAndDistinct(t *testing.T) {
	a := NewPayment("alice", "bob", 10, 1)
	b := NewPayment("alice", "bob", 10, 1)
	if a.ID() != b.ID() {
		t.Fatal("identical transactions have different IDs")
	}
	c := NewPayment("alice", "bob", 10, 2)
	if a.ID() == c.ID() {
		t.Fatal("different nonces produced the same ID")
	}
	d := NewPayment("alice", "bob", 11, 1)
	if a.ID() == d.ID() {
		t.Fatal("different amounts produced the same ID")
	}
}

func TestTxValidate(t *testing.T) {
	if err := NewPayment("alice", "bob", 10, 1).Validate(); err != nil {
		t.Fatalf("valid payment rejected: %v", err)
	}
	bad := &Transaction{Client: "a"}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty tx accepted")
	}
	neg := &Transaction{Client: "a", Ops: []Op{{Key: "a", Type: Owned, Kind: OpDecrement, Amount: -1}}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative amount accepted")
	}
	assignOwned := &Transaction{Client: "a", Ops: []Op{{Key: "a", Type: Owned, Kind: OpAssign, Amount: 1}}}
	if err := assignOwned.Validate(); err == nil {
		t.Fatal("assign on owned object accepted")
	}
	noOwned := &Transaction{Client: "a", Ops: []Op{NewSharedAssign("r", 1)}}
	if err := noOwned.Validate(); err == nil {
		t.Fatal("tx without owned object accepted")
	}
}

func TestStateVectorCovers(t *testing.T) {
	s := StateVector{3, 2, 5}
	cases := []struct {
		t    StateVector
		want bool
	}{
		{StateVector{3, 2, 5}, true},
		{StateVector{0, 0, 0}, true},
		{StateVector{}, true},
		{StateVector{3, 2}, true},
		{StateVector{4, 2, 5}, false},
		{StateVector{3, 2, 5, 0}, false},
	}
	for i, c := range cases {
		if got := s.Covers(c.t); got != c.want {
			t.Errorf("case %d: Covers(%v) = %v, want %v", i, c.t, got, c.want)
		}
	}
	if !s.Equal(StateVector{3, 2, 5}) || s.Equal(StateVector{3, 2}) {
		t.Fatal("Equal misbehaves")
	}
	if s.String() != "(3,2,5)" {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestStateVectorCoversReflexiveProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		s := StateVector(raw)
		return s.Covers(s) && s.Covers(s.Clone()) && s.Equal(s.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrderKeyLess(t *testing.T) {
	a := OrderKey{Rank: 1, Instance: 0}
	b := OrderKey{Rank: 1, Instance: 1}
	c := OrderKey{Rank: 2, Instance: 0}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Fatal("ordering broken")
	}
	if a.Less(a) {
		t.Fatal("irreflexivity broken")
	}
}

func TestOrderKeyTotalOrderProperty(t *testing.T) {
	f := func(r1, r2 uint64, i1, i2 uint8) bool {
		a := OrderKey{Rank: r1, Instance: int(i1)}
		b := OrderKey{Rank: r2, Instance: int(i2)}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		// Exactly one of a<b, b<a holds for distinct keys.
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockDigest(t *testing.T) {
	tx := NewPayment("alice", "bob", 10, 1)
	b1 := &Block{Instance: 0, SN: 1, Rank: 3, State: StateVector{1, 0}, Txs: []Transaction{*tx}}
	b2 := &Block{Instance: 0, SN: 1, Rank: 3, State: StateVector{1, 0}, Txs: []Transaction{*tx}}
	if b1.Digest() != b2.Digest() {
		t.Fatal("identical blocks have different digests")
	}
	b3 := &Block{Instance: 0, SN: 2, Rank: 3, State: StateVector{1, 0}, Txs: []Transaction{*tx}}
	if b1.Digest() == b3.Digest() {
		t.Fatal("different SN produced identical digest")
	}
	b4 := &Block{Instance: 1, SN: 1, Rank: 3, State: StateVector{1, 0}, Txs: []Transaction{*tx}}
	if b1.Digest() == b4.Digest() {
		t.Fatal("different instance produced identical digest")
	}
}

func TestSortBlocks(t *testing.T) {
	bs := []*Block{
		{Instance: 2, Rank: 5},
		{Instance: 0, Rank: 5},
		{Instance: 1, Rank: 3},
	}
	SortBlocks(bs)
	if bs[0].Rank != 3 || bs[1].Instance != 0 || bs[2].Instance != 2 {
		t.Fatalf("sorted order wrong: %+v", bs)
	}
}

func TestMultiPaymentAggregation(t *testing.T) {
	tx := NewMultiPayment("alice", []Transfer{
		{From: "alice", To: "bob", Amount: 3},
		{From: "alice", To: "bob", Amount: 4},
	}, 9)
	if len(tx.Ops) != 2 {
		t.Fatalf("expected aggregated ops, got %d", len(tx.Ops))
	}
	if tx.Ops[0].Amount != 7 || tx.Ops[1].Amount != 7 {
		t.Fatalf("aggregation wrong: %+v", tx.Ops)
	}
}

func TestContractCallShape(t *testing.T) {
	tx := NewContractCall("alice", []Key{"alice", "bob"}, 1, []Op{NewSharedAssign("rec", 42)}, 0)
	if tx.Kind() != Contract {
		t.Fatal("contract call not classified as contract")
	}
	payers := tx.Payers()
	if len(payers) != 2 {
		t.Fatalf("payers = %v", payers)
	}
	if tx.TotalDebit() != 2 {
		t.Fatalf("debit = %d", tx.TotalDebit())
	}
}
