package experiments

import (
	"strings"
	"testing"
)

// TestXValFigure pins the cross-validation figure end to end at the
// smallest scale: both backends produce one row per (protocol, n) cell
// in matching order, every cell measured progress, and the text
// rendering carries both tables.
func TestXValFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("X-val runs wall-clock cells; skipped under -short")
	}
	fig, err := XVal(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Figure != XValID {
		t.Fatalf("Figure = %q, want %q", fig.Figure, XValID)
	}
	if len(fig.Tables) != 2 {
		t.Fatalf("got %d tables, want 2 (sim-predicted, real-measured)", len(fig.Tables))
	}
	simRows, realRows := fig.Tables[0].Rows, fig.Tables[1].Rows
	modes, sizes := xvalCells()
	want := len(modes) * len(sizes)
	if len(simRows) != want || len(realRows) != want {
		t.Fatalf("rows: sim=%d real=%d, want %d each", len(simRows), len(realRows), want)
	}
	for i := range simRows {
		if simRows[i].Protocol != realRows[i].Protocol || simRows[i].N != realRows[i].N {
			t.Fatalf("row %d cells disagree: sim=%s/n=%d real=%s/n=%d",
				i, simRows[i].Protocol, simRows[i].N, realRows[i].Protocol, realRows[i].N)
		}
		if simRows[i].TputKTPS <= 0 {
			t.Errorf("sim cell %s/n=%d measured no throughput", simRows[i].Protocol, simRows[i].N)
		}
		if realRows[i].TputKTPS <= 0 {
			t.Errorf("real cell %s/n=%d measured no throughput", realRows[i].Protocol, realRows[i].N)
		}
		if realRows[i].LatencyS <= 0 {
			t.Errorf("real cell %s/n=%d measured no latency", realRows[i].Protocol, realRows[i].N)
		}
	}
	var sb strings.Builder
	fig.Render(&sb)
	out := sb.String()
	for _, marker := range []string{"sim-predicted", "real-measured", "Orthrus", "ISS", "Ladon"} {
		if !strings.Contains(out, marker) {
			t.Errorf("rendering lacks %q:\n%s", marker, out)
		}
	}
}

// TestXValExcludedFromSuite pins the design constraint that keeps the
// deterministic suite deterministic: X-val must never appear in
// FigureIDs (bench_test and the kernel-equivalence tests replay those
// expecting byte-identical results, which wall-clock cells cannot give).
func TestXValExcludedFromSuite(t *testing.T) {
	for _, id := range FigureIDs() {
		if id == XValID {
			t.Fatalf("FigureIDs contains %q; the wall-clock figure must stay out of the deterministic suite", XValID)
		}
	}
	if _, err := XVal(0); err == nil {
		t.Fatal("XVal(0) accepted an out-of-range scale")
	}
}
