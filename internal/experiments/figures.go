package experiments

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// Table is one titled block of sweep rows inside a figure.
type Table struct {
	Title string `json:"title"`
	Rows  []Row  `json:"rows"`
}

// FigureResult is the structured, JSON-serializable outcome of one figure:
// every number the figure plots, separated from its text rendering
// (Render). cmd/orthrus-bench -json writes a list of these.
type FigureResult struct {
	Figure     string            `json:"figure"`
	Title      string            `json:"title"`
	Tables     []Table           `json:"tables,omitempty"`
	Breakdowns []BreakdownResult `json:"breakdowns,omitempty"`
	Series     []SeriesResult    `json:"series,omitempty"`
	Scenarios  []ScenarioResult  `json:"scenarios,omitempty"`
	Soak       []SoakResult      `json:"soak,omitempty"`
}

// figureSpec pairs a figure's declarative job list with the pure assembler
// that shapes the measured results; results arrive indexed like jobs.
type figureSpec struct {
	id       string
	title    string
	jobs     []runner.Job
	assemble func(res []*cluster.Result) FigureResult
}

// figureTitle is the single source of figure titles: spec constructors and
// the jobless Figures listing both read it.
func figureTitle(id string) string {
	switch id {
	case "1b":
		return "Fig 1b: ISS latency breakdown with one straggler (WAN n=16)"
	case "3":
		return "Fig 3: WAN throughput/latency vs replica count"
	case "4":
		return "Fig 4: LAN throughput/latency vs replica count"
	case "5":
		return "Fig 5: Orthrus under varying payment proportions (WAN n=16)"
	case "6":
		return "Fig 6 (and Fig 1b): latency breakdown, WAN n=16, one straggler"
	case "7":
		return "Fig 7: Orthrus under detectable faults (crash at 9s, WAN n=16)"
	case "8":
		return "Fig 8: undetectable faults (WAN n=16)"
	case "S1":
		return "Fig S1: scenario suite — dynamic faults, partitions and load (WAN n=10)"
	case "S2":
		return "Fig S2: adversary suite — equivocation, censorship, silent leaders and view-change storms (WAN n=10)"
	case "F-scale":
		return "Fig F-scale: scale sweep — throughput, latency and messages per commit over n=4..100 (WAN)"
	}
	return ""
}

func fig1bSpec(scale float64) figureSpec {
	title := figureTitle("1b")
	return figureSpec{
		id: "1b", title: title,
		jobs: []runner.Job{breakdownJob(baseline.ISSMode(), scale)},
		assemble: func(res []*cluster.Result) FigureResult {
			return FigureResult{Figure: "1b", Title: title,
				Breakdowns: []BreakdownResult{toBreakdown(res[0])}}
		},
	}
}

func netSweepSpec(id, name string, net cluster.NetProfile, scale float64) figureSpec {
	clean := sweepJobs(net, 0, scale)
	straggled := sweepJobs(net, 1, scale)
	title := figureTitle(id)
	return figureSpec{
		id: id, title: title,
		jobs: append(append([]runner.Job{}, clean...), straggled...),
		assemble: func(res []*cluster.Result) FigureResult {
			return FigureResult{Figure: id, Title: title, Tables: []Table{
				{Title: fmt.Sprintf("Fig %sa/%sb: %s, no stragglers", id, id, name), Rows: sweepRows(res[:len(clean)], 0)},
				{Title: fmt.Sprintf("Fig %sc/%sd: %s, one straggler", id, id, name), Rows: sweepRows(res[len(clean):], 1)},
			}}
		},
	}
}

func fig5Spec(scale float64) figureSpec {
	clean := paymentJobs(0, scale)
	straggled := paymentJobs(1, scale)
	title := figureTitle("5")
	return figureSpec{
		id: "5", title: title,
		jobs: append(append([]runner.Job{}, clean...), straggled...),
		assemble: func(res []*cluster.Result) FigureResult {
			return FigureResult{Figure: "5", Title: title, Tables: []Table{
				{Title: "Fig 5: payment proportion sweep, no straggler", Rows: paymentRows(res[:len(clean)], 0)},
				{Title: "Fig 5: payment proportion sweep, one straggler", Rows: paymentRows(res[len(clean):], 1)},
			}}
		},
	}
}

func fig6Spec(scale float64) figureSpec {
	title := figureTitle("6")
	return figureSpec{
		id: "6", title: title,
		jobs: []runner.Job{
			breakdownJob(core.OrthrusMode(), scale),
			breakdownJob(baseline.ISSMode(), scale),
		},
		assemble: func(res []*cluster.Result) FigureResult {
			return FigureResult{Figure: "6", Title: title,
				Breakdowns: []BreakdownResult{toBreakdown(res[0]), toBreakdown(res[1])}}
		},
	}
}

func fig7Spec(scale float64) figureSpec {
	title := figureTitle("7")
	jobs := make([]runner.Job, len(faultCounts))
	for i, f := range faultCounts {
		jobs[i] = faultJob(f, scale)
	}
	return figureSpec{
		id: "7", title: title, jobs: jobs,
		assemble: func(res []*cluster.Result) FigureResult {
			out := FigureResult{Figure: "7", Title: title}
			for i, r := range res {
				out.Series = append(out.Series, toSeries(r, faultCounts[i]))
			}
			return out
		},
	}
}

func fig8Spec(scale float64) figureSpec {
	title := figureTitle("8")
	return figureSpec{
		id: "8", title: title,
		jobs: byzJobs(scale),
		assemble: func(res []*cluster.Result) FigureResult {
			return FigureResult{Figure: "8", Title: title,
				Tables: []Table{{Title: title, Rows: byzRows(res)}}}
		},
	}
}

// s1Spec is the scenario suite: each selected preset scenario (see
// scenario.Names) runs once per protocol in scenarioProtocols, and every
// cell reports its per-phase windows alongside run-level numbers.
func s1Spec(scale float64, names []string) figureSpec {
	title := figureTitle("S1")
	var jobs []runner.Job
	type cell struct{ name string }
	var cells []cell
	for _, name := range names {
		for _, mode := range scenarioProtocols() {
			jobs = append(jobs, scenarioJob(name, mode, scale))
			cells = append(cells, cell{name: name})
		}
	}
	return figureSpec{
		id: "S1", title: title, jobs: jobs,
		assemble: func(res []*cluster.Result) FigureResult {
			out := FigureResult{Figure: "S1", Title: title}
			for i, r := range res {
				out.Scenarios = append(out.Scenarios, toScenario(r, cells[i].name))
			}
			return out
		},
	}
}

// s2Spec is the adversary suite: every Byzantine attack preset (see
// scenario.AttackNames) runs once per protocol in scenarioProtocols, with
// per-phase windows splitting each run at the attack onset — the S2 figure
// shows throughput surviving the attack and recovering after the
// view-change machinery rotates the victims out.
func s2Spec(scale float64) figureSpec {
	title := figureTitle("S2")
	var jobs []runner.Job
	var names []string
	for _, name := range scenario.AttackNames() {
		for _, mode := range scenarioProtocols() {
			jobs = append(jobs, attackJob(name, mode, scale))
			names = append(names, name)
		}
	}
	return figureSpec{
		id: "S2", title: title, jobs: jobs,
		assemble: func(res []*cluster.Result) FigureResult {
			out := FigureResult{Figure: "S2", Title: title}
			for i, r := range res {
				out.Scenarios = append(out.Scenarios, toScenario(r, names[i]))
			}
			return out
		},
	}
}

// fscaleSpec is the scale-sweep figure: every protocol of the S1 panel
// over the F-scale replica-count axis, one table per protocol, each row
// reporting throughput, latency and messages per client-visible commit.
func fscaleSpec(scale float64) figureSpec {
	title := figureTitle("F-scale")
	counts := scaleReplicaCounts(scale)
	modes := scaleProtocols()
	var jobs []runner.Job
	for _, mode := range modes {
		for _, n := range counts {
			jobs = append(jobs, scaleJob(mode, n, scale))
		}
	}
	return figureSpec{
		id: "F-scale", title: title, jobs: jobs,
		assemble: func(res []*cluster.Result) FigureResult {
			out := FigureResult{Figure: "F-scale", Title: title}
			for pi, mode := range modes {
				rows := make([]Row, len(counts))
				for i, r := range res[pi*len(counts) : (pi+1)*len(counts)] {
					row := toRow(r, 0)
					if r.Confirmed > 0 {
						row.MsgsPerCommit = float64(r.Messages) / float64(r.Confirmed)
					}
					rows[i] = row
				}
				out.Tables = append(out.Tables, Table{
					Title: fmt.Sprintf("Fig F-scale: %s vs cluster size", mode.Name),
					Rows:  rows,
				})
			}
			return out
		},
	}
}

func figureSpecs(scale float64, scenarios []string) []figureSpec {
	return []figureSpec{
		fig1bSpec(scale),
		netSweepSpec("3", "WAN", cluster.WAN, scale),
		netSweepSpec("4", "LAN", cluster.LAN, scale),
		fig5Spec(scale),
		fig6Spec(scale),
		fig7Spec(scale),
		fig8Spec(scale),
		s1Spec(scale, scenarios),
		s2Spec(scale),
		fscaleSpec(scale),
	}
}

// FigureIDs returns the supported figure identifiers in render order.
func FigureIDs() []string {
	return []string{"1b", "3", "4", "5", "6", "7", "8", "S1", "S2", "F-scale"}
}

// FigureInfo names one supported figure for listings (orthrus-bench -list).
type FigureInfo struct {
	ID    string
	Title string
}

// Figures returns every supported figure's id and title in render order,
// without materializing any job lists.
func Figures() []FigureInfo {
	ids := FigureIDs()
	out := make([]FigureInfo, len(ids))
	for i, id := range ids {
		out[i] = FigureInfo{ID: id, Title: figureTitle(id)}
	}
	return out
}

// ScenarioNames returns the S1 scenario identifiers in figure order.
func ScenarioNames() []string { return scenario.Names() }

// AttackNames returns the S2 Byzantine attack preset identifiers in
// figure order.
func AttackNames() []string { return scenario.AttackNames() }

// Run executes the selected figures' job lists through one shared worker
// pool and returns one FigureResult per id, in the order requested.
// Results are independent of o.Workers: a parallel run reassembles in
// deterministic job order, so its output equals a serial run's.
func Run(ids []string, o runner.Options, scale float64) ([]FigureResult, error) {
	return RunScenarios(ids, nil, o, scale)
}

// RunScenarios is Run with the S1 scenario suite restricted to the named
// scenarios; nil or empty selects all of them (see ScenarioNames). The
// restriction only affects the S1 figure.
func RunScenarios(ids, scenarios []string, o runner.Options, scale float64) ([]FigureResult, error) {
	scale = clampScale(scale)
	if len(scenarios) == 0 {
		scenarios = scenario.Names()
	} else {
		valid := map[string]bool{}
		for _, name := range scenario.Names() {
			valid[name] = true
		}
		for _, name := range scenarios {
			if !valid[name] {
				return nil, fmt.Errorf("experiments: unknown scenario %q (want one of %v)", name, scenario.Names())
			}
		}
	}
	byID := map[string]figureSpec{}
	for _, s := range figureSpecs(scale, scenarios) {
		byID[s.id] = s
	}
	selected := make([]figureSpec, 0, len(ids))
	requested := make(map[string]bool, len(ids))
	for _, id := range ids {
		s, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown figure %q (want one of %v)", id, FigureIDs())
		}
		if requested[id] {
			return nil, fmt.Errorf("experiments: figure %q requested twice", id)
		}
		requested[id] = true
		selected = append(selected, s)
	}
	results := runner.Run(suiteJobs(selected), o)
	out := make([]FigureResult, 0, len(selected))
	off := 0
	for _, s := range selected {
		out = append(out, s.assemble(results[off:off+len(s.jobs)]))
		off += len(s.jobs)
	}
	return out, nil
}

// suiteJobs concatenates the selected figures' job lists, namespacing each
// key with its figure id: cluster.Config.Label alone is not unique across
// figures (e.g. Fig 3's n=16 Orthrus cell, Fig 7's faults=0 run and
// Fig 8's byz=0 run share a label), and pool-wide consumers of Job.Key
// (OnDone progress, debugging) need distinct keys per run.
func suiteJobs(selected []figureSpec) []runner.Job {
	var jobs []runner.Job
	for _, s := range selected {
		for _, j := range s.jobs {
			j.Key = "fig" + s.id + "/" + j.Key
			jobs = append(jobs, j)
		}
	}
	return jobs
}

// mustRun is the compatibility path for the fixed-id figure helpers, where
// an unknown-id error is impossible.
func mustRun(w io.Writer, id string, scale float64) {
	res, err := Run([]string{id}, runner.Options{}, scale)
	if err != nil {
		panic(err)
	}
	res[0].Render(w)
}

// Fig1b reproduces the motivating breakdown: ISS with a 10x straggler.
func Fig1b(w io.Writer, scale float64) { mustRun(w, "1b", scale) }

// Fig3 reproduces Fig. 3 (WAN): throughput and latency of all six
// protocols over 8..128 replicas, with zero and one straggler.
func Fig3(w io.Writer, scale float64) { mustRun(w, "3", scale) }

// Fig4 reproduces Fig. 4 (LAN).
func Fig4(w io.Writer, scale float64) { mustRun(w, "4", scale) }

// Fig5 reproduces Fig. 5: Orthrus under varying payment proportions, with
// and without a straggler (16 replicas, WAN).
func Fig5(w io.Writer, scale float64) { mustRun(w, "5", scale) }

// Fig6 reproduces Fig. 6: latency breakdown of Orthrus vs ISS with a
// straggler. Fig. 1b is the ISS row of the same experiment.
func Fig6(w io.Writer, scale float64) { mustRun(w, "6", scale) }

// Fig7 reproduces Fig. 7: throughput and latency over time with 0, 1 and 5
// crash faults injected at t = 9 s.
func Fig7(w io.Writer, scale float64) { mustRun(w, "7", scale) }

// Fig8 reproduces Fig. 8.
func Fig8(w io.Writer, scale float64) { mustRun(w, "8", scale) }

// FigS1 runs the scenario suite (beyond the paper): every preset dynamic
// fault/load scenario for Orthrus and two baselines, with per-phase
// metric windows around each event.
func FigS1(w io.Writer, scale float64) { mustRun(w, "S1", scale) }

// FigS2 runs the adversary suite (beyond the paper): every Byzantine
// attack preset — equivocation, censorship, silent leaders and a
// view-change storm — for Orthrus and two baselines, with per-phase
// metric windows around the attack onset.
func FigS2(w io.Writer, scale float64) { mustRun(w, "S2", scale) }

// All runs every figure at the given scale, sharing one worker pool across
// the whole suite.
func All(w io.Writer, scale float64) {
	res, err := Run(FigureIDs(), runner.Options{}, scale)
	if err != nil {
		panic(err)
	}
	for _, f := range res {
		f.Render(w)
	}
}
