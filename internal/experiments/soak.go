package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// SoakID identifies the long-horizon soak figure. Like X-val it is
// deliberately NOT part of FigureIDs: a soak cell runs hours of virtual
// time and is far too slow for the deterministic figure suite that "all"
// selects and the equivalence tests replay. cmd/orthrus-bench dispatches
// it separately ("-fig F-soak").
const SoakID = "F-soak"

// SoakInfo names the soak figure for listings, next to the Figures()
// entries.
func SoakInfo() FigureInfo {
	return FigureInfo{ID: SoakID,
		Title: "Fig F-soak: long-horizon soak — live-set census under crash/recover churn (WAN)"}
}

// SoakSample is one cluster-wide retained-state census of a soak run,
// mirroring cluster.LiveSetSample in figure units.
type SoakSample struct {
	AtS      float64 `json:"at_s"`
	Events   int     `json:"events"`
	Trackers int     `json:"trackers"`
	Slots    int     `json:"slots"`
	GlogQ    int     `json:"glog_q"`
	Archive  int     `json:"archive"`
	Total    int     `json:"total"`
}

// SoakResult is one soak cell: run-level numbers plus the live-set census
// profile. The bounded-memory acceptance signal is the second-half peak
// staying level with the first-half peak (after warmup, a leak shows as
// PeakSecondHalf pulling away; checkpoint GC keeps the profile flat).
type SoakResult struct {
	Protocol       string       `json:"protocol"`
	N              int          `json:"n"`
	VirtualS       float64      `json:"virtual_s"`
	TputKTPS       float64      `json:"tput_ktps"`
	Confirmed      int          `json:"confirmed"`
	ViewChanges    int          `json:"view_changes"`
	CatchUpBlocks  uint64       `json:"catchup_blocks"`
	PeakLiveSet    int          `json:"peak_live_set"`
	FinalLiveSet   int          `json:"final_live_set"`
	PeakFirstHalf  int          `json:"peak_first_half"`
	PeakSecondHalf int          `json:"peak_second_half"`
	Samples        []SoakSample `json:"samples"`
}

// SoakConfig is the soak cell at the given scale: Orthrus on a WAN under
// message-level PBFT with state transfer on, an hour of virtual time at
// full scale over n = 100 replicas (a quarter hour over n = 25 below half
// scale), continuous churn from the soak-churn scenario preset, and a
// live-set census every 64th of the run. The load and batching knobs are
// damped the same way as the F-scale giants so one virtual hour stays
// tractable; the figure measures retained state, not peak throughput.
func SoakConfig(scale float64) cluster.Config {
	n := 25
	dur := time.Duration(float64(time.Hour) * scale)
	if scale >= 0.5 {
		n = 100
	}
	if dur < 240*time.Second {
		dur = 240 * time.Second
	}
	cfg := cluster.Config{
		N:             n,
		Protocol:      core.OrthrusMode(),
		Net:           cluster.WAN,
		StateTransfer: true,
		SampleLiveSet: dur / 64,
		LoadTPS:       100,
		Duration:      dur,
		Warmup:        dur / 10,
		Drain:         60 * time.Second,
		BatchSize:     4096,
		BatchTimeout:  10 * time.Second,
		EpochLen:      4,
		ViewTimeout:   60 * time.Second,
		Workload:      workload.Config{Seed: 42},
		Seed:          42,
	}
	scn, err := scenario.Preset(scenario.SoakChurn, cfg.N, cfg.Duration, cfg.Seed)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	cfg.Scenario = scn
	return cfg
}

// Soak runs the long-horizon soak figure: one churned cell whose live-set
// census must stay flat after warmup. The cell runs alone — it needs the
// serial kernel (live-set sampling) and is itself hours of virtual time,
// so there is no grid to parallelize over.
func Soak(scale float64) (FigureResult, error) {
	if scale <= 0 || scale > 1 {
		return FigureResult{}, fmt.Errorf("experiments: scale must be in (0,1], got %g", scale)
	}
	cfg := SoakConfig(scale)
	res := cluster.Run(cfg)
	return FigureResult{
		Figure: SoakID,
		Title:  SoakInfo().Title,
		Soak:   []SoakResult{toSoak(res, cfg)},
	}, nil
}

func toSoak(res *cluster.Result, cfg cluster.Config) SoakResult {
	out := SoakResult{
		Protocol:      res.Protocol,
		N:             res.N,
		VirtualS:      (cfg.Duration + cfg.Drain).Seconds(),
		TputKTPS:      res.ThroughputTPS / 1000,
		Confirmed:     res.Confirmed,
		ViewChanges:   res.ViewChanges,
		CatchUpBlocks: res.StateTransferApplied,
		PeakLiveSet:   res.LiveSetPeak,
	}
	half := (cfg.Duration + cfg.Drain) / 2
	for _, s := range res.LiveSetSamples {
		out.Samples = append(out.Samples, SoakSample{
			AtS:      s.At.Seconds(),
			Events:   s.Events,
			Trackers: s.Trackers,
			Slots:    s.Slots,
			GlogQ:    s.GlogQ,
			Archive:  s.Archive,
			Total:    s.Total,
		})
		out.FinalLiveSet = s.Total
		if s.At <= half {
			if s.Total > out.PeakFirstHalf {
				out.PeakFirstHalf = s.Total
			}
		} else if s.Total > out.PeakSecondHalf {
			out.PeakSecondHalf = s.Total
		}
	}
	return out
}
