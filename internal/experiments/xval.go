package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

// XValID identifies the sim-vs-real cross-validation figure. It is
// deliberately NOT part of FigureIDs: its real-measured cells are
// wall-clock experiments on the host machine, so their numbers vary run
// to run, and the deterministic figure suite — which the serial/parallel
// equivalence tests replay expecting byte-identical results — cannot
// contain it. cmd/orthrus-bench dispatches it separately ("-fig X-val"),
// and "all" never selects it.
const XValID = "X-val"

// XValInfo names the cross-validation figure for listings, next to the
// Figures() entries.
func XValInfo() FigureInfo {
	return FigureInfo{ID: XValID,
		Title: "Fig X-val: sim-predicted vs real-measured throughput/latency (in-process transport, n=4,10)"}
}

// xvalCells is the figure grid: the three protocols at two cluster sizes.
func xvalCells() ([]core.Mode, []int) {
	return []core.Mode{core.OrthrusMode(), baseline.ISSMode(), baseline.LadonMode()}, []int{4, 10}
}

// xvalConfig is one cross-validation cell, valid for both backends: LAN
// profile (the real transport is in-process, so the LAN model is the
// simulator's comparable prediction), message-level PBFT, no faults, and
// durations/loads scaled like the rest of the suite. Duration here is
// real wall-clock time on the real backend — the floor keeps a heavily
// scaled-down run long enough to cover warmup plus a few batches.
func xvalConfig(mode core.Mode, n int, scale float64) cluster.Config {
	dur := time.Duration(float64(4*time.Second) * scale)
	if dur < 800*time.Millisecond {
		dur = 800 * time.Millisecond
	}
	return cluster.Config{
		N:            n,
		Protocol:     mode,
		Net:          cluster.LAN,
		LoadTPS:      100 + 900*scale,
		Duration:     dur,
		Warmup:       dur / 4,
		Drain:        2 * dur,
		BatchSize:    4096,
		BatchTimeout: 50 * time.Millisecond,
		EpochLen:     256,
		ViewTimeout:  10 * time.Second,
		Workload:     workload.Config{Seed: 42},
		Seed:         42,
	}
}

// XVal runs the cross-validation figure: every cell once through the
// discrete-event simulator and once over the in-process real transport,
// under the identical configuration and seeded workload. The figure's
// two tables put the simulator's prediction and the wall-clock
// measurement side by side, in the same row order. Cells run serially —
// real-backend cells are wall-clock measurements, and running them
// concurrently would contend for the host's cores and distort exactly
// the numbers being validated.
func XVal(scale float64) (FigureResult, error) {
	if scale <= 0 || scale > 1 {
		return FigureResult{}, fmt.Errorf("experiments: scale must be in (0,1], got %g", scale)
	}
	modes, sizes := xvalCells()
	var simRows, realRows []Row
	for _, n := range sizes {
		for _, mode := range modes {
			cfg := xvalConfig(mode, n, scale)
			simRows = append(simRows, toRow(cluster.Run(cfg), 0))
			realRows = append(realRows, toRow(cluster.RunReal(cfg), 0))
		}
	}
	return FigureResult{
		Figure: XValID,
		Title:  XValInfo().Title,
		Tables: []Table{
			{Title: "X-val (a): sim-predicted (discrete-event simulator, LAN model)", Rows: simRows},
			{Title: "X-val (b): real-measured (in-process transport, wall clock)", Rows: realRows},
		},
	}, nil
}
