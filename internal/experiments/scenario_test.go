package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/runner"
	"repro/internal/scenario"
)

// TestScenarioParallelMatchesSerial is the determinism regression for the
// scenario engine: an S1 sub-suite run serially and through the worker
// pool must produce identical ScenarioResults (phase windows included) and
// byte-identical rendered text.
func TestScenarioParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six 10-replica scenario clusters twice")
	}
	ids := []string{"S1"}
	names := []string{scenario.CrashRecover, scenario.FlashCrowd}
	serial, err := RunScenarios(ids, names, runner.Options{Workers: 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunScenarios(ids, names, runner.Options{Workers: 6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("S1 diverged:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	if len(serial[0].Scenarios) != len(names)*len(scenarioProtocols()) {
		t.Fatalf("wrong cell count: %d", len(serial[0].Scenarios))
	}
	for _, s := range serial[0].Scenarios {
		if len(s.Phases) < 2 {
			t.Fatalf("cell %s/%s has no phase windows: %+v", s.Scenario, s.Protocol, s)
		}
	}

	var serialText, parallelText bytes.Buffer
	for _, f := range serial {
		f.Render(&serialText)
	}
	for _, f := range parallel {
		f.Render(&parallelText)
	}
	if serialText.String() != parallelText.String() {
		t.Fatalf("rendered text diverged:\n%s\nvs\n%s", serialText.String(), parallelText.String())
	}
	serialJSON, _ := json.Marshal(serial)
	parallelJSON, _ := json.Marshal(parallel)
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Fatal("JSON artifacts diverged between serial and parallel runs")
	}
}

// TestS2SerialMatchesParallel extends the determinism regression to the
// adversary suite: the full S2 figure run serially and through the worker
// pool must produce identical results and byte-identical JSON, and every
// attack cell must report phase windows and survive the attack (nonzero
// throughput with at least one view change rotating the victims out).
func TestS2SerialMatchesParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs twelve 10-replica attack clusters twice")
	}
	serial, err := Run([]string{"S2"}, runner.Options{Workers: 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run([]string{"S2"}, runner.Options{Workers: 6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("S2 diverged:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	serialJSON, _ := json.Marshal(serial)
	parallelJSON, _ := json.Marshal(parallel)
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Fatal("JSON artifacts diverged between serial and parallel S2 runs")
	}
	if want := len(scenario.AttackNames()) * len(scenarioProtocols()); len(serial[0].Scenarios) != want {
		t.Fatalf("wrong cell count: %d, want %d", len(serial[0].Scenarios), want)
	}
	for _, s := range serial[0].Scenarios {
		if len(s.Phases) != 2 {
			t.Fatalf("cell %s/%s: want baseline+attack phase windows, got %+v", s.Scenario, s.Protocol, s.Phases)
		}
		if s.TputKTPS == 0 {
			t.Fatalf("cell %s/%s confirmed nothing", s.Scenario, s.Protocol)
		}
		if s.ViewChanges == 0 {
			t.Fatalf("cell %s/%s: attack provoked no view change", s.Scenario, s.Protocol)
		}
	}
}

// TestRunScenariosRejectsUnknownName: scenario selection validates against
// the preset registry.
func TestRunScenariosRejectsUnknownName(t *testing.T) {
	if _, err := RunScenarios([]string{"S1"}, []string{"no-such"}, runner.Options{}, 0.1); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}

// TestScenarioResultJSONRoundTrip extends the artifact round-trip check to
// the v2 scenarios field.
func TestScenarioResultJSONRoundTrip(t *testing.T) {
	in := FigureResult{
		Figure: "S1",
		Title:  "demo",
		Scenarios: []ScenarioResult{{
			Scenario: "crash-recover", Protocol: "Orthrus",
			TputKTPS: 12.5, LatencyS: 0.8, ViewChanges: 3,
			Phases: []PhaseStat{{Label: "baseline", StartS: 0, EndS: 1.5, Confirmed: 100, TputKTPS: 0.07, LatencyS: 0.5}},
		}},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out FigureResult
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", in, out)
	}
}
