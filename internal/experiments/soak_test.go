package experiments

import (
	"testing"
)

// TestSoakSmoke is the CI-scale bounded-memory gate: a floor-duration soak
// (n = 25, four virtual minutes, continuous crash/recover churn) whose
// live-set census must be flat after warmup. A retention leak anywhere in
// the checkpoint GC chain — slot logs, exec trackers, glog queues, archive
// rings, escrow records — shows up as the second-half peak pulling away
// from the first-half peak, because load is constant while virtual time
// accumulates. CI runs this under -race in the soak-smoke job; the full
// one-hour n = 100 profile is the F-soak figure itself.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes of virtual time; the soak-smoke CI job runs it")
	}
	res, err := Soak(0.01) // clamps to the 240 s floor at n = 25
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Soak) != 1 {
		t.Fatalf("expected one soak cell, got %d", len(res.Soak))
	}
	cell := res.Soak[0]
	t.Logf("confirmed=%d viewchanges=%d catchup=%d peak=%d first=%d second=%d final=%d samples=%d",
		cell.Confirmed, cell.ViewChanges, cell.CatchUpBlocks, cell.PeakLiveSet,
		cell.PeakFirstHalf, cell.PeakSecondHalf, cell.FinalLiveSet, len(cell.Samples))
	if len(cell.Samples) < 32 {
		t.Fatalf("census too sparse: %d samples", len(cell.Samples))
	}
	if cell.Confirmed == 0 {
		t.Fatal("soak confirmed nothing: the load never ran")
	}
	if cell.CatchUpBlocks == 0 {
		t.Fatal("churn produced no catch-up blocks: recoveries bypassed state transfer")
	}
	// The bounded-memory gate. Both halves see identical steady-state load,
	// so with working GC the peaks track each other; 1.25x headroom absorbs
	// churn-phase jitter (a replica mid-outage parks commits above its gap).
	if cell.PeakFirstHalf == 0 {
		t.Fatal("no first-half census: sampling misconfigured")
	}
	if lim := cell.PeakFirstHalf + cell.PeakFirstHalf/4; cell.PeakSecondHalf > lim {
		t.Fatalf("live set grew: second-half peak %d exceeds 1.25x first-half peak %d",
			cell.PeakSecondHalf, cell.PeakFirstHalf)
	}
	// Quiescence: after the drain the final census must be back near the
	// floor, not at the peak — retained state is released, not plateaued.
	if cell.FinalLiveSet > cell.PeakLiveSet/2 {
		t.Fatalf("final live set %d never drained below half the peak %d",
			cell.FinalLiveSet, cell.PeakLiveSet)
	}
}
