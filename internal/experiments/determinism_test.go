package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/workload"
)

// tinyGrid is a miniature protocol-vs-size sweep: small enough to run
// under -race in -short CI, real enough to exercise full cluster runs.
func tinyGrid() []runner.Job {
	var jobs []runner.Job
	for _, n := range []int{4, 7} {
		for _, mode := range []core.Mode{core.OrthrusMode(), baseline.ISSMode(), baseline.LadonMode()} {
			jobs = append(jobs, runner.NewJob(cluster.Config{
				N:         n,
				Protocol:  mode,
				Net:       cluster.LAN,
				Workload:  workload.Config{Accounts: 500, Seed: 42},
				LoadTPS:   500,
				Duration:  1500 * time.Millisecond,
				Warmup:    300 * time.Millisecond,
				Drain:     3 * time.Second,
				BatchSize: 64,
				NIC:       true,
				Seed:      42,
			}))
		}
	}
	return jobs
}

// TestParallelMatchesSerial is the determinism regression test: the same
// job grid run serially and through the full worker pool must produce
// identical Row values and byte-identical rendered text. Run with -race to
// prove the pool introduces no data races.
func TestParallelMatchesSerial(t *testing.T) {
	jobs := tinyGrid()
	serial := runner.Run(jobs, runner.Options{Workers: 1})
	parallel := runner.Run(jobs, runner.Options{Workers: 8})

	serialRows := sweepRows(serial, 0)
	parallelRows := sweepRows(parallel, 0)
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Fatalf("rows diverged:\nserial   %+v\nparallel %+v", serialRows, parallelRows)
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Events != p.Events || s.Confirmed != p.Confirmed || s.Aborted != p.Aborted {
			t.Fatalf("job %d (%s) diverged: serial %v parallel %v", i, jobs[i].Key, s, p)
		}
	}

	var serialText, parallelText bytes.Buffer
	printRows(&serialText, "tiny grid", serialRows)
	printRows(&parallelText, "tiny grid", parallelRows)
	if serialText.String() != parallelText.String() {
		t.Fatalf("rendered text diverged:\n%s\nvs\n%s", serialText.String(), parallelText.String())
	}
}

// TestFigureParallelMatchesSerial asserts determinism at the figure level:
// the full FigureResult (breakdowns included) and its rendering are
// independent of the worker count.
func TestFigureParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Fig. 6 configuration twice")
	}
	ids := []string{"6"}
	serial, err := Run(ids, runner.Options{Workers: 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(ids, runner.Options{Workers: 4}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("FigureResult diverged:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	var serialText, parallelText bytes.Buffer
	for _, f := range serial {
		f.Render(&serialText)
	}
	for _, f := range parallel {
		f.Render(&parallelText)
	}
	if serialText.String() != parallelText.String() {
		t.Fatalf("rendered text diverged:\n%s\nvs\n%s", serialText.String(), parallelText.String())
	}
}
