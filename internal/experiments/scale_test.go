package experiments

import (
	"encoding/json"
	"testing"

	"repro/internal/runner"
)

// TestScaleSerialMatchesParallel is the F-scale determinism regression:
// the figure's JSON artifact must be byte-identical whether its job grid
// runs serially or through the full worker pool, and race-clean under
// -race (CI runs this in the -short -race job). The scale caps n in
// -short mode: 0.05 trims the replica axis to {4, 10} message-level
// cells; the full run adds the n=25 cell.
func TestScaleSerialMatchesParallel(t *testing.T) {
	scale := 0.3
	if testing.Short() {
		scale = 0.05
	}
	serial, err := Run([]string{"F-scale"}, runner.Options{Workers: 1}, scale)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run([]string{"F-scale"}, runner.Options{Workers: 8}, scale)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.MarshalIndent(serial, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.MarshalIndent(parallel, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Fatalf("F-scale artifact diverged between serial and parallel runs:\n%s\nvs\n%s", sj, pj)
	}
	// Sanity on the artifact's content: every (protocol, n) cell reports
	// throughput and a positive messages-per-commit.
	if len(serial) != 1 || len(serial[0].Tables) != 3 {
		t.Fatalf("unexpected F-scale shape: %+v", serial)
	}
	for _, table := range serial[0].Tables {
		for _, row := range table.Rows {
			if row.TputKTPS <= 0 {
				t.Fatalf("cell %s/n=%d has zero throughput", row.Protocol, row.N)
			}
			if row.MsgsPerCommit <= 0 {
				t.Fatalf("cell %s/n=%d missing msgs/commit", row.Protocol, row.N)
			}
		}
	}
}
