package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

// The figure functions are exercised end to end by cmd/orthrus-bench and
// bench_test.go; these tests cover the scaffolding at minimal scale.

func TestReplicaCountsScale(t *testing.T) {
	if got := replicaCounts(1); len(got) != 5 || got[4] != 128 {
		t.Fatalf("full scale counts %v", got)
	}
	if got := replicaCounts(0.1); len(got) != 2 {
		t.Fatalf("tiny scale counts %v", got)
	}
	if got := replicaCounts(0.5); got[len(got)-1] != 64 {
		t.Fatalf("half scale counts %v", got)
	}
}

func TestLoadForShape(t *testing.T) {
	// Capacity declines with n and LAN doubles WAN.
	if loadFor(128, cluster.WAN, 1) >= loadFor(8, cluster.WAN, 1) {
		t.Fatal("load does not decline with n")
	}
	if loadFor(16, cluster.LAN, 1) != 2*loadFor(16, cluster.WAN, 1) {
		t.Fatal("LAN load not 2x WAN")
	}
	if loadFor(16, cluster.WAN, 0.5) != 0.5*loadFor(16, cluster.WAN, 1) {
		t.Fatal("scale not proportional")
	}
}

func TestClampScale(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{{0, 1}, {-1, 1}, {2, 1}, {0.3, 0.3}, {1, 1}} {
		if got := clampScale(c.in); got != c.want {
			t.Fatalf("clampScale(%v) = %v", c.in, got)
		}
	}
}

func TestBaseConfigRegimes(t *testing.T) {
	small := baseConfig(core.OrthrusMode(), 16, cluster.WAN, 1)
	if small.AnalyticSB || !small.NIC {
		t.Fatal("n=16 should be message-level with NIC")
	}
	big := baseConfig(core.OrthrusMode(), 64, cluster.WAN, 1)
	if !big.AnalyticSB || big.NIC {
		t.Fatal("n=64 should be analytic without NIC")
	}
}

func TestBreakdownSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full miniature cluster")
	}
	b := Breakdown(core.OrthrusMode(), 0.2)
	if b.Total <= 0 {
		t.Fatal("empty breakdown")
	}
	if len(b.Stages) != 5 {
		t.Fatalf("stages %v", b.Stages)
	}
}

func TestFig1bOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full miniature cluster")
	}
	var buf bytes.Buffer
	Fig1b(&buf, 0.2)
	out := buf.String()
	if !strings.Contains(out, "ISS") || !strings.Contains(out, "global%") {
		t.Fatalf("unexpected output: %s", out)
	}
}
