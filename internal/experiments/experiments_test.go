package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/runner"
)

// The figure functions are exercised end to end by cmd/orthrus-bench and
// bench_test.go; these tests cover the scaffolding at minimal scale.

func TestReplicaCountsScale(t *testing.T) {
	if got := replicaCounts(1); len(got) != 5 || got[4] != 128 {
		t.Fatalf("full scale counts %v", got)
	}
	if got := replicaCounts(0.1); len(got) != 2 {
		t.Fatalf("tiny scale counts %v", got)
	}
	if got := replicaCounts(0.5); got[len(got)-1] != 64 {
		t.Fatalf("half scale counts %v", got)
	}
}

func TestLoadForShape(t *testing.T) {
	// Capacity declines with n and LAN doubles WAN.
	if loadFor(128, cluster.WAN, 1) >= loadFor(8, cluster.WAN, 1) {
		t.Fatal("load does not decline with n")
	}
	if loadFor(16, cluster.LAN, 1) != 2*loadFor(16, cluster.WAN, 1) {
		t.Fatal("LAN load not 2x WAN")
	}
	if loadFor(16, cluster.WAN, 0.5) != 0.5*loadFor(16, cluster.WAN, 1) {
		t.Fatal("scale not proportional")
	}
}

func TestClampScale(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{{0, 1}, {-1, 1}, {2, 1}, {0.3, 0.3}, {1, 1}} {
		if got := clampScale(c.in); got != c.want {
			t.Fatalf("clampScale(%v) = %v", c.in, got)
		}
	}
}

func TestBaseConfigRegimes(t *testing.T) {
	small := baseConfig(core.OrthrusMode(), 16, cluster.WAN, 1)
	if small.AnalyticSB || !small.NIC {
		t.Fatal("n=16 should be message-level with NIC")
	}
	big := baseConfig(core.OrthrusMode(), 64, cluster.WAN, 1)
	if !big.AnalyticSB || big.NIC {
		t.Fatal("n=64 should be analytic without NIC")
	}
}

func TestBreakdownSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full miniature cluster")
	}
	b := Breakdown(core.OrthrusMode(), 0.2)
	if b.Total <= 0 {
		t.Fatal("empty breakdown")
	}
	if len(b.Stages) != 5 {
		t.Fatalf("stages %v", b.Stages)
	}
}

func TestFig1bOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full miniature cluster")
	}
	var buf bytes.Buffer
	Fig1b(&buf, 0.2)
	out := buf.String()
	if !strings.Contains(out, "ISS") || !strings.Contains(out, "global%") {
		t.Fatalf("unexpected output: %s", out)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run([]string{"9"}, runner.Options{}, 0.1); err == nil {
		t.Fatal("expected an error for an unknown figure id")
	}
}

func TestFigureIDsMatchSpecs(t *testing.T) {
	specs := figureSpecs(0.1, ScenarioNames())
	ids := FigureIDs()
	if len(specs) != len(ids) {
		t.Fatalf("%d specs for %d ids", len(specs), len(ids))
	}
	for i, s := range specs {
		if s.id != ids[i] {
			t.Fatalf("spec %d has id %q, want %q", i, s.id, ids[i])
		}
		if len(s.jobs) == 0 {
			t.Fatalf("figure %q has no jobs", s.id)
		}
	}
}

func TestFigureResultJSONRoundTrip(t *testing.T) {
	in := FigureResult{
		Figure: "3",
		Title:  "demo",
		Tables: []Table{{Title: "t", Rows: []Row{{Protocol: "Orthrus", N: 8, TputKTPS: 1.5, LatencyS: 0.25, P99S: 0.5}}}},
		Breakdowns: []BreakdownResult{{Protocol: "ISS",
			Stages: map[string]time.Duration{"Send": time.Second}, Total: time.Second}},
		Series: []SeriesResult{{Faults: 1, TimeS: []float64{0, 0.5}, TputKTPS: []float64{1, 2},
			LatencyS: []float64{0.1, 0.2}, ViewChange: 1}},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out FigureResult
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", in, out)
	}
}

func TestSuiteJobKeysUnique(t *testing.T) {
	specs := figureSpecs(1, ScenarioNames())
	jobs := suiteJobs(specs)
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j.Key] {
			t.Fatalf("duplicate suite job key %q", j.Key)
		}
		seen[j.Key] = true
	}
	if len(seen) != len(jobs) {
		t.Fatalf("%d unique keys for %d jobs", len(seen), len(jobs))
	}
}

func TestRunRejectsDuplicateFigure(t *testing.T) {
	if _, err := Run([]string{"6", "6"}, runner.Options{}, 0.1); err == nil {
		t.Fatal("expected an error for a duplicate figure id")
	}
}
