package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// figureShapes enumerates the message-level cell configurations of the
// F-scale, S1 and S2 figures — the exact runner.Job configs the figure
// grids submit, not hand-rolled approximations — with the NIC model
// switched off so the parallel kernel accepts them. The analytic F-scale
// cells are excluded: the parallel kernel rejects the analytic SB by
// design, so there is nothing to differentiate.
func figureShapes(scale float64, short bool) map[string]cluster.Config {
	shapes := map[string]cluster.Config{}
	for _, n := range []int{4, 10} {
		j := scaleJob(core.OrthrusMode(), n, scale)
		shapes["F-scale/n="+itoa(n)] = j.Config
	}
	s1, s2 := scenario.Names(), scenario.AttackNames()
	if short {
		s1, s2 = s1[:1], s2[:1]
	}
	for _, name := range s1 {
		shapes["S1/"+name] = scenarioJob(name, core.OrthrusMode(), scale).Config
	}
	for _, name := range s2 {
		shapes["S2/"+name] = attackJob(name, core.OrthrusMode(), scale).Config
	}
	for key, cfg := range shapes {
		cfg.NIC = false
		shapes[key] = cfg
	}
	return shapes
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestKernelFigureShapesSerialMatchesParallel is the experiments-level
// half of the kernel differential suite: every message-level figure shape
// (the F-scale small-n cells, the four S1 fault/load scenarios, the four
// S2 Byzantine attacks) must produce a byte-identical artifact row under
// the serial and the parallel kernel. The cluster-level suite pins the
// Result struct; this one pins the figures themselves — the JSON rows the
// paper artifacts are built from — across the exact configs the figure
// grids submit.
func TestKernelFigureShapesSerialMatchesParallel(t *testing.T) {
	scale := 0.15
	if testing.Short() {
		scale = 0.05
	}
	for key, cfg := range figureShapes(scale, testing.Short()) {
		key, cfg := key, cfg
		t.Run(key, func(t *testing.T) {
			serial := cluster.Run(cfg)
			pcfg := cfg
			pcfg.Kernel = cluster.KernelParallel
			pcfg.Workers = 2
			parallel := cluster.Run(pcfg)
			if parallel.Kernel != "parallel" || parallel.Shards < 2 {
				t.Fatalf("parallel run did not shard: kernel=%q shards=%d", parallel.Kernel, parallel.Shards)
			}
			parallel.Kernel, parallel.Shards = serial.Kernel, serial.Shards
			if !reflect.DeepEqual(serial, parallel) {
				sj, _ := json.MarshalIndent(serial, "", "  ")
				pj, _ := json.MarshalIndent(parallel, "", "  ")
				t.Fatalf("kernels diverged on %s:\n--- serial\n%s\n--- parallel\n%s", key, sj, pj)
			}
			// The artifact rows derive from the Result; equal Results must
			// serialize to byte-identical JSON, the form the figure files
			// commit.
			sj, err := json.Marshal(serial)
			if err != nil {
				t.Fatal(err)
			}
			pj, err := json.Marshal(parallel)
			if err != nil {
				t.Fatal(err)
			}
			if string(sj) != string(pj) {
				t.Fatalf("artifact bytes diverged on %s", key)
			}
		})
	}
}

// TestKernelFigureGridParallelWorkers reruns the F-scale figure through
// the experiments runner with the grid's own worker pool while each cell
// itself runs the parallel kernel config above — guarding against the
// two layers of parallelism (job-level workers, event-level shards)
// interfering with determinism.
func TestKernelFigureGridParallelWorkers(t *testing.T) {
	scale := 0.15
	if testing.Short() {
		scale = 0.05
	}
	shapes := figureShapes(scale, true)
	jobs := make([]runner.Job, 0, len(shapes))
	keys := make([]string, 0, len(shapes))
	for key, cfg := range shapes {
		pcfg := cfg
		pcfg.Kernel = cluster.KernelParallel
		pcfg.Workers = 2
		jobs = append(jobs, runner.NewJob(pcfg))
		keys = append(keys, key)
	}
	base := runner.Run(jobs, runner.Options{Workers: 1})
	again := runner.Run(jobs, runner.Options{Workers: 4})
	for i := range base {
		a, b := *base[i], *again[i]
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("grid workers changed a parallel-kernel cell result (%s)", keys[i])
		}
	}
}
