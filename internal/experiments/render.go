package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
)

// Text rendering of figure results. Renderers are pure: they read only the
// FigureResult, so rendering a parallel run reproduces a serial run's
// bytes exactly (the determinism regression test asserts this).

func printRows(w io.Writer, title string, rows []Row) {
	withMsgs := false
	for _, r := range rows {
		if r.MsgsPerCommit > 0 {
			withMsgs = true
			break
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-8s %5s %10s %12s %10s %10s", "proto", "n", "straggler", "tput(ktps)", "lat(s)", "p99(s)")
	if withMsgs {
		fmt.Fprintf(w, " %12s", "msgs/commit")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %5d %10d %12.1f %10.2f %10.2f",
			r.Protocol, r.N, r.Stragglers, r.TputKTPS, r.LatencyS, r.P99S)
		if withMsgs {
			fmt.Fprintf(w, " %12.1f", r.MsgsPerCommit)
		}
		fmt.Fprintln(w)
	}
}

func printBreakdown(w io.Writer, b BreakdownResult) {
	fmt.Fprintf(w, "%-8s", b.Protocol)
	for _, s := range metrics.Stages() {
		fmt.Fprintf(w, "  %s=%6.2fs", s.String()[:4], b.Stages[s.String()].Seconds())
	}
	frac := 0.0
	if b.Total > 0 {
		frac = b.Stages[metrics.StageGlobal.String()].Seconds() / b.Total.Seconds() * 100
	}
	fmt.Fprintf(w, "  total=%6.2fs  global%%=%.1f\n", b.Total.Seconds(), frac)
}

func printSeries(w io.Writer, s SeriesResult) {
	fmt.Fprintf(w, "f=%d (view changes observed: %d)\n", s.Faults, s.ViewChange)
	fmt.Fprintf(w, "  t(s):      ")
	for i := 0; i < len(s.TimeS); i += 4 {
		fmt.Fprintf(w, "%6.1f", s.TimeS[i])
	}
	fmt.Fprintf(w, "\n  tput(ktps):")
	for i := 0; i < len(s.TputKTPS); i += 4 {
		fmt.Fprintf(w, "%6.1f", s.TputKTPS[i])
	}
	fmt.Fprintf(w, "\n  lat(s):    ")
	for i := 0; i < len(s.LatencyS); i += 4 {
		fmt.Fprintf(w, "%6.1f", s.LatencyS[i])
	}
	fmt.Fprintln(w)
}

func printScenario(w io.Writer, s ScenarioResult) {
	fmt.Fprintf(w, "%-20s %-8s  tput=%7.1f ktps  lat=%5.2fs  vc=%d\n",
		s.Scenario, s.Protocol, s.TputKTPS, s.LatencyS, s.ViewChanges)
	for _, p := range s.Phases {
		fmt.Fprintf(w, "    %-20s [%5.1fs,%6.1fs)  %7.1f ktps  lat=%5.2fs\n",
			p.Label, p.StartS, p.EndS, p.TputKTPS, p.LatencyS)
	}
}

func printSoak(w io.Writer, s SoakResult) {
	fmt.Fprintf(w, "%-8s n=%-3d  virtual=%6.0fs  tput=%7.1f ktps  vc=%d  catchup=%d\n",
		s.Protocol, s.N, s.VirtualS, s.TputKTPS, s.ViewChanges, s.CatchUpBlocks)
	fmt.Fprintf(w, "    live-set peak=%d final=%d  half-peaks=%d/%d\n",
		s.PeakLiveSet, s.FinalLiveSet, s.PeakFirstHalf, s.PeakSecondHalf)
	fmt.Fprintf(w, "    t(s):    ")
	for i := 0; i < len(s.Samples); i += 8 {
		fmt.Fprintf(w, "%8.0f", s.Samples[i].AtS)
	}
	fmt.Fprintf(w, "\n    total:   ")
	for i := 0; i < len(s.Samples); i += 8 {
		fmt.Fprintf(w, "%8d", s.Samples[i].Total)
	}
	fmt.Fprintln(w)
}

// Render writes the figure's text form: a figure-level header for
// breakdown/series/scenario/soak figures, then every breakdown line,
// series block, scenario block, soak block and sweep table the figure
// holds.
func (f FigureResult) Render(w io.Writer) {
	if len(f.Breakdowns) > 0 || len(f.Series) > 0 || len(f.Scenarios) > 0 || len(f.Soak) > 0 {
		fmt.Fprintf(w, "\n== %s ==\n", f.Title)
	}
	for _, b := range f.Breakdowns {
		printBreakdown(w, b)
	}
	for _, s := range f.Series {
		printSeries(w, s)
	}
	for _, s := range f.Scenarios {
		printScenario(w, s)
	}
	for _, s := range f.Soak {
		printSoak(w, s)
	}
	for _, t := range f.Tables {
		printRows(w, t.Title, t.Rows)
	}
}
