// Package experiments defines one runnable configuration per table/figure
// of the paper's evaluation (Sec. VII). Each figure is a declarative job
// list (independent cluster.Config runs) plus a pure assembler that turns
// the measured results into a JSON-serializable FigureResult; rendering to
// text is separate (render.go). Job lists execute through internal/runner,
// so a figure — or the whole suite — fans out across every core while
// producing results identical to a serial sweep. Both cmd/orthrus-bench
// and the repository's benchmark suite call into it, so the numbers in
// EXPERIMENTS.md regenerate from one place.
//
// Scale: every experiment takes a Scale in (0, 1]; 1 runs the full
// configuration (all replica counts up to 128, paper durations), smaller
// values shrink durations and loads proportionally so the suite stays
// laptop-friendly. Replica counts of 32 and above use the analytic SB
// (validated against message-level PBFT in internal/sb); fault experiments
// always use message-level PBFT at n = 16.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// Scale bounds applied to every experiment.
func clampScale(s float64) float64 {
	if s <= 0 || s > 1 {
		return 1
	}
	return s
}

// replicaCounts returns the paper's x-axis {8,16,32,64,128}, trimmed under
// small scales to keep quick runs quick.
func replicaCounts(scale float64) []int {
	all := []int{8, 16, 32, 64, 128}
	switch {
	case scale >= 1:
		return all
	case scale >= 0.5:
		return all[:4]
	case scale >= 0.25:
		return all[:3]
	default:
		return all[:2]
	}
}

// loadFor models the per-size saturation load: bandwidth-bound Multi-BFT
// capacity declines gently with n (every replica ingests all m instances'
// blocks). LAN roughly doubles WAN capacity, as in Figs. 3 vs 4.
func loadFor(n int, net cluster.NetProfile, scale float64) float64 {
	base := 50000.0 / (1 + float64(n)/64.0)
	if net == cluster.LAN {
		base *= 2
	}
	return base * scale
}

// baseConfig assembles the shared experiment parameters of Sec. VII-A.
func baseConfig(mode core.Mode, n int, net cluster.NetProfile, scale float64) cluster.Config {
	dur := time.Duration(float64(20*time.Second) * scale)
	if dur < 4*time.Second {
		dur = 4 * time.Second
	}
	return cluster.Config{
		N:            n,
		Protocol:     mode,
		Net:          net,
		Workload:     workload.Config{Seed: 42},
		LoadTPS:      loadFor(n, net, scale),
		Duration:     dur,
		Warmup:       dur / 5,
		Drain:        2 * dur,
		BatchSize:    4096,
		BatchTimeout: 100 * time.Millisecond,
		EpochLen:     256,
		ViewTimeout:  10 * time.Second,
		AnalyticSB:   n >= 32,
		NIC:          n < 32,
		Seed:         42,
	}
}

// Row is one data point of a throughput/latency sweep. MsgsPerCommit is
// only populated by the F-scale figure (protocol messages delivered per
// client-visible confirmation; analytic-SB cells fold in the closed-form
// model's traffic) and omitted elsewhere — an additive orthrus-bench/v2
// schema extension.
type Row struct {
	Protocol      string  `json:"protocol"`
	N             int     `json:"n"`
	Stragglers    int     `json:"stragglers"`
	TputKTPS      float64 `json:"tput_ktps"`
	LatencyS      float64 `json:"latency_s"`
	P99S          float64 `json:"p99_s"`
	MsgsPerCommit float64 `json:"msgs_per_commit,omitempty"`
}

func toRow(res *cluster.Result, stragglers int) Row {
	return Row{
		Protocol:   res.Protocol,
		N:          res.N,
		Stragglers: stragglers,
		TputKTPS:   res.ThroughputTPS / 1000,
		LatencyS:   res.Latency.Mean().Seconds(),
		P99S:       res.Latency.Percentile(99).Seconds(),
	}
}

// BreakdownResult carries a five-stage latency split for one protocol.
// Stage durations marshal as nanoseconds.
type BreakdownResult struct {
	Protocol string                   `json:"protocol"`
	Stages   map[string]time.Duration `json:"stages_ns"`
	Total    time.Duration            `json:"total_ns"`
}

func toBreakdown(res *cluster.Result) BreakdownResult {
	out := BreakdownResult{Protocol: res.Protocol, Stages: map[string]time.Duration{}}
	for _, s := range metrics.Stages() {
		out.Stages[s.String()] = res.Breakdown.Mean(s)
	}
	out.Total = res.Breakdown.Total()
	return out
}

// SeriesResult is a Fig. 7 time series for one fault count.
type SeriesResult struct {
	Faults     int       `json:"faults"`
	TimeS      []float64 `json:"time_s"`
	TputKTPS   []float64 `json:"tput_ktps"`
	LatencyS   []float64 `json:"latency_s"`
	ViewChange int       `json:"view_changes"`
}

func toSeries(res *cluster.Result, faults int) SeriesResult {
	out := SeriesResult{Faults: faults, ViewChange: res.ViewChanges}
	for i := 0; i < res.Series.Bins(); i++ {
		out.TimeS = append(out.TimeS, float64(i)*res.Series.Bin.Seconds())
		out.TputKTPS = append(out.TputKTPS, res.Series.Throughput(i)/1000)
		out.LatencyS = append(out.LatencyS, res.Series.MeanLatency(i).Seconds())
	}
	return out
}

// PhaseStat is one scenario-delimited measurement window of a
// ScenarioResult: raw confirmation rate and latency between two scenario
// event times (see cluster.PhaseWindow).
type PhaseStat struct {
	Label     string  `json:"label"`
	StartS    float64 `json:"start_s"`
	EndS      float64 `json:"end_s"`
	Confirmed int     `json:"confirmed"`
	TputKTPS  float64 `json:"tput_ktps"`
	LatencyS  float64 `json:"latency_s"`
}

// ScenarioResult is one (scenario, protocol) cell of the S1 suite:
// run-level throughput/latency plus the per-phase windows that show the
// dynamics around each scenario event.
type ScenarioResult struct {
	Scenario    string      `json:"scenario"`
	Protocol    string      `json:"protocol"`
	TputKTPS    float64     `json:"tput_ktps"`
	LatencyS    float64     `json:"latency_s"`
	ViewChanges int         `json:"view_changes"`
	Phases      []PhaseStat `json:"phases"`
}

func toScenario(res *cluster.Result, name string) ScenarioResult {
	out := ScenarioResult{
		Scenario:    name,
		Protocol:    res.Protocol,
		TputKTPS:    res.ThroughputTPS / 1000,
		LatencyS:    res.Latency.Mean().Seconds(),
		ViewChanges: res.ViewChanges,
	}
	for _, p := range res.Phases {
		out.Phases = append(out.Phases, PhaseStat{
			Label:     p.Label,
			StartS:    p.Start.Seconds(),
			EndS:      p.End.Seconds(),
			Confirmed: p.Confirmed,
			TputKTPS:  p.ThroughputTPS / 1000,
			LatencyS:  p.MeanLatency.Seconds(),
		})
	}
	return out
}

// --- job-list builders: one declarative runner.Job per grid cell ---

// sweepJobs is the Fig. 3 / Fig. 4 protocol-vs-replica-count grid for one
// network profile and straggler count.
func sweepJobs(net cluster.NetProfile, stragglers int, scale float64) []runner.Job {
	scale = clampScale(scale)
	var jobs []runner.Job
	for _, n := range replicaCounts(scale) {
		for _, mode := range baseline.AllModes() {
			cfg := baseConfig(mode, n, net, scale)
			cfg.Stragglers = stragglers
			jobs = append(jobs, runner.NewJob(cfg))
		}
	}
	return jobs
}

func sweepRows(res []*cluster.Result, stragglers int) []Row {
	rows := make([]Row, len(res))
	for i, r := range res {
		rows[i] = toRow(r, stragglers)
	}
	return rows
}

// paymentFractions is the Fig. 5 x-axis; -1 means an explicit 0% payments.
var paymentFractions = []float64{-1, 0.2, 0.4, 0.6, 0.8, 1.0}

// paymentJobs runs Orthrus at n = 16 (WAN) across payment proportions.
func paymentJobs(stragglers int, scale float64) []runner.Job {
	scale = clampScale(scale)
	var jobs []runner.Job
	for _, frac := range paymentFractions {
		cfg := baseConfig(core.OrthrusMode(), 16, cluster.WAN, scale)
		cfg.Stragglers = stragglers
		cfg.Workload.PaymentFraction = frac
		jobs = append(jobs, runner.NewJob(cfg))
	}
	return jobs
}

func paymentRows(res []*cluster.Result, stragglers int) []Row {
	rows := make([]Row, len(res))
	for i, r := range res {
		row := toRow(r, stragglers)
		if frac := paymentFractions[i]; frac < 0 {
			row.Protocol = "pay=0%"
		} else {
			row.Protocol = fmt.Sprintf("pay=%.0f%%", frac*100)
		}
		rows[i] = row
	}
	return rows
}

// breakdownJob is the Fig. 6 configuration (16 replicas, WAN, one
// straggler) for one protocol.
func breakdownJob(mode core.Mode, scale float64) runner.Job {
	cfg := baseConfig(mode, 16, cluster.WAN, clampScale(scale))
	cfg.Stragglers = 1
	return runner.NewJob(cfg)
}

// faultJob is the Fig. 7 configuration: Orthrus, 16 replicas, WAN,
// crashing the given number of replicas at t = 9 s, view-change timeout
// 10 s, measured in 0.5 s bins.
func faultJob(faults int, scale float64) runner.Job {
	scale = clampScale(scale)
	cfg := baseConfig(core.OrthrusMode(), 16, cluster.WAN, 1)
	cfg.AnalyticSB = false
	cfg.NIC = true
	cfg.LoadTPS = loadFor(16, cluster.WAN, 1) * scale
	cfg.Duration = 25 * time.Second
	cfg.Drain = 10 * time.Second
	cfg.EpochLen = 64
	cfg.DetectableFaults = faults
	cfg.FaultAt = 9 * time.Second
	return runner.NewJob(cfg)
}

// faultCounts is the Fig. 7 fault axis.
var faultCounts = []int{0, 1, 5}

// byzJobs runs Fig. 8: Orthrus with 0..5 Byzantine selective-participation
// replicas (16 replicas, WAN).
func byzJobs(scale float64) []runner.Job {
	scale = clampScale(scale)
	var jobs []runner.Job
	for faults := 0; faults <= 5; faults++ {
		cfg := baseConfig(core.OrthrusMode(), 16, cluster.WAN, scale)
		cfg.AnalyticSB = false
		cfg.NIC = true
		cfg.UndetectableFaults = faults
		jobs = append(jobs, runner.NewJob(cfg))
	}
	return jobs
}

// scenarioProtocols is the S1 protocol panel: Orthrus plus two baselines
// with opposite global-ordering behavior (ISS predetermined, Ladon
// dynamic).
func scenarioProtocols() []core.Mode {
	return []core.Mode{core.OrthrusMode(), baseline.ISSMode(), baseline.LadonMode()}
}

// --- F-scale: cluster-size sweep over the scale-hardened hot path ---

// scaleReplicaCounts is the F-scale x-axis: the paper-range sizes
// {4, 10, 25, 50, 100}, trimmed under small scales like replicaCounts so
// quick runs stay quick, plus the large tier {250, 500, 1000} phased in
// from scale 0.25 (one size per quarter-scale step). The n >= 32 cells
// use the analytic SB (message-level simulation with m = n instances
// costs O(n^3) per block round — infeasible at n = 100 on any kernel);
// smaller cells run message-level PBFT under the NIC model, the regime
// the allocation pass targets. Tier cells run pulse-damped (see
// scaleJob), so even the n = 1000 cell is seconds-scale rather than
// minutes-scale; sub-0.25 scales (the -short CI tests) skip the tier
// entirely to keep the -race budget.
func scaleReplicaCounts(scale float64) []int {
	all := []int{4, 10, 25, 50, 100}
	tier := []int{250, 500, 1000}
	switch {
	case scale >= 1:
	case scale >= 0.5:
		all, tier = all[:4], tier[:2]
	case scale >= 0.25:
		all, tier = all[:3], tier[:1]
	default:
		return all[:2]
	}
	return append(all[:len(all):len(all)], tier...)
}

// scaleProtocols is the F-scale protocol panel, matching the S1 panel.
func scaleProtocols() []core.Mode { return scenarioProtocols() }

// scaleJob is one F-scale cell. Durations are half the paper figures'
// (the sweep has 15 cells and n = 100 dominates the suite's wall clock),
// and the analytic cells (n >= 32) run at a quarter of the per-size
// saturation load: every one of the n replicas executes every committed
// transaction, so the n = 100 cell's host-side cost is O(load x n) — the
// quarter load keeps the whole sweep's wall clock within the CI budget
// while latency and messages-per-commit, the figure's scale signals, are
// load-insensitive in the uncongested analytic regime.
func scaleJob(mode core.Mode, n int, scale float64) runner.Job {
	cfg := baseConfig(mode, n, cluster.WAN, scale)
	dur := cfg.Duration / 2
	if dur < 4*time.Second {
		dur = 4 * time.Second
	}
	cfg.Duration = dur
	cfg.Warmup = dur / 5
	cfg.Drain = dur
	if cfg.AnalyticSB {
		cfg.LoadTPS /= 4
	}
	if n >= 250 {
		// Large-tier damping: the dominant host cost at these sizes is
		// the n instances x n replicas lockstep proposal-pulse traffic
		// (O(n^2) events per pulse period), so the tier slows the pulse
		// 5x and trims the load further — latency and messages-per-commit,
		// the figure's scale signals, are unaffected in the uncongested
		// analytic regime, and the n = 1000 cell drops from minutes to
		// seconds.
		cfg.BatchTimeout = 500 * time.Millisecond
		cfg.EpochLen = 1024
		cfg.LoadTPS /= 4
	}
	return runner.NewJob(cfg)
}

// scenarioJob is one S1 cell: the named preset scenario applied to a
// 10-replica WAN cluster under message-level PBFT. The view-change timeout
// scales with the submission window so crash recovery stays visible at
// small scales.
func scenarioJob(name string, mode core.Mode, scale float64) runner.Job {
	cfg := baseConfig(mode, 10, cluster.WAN, clampScale(scale))
	cfg.AnalyticSB = false
	cfg.NIC = true
	cfg.EpochLen = 64
	cfg.ViewTimeout = cfg.Duration / 5
	scn, err := scenario.Preset(name, cfg.N, cfg.Duration, cfg.Seed)
	if err != nil {
		panic("experiments: " + err.Error()) // names come from scenario.Names
	}
	cfg.Scenario = scn
	return runner.NewJob(cfg)
}

// attackJob is one S2 cell: a Byzantine attack preset (see
// scenario.AttackNames) on the S1 cluster shape. The censorship detector's
// patience drops to 16 delivered blocks so a censoring leader is voted out
// well inside the submission window; the other attacks end through the
// same view-change machinery at the scenario-scaled timeout.
func attackJob(name string, mode core.Mode, scale float64) runner.Job {
	j := scenarioJob(name, mode, scale)
	j.Config.CensorshipBlocks = 16
	return runner.NewJob(j.Config)
}

func byzRows(res []*cluster.Result) []Row {
	rows := make([]Row, len(res))
	for i, r := range res {
		row := toRow(r, 0)
		row.Protocol = fmt.Sprintf("byz=%d", i)
		rows[i] = row
	}
	return rows
}

// --- direct sweep APIs (kept for callers that want rows, not figures) ---

// Sweep runs the Fig. 3 / Fig. 4 protocol-vs-replica-count grid for one
// network profile and straggler count and returns the rows.
func Sweep(net cluster.NetProfile, stragglers int, scale float64) []Row {
	return sweepRows(runner.Run(sweepJobs(net, stragglers, scale), runner.Options{}), stragglers)
}

// PaymentSweep runs Orthrus at n = 16 (WAN) across payment proportions.
func PaymentSweep(stragglers int, scale float64) []Row {
	return paymentRows(runner.Run(paymentJobs(stragglers, scale), runner.Options{}), stragglers)
}

// Breakdown runs the Fig. 6 configuration for one protocol and returns its
// stage split.
func Breakdown(mode core.Mode, scale float64) BreakdownResult {
	res := runner.Run([]runner.Job{breakdownJob(mode, scale)}, runner.Options{})
	return toBreakdown(res[0])
}

// FaultSeries runs one Fig. 7 fault count and returns its time series.
func FaultSeries(faults int, scale float64) SeriesResult {
	res := runner.Run([]runner.Job{faultJob(faults, scale)}, runner.Options{})
	return toSeries(res[0], faults)
}

// UndetectableSweep runs Fig. 8 and returns the rows.
func UndetectableSweep(scale float64) []Row {
	return byzRows(runner.Run(byzJobs(scale), runner.Options{}))
}
