// Package experiments defines one runnable configuration per table/figure
// of the paper's evaluation (Sec. VII) and prints the series the paper
// plots. Both cmd/orthrus-bench and the repository's benchmark suite call
// into it, so the numbers in EXPERIMENTS.md regenerate from one place.
//
// Scale: every experiment takes a Scale in (0, 1]; 1 runs the full
// configuration (all replica counts up to 128, paper durations), smaller
// values shrink durations and loads proportionally so the suite stays
// laptop-friendly. Replica counts of 32 and above use the analytic SB
// (validated against message-level PBFT in internal/sb); fault experiments
// always use message-level PBFT at n = 16.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Scale bounds applied to every experiment.
func clampScale(s float64) float64 {
	if s <= 0 || s > 1 {
		return 1
	}
	return s
}

// replicaCounts returns the paper's x-axis {8,16,32,64,128}, trimmed under
// small scales to keep quick runs quick.
func replicaCounts(scale float64) []int {
	all := []int{8, 16, 32, 64, 128}
	switch {
	case scale >= 1:
		return all
	case scale >= 0.5:
		return all[:4]
	case scale >= 0.25:
		return all[:3]
	default:
		return all[:2]
	}
}

// loadFor models the per-size saturation load: bandwidth-bound Multi-BFT
// capacity declines gently with n (every replica ingests all m instances'
// blocks). LAN roughly doubles WAN capacity, as in Figs. 3 vs 4.
func loadFor(n int, net cluster.NetProfile, scale float64) float64 {
	base := 50000.0 / (1 + float64(n)/64.0)
	if net == cluster.LAN {
		base *= 2
	}
	return base * scale
}

// baseConfig assembles the shared experiment parameters of Sec. VII-A.
func baseConfig(mode core.Mode, n int, net cluster.NetProfile, scale float64) cluster.Config {
	dur := time.Duration(float64(20*time.Second) * scale)
	if dur < 4*time.Second {
		dur = 4 * time.Second
	}
	return cluster.Config{
		N:            n,
		Protocol:     mode,
		Net:          net,
		Workload:     workload.Config{Seed: 42},
		LoadTPS:      loadFor(n, net, scale),
		Duration:     dur,
		Warmup:       dur / 5,
		Drain:        2 * dur,
		BatchSize:    4096,
		BatchTimeout: 100 * time.Millisecond,
		EpochLen:     256,
		ViewTimeout:  10 * time.Second,
		AnalyticSB:   n >= 32,
		NIC:          n < 32,
		Seed:         42,
	}
}

// Row is one data point of a throughput/latency sweep.
type Row struct {
	Protocol   string
	N          int
	Stragglers int
	TputKTPS   float64
	LatencyS   float64
	P99S       float64
}

func printRows(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-8s %5s %10s %12s %10s %10s\n", "proto", "n", "straggler", "tput(ktps)", "lat(s)", "p99(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %5d %10d %12.1f %10.2f %10.2f\n",
			r.Protocol, r.N, r.Stragglers, r.TputKTPS, r.LatencyS, r.P99S)
	}
}

func toRow(res *cluster.Result, stragglers int) Row {
	return Row{
		Protocol:   res.Protocol,
		N:          res.N,
		Stragglers: stragglers,
		TputKTPS:   res.ThroughputTPS / 1000,
		LatencyS:   res.Latency.Mean().Seconds(),
		P99S:       res.Latency.Percentile(99).Seconds(),
	}
}

// Sweep runs the Fig. 3 / Fig. 4 protocol-vs-replica-count grid for one
// network profile and straggler count and returns the rows.
func Sweep(net cluster.NetProfile, stragglers int, scale float64) []Row {
	scale = clampScale(scale)
	var rows []Row
	for _, n := range replicaCounts(scale) {
		for _, mode := range baseline.AllModes() {
			cfg := baseConfig(mode, n, net, scale)
			cfg.Stragglers = stragglers
			rows = append(rows, toRow(cluster.Run(cfg), stragglers))
		}
	}
	return rows
}

// Fig3 reproduces Fig. 3 (WAN): throughput and latency of all six
// protocols over 8..128 replicas, with zero and one straggler.
func Fig3(w io.Writer, scale float64) {
	printRows(w, "Fig 3a/3b: WAN, no stragglers", Sweep(cluster.WAN, 0, scale))
	printRows(w, "Fig 3c/3d: WAN, one straggler", Sweep(cluster.WAN, 1, scale))
}

// Fig4 reproduces Fig. 4 (LAN).
func Fig4(w io.Writer, scale float64) {
	printRows(w, "Fig 4a/4b: LAN, no stragglers", Sweep(cluster.LAN, 0, scale))
	printRows(w, "Fig 4c/4d: LAN, one straggler", Sweep(cluster.LAN, 1, scale))
}

// PaymentSweep runs Orthrus at n = 16 (WAN) across payment proportions.
func PaymentSweep(stragglers int, scale float64) []Row {
	scale = clampScale(scale)
	fractions := []float64{-1, 0.2, 0.4, 0.6, 0.8, 1.0} // -1 = explicit 0%
	var rows []Row
	for _, frac := range fractions {
		cfg := baseConfig(core.OrthrusMode(), 16, cluster.WAN, scale)
		cfg.Stragglers = stragglers
		cfg.Workload.PaymentFraction = frac
		res := cluster.Run(cfg)
		row := toRow(res, stragglers)
		if frac < 0 {
			row.Protocol = "pay=0%"
		} else {
			row.Protocol = fmt.Sprintf("pay=%.0f%%", frac*100)
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig5 reproduces Fig. 5: Orthrus under varying payment proportions, with
// and without a straggler (16 replicas, WAN).
func Fig5(w io.Writer, scale float64) {
	printRows(w, "Fig 5: payment proportion sweep, no straggler", PaymentSweep(0, scale))
	printRows(w, "Fig 5: payment proportion sweep, one straggler", PaymentSweep(1, scale))
}

// BreakdownResult carries a five-stage latency split for one protocol.
type BreakdownResult struct {
	Protocol string
	Stages   map[string]time.Duration
	Total    time.Duration
}

// Breakdown runs the Fig. 6 configuration (16 replicas, WAN, one
// straggler) for one protocol and returns its stage split.
func Breakdown(mode core.Mode, scale float64) BreakdownResult {
	scale = clampScale(scale)
	cfg := baseConfig(mode, 16, cluster.WAN, scale)
	cfg.Stragglers = 1
	res := cluster.Run(cfg)
	out := BreakdownResult{Protocol: mode.Name, Stages: map[string]time.Duration{}}
	for _, s := range metrics.Stages() {
		out.Stages[s.String()] = res.Breakdown.Mean(s)
	}
	out.Total = res.Breakdown.Total()
	return out
}

func printBreakdown(w io.Writer, b BreakdownResult) {
	fmt.Fprintf(w, "%-8s", b.Protocol)
	for _, s := range metrics.Stages() {
		fmt.Fprintf(w, "  %s=%6.2fs", s.String()[:4], b.Stages[s.String()].Seconds())
	}
	frac := 0.0
	if b.Total > 0 {
		frac = b.Stages[metrics.StageGlobal.String()].Seconds() / b.Total.Seconds() * 100
	}
	fmt.Fprintf(w, "  total=%6.2fs  global%%=%.1f\n", b.Total.Seconds(), frac)
}

// Fig6 reproduces Fig. 6: latency breakdown of Orthrus vs ISS with a
// straggler. Fig. 1b is the ISS row of the same experiment.
func Fig6(w io.Writer, scale float64) {
	fmt.Fprintf(w, "\n== Fig 6 (and Fig 1b): latency breakdown, WAN n=16, one straggler ==\n")
	printBreakdown(w, Breakdown(core.OrthrusMode(), scale))
	printBreakdown(w, Breakdown(baseline.ISSMode(), scale))
}

// SeriesResult is a Fig. 7 time series for one fault count.
type SeriesResult struct {
	Faults     int
	TimeS      []float64
	TputKTPS   []float64
	LatencyS   []float64
	ViewChange int
}

// FaultSeries runs the Fig. 7 configuration: Orthrus, 16 replicas, WAN,
// crashing the given number of replicas at t = 9 s, view-change timeout
// 10 s, measured in 0.5 s bins.
func FaultSeries(faults int, scale float64) SeriesResult {
	scale = clampScale(scale)
	cfg := baseConfig(core.OrthrusMode(), 16, cluster.WAN, 1)
	cfg.AnalyticSB = false
	cfg.NIC = true
	cfg.LoadTPS = loadFor(16, cluster.WAN, 1) * scale
	cfg.Duration = 25 * time.Second
	cfg.Drain = 10 * time.Second
	cfg.EpochLen = 64
	cfg.DetectableFaults = faults
	cfg.FaultAt = 9 * time.Second
	res := cluster.Run(cfg)
	out := SeriesResult{Faults: faults, ViewChange: res.ViewChanges}
	for i := 0; i < res.Series.Bins(); i++ {
		out.TimeS = append(out.TimeS, float64(i)*res.Series.Bin.Seconds())
		out.TputKTPS = append(out.TputKTPS, res.Series.Throughput(i)/1000)
		out.LatencyS = append(out.LatencyS, res.Series.MeanLatency(i).Seconds())
	}
	return out
}

// Fig7 reproduces Fig. 7: throughput and latency over time with 0, 1 and 5
// crash faults injected at t = 9 s.
func Fig7(w io.Writer, scale float64) {
	fmt.Fprintf(w, "\n== Fig 7: Orthrus under detectable faults (crash at 9s, WAN n=16) ==\n")
	for _, f := range []int{0, 1, 5} {
		s := FaultSeries(f, scale)
		fmt.Fprintf(w, "f=%d (view changes observed: %d)\n", s.Faults, s.ViewChange)
		fmt.Fprintf(w, "  t(s):      ")
		for i := 0; i < len(s.TimeS); i += 4 {
			fmt.Fprintf(w, "%6.1f", s.TimeS[i])
		}
		fmt.Fprintf(w, "\n  tput(ktps):")
		for i := 0; i < len(s.TputKTPS); i += 4 {
			fmt.Fprintf(w, "%6.1f", s.TputKTPS[i])
		}
		fmt.Fprintf(w, "\n  lat(s):    ")
		for i := 0; i < len(s.LatencyS); i += 4 {
			fmt.Fprintf(w, "%6.1f", s.LatencyS[i])
		}
		fmt.Fprintln(w)
	}
}

// UndetectableSweep runs Fig. 8: Orthrus with 0..5 Byzantine
// selective-participation replicas (16 replicas, WAN).
func UndetectableSweep(scale float64) []Row {
	scale = clampScale(scale)
	var rows []Row
	for faults := 0; faults <= 5; faults++ {
		cfg := baseConfig(core.OrthrusMode(), 16, cluster.WAN, scale)
		cfg.AnalyticSB = false
		cfg.NIC = true
		cfg.UndetectableFaults = faults
		res := cluster.Run(cfg)
		row := toRow(res, 0)
		row.Protocol = fmt.Sprintf("byz=%d", faults)
		rows = append(rows, row)
	}
	return rows
}

// Fig8 reproduces Fig. 8.
func Fig8(w io.Writer, scale float64) {
	printRows(w, "Fig 8: undetectable faults (WAN n=16)", UndetectableSweep(scale))
}

// Fig1b reproduces the motivating breakdown: ISS with a 10x straggler.
func Fig1b(w io.Writer, scale float64) {
	fmt.Fprintf(w, "\n== Fig 1b: ISS latency breakdown with one straggler (WAN n=16) ==\n")
	printBreakdown(w, Breakdown(baseline.ISSMode(), scale))
}

// All runs every figure at the given scale.
func All(w io.Writer, scale float64) {
	Fig1b(w, scale)
	Fig3(w, scale)
	Fig4(w, scale)
	Fig5(w, scale)
	Fig6(w, scale)
	Fig7(w, scale)
	Fig8(w, scale)
}
