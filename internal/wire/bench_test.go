package wire

import (
	"fmt"
	"testing"
)

// benchName labels one message-type cell of the codec benchmarks.
func benchName(msg any) string {
	return fmt.Sprintf("%T", msg)[len("*"):]
}

// BenchmarkWireAppend measures encoding each message type into a
// preallocated scratch buffer — the pooled-frame hot path every real
// transport send takes. With the buffer warm, Append must not allocate
// at all (TestAppendZeroAllocs pins exactly that).
func BenchmarkWireAppend(b *testing.B) {
	for _, msg := range messages() {
		b.Run(benchName(msg), func(b *testing.B) {
			buf := make([]byte, 0, 4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = Append(buf[:0], msg)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireDecode measures decoding each message type. Decoded
// messages own their memory (the receiver keeps them), so decode allocs
// are inherent — this tracks how few of them the arena carving gets
// away with.
func BenchmarkWireDecode(b *testing.B) {
	for _, msg := range messages() {
		enc, err := Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchName(msg), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
