package wire

import (
	"bytes"
	"testing"
)

// FuzzWireRoundTrip throws arbitrary bytes at the decoder (following the
// FuzzScenarioDSL pattern: the seed corpus under testdata/fuzz holds one
// valid encoding per message type plus known-malformed inputs). The
// properties pinned:
//
//  1. Decode never panics — malformed input returns an error.
//  2. Anything that decodes re-encodes, and the re-encoding is a fixed
//     point: decode(encode(m)) == m, checked as byte equality of a second
//     encode/decode round (the codec is canonical, but raw fuzz input may
//     use non-minimal varints, so the input itself is not compared).
func FuzzWireRoundTrip(f *testing.F) {
	// Seed every message type through the pooled-frame encode path the
	// transports use: Append onto one warm scratch buffer reused across
	// messages, exactly like a sync.Pool frame (byte-identical to Encode,
	// pinned here so corpus inputs cover that path's real outputs). Each
	// encoding is also seeded truncated mid-message and with trailing
	// garbage — the shapes a reused read buffer shows a buggy decoder.
	scratch := make([]byte, 0, 4096)
	for _, msg := range messages() {
		enc, err := Append(scratch[:0], msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bytes.Clone(enc))
		f.Add(bytes.Clone(enc[:len(enc)/2]))
		f.Add(append(bytes.Clone(enc), 0xEE, 0xEE))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x01})
	f.Add([]byte{tagViewChange, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Encode(msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		msg2, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding failed to decode: %v", err)
		}
		enc2, err := Encode(msg2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point:\n  first:  %x\n  second: %x", enc, enc2)
		}
	})
}
