// Package wire gives every message the replicas exchange — the pbft
// protocol messages, the core checkpoint and client submissions — a stable,
// self-describing binary encoding, so the same state machines that run
// in-process over the simulator can cross goroutine channels or TCP
// sockets (internal/transport).
//
// Format: one type-tag byte, then the message's fields in declaration
// order. Unsigned integers are uvarints, signed integers are zigzag
// varints, byte strings are length-prefixed, and 32-byte digests are raw.
// There are no optional fields or maps, so a message has exactly one
// encoding — encode(decode(b)) == b for every valid b, which the
// FuzzWireRoundTrip target pins.
//
// The codec deliberately omits fields that carry no protocol meaning
// across a wire: Transaction.Idx is a per-run dense index stamped by the
// local submission layer (receivers fall back to ID-keyed maps), so it
// decodes as zero.
//
// Ownership: Decode is borrow-safe. The returned message never aliases
// the input buffer — every variable-length field is copied into memory
// the message owns — so callers may reuse or overwrite the buffer the
// moment Decode returns (transports decode out of pooled frames and
// recycled socket-read buffers on exactly this contract; pinned by
// TestDecodeOwnsItsData). Encoding through Append on a warm scratch
// buffer performs zero allocations (pinned by TestAppendZeroAllocs).
package wire

import (
	"encoding/binary"
	"fmt"
	"unsafe"

	"repro/internal/core"
	"repro/internal/pbft"
	"repro/internal/types"
)

// Message type tags. The tag values are part of the wire format: never
// renumber an existing tag, only append.
const (
	tagPrePrepare byte = 1 + iota
	tagPrepare
	tagCommit
	tagViewChange
	tagNewView
	tagCheckpoint
	tagSubmit
	tagStateTransferReq
	tagStateTransferResp
)

// Encode serializes a replica message into a fresh buffer. It accepts
// exactly the types a replica's network handler dispatches on: the pbft
// message set, *core.CheckpointMsg and *core.SubmitMsg. Unknown types
// error — transports must fail loudly rather than drop traffic silently.
func Encode(msg any) ([]byte, error) {
	return Append(nil, msg)
}

// Append serializes msg onto dst and returns the extended slice (the
// append idiom: transports reuse one scratch buffer per send loop).
func Append(dst []byte, msg any) ([]byte, error) {
	switch m := msg.(type) {
	case *pbft.PrePrepare:
		dst = append(dst, tagPrePrepare)
		return appendPrePrepare(dst, m), nil
	case *pbft.Prepare:
		dst = append(dst, tagPrepare)
		dst = appendUint(dst, uint64(m.Instance))
		dst = appendUint(dst, m.View)
		dst = appendUint(dst, m.Seq)
		dst = append(dst, m.Digest[:]...)
		return appendUint(dst, uint64(m.Replica)), nil
	case *pbft.Commit:
		dst = append(dst, tagCommit)
		dst = appendUint(dst, uint64(m.Instance))
		dst = appendUint(dst, m.View)
		dst = appendUint(dst, m.Seq)
		dst = append(dst, m.Digest[:]...)
		return appendUint(dst, uint64(m.Replica)), nil
	case *pbft.ViewChange:
		dst = append(dst, tagViewChange)
		dst = appendUint(dst, uint64(m.Instance))
		dst = appendUint(dst, m.NewView)
		dst = appendUint(dst, uint64(m.Replica))
		dst = appendUint(dst, m.Delivered)
		dst = appendUint(dst, uint64(len(m.Prepared)))
		for i := range m.Prepared {
			p := &m.Prepared[i]
			dst = appendUint(dst, p.Seq)
			dst = appendUint(dst, p.View)
			dst = appendBlock(dst, p.Block)
		}
		return dst, nil
	case *pbft.NewView:
		dst = append(dst, tagNewView)
		dst = appendUint(dst, uint64(m.Instance))
		dst = appendUint(dst, m.View)
		dst = appendUint(dst, uint64(len(m.Reproposals)))
		for _, p := range m.Reproposals {
			dst = appendPrePrepare(dst, p)
		}
		return dst, nil
	case *core.CheckpointMsg:
		dst = append(dst, tagCheckpoint)
		dst = appendUint(dst, m.Epoch)
		dst = append(dst, m.Digest[:]...)
		return appendUint(dst, uint64(m.Replica)), nil
	case *core.SubmitMsg:
		dst = append(dst, tagSubmit)
		return appendTx(dst, m.Tx), nil
	case *core.StateTransferReq:
		dst = append(dst, tagStateTransferReq)
		dst = appendUint(dst, uint64(m.Replica))
		dst = appendUint(dst, uint64(len(m.State)))
		for _, v := range m.State {
			dst = appendUint(dst, v)
		}
		return dst, nil
	case *core.StateTransferResp:
		dst = append(dst, tagStateTransferResp)
		dst = appendUint(dst, uint64(m.Replica))
		dst = appendUint(dst, m.Cert.Stable)
		dst = append(dst, m.Cert.Digest[:]...)
		dst = appendUint(dst, uint64(len(m.Cert.Bound)))
		for i := range m.Cert.Bound {
			dst = append(dst, m.Cert.Bound[i][:]...)
		}
		dst = appendUint(dst, uint64(len(m.Runs)))
		for i := range m.Runs {
			run := &m.Runs[i]
			dst = appendUint(dst, uint64(run.Instance))
			dst = appendUint(dst, uint64(len(run.Blocks)))
			for _, b := range run.Blocks {
				dst = appendBlock(dst, b)
			}
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("wire: cannot encode %T", msg)
	}
}

// Decode parses one encoded message. It is the inverse of Encode for every
// valid buffer and returns an error — never panics — on truncated,
// oversized or otherwise malformed input, including trailing garbage.
func Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("wire: empty message")
	}
	r := reader{b: data[1:]}
	var msg any
	switch data[0] {
	case tagPrePrepare:
		msg = r.prePrepare()
	case tagPrepare:
		m := &pbft.Prepare{}
		m.Instance = int(r.uint())
		m.View = r.uint()
		m.Seq = r.uint()
		r.digest(m.Digest[:])
		m.Replica = int(r.uint())
		msg = m
	case tagCommit:
		m := &pbft.Commit{}
		m.Instance = int(r.uint())
		m.View = r.uint()
		m.Seq = r.uint()
		r.digest(m.Digest[:])
		m.Replica = int(r.uint())
		msg = m
	case tagViewChange:
		m := &pbft.ViewChange{}
		m.Instance = int(r.uint())
		m.NewView = r.uint()
		m.Replica = int(r.uint())
		m.Delivered = r.uint()
		if n := r.count(); n > 0 {
			m.Prepared = make([]pbft.PreparedEntry, n)
			for i := range m.Prepared {
				m.Prepared[i].Seq = r.uint()
				m.Prepared[i].View = r.uint()
				m.Prepared[i].Block = r.block()
			}
		}
		msg = m
	case tagNewView:
		m := &pbft.NewView{}
		m.Instance = int(r.uint())
		m.View = r.uint()
		if n := r.count(); n > 0 {
			m.Reproposals = make([]*pbft.PrePrepare, n)
			for i := range m.Reproposals {
				m.Reproposals[i] = r.prePrepare()
			}
		}
		msg = m
	case tagCheckpoint:
		m := &core.CheckpointMsg{}
		m.Epoch = r.uint()
		r.digest(m.Digest[:])
		m.Replica = int(r.uint())
		msg = m
	case tagSubmit:
		msg = &core.SubmitMsg{Tx: r.tx()}
	case tagStateTransferReq:
		m := &core.StateTransferReq{}
		m.Replica = int(r.uint())
		if n := r.count(); n > 0 {
			m.State = make(types.StateVector, n)
			for i := range m.State {
				m.State[i] = r.uint()
			}
		}
		msg = m
	case tagStateTransferResp:
		m := &core.StateTransferResp{}
		m.Replica = int(r.uint())
		m.Cert.Stable = r.uint()
		r.digest(m.Cert.Digest[:])
		if n := r.count(); n > 0 {
			m.Cert.Bound = make([][32]byte, n)
			for i := range m.Cert.Bound {
				r.digest(m.Cert.Bound[i][:])
			}
		}
		if n := r.count(); n > 0 {
			m.Runs = make([]core.BlockRun, n)
			for i := range m.Runs {
				m.Runs[i].Instance = int(r.uint())
				if bn := r.count(); bn > 0 {
					m.Runs[i].Blocks = make([]*types.Block, bn)
					for j := range m.Runs[i].Blocks {
						m.Runs[i].Blocks[j] = r.block()
					}
				}
			}
		}
		msg = m
	default:
		return nil, fmt.Errorf("wire: unknown message tag %d", data[0])
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after message", len(r.b))
	}
	return msg, nil
}

// --- encoding helpers ---

func appendUint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendInt(dst []byte, v int64) []byte   { return binary.AppendVarint(dst, v) }

func appendBytes(dst, b []byte) []byte {
	dst = appendUint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendString length-prefixes a string field without converting it to a
// byte slice first — appending string contents directly keeps Append on
// a warm buffer allocation-free.
func appendString(dst []byte, s string) []byte {
	dst = appendUint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendPrePrepare(dst []byte, m *pbft.PrePrepare) []byte {
	dst = appendUint(dst, uint64(m.Instance))
	dst = appendUint(dst, m.View)
	dst = appendUint(dst, m.Seq)
	return appendBlock(dst, m.Block)
}

func appendBlock(dst []byte, b *types.Block) []byte {
	if b == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = appendUint(dst, uint64(b.Instance))
	dst = appendUint(dst, b.SN)
	dst = appendUint(dst, b.Rank)
	dst = appendUint(dst, uint64(len(b.State)))
	for _, v := range b.State {
		dst = appendUint(dst, v)
	}
	dst = appendUint(dst, uint64(len(b.Txs)))
	for i := range b.Txs {
		dst = appendTxValue(dst, &b.Txs[i])
	}
	dst = appendUint(dst, uint64(len(b.Refs)))
	for _, ref := range b.Refs {
		dst = appendUint(dst, uint64(ref.Instance))
		dst = appendUint(dst, ref.SN)
	}
	dst = appendUint(dst, uint64(b.Proposer))
	dst = appendBytes(dst, b.Sig)
	return appendInt(dst, b.ProposeNS)
}

func appendTx(dst []byte, tx *types.Transaction) []byte {
	if tx == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return appendTxValue(dst, tx)
}

func appendTxValue(dst []byte, tx *types.Transaction) []byte {
	dst = appendUint(dst, uint64(len(tx.Ops)))
	for _, op := range tx.Ops {
		dst = appendString(dst, string(op.Key))
		dst = append(dst, byte(op.Type), byte(op.Kind))
		dst = appendInt(dst, int64(op.Amount))
		dst = appendInt(dst, int64(op.Con))
	}
	dst = appendString(dst, string(tx.Client))
	dst = appendUint(dst, tx.Nonce)
	dst = appendBytes(dst, tx.Sig)
	dst = appendBytes(dst, tx.Payload)
	return appendInt(dst, tx.SubmitNS)
}

// --- decoding helpers ---

// reader is a cursor over an encoded message with sticky error handling:
// the first malformed read poisons it and every later read returns zero
// values, so decoders read field sequences without per-field checks.
//
// Variable-length fields are carved from one shared arena allocation
// instead of one heap object each: the sum of every remaining field's
// content is bounded by the bytes left in the input, so a single buffer
// sized at the first carve serves the whole message. Each carve is
// capacity-clipped (three-index slice), so appending to one decoded
// field can never spill into a sibling's region.
type reader struct {
	b     []byte
	arena []byte
	err   error
}

// carve reserves n exclusively-owned bytes from the arena.
func (r *reader) carve(n int) []byte {
	if cap(r.arena)-len(r.arena) < n {
		// Every later carve copies bytes not yet consumed from r.b, so
		// len(r.b) bounds all remaining content: one allocation suffices.
		r.arena = make([]byte, 0, max(n, len(r.b)))
	}
	out := r.arena[len(r.arena) : len(r.arena)+n : len(r.arena)+n]
	r.arena = r.arena[:len(r.arena)+n]
	return out
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *reader) uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// count reads a collection length and bounds it by the bytes remaining
// (every element encodes to at least one byte), so a malformed header
// cannot demand a huge allocation.
func (r *reader) count() int {
	n := r.uint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)) {
		r.fail("collection of %d elements exceeds %d remaining bytes", n, len(r.b))
		return 0
	}
	return int(n)
}

func (r *reader) bytes() []byte {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := r.carve(n)
	copy(out, r.b)
	r.b = r.b[n:]
	return out
}

// str reads a string field without the double copy of
// string(r.bytes()). The carved region is exclusively owned by the
// returned string: the arena cursor has moved past it, no other field
// can alias it, and []byte fields carved from the same arena are
// capacity-clipped to their own regions — so nothing can ever mutate
// the string's backing bytes, which is what makes the zero-copy
// conversion sound.
func (r *reader) str() string {
	n := r.count()
	if r.err != nil || n == 0 {
		return ""
	}
	out := r.carve(n)
	copy(out, r.b)
	r.b = r.b[n:]
	return unsafe.String(&out[0], n)
}

func (r *reader) digest(dst []byte) {
	if r.err != nil {
		return
	}
	if len(r.b) < len(dst) {
		r.fail("truncated %d-byte digest", len(dst))
		return
	}
	copy(dst, r.b)
	r.b = r.b[len(dst):]
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("truncated byte")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) prePrepare() *pbft.PrePrepare {
	m := &pbft.PrePrepare{}
	m.Instance = int(r.uint())
	m.View = r.uint()
	m.Seq = r.uint()
	m.Block = r.block()
	return m
}

func (r *reader) block() *types.Block {
	if r.byte() == 0 || r.err != nil {
		return nil
	}
	b := &types.Block{}
	b.Instance = int(r.uint())
	b.SN = r.uint()
	b.Rank = r.uint()
	if n := r.count(); n > 0 {
		b.State = make(types.StateVector, n)
		for i := range b.State {
			b.State[i] = r.uint()
		}
	}
	if n := r.count(); n > 0 {
		b.Txs = make([]types.Transaction, n)
		for i := range b.Txs {
			r.txValue(&b.Txs[i])
		}
	}
	if n := r.count(); n > 0 {
		b.Refs = make([]types.BlockRef, n)
		for i := range b.Refs {
			b.Refs[i].Instance = int(r.uint())
			b.Refs[i].SN = r.uint()
		}
	}
	b.Proposer = int(r.uint())
	b.Sig = r.bytes()
	b.ProposeNS = r.int()
	return b
}

func (r *reader) tx() *types.Transaction {
	if r.byte() == 0 || r.err != nil {
		return nil
	}
	tx := &types.Transaction{}
	r.txValue(tx)
	return tx
}

func (r *reader) txValue(tx *types.Transaction) {
	if n := r.count(); n > 0 {
		tx.Ops = make([]types.Op, n)
		for i := range tx.Ops {
			op := &tx.Ops[i]
			op.Key = types.Key(r.str())
			op.Type = types.ObjectType(r.byte())
			op.Kind = types.OpKind(r.byte())
			op.Amount = types.Amount(r.int())
			op.Con = types.Amount(r.int())
		}
	}
	tx.Client = types.Key(r.str())
	tx.Nonce = r.uint()
	tx.Sig = r.bytes()
	tx.Payload = r.bytes()
	tx.SubmitNS = r.int()
}
