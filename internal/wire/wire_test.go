package wire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/pbft"
	"repro/internal/types"
)

// sampleTx builds a transaction exercising every field, including a
// negative-capable condition and an opaque payload.
func sampleTx(nonce uint64) types.Transaction {
	return types.Transaction{
		Ops: []types.Op{
			{Key: "alice", Type: types.Owned, Kind: types.OpDecrement, Amount: 30, Con: 0},
			{Key: "bob", Type: types.Owned, Kind: types.OpIncrement, Amount: 30},
			{Key: "counter", Type: types.Shared, Kind: types.OpAssign, Amount: 7, Con: -1},
		},
		Client:   "alice",
		Nonce:    nonce,
		Sig:      []byte{1, 2, 3},
		Payload:  bytes.Repeat([]byte{0xAB}, 16),
		SubmitNS: 12345,
	}
}

func sampleBlock() *types.Block {
	return &types.Block{
		Instance:  2,
		SN:        7,
		Rank:      9,
		State:     types.StateVector{1, 0, 4, 2},
		Txs:       []types.Transaction{sampleTx(1), sampleTx(2)},
		Refs:      []types.BlockRef{{Instance: 0, SN: 3}, {Instance: 3, SN: 1}},
		Proposer:  2,
		Sig:       []byte{9, 9},
		ProposeNS: 777,
	}
}

// messages enumerates one instance of every encodable message type, each
// exercising populated and empty collection fields.
func messages() []any {
	tx := sampleTx(3)
	return []any{
		&pbft.PrePrepare{Instance: 1, View: 2, Seq: 3, Block: sampleBlock()},
		&pbft.PrePrepare{Instance: 0, View: 0, Seq: 0, Block: &types.Block{Instance: 0, SN: 0}},
		&pbft.Prepare{Instance: 1, View: 2, Seq: 3, Digest: types.BlockID{1, 2}, Replica: 4},
		&pbft.Commit{Instance: 1, View: 2, Seq: 3, Digest: types.BlockID{5}, Replica: 0},
		&pbft.ViewChange{Instance: 2, NewView: 5, Replica: 1, Delivered: 11,
			Prepared: []pbft.PreparedEntry{{Seq: 11, View: 4, Block: sampleBlock()}}},
		&pbft.ViewChange{Instance: 0, NewView: 1, Replica: 3, Delivered: 0},
		&pbft.NewView{Instance: 2, View: 5,
			Reproposals: []*pbft.PrePrepare{{Instance: 2, View: 5, Seq: 11, Block: sampleBlock()}}},
		&pbft.NewView{Instance: 1, View: 9},
		&core.CheckpointMsg{Epoch: 3, Digest: [32]byte{7, 7, 7}, Replica: 2},
		&core.SubmitMsg{Tx: &tx},
		&core.StateTransferReq{Replica: 1, State: types.StateVector{4, 0, 9, 2}},
		&core.StateTransferReq{Replica: 0},
		&core.StateTransferResp{Replica: 2,
			Cert: core.CheckpointCert{Stable: 2, Digest: [32]byte{1, 2}, Bound: [][32]byte{{3}, {4}, {5}, {6}}},
			Runs: []core.BlockRun{
				{Instance: 1, Blocks: []*types.Block{sampleBlock()}},
				{Instance: 3, Blocks: []*types.Block{{Instance: 3, SN: 12}, {Instance: 3, SN: 13}}},
			}},
		&core.StateTransferResp{Replica: 3},
	}
}

// TestRoundTrip pins decode(encode(m)) == m for every message type. The
// comparison re-encodes the decoded message (the codec is canonical, so
// equal values encode to equal bytes) and additionally checks semantic
// equality through content digests where the types define them.
func TestRoundTrip(t *testing.T) {
	for _, msg := range messages() {
		enc, err := Encode(msg)
		if err != nil {
			t.Fatalf("Encode(%T): %v", msg, err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%T): %v", msg, err)
		}
		if reflect.TypeOf(dec) != reflect.TypeOf(msg) {
			t.Fatalf("Decode(%T) returned %T", msg, dec)
		}
		re, err := Encode(dec)
		if err != nil {
			t.Fatalf("re-Encode(%T): %v", msg, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("%T: encode(decode(enc)) != enc\n  enc: %x\n  re:  %x", msg, enc, re)
		}
	}
}

// TestRoundTripDigests pins that content digests survive the wire: a block
// decoded on another replica must hash identically or consensus breaks.
func TestRoundTripDigests(t *testing.T) {
	b := sampleBlock()
	enc, err := Encode(&pbft.PrePrepare{Instance: b.Instance, Block: b})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	got := dec.(*pbft.PrePrepare).Block
	if got.Digest() != b.Digest() {
		t.Fatalf("block digest changed across the wire: %v != %v", got.Digest(), b.Digest())
	}
	for i := range b.Txs {
		if got.Txs[i].ID() != b.Txs[i].ID() {
			t.Fatalf("tx %d ID changed across the wire", i)
		}
	}
}

// TestIdxNotEncoded pins the deliberate omission: the dense per-run index
// is local bookkeeping and must decode as zero.
func TestIdxNotEncoded(t *testing.T) {
	tx := sampleTx(1)
	tx.Idx = 42
	enc, err := Encode(&core.SubmitMsg{Tx: &tx})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.(*core.SubmitMsg).Tx.Idx; got != 0 {
		t.Fatalf("Idx crossed the wire: got %d, want 0", got)
	}
}

// TestDecodeMalformed pins error (not panic) on empty input, unknown tags,
// truncations at every prefix length, and trailing garbage.
func TestDecodeMalformed(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte{0xFF}); err == nil {
		t.Fatal("Decode(unknown tag) succeeded")
	}
	for _, msg := range messages() {
		enc, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 1; cut < len(enc); cut++ {
			if _, err := Decode(enc[:cut]); err == nil {
				t.Fatalf("%T: Decode of %d/%d-byte prefix succeeded", msg, cut, len(enc))
			}
		}
		if _, err := Decode(append(append([]byte{}, enc...), 0)); err == nil {
			t.Fatalf("%T: Decode with trailing byte succeeded", msg)
		}
	}
}

// TestEncodeUnknownType pins the loud-failure contract for types outside
// the replica message set.
func TestEncodeUnknownType(t *testing.T) {
	if _, err := Encode(struct{ X int }{}); err == nil {
		t.Fatal("Encode(unknown type) succeeded")
	}
	if _, err := Encode(nil); err == nil {
		t.Fatal("Encode(nil) succeeded")
	}
}

// TestHugeCountRejected pins the allocation bound: a header claiming more
// collection elements than bytes remain must be rejected before any
// allocation is attempted.
func TestHugeCountRejected(t *testing.T) {
	// tagViewChange, instance=0, view=0, replica=0, delivered=0, then a
	// Prepared count of 2^40 with no bytes behind it.
	buf := []byte{tagViewChange, 0, 0, 0, 0}
	buf = appendUint(buf, 1<<40)
	if _, err := Decode(buf); err == nil {
		t.Fatal("Decode with absurd collection count succeeded")
	}
}
