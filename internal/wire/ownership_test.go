package wire

import (
	"bytes"
	"testing"
)

// TestAppendZeroAllocs pins the encode side of the transport hot path:
// appending any replica message to a warm scratch buffer (one with
// enough capacity left from a previous encoding, the steady state of the
// transport's frame pool) performs zero heap allocations. A regression
// here silently reintroduces per-message garbage on every send.
func TestAppendZeroAllocs(t *testing.T) {
	for _, msg := range messages() {
		warm, err := Append(nil, msg)
		if err != nil {
			t.Fatalf("Append(%T): %v", msg, err)
		}
		buf := make([]byte, 0, 2*cap(warm))
		if allocs := testing.AllocsPerRun(100, func() {
			out, err := Append(buf[:0], msg)
			if err != nil || len(out) == 0 {
				t.Fatalf("Append(%T): %v", msg, err)
			}
		}); allocs != 0 {
			t.Errorf("Append(%T) on a warm buffer allocates %.1f times per op, want 0", msg, allocs)
		}
	}
}

// TestDecodeOwnsItsData pins Decode's ownership contract: the returned
// message never aliases the input buffer, so callers (the TCP read loop,
// the pooled-frame path) may reuse or scribble the input immediately.
// The check scribbles the input after decoding and verifies the decoded
// message still re-encodes to the original bytes — any retained alias
// would corrupt the re-encoding.
func TestDecodeOwnsItsData(t *testing.T) {
	for _, msg := range messages() {
		enc, err := Encode(msg)
		if err != nil {
			t.Fatalf("Encode(%T): %v", msg, err)
		}
		pristine := bytes.Clone(enc)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%T): %v", msg, err)
		}
		for i := range enc {
			enc[i] = 0xFF
		}
		re, err := Encode(dec)
		if err != nil {
			t.Fatalf("re-Encode(%T) after scribbling the input: %v", msg, err)
		}
		if !bytes.Equal(re, pristine) {
			t.Errorf("%T: decoded message aliases the input buffer (re-encoding changed after scribble)\n  want: %x\n  got:  %x", msg, pristine, re)
		}
	}
}
