package crypto

import (
	"bytes"
	"testing"
)

func TestSignVerify(t *testing.T) {
	var seed [32]byte
	seed[0] = 7
	s := NewSignerFromSeed(seed)
	msg := []byte("hello orthrus")
	sig := s.Sign(msg)
	if !Verify(s.Public(), msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(s.Public(), []byte("tampered"), sig) {
		t.Fatal("tampered message accepted")
	}
	sig[0] ^= 1
	if Verify(s.Public(), msg, sig) {
		t.Fatal("tampered signature accepted")
	}
}

func TestVerifyBadKeyLength(t *testing.T) {
	if Verify(nil, []byte("m"), []byte("s")) {
		t.Fatal("nil public key accepted")
	}
}

func TestKeyRingDeterminism(t *testing.T) {
	a := NewKeyRing(42)
	b := NewKeyRing(42)
	if !bytes.Equal(a.ReplicaPublic(3), b.ReplicaPublic(3)) {
		t.Fatal("same seed produced different replica keys")
	}
	if !bytes.Equal(a.ClientPublic("alice"), b.ClientPublic("alice")) {
		t.Fatal("same seed produced different client keys")
	}
	c := NewKeyRing(43)
	if bytes.Equal(a.ReplicaPublic(3), c.ReplicaPublic(3)) {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestKeyRingDistinctIdentities(t *testing.T) {
	k := NewKeyRing(1)
	if bytes.Equal(k.ReplicaPublic(0), k.ReplicaPublic(1)) {
		t.Fatal("replica 0 and 1 share a key")
	}
	if bytes.Equal(k.ClientPublic("alice"), k.ClientPublic("bob")) {
		t.Fatal("alice and bob share a key")
	}
	if bytes.Equal(k.ReplicaPublic(0), k.ClientPublic("0")) {
		t.Fatal("replica/client namespace collision")
	}
}

func TestKeyRingCrossSigning(t *testing.T) {
	k := NewKeyRing(9)
	msg := []byte("block digest")
	sig := k.Replica(2).Sign(msg)
	if !Verify(k.ReplicaPublic(2), msg, sig) {
		t.Fatal("replica signature rejected")
	}
	if Verify(k.ReplicaPublic(3), msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestDigestStable(t *testing.T) {
	d1 := Digest([]byte("x"))
	d2 := Digest([]byte("x"))
	if d1 != d2 {
		t.Fatal("digest unstable")
	}
	if Digest([]byte("y")) == d1 {
		t.Fatal("distinct inputs collide")
	}
}
