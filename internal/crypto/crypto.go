// Package crypto wraps the standard-library primitives the protocol needs:
// Ed25519 signatures for replicas and clients, and SHA-256 digests.
//
// Simulated deployments need thousands of deterministic keys; KeyRing
// derives them from a seed so every replica in a simulation can recompute
// everyone's public keys without distribution (standing in for the paper's
// PKI assumption).
package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Signer holds a private key and can sign messages.
type Signer struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewSignerFromSeed derives a signer deterministically from a 32-byte seed.
func NewSignerFromSeed(seed [32]byte) *Signer {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &Signer{priv: priv, pub: priv.Public().(ed25519.PublicKey)}
}

// Public returns the signer's public key.
func (s *Signer) Public() ed25519.PublicKey { return s.pub }

// Sign signs msg.
func (s *Signer) Sign(msg []byte) []byte { return ed25519.Sign(s.priv, msg) }

// Verify checks sig over msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// Digest returns the SHA-256 digest of data.
func Digest(data []byte) [32]byte { return sha256.Sum256(data) }

// KeyRing deterministically derives and caches key pairs for a set of
// identities (replica indices and client names) from a master seed. It
// models the PKI of Sec. III-A: everyone can look up everyone's public key.
type KeyRing struct {
	seed    [32]byte
	signers map[string]*Signer
}

// NewKeyRing creates a key ring with the given master seed.
func NewKeyRing(seed int64) *KeyRing {
	var s [32]byte
	binary.BigEndian.PutUint64(s[:8], uint64(seed))
	copy(s[8:], []byte("orthrus-keyring-"))
	return &KeyRing{seed: s, signers: make(map[string]*Signer)}
}

// signerFor derives (and caches) the signer for an identity string.
func (k *KeyRing) signerFor(ident string) *Signer {
	if s, ok := k.signers[ident]; ok {
		return s
	}
	h := sha256.New()
	h.Write(k.seed[:])
	h.Write([]byte(ident))
	var seed [32]byte
	copy(seed[:], h.Sum(nil))
	s := NewSignerFromSeed(seed)
	k.signers[ident] = s
	return s
}

// Replica returns the signer for replica index i.
func (k *KeyRing) Replica(i int) *Signer { return k.signerFor(fmt.Sprintf("replica/%d", i)) }

// Client returns the signer for a named client.
func (k *KeyRing) Client(name string) *Signer { return k.signerFor("client/" + name) }

// ReplicaPublic returns replica i's public key.
func (k *KeyRing) ReplicaPublic(i int) ed25519.PublicKey { return k.Replica(i).Public() }

// ClientPublic returns the named client's public key.
func (k *KeyRing) ClientPublic(name string) ed25519.PublicKey { return k.Client(name).Public() }
