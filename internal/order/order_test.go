package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func blk(instance int, sn, rank uint64) *types.Block {
	return &types.Block{Instance: instance, SN: sn, Rank: rank}
}

func TestPredeterminedInterleaving(t *testing.T) {
	p := NewPredetermined(2)
	// Deliver out of order: (1,0) then (0,0) then (0,1) then (1,1).
	if got := p.Deliver(blk(1, 0, 0)); got != nil {
		t.Fatalf("confirmed %v before gap filled", got)
	}
	got := p.Deliver(blk(0, 0, 0))
	if len(got) != 2 || got[0].Instance != 0 || got[1].Instance != 1 {
		t.Fatalf("got %d blocks, want positions 0,1", len(got))
	}
	got = p.Deliver(blk(0, 1, 0))
	if len(got) != 1 {
		t.Fatalf("position 2 not confirmed: %v", got)
	}
	if p.PendingCount() != 0 {
		t.Fatal("pending count wrong")
	}
}

func TestPredeterminedStragglerBlocksEverything(t *testing.T) {
	m := 4
	p := NewPredetermined(m)
	confirmed := 0
	// Instances 1..3 deliver 10 blocks each; instance 0 delivers nothing.
	for sn := uint64(0); sn < 10; sn++ {
		for i := 1; i < m; i++ {
			confirmed += len(p.Deliver(blk(i, sn, 0)))
		}
	}
	if confirmed != 0 {
		t.Fatalf("%d blocks confirmed despite straggler gap at position 0", confirmed)
	}
	// The straggler's first block releases positions 0..3.
	got := p.Deliver(blk(0, 0, 0))
	if len(got) != 4 {
		t.Fatalf("filling the gap released %d, want 4", len(got))
	}
}

func TestDynamicBasicOrder(t *testing.T) {
	d := NewDynamic(2)
	// Instance 0 delivers rank 1; bar = min((2,0),(1,1)) = (1,1): nothing
	// below it except... (1,0) < (1,1), so block (rank1,inst0) confirms.
	got := d.Deliver(blk(0, 0, 1))
	if len(got) != 1 {
		t.Fatalf("first block not confirmed: %v", got)
	}
	// Instance 1 delivers rank 2: bar = min((2,0),(3,1)) = (2,0);
	// (2,1) is not < (2,0), so it waits.
	got = d.Deliver(blk(1, 0, 2))
	if len(got) != 0 {
		t.Fatalf("block confirmed early: %v", got)
	}
	// Instance 0 delivers rank 3: bar = min((4,0),(3,1)) = (3,1);
	// (2,1) and (3,0) are both < (3,1): both confirm, rank order.
	got = d.Deliver(blk(0, 1, 3))
	if len(got) != 2 || got[0].Rank != 2 || got[1].Rank != 3 {
		t.Fatalf("got %v", got)
	}
	if d.PendingCount() != 0 {
		t.Fatal("pending not drained")
	}
}

func TestDynamicStragglerDoesNotBlockOthers(t *testing.T) {
	// With rank-based ordering, two fast instances confirm each other's
	// blocks while a silent instance only holds back blocks above its floor.
	d := NewDynamic(3)
	confirmed := 0
	rank := uint64(1)
	for round := 0; round < 10; round++ {
		for i := 1; i < 3; i++ {
			confirmed += len(d.Deliver(blk(i, uint64(round), rank)))
			rank++
		}
	}
	// bar stays at (1,0) because instance 0 never delivered; nothing with
	// key < (1,0) exists, so nothing confirms — matching Ladon, the first
	// delivery of the straggler releases the backlog up to the bar.
	if confirmed != 0 {
		t.Fatalf("confirmed %d blocks with silent instance floor", confirmed)
	}
	got := d.Deliver(blk(0, 0, rank))
	// The bar jumps to the lowest instance floor + 1; all waiting blocks
	// strictly below it confirm. The most recent block of the highest-rank
	// instance ties the bar's rank and legitimately waits one more round.
	if len(got) < 19 {
		t.Fatalf("straggler catch-up released only %d blocks", len(got))
	}
}

func TestDynamicAgreementAcrossInterleavings(t *testing.T) {
	// Property: the dynamic orderer yields the same global sequence no
	// matter the interleaving of per-instance deliveries (per-instance
	// order is fixed by the SB instance; cross-instance order is not).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3
		// Build per-instance block sequences with increasing ranks that
		// respect monotonicity: rank grows within an instance.
		perInst := make([][]*types.Block, m)
		rank := uint64(0)
		for sn := uint64(0); sn < 5; sn++ {
			for i := 0; i < m; i++ {
				rank += uint64(rng.Intn(3) + 1)
				perInst[i] = append(perInst[i], blk(i, sn, rank))
			}
		}
		run := func() []types.OrderKey {
			d := NewDynamic(m)
			idx := make([]int, m)
			var out []types.OrderKey
			for {
				// Pick a random instance with blocks remaining.
				var avail []int
				for i := 0; i < m; i++ {
					if idx[i] < len(perInst[i]) {
						avail = append(avail, i)
					}
				}
				if len(avail) == 0 {
					break
				}
				i := avail[rng.Intn(len(avail))]
				for _, b := range d.Deliver(perInst[i][idx[i]]) {
					out = append(out, b.Key())
				}
				idx[i]++
			}
			return out
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// And the sequence must be sorted by OrderKey (global order).
		for i := 1; i < len(a); i++ {
			if a[i].Less(a[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicConfirmsEverythingEventually(t *testing.T) {
	// If all instances keep making progress, every delivered block is
	// eventually confirmed (liveness of the ordering layer).
	m := 4
	d := NewDynamic(m)
	total, confirmed := 0, 0
	rank := uint64(0)
	for sn := uint64(0); sn < 20; sn++ {
		for i := 0; i < m; i++ {
			rank++
			total++
			confirmed += len(d.Deliver(blk(i, sn, rank)))
		}
	}
	// A final high-rank block from each instance flushes the tail.
	for i := 0; i < m; i++ {
		rank++
		confirmed += len(d.Deliver(blk(i, 20, rank)))
	}
	if confirmed < total {
		t.Fatalf("confirmed %d of %d", confirmed, total)
	}
}

func TestBarComputation(t *testing.T) {
	d := NewDynamic(2)
	if bar := d.Bar(); bar != (types.OrderKey{Rank: 1, Instance: 0}) {
		t.Fatalf("initial bar = %v", bar)
	}
	d.Deliver(blk(0, 0, 5))
	if bar := d.Bar(); bar != (types.OrderKey{Rank: 1, Instance: 1}) {
		t.Fatalf("bar after instance 0 = %v", bar)
	}
	d.Deliver(blk(1, 0, 9))
	if bar := d.Bar(); bar != (types.OrderKey{Rank: 6, Instance: 0}) {
		t.Fatalf("bar = %v", bar)
	}
}

func TestNextRank(t *testing.T) {
	if NextRank([]uint64{3, 7, 2}) != 8 {
		t.Fatal("NextRank wrong")
	}
	if NextRank(nil) != 1 {
		t.Fatal("NextRank of empty should be 1")
	}
}

func TestRankTracker(t *testing.T) {
	var r RankTracker
	r.Observe(3)
	r.Observe(1)
	if r.Highest() != 3 {
		t.Fatalf("highest = %d", r.Highest())
	}
	r.Observe(10)
	if r.Highest() != 10 {
		t.Fatalf("highest = %d", r.Highest())
	}
}

func TestPredeterminedPendingCount(t *testing.T) {
	p := NewPredetermined(2)
	p.Deliver(blk(1, 0, 0))
	p.Deliver(blk(1, 1, 0))
	if p.PendingCount() != 2 {
		t.Fatalf("pending = %d", p.PendingCount())
	}
}
