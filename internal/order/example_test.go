package order_test

import (
	"fmt"

	"repro/internal/order"
	"repro/internal/types"
)

// ExampleDynamic shows Ladon's rank-based global ordering (Algorithm 3):
// a block is confirmed once no future block can sort below it.
func ExampleDynamic() {
	d := order.NewDynamic(2)
	deliver := func(instance int, sn, rank uint64) {
		for _, b := range d.Deliver(&types.Block{Instance: instance, SN: sn, Rank: rank}) {
			fmt.Printf("confirmed instance=%d rank=%d\n", b.Instance, b.Rank)
		}
	}
	deliver(0, 0, 1) // bar rises past (1,0): confirmed immediately
	deliver(1, 0, 2) // waits: instance 0 could still produce rank 2
	deliver(0, 1, 3) // floor of instance 0 rises: rank 2 and 3 confirm

	// Output:
	// confirmed instance=0 rank=1
	// confirmed instance=1 rank=2
	// confirmed instance=0 rank=3
}

// ExamplePredetermined shows the Mir/ISS/RCC interleaving: a gap left by a
// slow instance blocks every later global position.
func ExamplePredetermined() {
	p := order.NewPredetermined(2)
	deliver := func(instance int, sn uint64) {
		for _, b := range p.Deliver(&types.Block{Instance: instance, SN: sn}) {
			fmt.Printf("confirmed instance=%d sn=%d\n", b.Instance, b.SN)
		}
	}
	deliver(1, 0) // position 1: blocked behind instance 0's position 0
	deliver(1, 1) // position 3: still blocked
	deliver(0, 0) // fills position 0: releases 0 and 1, not 3

	// Output:
	// confirmed instance=0 sn=0
	// confirmed instance=1 sn=0
}
