// Package order implements the global-ordering algorithms that merge the
// partial logs of m SB instances into one global log:
//
//   - Predetermined: the fixed round-robin interleaving used by Mir-BFT,
//     ISS and RCC — global position of block (instance i, sn s) is s*m+i.
//     A straggler instance stalls every later position (the paper's
//     motivation, Fig. 1).
//   - Dynamic: Ladon's rank-based ordering (Appendix A, Algorithm 3):
//     blocks are ordered by (rank, instance); a block is confirmed once the
//     "bar" — the lowest key any future block can take — exceeds it.
//   - Orthrus itself reuses Dynamic for its global log while payments
//     bypass it entirely (package core).
//
// All implementations are deterministic functions of the delivered-block
// sequence, so every honest replica derives the same global log without
// extra communication. A new ordering algorithm implements Orderer (or
// core.GlobalOrdering directly for sequencer-style designs) and becomes a
// protocol via a core.Mode — see ARCHITECTURE.md's extension seams.
package order

import (
	"container/heap"

	"repro/internal/types"
)

// Orderer merges delivered blocks into a global sequence. Implementations
// must be pure functions of the delivery sequence (no clocks, no global
// randomness) so that all honest replicas agree — the determinism
// contract of ARCHITECTURE.md.
type Orderer interface {
	// Deliver hands the orderer one block delivered by an SB instance and
	// returns the blocks that became globally confirmed as a result, in
	// global order. The returned slice is a scratch buffer owned by the
	// orderer, valid only until the next Deliver — callers consume or copy
	// it immediately (the deliver path does per-call allocation nowhere).
	Deliver(b *types.Block) []*types.Block
	// PendingCount returns blocks delivered but not yet globally confirmed.
	PendingCount() int
}

// --- Predetermined (Mir-BFT / ISS / RCC) ---

// Predetermined confirms blocks in the fixed interleaved order
// sn*m + instance. Gaps (slow instances) block all later positions until
// filled — exactly the behavior that makes stragglers expensive.
type Predetermined struct {
	m       int
	next    uint64 // next global position to confirm
	byPos   map[uint64]*types.Block
	pending int
	out     []*types.Block // Deliver's reusable result buffer
}

// NewPredetermined creates a predetermined orderer over m instances.
func NewPredetermined(m int) *Predetermined {
	return &Predetermined{m: m, byPos: make(map[uint64]*types.Block)}
}

// Position returns the fixed global position of a block.
func (p *Predetermined) Position(b *types.Block) uint64 {
	return b.SN*uint64(p.m) + uint64(b.Instance)
}

// Deliver implements Orderer.
func (p *Predetermined) Deliver(b *types.Block) []*types.Block {
	p.byPos[p.Position(b)] = b
	p.pending++
	out := p.out[:0]
	for {
		nb, ok := p.byPos[p.next]
		if !ok {
			break
		}
		delete(p.byPos, p.next)
		p.next++
		p.pending--
		out = append(out, nb)
	}
	p.out = out
	return out
}

// PendingCount implements Orderer.
func (p *Predetermined) PendingCount() int { return p.pending }

// --- Dynamic (Ladon, Algorithm 3) ---

// blockHeap is a min-heap of blocks by OrderKey.
type blockHeap []*types.Block

func (h blockHeap) Len() int           { return len(h) }
func (h blockHeap) Less(i, j int) bool { return h[i].Key().Less(h[j].Key()) }
func (h blockHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *blockHeap) Push(x any)        { *h = append(*h, x.(*types.Block)) }
func (h *blockHeap) Pop() any {
	old := *h
	n := len(old)
	b := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return b
}

// Dynamic is Ladon's rank-based global ordering. Each instance's last
// delivered block defines a floor; the bar is the minimum over instances of
// (lastRank+1, instance), and every waiting block below the bar is stable
// and can be confirmed (monotonicity guarantees future blocks sort higher).
type Dynamic struct {
	m       int
	last    []types.OrderKey // last delivered key per instance
	waiting blockHeap
	out     []*types.Block // Deliver's reusable result buffer
	// bar caches the confirmation bar and barInst its arg-min instance:
	// raising any other instance's floor cannot move the bar, so the O(m)
	// recomputation runs only when the bar-defining instance advances.
	bar     types.OrderKey
	barInst int
}

// NewDynamic creates a dynamic orderer over m instances. Before an instance
// delivers anything its floor is rank 0 (ranks start at 1).
func NewDynamic(m int) *Dynamic {
	d := &Dynamic{m: m, last: make([]types.OrderKey, m)}
	for i := range d.last {
		d.last[i] = types.OrderKey{Rank: 0, Instance: i}
	}
	d.recomputeBar()
	return d
}

// recomputeBar rebuilds the cached bar by scanning all instance floors.
func (d *Dynamic) recomputeBar() {
	d.bar = types.OrderKey{Rank: d.last[0].Rank + 1, Instance: d.last[0].Instance}
	d.barInst = 0
	for i, lk := range d.last[1:] {
		cand := types.OrderKey{Rank: lk.Rank + 1, Instance: lk.Instance}
		if cand.Less(d.bar) {
			d.bar = cand
			d.barInst = i + 1
		}
	}
}

// Bar returns the current confirmation bar: the lowest ordering key a
// future block could possibly take.
func (d *Dynamic) Bar() types.OrderKey { return d.bar }

// Deliver implements Orderer (Algorithm 3's globalOrder).
func (d *Dynamic) Deliver(b *types.Block) []*types.Block {
	heap.Push(&d.waiting, b)
	if lk := b.Key(); d.last[b.Instance].Less(lk) || d.last[b.Instance] == lk {
		d.last[b.Instance] = lk
		if b.Instance == d.barInst {
			d.recomputeBar() // the bar-defining floor moved
		}
	}
	bar := d.Bar()
	out := d.out[:0]
	for len(d.waiting) > 0 && d.waiting[0].Key().Less(bar) {
		out = append(out, heap.Pop(&d.waiting).(*types.Block))
	}
	d.out = out
	return out
}

// PendingCount implements Orderer.
func (d *Dynamic) PendingCount() int { return len(d.waiting) }

// --- Rank assignment (Ladon) ---

// RankTracker tracks the highest rank a replica has observed: its own
// proposals and every delivered block. A leader assembles the rank of a new
// block as max over 2f+1 trackers + 1, which yields the agreement and
// monotonicity properties of Appendix A.
type RankTracker struct {
	highest uint64
}

// Observe folds in an observed rank.
func (r *RankTracker) Observe(rank uint64) {
	if rank > r.highest {
		r.highest = rank
	}
}

// Highest returns the highest observed rank.
func (r *RankTracker) Highest() uint64 { return r.highest }

// NextRank computes the rank a leader assigns given quorum responses: the
// maximum reported rank plus one.
func NextRank(responses []uint64) uint64 {
	var max uint64
	for _, r := range responses {
		if r > max {
			max = r
		}
	}
	return max + 1
}
