package metrics

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
)

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Percentile(50) != 0 || l.Max() != 0 || l.Count() != 0 {
		t.Fatal("empty latency not zero")
	}
}

func TestLatencyStats(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 100 {
		t.Fatalf("count %d", l.Count())
	}
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean %v", got)
	}
	if got := l.Percentile(50); got < 49*time.Millisecond || got > 52*time.Millisecond {
		t.Fatalf("p50 %v", got)
	}
	if got := l.Max(); got != 100*time.Millisecond {
		t.Fatalf("max %v", got)
	}
	if got := l.Percentile(0); got != 1*time.Millisecond {
		t.Fatalf("p0 %v", got)
	}
}

func TestLatencyPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		var l Latency
		for _, v := range raw {
			l.Add(time.Duration(v))
		}
		if len(raw) == 0 {
			return true
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := l.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return l.Mean() <= l.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyAddAfterPercentileResorts(t *testing.T) {
	var l Latency
	l.Add(5 * time.Millisecond)
	_ = l.Percentile(50)
	l.Add(1 * time.Millisecond)
	if l.Percentile(0) != 1*time.Millisecond {
		t.Fatal("sort cache stale after Add")
	}
}

func TestTimeSeriesBinning(t *testing.T) {
	ts := NewTimeSeries(500 * time.Millisecond)
	ts.Record(simnet.Time(100*time.Millisecond), 10*time.Millisecond) // bin 0
	ts.Record(simnet.Time(400*time.Millisecond), 30*time.Millisecond) // bin 0
	ts.Record(simnet.Time(700*time.Millisecond), 50*time.Millisecond) // bin 1
	if ts.Bins() != 2 {
		t.Fatalf("bins %d", ts.Bins())
	}
	if got := ts.Throughput(0); got != 4 { // 2 events / 0.5s
		t.Fatalf("tput0 %v", got)
	}
	if got := ts.MeanLatency(0); got != 20*time.Millisecond {
		t.Fatalf("lat0 %v", got)
	}
	if got := ts.MeanLatency(1); got != 50*time.Millisecond {
		t.Fatalf("lat1 %v", got)
	}
	if ts.Throughput(5) != 0 || ts.MeanLatency(5) != 0 {
		t.Fatal("out-of-range bins not zero")
	}
}

func TestTimeSeriesDefaultBin(t *testing.T) {
	ts := NewTimeSeries(0)
	if ts.Bin != 500*time.Millisecond {
		t.Fatalf("default bin %v", ts.Bin)
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(StageSend, 10*time.Millisecond)
	b.Add(StageSend, 30*time.Millisecond)
	b.Add(StageGlobal, 100*time.Millisecond)
	if got := b.Mean(StageSend); got != 20*time.Millisecond {
		t.Fatalf("send mean %v", got)
	}
	if got := b.Mean(StagePartial); got != 0 {
		t.Fatalf("unset stage mean %v", got)
	}
	if got := b.Total(); got != 120*time.Millisecond {
		t.Fatalf("total %v", got)
	}
	// Negative durations (clock skew artifacts) must be ignored.
	b.Add(StageReply, -time.Second)
	if b.Mean(StageReply) != 0 {
		t.Fatal("negative sample recorded")
	}
}

func TestStageStrings(t *testing.T) {
	want := []string{"Send", "Preprocessing", "Partial ordering", "Global ordering", "Reply"}
	for i, s := range Stages() {
		if s.String() != want[i] {
			t.Fatalf("stage %d = %q", i, s.String())
		}
	}
}
