// Package metrics provides the measurement instruments the evaluation
// needs: latency distributions, throughput time series binned the way the
// paper plots them (0.5 s intervals, Fig. 7), and the five-stage latency
// breakdown of Fig. 6.
package metrics

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/simnet"
)

// Latency accumulates a latency distribution.
type Latency struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *Latency) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Mean returns the average latency (0 if empty).
func (l *Latency) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

func (l *Latency) sort() {
	if !l.sorted {
		slices.Sort(l.samples)
		l.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]; 0 if empty).
func (l *Latency) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	idx := int(p / 100 * float64(len(l.samples)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Max returns the largest sample.
func (l *Latency) Max() time.Duration { return l.Percentile(100) }

// String summarizes the distribution.
func (l *Latency) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		l.Count(), l.Mean().Round(time.Millisecond), l.Percentile(50).Round(time.Millisecond),
		l.Percentile(99).Round(time.Millisecond), l.Max().Round(time.Millisecond))
}

// TimeSeries bins event counts and latency sums over fixed intervals, the
// way Fig. 7 plots throughput and latency averages over 0.5 s bins.
type TimeSeries struct {
	Bin       time.Duration
	counts    []int
	latSums   []time.Duration
	latCounts []int
}

// NewTimeSeries creates a series with the given bin width.
func NewTimeSeries(bin time.Duration) *TimeSeries {
	if bin <= 0 {
		bin = 500 * time.Millisecond
	}
	return &TimeSeries{Bin: bin}
}

// Reserve preallocates capacity for at least n bins, so a run of known
// length fills its series without reallocating the three parallel slices.
// It never shrinks and does not change Bins().
func (ts *TimeSeries) Reserve(n int) {
	if cap(ts.counts) >= n {
		return
	}
	counts := make([]int, len(ts.counts), n)
	copy(counts, ts.counts)
	ts.counts = counts
	latSums := make([]time.Duration, len(ts.latSums), n)
	copy(latSums, ts.latSums)
	ts.latSums = latSums
	latCounts := make([]int, len(ts.latCounts), n)
	copy(latCounts, ts.latCounts)
	ts.latCounts = latCounts
}

func (ts *TimeSeries) grow(idx int) {
	for len(ts.counts) <= idx {
		ts.counts = append(ts.counts, 0)
		ts.latSums = append(ts.latSums, 0)
		ts.latCounts = append(ts.latCounts, 0)
	}
}

// Record adds a confirmation event at virtual time at with the given
// client-observed latency.
func (ts *TimeSeries) Record(at simnet.Time, latency time.Duration) {
	idx := int(time.Duration(at) / ts.Bin)
	if idx < 0 {
		return
	}
	ts.grow(idx)
	ts.counts[idx]++
	ts.latSums[idx] += latency
	ts.latCounts[idx]++
}

// Bins returns the number of bins.
func (ts *TimeSeries) Bins() int { return len(ts.counts) }

// Count returns bin i's raw confirmation count (0 out of range).
func (ts *TimeSeries) Count(i int) int {
	if i < 0 || i >= len(ts.counts) {
		return 0
	}
	return ts.counts[i]
}

// Throughput returns bin i's rate in transactions per second.
func (ts *TimeSeries) Throughput(i int) float64 {
	if i < 0 || i >= len(ts.counts) {
		return 0
	}
	return float64(ts.counts[i]) / ts.Bin.Seconds()
}

// MeanLatency returns bin i's average latency (0 if no samples).
func (ts *TimeSeries) MeanLatency(i int) time.Duration {
	if i < 0 || i >= len(ts.latCounts) || ts.latCounts[i] == 0 {
		return 0
	}
	return ts.latSums[i] / time.Duration(ts.latCounts[i])
}

// Stage identifies one of the five breakdown stages of Fig. 6.
type Stage int

// The five stages of the paper's latency breakdown.
const (
	StageSend       Stage = iota // client -> replica transmission
	StagePreprocess              // receipt -> inclusion in a broadcast block
	StagePartial                 // broadcast -> SB delivery (partial order)
	StageGlobal                  // delivery -> confirmation (global order + exec)
	StageReply                   // confirmation -> f+1 replies at the client
	stageCount
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageSend:
		return "Send"
	case StagePreprocess:
		return "Preprocessing"
	case StagePartial:
		return "Partial ordering"
	case StageGlobal:
		return "Global ordering"
	case StageReply:
		return "Reply"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Breakdown accumulates per-stage latency means.
type Breakdown struct {
	sums   [stageCount]time.Duration
	counts [stageCount]int
}

// Add records one transaction's stage duration.
func (b *Breakdown) Add(s Stage, d time.Duration) {
	if s < 0 || s >= stageCount || d < 0 {
		return
	}
	b.sums[s] += d
	b.counts[s]++
}

// Mean returns the mean duration of a stage.
func (b *Breakdown) Mean(s Stage) time.Duration {
	if s < 0 || s >= stageCount || b.counts[s] == 0 {
		return 0
	}
	return b.sums[s] / time.Duration(b.counts[s])
}

// Total returns the sum of all stage means (the stacked bar's length).
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for s := Stage(0); s < stageCount; s++ {
		t += b.Mean(s)
	}
	return t
}

// Stages returns all stages in plot order.
func Stages() []Stage {
	return []Stage{StageSend, StagePreprocess, StagePartial, StageGlobal, StageReply}
}
