// Package partition implements the bucket mechanism of Sec. V-A: client
// transactions are mapped to buckets — one bucket per SB instance — based
// on the owned objects they decrement (payers). Transactions with several
// payers join several buckets; the escrow mechanism later keeps them atomic.
//
// Buckets are append-only for backups; the instance leader additionally
// pulls batches of the oldest transactions when assembling blocks.
//
// Buckets also age their contents in units of delivered blocks (Tick /
// Oldest), which drives the censorship detector of Sec. V-B: a leader
// that keeps delivering blocks while an old feasible transaction sits
// queued is suspected of censoring it and voted out. ARCHITECTURE.md
// places this package in the replica's data flow.
package partition

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/types"
)

// Assign maps an owned-object key to a bucket index in [0, m): the hash of
// the key modulo the number of instances (the paper's example assign).
func Assign(key types.Key, m int) int {
	h := sha256.Sum256([]byte(key))
	return int(binary.BigEndian.Uint64(h[:8]) % uint64(m))
}

// BucketsOf returns the distinct bucket indices a transaction belongs to:
// one per payer (owned object with a decremental operation), ascending.
func BucketsOf(tx *types.Transaction, m int) []int {
	return AppendBucketsOf(nil, tx, m)
}

// txKey is the bucket bookkeeping key for a transaction: the dense
// per-run index when the submission layer stamped one (no hashing at
// all), otherwise the first eight bytes of the content digest with the
// top bit set so the two key spaces cannot meet. The truncated-digest
// fallback trades a 2^-63 collision chance for hashing 8 bytes instead
// of 32 on every bucket operation; only direct API users (tests,
// examples) take it.
func txKey(tx *types.Transaction) uint64 {
	if tx.Idx != 0 {
		return tx.Idx
	}
	id := tx.ID()
	return binary.BigEndian.Uint64(id[:8]) | 1<<63
}

// AppendBucketsOf appends the distinct bucket indices of tx's payers onto
// dst, ascending, and returns the extended slice. It allocates nothing
// when dst has room — the replica hot path routes every transaction
// through a reusable scratch buffer. Deduplication is a linear scan over
// the appended region: transactions have a handful of payers at most.
func AppendBucketsOf(dst []int, tx *types.Transaction, m int) []int {
	start := len(dst)
	for _, op := range tx.Ops {
		if !op.IsPayerOp() {
			continue
		}
		b := Assign(op.Key, m)
		dup := false
		for _, x := range dst[start:] {
			if x == b {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, b)
		}
	}
	// Keep deterministic ascending order for reproducibility.
	out := dst[start:]
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return dst
}

// Bucket is a FIFO of pending transactions for one instance, deduplicated
// by transaction identity (txKey). Transactions leave the bucket when
// pulled by the leader or removed after confirmation elsewhere.
type Bucket struct {
	queue   []*types.Transaction
	present map[uint64]bool
	// confirmed remembers transactions that were already confirmed so a
	// late re-submission is not re-added (garbage collected at
	// checkpoints).
	confirmed map[uint64]bool
	// clock counts block deliveries of the owning instance; firstSeen maps
	// each pending transaction to the clock value when it first arrived.
	// Together they age pending transactions in units of delivered blocks,
	// which drives the censorship detector (Sec. V-B): a leader that keeps
	// delivering blocks while an old feasible transaction stays queued is
	// suspected of censoring it.
	clock     uint64
	firstSeen map[uint64]uint64
}

// NewBucket creates an empty bucket.
func NewBucket() *Bucket {
	return &Bucket{
		present:   make(map[uint64]bool),
		confirmed: make(map[uint64]bool),
		firstSeen: make(map[uint64]uint64),
	}
}

// Tick advances the bucket's delivery clock (one per delivered block).
func (b *Bucket) Tick() { b.clock++ }

// Oldest returns the oldest queued transaction and its age in delivered
// blocks since it first arrived (surviving re-queues).
func (b *Bucket) Oldest() (tx *types.Transaction, age uint64, ok bool) {
	if len(b.queue) == 0 {
		return nil, 0, false
	}
	tx = b.queue[0]
	return tx, b.clock - b.firstSeen[txKey(tx)], true
}

// Len returns the number of queued transactions.
func (b *Bucket) Len() int { return len(b.queue) }

// Push appends tx unless it is already queued or was confirmed; it reports
// whether the transaction was added.
func (b *Bucket) Push(tx *types.Transaction) bool {
	k := txKey(tx)
	if b.present[k] || b.confirmed[k] {
		return false
	}
	b.present[k] = true
	b.queue = append(b.queue, tx)
	if _, seen := b.firstSeen[k]; !seen {
		b.firstSeen[k] = b.clock
	}
	return true
}

// Pull removes and returns up to max of the oldest transactions, in
// arrival order. The leader calls it when assembling a block; pulled
// transactions that fail feasibility are Pushed back and keep their
// original age (firstSeen survives re-queues).
func (b *Bucket) Pull(max int) []*types.Transaction {
	if max > len(b.queue) {
		max = len(b.queue)
	}
	out := b.queue[:max:max]
	b.queue = b.queue[max:]
	for _, tx := range out {
		delete(b.present, txKey(tx))
	}
	return out
}

// Peek returns up to max of the oldest queued transactions without
// removing them (diagnostics and tests; leaders use Pull).
func (b *Bucket) Peek(max int) []*types.Transaction {
	if max > len(b.queue) {
		max = len(b.queue)
	}
	return b.queue[:max:max]
}

// MarkConfirmed records that a transaction was confirmed (possibly via a
// block from another replica's leader) and drops it from the queue.
func (b *Bucket) MarkConfirmed(tx *types.Transaction) {
	k := txKey(tx)
	b.confirmed[k] = true
	delete(b.firstSeen, k)
	if !b.present[k] {
		return
	}
	delete(b.present, k)
	for i, q := range b.queue {
		if txKey(q) == k {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			break
		}
	}
}

// GC forgets confirmation records (run at stable checkpoints, Sec. V-D)
// and prunes age marks for transactions no longer queued.
func (b *Bucket) GC() {
	clear(b.confirmed)
	for k := range b.firstSeen {
		if !b.present[k] {
			delete(b.firstSeen, k)
		}
	}
}

// Set manages the m buckets of one replica: one bucket per SB instance,
// with transaction routing (Add) and cross-bucket bookkeeping.
type Set struct {
	buckets []*Bucket
	// assign memoizes Assign per key: the sha256-based mapping sits on
	// every routing, feasibility and escrow path, and a replica resolves
	// the same few thousand account keys over and over.
	assign map[types.Key]int
}

// NewSet creates m empty buckets.
func NewSet(m int) *Set {
	s := &Set{buckets: make([]*Bucket, m), assign: make(map[types.Key]int, 1024)}
	for i := range s.buckets {
		s.buckets[i] = NewBucket()
	}
	return s
}

// Assign maps key to its bucket exactly like the package-level Assign with
// m = s.M(), memoized per key.
func (s *Set) Assign(key types.Key) int {
	if v, ok := s.assign[key]; ok {
		return v
	}
	v := Assign(key, len(s.buckets))
	s.assign[key] = v
	return v
}

// AppendBucketsOf is AppendBucketsOf(dst, tx, s.M()) through the set's
// memoized key assignment.
func (s *Set) AppendBucketsOf(dst []int, tx *types.Transaction) []int {
	start := len(dst)
	for _, op := range tx.Ops {
		if !op.IsPayerOp() {
			continue
		}
		b := s.Assign(op.Key)
		dup := false
		for _, x := range dst[start:] {
			if x == b {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, b)
		}
	}
	out := dst[start:]
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return dst
}

// M returns the number of buckets (= SB instances).
func (s *Set) M() int { return len(s.buckets) }

// Bucket returns bucket i, the queue feeding SB instance i.
func (s *Set) Bucket(i int) *Bucket { return s.buckets[i] }

// Add validates tx and pushes it into every bucket it belongs to
// (Algorithm 1 lines 10-14). It returns the bucket indices used. A
// transaction with no payer op (e.g. pure mint) defaults to the bucket of
// its client so it still reaches exactly one instance.
func (s *Set) Add(tx *types.Transaction) ([]int, error) {
	if err := tx.Validate(); err != nil {
		return nil, err
	}
	idx := BucketsOf(tx, len(s.buckets))
	if len(idx) == 0 {
		idx = []int{Assign(tx.Client, len(s.buckets))}
	}
	for _, i := range idx {
		s.buckets[i].Push(tx)
	}
	return idx, nil
}

// MarkConfirmed drops tx from all buckets.
func (s *Set) MarkConfirmed(tx *types.Transaction) {
	for _, b := range s.buckets {
		b.MarkConfirmed(tx)
	}
}

// Pending returns the total queued transactions across buckets.
func (s *Set) Pending() int {
	n := 0
	for _, b := range s.buckets {
		n += b.Len()
	}
	return n
}

// LoadVector returns per-bucket queue lengths, for balance diagnostics.
func (s *Set) LoadVector() []int {
	v := make([]int, len(s.buckets))
	for i, b := range s.buckets {
		v[i] = b.Len()
	}
	return v
}

// GC runs checkpoint garbage collection on all buckets.
func (s *Set) GC() {
	for _, b := range s.buckets {
		b.GC()
	}
}
