package partition

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestAssignStableAndInRange(t *testing.T) {
	for m := 1; m <= 16; m *= 2 {
		for i := 0; i < 100; i++ {
			k := types.Key(fmt.Sprintf("acct-%d", i))
			b := Assign(k, m)
			if b < 0 || b >= m {
				t.Fatalf("Assign(%q,%d) = %d out of range", k, m, b)
			}
			if b != Assign(k, m) {
				t.Fatal("Assign unstable")
			}
		}
	}
}

func TestAssignSpreadsLoad(t *testing.T) {
	m := 8
	counts := make([]int, m)
	for i := 0; i < 8000; i++ {
		counts[Assign(types.Key(fmt.Sprintf("acct-%d", i)), m)]++
	}
	for b, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("bucket %d holds %d of 8000 keys (poor spread)", b, c)
		}
	}
}

func TestBucketsOfPayment(t *testing.T) {
	m := 4
	tx := types.NewPayment("alice", "bob", 5, 1)
	got := BucketsOf(tx, m)
	if len(got) != 1 || got[0] != Assign("alice", m) {
		t.Fatalf("BucketsOf = %v, want payer bucket only", got)
	}
}

func TestBucketsOfMultiPayerSortedDistinct(t *testing.T) {
	f := func(seed uint32) bool {
		m := 4
		a := types.Key(fmt.Sprintf("p1-%d", seed))
		b := types.Key(fmt.Sprintf("p2-%d", seed))
		tx := types.NewMultiPayment("c", []types.Transfer{
			{From: a, To: "x", Amount: 1},
			{From: b, To: "x", Amount: 1},
		}, 1)
		got := BucketsOf(tx, m)
		if len(got) == 0 || len(got) > 2 {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketPushPullFIFO(t *testing.T) {
	b := NewBucket()
	var txs []*types.Transaction
	for i := 0; i < 5; i++ {
		tx := types.NewPayment("alice", "bob", 1, uint64(i))
		txs = append(txs, tx)
		if !b.Push(tx) {
			t.Fatalf("push %d failed", i)
		}
	}
	if b.Len() != 5 {
		t.Fatalf("len = %d", b.Len())
	}
	got := b.Pull(3)
	if len(got) != 3 {
		t.Fatalf("pulled %d", len(got))
	}
	for i, tx := range got {
		if tx.ID() != txs[i].ID() {
			t.Fatal("not FIFO")
		}
	}
	if b.Len() != 2 {
		t.Fatalf("len after pull = %d", b.Len())
	}
	rest := b.Pull(100)
	if len(rest) != 2 {
		t.Fatalf("rest = %d", len(rest))
	}
}

func TestBucketDeduplication(t *testing.T) {
	b := NewBucket()
	tx := types.NewPayment("alice", "bob", 1, 7)
	if !b.Push(tx) {
		t.Fatal("first push failed")
	}
	if b.Push(tx) {
		t.Fatal("duplicate push accepted")
	}
	// After pulling, a re-push is allowed (not yet confirmed).
	b.Pull(1)
	if !b.Push(tx) {
		t.Fatal("re-push after pull rejected")
	}
}

func TestBucketConfirmedNotReadded(t *testing.T) {
	b := NewBucket()
	tx := types.NewPayment("alice", "bob", 1, 7)
	b.Push(tx)
	b.MarkConfirmed(tx)
	if b.Len() != 0 {
		t.Fatal("confirmed tx still queued")
	}
	if b.Push(tx) {
		t.Fatal("confirmed tx re-added")
	}
	b.GC()
	if !b.Push(tx) {
		t.Fatal("push after GC rejected")
	}
}

func TestBucketPeekDoesNotRemove(t *testing.T) {
	b := NewBucket()
	tx := types.NewPayment("alice", "bob", 1, 1)
	b.Push(tx)
	if got := b.Peek(5); len(got) != 1 {
		t.Fatalf("peek = %d", len(got))
	}
	if b.Len() != 1 {
		t.Fatal("peek removed element")
	}
}

func TestSetAddRouting(t *testing.T) {
	s := NewSet(4)
	tx := types.NewPayment("alice", "bob", 5, 1)
	idx, err := s.Add(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != Assign("alice", 4) {
		t.Fatalf("idx = %v", idx)
	}
	if s.Bucket(idx[0]).Len() != 1 || s.Pending() != 1 {
		t.Fatal("tx not queued")
	}
}

func TestSetAddMultiPayerGoesToAllBuckets(t *testing.T) {
	m := 4
	s := NewSet(m)
	// Find two payers landing in different buckets.
	var p1, p2 types.Key
	for i := 0; ; i++ {
		p1 = types.Key(fmt.Sprintf("u%d", i))
		p2 = types.Key(fmt.Sprintf("v%d", i))
		if Assign(p1, m) != Assign(p2, m) {
			break
		}
	}
	tx := types.NewMultiPayment("c", []types.Transfer{
		{From: p1, To: "x", Amount: 1},
		{From: p2, To: "x", Amount: 1},
	}, 1)
	idx, err := s.Add(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("idx = %v", idx)
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want one copy per bucket", s.Pending())
	}
	s.MarkConfirmed(tx)
	if s.Pending() != 0 {
		t.Fatal("MarkConfirmed left copies behind")
	}
}

func TestSetAddInvalidTx(t *testing.T) {
	s := NewSet(2)
	if _, err := s.Add(&types.Transaction{Client: "x"}); err == nil {
		t.Fatal("invalid tx accepted")
	}
}

func TestSetAddNoPayerFallsBackToClientBucket(t *testing.T) {
	s := NewSet(4)
	// A mint-like tx: only increments.
	tx := &types.Transaction{Client: "faucet", Ops: []types.Op{
		{Key: "alice", Type: types.Owned, Kind: types.OpIncrement, Amount: 5},
	}}
	idx, err := s.Add(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != Assign("faucet", 4) {
		t.Fatalf("idx = %v, want client bucket", idx)
	}
}

func TestLoadVector(t *testing.T) {
	s := NewSet(2)
	for i := 0; i < 10; i++ {
		s.Add(types.NewPayment(types.Key(fmt.Sprintf("p%d", i)), "x", 1, uint64(i)))
	}
	v := s.LoadVector()
	if v[0]+v[1] != 10 {
		t.Fatalf("load vector %v does not sum to 10", v)
	}
}
