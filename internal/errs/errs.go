// Package errs holds the error sentinels shared by the public SDK
// packages. orthrus and orthrus/scenariodsl both re-export
// ErrInvalidConfig; defining the value here lets scenariodsl type its
// parse errors with the same sentinel the orthrus package wraps its
// validation failures in, without a dependency cycle between the two
// public packages.
package errs

import "errors"

// ErrInvalidConfig is the sentinel every configuration or scenario
// validation failure wraps; match with errors.Is. The public packages
// alias it as orthrus.ErrInvalidConfig and scenariodsl.ErrInvalidConfig —
// one value, so either alias matches errors from both packages.
var ErrInvalidConfig = errors.New("orthrus: invalid configuration")
