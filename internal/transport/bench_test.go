package transport

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pbft"
	"repro/internal/types"
)

// benchProposal builds the proposal-shaped message the netbench harness
// broadcasts: a PrePrepare carrying a small block, the dominant bytes on
// a consensus wire.
func benchProposal() *pbft.PrePrepare {
	b := &types.Block{
		Instance: 0, SN: 1, Rank: 7,
		State:    types.StateVector{3, 1, 4, 1, 5, 9, 2, 6},
		Proposer: 0,
		Sig:      []byte{0xCA, 0xFE},
	}
	for i := 0; i < 4; i++ {
		b.Txs = append(b.Txs, types.Transaction{
			Ops: []types.Op{
				{Key: "payer-account-1", Type: types.Owned, Kind: types.OpDecrement, Amount: 30},
				{Key: "payee-account-2", Type: types.Owned, Kind: types.OpIncrement, Amount: 30},
			},
			Client:  "client-account-3",
			Nonce:   uint64(i),
			Sig:     []byte{1, 2, 3, 4, 5, 6, 7, 8},
			Payload: []byte{9, 9, 9, 9, 9, 9, 9, 9},
		})
	}
	return &pbft.PrePrepare{Instance: 0, View: 0, Seq: 1, Block: b}
}

// drainCounter waits until the delivered count reaches want.
func drainCounter(b *testing.B, delivered *atomic.Uint64, want uint64) {
	b.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for delivered.Load() < want {
		if time.Now().After(deadline) {
			b.Fatalf("drain stalled: %d/%d delivered", delivered.Load(), want)
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// BenchmarkTransportProcBroadcast measures one Proc broadcast to an
// n-replica cluster end to end (encode, enqueue, per-receiver decode,
// handler dispatch); allocs/op covers all n deliveries.
func BenchmarkTransportProcBroadcast(b *testing.B) {
	for _, n := range []int{4, 10} {
		b.Run(map[int]string{4: "n4", 10: "n10"}[n], func(b *testing.B) {
			p := NewProc(n)
			var delivered atomic.Uint64
			for i := 0; i < n; i++ {
				p.Register(i, func(int, any) { delivered.Add(1) })
			}
			p.Start(time.Now())
			defer p.Stop()
			msg := benchProposal()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Broadcast(0, 0, msg)
				if i%256 == 255 { // bound the inbox backlog
					drainCounter(b, &delivered, uint64(i+1)*uint64(n))
				}
			}
			drainCounter(b, &delivered, uint64(b.N)*uint64(n))
		})
	}
}

// BenchmarkTransportProcSend measures a single point-to-point Proc send.
func BenchmarkTransportProcSend(b *testing.B) {
	p := NewProc(2)
	var delivered atomic.Uint64
	for i := 0; i < 2; i++ {
		p.Register(i, func(int, any) { delivered.Add(1) })
	}
	p.Start(time.Now())
	defer p.Stop()
	msg := benchProposal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Send(0, 1, 0, msg)
		if i%256 == 255 {
			drainCounter(b, &delivered, uint64(i+1))
		}
	}
	drainCounter(b, &delivered, uint64(b.N))
}

// benchTCPCluster builds an n-endpoint loopback cluster whose handlers
// bump the shared delivered counter.
func benchTCPCluster(b *testing.B, n int, delivered *atomic.Uint64) []*TCP {
	b.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		listeners[i] = ln
		peers[i] = ln.Addr().String()
	}
	ts := make([]*TCP, n)
	epoch := time.Now()
	for i := range ts {
		node := NewNode(i)
		tr, err := NewTCP(i, peers, node, TCPOptions{Listener: listeners[i]})
		if err != nil {
			b.Fatal(err)
		}
		tr.Register(i, func(int, any) { delivered.Add(1) })
		node.Start(epoch)
		ts[i] = tr
		b.Cleanup(func() { tr.Close(); node.Stop() })
	}
	return ts
}

// BenchmarkTransportTCPBroadcast measures one TCP broadcast to a
// 4-endpoint loopback cluster end to end: encode, framing, queueing,
// socket writes and reads, decode, handler dispatch. allocs/op covers
// all 4 deliveries (one local, three over sockets).
func BenchmarkTransportTCPBroadcast(b *testing.B) {
	const n = 4
	var delivered atomic.Uint64
	ts := benchTCPCluster(b, n, &delivered)
	msg := benchProposal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts[0].Broadcast(0, 0, msg)
		if i%256 == 255 { // keep outbound queues below the drop cap
			drainCounter(b, &delivered, uint64(i+1)*uint64(n))
		}
	}
	drainCounter(b, &delivered, uint64(b.N)*uint64(n))
}

// BenchmarkTransportTCPSend measures one point-to-point TCP frame.
func BenchmarkTransportTCPSend(b *testing.B) {
	var delivered atomic.Uint64
	ts := benchTCPCluster(b, 2, &delivered)
	msg := benchProposal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts[0].Send(0, 1, 0, msg)
		if i%256 == 255 {
			drainCounter(b, &delivered, uint64(i+1))
		}
	}
	drainCounter(b, &delivered, uint64(b.N))
}
