package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/pbft"
	"repro/internal/types"
)

// chunkedReader serves its data in fixed-size chunks, forcing the frame
// reader through every split-read path: headers straddling reads,
// payloads arriving a byte at a time, EOF mid-frame.
type chunkedReader struct {
	data  []byte
	chunk int
}

func (c *chunkedReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := min(len(p), min(c.chunk, len(c.data)))
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// parseFrames drains a frameReader over data served in chunk-sized
// reads, returning the payload sequence and the terminating error text.
func parseFrames(data []byte, chunk int) ([][]byte, string) {
	fr := frameReader{r: &chunkedReader{data: data, chunk: chunk}}
	var payloads [][]byte
	for {
		p, err := fr.next()
		if err != nil {
			return payloads, err.Error()
		}
		payloads = append(payloads, bytes.Clone(p))
	}
}

// frameStream concatenates length-prefixed frames around the payloads.
func frameStream(payloads ...[]byte) []byte {
	var out []byte
	for _, p := range payloads {
		out = binary.BigEndian.AppendUint32(out, uint32(len(p)))
		out = append(out, p...)
	}
	return out
}

// FuzzFrameReader throws arbitrary byte streams at the TCP frame reader
// and pins two properties:
//
//  1. next never panics and never returns a payload longer than the
//     maxFrameLen bound, whatever the length prefix claims.
//  2. Parsing is independent of read fragmentation: the same stream
//     served one byte at a time yields the same payload sequence and
//     the same terminating error as any other chunking — partial
//     headers and split payloads change nothing.
//
// The seed corpus covers the interesting shapes: a real pooled-frame
// encoding, a zero-length payload, back-to-back frames, a truncated
// header, a truncated payload, and an oversized length prefix.
func FuzzFrameReader(f *testing.F) {
	proposal, err := encodeFrame(benchProposal())
	if err != nil {
		f.Fatal(err)
	}
	prepare, err := encodeFrame(&pbft.Prepare{Instance: 1, View: 2, Seq: 3, Digest: types.BlockID{7}, Replica: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.Clone(proposal.buf), uint8(1))                             // one pooled-frame encoding
	f.Add(frameStream(nil), uint8(1))                                      // zero-length payload
	f.Add(append(bytes.Clone(proposal.buf), prepare.buf...), uint8(3))     // back-to-back frames
	f.Add([]byte{0, 0}, uint8(1))                                          // truncated header
	f.Add([]byte{0, 0, 0, 9, 1, 2, 3}, uint8(2))                           // truncated payload
	f.Add(binary.BigEndian.AppendUint32(nil, maxFrameLen), uint8(1))       // max-length claim, truncated body
	f.Add(binary.BigEndian.AppendUint32(nil, maxFrameLen+1), uint8(1))     // oversized length
	f.Add(frameStream([]byte{5}, bytes.Repeat([]byte{6}, 300)), uint8(16)) // growth across frames
	proposal.recycle()
	prepare.recycle()
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		got, gotErr := parseFrames(data, int(chunk%16)+1)
		want, wantErr := parseFrames(data, 1)
		if gotErr != wantErr {
			t.Fatalf("terminating error depends on chunking: %q (chunk %d) vs %q (chunk 1)", gotErr, int(chunk%16)+1, wantErr)
		}
		if len(got) != len(want) {
			t.Fatalf("frame count depends on chunking: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("frame %d depends on chunking:\n  %x\n  %x", i, got[i], want[i])
			}
			if len(got[i]) > maxFrameLen {
				t.Fatalf("frame %d of %d bytes exceeds maxFrameLen", i, len(got[i]))
			}
		}
	})
}
