package transport

import (
	"encoding/binary"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pbft"
	"repro/internal/types"
)

// TestBroadcastCopiesDoNotAlias pins the isolation contract of the
// encode-once broadcast: every receiver decodes its own copy from the
// shared immutable frame, so handlers on different node loops may mutate
// their message freely. Each handler first checks a sentinel field (a
// shared buffer would show another receiver's scribbles), then scribbles
// every byte slice and amount itself; under -race any aliasing between
// the copies — or with the pooled frame being reused by later
// broadcasts — is a detected data race.
func TestBroadcastCopiesDoNotAlias(t *testing.T) {
	const n, rounds = 3, 200
	p := NewProc(n)
	var delivered atomic.Uint64
	for i := 0; i < n; i++ {
		stamp := byte(0x10 + i)
		p.Register(i, func(from int, msg any) {
			pp, ok := msg.(*pbft.PrePrepare)
			if !ok {
				t.Errorf("receiver got %T, want *pbft.PrePrepare", msg)
				return
			}
			for j, tx := range pp.Block.Txs {
				if tx.Ops[0].Amount != 30 {
					t.Errorf("tx %d amount = %d before mutation, want 30 (copies alias?)", j, tx.Ops[0].Amount)
				}
			}
			for j := range pp.Block.Sig {
				pp.Block.Sig[j] = stamp
			}
			for j := range pp.Block.Txs {
				tx := &pp.Block.Txs[j]
				tx.Ops[0].Amount = types.Amount(stamp)
				for k := range tx.Sig {
					tx.Sig[k] = stamp
				}
				for k := range tx.Payload {
					tx.Payload[k] = stamp
				}
			}
			delivered.Add(1)
		})
	}
	p.Start(time.Now())
	defer p.Stop()
	for k := 0; k < rounds; k++ {
		p.Broadcast(0, 0, benchProposal())
	}
	waitFor(t, func() bool { return delivered.Load() == n*rounds })
	if e, d := p.EncodeErrors(), p.DecodeErrors(); e != 0 || d != 0 {
		t.Fatalf("wire errors during broadcast storm: encode=%d decode=%d", e, d)
	}
}

// unencodable is outside the closed wire message set.
type unencodable struct{}

// TestProcEncodeErrorsCounted pins that an unencodable message is
// counted and dropped — not panicked on, not partially delivered.
func TestProcEncodeErrorsCounted(t *testing.T) {
	p := NewProc(2)
	col := &collector{}
	p.Register(0, col.handle)
	p.Register(1, col.handle)
	p.Start(time.Now())
	defer p.Stop()
	p.Send(0, 1, 0, unencodable{})
	p.Broadcast(0, 0, unencodable{})
	p.Inject(2, 1, unencodable{})
	if got := p.EncodeErrors(); got != 3 {
		t.Fatalf("EncodeErrors = %d, want 3", got)
	}
	if got := p.Messages(); got != 0 {
		t.Fatalf("Messages = %d after encode failures, want 0", got)
	}
	time.Sleep(20 * time.Millisecond)
	if got := len(col.snapshot()); got != 0 {
		t.Fatalf("%d messages delivered from failed encodes, want 0", got)
	}
}

// TestTCPEncodeErrorsCounted pins the same contract on the socket
// transport: Send and Broadcast of an unencodable message count into
// EncodeErrors instead of panicking, and nothing reaches any replica.
func TestTCPEncodeErrorsCounted(t *testing.T) {
	ts, cols := tcpCluster(t, 2)
	ts[0].Send(0, 1, 0, unencodable{})
	ts[0].Broadcast(0, 0, unencodable{})
	if got := ts[0].EncodeErrors(); got != 2 {
		t.Fatalf("EncodeErrors = %d, want 2", got)
	}
	time.Sleep(20 * time.Millisecond)
	if got := len(cols[0].snapshot()) + len(cols[1].snapshot()); got != 0 {
		t.Fatalf("%d messages delivered from failed encodes, want 0", got)
	}
}

// TestTCPDecodeErrorsCounted pins that a malformed frame from a remote
// peer is dropped and counted without killing the connection: a valid
// frame following the garbage still arrives.
func TestTCPDecodeErrorsCounted(t *testing.T) {
	ts, cols := tcpCluster(t, 2)
	conn, err := net.Dial("tcp", ts[0].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello [frameHeaderLen + 4]byte
	binary.BigEndian.PutUint32(hello[:], 4)
	binary.BigEndian.PutUint32(hello[frameHeaderLen:], 1)
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	garbage := []byte{0, 0, 0, 2, 0xFF, 0x01} // framed, but no such message tag
	if _, err := conn.Write(garbage); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ts[0].DecodeErrors() == 1 })
	ts[1].Send(1, 0, 0, benchProposal())
	waitFor(t, func() bool { return len(cols[0].snapshot()) == 1 })
	if got := ts[0].Messages(); got != 1 {
		t.Fatalf("Messages = %d, want 1 (the garbage frame must not count)", got)
	}
}
