// Package transport defines the seam between the replica state machines
// and whatever carries their messages, and implements it three ways:
//
//   - the deterministic simulator (*simnet.Network satisfies Transport
//     natively — the seam's method set is exactly the one replicas already
//     drive);
//   - Proc, an in-process transport that moves wire-encoded messages
//     between per-replica goroutines under real wall-clock time;
//   - TCP, the same replicas over real sockets with length-prefixed
//     framing, per-peer reconnect with backoff, and write timeouts.
//
// The unchanged core/pbft state machines schedule timers against
// simnet.NodeSim. Real transports keep that contract with a Node per
// replica: a private simnet.Sim used purely as a timer queue, slaved to
// the wall clock by the node's event-loop goroutine. Everything a replica
// does — timer callbacks and message handling — runs on that single
// goroutine, preserving the simulator's single-threaded replica model, so
// no replica state needs locks.
//
// Determinism caveat: under real transports, virtual time is the wall
// clock. Two runs interleave differently, so event-level determinism is
// gone; what survives is protocol-level agreement, which the sim-vs-real
// cross-validation harness (internal/cluster.RunReal and the X-val figure)
// pins by comparing committed block digests.
package transport

import (
	"repro/internal/simnet"
)

// Transport is the full transport seam: handler registration,
// fire-and-forget sends, and delivered-traffic counters. The size argument
// is the simulator's modeled wire size; real transports ignore it and
// count actual encoded bytes (internal/wire), keeping Messages and Bytes
// comparable across backends by construction rather than by estimate.
type Transport interface {
	// Register installs the message handler for a replica id. Handlers run
	// on the destination replica's event-loop goroutine.
	Register(id int, h simnet.Handler)
	// Send carries msg from replica `from` to replica `to`. The size hint
	// is only meaningful to the simulator's bandwidth model.
	Send(from, to, size int, msg any)
	// Broadcast sends msg from -> every replica including the sender
	// (protocols self-deliver, matching simnet.Network.Broadcast).
	Broadcast(from, size int, msg any)
	// Messages returns the number of messages delivered so far.
	Messages() uint64
	// Bytes returns the total delivered payload bytes: modeled sizes for
	// the simulator, actual encoded wire sizes for real transports.
	Bytes() uint64
}

// The simulator's network is a Transport as-is: the seam was extracted
// from its method set.
var _ Transport = (*simnet.Network)(nil)
