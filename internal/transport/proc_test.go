package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/pbft"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/wire"
)

// collector records deliveries on a node's event loop.
type collector struct {
	mu   sync.Mutex
	msgs []inMsg
}

func (c *collector) handle(from int, msg any) {
	c.mu.Lock()
	c.msgs = append(c.msgs, inMsg{from: from, msg: msg})
	c.mu.Unlock()
}

func (c *collector) snapshot() []inMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]inMsg(nil), c.msgs...)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestProcDelivery pins the transport contract: messages arrive at the
// registered handler as decoded copies (never the sender's pointer), in
// per-sender order, and Broadcast self-delivers.
func TestProcDelivery(t *testing.T) {
	p := NewProc(3)
	cols := make([]*collector, 3)
	for i := range cols {
		cols[i] = &collector{}
		p.Register(i, cols[i].handle)
	}
	p.Start(time.Now())
	defer p.Stop()

	sent := &pbft.Prepare{Instance: 1, View: 2, Seq: 3, Digest: types.BlockID{9}, Replica: 0}
	p.Send(0, 1, 96, sent)
	p.Send(0, 1, 96, &pbft.Commit{Instance: 1, Seq: 3, Replica: 0})
	p.Broadcast(2, 96, &pbft.Prepare{Instance: 0, Seq: 1, Replica: 2})

	waitFor(t, func() bool { return len(cols[1].snapshot()) == 3 })
	waitFor(t, func() bool { return len(cols[2].snapshot()) == 1 })

	got := cols[1].snapshot()
	first, ok := got[0].msg.(*pbft.Prepare)
	if !ok || got[0].from != 0 {
		t.Fatalf("delivery 0 = %T from %d, want *pbft.Prepare from 0", got[0].msg, got[0].from)
	}
	if first == sent {
		t.Fatal("receiver got the sender's pointer, not a decoded copy")
	}
	if *first != *sent {
		t.Fatalf("decoded copy differs: %+v != %+v", first, sent)
	}
	if _, ok := got[1].msg.(*pbft.Commit); !ok {
		t.Fatalf("per-sender order violated: second delivery is %T", got[1].msg)
	}
	// Broadcast reached all three nodes, including the sender.
	waitFor(t, func() bool { return len(cols[0].snapshot()) == 1 })
}

// TestProcCountersUseEncodedSizes pins the satellite contract: Messages
// and Bytes reflect actual wire encodings, not the callers' size hints.
func TestProcCountersUseEncodedSizes(t *testing.T) {
	p := NewProc(2)
	for i := 0; i < 2; i++ {
		p.Register(i, func(int, any) {})
	}
	p.Start(time.Now())
	defer p.Stop()

	msg := &pbft.Prepare{Instance: 1, View: 0, Seq: 2, Replica: 0}
	enc, err := wire.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	const bogusHint = 123456
	p.Send(0, 1, bogusHint, msg)
	p.Broadcast(0, bogusHint, msg) // 2 more deliveries of the same encoding
	if got, want := p.Messages(), uint64(3); got != want {
		t.Fatalf("Messages = %d, want %d", got, want)
	}
	if got, want := p.Bytes(), uint64(3*len(enc)); got != want {
		t.Fatalf("Bytes = %d, want %d (3 deliveries x %d encoded bytes)", got, want, len(enc))
	}
}

// TestNodeTimers pins the wall-clock slaving: a timer scheduled through
// the node's NodeSim fires on the loop goroutine no earlier than its
// wall-clock deadline, and virtual Now() tracks elapsed time since the
// epoch at that moment.
func TestNodeTimers(t *testing.T) {
	type firing struct {
		at   simnet.Time
		wall time.Duration
	}
	n := NewNode(0)
	sim := n.Sim()
	fired := make(chan firing, 1)
	start := time.Now()
	sim.After(simnet.Duration(30*time.Millisecond), func() {
		fired <- firing{at: sim.Now(), wall: time.Since(start)}
	})
	n.Start(start)
	defer n.Stop()
	select {
	case f := <-fired:
		if f.wall < 30*time.Millisecond {
			t.Fatalf("timer fired after %s wall time, before its 30ms deadline", f.wall)
		}
		if f.at < simnet.Time(30*time.Millisecond) {
			t.Fatalf("virtual Now() = %d at firing, before the 30ms deadline", f.at)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}
