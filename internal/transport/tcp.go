package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
	"repro/internal/wire"
)

// Frame format: a 4-byte big-endian payload length, then the
// wire-encoded message. A connection opens with a hello frame whose
// payload is the 4-byte big-endian sender replica id.
const (
	frameHeaderLen = 4
	// maxFrameLen bounds a single message (64 MiB): far above any real
	// batch, low enough that a corrupt length prefix cannot OOM the node.
	maxFrameLen = 64 << 20
	// maxWriteBatch bounds the bytes one vectored write coalesces. Small
	// enough that a reconnect's whole-batch resend stays cheap, large
	// enough to drain a deep queue in a handful of syscalls.
	maxWriteBatch = 256 << 10
)

// TCPOptions tunes a TCP transport; the zero value is usable.
type TCPOptions struct {
	// Listener overrides listening on the peer table's own address —
	// tests reserve ephemeral ports this way. Closed by Close.
	Listener net.Listener
	// WriteTimeout bounds each frame write (default 5s); a peer that
	// stalls longer gets its connection dropped and redialed.
	WriteTimeout time.Duration
	// DialBackoffMax caps the exponential redial backoff (default 1s).
	DialBackoffMax time.Duration
	// Logf, when set, receives one line per connectivity event (connects,
	// disconnects, redials) — the daemon wires its structured logger here.
	Logf func(format string, args ...any)
	// QueueCap bounds each peer's outbound queue in frames (default 4096).
	// At the cap the oldest frame is dropped and counted (Dropped): a
	// partitioned or wedged peer must not accumulate frames until OOM over
	// a long run, and PBFT tolerates lost messages — retransmission and
	// view changes supersede dropped votes, and a peer that falls behind
	// catches up through state transfer, not replayed backlog.
	QueueCap int
}

// TCP carries replica messages over real sockets: one outbound connection
// per peer (dialed lazily, redialed with exponential backoff), length-
// prefixed frames, write timeouts, and an accept loop feeding decoded
// messages to the local Node's event loop.
//
// The hot path avoids per-message allocation: sends encode once into a
// pooled frame (the frame is the encode buffer), a broadcast shares that
// one immutable frame across every peer queue by refcount, the writer
// drains whole queue batches into a single vectored write, and the read
// side reuses one buffer per connection (wire.Decode never aliasing its
// input makes the immediate reuse safe).
//
// Each process hosts one replica, so Register accepts only the local id
// and the traffic counters cover locally delivered messages (the
// per-destination view, matching what simnet counts per node).
type TCP struct {
	id    int
	peers []string
	node  *Node
	opts  TCPOptions

	ln net.Listener

	mu    sync.Mutex
	out   map[int]*peerQueue
	conns map[net.Conn]struct{} // live inbound connections, closed by Close
	close sync.Once

	quit chan struct{}
	wg   sync.WaitGroup

	msgs       atomic.Uint64
	bytes      atomic.Uint64
	dropped    atomic.Uint64
	encodeErrs atomic.Uint64
	decodeErrs atomic.Uint64
}

// peerQueue is the bounded outbound buffer for one peer, drained by a
// dedicated writer goroutine. The sender is the replica event loop:
// blocking it on a slow peer would stall consensus with the fast ones, so
// at the cap the OLDEST frame is dropped (newest protocol state wins) and
// counted in the shared dropped counter. Lossy-but-bounded is the right
// trade for long runs: the channels are fair-lossy, PBFT's timeouts and
// view changes recover from lost votes, and a peer partitioned for hours
// must not grow this queue until OOM.
//
// Queued frames are refcounted (broadcasts share one frame across every
// peer queue); the queue owns one reference per entry and releases it on
// drop-at-cap, on shut, or — via the writer — after the frame is written.
type peerQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	frames  []*frame
	head    int // consumed prefix of frames (amortized O(1) pop/drop)
	cap     int
	dropped *atomic.Uint64
	closed  bool
}

func newPeerQueue(cap int, dropped *atomic.Uint64) *peerQueue {
	q := &peerQueue{cap: cap, dropped: dropped}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *peerQueue) push(f *frame) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		f.release()
		return
	}
	if len(q.frames)-q.head >= q.cap {
		old := q.frames[q.head]
		q.frames[q.head] = nil
		q.head++
		q.dropped.Add(1)
		old.release()
	}
	if q.head > 0 && q.head == len(q.frames) {
		q.frames, q.head = q.frames[:0], 0
	}
	q.frames = append(q.frames, f)
	q.mu.Unlock()
	q.cond.Signal()
}

// popBatch blocks until at least one frame is available (or the queue
// closes), then moves queued frames into dst until the queue empties or
// the batch reaches maxBytes — the writer turns each batch into one
// vectored write. The first frame always fits regardless of size.
// Ownership of the returned frames' queue references moves to the caller.
func (q *peerQueue) popBatch(dst []*frame, maxBytes int) ([]*frame, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.frames)-q.head == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.frames)-q.head == 0 {
		return dst, false
	}
	total := 0
	for q.head < len(q.frames) {
		f := q.frames[q.head]
		if len(dst) > 0 && total+len(f.buf) > maxBytes {
			break
		}
		dst = append(dst, f)
		total += len(f.buf)
		q.frames[q.head] = nil
		q.head++
	}
	if q.head == len(q.frames) {
		q.frames, q.head = q.frames[:0], 0
	}
	return dst, true
}

// depth returns the number of queued frames (tests).
func (q *peerQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.frames) - q.head
}

func (q *peerQueue) shut() {
	q.mu.Lock()
	q.closed = true
	for ; q.head < len(q.frames); q.head++ {
		q.frames[q.head].release()
		q.frames[q.head] = nil
	}
	q.frames, q.head = q.frames[:0], 0
	q.mu.Unlock()
	q.cond.Broadcast()
}

// NewTCP builds the transport for replica id of the cluster described by
// peers (index = replica id, value = host:port). It starts listening on
// peers[id] (or opts.Listener) immediately; outbound connections are
// dialed on first send and redialed with backoff on failure, so peer
// processes may start in any order.
func NewTCP(id int, peers []string, node *Node, opts TCPOptions) (*TCP, error) {
	if id < 0 || id >= len(peers) {
		return nil, fmt.Errorf("transport: id %d outside peer table of %d", id, len(peers))
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 5 * time.Second
	}
	if opts.DialBackoffMax <= 0 {
		opts.DialBackoffMax = time.Second
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 4096
	}
	t := &TCP{
		id:    id,
		peers: peers,
		node:  node,
		opts:  opts,
		out:   make(map[int]*peerQueue),
		conns: make(map[net.Conn]struct{}),
		quit:  make(chan struct{}),
	}
	t.ln = opts.Listener
	if t.ln == nil {
		ln, err := net.Listen("tcp", peers[id])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", peers[id], err)
		}
		t.ln = ln
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's listening address.
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

func (t *TCP) logf(format string, args ...any) {
	if t.opts.Logf != nil {
		t.opts.Logf(format, args...)
	}
}

// Register implements Transport for the one local replica.
func (t *TCP) Register(id int, h simnet.Handler) {
	if id != t.id {
		panic(fmt.Sprintf("transport: Register(%d) on the replica-%d TCP endpoint", id, t.id))
	}
	t.node.setHandler(h)
}

// Send implements Transport: one encode into a pooled frame, queued to
// the peer's writer. Local delivery short-circuits through the same
// encode/decode copy (identical observable behavior to a socket hop).
// An unencodable message is counted in EncodeErrors and dropped rather
// than sent partially — the replica message set is closed, so a nonzero
// counter is a bug signal, not an operational one.
func (t *TCP) Send(from, to, size int, msg any) {
	if to < 0 || to >= len(t.peers) {
		return
	}
	f, err := encodeFrame(msg)
	if err != nil {
		t.encodeErrs.Add(1)
		t.logf("wire encode failed, message to peer %d dropped: %v", to, err)
		return
	}
	if to == t.id {
		t.deliverLocal(from, f.payload())
		f.recycle()
		return
	}
	f.retain(1)
	t.queueFor(to).push(f)
}

// Broadcast implements Transport: one encode, one immutable frame shared
// by refcount across every peer queue, plus a local decoded delivery
// (protocols self-deliver). The frame returns to the pool after the last
// writer finishes with it.
func (t *TCP) Broadcast(from, size int, msg any) {
	f, err := encodeFrame(msg)
	if err != nil {
		t.encodeErrs.Add(1)
		t.logf("wire encode failed, broadcast dropped: %v", err)
		return
	}
	// Decode the local copy before publishing the frame to the writers:
	// once pushed, the frame may be released (and its buffer reused) the
	// moment the last writer finishes.
	t.deliverLocal(from, f.payload())
	remote := len(t.peers) - 1
	if remote <= 0 {
		f.recycle()
		return
	}
	f.retain(remote)
	for to := range t.peers {
		if to != t.id {
			t.queueFor(to).push(f)
		}
	}
}

// deliverLocal decodes payload and hands the message to the local node
// loop, counting it as delivered traffic.
func (t *TCP) deliverLocal(from int, payload []byte) {
	msg, err := wire.Decode(payload)
	if err != nil {
		t.decodeErrs.Add(1)
		t.logf("decode of own encoding failed, message dropped: %v", err)
		return
	}
	t.msgs.Add(1)
	t.bytes.Add(uint64(len(payload)))
	t.node.enqueue(from, msg)
}

// queueFor returns the outbound queue for a peer, spawning its writer on
// first use.
func (t *TCP) queueFor(to int) *peerQueue {
	t.mu.Lock()
	defer t.mu.Unlock()
	q, ok := t.out[to]
	if !ok {
		q = newPeerQueue(t.opts.QueueCap, &t.dropped)
		t.out[to] = q
		t.wg.Add(1)
		go t.writeLoop(to, q)
	}
	return q
}

// writeLoop drains one peer's queue: dial (with exponential backoff and a
// hello frame identifying this replica), then flush whole queue batches
// as single vectored writes under the write timeout. Any error drops the
// connection, redials, and resends the whole failed batch on the fresh
// connection — the already-written prefix arrives twice, which is safe
// because PBFT deduplicates votes by (view, seq, sender).
func (t *TCP) writeLoop(to int, q *peerQueue) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := 25 * time.Millisecond
	var batch []*frame
	var bufs net.Buffers
	for {
		var ok bool
		batch, ok = q.popBatch(batch[:0], maxWriteBatch)
		if !ok {
			return
		}
		sent := t.writeBatch(to, &conn, &backoff, batch, &bufs)
		for i, f := range batch {
			f.release()
			batch[i] = nil
		}
		if !sent {
			return
		}
	}
}

// writeBatch writes one popped batch, (re)dialing as needed; it returns
// false only when the transport is shutting down.
func (t *TCP) writeBatch(to int, conn *net.Conn, backoff *time.Duration, batch []*frame, bufs *net.Buffers) bool {
	for {
		if *conn == nil {
			c, err := net.DialTimeout("tcp", t.peers[to], t.opts.WriteTimeout)
			if err == nil {
				var hello [frameHeaderLen + 4]byte
				binary.BigEndian.PutUint32(hello[:], 4)
				binary.BigEndian.PutUint32(hello[frameHeaderLen:], uint32(t.id))
				c.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
				if _, werr := c.Write(hello[:]); werr != nil {
					err = werr
					c.Close()
				}
				if err == nil {
					*conn = c
					*backoff = 25 * time.Millisecond
					t.logf("connected to peer %d at %s", to, t.peers[to])
				}
			}
			if *conn == nil {
				t.logf("dial peer %d (%s) failed: %v; retrying in %s", to, t.peers[to], err, *backoff)
				select {
				case <-t.quit:
					return false
				case <-time.After(*backoff):
				}
				if *backoff *= 2; *backoff > t.opts.DialBackoffMax {
					*backoff = t.opts.DialBackoffMax
				}
				continue
			}
		}
		// net.Buffers.WriteTo consumes the slice-of-slices (it advances
		// through it), so rebuild it from the batch on every attempt; the
		// frame bytes themselves are only ever read.
		*bufs = (*bufs)[:0]
		for _, f := range batch {
			*bufs = append(*bufs, f.buf)
		}
		(*conn).SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
		if _, err := bufs.WriteTo(*conn); err != nil {
			t.logf("write to peer %d failed: %v; reconnecting", to, err)
			(*conn).Close()
			*conn = nil
			select {
			case <-t.quit:
				return false
			default:
			}
			continue
		}
		return true
	}
}

// acceptLoop admits inbound connections: read the hello frame naming the
// peer, then feed its frames to the node loop until the connection dies.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.quit:
				return
			default:
			}
			t.logf("accept failed: %v", err)
			return
		}
		t.mu.Lock()
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	// One reusable frame buffer serves the whole connection: each payload
	// is borrowed until the next read, and wire.Decode's no-aliasing
	// contract means the decoded message survives the buffer's reuse.
	fr := frameReader{r: conn}
	hello, err := fr.next()
	if err != nil || len(hello) != 4 {
		t.logf("inbound connection rejected: bad hello (%v)", err)
		return
	}
	from := int(binary.BigEndian.Uint32(hello))
	t.logf("peer %d connected from %s", from, conn.RemoteAddr())
	for {
		payload, err := fr.next()
		if err != nil {
			if err != io.EOF {
				t.logf("read from peer %d failed: %v", from, err)
			}
			return
		}
		msg, err := wire.Decode(payload)
		if err != nil {
			t.decodeErrs.Add(1)
			t.logf("malformed frame from peer %d dropped: %v", from, err)
			continue
		}
		t.msgs.Add(1)
		t.bytes.Add(uint64(len(payload)))
		t.node.enqueue(from, msg)
	}
}

// Messages implements Transport: messages delivered to the local replica.
func (t *TCP) Messages() uint64 { return t.msgs.Load() }

// Bytes implements Transport: encoded bytes delivered to the local replica.
func (t *TCP) Bytes() uint64 { return t.bytes.Load() }

// Dropped returns outbound frames discarded at the per-peer queue cap
// (oldest-first); nonzero means some peer could not keep up and will need
// view changes or state transfer to recover the lost messages.
func (t *TCP) Dropped() uint64 { return t.dropped.Load() }

// EncodeErrors counts messages dropped because wire encoding failed.
// Always zero in a correct build: the replica message set is closed.
func (t *TCP) EncodeErrors() uint64 { return t.encodeErrs.Load() }

// DecodeErrors counts inbound frames dropped because decoding failed —
// a malformed frame from a remote peer, or (never, absent corruption)
// a local self-delivery that failed to decode its own encoding.
func (t *TCP) DecodeErrors() uint64 { return t.decodeErrs.Load() }

// Close shuts the transport down: the listener stops, outbound queues
// close after draining nothing further, and all connection goroutines
// exit before Close returns. The node loop is not touched — stop it
// separately so in-flight handler work finishes first.
func (t *TCP) Close() {
	t.close.Do(func() {
		close(t.quit)
		t.ln.Close()
		t.mu.Lock()
		for _, q := range t.out {
			q.shut()
		}
		for c := range t.conns {
			c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
	})
}

var _ Transport = (*TCP)(nil)
