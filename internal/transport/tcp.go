package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
	"repro/internal/wire"
)

// Frame format: a 4-byte big-endian payload length, then the
// wire-encoded message. A connection opens with a hello frame whose
// payload is the 4-byte big-endian sender replica id.
const (
	frameHeaderLen = 4
	// maxFrameLen bounds a single message (64 MiB): far above any real
	// batch, low enough that a corrupt length prefix cannot OOM the node.
	maxFrameLen = 64 << 20
)

// TCPOptions tunes a TCP transport; the zero value is usable.
type TCPOptions struct {
	// Listener overrides listening on the peer table's own address —
	// tests reserve ephemeral ports this way. Closed by Close.
	Listener net.Listener
	// WriteTimeout bounds each frame write (default 5s); a peer that
	// stalls longer gets its connection dropped and redialed.
	WriteTimeout time.Duration
	// DialBackoffMax caps the exponential redial backoff (default 1s).
	DialBackoffMax time.Duration
	// Logf, when set, receives one line per connectivity event (connects,
	// disconnects, redials) — the daemon wires its structured logger here.
	Logf func(format string, args ...any)
	// QueueCap bounds each peer's outbound queue in frames (default 4096).
	// At the cap the oldest frame is dropped and counted (Dropped): a
	// partitioned or wedged peer must not accumulate frames until OOM over
	// a long run, and PBFT tolerates lost messages — retransmission and
	// view changes supersede dropped votes, and a peer that falls behind
	// catches up through state transfer, not replayed backlog.
	QueueCap int
}

// TCP carries replica messages over real sockets: one outbound connection
// per peer (dialed lazily, redialed with exponential backoff), length-
// prefixed frames, write timeouts, and an accept loop feeding decoded
// messages to the local Node's event loop.
//
// Each process hosts one replica, so Register accepts only the local id
// and the traffic counters cover locally delivered messages (the
// per-destination view, matching what simnet counts per node).
type TCP struct {
	id    int
	peers []string
	node  *Node
	opts  TCPOptions

	ln net.Listener

	mu    sync.Mutex
	out   map[int]*peerQueue
	conns map[net.Conn]struct{} // live inbound connections, closed by Close
	close sync.Once

	quit chan struct{}
	wg   sync.WaitGroup

	msgs    atomic.Uint64
	bytes   atomic.Uint64
	dropped atomic.Uint64
}

// peerQueue is the bounded outbound buffer for one peer, drained by a
// dedicated writer goroutine. The sender is the replica event loop:
// blocking it on a slow peer would stall consensus with the fast ones, so
// at the cap the OLDEST frame is dropped (newest protocol state wins) and
// counted in the shared dropped counter. Lossy-but-bounded is the right
// trade for long runs: the channels are fair-lossy, PBFT's timeouts and
// view changes recover from lost votes, and a peer partitioned for hours
// must not grow this queue until OOM.
type peerQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	frames  [][]byte
	head    int // consumed prefix of frames (amortized O(1) pop/drop)
	cap     int
	dropped *atomic.Uint64
	closed  bool
}

func newPeerQueue(cap int, dropped *atomic.Uint64) *peerQueue {
	q := &peerQueue{cap: cap, dropped: dropped}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *peerQueue) push(frame []byte) {
	q.mu.Lock()
	if !q.closed {
		if len(q.frames)-q.head >= q.cap {
			q.frames[q.head] = nil
			q.head++
			q.dropped.Add(1)
		}
		if q.head > 0 && q.head == len(q.frames) {
			q.frames, q.head = q.frames[:0], 0
		}
		q.frames = append(q.frames, frame)
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a frame is available or the queue closes.
func (q *peerQueue) pop() ([]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.frames)-q.head == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.frames)-q.head == 0 {
		return nil, false
	}
	f := q.frames[q.head]
	q.frames[q.head] = nil
	q.head++
	if q.head == len(q.frames) {
		q.frames, q.head = q.frames[:0], 0
	}
	return f, true
}

// depth returns the number of queued frames (tests).
func (q *peerQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.frames) - q.head
}

func (q *peerQueue) shut() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// NewTCP builds the transport for replica id of the cluster described by
// peers (index = replica id, value = host:port). It starts listening on
// peers[id] (or opts.Listener) immediately; outbound connections are
// dialed on first send and redialed with backoff on failure, so peer
// processes may start in any order.
func NewTCP(id int, peers []string, node *Node, opts TCPOptions) (*TCP, error) {
	if id < 0 || id >= len(peers) {
		return nil, fmt.Errorf("transport: id %d outside peer table of %d", id, len(peers))
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 5 * time.Second
	}
	if opts.DialBackoffMax <= 0 {
		opts.DialBackoffMax = time.Second
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 4096
	}
	t := &TCP{
		id:    id,
		peers: peers,
		node:  node,
		opts:  opts,
		out:   make(map[int]*peerQueue),
		conns: make(map[net.Conn]struct{}),
		quit:  make(chan struct{}),
	}
	t.ln = opts.Listener
	if t.ln == nil {
		ln, err := net.Listen("tcp", peers[id])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", peers[id], err)
		}
		t.ln = ln
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's listening address.
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

func (t *TCP) logf(format string, args ...any) {
	if t.opts.Logf != nil {
		t.opts.Logf(format, args...)
	}
}

// Register implements Transport for the one local replica.
func (t *TCP) Register(id int, h simnet.Handler) {
	if id != t.id {
		panic(fmt.Sprintf("transport: Register(%d) on the replica-%d TCP endpoint", id, t.id))
	}
	t.node.setHandler(h)
}

// Send implements Transport. Local delivery short-circuits through an
// encode/decode copy (identical observable behavior to a socket hop);
// remote frames are queued to the peer's writer.
func (t *TCP) Send(from, to, size int, msg any) {
	enc, err := wire.Encode(msg)
	if err != nil {
		panic(fmt.Sprintf("transport: %v", err))
	}
	t.send(from, to, enc)
}

// Broadcast implements Transport: one encode, every peer plus self.
func (t *TCP) Broadcast(from, size int, msg any) {
	enc, err := wire.Encode(msg)
	if err != nil {
		panic(fmt.Sprintf("transport: %v", err))
	}
	for to := range t.peers {
		t.send(from, to, enc)
	}
}

func (t *TCP) send(from, to int, enc []byte) {
	if to == t.id {
		msg, err := wire.Decode(enc)
		if err != nil {
			panic(fmt.Sprintf("transport: decode of own encoding failed: %v", err))
		}
		t.msgs.Add(1)
		t.bytes.Add(uint64(len(enc)))
		t.node.enqueue(from, msg)
		return
	}
	if to < 0 || to >= len(t.peers) {
		return
	}
	frame := make([]byte, frameHeaderLen+len(enc))
	binary.BigEndian.PutUint32(frame, uint32(len(enc)))
	copy(frame[frameHeaderLen:], enc)
	t.queueFor(to).push(frame)
}

// queueFor returns the outbound queue for a peer, spawning its writer on
// first use.
func (t *TCP) queueFor(to int) *peerQueue {
	t.mu.Lock()
	defer t.mu.Unlock()
	q, ok := t.out[to]
	if !ok {
		q = newPeerQueue(t.opts.QueueCap, &t.dropped)
		t.out[to] = q
		t.wg.Add(1)
		go t.writeLoop(to, q)
	}
	return q
}

// writeLoop drains one peer's queue: dial (with exponential backoff and a
// hello frame identifying this replica), then write frames under the
// write timeout; any error drops the connection and redials, retrying the
// failed frame.
func (t *TCP) writeLoop(to int, q *peerQueue) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := 25 * time.Millisecond
	for {
		frame, ok := q.pop()
		if !ok {
			return
		}
		for {
			if conn == nil {
				c, err := net.DialTimeout("tcp", t.peers[to], t.opts.WriteTimeout)
				if err == nil {
					var hello [frameHeaderLen + 4]byte
					binary.BigEndian.PutUint32(hello[:], 4)
					binary.BigEndian.PutUint32(hello[frameHeaderLen:], uint32(t.id))
					c.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
					if _, werr := c.Write(hello[:]); werr != nil {
						err = werr
						c.Close()
					}
					if err == nil {
						conn = c
						backoff = 25 * time.Millisecond
						t.logf("connected to peer %d at %s", to, t.peers[to])
					}
				}
				if conn == nil {
					t.logf("dial peer %d (%s) failed: %v; retrying in %s", to, t.peers[to], err, backoff)
					select {
					case <-t.quit:
						return
					case <-time.After(backoff):
					}
					if backoff *= 2; backoff > t.opts.DialBackoffMax {
						backoff = t.opts.DialBackoffMax
					}
					continue
				}
			}
			conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
			if _, err := conn.Write(frame); err != nil {
				t.logf("write to peer %d failed: %v; reconnecting", to, err)
				conn.Close()
				conn = nil
				select {
				case <-t.quit:
					return
				default:
				}
				continue
			}
			break
		}
	}
}

// acceptLoop admits inbound connections: read the hello frame naming the
// peer, then feed its frames to the node loop until the connection dies.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.quit:
				return
			default:
			}
			t.logf("accept failed: %v", err)
			return
		}
		t.mu.Lock()
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	hello, err := readFrame(conn)
	if err != nil || len(hello) != 4 {
		t.logf("inbound connection rejected: bad hello (%v)", err)
		return
	}
	from := int(binary.BigEndian.Uint32(hello))
	t.logf("peer %d connected from %s", from, conn.RemoteAddr())
	for {
		payload, err := readFrame(conn)
		if err != nil {
			if err != io.EOF {
				t.logf("read from peer %d failed: %v", from, err)
			}
			return
		}
		msg, err := wire.Decode(payload)
		if err != nil {
			t.logf("malformed frame from peer %d dropped: %v", from, err)
			continue
		}
		t.msgs.Add(1)
		t.bytes.Add(uint64(len(payload)))
		t.node.enqueue(from, msg)
	}
}

// readFrame reads one length-prefixed frame, bounding the claimed length.
func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameLen {
		return nil, fmt.Errorf("frame of %d bytes exceeds the %d-byte bound", n, maxFrameLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Messages implements Transport: messages delivered to the local replica.
func (t *TCP) Messages() uint64 { return t.msgs.Load() }

// Bytes implements Transport: encoded bytes delivered to the local replica.
func (t *TCP) Bytes() uint64 { return t.bytes.Load() }

// Dropped returns outbound frames discarded at the per-peer queue cap
// (oldest-first); nonzero means some peer could not keep up and will need
// view changes or state transfer to recover the lost messages.
func (t *TCP) Dropped() uint64 { return t.dropped.Load() }

// Close shuts the transport down: the listener stops, outbound queues
// close after draining nothing further, and all connection goroutines
// exit before Close returns. The node loop is not touched — stop it
// separately so in-flight handler work finishes first.
func (t *TCP) Close() {
	t.close.Do(func() {
		close(t.quit)
		t.ln.Close()
		t.mu.Lock()
		for _, q := range t.out {
			q.shut()
		}
		for c := range t.conns {
			c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
	})
}

var _ Transport = (*TCP)(nil)
