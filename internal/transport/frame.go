package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// frame is one pooled, refcounted wire buffer: the 4-byte big-endian
// length header followed by the wire-encoded payload, encoded in place
// so the frame IS the encode buffer — no second copy between codec and
// socket. A frame is written once by its sender (encodeFrame), then
// read-only: broadcasts share one frame across every peer queue, and
// each holder calls release exactly once, the last returning the buffer
// to the pool. refs is only meaningful once the sender has published
// the frame with retain; until then the sender owns it exclusively.
type frame struct {
	buf  []byte
	refs atomic.Int32
}

var framePool = sync.Pool{New: func() any { return &frame{buf: make([]byte, 0, 512)} }}

// encodeFrame encodes msg into a pooled frame with the length header
// sealed. The caller owns the frame: either publish it with retain +
// queue pushes, or give it back with recycle.
func encodeFrame(msg any) (*frame, error) {
	f := framePool.Get().(*frame)
	buf, err := wire.Append(append(f.buf[:0], 0, 0, 0, 0), msg)
	if err != nil {
		f.buf = buf[:0]
		framePool.Put(f)
		return nil, err
	}
	f.buf = buf
	binary.BigEndian.PutUint32(f.buf, uint32(len(f.buf)-frameHeaderLen))
	return f, nil
}

// payload returns the encoded message without the length header. The
// bytes are only valid until the frame's last release — decode before
// releasing (wire.Decode is borrow-safe, so the decoded message survives
// the frame's recycling).
func (f *frame) payload() []byte { return f.buf[frameHeaderLen:] }

// retain publishes the frame to n holders. Call once, before the first
// push — a receiver released concurrently with a later retain could
// otherwise recycle the frame out from under the remaining pushes.
func (f *frame) retain(n int) { f.refs.Store(int32(n)) }

// release drops one holder's reference; the last one recycles.
func (f *frame) release() {
	if f.refs.Add(-1) == 0 {
		framePool.Put(f)
	}
}

// recycle returns a never-published frame straight to the pool.
func (f *frame) recycle() { framePool.Put(f) }

// frameReader reads length-prefixed frames from a byte stream into one
// reusable buffer, so a long-lived connection allocates only when a
// frame outgrows every previous one. The returned payload is borrowed:
// it is valid only until the next call — callers decode (or copy)
// before reading on, which wire.Decode's ownership contract makes safe.
type frameReader struct {
	r   io.Reader
	buf []byte
}

// next reads one frame, bounding the claimed length. Partial header or
// payload reads surface as errors from io.ReadFull, never as panics or
// truncated payloads (FuzzFrameReader pins this over split reads).
func (fr *frameReader) next() ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameLen {
		return nil, fmt.Errorf("frame of %d bytes exceeds the %d-byte bound", n, maxFrameLen)
	}
	if uint32(cap(fr.buf)) < n {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
