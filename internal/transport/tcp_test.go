package transport

import (
	"net"
	"testing"
	"time"

	"repro/internal/pbft"
	"repro/internal/types"
	"repro/internal/wire"
)

// tcpCluster reserves ephemeral loopback ports for n replicas and builds a
// TCP transport plus collector per replica.
func tcpCluster(t *testing.T, n int) ([]*TCP, []*collector) {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		peers[i] = ln.Addr().String()
	}
	ts := make([]*TCP, n)
	cols := make([]*collector, n)
	epoch := time.Now()
	for i := range ts {
		node := NewNode(i)
		tr, err := NewTCP(i, peers, node, TCPOptions{Listener: listeners[i]})
		if err != nil {
			t.Fatal(err)
		}
		cols[i] = &collector{}
		tr.Register(i, cols[i].handle)
		node.Start(epoch)
		ts[i] = tr
		t.Cleanup(func() { tr.Close(); node.Stop() })
	}
	return ts, cols
}

// TestTCPDelivery pins framing end to end: sends and broadcasts cross real
// loopback sockets, arrive decoded with the sender's identity from the
// hello handshake, and the delivered-traffic counters reflect encoded
// frame payloads.
func TestTCPDelivery(t *testing.T) {
	ts, cols := tcpCluster(t, 3)

	msg := &pbft.Prepare{Instance: 1, View: 2, Seq: 3, Digest: types.BlockID{7}, Replica: 0}
	enc, err := wire.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	ts[0].Send(0, 1, 123456, msg)
	ts[2].Broadcast(2, 123456, &pbft.Commit{Instance: 0, Seq: 1, Replica: 2})

	waitFor(t, func() bool { return len(cols[1].snapshot()) == 2 })
	waitFor(t, func() bool { return len(cols[0].snapshot()) == 1 })
	waitFor(t, func() bool { return len(cols[2].snapshot()) == 1 })

	var prep *pbft.Prepare
	var prepFrom int
	for _, d := range cols[1].snapshot() {
		if p, ok := d.msg.(*pbft.Prepare); ok {
			prep, prepFrom = p, d.from
		}
	}
	if prep == nil || prepFrom != 0 {
		t.Fatalf("replica 1 did not receive the Prepare from 0: %+v", cols[1].snapshot())
	}
	if *prep != *msg {
		t.Fatalf("Prepare mangled in transit: %+v != %+v", prep, msg)
	}
	// Replica 1 delivered the Prepare (len(enc) bytes) and the Commit.
	cenc, err := wire.Encode(&pbft.Commit{Instance: 0, Seq: 1, Replica: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ts[1].Bytes(), uint64(len(enc)+len(cenc)); got != want {
		t.Fatalf("replica 1 Bytes = %d, want %d (actual encoded sizes, not the hint)", got, want)
	}
	if got := ts[1].Messages(); got != 2 {
		t.Fatalf("replica 1 Messages = %d, want 2", got)
	}
}

// TestTCPReconnectBackoff pins the redial path: a send queued while the
// peer is not yet listening is retried with backoff and arrives once the
// peer comes up.
func TestTCPReconnectBackoff(t *testing.T) {
	lateLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lateAddr := lateLn.Addr().String()
	lateLn.Close() // free the port: peer 1 is "down" but its address is known

	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{ln0.Addr().String(), lateAddr}
	node0 := NewNode(0)
	tr0, err := NewTCP(0, peers, node0, TCPOptions{Listener: ln0, DialBackoffMax: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tr0.Register(0, (&collector{}).handle)
	node0.Start(time.Now())
	defer func() { tr0.Close(); node0.Stop() }()

	tr0.Send(0, 1, 0, &pbft.Prepare{Instance: 0, Seq: 1, Replica: 0}) // peer down: queued, dial retries

	time.Sleep(150 * time.Millisecond) // let a few dial attempts fail
	var ln1 net.Listener
	for i := 0; i < 50; i++ { // the freed ephemeral port can be raced away
		ln1, err = net.Listen("tcp", lateAddr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Skipf("could not rebind %s: %v", lateAddr, err)
	}
	node1 := NewNode(1)
	tr1, err := NewTCP(1, peers, node1, TCPOptions{Listener: ln1})
	if err != nil {
		t.Fatal(err)
	}
	col1 := &collector{}
	tr1.Register(1, col1.handle)
	node1.Start(time.Now())
	defer func() { tr1.Close(); node1.Stop() }()

	waitFor(t, func() bool { return len(col1.snapshot()) == 1 })
}

// TestTCPCleanShutdown pins that Close returns with every goroutine
// reaped even with live inbound connections and a queued frame to an
// unreachable peer.
func TestTCPCleanShutdown(t *testing.T) {
	ts, cols := tcpCluster(t, 2)
	ts[0].Send(0, 1, 0, &pbft.Prepare{Instance: 0, Seq: 1, Replica: 0})
	waitFor(t, func() bool { return len(cols[1].snapshot()) == 1 })

	// Queue a frame to a peer that will never accept: a dead address.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	node := NewNode(0)
	tr, err := NewTCP(0, []string{"127.0.0.1:0", deadAddr}, node, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Register(0, (&collector{}).handle)
	node.Start(time.Now())
	tr.Send(0, 1, 0, &pbft.Prepare{})

	doneCh := make(chan struct{})
	go func() { tr.Close(); node.Stop(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return within 10s")
	}
}

// TestTCPRejectsForeignRegister pins the single-replica contract of a TCP
// endpoint.
func TestTCPRejectsForeignRegister(t *testing.T) {
	ts, _ := tcpCluster(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Register with a foreign id did not panic")
		}
	}()
	ts[0].Register(1, func(int, any) {})
}

// TestTCPQueueCapBoundsBlockedPeer pins the outbound bound: a peer that
// refuses every connection must not grow its writer queue past QueueCap —
// the oldest frames are dropped and counted in Dropped().
func TestTCPQueueCapBoundsBlockedPeer(t *testing.T) {
	lnSelf, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnDead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := lnDead.Addr().String()
	lnDead.Close() // refuse connections: the writer loops in dial backoff

	const cap = 8
	node := NewNode(0)
	tr, err := NewTCP(0, []string{lnSelf.Addr().String(), deadAddr}, node, TCPOptions{
		Listener: lnSelf,
		QueueCap: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Register(0, (&collector{}).handle)
	node.Start(time.Now())
	t.Cleanup(func() { tr.Close(); node.Stop() })

	const sends = 100
	for i := 0; i < sends; i++ {
		tr.Send(0, 1, 0, &pbft.Prepare{Instance: 0, View: 1, Seq: uint64(i), Replica: 0})
	}
	if d := tr.queueFor(1).depth(); d > cap {
		t.Fatalf("blocked peer queue depth %d exceeds cap %d", d, cap)
	}
	// The writer goroutine holds at most one popped frame while it redials,
	// so at least sends-cap-1 pushes must each have displaced an oldest one.
	if got := tr.Dropped(); got < sends-cap-1 {
		t.Fatalf("Dropped() = %d, want >= %d", got, sends-cap-1)
	}
}
