package transport

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
	"repro/internal/wire"
)

// Proc is the in-process real transport: one Node event loop per replica
// in a single process, messages carried between them as wire-encoded
// frames under real wall-clock time. Every send encodes through
// internal/wire and every receiver decodes its own copy — exactly what a
// socket transport does — so (a) replicas never share mutable message
// memory across goroutines and (b) Messages/Bytes count actual encoded
// wire sizes, not the simulator's modeled size hints.
//
// Senders outside the replica set (harness clients injecting SubmitMsg)
// may use any `from` id — it only reaches the handler as provenance.
type Proc struct {
	nodes []*Node
	msgs  atomic.Uint64
	bytes atomic.Uint64
}

// NewProc builds the transport and one Node per replica, ids 0..n-1.
func NewProc(n int) *Proc {
	p := &Proc{nodes: make([]*Node, n)}
	for i := range p.nodes {
		p.nodes[i] = NewNode(i)
	}
	return p
}

// Node returns replica id's event loop (to build the replica against its
// Sim and to drive Start/Stop).
func (p *Proc) Node(id int) *Node { return p.nodes[id] }

// Size returns the number of replica endpoints.
func (p *Proc) Size() int { return len(p.nodes) }

// Register implements Transport.
func (p *Proc) Register(id int, h simnet.Handler) { p.nodes[id].setHandler(h) }

// Start launches every node loop against one shared epoch.
func (p *Proc) Start(epoch time.Time) {
	for _, n := range p.nodes {
		n.Start(epoch)
	}
}

// Stop terminates every node loop and waits for them to exit.
func (p *Proc) Stop() {
	for _, n := range p.nodes {
		n.Stop()
	}
}

// Send implements Transport: encode, count, deliver a decoded copy to the
// destination's event loop. The size hint is ignored — the encoded length
// is the truth. Unencodable messages are a programming error (the replica
// message set is closed) and panic rather than vanish.
func (p *Proc) Send(from, to, size int, msg any) {
	enc, err := wire.Encode(msg)
	if err != nil {
		panic(fmt.Sprintf("transport: %v", err))
	}
	p.deliver(from, to, enc)
}

// Broadcast implements Transport: one encode, one decoded copy per
// destination, self included (protocols self-deliver).
func (p *Proc) Broadcast(from, size int, msg any) {
	enc, err := wire.Encode(msg)
	if err != nil {
		panic(fmt.Sprintf("transport: %v", err))
	}
	for to := range p.nodes {
		p.deliver(from, to, enc)
	}
}

func (p *Proc) deliver(from, to int, enc []byte) {
	if to < 0 || to >= len(p.nodes) {
		return
	}
	msg, err := wire.Decode(enc)
	if err != nil {
		panic(fmt.Sprintf("transport: decode of own encoding failed: %v", err))
	}
	p.msgs.Add(1)
	p.bytes.Add(uint64(len(enc)))
	p.nodes[to].enqueue(from, msg)
}

// Inject delivers a harness-client message outside the measured protocol
// traffic: the same encode/decode copy isolation as Send, but the
// Messages/Bytes counters are not touched. The simulation harness
// schedules client submissions directly onto replicas, bypassing the
// network counters, so a real-backend run must leave them out too for
// Result.Messages to stay comparable across backends.
func (p *Proc) Inject(from, to int, msg any) {
	if to < 0 || to >= len(p.nodes) {
		return
	}
	enc, err := wire.Encode(msg)
	if err != nil {
		panic(fmt.Sprintf("transport: %v", err))
	}
	dec, err := wire.Decode(enc)
	if err != nil {
		panic(fmt.Sprintf("transport: decode of own encoding failed: %v", err))
	}
	p.nodes[to].enqueue(from, dec)
}

// Messages implements Transport: messages delivered, all destinations.
func (p *Proc) Messages() uint64 { return p.msgs.Load() }

// Bytes implements Transport: encoded wire bytes delivered.
func (p *Proc) Bytes() uint64 { return p.bytes.Load() }

var _ Transport = (*Proc)(nil)
