package transport

import (
	"sync/atomic"
	"time"

	"repro/internal/simnet"
)

// Proc is the in-process real transport: one Node event loop per replica
// in a single process, messages carried between them as wire-encoded
// frames under real wall-clock time. Every send encodes through
// internal/wire exactly once — a broadcast shares one immutable pooled
// frame across all destinations — and every receiver decodes its own
// copy on its loop goroutine, exactly the isolation a socket transport
// gives: (a) replicas never share mutable message memory across
// goroutines and (b) Messages/Bytes count actual encoded wire sizes,
// not the simulator's modeled size hints.
//
// Senders outside the replica set (harness clients injecting SubmitMsg)
// may use any `from` id — it only reaches the handler as provenance.
type Proc struct {
	nodes      []*Node
	msgs       atomic.Uint64
	bytes      atomic.Uint64
	encodeErrs atomic.Uint64
	decodeErrs atomic.Uint64
}

// NewProc builds the transport and one Node per replica, ids 0..n-1.
func NewProc(n int) *Proc {
	p := &Proc{nodes: make([]*Node, n)}
	for i := range p.nodes {
		p.nodes[i] = NewNode(i)
		p.nodes[i].onWireErr = func(error) { p.decodeErrs.Add(1) }
	}
	return p
}

// Node returns replica id's event loop (to build the replica against its
// Sim and to drive Start/Stop).
func (p *Proc) Node(id int) *Node { return p.nodes[id] }

// Size returns the number of replica endpoints.
func (p *Proc) Size() int { return len(p.nodes) }

// Register implements Transport.
func (p *Proc) Register(id int, h simnet.Handler) { p.nodes[id].setHandler(h) }

// Start launches every node loop against one shared epoch.
func (p *Proc) Start(epoch time.Time) {
	for _, n := range p.nodes {
		n.Start(epoch)
	}
}

// Stop terminates every node loop and waits for them to exit.
func (p *Proc) Stop() {
	for _, n := range p.nodes {
		n.Stop()
	}
}

// Send implements Transport: encode once into a pooled frame, count, and
// hand the frame to the destination's event loop, which decodes on
// dispatch. The size hint is ignored — the encoded length is the truth.
// Unencodable messages are counted in EncodeErrors and dropped (the
// replica message set is closed, so a nonzero counter is a bug signal).
func (p *Proc) Send(from, to, size int, msg any) {
	if to < 0 || to >= len(p.nodes) {
		return
	}
	f, err := encodeFrame(msg)
	if err != nil {
		p.encodeErrs.Add(1)
		return
	}
	p.msgs.Add(1)
	p.bytes.Add(uint64(len(f.payload())))
	f.retain(1)
	p.nodes[to].enqueueFrame(from, f)
}

// Broadcast implements Transport: one encode, one shared immutable frame
// across every destination, self included (protocols self-deliver). Each
// receiver decodes its own copy from the shared bytes, so destinations
// still never alias each other's message memory.
func (p *Proc) Broadcast(from, size int, msg any) {
	f, err := encodeFrame(msg)
	if err != nil {
		p.encodeErrs.Add(1)
		return
	}
	n := uint64(len(p.nodes))
	p.msgs.Add(n)
	p.bytes.Add(n * uint64(len(f.payload())))
	f.retain(len(p.nodes))
	for to := range p.nodes {
		p.nodes[to].enqueueFrame(from, f)
	}
}

// Inject delivers a harness-client message outside the measured protocol
// traffic: the same encode/decode copy isolation as Send, but the
// Messages/Bytes counters are not touched. The simulation harness
// schedules client submissions directly onto replicas, bypassing the
// network counters, so a real-backend run must leave them out too for
// Result.Messages to stay comparable across backends.
func (p *Proc) Inject(from, to int, msg any) {
	p.InjectTo(from, []int{to}, msg)
}

// InjectTo is Inject fanned out to several destinations from a single
// encode: the harness client submitting one transaction to every replica
// shares one frame instead of encoding per target. Out-of-range targets
// are skipped.
func (p *Proc) InjectTo(from int, targets []int, msg any) {
	valid := 0
	for _, to := range targets {
		if to >= 0 && to < len(p.nodes) {
			valid++
		}
	}
	if valid == 0 {
		return
	}
	f, err := encodeFrame(msg)
	if err != nil {
		p.encodeErrs.Add(1)
		return
	}
	f.retain(valid)
	for _, to := range targets {
		if to >= 0 && to < len(p.nodes) {
			p.nodes[to].enqueueFrame(from, f)
		}
	}
}

// Messages implements Transport: messages delivered, all destinations.
func (p *Proc) Messages() uint64 { return p.msgs.Load() }

// Bytes implements Transport: encoded wire bytes delivered.
func (p *Proc) Bytes() uint64 { return p.bytes.Load() }

// EncodeErrors counts messages dropped because wire encoding failed.
// Always zero in a correct build: the replica message set is closed.
func (p *Proc) EncodeErrors() uint64 { return p.encodeErrs.Load() }

// DecodeErrors counts frames dropped because decoding failed on the
// receiver's loop. Always zero in a correct build — Proc only ever
// decodes its own encodings, so a nonzero counter means corruption.
func (p *Proc) DecodeErrors() uint64 { return p.decodeErrs.Load() }

var _ Transport = (*Proc)(nil)
