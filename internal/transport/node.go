package transport

import (
	"sync"
	"time"

	"repro/internal/simnet"
	"repro/internal/wire"
)

// inMsg is one delivered message waiting for a node's event loop: either
// an already-decoded msg (TCP's read loop decodes as it drains sockets)
// or a still-encoded frame (Proc enqueues the sender's shared frame and
// each receiver decodes its own copy on its loop goroutine, preserving
// the no-shared-mutable-memory property without an encode per receiver).
type inMsg struct {
	from int
	msg  any
	fr   *frame
}

// Node is one replica's wall-clock event loop: a private simnet.Sim used
// as a timer queue (the unchanged core/pbft state machines schedule
// against simnet.NodeSim), an inbox real transports enqueue decoded
// messages into, and a goroutine that alternates between running due
// timers and dispatching inbox messages. All replica code executes on
// that goroutine.
//
// Lifecycle: NewNode, build the replica against Sim(), Register a handler
// through the owning transport, then Start. Stop waits for the loop to
// exit, after which no replica code runs.
type Node struct {
	id  int
	sim *simnet.Sim

	mu      sync.Mutex
	inbox   []inMsg
	standby []inMsg // swap buffer: drain without holding the lock
	handler simnet.Handler

	// onWireErr observes frame-decode failures on the loop goroutine
	// (set by the owning transport before Start; nil drops silently).
	onWireErr func(error)

	wake chan struct{}
	quit chan struct{}
	done chan struct{}

	epoch time.Time
}

// NewNode builds a node loop for replica id. The seed only affects the
// private simulator's jitter RNG, which real transports never consult.
func NewNode(id int) *Node {
	return &Node{
		id:   id,
		sim:  simnet.New(int64(id) + 1),
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// ID returns the replica id this node loop serves.
func (n *Node) ID() int { return n.id }

// Sim returns the node-pinned scheduling view replica constructors expect.
// Before Start, the underlying clock reads zero; after Start it tracks
// wall-clock time elapsed since the epoch passed to Start.
func (n *Node) Sim() simnet.NodeSim { return simnet.On(n.sim, n.id) }

// setHandler installs the replica's message handler (called by the owning
// transport's Register).
func (n *Node) setHandler(h simnet.Handler) {
	n.mu.Lock()
	n.handler = h
	n.mu.Unlock()
}

// enqueue hands a decoded inbound message to the node's event loop. Safe
// from any goroutine; messages from one sender are dispatched in enqueue
// order.
func (n *Node) enqueue(from int, msg any) {
	n.push(inMsg{from: from, msg: msg})
}

// enqueueFrame hands a still-encoded frame to the node's event loop,
// which decodes it just before dispatch and releases the sender's
// reference. The caller must have retained the frame for this receiver.
func (n *Node) enqueueFrame(from int, f *frame) {
	n.push(inMsg{from: from, fr: f})
}

func (n *Node) push(m inMsg) {
	n.mu.Lock()
	n.inbox = append(n.inbox, m)
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// Start launches the event loop. The epoch anchors virtual time zero: all
// nodes of one cluster share it so their clocks agree, which keeps
// wall-clock timer deadlines (BatchTimeout pulses, view-change timeouts)
// aligned the way the shared simulator aligns them in simulation.
func (n *Node) Start(epoch time.Time) {
	n.epoch = epoch
	go n.loop()
}

// Stop terminates the event loop and waits for it to exit. Idempotent
// after the first call returns; enqueues after Stop are dropped silently.
func (n *Node) Stop() {
	select {
	case <-n.quit:
	default:
		close(n.quit)
	}
	<-n.done
}

// idleWait bounds the sleep when no timer is queued: a replica always has
// a pulse timer pending, so this only covers startup and shutdown races.
const idleWait = 10 * time.Millisecond

// loop is the node's scheduler: advance the private simulator to the wall
// clock (running every due timer), dispatch buffered inbound messages,
// then sleep until the next timer deadline or an inbox signal.
func (n *Node) loop() {
	defer close(n.done)
	timer := time.NewTimer(idleWait)
	defer timer.Stop()
	for {
		now := simnet.Time(time.Since(n.epoch))
		n.sim.Run(now)

		n.mu.Lock()
		pending := n.inbox
		n.inbox = n.standby[:0]
		handler := n.handler
		n.mu.Unlock()
		for i := range pending {
			m := pending[i]
			pending[i] = inMsg{} // drop the frame pointer once dispatched
			msg := m.msg
			if m.fr != nil {
				dec, err := wire.Decode(m.fr.payload())
				m.fr.release()
				if err != nil {
					if n.onWireErr != nil {
						n.onWireErr(err)
					}
					continue
				}
				msg = dec
			}
			if handler != nil {
				handler(m.from, msg)
			}
		}
		n.standby = pending[:0]

		wait := idleWait
		if next, ok := n.sim.NextAt(); ok {
			wait = time.Duration(next - simnet.Time(time.Since(n.epoch)))
			if wait < 0 {
				wait = 0
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-n.quit:
			return
		case <-n.wake:
		case <-timer.C:
		}
	}
}
