// Package runner executes independent cluster configurations across all
// cores. Every cluster.Run owns its own deterministic simulation (seeded
// RNGs, no shared mutable state), so fanning a job list over a worker pool
// and reassembling the results in job order produces output byte-identical
// to a serial sweep — the property the determinism regression tests pin
// down. The experiment figures (internal/experiments) and the benchmark
// harness both run through this pool.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
)

// Job is one experiment to execute: a stable key (for artifacts, progress
// reporting and debugging) plus the full cluster configuration.
type Job struct {
	Key    string
	Config cluster.Config
}

// NewJob builds a job keyed by the configuration's label.
func NewJob(cfg cluster.Config) Job {
	return Job{Key: cfg.Label(), Config: cfg}
}

// Options tunes how a job list executes.
type Options struct {
	// Workers is the pool size: 0 (or negative) uses GOMAXPROCS, 1 runs
	// serially on the calling goroutine.
	Workers int
	// Run overrides the per-job executor (default cluster.Run); tests use
	// it to exercise pool behavior without full simulations.
	Run func(cluster.Config) *cluster.Result
	// OnDone, if set, is called after each job finishes with its index and
	// result. Calls may arrive from multiple goroutines and out of job
	// order; the callback must be safe for concurrent use.
	OnDone func(i int, job Job, res *cluster.Result)
}

func (o Options) workers(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) run() func(cluster.Config) *cluster.Result {
	if o.Run != nil {
		return o.Run
	}
	return cluster.Run
}

// Run executes every job and returns the results indexed exactly like the
// job slice, regardless of completion order. With Workers == 1 the jobs
// run serially in order; otherwise a fixed pool of workers claims jobs by
// atomically incrementing a shared cursor.
func Run(jobs []Job, o Options) []*cluster.Result {
	out := make([]*cluster.Result, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	exec := o.run()
	workers := o.workers(len(jobs))
	if workers == 1 {
		for i, j := range jobs {
			out[i] = exec(j.Config)
			if o.OnDone != nil {
				o.OnDone(i, j, out[i])
			}
		}
		return out
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				out[i] = exec(jobs[i].Config)
				if o.OnDone != nil {
					o.OnDone(i, jobs[i], out[i])
				}
			}
		}()
	}
	wg.Wait()
	return out
}
