package runner

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

// stub returns a Run function that records which goroutine-visible order
// jobs complete in while tagging each result with its job's N, so tests
// can verify results land at their job's index no matter what the pool
// does.
func stub(calls *atomic.Int64) func(cluster.Config) *cluster.Result {
	return func(cfg cluster.Config) *cluster.Result {
		calls.Add(1)
		// Busy the fast jobs less than the slow ones so completion order
		// scrambles relative to submission order.
		if cfg.N%2 == 0 {
			time.Sleep(time.Duration(cfg.N) * 100 * time.Microsecond)
		}
		return &cluster.Result{N: cfg.N, Protocol: fmt.Sprintf("job-%d", cfg.N)}
	}
}

func makeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Key: fmt.Sprintf("j%d", i), Config: cluster.Config{N: i}}
	}
	return jobs
}

func TestRunOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		var calls atomic.Int64
		jobs := makeJobs(37)
		out := Run(jobs, Options{Workers: workers, Run: stub(&calls)})
		if got := int(calls.Load()); got != len(jobs) {
			t.Fatalf("workers=%d: %d calls for %d jobs", workers, got, len(jobs))
		}
		if len(out) != len(jobs) {
			t.Fatalf("workers=%d: %d results for %d jobs", workers, len(out), len(jobs))
		}
		for i, res := range out {
			if res == nil || res.N != i {
				t.Fatalf("workers=%d: result %d is %+v, want N=%d", workers, i, res, i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if out := Run(nil, Options{}); len(out) != 0 {
		t.Fatalf("expected no results, got %d", len(out))
	}
}

func TestRunOnDone(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]string{}
	var calls atomic.Int64
	jobs := makeJobs(16)
	Run(jobs, Options{Workers: 4, Run: stub(&calls), OnDone: func(i int, job Job, res *cluster.Result) {
		mu.Lock()
		defer mu.Unlock()
		seen[i] = job.Key
	}})
	if len(seen) != len(jobs) {
		t.Fatalf("OnDone fired %d times, want %d", len(seen), len(jobs))
	}
	for i, j := range jobs {
		if seen[i] != j.Key {
			t.Fatalf("OnDone index %d saw key %q, want %q", i, seen[i], j.Key)
		}
	}
}

func TestNewJobKey(t *testing.T) {
	j := NewJob(cluster.Config{N: 8, Protocol: core.OrthrusMode(), Net: cluster.WAN, Stragglers: 1})
	if j.Key == "" {
		t.Fatal("empty job key")
	}
	if j.Key != j.Config.Label() {
		t.Fatalf("key %q != label %q", j.Key, j.Config.Label())
	}
}

// TestRunRealClusterDeterminism runs a tiny real configuration through the
// pool serially and in parallel and checks the measured numbers agree —
// the cheap end of the determinism spectrum (the figure-level version
// lives in internal/experiments).
func TestRunRealClusterDeterminism(t *testing.T) {
	mk := func(seed int64) cluster.Config {
		return cluster.Config{
			N:         4,
			Protocol:  core.OrthrusMode(),
			Net:       cluster.LAN,
			Workload:  workload.Config{Accounts: 500, Seed: seed},
			LoadTPS:   400,
			Duration:  2 * time.Second,
			Warmup:    500 * time.Millisecond,
			Drain:     4 * time.Second,
			BatchSize: 64,
			NIC:       true,
			Seed:      seed,
		}
	}
	jobs := []Job{NewJob(mk(1)), NewJob(mk(2)), NewJob(mk(3)), NewJob(mk(4))}
	serial := Run(jobs, Options{Workers: 1})
	parallel := Run(jobs, Options{Workers: len(jobs)})
	for i := range jobs {
		s, p := serial[i], parallel[i]
		if s.Confirmed != p.Confirmed || s.ThroughputTPS != p.ThroughputTPS ||
			s.Latency.Mean() != p.Latency.Mean() || s.Events != p.Events {
			t.Fatalf("job %d diverged: serial %v parallel %v", i, s, p)
		}
	}
}
