package pbft

import (
	"testing"
)

// TestSkipDeliveredRepairsGapAndResumesLive is the state-transfer engine
// contract: a replica that missed deliveries while crashed replays them
// through SkipDelivered after Resume, its log converges with the live
// replicas', and subsequent live deliveries flow through the normal path.
func TestSkipDeliveredRepairsGapAndResumesLive(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	h.engines[3].Stop()
	for sn := uint64(0); sn < 3; sn++ {
		if err := h.engines[0].Propose(mkBlock(sn, 1)); err != nil {
			t.Fatalf("propose %d: %v", sn, err)
		}
	}
	h.sim.RunAll(0)
	if len(h.delivered[3]) != 0 {
		t.Fatalf("stopped engine delivered %d blocks", len(h.delivered[3]))
	}
	if len(h.delivered[0]) != 3 {
		t.Fatalf("live engine delivered %d blocks, want 3", len(h.delivered[0]))
	}

	// Catch-up: replay the gap in order. Each skip must fire OnDeliver (the
	// replica's execution path rides on it) and advance the cursor.
	h.engines[3].Resume()
	if h.engines[3].SkipDelivered(h.delivered[0][1]) {
		t.Fatal("off-cursor skip accepted")
	}
	if h.engines[3].SkipDelivered(nil) {
		t.Fatal("nil skip accepted")
	}
	for _, b := range h.delivered[0] {
		if !h.engines[3].SkipDelivered(b) {
			t.Fatalf("skip of SN %d rejected at the cursor", b.SN)
		}
	}
	if h.engines[3].SkipDelivered(h.delivered[0][0]) {
		t.Fatal("re-skip below the cursor accepted (pre-checkpoint replay)")
	}
	if len(h.delivered[3]) != 3 {
		t.Fatalf("catch-up delivered %d blocks, want 3", len(h.delivered[3]))
	}
	for i, b := range h.delivered[3] {
		if b.Digest() != h.delivered[0][i].Digest() {
			t.Fatalf("catch-up block %d diverges from the live log", i)
		}
	}

	// The repaired engine is live again: the next proposal delivers through
	// the normal commit path on all four replicas.
	if err := h.engines[0].Propose(mkBlock(3, 1)); err != nil {
		t.Fatal(err)
	}
	h.sim.RunAll(0)
	for i, d := range h.delivered {
		if len(d) != 4 || d[3].SN != 3 {
			t.Fatalf("replica %d log length %d after recovery, want 4", i, len(d))
		}
	}
}

// TestSkipDeliveredFlushesCommittedAbove: blocks that committed while the
// gap was open (the engine voted before crashing, or certificates arrived
// after Resume) must deliver through tryDeliver as soon as a skip fills the
// sequence right below them.
func TestSkipDeliveredFlushesCommittedAbove(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	// Deliver SN 0 everywhere, then cut replica 3 off and run SN 1-2.
	if err := h.engines[0].Propose(mkBlock(0, 1)); err != nil {
		t.Fatal(err)
	}
	h.sim.RunAll(0)
	h.engines[3].Stop()
	for sn := uint64(1); sn < 3; sn++ {
		if err := h.engines[0].Propose(mkBlock(sn, 1)); err != nil {
			t.Fatal(err)
		}
	}
	h.sim.RunAll(0)
	// Resume and let the next live sequence (SN 3) commit at replica 3; it
	// parks above the gap (SN 1-2 missing), then a catch-up skip of the gap
	// flushes it.
	h.engines[3].Resume()
	if err := h.engines[0].Propose(mkBlock(3, 1)); err != nil {
		t.Fatal(err)
	}
	h.sim.RunAll(0)
	if n := len(h.delivered[3]); n != 1 {
		t.Fatalf("replica 3 delivered %d blocks with the gap open, want 1", n)
	}
	for sn := uint64(1); sn < 3; sn++ {
		if !h.engines[3].SkipDelivered(h.delivered[0][sn]) {
			t.Fatalf("skip of SN %d rejected", sn)
		}
	}
	if n := len(h.delivered[3]); n != 4 {
		t.Fatalf("replica 3 delivered %d blocks after gap repair, want 4 (committed SN 3 must flush)", n)
	}
	for i, b := range h.delivered[3] {
		if b.SN != uint64(i) {
			t.Fatalf("position %d holds SN %d; delivery order broken", i, b.SN)
		}
	}
}

// TestReleaseBelowDropsRetainedRing: checkpoint GC trims the NewView
// retention ring below the stable floor, and the count reported to the
// live-set census tracks it.
func TestReleaseBelowDropsRetainedRing(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	for sn := uint64(0); sn < 5; sn++ { // one at a time: the window is 4 deep
		if err := h.engines[0].Propose(mkBlock(sn, 1)); err != nil {
			t.Fatal(err)
		}
		h.sim.RunAll(0)
	}
	e := h.engines[1]
	if got := e.Retained(); got != 5 {
		t.Fatalf("Retained() = %d after 5 deliveries, want 5", got)
	}
	e.ReleaseBelow(3)
	if got := e.Retained(); got != 2 {
		t.Fatalf("Retained() = %d after ReleaseBelow(3), want 2", got)
	}
	e.ReleaseBelow(3) // idempotent
	if got := e.Retained(); got != 2 {
		t.Fatalf("repeat ReleaseBelow changed the ring: %d", got)
	}
	e.ReleaseBelow(100)
	if got := e.Retained(); got != 0 {
		t.Fatalf("Retained() = %d after releasing everything, want 0", got)
	}
}
