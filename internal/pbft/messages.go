// Package pbft implements the Practical Byzantine Fault Tolerance protocol
// (Castro & Liskov, OSDI'99) as a deterministic event-driven state machine,
// one engine per sequenced-broadcast (SB) instance. It provides the
// three-phase normal case (pre-prepare / prepare / commit), in-order
// delivery, and a view-change / new-view protocol that replaces a faulty
// leader and re-proposes prepared blocks (filling gaps with no-op blocks,
// as ISS does).
//
// The paper treats SB as a black box implemented with PBFT (Sec. VII); this
// package is that box. Point-to-point channels are authenticated (the
// system-model assumption), so prepare/commit votes carry replica IDs
// without per-message signatures; block proposals are signed by leaders.
package pbft

import (
	"repro/internal/types"
)

// Message is the union of PBFT protocol messages. Every message carries the
// SB instance it belongs to, so a cluster replica can route messages of m
// concurrent instances through one network handler.
type Message interface {
	PBFTInstance() int
}

// PrePrepare is the leader's proposal for (view, seq).
type PrePrepare struct {
	Instance int
	View     uint64
	Seq      uint64
	Block    *types.Block
}

// PBFTInstance implements Message.
func (m *PrePrepare) PBFTInstance() int { return m.Instance }

// Prepare is a backup's echo of the proposal digest for (view, seq).
type Prepare struct {
	Instance int
	View     uint64
	Seq      uint64
	Digest   types.BlockID
	Replica  int
}

// PBFTInstance implements Message.
func (m *Prepare) PBFTInstance() int { return m.Instance }

// Commit is a replica's vote that (view, seq, digest) is prepared.
type Commit struct {
	Instance int
	View     uint64
	Seq      uint64
	Digest   types.BlockID
	Replica  int
}

// PBFTInstance implements Message.
func (m *Commit) PBFTInstance() int { return m.Instance }

// PreparedEntry is a prepared certificate carried in a view change: the
// highest view in which seq prepared at the sender, with the block itself
// (we ship blocks rather than digests to avoid a fetch sub-protocol).
type PreparedEntry struct {
	Seq   uint64
	View  uint64
	Block *types.Block
}

// ViewChange announces that the sender moves to NewView and reports its
// delivered prefix and prepared-but-undelivered blocks.
type ViewChange struct {
	Instance  int
	NewView   uint64
	Replica   int
	Delivered uint64 // number of blocks the sender has delivered
	Prepared  []PreparedEntry
}

// PBFTInstance implements Message.
func (m *ViewChange) PBFTInstance() int { return m.Instance }

// NewView is the new leader's installation message: re-proposals for every
// sequence number that must be decided in the new view.
type NewView struct {
	Instance    int
	View        uint64
	Reproposals []*PrePrepare
}

// PBFTInstance implements Message.
func (m *NewView) PBFTInstance() int { return m.Instance }

// Approximate wire sizes in bytes, used by the bandwidth model. Control
// messages are small and constant; proposals scale with the batch.
const (
	ctrlMsgSize   = 96
	blockOverhead = 160
)

// SizeOf estimates the serialized size of a message given the per-tx
// payload size (the paper uses 500-byte transactions).
func SizeOf(m Message, txSize int) int {
	switch v := m.(type) {
	case *PrePrepare:
		return blockOverhead + len(v.Block.Txs)*txSize
	case *ViewChange:
		sz := ctrlMsgSize
		for _, p := range v.Prepared {
			sz += blockOverhead + len(p.Block.Txs)*txSize
		}
		return sz
	case *NewView:
		sz := ctrlMsgSize
		for _, p := range v.Reproposals {
			sz += blockOverhead + len(p.Block.Txs)*txSize
		}
		return sz
	default:
		return ctrlMsgSize
	}
}
