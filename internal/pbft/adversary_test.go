package pbft

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/types"
)

// vcVoteCount returns the total pending view-change votes across all views.
func vcVoteCount(e *Engine) int {
	total := 0
	for _, votes := range e.vcVotes {
		total += len(votes)
	}
	return total
}

// TestVcVotesBoundedUnderViewSpam pins the memory bound on the view-change
// vote store: a faulty replica voting for ever-higher far-future views must
// occupy one entry, not one per view (the old cleanup only removed views at
// or below the installed one, which far-future spam never reaches).
func TestVcVotesBoundedUnderViewSpam(t *testing.T) {
	sim := simnet.New(1)
	e := New(Config{N: 4, F: 1, ID: 1, Instance: 0}, &recordingTransport{}, simnet.On(sim, 1))
	for v := uint64(2); v < 2000; v += 2 {
		e.Handle(3, &ViewChange{Instance: 0, NewView: v, Replica: 3})
	}
	if got := vcVoteCount(e); got != 1 {
		t.Fatalf("spamming replica holds %d pending votes, want 1", got)
	}
	if len(e.vcVotes) != 1 {
		t.Fatalf("vcVotes tracks %d views, want 1", len(e.vcVotes))
	}
	// Several spammers: still at most one entry per replica.
	for v := uint64(3); v < 1000; v += 2 {
		e.Handle(0, &ViewChange{Instance: 0, NewView: v, Replica: 0})
		e.Handle(2, &ViewChange{Instance: 0, NewView: v + 1000, Replica: 2})
	}
	if got := vcVoteCount(e); got > e.cfg.N {
		t.Fatalf("%d pending votes exceed the %d-replica bound", got, e.cfg.N)
	}
	// Out-of-range replica indices in forged votes are dropped, not indexed.
	e.Handle(3, &ViewChange{Instance: 0, NewView: 5000, Replica: 99})
	e.Handle(3, &ViewChange{Instance: 0, NewView: 5000, Replica: -1})
	if got := vcVoteCount(e); got > e.cfg.N {
		t.Fatalf("forged replica index grew the vote store to %d", got)
	}
}

// TestVcVoteReplacementKeepsHighest: a replica's newer vote evicts its older
// pending one, and a lower or repeated vote is ignored.
func TestVcVoteReplacementKeepsHighest(t *testing.T) {
	sim := simnet.New(1)
	e := New(Config{N: 4, F: 1, ID: 1, Instance: 0}, &recordingTransport{}, simnet.On(sim, 1))
	e.Handle(3, &ViewChange{Instance: 0, NewView: 4, Replica: 3})
	e.Handle(3, &ViewChange{Instance: 0, NewView: 8, Replica: 3})
	if _, ok := e.vcVotes[4]; ok {
		t.Fatal("older vote not evicted by the newer one")
	}
	if _, ok := e.vcVotes[8][3]; !ok {
		t.Fatal("newer vote not recorded")
	}
	e.Handle(3, &ViewChange{Instance: 0, NewView: 6, Replica: 3}) // lower: ignored
	e.Handle(3, &ViewChange{Instance: 0, NewView: 8, Replica: 3}) // repeat: ignored
	if got := vcVoteCount(e); got != 1 {
		t.Fatalf("%d pending votes after replacement, want 1", got)
	}
}

// driveDeliver pushes full three-phase traffic for the given sequence
// numbers through a recordingTransport engine with ID 1 (votes come from
// replicas 0, 2 and 3 — a quorum of 3 at n=4 — since the engine's own
// broadcast votes are captured, not delivered back). Returns the delivered
// blocks in order.
func driveDeliver(t *testing.T, e *Engine, leader int, seqs ...uint64) []*types.Block {
	t.Helper()
	var out []*types.Block
	for _, sn := range seqs {
		b := mkBlock(sn, 2)
		d := b.Digest()
		e.Handle(leader, &PrePrepare{Instance: 0, View: e.view, Seq: sn, Block: b})
		for _, r := range []int{0, 2, 3} {
			e.Handle(r, &Prepare{Instance: 0, View: e.view, Seq: sn, Digest: d, Replica: r})
		}
		for _, r := range []int{0, 2, 3} {
			e.Handle(r, &Commit{Instance: 0, View: e.view, Seq: sn, Digest: d, Replica: r})
		}
		out = append(out, b)
	}
	return out
}

// TestNewViewRetainedBlocksCoverLaggards is the regression for the diverged
// delivered-prefix hole: certificates are discarded at delivery, so when
// honest replicas' delivered prefixes diverge at view-change time the vote
// set can lack a certificate for a sequence number some of them already
// executed. The old assembly filled such gaps with no-ops — a conflicting
// commit waiting to happen. The new leader must instead re-propose the
// block it retained from its own delivery.
func TestNewViewRetainedBlocksCoverLaggards(t *testing.T) {
	sim := simnet.New(1)
	tr := &recordingTransport{}
	var delivered []*types.Block
	e := New(Config{N: 4, F: 1, ID: 1, Instance: 0,
		OnDeliver: func(b *types.Block) { delivered = append(delivered, b) }}, tr, simnet.On(sim, 1))

	// The future leader of view 1 delivers seqs 0..2 in view 0.
	proposed := driveDeliver(t, e, 0, 0, 1, 2)
	if len(delivered) != 3 {
		t.Fatalf("setup delivered %d blocks, want 3", len(delivered))
	}

	// View change to view 1 (led by this engine) with diverged prefixes:
	// replica 0 delivered 3, replicas 2 and 3 only 1, and nobody holds a
	// certificate for seqs 1 or 2.
	e.Handle(0, &ViewChange{Instance: 0, NewView: 1, Replica: 0, Delivered: 3})
	e.Handle(2, &ViewChange{Instance: 0, NewView: 1, Replica: 2, Delivered: 1})
	e.Handle(3, &ViewChange{Instance: 0, NewView: 1, Replica: 3, Delivered: 1})

	var nv *NewView
	for _, m := range tr.msgs {
		if v, ok := m.(*NewView); ok {
			nv = v
		}
	}
	if nv == nil {
		t.Fatal("leader with a quorum of votes sent no NewView")
	}
	if len(nv.Reproposals) != 2 {
		t.Fatalf("NewView carries %d reproposals, want 2 (seqs 1 and 2): %v", len(nv.Reproposals), nv.Reproposals)
	}
	for i, pp := range nv.Reproposals {
		wantSeq := uint64(1 + i)
		if pp.Seq != wantSeq {
			t.Fatalf("reproposal %d covers seq %d, want %d", i, pp.Seq, wantSeq)
		}
		if pp.Block.Digest() != proposed[wantSeq].Digest() {
			t.Fatalf("seq %d re-proposed as a different block (noop fill?) — laggards would commit a conflict", wantSeq)
		}
	}
}

// TestNewViewSkipsUnprovableSeqs: when neither a certificate nor the new
// leader's own retention proves what was decided at a sequence number that
// some replica in the vote set already delivered, the assembly must skip it
// — leaving the laggard's gap — rather than guess a no-op. Sequence numbers
// at or above every vote's delivered prefix are still safely noop-filled.
func TestNewViewSkipsUnprovableSeqs(t *testing.T) {
	sim := simnet.New(1)
	tr := &recordingTransport{}
	e := New(Config{N: 4, F: 1, ID: 1, Instance: 0}, tr, simnet.On(sim, 1))

	// This leader delivered nothing; replica 0 claims a delivered prefix of
	// 2 and replica 3 holds a prepared certificate at seq 3.
	cert := mkBlock(3, 2)
	e.Handle(0, &ViewChange{Instance: 0, NewView: 1, Replica: 0, Delivered: 2})
	e.Handle(2, &ViewChange{Instance: 0, NewView: 1, Replica: 2, Delivered: 0})
	e.Handle(3, &ViewChange{Instance: 0, NewView: 1, Replica: 3, Delivered: 0,
		Prepared: []PreparedEntry{{Seq: 3, View: 0, Block: cert}}})

	var nv *NewView
	for _, m := range tr.msgs {
		if v, ok := m.(*NewView); ok {
			nv = v
		}
	}
	if nv == nil {
		t.Fatal("leader with a quorum of votes sent no NewView")
	}
	// Seqs 0 and 1 are below replica 0's delivered prefix with no proof of
	// what was decided: skipped. Seq 2 is above every delivered prefix:
	// noop-filled. Seq 3 carries the certificate.
	if len(nv.Reproposals) != 2 {
		t.Fatalf("NewView carries %d reproposals, want 2: %v", len(nv.Reproposals), nv.Reproposals)
	}
	if nv.Reproposals[0].Seq != 2 || len(nv.Reproposals[0].Block.Txs) != 0 {
		t.Fatalf("seq 2 not noop-filled: %v", nv.Reproposals[0])
	}
	if nv.Reproposals[1].Seq != 3 || nv.Reproposals[1].Block.Digest() != cert.Digest() {
		t.Fatalf("seq 3 did not carry the prepared certificate: %v", nv.Reproposals[1])
	}
}

// TestNewViewReplayBelowNextDeliverDropped pins the replay-path audit from
// the other side: a further-ahead replica receiving a NewView whose
// reproposals start below its own delivered prefix must silently drop the
// stale ones (onPrePrepare's seq < nextDeliver guard) — no freed-slot
// resurrection, no double delivery — while still processing the fresh tail.
func TestNewViewReplayBelowNextDeliverDropped(t *testing.T) {
	sim := simnet.New(1)
	var delivered []*types.Block
	e := New(Config{N: 4, F: 1, ID: 1, Instance: 0,
		OnDeliver: func(b *types.Block) { delivered = append(delivered, b) }}, &recordingTransport{}, simnet.On(sim, 1))
	driveDeliver(t, e, 0, 0, 1, 2)

	nv := &NewView{Instance: 0, View: 1}
	for seq := uint64(1); seq <= 3; seq++ {
		nv.Reproposals = append(nv.Reproposals, &PrePrepare{
			Instance: 0, View: 1, Seq: seq, Block: mkBlock(seq, 1),
		})
	}
	e.Handle(1, nv) // view 1's leader is replica 1
	if e.View() != 1 {
		t.Fatalf("view = %d, want 1", e.View())
	}
	if len(delivered) != 3 {
		t.Fatalf("stale reproposals re-delivered: %d blocks, want 3", len(delivered))
	}
	if e.nextDeliver != 3 || e.slots.base != 3 {
		t.Fatalf("delivered prefix regressed: nextDeliver=%d base=%d", e.nextDeliver, e.slots.base)
	}
	// The fresh reproposal at seq 3 was accepted into a live slot.
	s := e.slots.get(3)
	if s == nil || !s.hasBlock {
		t.Fatal("fresh reproposal at seq 3 not accepted")
	}
}

// TestEquivocatingLeaderCannotSplitAgreement runs the equivocation attack
// end to end: the leader sends conflicting proposals to disjoint halves,
// neither half can reach a quorum, the instance rotates the leader, and no
// two replicas ever deliver different blocks at the same height.
func TestEquivocatingLeaderCannotSplitAgreement(t *testing.T) {
	adv := &Adversary{Equivocate: true}
	// A generous timeout bounds the run to exactly one view change before
	// the new leader proposes (same shape as the crashed-leader test).
	h := newHarness(t, 4, 1, func(i int, cfg *Config) {
		cfg.Timeout = 2 * time.Second
		if i == 0 {
			cfg.Adversary = adv
		}
	})
	if err := h.engines[0].Propose(mkBlock(0, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		h.engines[i].SetTarget(1)
	}
	h.sim.Run(simnet.Time(3 * time.Second))
	for i := 1; i < 4; i++ {
		if h.engines[i].View() == 0 {
			t.Fatalf("replica %d never rotated away from the equivocating leader", i)
		}
	}
	// The new leader decides the disputed height; everyone converges.
	lead := h.engines[1]
	if !lead.IsLeader() || !lead.CanPropose() {
		t.Fatalf("replica 1 cannot propose in view %d", lead.View())
	}
	if err := lead.Propose(mkBlock(lead.NextProposeSeq(), 1)); err != nil {
		t.Fatal(err)
	}
	h.sim.RunAll(0)
	for i := 1; i < 4; i++ {
		if len(h.delivered[i]) == 0 {
			t.Fatalf("replica %d delivered nothing after the rotation", i)
		}
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			n := len(h.delivered[i])
			if len(h.delivered[j]) < n {
				n = len(h.delivered[j])
			}
			for k := 0; k < n; k++ {
				if h.delivered[i][k].Digest() != h.delivered[j][k].Digest() {
					t.Fatalf("replicas %d and %d committed conflicting blocks at height %d", i, j, k)
				}
			}
		}
	}
}

// TestMutedLeaderForcesViewChange: a leader-muted adversary swallows its own
// proposals; honest replicas detect the silence, rotate, and make progress
// under the next leader.
func TestMutedLeaderForcesViewChange(t *testing.T) {
	adv := &Adversary{MuteLeader: true}
	h := newHarness(t, 4, 1, func(i int, cfg *Config) {
		cfg.Timeout = 2 * time.Second
		if i == 0 {
			cfg.Adversary = adv
		}
	})
	// The muted leader "proposes" — the call succeeds, nothing is sent.
	if err := h.engines[0].Propose(mkBlock(0, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		h.engines[i].SetTarget(1)
	}
	h.sim.Run(simnet.Time(3 * time.Second))
	for i := 1; i < 4; i++ {
		if h.engines[i].View() != 1 {
			t.Fatalf("replica %d in view %d, want 1", i, h.engines[i].View())
		}
	}
	lead := h.engines[1]
	if err := lead.Propose(mkBlock(lead.NextProposeSeq(), 1)); err != nil {
		t.Fatal(err)
	}
	h.sim.RunAll(0)
	for i := 1; i < 4; i++ {
		if len(h.delivered[i]) != 1 {
			t.Fatalf("replica %d delivered %d blocks after rotation", i, len(h.delivered[i]))
		}
	}
}
