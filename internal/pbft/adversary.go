package pbft

// Adversary switches on Byzantine leader behaviors for one replica. All of
// a replica's engines share one Adversary value (the core layer owns it and
// passes a pointer into every pbft.Config), so a scenario event flips the
// behavior for every SB instance the replica currently leads at once. The
// flags are read only on the proposal and view-change assembly paths —
// never per incoming message — so a benign run pays one nil check per
// proposed block, nothing on the vote hot path.
//
// Both behaviors are leader-role attacks: they describe what the replica
// does while it leads a view. Honest replicas' failure detectors respond by
// rotating the view, and with leadership gone the flags have nothing left
// to corrupt — a leader rotation is what ends an attack. This complements
// Config.Mute, which models the opposite (a backup that silently refuses to
// vote) and stays a static per-engine setting.
type Adversary struct {
	// MuteLeader suppresses all of the replica's leader-role traffic:
	// proposals are swallowed after sequence-number assignment (the pipeline
	// window still fills, so the proposal pulses stop on their own) and
	// NewView assembly is skipped even with a quorum of view-change votes.
	// Honest replicas see a silent leader, time out, and rotate the view.
	// Applied to the leaders of many SB instances in one window this is the
	// view-change storm scenario.
	MuteLeader bool
	// Equivocate sends conflicting PrePrepares for the same (view, seq) to
	// disjoint replica halves: the real block to replicas [0, n/2) and a
	// no-op twin with a different digest to [n/2, n). Since each half is
	// smaller than the prepare quorum, neither conflicting block can gather
	// enough matching votes; the instance stalls until the progress detector
	// rotates the leader. The safety suite asserts the stall is the only
	// effect — no two honest replicas ever commit conflicting blocks.
	Equivocate bool
}

// leaderMuted reports whether this replica is currently attacking by
// suppressing its leader-role traffic.
func (e *Engine) leaderMuted() bool {
	return e.cfg.Adversary != nil && e.cfg.Adversary.MuteLeader
}

// equivocating reports whether this replica is currently attacking by
// sending conflicting proposals to disjoint replica halves.
func (e *Engine) equivocating() bool {
	return e.cfg.Adversary != nil && e.cfg.Adversary.Equivocate
}

// equivocate sends the real proposal to replicas [0, n/2) and a conflicting
// no-op twin to [n/2, n). The split is deterministic — same halves every
// block — which is the strongest variant for the safety property: the same
// minority keeps accumulating votes for the twin chain.
func (e *Engine) equivocate(m *PrePrepare) {
	twinBlock := e.cfg.MakeNoop(m.Seq)
	// Digest before sending (see Propose): the twin goes to several
	// replicas that may process it concurrently on different kernel
	// shards.
	twinBlock.Digest()
	twin := &PrePrepare{Instance: e.cfg.Instance, View: m.View, Seq: m.Seq, Block: twinBlock}
	half := e.cfg.N / 2
	for to := 0; to < e.cfg.N; to++ {
		if to < half {
			e.tr.Send(to, SizeOf(m, e.cfg.TxSize), m)
		} else {
			e.tr.Send(to, SizeOf(twin, e.cfg.TxSize), twin)
		}
	}
}
