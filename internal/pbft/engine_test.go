package pbft

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/types"
)

// harness wires n engines of one SB instance over a simulated network.
type harness struct {
	sim       *simnet.Sim
	nw        *simnet.Network
	engines   []*Engine
	delivered [][]*types.Block
}

type netTransport struct {
	nw     *simnet.Network
	id     int
	txSize int
}

func (t *netTransport) Broadcast(size int, msg Message) { t.nw.Broadcast(t.id, size, msg) }
func (t *netTransport) Send(to, size int, msg Message)  { t.nw.Send(t.id, to, size, msg) }

func newHarness(t *testing.T, n, f int, mutate func(i int, cfg *Config)) *harness {
	t.Helper()
	h := &harness{sim: simnet.New(42)}
	h.nw = simnet.NewNetwork(h.sim, n, simnet.FixedModel{D: 5 * time.Millisecond})
	h.delivered = make([][]*types.Block, n)
	h.engines = make([]*Engine, n)
	for i := 0; i < n; i++ {
		i := i
		cfg := Config{
			N: n, F: f, ID: i, Instance: 0,
			Timeout: 500 * time.Millisecond,
			OnDeliver: func(b *types.Block) {
				h.delivered[i] = append(h.delivered[i], b)
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		h.engines[i] = New(cfg, &netTransport{nw: h.nw, id: i}, simnet.On(h.sim, i))
		h.nw.Register(i, func(from int, msg any) {
			h.engines[i].Handle(from, msg.(Message))
		})
	}
	return h
}

func mkBlock(sn uint64, ntx int) *types.Block {
	b := &types.Block{Instance: 0, SN: sn}
	for j := 0; j < ntx; j++ {
		b.Txs = append(b.Txs, *types.NewPayment("alice", "bob", 1, sn*100+uint64(j)))
	}
	return b
}

func TestNormalCaseDelivery(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	if err := h.engines[0].Propose(mkBlock(0, 3)); err != nil {
		t.Fatal(err)
	}
	h.sim.RunAll(0)
	for i, d := range h.delivered {
		if len(d) != 1 {
			t.Fatalf("replica %d delivered %d blocks, want 1", i, len(d))
		}
		if d[0].Digest() != h.delivered[0][0].Digest() {
			t.Fatalf("replica %d delivered a different block", i)
		}
		if len(d[0].Txs) != 3 {
			t.Fatalf("replica %d block has %d txs", i, len(d[0].Txs))
		}
	}
}

func TestOnlyLeaderMayPropose(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	if err := h.engines[1].Propose(mkBlock(0, 1)); err == nil {
		t.Fatal("backup proposal accepted")
	}
}

func TestPipelinedInOrderDelivery(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	for sn := uint64(0); sn < 4; sn++ {
		if err := h.engines[0].Propose(mkBlock(sn, 1)); err != nil {
			t.Fatalf("propose %d: %v", sn, err)
		}
	}
	h.sim.RunAll(0)
	for i, d := range h.delivered {
		if len(d) != 4 {
			t.Fatalf("replica %d delivered %d", i, len(d))
		}
		for sn, b := range d {
			if b.SN != uint64(sn) {
				t.Fatalf("replica %d delivered SN %d at position %d", i, b.SN, sn)
			}
		}
	}
}

func TestWindowLimitsPipelining(t *testing.T) {
	h := newHarness(t, 4, 1, func(i int, cfg *Config) { cfg.Window = 2 })
	if err := h.engines[0].Propose(mkBlock(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := h.engines[0].Propose(mkBlock(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := h.engines[0].Propose(mkBlock(2, 1)); err == nil {
		t.Fatal("window overrun accepted")
	}
	h.sim.RunAll(0)
	if !h.engines[0].CanPropose() {
		t.Fatal("cannot propose after window drains")
	}
}

func TestAgreementUnderWANJitter(t *testing.T) {
	sim := simnet.New(7)
	nw := simnet.NewNetwork(sim, 4, simnet.NewWAN())
	delivered := make([][]*types.Block, 4)
	engines := make([]*Engine, 4)
	for i := 0; i < 4; i++ {
		i := i
		cfg := Config{N: 4, F: 1, ID: i, Instance: 0, Timeout: 10 * time.Second,
			OnDeliver: func(b *types.Block) { delivered[i] = append(delivered[i], b) }}
		engines[i] = New(cfg, &netTransport{nw: nw, id: i}, simnet.On(sim, i))
		nw.Register(i, func(from int, msg any) { engines[i].Handle(from, msg.(Message)) })
	}
	for sn := uint64(0); sn < 3; sn++ {
		sn := sn
		sim.After(time.Duration(sn)*100*time.Millisecond, func() {
			if err := engines[0].Propose(mkBlock(sn, 2)); err != nil {
				t.Errorf("propose %d: %v", sn, err)
			}
		})
	}
	sim.RunAll(0)
	for i := 1; i < 4; i++ {
		if len(delivered[i]) != len(delivered[0]) {
			t.Fatalf("replica %d delivered %d vs %d", i, len(delivered[i]), len(delivered[0]))
		}
		for j := range delivered[i] {
			if delivered[i][j].Digest() != delivered[0][j].Digest() {
				t.Fatalf("replica %d position %d disagrees", i, j)
			}
		}
	}
}

func TestViewChangeOnCrashedLeader(t *testing.T) {
	// Use a generous timeout so exactly one view change happens inside the
	// observation window before the new leader resumes proposing (which is
	// what the replica layer does through its proposal pulses).
	h := newHarness(t, 4, 1, func(i int, cfg *Config) { cfg.Timeout = 2 * time.Second })
	// Everyone expects one block, but the leader (replica 0) is down.
	h.nw.SetDown(0, true)
	var newViews []uint64
	for i := 1; i < 4; i++ {
		i := i
		h.engines[i].cfg.OnViewChange = func(view uint64, leader int) {
			if i == 1 {
				newViews = append(newViews, view)
			}
		}
		h.engines[i].SetTarget(1)
	}
	h.sim.Run(simnet.Time(3 * time.Second))
	// After the view change, view 1's leader is replica 1.
	for i := 1; i < 4; i++ {
		if h.engines[i].View() != 1 {
			t.Fatalf("replica %d in view %d, want 1", i, h.engines[i].View())
		}
	}
	if len(newViews) == 0 || newViews[0] != 1 {
		t.Fatalf("OnViewChange views = %v", newViews)
	}
	// The new leader proposes the outstanding sequence number; everyone
	// delivers it, the delivery target is met, and the system quiesces.
	if !h.engines[1].IsLeader() || !h.engines[1].CanPropose() {
		t.Fatal("replica 1 cannot propose in view 1")
	}
	sn := h.engines[1].NextProposeSeq()
	if err := h.engines[1].Propose(mkBlock(sn, 1)); err != nil {
		t.Fatal(err)
	}
	h.sim.RunAll(0) // terminates: target met stops all timers
	for i := 1; i < 4; i++ {
		if len(h.delivered[i]) != 1 {
			t.Fatalf("replica %d delivered %d blocks after recovery", i, len(h.delivered[i]))
		}
		if len(h.delivered[i][0].Txs) != 1 {
			t.Fatalf("replica %d delivered wrong block", i)
		}
	}
}

func TestDeliveredBlockSurvivesLeaderCrash(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	if err := h.engines[0].Propose(mkBlock(0, 2)); err != nil {
		t.Fatal(err)
	}
	// Crash the leader right after its broadcast is in flight: the block
	// still commits (3 of 4 replicas form a quorum of 3).
	h.nw.SetDown(0, true)
	for i := 1; i < 4; i++ {
		h.engines[i].SetTarget(1)
	}
	h.sim.RunAll(0)
	for i := 1; i < 4; i++ {
		if len(h.delivered[i]) != 1 {
			t.Fatalf("replica %d delivered %d", i, len(h.delivered[i]))
		}
		if len(h.delivered[i][0].Txs) != 2 {
			t.Fatalf("replica %d delivered noop instead of proposed block", i)
		}
	}
}

func TestEscalatingViewChangeSkipsCrashedLeaders(t *testing.T) {
	// Replicas 0 and 1 are down in a 7-replica group (f=2): the view must
	// advance past both (view 1's leader, replica 1, is also dead) until
	// replica 2 leads, after which it can propose and meet the target.
	h := newHarness(t, 7, 2, func(i int, cfg *Config) { cfg.Timeout = time.Second })
	h.nw.SetDown(0, true)
	h.nw.SetDown(1, true)
	for i := 2; i < 7; i++ {
		h.engines[i].SetTarget(1)
	}
	// First change at ~1 s (to view 1, dead leader), escalation at ~+2 s
	// (doubled timeout) installs view 2.
	h.sim.Run(simnet.Time(5 * time.Second))
	for i := 2; i < 7; i++ {
		if h.engines[i].View() != 2 {
			t.Fatalf("replica %d view = %d, want 2", i, h.engines[i].View())
		}
	}
	if !h.engines[2].IsLeader() || !h.engines[2].CanPropose() {
		t.Fatal("replica 2 cannot propose in view 2")
	}
	if err := h.engines[2].Propose(mkBlock(h.engines[2].NextProposeSeq(), 1)); err != nil {
		t.Fatal(err)
	}
	h.sim.RunAll(0)
	for i := 2; i < 7; i++ {
		if len(h.delivered[i]) != 1 {
			t.Fatalf("replica %d delivered %d", i, len(h.delivered[i]))
		}
	}
}

func TestMutedReplicaDoesNotBlockConsensus(t *testing.T) {
	// n=4 f=1: one muted (Byzantine selective-participation) backup leaves
	// exactly a quorum of 3 voters.
	h := newHarness(t, 4, 1, func(i int, cfg *Config) {
		if i == 3 {
			cfg.Mute = true
		}
	})
	if err := h.engines[0].Propose(mkBlock(0, 1)); err != nil {
		t.Fatal(err)
	}
	h.sim.RunAll(0)
	for i := 0; i < 3; i++ {
		if len(h.delivered[i]) != 1 {
			t.Fatalf("replica %d delivered %d", i, len(h.delivered[i]))
		}
	}
	// The muted replica still delivers (it observes others' votes).
	if len(h.delivered[3]) != 1 {
		t.Fatalf("muted replica delivered %d", len(h.delivered[3]))
	}
}

func TestNonLeaderPrePrepareIgnored(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	// Replica 2 forges a pre-prepare; nobody should deliver it.
	forged := &PrePrepare{Instance: 0, View: 0, Seq: 0, Block: mkBlock(0, 1)}
	h.nw.Broadcast(2, 100, Message(forged))
	h.sim.RunAll(0)
	for i, d := range h.delivered {
		if len(d) != 0 {
			t.Fatalf("replica %d delivered forged block", i)
		}
	}
}

func TestDuplicateVotesNotDoubleCounted(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	// Hand-craft duplicate prepares from one replica; they must count once.
	e := h.engines[0]
	b := mkBlock(0, 1)
	e.Handle(0, &PrePrepare{Instance: 0, View: 0, Seq: 0, Block: b})
	d := b.Digest()
	for i := 0; i < 5; i++ {
		e.Handle(1, &Prepare{Instance: 0, View: 0, Seq: 0, Digest: d, Replica: 1})
	}
	e.Handle(2, &Prepare{Instance: 0, View: 0, Seq: 0, Digest: d, Replica: 2})
	// Two distinct voters (the engine's own network prepare is still in
	// flight in this unit test) are below the quorum of three no matter
	// how many duplicates replica 1 sent.
	if e.slots.get(0).prepared {
		t.Fatal("slot prepared from duplicate votes")
	}
	e.Handle(3, &Prepare{Instance: 0, View: 0, Seq: 0, Digest: d, Replica: 3})
	if !e.slots.get(0).prepared {
		t.Fatal("slot not prepared with quorum of distinct votes")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []types.BlockID {
		sim := simnet.New(11)
		nw := simnet.NewNetwork(sim, 4, simnet.NewWAN())
		var ids []types.BlockID
		engines := make([]*Engine, 4)
		for i := 0; i < 4; i++ {
			i := i
			cfg := Config{N: 4, F: 1, ID: i, Instance: 0, Timeout: 5 * time.Second,
				OnDeliver: func(b *types.Block) {
					if i == 2 {
						ids = append(ids, b.Digest())
					}
				}}
			engines[i] = New(cfg, &netTransport{nw: nw, id: i}, simnet.On(sim, i))
			nw.Register(i, func(from int, msg any) { engines[i].Handle(from, msg.(Message)) })
		}
		for sn := uint64(0); sn < 3; sn++ {
			if err := engines[0].Propose(mkBlock(sn, 1)); err != nil {
				t.Fatal(err)
			}
		}
		sim.RunAll(0)
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d", i)
		}
	}
}

func TestStoppedEngineIgnoresEverything(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	h.engines[1].Stop()
	if err := h.engines[0].Propose(mkBlock(0, 1)); err != nil {
		t.Fatal(err)
	}
	h.sim.RunAll(0)
	if len(h.delivered[1]) != 0 {
		t.Fatal("stopped engine delivered")
	}
	// Others still deliver: 3 of 4 is a quorum.
	if len(h.delivered[0]) != 1 {
		t.Fatal("live replicas failed to deliver")
	}
}

func TestLeaderRotationPerInstance(t *testing.T) {
	cfg := Config{N: 4, F: 1, Instance: 2}
	if cfg.LeaderOf(0) != 2 || cfg.LeaderOf(1) != 3 || cfg.LeaderOf(2) != 0 {
		t.Fatal("leader rotation wrong")
	}
}

func TestSizeOfScalesWithBatch(t *testing.T) {
	small := SizeOf(&PrePrepare{Block: mkBlock(0, 1)}, 500)
	big := SizeOf(&PrePrepare{Block: mkBlock(0, 100)}, 500)
	if big-small != 99*500 {
		t.Fatalf("size delta = %d", big-small)
	}
	if SizeOf(&Prepare{}, 500) != ctrlMsgSize {
		t.Fatal("control size wrong")
	}
}
