package pbft

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/types"
)

// TestPreparedCertificateSurvivesViewChange forces the classic PBFT safety
// scenario: a block prepares at some replicas but the leader dies before
// everyone commits. The view change must re-propose the prepared block, not
// a no-op, so no delivered-value conflict can arise.
func TestPreparedCertificateSurvivesViewChange(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	// Propose, then crash the leader AND replica 3 temporarily so commits
	// cannot reach quorum before the view change: deliver prepares first.
	if err := h.engines[0].Propose(mkBlock(0, 2)); err != nil {
		t.Fatal(err)
	}
	// Let the pre-prepare and prepares flow (2 hops x 5 ms), then sever the
	// leader before its commit quorum forms at everyone... in a uniform
	// 5 ms network commits complete quickly, so instead we drop replica 0
	// immediately and rely on 3-replica progress; the prepared certificate
	// path is exercised when only prepares made it out.
	h.nw.SetDown(0, true)
	for i := 1; i < 4; i++ {
		h.engines[i].SetTarget(1)
	}
	h.sim.RunAll(0)
	// All live replicas deliver the ORIGINAL block (2 txs), not a no-op:
	// either it committed in view 0 with 3 votes, or the view change
	// carried the prepared certificate into view 1.
	for i := 1; i < 4; i++ {
		if len(h.delivered[i]) != 1 {
			t.Fatalf("replica %d delivered %d blocks", i, len(h.delivered[i]))
		}
		if len(h.delivered[i][0].Txs) != 2 {
			t.Fatalf("replica %d delivered a no-op instead of the prepared block", i)
		}
	}
}

func TestComplaintTriggersViewChange(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	// No target set (no timeout pending); replicas complain explicitly —
	// the censorship-detector path.
	for i := 1; i < 4; i++ {
		h.engines[i].Complain()
	}
	h.sim.RunAll(0)
	for i := 1; i < 4; i++ {
		if h.engines[i].View() != 1 {
			t.Fatalf("replica %d still in view %d", i, h.engines[i].View())
		}
	}
	// The new leader (replica 1) can propose immediately.
	if !h.engines[1].IsLeader() {
		t.Fatal("replica 1 does not lead view 1")
	}
	if err := h.engines[1].Propose(mkBlock(0, 1)); err != nil {
		t.Fatal(err)
	}
	h.sim.RunAll(0)
	for i := 1; i < 4; i++ {
		if len(h.delivered[i]) != 1 {
			t.Fatalf("replica %d delivered %d after complaint-driven view change", i, len(h.delivered[i]))
		}
	}
}

func TestComplaintIdempotentDuringViewChange(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	e := h.engines[1]
	e.Complain()
	v := e.vcTarget
	e.Complain() // second complaint while changing must not escalate
	if e.vcTarget != v {
		t.Fatalf("double complaint escalated to view %d", e.vcTarget)
	}
}

func TestNewViewFromWrongLeaderIgnored(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	forged := &NewView{Instance: 0, View: 1}
	// Replica 2 is not the leader of view 1 (replica 1 is).
	h.engines[3].Handle(2, forged)
	if h.engines[3].View() != 0 {
		t.Fatal("forged NewView from non-leader accepted")
	}
	// From the right leader it installs.
	h.engines[3].Handle(1, forged)
	if h.engines[3].View() != 1 {
		t.Fatal("legitimate NewView rejected")
	}
}

func TestStaleNewViewIgnored(t *testing.T) {
	h := newHarness(t, 4, 1, nil)
	h.engines[3].Handle(1, &NewView{Instance: 0, View: 1})
	if h.engines[3].View() != 1 {
		t.Fatal("setup failed")
	}
	// A stale NewView for view 1 or lower must not regress anything.
	h.engines[3].Handle(1, &NewView{Instance: 0, View: 1})
	h.engines[3].Handle(0, &NewView{Instance: 0, View: 0})
	if h.engines[3].View() != 1 {
		t.Fatalf("view regressed to %d", h.engines[3].View())
	}
}

func TestViewChangeAmplification(t *testing.T) {
	// f+1 view-change votes must drag a lagging replica into the change
	// even if its own timer never fired.
	h := newHarness(t, 4, 1, nil)
	e := h.engines[3]
	e.Handle(1, &ViewChange{Instance: 0, NewView: 1, Replica: 1})
	if e.viewChanging {
		t.Fatal("joined after a single vote")
	}
	e.Handle(2, &ViewChange{Instance: 0, NewView: 1, Replica: 2})
	if !e.viewChanging {
		t.Fatal("did not join after f+1 votes")
	}
}

func TestTimeoutBackoffDoubles(t *testing.T) {
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, 4, simnet.FixedModel{D: time.Millisecond})
	var installed []uint64
	engines := make([]*Engine, 4)
	for i := 0; i < 4; i++ {
		i := i
		cfg := Config{N: 4, F: 1, ID: i, Instance: 0, Timeout: 100 * time.Millisecond,
			OnDeliver: func(b *types.Block) {},
			OnViewChange: func(view uint64, leader int) {
				if i == 2 {
					installed = append(installed, view)
				}
			}}
		engines[i] = New(cfg, &netTransport{nw: nw, id: i}, simnet.On(sim, i))
		nw.Register(i, func(from int, msg any) { engines[i].Handle(from, msg.(Message)) })
	}
	// Leaders 0 and 1 are both down; view must escalate to 2, with the
	// second change taking longer than the first (timeout doubling). With
	// n=4 and two crashes the quorum is unreachable, so bound the run and
	// only check the escalation mechanics.
	nw.SetDown(0, true)
	nw.SetDown(1, true)
	for i := 2; i < 4; i++ {
		engines[i].SetTarget(1)
	}
	sim.Run(simnet.Time(2 * time.Second))
	_ = installed
	if engines[2].timeoutMult <= 2 {
		t.Fatalf("timeout multiplier %d did not back off across escalations", engines[2].timeoutMult)
	}
	if engines[2].vcTarget < 2 {
		t.Fatalf("view change did not escalate past view 1 (target %d)", engines[2].vcTarget)
	}
}

func TestMuteReplicaComplaintStaysLocal(t *testing.T) {
	h := newHarness(t, 4, 1, func(i int, cfg *Config) {
		if i == 2 {
			cfg.Mute = true
		}
	})
	h.engines[2].Complain()
	// The muted replica keeps escalating privately forever, so bound the
	// run instead of draining the queue.
	h.sim.Run(simnet.Time(5 * time.Second))
	// A muted replica's complaint must not move anyone else's view.
	for i := 0; i < 4; i++ {
		if i != 2 && h.engines[i].View() != 0 {
			t.Fatalf("replica %d moved to view %d from a muted complaint", i, h.engines[i].View())
		}
	}
}

// recordingTransport captures everything an engine broadcasts.
type recordingTransport struct{ msgs []Message }

func (t *recordingTransport) Broadcast(size int, msg Message) { t.msgs = append(t.msgs, msg) }
func (t *recordingTransport) Send(to, size int, msg Message)  { t.msgs = append(t.msgs, msg) }

// TestStopCancelsFailureDetector: a Stop/Resume cycle must not replay a
// pre-crash progress timeout as a spurious view change — the recovered
// engine stays quiet about deliveries it missed while down.
func TestStopCancelsFailureDetector(t *testing.T) {
	sim := simnet.New(1)
	tr := &recordingTransport{}
	e := New(Config{N: 4, F: 1, ID: 1, Instance: 0, Timeout: 500 * time.Millisecond}, tr, simnet.On(sim, 1))
	e.SetTarget(1) // arm the failure detector; nothing will ever deliver
	sim.At(simnet.Time(300*time.Millisecond), func() { e.Stop() })
	sim.At(simnet.Time(350*time.Millisecond), func() { e.Resume() })
	sim.Run(simnet.Time(5 * time.Second))
	for _, m := range tr.msgs {
		if _, ok := m.(*ViewChange); ok {
			t.Fatalf("recovered engine broadcast a spurious view change")
		}
	}
	if e.View() != 0 {
		t.Fatalf("view advanced to %d after Stop/Resume with no traffic", e.View())
	}
}
