package pbft

import (
	"fmt"
	"time"

	"repro/internal/simnet"
	"repro/internal/types"
)

// Transport sends messages on behalf of one replica. Implementations tag or
// route messages so multiple SB instances can share one network endpoint.
type Transport interface {
	// Broadcast sends msg to every replica, including the sender.
	Broadcast(size int, msg Message)
	// Send sends msg to one replica.
	Send(to, size int, msg Message)
}

// Config parameterizes one PBFT engine (one SB instance at one replica).
type Config struct {
	N        int // number of replicas
	F        int // fault threshold, N >= 3F+1
	ID       int // this replica's index
	Instance int // SB instance index
	// Window is the number of outstanding (proposed, undelivered) sequence
	// numbers the leader may pipeline.
	Window int
	// Timeout is the base progress timeout before a view change; it doubles
	// for consecutive unsuccessful view changes.
	Timeout time.Duration
	// TxSize is the modeled per-transaction wire size (paper: 500 bytes).
	TxSize int
	// MakeNoop builds a no-op filler block for a sequence number the new
	// leader must decide without a prepared certificate (ISS-style).
	MakeNoop func(sn uint64) *types.Block
	// OnDeliver is invoked exactly once per sequence number, in order.
	OnDeliver func(b *types.Block)
	// OnViewChange is invoked when a new view is installed.
	OnViewChange func(view uint64, leader int)
	// Mute suppresses this replica's votes (prepare/commit/view-change) —
	// models the undetectable Byzantine behavior of Sec. VII-E where a
	// replica avoids participating in instances it does not lead.
	Mute bool
	// Adversary, when non-nil, points at the replica's shared Byzantine
	// behavior switches (see the Adversary type). Scenario events flip the
	// switches mid-run; nil means permanently honest.
	Adversary *Adversary
}

// LeaderOf returns the leader of a view for this instance: instance i is
// initially led by replica i, rotating round-robin on view changes.
func (c Config) LeaderOf(view uint64) int {
	return (c.Instance + int(view)) % c.N
}

// Quorum returns the prepare/commit quorum size ceil((n+f+1)/2): the
// smallest count whose pairwise intersections always contain more than f
// replicas, i.e. at least one honest one. For the paper's n = 3f+1 sizes
// this is the familiar 2f+1; for other cluster sizes (the F-scale axis
// includes n = 128 with f = 42) the fixed 2f+1 would let two quorums
// intersect in faulty replicas only.
func (c Config) Quorum() int { return (c.N + c.F + 2) / 2 }

// voteSet records per-replica digest votes for one phase of one slot. It
// is a fixed slice indexed by replica id plus a presence vector — cheaper
// than a map and fully reusable when its slot returns to the engine's
// pool. A running tally per tracked digest keeps the quorum check O(1)
// per vote: countFor adds one compare instead of rescanning all n votes
// (the scan survives only in retally, which runs once per slot when the
// proposal arrives after some votes).
type voteSet struct {
	digests []types.BlockID
	present []bool
	// tally counts recorded votes matching tallyFor. setTally installs the
	// digest to track (the slot's accepted proposal digest); votes recorded
	// before that are folded in by retally.
	tally    int
	tallyFor types.BlockID
	hasTally bool
}

func (v *voteSet) init(n int) {
	if cap(v.digests) < n {
		v.digests = make([]types.BlockID, n)
		v.present = make([]bool, n)
	} else {
		v.digests = v.digests[:n]
		v.present = v.present[:n]
		for i := range v.present {
			v.present[i] = false
		}
	}
	v.tally = 0
	v.tallyFor = types.BlockID{}
	v.hasTally = false
}

// add records replica's vote; it reports false for duplicates.
func (v *voteSet) add(replica int, d types.BlockID) bool {
	if v.present[replica] {
		return false
	}
	v.present[replica] = true
	v.digests[replica] = d
	if v.hasTally && d == v.tallyFor {
		v.tally++
	}
	return true
}

// setTally starts tracking the given digest, recounting votes already
// recorded.
func (v *voteSet) setTally(digest types.BlockID) {
	v.tallyFor = digest
	v.hasTally = true
	v.tally = 0
	for i, ok := range v.present {
		if ok && v.digests[i] == digest {
			v.tally++
		}
	}
}

// countFor returns the number of recorded votes for the tracked digest.
func (v *voteSet) countFor() int { return v.tally }

// slot tracks agreement state for one sequence number. Slots are pooled on
// the engine: tryDeliver and view installation release them, and slotFor
// reuses a released slot (vote slices included) for the next sequence
// number — the ownership rule the property tests and ARCHITECTURE.md's
// performance model document.
type slot struct {
	view      uint64
	block     *types.Block
	digest    types.BlockID
	hasBlock  bool
	prepares  voteSet
	commits   voteSet
	prepared  bool
	committed bool
	// Highest view in which this replica held a prepared certificate, and
	// the corresponding block — carried into view changes.
	preparedView  uint64
	preparedBlock *types.Block
}

// newSlot takes a slot from the pool (or allocates one) and resets it for
// the given view.
func (e *Engine) newSlot(view uint64) *slot {
	var s *slot
	if n := len(e.slotPool); n > 0 {
		s = e.slotPool[n-1]
		e.slotPool[n-1] = nil
		e.slotPool = e.slotPool[:n-1]
		prepares, commits := s.prepares, s.commits
		*s = slot{prepares: prepares, commits: commits}
	} else {
		s = &slot{}
	}
	s.view = view
	s.prepares.init(e.cfg.N)
	s.commits.init(e.cfg.N)
	return s
}

// freeSlot returns a slot to the pool. The caller must have removed it
// from e.slots; its block references are dropped here so the pool keeps no
// dead blocks alive.
func (e *Engine) freeSlot(s *slot) {
	s.block = nil
	s.preparedBlock = nil
	e.slotPool = append(e.slotPool, s)
}

// slotRing is a dense window of agreement slots indexed by sequence
// number: the hot message path (slotFor/advance/tryDeliver) resolves a
// sequence number with one shift-free masked index instead of a map
// lookup. The ring covers [base, base+len); base tracks the engine's
// nextDeliver, and the window grows (power-of-two, entries re-placed) on
// the rare occasion a proposal outruns it.
type slotRing struct {
	ring []*slot // power-of-two length; entry for seq lives at seq&mask
	base uint64  // lowest seq the window admits (== engine nextDeliver)
	top  uint64  // one past the highest seq that may hold a slot
}

// get returns the slot for seq, or nil if absent or outside the window.
func (r *slotRing) get(seq uint64) *slot {
	if seq < r.base || seq >= r.top {
		return nil
	}
	return r.ring[seq&uint64(len(r.ring)-1)]
}

// put installs the slot for seq (seq >= base), growing the ring on demand.
func (r *slotRing) put(seq uint64, s *slot) {
	if len(r.ring) == 0 {
		r.ring = make([]*slot, 8)
	}
	for seq-r.base >= uint64(len(r.ring)) {
		old := r.ring
		grown := make([]*slot, 2*len(old))
		for sq := r.base; sq < r.top; sq++ {
			grown[sq&uint64(len(grown)-1)] = old[sq&uint64(len(old)-1)]
		}
		r.ring = grown
	}
	r.ring[seq&uint64(len(r.ring)-1)] = s
	if seq >= r.top {
		r.top = seq + 1
	}
}

// advanceBase clears the slot at base and moves the window forward one
// sequence number (delivery order). A never-grown ring (state-transfer skip
// before any slot existed) only moves the bounds.
func (r *slotRing) advanceBase() {
	if len(r.ring) > 0 {
		r.ring[r.base&uint64(len(r.ring)-1)] = nil
	}
	r.base++
	if r.top < r.base {
		r.top = r.base
	}
}

// Engine is one PBFT instance at one replica.
type Engine struct {
	cfg Config
	tr  Transport
	// sim is the replica's node-pinned scheduling view: timers and
	// deadline wakeups stamp this node's canonical key and execute on its
	// shard under the parallel kernel.
	sim simnet.NodeSim

	view         uint64
	viewChanging bool
	vcTarget     uint64 // view we are trying to install while viewChanging
	vcVotes      map[uint64]map[int]*ViewChange
	// vcHighest[r] is the highest view replica r has voted for. Only the
	// highest pending vote per replica is retained in vcVotes (a newer vote
	// evicts the older one), so vcVotes holds at most N entries no matter
	// how many far-future views a faulty replica spams.
	vcHighest []uint64

	slots       slotRing
	slotPool    []*slot // released slots awaiting reuse
	nextDeliver uint64  // next sequence number to deliver
	nextPropose uint64  // next sequence number this replica would propose
	target      uint64  // deliveries expected (progress obligation); 0 = idle

	timeoutMult time.Duration
	// The progress failure detector is event-thrifty: a wakeup event
	// chases the moving deadline instead of one cancelled-and-reallocated
	// timer per delivery. progressDeadline is the virtual time the
	// detector fires (0 = disarmed); progressWakeAt is the earliest known
	// in-flight wakeup (0 = none). A wakeup that lands before the current
	// deadline re-arms; when the deadline moves *earlier* than every
	// in-flight wakeup (a view change shrank the timeout), an extra wakeup
	// is scheduled so detection is never late — stale later wakeups fire
	// as no-ops.
	progressDeadline simnet.Time
	progressWakeAt   simnet.Time
	vcTimer          *simnet.Timer

	delivered uint64 // count of delivered blocks
	stopped   bool

	// retained is a ring of the most recently delivered blocks, indexed by
	// seq & (retainDelivered-1). Delivery discards a slot's certificates
	// (freeSlot), so without it a new leader could not prove what was
	// decided at a sequence number some replicas delivered but no pending
	// certificate covers; sendNewView re-proposes the retained block there
	// instead of a conflicting no-op.
	retained [retainDelivered]retainedEntry
}

// retainDelivered is the per-engine delivered-block retention depth. It
// must be a power of two and comfortably exceed the pipeline window, so
// every gap a view change can surface is still covered.
const retainDelivered = 32

type retainedEntry struct {
	seq   uint64
	block *types.Block // nil until seq wraps the ring once
}

// New creates an engine. The transport must deliver broadcast messages back
// to the sender (self-delivery), which simnet.Network does.
func New(cfg Config, tr Transport, sim simnet.NodeSim) *Engine {
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.TxSize <= 0 {
		cfg.TxSize = 500
	}
	if cfg.MakeNoop == nil {
		inst := cfg.Instance
		cfg.MakeNoop = func(sn uint64) *types.Block {
			return &types.Block{Instance: inst, SN: sn}
		}
	}
	return &Engine{
		cfg:         cfg,
		tr:          tr,
		sim:         sim,
		vcVotes:     make(map[uint64]map[int]*ViewChange),
		vcHighest:   make([]uint64, cfg.N),
		timeoutMult: 1,
	}
}

// View returns the current view number.
func (e *Engine) View() uint64 { return e.view }

// Leader returns the current view's leader.
func (e *Engine) Leader() int { return e.cfg.LeaderOf(e.view) }

// IsLeader reports whether this replica leads the current view.
func (e *Engine) IsLeader() bool { return e.Leader() == e.cfg.ID }

// Delivered returns the number of delivered blocks (== next seq to deliver).
func (e *Engine) Delivered() uint64 { return e.delivered }

// NextProposeSeq returns the sequence number the leader would assign next.
func (e *Engine) NextProposeSeq() uint64 { return e.nextPropose }

// InFlight returns the number of proposed-but-undelivered sequence numbers.
func (e *Engine) InFlight() int { return int(e.nextPropose - e.nextDeliver) }

// CanPropose reports whether the replica may propose now: it leads the
// current view, is not mid view change, and the pipeline window has room.
func (e *Engine) CanPropose() bool {
	return !e.stopped && e.IsLeader() && !e.viewChanging && e.InFlight() < e.cfg.Window
}

// Stop halts the engine: all subsequent messages are ignored and the
// armed failure-detection timers are cancelled, so a crash followed by
// Resume cannot replay a pre-crash timeout.
func (e *Engine) Stop() {
	e.stopped = true
	e.progressDeadline = 0
	if e.vcTimer != nil {
		e.vcTimer.Stop()
		e.vcTimer = nil
	}
}

// Resume undoes Stop: the engine handles messages and proposals again.
// It deliberately does not rearm the failure detector — a recovered
// replica votes on new sequence numbers immediately but does not complain
// about deliveries it missed while down, so its local log keeps a gap
// until a view change fills it with no-ops or the replica's state-transfer
// catch-up replays the missing blocks through SkipDelivered.
func (e *Engine) Resume() { e.stopped = false }

// SkipDelivered advances the delivery cursor past a block obtained through
// state transfer instead of a local commit certificate. The caller (the
// replica's catch-up path) owns the block's correctness — f+1 matching peer
// copies vouch for it; the engine keeps its bookkeeping consistent exactly
// as tryDeliver would: the sequence's slot (if any) is released, the window
// and cursor advance, the block joins the retention ring, OnDeliver fires,
// and committed slots waiting right above the repaired gap flush through
// the normal path. Only the block at the cursor is accepted.
func (e *Engine) SkipDelivered(b *types.Block) bool {
	if e.stopped || b == nil || b.SN != e.nextDeliver {
		return false
	}
	s := e.slots.get(b.SN)
	e.retained[b.SN&(retainDelivered-1)] = retainedEntry{seq: b.SN, block: b}
	e.slots.advanceBase()
	if s != nil {
		e.freeSlot(s)
	}
	e.nextDeliver++
	e.delivered++
	if e.nextPropose < e.nextDeliver {
		e.nextPropose = e.nextDeliver
	}
	e.timeoutMult = 1
	e.resetProgressTimer()
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(b)
	}
	e.tryDeliver()
	return true
}

// ReleaseBelow drops retention-ring entries for sequence numbers below seq.
// Once a checkpoint is stable and state transfer can repair laggards, the
// pre-checkpoint blocks retained for NewView re-proposals are dead weight;
// sendNewView falls back to skipping those sequence numbers, the same
// contract as a ring wrap.
func (e *Engine) ReleaseBelow(seq uint64) {
	for i := range e.retained {
		if e.retained[i].block != nil && e.retained[i].seq < seq {
			e.retained[i] = retainedEntry{}
		}
	}
}

// Retained returns the number of delivered blocks the retention ring
// currently pins (soak live-set accounting).
func (e *Engine) Retained() int {
	n := 0
	for i := range e.retained {
		if e.retained[i].block != nil {
			n++
		}
	}
	return n
}

// Complain votes for a view change immediately — used by the censorship
// detector when a leader keeps proposing blocks that omit an old pending
// transaction (Sec. V-B's failure detector). Idempotent while a view
// change for the next view is already in progress.
func (e *Engine) Complain() {
	if e.stopped || e.viewChanging {
		return
	}
	e.startViewChange(e.view + 1)
}

// SetTarget declares that sequence numbers [0, target) are expected to be
// delivered; while delivery lags the target a progress timer runs and a
// view change fires on expiry. Used by the epoch layer to detect censoring
// or crashed leaders.
func (e *Engine) SetTarget(target uint64) {
	if target > e.target {
		e.target = target
	}
	e.resetProgressTimer()
}

// Propose submits a block as the next proposal. The caller must be the
// current leader (checked); the block's SN must equal NextProposeSeq.
func (e *Engine) Propose(b *types.Block) error {
	if !e.CanPropose() {
		return fmt.Errorf("pbft: replica %d cannot propose on instance %d (leader=%d viewChanging=%v inflight=%d)",
			e.cfg.ID, e.cfg.Instance, e.Leader(), e.viewChanging, e.InFlight())
	}
	if b.SN != e.nextPropose {
		return fmt.Errorf("pbft: proposal SN %d != next %d", b.SN, e.nextPropose)
	}
	e.nextPropose++
	// Digest before broadcast: receivers may process the shared block
	// concurrently from different kernel shards, and the lazy digest
	// cache write would race.
	b.Digest()
	m := &PrePrepare{Instance: e.cfg.Instance, View: e.view, Seq: b.SN, Block: b}
	switch {
	case e.leaderMuted():
		// Swallow the proposal: the sequence number is consumed, the window
		// fills, and the silent leader forces a view change downstream.
	case e.equivocating():
		e.equivocate(m)
	default:
		e.tr.Broadcast(SizeOf(m, e.cfg.TxSize), m)
	}
	return nil
}

// Handle processes an incoming protocol message.
func (e *Engine) Handle(from int, msg Message) {
	if e.stopped {
		return
	}
	switch m := msg.(type) {
	case *PrePrepare:
		e.onPrePrepare(from, m)
	case *Prepare:
		e.onPrepare(m)
	case *Commit:
		e.onCommit(m)
	case *ViewChange:
		e.onViewChange(m)
	case *NewView:
		e.onNewView(from, m)
	}
}

func (e *Engine) slotFor(seq uint64) *slot {
	s := e.slots.get(seq)
	if s == nil {
		s = e.newSlot(e.view)
		e.slots.put(seq, s)
	}
	return s
}

func (e *Engine) onPrePrepare(from int, m *PrePrepare) {
	if m.View != e.view || e.viewChanging {
		return
	}
	if from != e.cfg.LeaderOf(m.View) {
		return // only the leader proposes
	}
	if m.Seq < e.nextDeliver {
		return // already delivered
	}
	s := e.slotFor(m.Seq)
	if s.view != m.View {
		return
	}
	if s.hasBlock {
		return // first proposal wins; honest leaders do not equivocate
	}
	s.block = m.Block
	s.digest = m.Block.Digest()
	s.hasBlock = true
	s.prepares.setTally(s.digest)
	s.commits.setTally(s.digest)
	// Backups (and the leader itself) echo a prepare vote.
	if !e.cfg.Mute {
		p := &Prepare{Instance: e.cfg.Instance, View: m.View, Seq: m.Seq, Digest: s.digest, Replica: e.cfg.ID}
		e.tr.Broadcast(SizeOf(p, e.cfg.TxSize), p)
	}
	e.advance(m.Seq)
}

func (e *Engine) onPrepare(m *Prepare) {
	if m.View != e.view || e.viewChanging || m.Seq < e.nextDeliver {
		return
	}
	s := e.slotFor(m.Seq)
	if s.view != m.View {
		return
	}
	if !s.prepares.add(m.Replica, m.Digest) {
		return
	}
	e.advance(m.Seq)
}

func (e *Engine) onCommit(m *Commit) {
	if m.View != e.view || e.viewChanging || m.Seq < e.nextDeliver {
		return
	}
	s := e.slotFor(m.Seq)
	if s.view != m.View {
		return
	}
	if !s.commits.add(m.Replica, m.Digest) {
		return
	}
	e.advance(m.Seq)
}

// advance re-evaluates a slot's phase transitions after new evidence.
func (e *Engine) advance(seq uint64) {
	s := e.slots.get(seq)
	if s == nil {
		return
	}
	if s.hasBlock && !s.prepared {
		// Prepared: pre-prepare + 2f matching prepares (the leader's own
		// prepare counts as one of the 2f+1 total votes here since every
		// replica broadcasts a prepare on accepting the proposal).
		if s.prepares.countFor() >= e.cfg.Quorum() {
			s.prepared = true
			s.preparedView = s.view
			s.preparedBlock = s.block
			if !e.cfg.Mute {
				c := &Commit{Instance: e.cfg.Instance, View: s.view, Seq: seq, Digest: s.digest, Replica: e.cfg.ID}
				e.tr.Broadcast(SizeOf(c, e.cfg.TxSize), c)
			}
		}
	}
	if s.prepared && !s.committed {
		if s.commits.countFor() >= e.cfg.Quorum() {
			s.committed = true
		}
	}
	e.tryDeliver()
}

// tryDeliver delivers committed slots in sequence order.
func (e *Engine) tryDeliver() {
	for {
		s := e.slots.get(e.nextDeliver)
		if s == nil || !s.committed {
			return
		}
		b := s.block
		e.retained[e.nextDeliver&(retainDelivered-1)] = retainedEntry{seq: e.nextDeliver, block: b}
		e.slots.advanceBase()
		e.freeSlot(s)
		e.nextDeliver++
		e.delivered++
		if e.nextPropose < e.nextDeliver {
			e.nextPropose = e.nextDeliver
		}
		e.timeoutMult = 1
		e.resetProgressTimer()
		if e.cfg.OnDeliver != nil {
			e.cfg.OnDeliver(b)
		}
	}
}

// --- failure detection & view change ---

// resetProgressTimer re-arms the failure detector: the deadline moves to
// now + timeout, and a single in-flight wakeup event chases it. Moving the
// deadline costs nothing — a wakeup that fires early simply re-schedules
// itself at the current deadline — so a delivery-heavy run schedules one
// event per timeout interval per engine, not one per delivery.
func (e *Engine) resetProgressTimer() {
	if e.stopped || e.viewChanging || e.nextDeliver >= e.target {
		e.progressDeadline = 0
		return
	}
	e.progressDeadline = e.sim.Now() + simnet.Time(e.cfg.Timeout*e.timeoutMult)
	e.armProgressWakeup()
}

// armProgressWakeup guarantees an in-flight wakeup no later than the
// current deadline.
func (e *Engine) armProgressWakeup() {
	if e.progressDeadline == 0 {
		return
	}
	if e.progressWakeAt != 0 && e.progressWakeAt <= e.progressDeadline {
		return // an in-flight wakeup already covers the deadline
	}
	e.progressWakeAt = e.progressDeadline
	e.sim.CallAt(e.progressDeadline, progressFire, e, nil)
}

// progressFire is the detector's wakeup callback (top-level so CallAt
// schedules it without a closure allocation).
func progressFire(a, _ any) {
	e := a.(*Engine)
	if e.progressWakeAt == e.sim.Now() {
		e.progressWakeAt = 0 // this was the covering wakeup
	}
	if e.progressDeadline == 0 || e.stopped || e.viewChanging || e.nextDeliver >= e.target {
		return
	}
	if e.sim.Now() < e.progressDeadline {
		e.armProgressWakeup() // deadline moved forward; chase it
		return
	}
	e.startViewChange(e.view + 1)
}

// startViewChange broadcasts a view-change vote for newView.
func (e *Engine) startViewChange(newView uint64) {
	if newView <= e.view {
		return
	}
	e.viewChanging = true
	e.vcTarget = newView
	e.progressDeadline = 0
	var prepared []PreparedEntry
	for seq := e.slots.base; seq < e.slots.top; seq++ {
		if s := e.slots.get(seq); s != nil && seq >= e.nextDeliver && s.preparedBlock != nil {
			prepared = append(prepared, PreparedEntry{Seq: seq, View: s.preparedView, Block: s.preparedBlock})
		}
	}
	vc := &ViewChange{
		Instance:  e.cfg.Instance,
		NewView:   newView,
		Replica:   e.cfg.ID,
		Delivered: e.nextDeliver,
		Prepared:  prepared,
	}
	if !e.cfg.Mute {
		e.tr.Broadcast(SizeOf(vc, e.cfg.TxSize), vc)
	} else {
		// A muted replica still tracks its own intent locally.
		e.onViewChange(vc)
	}
	// If the new view does not install in time, escalate further.
	e.timeoutMult *= 2
	if e.vcTimer != nil {
		e.vcTimer.Stop()
	}
	e.vcTimer = e.sim.AfterTimer(e.cfg.Timeout*e.timeoutMult, func() {
		if e.stopped || !e.viewChanging {
			return
		}
		e.startViewChange(e.vcTarget + 1)
	})
}

func (e *Engine) onViewChange(m *ViewChange) {
	if m.NewView <= e.view {
		return
	}
	if m.Replica < 0 || m.Replica >= e.cfg.N {
		return
	}
	// Retain only each replica's highest vote: a newer vote evicts the
	// replica's older pending one, so vcVotes is bounded at N entries even
	// under far-future view spam. A repeat (or lower) vote is a no-op —
	// this also subsumes the old per-view duplicate check. Voting for view
	// v implicitly abandons views below v, standard PBFT semantics.
	if prev := e.vcHighest[m.Replica]; prev >= m.NewView {
		return
	} else if prev > e.view {
		if old := e.vcVotes[prev]; old != nil {
			delete(old, m.Replica)
			if len(old) == 0 {
				delete(e.vcVotes, prev)
			}
		}
	}
	e.vcHighest[m.Replica] = m.NewView
	votes, ok := e.vcVotes[m.NewView]
	if !ok {
		votes = make(map[int]*ViewChange)
		e.vcVotes[m.NewView] = votes
	}
	votes[m.Replica] = m

	// Join amplification: if f+1 replicas want a higher view, join them so
	// a correct replica never lags a view change indefinitely.
	if !e.viewChanging || m.NewView > e.vcTarget {
		if len(votes) >= e.cfg.F+1 && m.NewView > e.view && (!e.viewChanging || m.NewView > e.vcTarget) {
			e.startViewChange(m.NewView)
		}
	}

	// New leader installs the view with a quorum of view-change votes — a
	// leader-muted adversary withholds the NewView, extending the storm
	// until honest replicas escalate past it.
	if e.cfg.LeaderOf(m.NewView) == e.cfg.ID && len(votes) >= e.cfg.Quorum() && !e.cfg.Mute && !e.leaderMuted() {
		e.sendNewView(m.NewView, votes)
	}
}

// retainedBlock returns the block this replica delivered at seq, if the
// retention ring still covers it.
func (e *Engine) retainedBlock(seq uint64) *types.Block {
	r := &e.retained[seq&(retainDelivered-1)]
	if r.block != nil && r.seq == seq {
		return r.block
	}
	return nil
}

// sendNewView assembles re-proposals from the collected view changes: for
// each undecided sequence number, the prepared block from the highest view
// wins. A sequence number without a certificate is filled with the block
// the leader itself delivered there (retention ring) if it has one, with a
// no-op if no replica in the vote set delivered it (then a no-op cannot
// conflict with anything), and is otherwise skipped: certificates are
// discarded at delivery, so a seq below some replica's delivered prefix can
// legitimately have no certificate in the vote set, and a no-op there would
// let laggards commit a block conflicting with what the rest of the group
// already executed. Skipping leaves the laggard's gap in place — the same
// contract as crash recovery without state transfer — until a leader whose
// retention covers the seq rotates in.
func (e *Engine) sendNewView(view uint64, votes map[int]*ViewChange) {
	minDelivered := ^uint64(0)
	maxDelivered := uint64(0)
	maxSeq := uint64(0)
	havePrepared := make(map[uint64]PreparedEntry)
	for _, vc := range votes {
		if vc.Delivered < minDelivered {
			minDelivered = vc.Delivered
		}
		if vc.Delivered > maxDelivered {
			maxDelivered = vc.Delivered
		}
		if vc.Delivered > maxSeq {
			maxSeq = vc.Delivered
		}
		for _, p := range vc.Prepared {
			if p.Seq+1 > maxSeq {
				maxSeq = p.Seq + 1
			}
			if prev, ok := havePrepared[p.Seq]; !ok || p.View > prev.View {
				havePrepared[p.Seq] = p
			}
		}
	}
	if minDelivered == ^uint64(0) {
		minDelivered = 0
	}
	nv := &NewView{Instance: e.cfg.Instance, View: view}
	for seq := minDelivered; seq < maxSeq; seq++ {
		var b *types.Block
		if p, ok := havePrepared[seq]; ok {
			b = p.Block
		} else if rb := e.retainedBlock(seq); rb != nil {
			b = rb
		} else if seq >= maxDelivered {
			b = e.cfg.MakeNoop(seq)
		} else {
			continue // delivered somewhere, unprovable here: leave the gap
		}
		// Digest before broadcast (see Propose): fresh noop fills would
		// otherwise be digested concurrently by receivers on different
		// kernel shards.
		b.Digest()
		nv.Reproposals = append(nv.Reproposals, &PrePrepare{
			Instance: e.cfg.Instance, View: view, Seq: seq, Block: b,
		})
	}
	e.tr.Broadcast(SizeOf(nv, e.cfg.TxSize), nv)
}

func (e *Engine) onNewView(from int, m *NewView) {
	if m.View <= e.view {
		return
	}
	if from != e.cfg.LeaderOf(m.View) {
		return
	}
	// Install the new view: reset undecided slots and replay re-proposals.
	e.view = m.View
	e.viewChanging = false
	if e.vcTimer != nil {
		e.vcTimer.Stop()
		e.vcTimer = nil
	}
	for seq := e.slots.base; seq < e.slots.top; seq++ {
		s := e.slots.get(seq)
		if s == nil || seq < e.nextDeliver {
			continue
		}
		// Preserve the local prepared certificate (safety across views)
		// while resetting vote state for the new view. The old slot is
		// reset in place rather than pooled-and-replaced: nothing else
		// holds a reference to it.
		pv, pb := s.preparedView, s.preparedBlock
		prepares, commits := s.prepares, s.commits
		*s = slot{prepares: prepares, commits: commits, view: m.View, preparedView: pv, preparedBlock: pb}
		s.prepares.init(e.cfg.N)
		s.commits.init(e.cfg.N)
	}
	// Clean up stale view-change votes.
	for v := range e.vcVotes {
		if v <= e.view {
			delete(e.vcVotes, v)
		}
	}
	maxSeq := e.nextDeliver
	for _, pp := range m.Reproposals {
		if pp.Seq+1 > maxSeq {
			maxSeq = pp.Seq + 1
		}
		e.onPrePrepare(from, pp)
	}
	if e.nextPropose < maxSeq {
		e.nextPropose = maxSeq
	}
	e.resetProgressTimer()
	if e.cfg.OnViewChange != nil {
		e.cfg.OnViewChange(e.view, e.Leader())
	}
}
