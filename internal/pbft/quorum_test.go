package pbft

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

// TestQuorumMathAcrossScales pins the fault-threshold arithmetic for the
// whole supported cluster-size range (the F-scale axis up to the SDK's
// MaxReplicas = 128): f = (n-1)/3 tolerates the most faults with n
// replicas, the commit quorum is 2f+1, and two quorums always intersect
// in at least one honest replica (2*(2f+1) - n > f).
func TestQuorumMathAcrossScales(t *testing.T) {
	for n := 4; n <= 128; n++ {
		f := (n - 1) / 3
		cfg := Config{N: n, F: f}
		if got, want := cfg.Quorum(), (n+f+2)/2; got != want {
			t.Fatalf("n=%d: Quorum() = %d, want ceil((n+f+1)/2) = %d", n, got, want)
		}
		if n == 3*f+1 && cfg.Quorum() != 2*f+1 {
			t.Fatalf("n=%d=3f+1: Quorum() = %d, want the classic 2f+1 = %d", n, cfg.Quorum(), 2*f+1)
		}
		if 3*f+1 > n {
			t.Fatalf("n=%d: f=%d violates n >= 3f+1", n, f)
		}
		if cfg.Quorum() > n-f {
			t.Fatalf("n=%d f=%d: quorum %d unreachable with f crashed replicas", n, f, cfg.Quorum())
		}
		if overlap := 2*cfg.Quorum() - n; overlap <= f {
			t.Fatalf("n=%d f=%d: quorum intersection %d not > f", n, f, overlap)
		}
	}
}

// TestNormalCaseDeliveryAt128 runs one full consensus round at the
// largest supported cluster size message-level: every replica must
// deliver with the 2f+1 quorums of n=128 (f=42), exercising the
// slice-based vote sets at their widest.
func TestNormalCaseDeliveryAt128(t *testing.T) {
	n := 128
	f := (n - 1) / 3
	h := newHarness(t, n, f, nil)
	b := mkBlock(0, 3)
	if err := h.engines[0].Propose(b); err != nil {
		t.Fatal(err)
	}
	h.sim.RunAll(0)
	for i, got := range h.delivered {
		if len(got) != 1 || got[0].SN != 0 {
			t.Fatalf("replica %d delivered %v", i, got)
		}
	}
}

// dropTransport swallows every message: the engine under test runs in
// isolation and only its local state is observed.
type dropTransport struct{}

func (dropTransport) Broadcast(size int, msg Message) {}
func (dropTransport) Send(to, size int, msg Message)  {}

// TestProgressDetectorTracksShrinkingDeadline is the regression for the
// event-thrifty failure detector: when the deadline moves *earlier* than
// an already-scheduled wakeup (a delivery reset timeoutMult after a view
// change doubled it), the detector must still fire at the new, earlier
// deadline rather than waiting for the stale wakeup. The timer re-arm
// audit for the scheduler overhaul runs it against both queue
// implementations — the detector's stale-wakeup logic must not depend on
// which queue delivers the wakeups.
func TestProgressDetectorTracksShrinkingDeadline(t *testing.T) {
	for _, q := range []struct {
		name string
		kind simnet.QueueKind
	}{{"wheel", simnet.QueueWheel}, {"heap", simnet.QueueHeap}} {
		t.Run(q.name, func(t *testing.T) {
			sim := simnet.NewWithQueue(1, q.kind)
			e := New(Config{N: 4, F: 1, ID: 1, Timeout: 10 * time.Second}, dropTransport{}, simnet.On(sim, 1))
			// Arm with a doubled timeout: wakeup scheduled at t=20s.
			e.timeoutMult = 2
			e.SetTarget(5)
			// A successful delivery elsewhere resets the multiplier and
			// re-arms: the deadline shrinks to t=10s, before the in-flight
			// 20s wakeup.
			e.timeoutMult = 1
			e.resetProgressTimer()
			sim.Run(simnet.Time(10*time.Second) - 1)
			if e.viewChanging {
				t.Fatal("view change before the 10s deadline")
			}
			sim.Run(simnet.Time(10 * time.Second))
			if !e.viewChanging {
				t.Fatal("detector missed the shrunk 10s deadline (stale 20s wakeup)")
			}
			// The stale wakeup at 20s must fire as a no-op.
			sim.Run(simnet.Time(25 * time.Second))
		})
	}
}
