package baseline

import (
	"testing"

	"repro/internal/types"
)

func ref(instance int, sn uint64) types.BlockRef {
	return types.BlockRef{Instance: instance, SN: sn}
}

func blk(instance int, sn uint64) *types.Block {
	return &types.Block{Instance: instance, SN: sn}
}

func seq(refs ...types.BlockRef) *types.Block {
	return &types.Block{Instance: 99, Refs: refs}
}

func TestModeRegistry(t *testing.T) {
	names := []string{"Orthrus", "ISS", "RCC", "Mir", "DQBFT", "Ladon"}
	all := AllModes()
	if len(all) != len(names) {
		t.Fatalf("AllModes has %d entries", len(all))
	}
	for i, n := range names {
		if all[i].Name != n {
			t.Fatalf("mode %d = %s, want %s", i, all[i].Name, n)
		}
		m, ok := ModeByName(n)
		if !ok || m.Name != n {
			t.Fatalf("ModeByName(%s) failed", n)
		}
	}
	if _, ok := ModeByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestModeFlags(t *testing.T) {
	if !MirMode().EpochStallOnViewChange || ISSMode().EpochStallOnViewChange {
		t.Fatal("Mir/ISS stall flags wrong")
	}
	if !DQBFTMode().Sequencer || LadonMode().Sequencer {
		t.Fatal("sequencer flags wrong")
	}
	for _, m := range AllModes() {
		if m.Name != "Orthrus" && (m.FastPathPayments || m.SplitMultiPayer) {
			t.Fatalf("%s must not have Orthrus's fast path", m.Name)
		}
	}
}

func TestRefOrdererSequencerDecidesOrder(t *testing.T) {
	r := NewRefOrderer()
	// Worker blocks arrive before any sequencer decision: nothing confirms.
	if out := r.OnWorkerDeliver(blk(0, 0)); out != nil {
		t.Fatalf("confirmed %v without sequencer", out)
	}
	if out := r.OnWorkerDeliver(blk(1, 0)); out != nil {
		t.Fatalf("confirmed %v without sequencer", out)
	}
	if r.PendingCount() != 2 {
		t.Fatalf("pending %d", r.PendingCount())
	}
	// The sequencer orders instance 1's block first.
	out := r.OnSequencerDeliver(seq(ref(1, 0), ref(0, 0)))
	if len(out) != 2 || out[0].Instance != 1 || out[1].Instance != 0 {
		t.Fatalf("order wrong: %v", out)
	}
	if r.PendingCount() != 0 {
		t.Fatal("pending not drained")
	}
}

func TestRefOrdererWaitsForLocalDelivery(t *testing.T) {
	r := NewRefOrderer()
	// Sequencer decision arrives before the block itself.
	if out := r.OnSequencerDeliver(seq(ref(0, 0))); out != nil {
		t.Fatalf("confirmed %v before local delivery", out)
	}
	out := r.OnWorkerDeliver(blk(0, 0))
	if len(out) != 1 {
		t.Fatalf("block not confirmed after arrival: %v", out)
	}
}

func TestRefOrdererHeadBlocking(t *testing.T) {
	r := NewRefOrderer()
	r.OnSequencerDeliver(seq(ref(0, 0), ref(1, 0)))
	// The second-referenced block arrives first: it must wait for the head.
	if out := r.OnWorkerDeliver(blk(1, 0)); out != nil {
		t.Fatalf("out-of-order confirmation: %v", out)
	}
	out := r.OnWorkerDeliver(blk(0, 0))
	if len(out) != 2 || out[0].Instance != 0 || out[1].Instance != 1 {
		t.Fatalf("order wrong: %v", out)
	}
}

func TestRefOrdererDuplicateRefsIgnored(t *testing.T) {
	r := NewRefOrderer()
	r.OnWorkerDeliver(blk(0, 0))
	out := r.OnSequencerDeliver(seq(ref(0, 0), ref(0, 0)))
	if len(out) != 1 {
		t.Fatalf("duplicate ref confirmed twice: %v", out)
	}
	// A second sequencer block repeating the ref is also ignored.
	if out := r.OnSequencerDeliver(seq(ref(0, 0))); out != nil {
		t.Fatalf("replayed ref confirmed: %v", out)
	}
}
