// Package baseline provides the Multi-BFT protocol variants the paper
// compares Orthrus against, expressed as core.Mode configurations plus the
// DQBFT dedicated-sequencer global ordering:
//
//   - Mir-BFT: pre-determined round-robin global order; any leader failure
//     triggers an epoch change that stalls every instance.
//   - ISS: pre-determined global order; a faulty instance's gap is filled
//     with no-op blocks so only that instance view-changes.
//   - RCC: pre-determined global order with a lighter recovery than Mir;
//     performance-wise it tracks ISS in this model (and in the paper).
//   - DQBFT: a dedicated SB instance globally orders the blocks delivered
//     by the worker instances.
//   - Ladon: dynamic rank-based global ordering (Orthrus reuses this for
//     its global log while its payments bypass it).
//
// All of them execute every transaction at its global-log position; none
// has Orthrus's partial-order fast path or multi-payer splitting.
//
// To add a protocol, return its core.Mode from a constructor and register
// it in internal/registry (as this package's init does): every sweep,
// scenario suite, example and CLI flag resolves protocols through the
// registry, so a registered protocol plugs in without touching cluster or
// experiments code (see ARCHITECTURE.md's extension seams). The public
// entry point for the same seam is orthrus.Register.
package baseline

import (
	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/registry"
	"repro/internal/types"
)

// The baselines register at init time. The registry already holds Orthrus
// (it registers itself first), so the resulting order is the paper's
// figure order: Orthrus, ISS, RCC, Mir, DQBFT, Ladon.
func init() {
	for _, p := range []registry.Protocol{
		{Name: "ISS", Description: "pre-determined global order; a faulty instance's gap is filled with no-op blocks", New: ISSMode},
		{Name: "RCC", Description: "pre-determined global order with concurrent recovery; tracks ISS in this model", New: RCCMode},
		{Name: "Mir", Description: "pre-determined global order; any leader failure stalls every instance (epoch change)", New: MirMode},
		{Name: "DQBFT", Description: "a dedicated sequencer instance globally orders the worker instances' blocks", New: DQBFTMode},
		{Name: "Ladon", Description: "dynamic rank-based global ordering for all transactions (no payment fast path)", New: LadonMode},
	} {
		registry.MustRegister(p)
	}
}

// ISSMode returns ISS: predetermined ordering with no-op gap filling.
func ISSMode() core.Mode {
	return core.Mode{
		Name:               "ISS",
		NewGlobal:          func(m int) core.GlobalOrdering { return core.WorkerOrdering{Ord: order.NewPredetermined(m)} },
		StrictEpochBarrier: true,
	}
}

// MirMode returns Mir-BFT: predetermined ordering; view changes stall all
// instances (epoch change), making it the most straggler/fault sensitive.
func MirMode() core.Mode {
	return core.Mode{
		Name:                   "Mir",
		NewGlobal:              func(m int) core.GlobalOrdering { return core.WorkerOrdering{Ord: order.NewPredetermined(m)} },
		StrictEpochBarrier:     true,
		EpochStallOnViewChange: true,
	}
}

// RCCMode returns RCC: predetermined ordering with concurrent recovery.
func RCCMode() core.Mode {
	return core.Mode{
		Name:               "RCC",
		NewGlobal:          func(m int) core.GlobalOrdering { return core.WorkerOrdering{Ord: order.NewPredetermined(m)} },
		StrictEpochBarrier: true,
	}
}

// LadonMode returns Ladon: dynamic rank-based global ordering for all
// transactions (no payment fast path).
func LadonMode() core.Mode {
	return core.Mode{
		Name:      "Ladon",
		NewGlobal: func(m int) core.GlobalOrdering { return core.WorkerOrdering{Ord: order.NewDynamic(m)} },
	}
}

// DQBFTMode returns DQBFT: worker blocks are globally ordered by reference
// blocks decided on a dedicated sequencer SB instance.
func DQBFTMode() core.Mode {
	return core.Mode{
		Name:      "DQBFT",
		NewGlobal: func(m int) core.GlobalOrdering { return NewRefOrderer() },
		Sequencer: true,
	}
}

// AllModes returns a fresh mode for every registered protocol in
// registration order (Orthrus first — the order used in the paper's
// figures). It reads the shared registry, so protocols registered by other
// packages appear here too.
func AllModes() []core.Mode {
	ps := registry.All()
	modes := make([]core.Mode, len(ps))
	for i, p := range ps {
		modes[i] = p.New()
	}
	return modes
}

// ModeByName resolves a protocol name (case-sensitive, as printed) through
// the shared registry.
func ModeByName(name string) (core.Mode, bool) {
	p, err := registry.Lookup(name)
	if err != nil {
		return core.Mode{}, false
	}
	return p.New(), true
}

// RefOrderer implements DQBFT's global ordering: the sequencer instance
// decides the order of worker blocks by reference; a referenced block is
// confirmed once it has been delivered locally and every earlier reference
// has been confirmed.
type RefOrderer struct {
	// have holds locally delivered worker blocks not yet confirmed.
	have map[types.BlockRef]*types.Block
	// ordered dedups references across sequencer blocks.
	ordered map[types.BlockRef]bool
	// queue is the sequencer-decided confirmation order still waiting for
	// local delivery of its head.
	queue   []types.BlockRef
	pending int
}

// NewRefOrderer creates an empty DQBFT orderer.
func NewRefOrderer() *RefOrderer {
	return &RefOrderer{
		have:    make(map[types.BlockRef]*types.Block),
		ordered: make(map[types.BlockRef]bool),
	}
}

// OnWorkerDeliver implements core.GlobalOrdering.
func (r *RefOrderer) OnWorkerDeliver(b *types.Block) []*types.Block {
	r.have[types.BlockRef{Instance: b.Instance, SN: b.SN}] = b
	r.pending++
	return r.drain()
}

// OnSequencerDeliver implements core.GlobalOrdering.
func (r *RefOrderer) OnSequencerDeliver(b *types.Block) []*types.Block {
	for _, ref := range b.Refs {
		if !r.ordered[ref] {
			r.ordered[ref] = true
			r.queue = append(r.queue, ref)
		}
	}
	return r.drain()
}

func (r *RefOrderer) drain() []*types.Block {
	var out []*types.Block
	for len(r.queue) > 0 {
		b, ok := r.have[r.queue[0]]
		if !ok {
			break // referenced block not yet delivered locally
		}
		delete(r.have, r.queue[0])
		r.queue = r.queue[1:]
		r.pending--
		out = append(out, b)
	}
	return out
}

// PendingCount implements core.GlobalOrdering.
func (r *RefOrderer) PendingCount() int { return r.pending }
