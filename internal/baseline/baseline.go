// Package baseline provides the Multi-BFT protocol variants the paper
// compares Orthrus against, expressed as core.Mode configurations plus the
// DQBFT dedicated-sequencer global ordering:
//
//   - Mir-BFT: pre-determined round-robin global order; any leader failure
//     triggers an epoch change that stalls every instance.
//   - ISS: pre-determined global order; a faulty instance's gap is filled
//     with no-op blocks so only that instance view-changes.
//   - RCC: pre-determined global order with a lighter recovery than Mir;
//     performance-wise it tracks ISS in this model (and in the paper).
//   - DQBFT: a dedicated SB instance globally orders the blocks delivered
//     by the worker instances.
//   - Ladon: dynamic rank-based global ordering (Orthrus reuses this for
//     its global log while its payments bypass it).
//
// All of them execute every transaction at its global-log position; none
// has Orthrus's partial-order fast path or multi-payer splitting.
//
// To add a protocol, return its core.Mode from a constructor here and
// list it in AllModes: every sweep, scenario suite, example and CLI flag
// picks it up from there (see ARCHITECTURE.md's extension seams).
package baseline

import (
	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/types"
)

// ISSMode returns ISS: predetermined ordering with no-op gap filling.
func ISSMode() core.Mode {
	return core.Mode{
		Name:               "ISS",
		NewGlobal:          func(m int) core.GlobalOrdering { return core.WorkerOrdering{Ord: order.NewPredetermined(m)} },
		StrictEpochBarrier: true,
	}
}

// MirMode returns Mir-BFT: predetermined ordering; view changes stall all
// instances (epoch change), making it the most straggler/fault sensitive.
func MirMode() core.Mode {
	return core.Mode{
		Name:                   "Mir",
		NewGlobal:              func(m int) core.GlobalOrdering { return core.WorkerOrdering{Ord: order.NewPredetermined(m)} },
		StrictEpochBarrier:     true,
		EpochStallOnViewChange: true,
	}
}

// RCCMode returns RCC: predetermined ordering with concurrent recovery.
func RCCMode() core.Mode {
	return core.Mode{
		Name:               "RCC",
		NewGlobal:          func(m int) core.GlobalOrdering { return core.WorkerOrdering{Ord: order.NewPredetermined(m)} },
		StrictEpochBarrier: true,
	}
}

// LadonMode returns Ladon: dynamic rank-based global ordering for all
// transactions (no payment fast path).
func LadonMode() core.Mode {
	return core.Mode{
		Name:      "Ladon",
		NewGlobal: func(m int) core.GlobalOrdering { return core.WorkerOrdering{Ord: order.NewDynamic(m)} },
	}
}

// DQBFTMode returns DQBFT: worker blocks are globally ordered by reference
// blocks decided on a dedicated sequencer SB instance.
func DQBFTMode() core.Mode {
	return core.Mode{
		Name:      "DQBFT",
		NewGlobal: func(m int) core.GlobalOrdering { return NewRefOrderer() },
		Sequencer: true,
	}
}

// AllModes returns every protocol, Orthrus first — the order used in the
// paper's figures.
func AllModes() []core.Mode {
	return []core.Mode{
		core.OrthrusMode(),
		ISSMode(),
		RCCMode(),
		MirMode(),
		DQBFTMode(),
		LadonMode(),
	}
}

// ModeByName resolves a protocol name (case-sensitive, as printed).
func ModeByName(name string) (core.Mode, bool) {
	for _, m := range AllModes() {
		if m.Name == name {
			return m, true
		}
	}
	return core.Mode{}, false
}

// RefOrderer implements DQBFT's global ordering: the sequencer instance
// decides the order of worker blocks by reference; a referenced block is
// confirmed once it has been delivered locally and every earlier reference
// has been confirmed.
type RefOrderer struct {
	// have holds locally delivered worker blocks not yet confirmed.
	have map[types.BlockRef]*types.Block
	// ordered dedups references across sequencer blocks.
	ordered map[types.BlockRef]bool
	// queue is the sequencer-decided confirmation order still waiting for
	// local delivery of its head.
	queue   []types.BlockRef
	pending int
}

// NewRefOrderer creates an empty DQBFT orderer.
func NewRefOrderer() *RefOrderer {
	return &RefOrderer{
		have:    make(map[types.BlockRef]*types.Block),
		ordered: make(map[types.BlockRef]bool),
	}
}

// OnWorkerDeliver implements core.GlobalOrdering.
func (r *RefOrderer) OnWorkerDeliver(b *types.Block) []*types.Block {
	r.have[types.BlockRef{Instance: b.Instance, SN: b.SN}] = b
	r.pending++
	return r.drain()
}

// OnSequencerDeliver implements core.GlobalOrdering.
func (r *RefOrderer) OnSequencerDeliver(b *types.Block) []*types.Block {
	for _, ref := range b.Refs {
		if !r.ordered[ref] {
			r.ordered[ref] = true
			r.queue = append(r.queue, ref)
		}
	}
	return r.drain()
}

func (r *RefOrderer) drain() []*types.Block {
	var out []*types.Block
	for len(r.queue) > 0 {
		b, ok := r.have[r.queue[0]]
		if !ok {
			break // referenced block not yet delivered locally
		}
		delete(r.have, r.queue[0])
		r.queue = r.queue[1:]
		r.pending--
		out = append(out, b)
	}
	return out
}

// PendingCount implements core.GlobalOrdering.
func (r *RefOrderer) PendingCount() int { return r.pending }
