// Package registry is the protocol extension seam: a named registry of
// core.Mode constructors that the public orthrus SDK, the experiment
// figures and the CLIs all resolve protocols through. Protocol packages
// register themselves at init time — this package registers Orthrus, and
// package baseline registers the five comparison protocols — so a new
// protocol plugs into every sweep, scenario suite, example and CLI flag
// without touching cluster or experiments code.
//
// Registration and lookup errors are typed: errors.Is(err, ErrDuplicate)
// and errors.Is(err, ErrUnknown) let callers distinguish the two failure
// shapes without string matching.
package registry

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// Protocol is one registered protocol: a unique name (as printed in
// figures and accepted by CLI flags, case-sensitive), a one-line
// description for listings, and a constructor returning a fresh core.Mode.
// The constructor is called once per experiment run — modes carry closures
// over per-run ordering state, so they must not be shared between runs.
type Protocol struct {
	Name        string
	Description string
	New         func() core.Mode
}

// Sentinel errors for the two registry failure shapes; returned errors
// wrap these, so match with errors.Is.
var (
	// ErrDuplicate reports a Register call whose name is already taken.
	ErrDuplicate = errors.New("protocol already registered")
	// ErrUnknown reports a Lookup of a name nobody registered.
	ErrUnknown = errors.New("unknown protocol")
)

// Registry is an ordered, concurrency-safe protocol table. The zero value
// is not usable; call NewRegistry. Most callers use the package-level
// Default registry.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Protocol
	order  []string
}

// NewRegistry creates an empty registry (tests use isolated instances;
// everything else shares Default).
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Protocol)}
}

// Register adds a protocol. It rejects an empty name, a nil constructor,
// and a name already registered (ErrDuplicate).
func (r *Registry) Register(p Protocol) error {
	if p.Name == "" {
		return fmt.Errorf("registry: protocol has empty name")
	}
	if p.New == nil {
		return fmt.Errorf("registry: protocol %q has nil constructor", p.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[p.Name]; ok {
		return fmt.Errorf("registry: %w: %q", ErrDuplicate, p.Name)
	}
	r.byName[p.Name] = p
	r.order = append(r.order, p.Name)
	return nil
}

// Lookup resolves a protocol by name; the error wraps ErrUnknown and names
// the registered protocols.
func (r *Registry) Lookup(name string) (Protocol, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.byName[name]
	if !ok {
		return Protocol{}, fmt.Errorf("registry: %w %q (registered: %v)", ErrUnknown, name, r.order)
	}
	return p, nil
}

// All returns every protocol in registration order (Orthrus first, then
// the baselines — the order the paper's figures use).
func (r *Registry) All() []Protocol {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Protocol, len(r.order))
	for i, name := range r.order {
		out[i] = r.byName[name]
	}
	return out
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Default is the process-wide registry protocol packages register into at
// init time.
var Default = NewRegistry()

// Register adds a protocol to the Default registry.
func Register(p Protocol) error { return Default.Register(p) }

// MustRegister is Register panicking on error — for init-time registration
// of compiled-in protocols, where a failure is a programming bug.
func MustRegister(p Protocol) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// Lookup resolves a name in the Default registry.
func Lookup(name string) (Protocol, error) { return Default.Lookup(name) }

// All lists the Default registry in registration order.
func All() []Protocol { return Default.All() }

// Names lists the Default registry's names in registration order.
func Names() []string { return Default.Names() }

// Orthrus registers itself: it is the protocol under test, so it is always
// present and always first.
func init() {
	MustRegister(Protocol{
		Name:        "Orthrus",
		Description: "dynamic rank-based global ordering; payments bypass it via the escrow fast path; multi-payer transactions split across instances",
		New:         core.OrthrusMode,
	})
}
