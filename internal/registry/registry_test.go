package registry

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

func testProto(name string) Protocol {
	return Protocol{Name: name, Description: name + " test protocol", New: core.OrthrusMode}
}

func TestRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(testProto("A")); err != nil {
		t.Fatal(err)
	}
	p, err := r.Lookup("A")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "A" || p.New().Name != "Orthrus" {
		t.Fatalf("lookup returned %+v", p)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(testProto("A")); err != nil {
		t.Fatal(err)
	}
	err := r.Register(testProto("A"))
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
	// The failed registration must not disturb the table.
	if got := r.Names(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("names after duplicate = %v", got)
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Protocol{Name: "", New: core.OrthrusMode}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Register(Protocol{Name: "X"}); err == nil {
		t.Fatal("nil constructor accepted")
	}
}

func TestLookupUnknown(t *testing.T) {
	r := NewRegistry()
	_ = r.Register(testProto("A"))
	_, err := r.Lookup("B")
	if !errors.Is(err, ErrUnknown) {
		t.Fatalf("want ErrUnknown, got %v", err)
	}
	// The error must name what is registered, so CLI users see their options.
	if !strings.Contains(err.Error(), "A") {
		t.Fatalf("error does not list registered protocols: %v", err)
	}
}

func TestAllPreservesRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"C", "A", "B"} {
		if err := r.Register(testProto(name)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for _, p := range r.All() {
		got = append(got, p.Name)
	}
	want := []string{"C", "A", "B"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("All() order = %v, want %v", got, want)
		}
	}
}

func TestDefaultHasOrthrusFirst(t *testing.T) {
	names := Names()
	if len(names) == 0 || names[0] != "Orthrus" {
		t.Fatalf("default registry names = %v, want Orthrus first", names)
	}
	p, err := Lookup("Orthrus")
	if err != nil {
		t.Fatal(err)
	}
	mode := p.New()
	if !mode.FastPathPayments || !mode.SplitMultiPayer {
		t.Fatalf("registered Orthrus mode lost its flags: %+v", mode)
	}
}
