package sb

import (
	"testing"
	"time"

	"repro/internal/pbft"
	"repro/internal/simnet"
	"repro/internal/types"
)

func mkBlock(instance int, sn uint64, ntx int) *types.Block {
	b := &types.Block{Instance: instance, SN: sn}
	for j := 0; j < ntx; j++ {
		b.Txs = append(b.Txs, *types.NewPayment("alice", "bob", 1, sn*1000+uint64(j)))
	}
	return b
}

func TestAnalyticDeliversInOrderToAll(t *testing.T) {
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, 4, simnet.FixedModel{D: 10 * time.Millisecond})
	inst := NewInstance(Config{N: 4, F: 1, Instance: 0}, sim, nw)
	got := make([][]uint64, 4)
	ports := make([]*Port, 4)
	for i := 0; i < 4; i++ {
		i := i
		ports[i] = inst.Port(i, func(b *types.Block) { got[i] = append(got[i], b.SN) })
	}
	for sn := uint64(0); sn < 3; sn++ {
		if err := ports[0].Propose(mkBlock(0, sn, 2)); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunAll(0)
	for i, seq := range got {
		if len(seq) != 3 {
			t.Fatalf("replica %d delivered %d", i, len(seq))
		}
		for sn, v := range seq {
			if v != uint64(sn) {
				t.Fatalf("replica %d out of order: %v", i, seq)
			}
		}
	}
}

func TestAnalyticOnlyLeaderProposes(t *testing.T) {
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, 4, simnet.FixedModel{D: time.Millisecond})
	inst := NewInstance(Config{N: 4, F: 1, Instance: 2}, sim, nw)
	p0 := inst.Port(0, func(*types.Block) {})
	p2 := inst.Port(2, func(*types.Block) {})
	if p0.IsLeader() || !p2.IsLeader() {
		t.Fatal("instance 2 must be led by replica 2")
	}
	if err := p0.Propose(mkBlock(2, 0, 0)); err == nil {
		t.Fatal("non-leader proposal accepted")
	}
	if err := p2.Propose(mkBlock(2, 0, 0)); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyticWindowBackpressure(t *testing.T) {
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, 4, simnet.FixedModel{D: time.Millisecond})
	inst := NewInstance(Config{N: 4, F: 1, Instance: 0, Window: 2}, sim, nw)
	var p *Port
	for i := 0; i < 4; i++ {
		port := inst.Port(i, func(*types.Block) {})
		if i == 0 {
			p = port
		}
	}
	if err := p.Propose(mkBlock(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Propose(mkBlock(0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if p.CanPropose() {
		t.Fatal("window overrun allowed")
	}
	sim.RunAll(0)
	if !p.CanPropose() {
		t.Fatal("window did not drain after delivery")
	}
}

// TestAnalyticMatchesMessageLevelPBFT is the validation experiment promised
// in DESIGN.md: with the same deterministic latency model, the analytic
// delivery times must equal message-level PBFT's delivery times exactly.
func TestAnalyticMatchesMessageLevelPBFT(t *testing.T) {
	const n, f = 7, 2
	model := simnet.FixedModel{D: 15 * time.Millisecond}

	// Message-level PBFT run.
	simA := simnet.New(1)
	nwA := simnet.NewNetwork(simA, n, model)
	pbftTimes := make([]simnet.Time, 0, n)
	engines := make([]*pbft.Engine, n)
	for i := 0; i < n; i++ {
		i := i
		cfg := pbft.Config{N: n, F: f, ID: i, Instance: 0, Timeout: time.Hour,
			OnDeliver: func(b *types.Block) { pbftTimes = append(pbftTimes, simA.Now()) }}
		engines[i] = pbft.New(cfg, &loopTransport{nw: nwA, id: i}, simnet.On(simA, i))
		nwA.Register(i, func(from int, msg any) { engines[i].Handle(from, msg.(pbft.Message)) })
	}
	if err := engines[0].Propose(mkBlock(0, 0, 3)); err != nil {
		t.Fatal(err)
	}
	simA.RunAll(0)
	if len(pbftTimes) != n {
		t.Fatalf("pbft delivered at %d replicas", len(pbftTimes))
	}

	// Analytic run over an identical network.
	simB := simnet.New(1)
	nwB := simnet.NewNetwork(simB, n, model)
	inst := NewInstance(Config{N: n, F: f, Instance: 0}, simB, nwB)
	anaTimes := make([]simnet.Time, 0, n)
	var leader *Port
	for i := 0; i < n; i++ {
		port := inst.Port(i, func(b *types.Block) { anaTimes = append(anaTimes, simB.Now()) })
		if i == 0 {
			leader = port
		}
	}
	if err := leader.Propose(mkBlock(0, 0, 3)); err != nil {
		t.Fatal(err)
	}
	simB.RunAll(0)
	if len(anaTimes) != n {
		t.Fatalf("analytic delivered at %d replicas", len(anaTimes))
	}

	// With a uniform fixed delay all replicas deliver at the same time in
	// both systems; compare the full sorted vectors.
	for i := range pbftTimes {
		if pbftTimes[i] != anaTimes[i] {
			t.Fatalf("delivery %d: pbft %v vs analytic %v", i, pbftTimes[i], anaTimes[i])
		}
	}
}

// TestAnalyticMatchesPBFTOnWAN compares delivery times under the real WAN
// matrix (jitter disabled for exact comparison).
func TestAnalyticMatchesPBFTOnWAN(t *testing.T) {
	const n, f = 8, 2
	wan := simnet.NewWAN()
	wan.JitterFrac = 0 // deterministic for exact comparison

	simA := simnet.New(1)
	nwA := simnet.NewNetwork(simA, n, wan)
	pbftTimes := make(map[int]simnet.Time, n)
	engines := make([]*pbft.Engine, n)
	for i := 0; i < n; i++ {
		i := i
		cfg := pbft.Config{N: n, F: f, ID: i, Instance: 0, Timeout: time.Hour,
			OnDeliver: func(b *types.Block) { pbftTimes[i] = simA.Now() }}
		engines[i] = pbft.New(cfg, &loopTransport{nw: nwA, id: i}, simnet.On(simA, i))
		nwA.Register(i, func(from int, msg any) { engines[i].Handle(from, msg.(pbft.Message)) })
	}
	if err := engines[0].Propose(mkBlock(0, 0, 4)); err != nil {
		t.Fatal(err)
	}
	simA.RunAll(0)

	simB := simnet.New(1)
	nwB := simnet.NewNetwork(simB, n, wan)
	inst := NewInstance(Config{N: n, F: f, Instance: 0}, simB, nwB)
	anaTimes := make(map[int]simnet.Time, n)
	var leader *Port
	for i := 0; i < n; i++ {
		i := i
		port := inst.Port(i, func(b *types.Block) { anaTimes[i] = simB.Now() })
		if i == 0 {
			leader = port
		}
	}
	if err := leader.Propose(mkBlock(0, 0, 4)); err != nil {
		t.Fatal(err)
	}
	simB.RunAll(0)

	for i := 0; i < n; i++ {
		if pbftTimes[i] != anaTimes[i] {
			t.Fatalf("replica %d: pbft %v vs analytic %v", i, pbftTimes[i], anaTimes[i])
		}
	}
}

func TestAnalyticStragglerSlowsOwnInstanceOnly(t *testing.T) {
	const n, f = 4, 1
	model := simnet.FixedModel{D: 10 * time.Millisecond}
	run := func(straggle bool) simnet.Time {
		sim := simnet.New(1)
		nw := simnet.NewNetwork(sim, n, model)
		if straggle {
			nw.SetOutScale(0, 10)
		}
		inst := NewInstance(Config{N: n, F: f, Instance: 0}, sim, nw)
		var last simnet.Time
		var leader *Port
		for i := 0; i < n; i++ {
			port := inst.Port(i, func(b *types.Block) { last = sim.Now() })
			if i == 0 {
				leader = port
			}
		}
		if err := leader.Propose(mkBlock(0, 0, 1)); err != nil {
			t.Fatal(err)
		}
		sim.RunAll(0)
		return last
	}
	normal, slow := run(false), run(true)
	if slow <= normal {
		t.Fatalf("straggler leader did not slow delivery: %v vs %v", slow, normal)
	}
}

func TestAnalyticStoppedPortDoesNotDeliver(t *testing.T) {
	sim := simnet.New(1)
	nw := simnet.NewNetwork(sim, 4, simnet.FixedModel{D: time.Millisecond})
	inst := NewInstance(Config{N: 4, F: 1, Instance: 0}, sim, nw)
	count := 0
	var leader *Port
	var victim *Port
	for i := 0; i < 4; i++ {
		port := inst.Port(i, func(b *types.Block) { count++ })
		switch i {
		case 0:
			leader = port
		case 3:
			victim = port
		}
	}
	victim.Stop()
	if err := leader.Propose(mkBlock(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	sim.RunAll(0)
	if count != 3 {
		t.Fatalf("delivered to %d replicas, want 3 (one stopped)", count)
	}
}

// loopTransport adapts simnet to pbft.Transport for the comparison tests.
type loopTransport struct {
	nw *simnet.Network
	id int
}

func (t *loopTransport) Broadcast(size int, msg pbft.Message) { t.nw.Broadcast(t.id, size, msg) }
func (t *loopTransport) Send(to, size int, msg pbft.Message)  { t.nw.Send(t.id, to, size, msg) }
