// Package sb provides an analytic sequenced-broadcast implementation: a
// drop-in replacement for message-level PBFT that computes each replica's
// delivery time for a block in closed form from the network's deterministic
// latency matrix, instead of simulating the O(n^2) prepare/commit traffic.
//
// Why: a figure-3 style sweep runs 6 protocols x {8..128} replicas with
// m = n instances; at n = 128 each block costs ~33k message events, which
// makes message-level simulation infeasible on a laptop. The analytic model
// schedules exactly n delivery events per block while reproducing PBFT's
// timing: pre-prepare dissemination, a 2f+1 prepare quorum, and a 2f+1
// commit quorum, all over the same latency matrix (including straggler
// out-scaling). It is validated against the message-level engine in
// analytic_test.go.
//
// Limitations (by design): no view changes and no Byzantine behavior — the
// large-scale experiments that use it (Figs. 3 and 4) run fault-free with
// at most a straggler, which is slow but correct. Fault experiments
// (Figs. 7 and 8) use message-level PBFT at n = 16.
package sb

import (
	"fmt"
	"slices"

	"repro/internal/simnet"
	"repro/internal/types"
)

// Config parameterizes one analytic SB instance (shared by all replicas).
type Config struct {
	N        int // replicas
	F        int // fault threshold
	Instance int // SB instance index
	Window   int // pipelined proposals
	TxSize   int // modeled per-transaction wire size
	CtrlSize int // vote message size
	// BlockOverhead is the fixed per-block wire overhead.
	BlockOverhead int
}

// Instance is the shared state of one analytic SB instance. Each replica
// holds a *Port into it; the leader's port proposes, every port delivers.
type Instance struct {
	cfg    Config
	sim    *simnet.Sim
	nw     *simnet.Network
	leader int
	nextSN uint64

	ports       []*Port
	lastDeliver []simnet.Time // per replica, to enforce in-order delivery

	// Scratch buffers reused across proposals.
	arrive    []simnet.Time
	prepared  []simnet.Time
	committed []simnet.Time
	tmp       []simnet.Time

	// quorumCache memoizes the per-replica commit-time offsets by block
	// size: the closed form is a pure function of (blockSize, latency
	// matrix, straggler out-scales), and a steady-state run proposes
	// thousands of same-sized blocks (empty pulses above all). Hitting the
	// cache turns a proposal from O(n^2 log n) into O(n) — the difference
	// between minutes and seconds for the n = 100 F-scale cells. Entries
	// snapshot the out-scale vector and are re-derived when it changes;
	// the cache resets when it reaches quorumCacheMax distinct sizes.
	quorumCache map[int]*quorumTimes
}

// quorumTimes is one memoized closed-form solution: per-replica commit
// offsets from the proposal time, valid for the captured out-scales.
type quorumTimes struct {
	committedOff []simnet.Time
	outScale     []float64
}

// quorumCacheMax bounds the number of distinct block sizes memoized per
// instance (a few KB each at n = 128); beyond it the cache resets.
const quorumCacheMax = 256

// NewInstance creates the shared instance. The initial (and, in this
// implementation, permanent) leader of instance i is replica i mod n.
func NewInstance(cfg Config, sim *simnet.Sim, nw *simnet.Network) *Instance {
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.TxSize <= 0 {
		cfg.TxSize = 500
	}
	if cfg.CtrlSize <= 0 {
		cfg.CtrlSize = 96
	}
	if cfg.BlockOverhead <= 0 {
		cfg.BlockOverhead = 160
	}
	inst := &Instance{
		cfg:         cfg,
		sim:         sim,
		nw:          nw,
		leader:      cfg.Instance % cfg.N,
		ports:       make([]*Port, cfg.N),
		lastDeliver: make([]simnet.Time, cfg.N),
		arrive:      make([]simnet.Time, cfg.N),
		prepared:    make([]simnet.Time, cfg.N),
		committed:   make([]simnet.Time, cfg.N),
		tmp:         make([]simnet.Time, cfg.N),
	}
	for i := range inst.ports {
		inst.ports[i] = &Port{inst: inst, id: i}
	}
	return inst
}

// Port returns replica id's view of the instance. The caller installs the
// delivery callback before the first proposal.
func (inst *Instance) Port(id int, deliver func(*types.Block)) *Port {
	p := inst.ports[id]
	p.deliver = deliver
	return p
}

// propose computes per-replica delivery times for a block proposed now and
// schedules the delivery events. The closed form is memoized per block
// size (see quorumCache).
func (inst *Instance) propose(b *types.Block) {
	n := inst.cfg.N
	blockSize := inst.cfg.BlockOverhead + len(b.Txs)*inst.cfg.TxSize
	ctrl := inst.cfg.CtrlSize
	t0 := inst.sim.Now()
	qt := inst.quorumTimesFor(blockSize)
	// Schedule in-order deliveries (closure-free call events: n per block).
	for j := 0; j < n; j++ {
		at := t0 + qt.committedOff[j]
		if at <= inst.lastDeliver[j] {
			at = inst.lastDeliver[j] + 1
		}
		inst.lastDeliver[j] = at
		inst.sim.CallAt(at, portDeliver, inst.ports[j], b)
	}
	// Fold the traffic the closed form replaced into the network's message
	// statistics: one pre-prepare broadcast (n messages of the block) plus
	// n prepare and n commit broadcasts (n^2 control messages each), the
	// same counts the message-level engine would deliver fault-free.
	un := uint64(n)
	inst.nw.AddModeled(2*un*un+un, un*uint64(blockSize)+2*un*un*uint64(ctrl))
}

// quorumTimesFor returns the memoized commit-time offsets for a block of
// the given wire size, recomputing when the size is new or any straggler
// out-scale changed since the entry was derived.
func (inst *Instance) quorumTimesFor(blockSize int) *quorumTimes {
	n := inst.cfg.N
	if qt, ok := inst.quorumCache[blockSize]; ok {
		fresh := true
		for i := 0; i < n; i++ {
			if qt.outScale[i] != inst.nw.OutScale(i) {
				fresh = false
				break
			}
		}
		if fresh {
			return qt
		}
	}
	// Quorum ceil((n+f+1)/2), matching pbft.Config.Quorum: 2f+1 at the
	// paper's n = 3f+1 sizes, strictly honest-intersecting elsewhere.
	f := inst.cfg.F
	quorum := (n + f + 2) / 2
	ctrl := inst.cfg.CtrlSize
	// Pre-prepare dissemination from the leader (offsets from propose
	// time; BaseDelay is deterministic so offsets are time-invariant).
	for i := 0; i < n; i++ {
		inst.arrive[i] = simnet.Time(inst.nw.BaseDelay(inst.leader, i, blockSize))
	}
	// Prepared at j: pre-prepare arrived and a quorum of prepares arrived.
	// Replica i broadcasts its prepare the moment the pre-prepare reaches
	// it; the vote from i reaches j after the (i,j) control delay.
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			inst.tmp[i] = inst.arrive[i] + simnet.Time(inst.nw.BaseDelay(i, j, ctrl))
		}
		slices.Sort(inst.tmp)
		p := inst.tmp[quorum-1]
		if inst.arrive[j] > p {
			p = inst.arrive[j]
		}
		inst.prepared[j] = p
	}
	// Committed at j: prepared and a quorum of commits arrived; replica i
	// broadcasts its commit the moment it is prepared.
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			inst.tmp[i] = inst.prepared[i] + simnet.Time(inst.nw.BaseDelay(i, j, ctrl))
		}
		slices.Sort(inst.tmp)
		c := inst.tmp[quorum-1]
		if inst.prepared[j] > c {
			c = inst.prepared[j]
		}
		inst.committed[j] = c
	}
	qt := &quorumTimes{
		committedOff: append([]simnet.Time(nil), inst.committed[:n]...),
		outScale:     make([]float64, n),
	}
	for i := 0; i < n; i++ {
		qt.outScale[i] = inst.nw.OutScale(i)
	}
	if inst.quorumCache == nil || len(inst.quorumCache) >= quorumCacheMax {
		inst.quorumCache = make(map[int]*quorumTimes, 64)
	}
	inst.quorumCache[blockSize] = qt
	return qt
}

// portDeliver lands one analytic delivery at a replica's port (top-level
// so CallAt schedules it without a closure allocation).
func portDeliver(a, b any) {
	port := a.(*Port)
	if port.stopped || port.deliver == nil {
		return
	}
	port.delivered++
	port.deliver(b.(*types.Block))
}

// Port is one replica's handle on an analytic SB instance; it implements
// the core.SB interface structurally.
type Port struct {
	inst      *Instance
	id        int
	deliver   func(*types.Block)
	delivered uint64
	stopped   bool
}

// CanPropose implements core.SB.
func (p *Port) CanPropose() bool {
	return !p.stopped && p.id == p.inst.leader &&
		int(p.inst.nextSN-p.delivered) < p.inst.cfg.Window
}

// NextProposeSeq implements core.SB.
func (p *Port) NextProposeSeq() uint64 { return p.inst.nextSN }

// Propose implements core.SB.
func (p *Port) Propose(b *types.Block) error {
	if !p.CanPropose() {
		return fmt.Errorf("sb: replica %d cannot propose on instance %d", p.id, p.inst.cfg.Instance)
	}
	if b.SN != p.inst.nextSN {
		return fmt.Errorf("sb: proposal SN %d != next %d", b.SN, p.inst.nextSN)
	}
	p.inst.nextSN++
	p.inst.propose(b)
	return nil
}

// SetTarget implements core.SB. The analytic instance has no failure
// detector (it is used only in fault-free large-scale runs), so this is a
// no-op.
func (p *Port) SetTarget(uint64) {}

// IsLeader implements core.SB.
func (p *Port) IsLeader() bool { return p.id == p.inst.leader }

// Leader implements core.SB.
func (p *Port) Leader() int { return p.inst.leader }

// View implements core.SB: the analytic instance never changes views.
func (p *Port) View() uint64 { return 0 }

// Stop implements core.SB.
func (p *Port) Stop() { p.stopped = true }
