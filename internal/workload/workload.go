// Package workload generates the synthetic transaction stream that stands
// in for the paper's Ethereum trace (200,000 transactions from blocks
// 17,198,000-17,202,000 over 18,000 active accounts, 46% of which are
// payment transactions). The generator reproduces the properties Orthrus is
// sensitive to: the account count, the payment/contract mix, a Zipf
// popularity skew over accounts (heavy-hitter senders, as on Ethereum), a
// configurable multi-payer fraction, and contract calls touching a pool of
// shared records.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/ledger"
	"repro/internal/types"
)

// Config parameterizes the generator. The zero value is completed with the
// paper's defaults by New.
type Config struct {
	Accounts      int // number of active accounts (paper: 18,000)
	SharedRecords int // shared contract records
	// PaymentFraction is the fraction of payment transactions. Zero selects
	// the paper's default 0.46; pass a negative value for an explicit 0%
	// (all-contract) workload, as in the Fig. 5 sweep's left edge.
	PaymentFraction float64
	// MultiPayerFraction is the fraction of payments with two payers,
	// exercising cross-instance atomicity.
	MultiPayerFraction float64
	// ContractCallers is the number of fee-paying callers per contract tx.
	ContractCallers int
	// ZipfS > 1 skews account popularity (s -> 1 is most skewed allowed).
	ZipfS float64
	// MaxAmount bounds transfer amounts (drawn uniformly in [1, MaxAmount]).
	MaxAmount types.Amount
	// InitialBalance is each account's genesis balance. It is deliberately
	// large relative to MaxAmount so honest traffic never overdrafts, like
	// the paper's reset-and-replay methodology.
	InitialBalance types.Amount
	Seed           int64
}

func (c Config) withDefaults() Config {
	if c.Accounts <= 0 {
		c.Accounts = 18000
	}
	if c.SharedRecords <= 0 {
		c.SharedRecords = 256
	}
	if c.PaymentFraction == 0 {
		c.PaymentFraction = 0.46
	}
	if c.MultiPayerFraction == 0 {
		c.MultiPayerFraction = 0.05
	}
	if c.ContractCallers <= 0 {
		c.ContractCallers = 1
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if c.MaxAmount <= 0 {
		c.MaxAmount = 100
	}
	if c.InitialBalance <= 0 {
		c.InitialBalance = 1_000_000
	}
	return c
}

// Generator produces a deterministic transaction stream.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	zipf  *rand.Zipf
	nonce uint64
	// accounts and records cache rendered key strings by index (lazily
	// filled): key construction is on the per-transaction hot path.
	accounts []types.Key
	records  []types.Key
}

// New creates a generator; unset Config fields take the paper's defaults.
func New(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Generator{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Accounts-1)),
	}
}

// Config returns the effective configuration after defaulting.
func (g *Generator) Config() Config { return g.cfg }

// Account returns the key of account i.
func Account(i int) types.Key { return paddedKey("acct-", i, 6) }

// Record returns the key of shared record i.
func Record(i int) types.Key { return paddedKey("record-", i, 4) }

// paddedKey renders prefix + zero-padded decimal i (width digits minimum)
// without fmt — key construction sits on the workload generator's hot
// path, and Sprintf costs several allocations per call.
func paddedKey(prefix string, i, width int) types.Key {
	if i < 0 { // negative indices never occur; fall back for safety
		return types.Key(fmt.Sprintf("%s%0*d", prefix, width, i))
	}
	buf := make([]byte, 0, len(prefix)+width+20)
	buf = append(buf, prefix...)
	start := len(buf)
	buf = strconv.AppendInt(buf, int64(i), 10)
	if pad := width - (len(buf) - start); pad > 0 {
		const zeros = "00000000000000000000"
		buf = append(buf, zeros[:pad]...)
		copy(buf[start+pad:], buf[start:]) // shift digits right (overlap-safe)
		copy(buf[start:], zeros[:pad])
	}
	return types.Key(buf)
}

// Genesis returns the ledger initializer matching the generator's
// accounts. It warms the generator's key caches, so every key string is
// rendered exactly once per generator and shared by all the stores the
// closure initializes (one per replica).
func (g *Generator) Genesis() func(st *ledger.Store) {
	cfg := g.cfg
	accounts := make([]types.Key, cfg.Accounts)
	for i := range accounts {
		accounts[i] = g.accountKey(i)
	}
	records := make([]types.Key, cfg.SharedRecords)
	for i := range records {
		records[i] = g.recordKey(i)
	}
	return func(st *ledger.Store) {
		for _, k := range accounts {
			st.Credit(k, cfg.InitialBalance)
		}
		for _, k := range records {
			st.SetShared(k, 0)
		}
	}
}

// accountKey returns Account(i) through the generator's lazily filled
// cache: the generator draws the same few thousand keys for the whole
// run, and rendering one costs an allocation.
func (g *Generator) accountKey(i int) types.Key {
	if g.accounts == nil {
		g.accounts = make([]types.Key, g.cfg.Accounts)
	}
	if k := g.accounts[i]; k != "" {
		return k
	}
	k := Account(i)
	g.accounts[i] = k
	return k
}

// recordKey is accountKey for shared records.
func (g *Generator) recordKey(i int) types.Key {
	if g.records == nil {
		g.records = make([]types.Key, g.cfg.SharedRecords)
	}
	if k := g.records[i]; k != "" {
		return k
	}
	k := Record(i)
	g.records[i] = k
	return k
}

func (g *Generator) pickAccount() types.Key { return g.accountKey(int(g.zipf.Uint64())) }

func (g *Generator) pickOther(not types.Key) types.Key {
	for i := 0; i < 100; i++ {
		k := g.pickAccount()
		if k != not {
			return k
		}
	}
	// Degenerate skew: fall back to a uniform draw.
	for {
		k := g.accountKey(g.rng.Intn(g.cfg.Accounts))
		if k != not {
			return k
		}
	}
}

func (g *Generator) amount() types.Amount {
	return types.Amount(g.rng.Int63n(int64(g.cfg.MaxAmount))) + 1
}

// Next produces the next transaction of the stream.
func (g *Generator) Next() *types.Transaction {
	g.nonce++
	if g.rng.Float64() < g.cfg.PaymentFraction {
		return g.nextPayment()
	}
	return g.nextContract()
}

func (g *Generator) nextPayment() *types.Transaction {
	payer := g.pickAccount()
	payee := g.pickOther(payer)
	if g.rng.Float64() < g.cfg.MultiPayerFraction {
		payer2 := g.pickOther(payer)
		return types.NewMultiPayment(payer, []types.Transfer{
			{From: payer, To: payee, Amount: g.amount()},
			{From: payer2, To: payee, Amount: g.amount()},
		}, g.nonce)
	}
	return types.NewPayment(payer, payee, g.amount(), g.nonce)
}

func (g *Generator) nextContract() *types.Transaction {
	caller := g.pickAccount()
	callers := []types.Key{caller}
	for len(callers) < g.cfg.ContractCallers {
		callers = append(callers, g.pickOther(caller))
	}
	rec := g.recordKey(g.rng.Intn(g.cfg.SharedRecords))
	ops := []types.Op{types.NewSharedAssign(rec, g.amount())}
	if g.rng.Intn(2) == 0 {
		ops = append(ops, types.NewSharedRead(g.recordKey(g.rng.Intn(g.cfg.SharedRecords))))
	}
	return types.NewContractCall(caller, callers, 1, ops, g.nonce)
}

// Batch produces the next n transactions.
func (g *Generator) Batch(n int) []*types.Transaction {
	out := make([]*types.Transaction, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
