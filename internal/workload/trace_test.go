package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ledger"
	"repro/internal/types"
)

func TestTraceRoundTrip(t *testing.T) {
	txs := []*types.Transaction{
		types.NewPayment("alice", "bob", 10, 1),
		types.NewMultiPayment("alice", []types.Transfer{
			{From: "alice", To: "carol", Amount: 3},
			{From: "bob", To: "carol", Amount: 4},
		}, 2),
		types.NewContractCall("dave", []types.Key{"dave"}, 2,
			[]types.Op{types.NewSharedAssign("rec", 99)}, 3),
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, txs); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("trace len %d", tr.Len())
	}
	// Structural equivalence: kinds, payers and amounts survive.
	got0 := tr.Next()
	if got0.Kind() != types.Payment || got0.TotalDebit() != 10 || got0.Payers()[0] != "alice" {
		t.Fatalf("payment mangled: %+v", got0)
	}
	got1 := tr.Next()
	if len(got1.Payers()) != 2 || got1.TotalDebit() != 7 || got1.TotalCredit() != 7 {
		t.Fatalf("multipay mangled: %+v", got1)
	}
	got2 := tr.Next()
	if got2.Kind() != types.Contract || got2.TotalDebit() != 2 {
		t.Fatalf("contract mangled: %+v", got2)
	}
}

func TestTraceWrapAroundFreshNonces(t *testing.T) {
	txs := []*types.Transaction{types.NewPayment("a", "b", 1, 1)}
	tr := NewTrace(txs, 100)
	first := tr.Next()
	second := tr.Next() // wrapped
	if first.ID() == second.ID() {
		t.Fatal("wrapped replay reused the same tx ID")
	}
	if second.TotalDebit() != 1 || second.Payers()[0] != "a" {
		t.Fatal("wrapped clone mangled")
	}
}

func TestTraceGenesisResetsAllAccounts(t *testing.T) {
	txs := []*types.Transaction{
		types.NewPayment("a", "b", 1, 1),
		types.NewContractCall("c", []types.Key{"c"}, 1,
			[]types.Op{types.NewSharedAssign("rec", 5)}, 2),
	}
	tr := NewTrace(txs, 777)
	st := ledger.NewStore()
	tr.Genesis()(st)
	for _, k := range []types.Key{"a", "b", "c"} {
		if st.Balance(k) != 777 {
			t.Fatalf("account %s balance %d", k, st.Balance(k))
		}
	}
	if st.SharedValue("rec") != 0 {
		t.Fatal("record not reset")
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"",                       // empty
		"payment,a,b",            // short line
		"payment,a,b,notanumber", // bad amount
		"payment,a,b,-5",         // negative
		"teleport,a,b,5",         // unknown kind
		"multipay,a,b,c,1",       // short multipay
		"contract,a,rec,1",       // short contract
	}
	for _, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in), 100); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestWriteTraceRejectsExotic(t *testing.T) {
	// Three payers are not representable in the trace format.
	tx := types.NewMultiPayment("a", []types.Transfer{
		{From: "a", To: "z", Amount: 1},
		{From: "b", To: "z", Amount: 1},
		{From: "c", To: "z", Amount: 1},
	}, 1)
	if err := WriteTrace(&bytes.Buffer{}, []*types.Transaction{tx}); err == nil {
		t.Fatal("three-payer tx serialized")
	}
}

func TestGeneratorExportReplay(t *testing.T) {
	g := New(Config{Seed: 5, Accounts: 100, ContractCallers: 1})
	var buf bytes.Buffer
	if err := g.Export(&buf, 200); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 200 {
		t.Fatalf("exported %d", tr.Len())
	}
	payments := 0
	for i := 0; i < 200; i++ {
		tx := tr.Next()
		if err := tx.Validate(); err != nil {
			t.Fatalf("replayed invalid tx: %v", err)
		}
		if tx.Kind() == types.Payment {
			payments++
		}
	}
	if payments < 60 || payments > 130 {
		t.Fatalf("payment mix lost in export: %d/200", payments)
	}
}
