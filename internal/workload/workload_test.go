package workload

import (
	"testing"

	"repro/internal/ledger"
	"repro/internal/types"
)

func TestDefaultsMatchPaper(t *testing.T) {
	g := New(Config{Seed: 1})
	cfg := g.Config()
	if cfg.Accounts != 18000 {
		t.Fatalf("accounts = %d", cfg.Accounts)
	}
	if cfg.PaymentFraction != 0.46 {
		t.Fatalf("payment fraction = %v", cfg.PaymentFraction)
	}
}

func TestPaymentFractionRealized(t *testing.T) {
	g := New(Config{Seed: 7})
	const n = 20000
	payments := 0
	for i := 0; i < n; i++ {
		if g.Next().Kind() == types.Payment {
			payments++
		}
	}
	frac := float64(payments) / n
	if frac < 0.43 || frac > 0.49 {
		t.Fatalf("realized payment fraction %.3f, want ~0.46", frac)
	}
}

func TestExtremePaymentFractions(t *testing.T) {
	gAll := New(Config{Seed: 1, PaymentFraction: 1.0})
	for i := 0; i < 500; i++ {
		if gAll.Next().Kind() != types.Payment {
			t.Fatal("PaymentFraction=1 produced a contract tx")
		}
	}
	gNone := New(Config{Seed: 1, PaymentFraction: -1}) // negative = explicit 0%
	for i := 0; i < 500; i++ {
		if gNone.Next().Kind() != types.Contract {
			t.Fatal("PaymentFraction<0 produced a payment")
		}
	}
}

func TestAllTxsValid(t *testing.T) {
	g := New(Config{Seed: 3, MultiPayerFraction: 0.3, ContractCallers: 2})
	for i := 0; i < 5000; i++ {
		tx := g.Next()
		if err := tx.Validate(); err != nil {
			t.Fatalf("generated invalid tx: %v", err)
		}
	}
}

func TestDeterministicStream(t *testing.T) {
	a := New(Config{Seed: 11})
	b := New(Config{Seed: 11})
	for i := 0; i < 1000; i++ {
		if a.Next().ID() != b.Next().ID() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	c := New(Config{Seed: 12})
	same := 0
	a2 := New(Config{Seed: 11})
	for i := 0; i < 100; i++ {
		if a2.Next().ID() == c.Next().ID() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestZipfSkewPresent(t *testing.T) {
	g := New(Config{Seed: 5})
	counts := map[types.Key]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		tx := g.Next()
		for _, p := range tx.Payers() {
			counts[p]++
		}
	}
	// Account 0 must be far more popular than the median account.
	if counts[Account(0)] < n/100 {
		t.Fatalf("hot account has only %d of %d payer slots; skew missing", counts[Account(0)], n)
	}
	if len(counts) < 100 {
		t.Fatalf("only %d distinct payers; skew too extreme", len(counts))
	}
}

func TestGenesisFundsAllAccounts(t *testing.T) {
	g := New(Config{Seed: 1, Accounts: 50, InitialBalance: 777})
	st := ledger.NewStore()
	g.Genesis()(st)
	for i := 0; i < 50; i++ {
		if st.Balance(Account(i)) != 777 {
			t.Fatalf("account %d balance %d", i, st.Balance(Account(i)))
		}
	}
}

func TestMultiPayerFractionRealized(t *testing.T) {
	g := New(Config{Seed: 9, PaymentFraction: 1.0, MultiPayerFraction: 0.5})
	multi := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if len(g.Next().Payers()) == 2 {
			multi++
		}
	}
	frac := float64(multi) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("multi-payer fraction %.3f, want ~0.5", frac)
	}
}

func TestBatch(t *testing.T) {
	g := New(Config{Seed: 2})
	b := g.Batch(17)
	if len(b) != 17 {
		t.Fatalf("batch len %d", len(b))
	}
	seen := map[types.TxID]bool{}
	for _, tx := range b {
		if seen[tx.ID()] {
			t.Fatal("duplicate tx in batch")
		}
		seen[tx.ID()] = true
	}
}

func TestContractsTouchSharedRecords(t *testing.T) {
	g := New(Config{Seed: 4, PaymentFraction: -1})
	for i := 0; i < 200; i++ {
		tx := g.Next()
		hasShared := false
		for _, op := range tx.Ops {
			if op.Type == types.Shared {
				hasShared = true
			}
		}
		if !hasShared {
			t.Fatal("contract tx without shared op")
		}
	}
}
