package workload

// Trace replay: the paper drives its evaluation with ~200k transactions
// extracted from Ethereum blocks 17,198,000-17,202,000, resetting account
// state and re-executing the same trace. This file provides the equivalent
// machinery: a CSV trace format, a reader that replays it, and an exporter
// that snapshots the synthetic generator into a trace so runs are exactly
// repeatable across machines and implementations.
//
// Trace format (one transaction per line):
//
//	payment,<from>,<to>,<amount>
//	multipay,<from1>,<from2>,<to>,<amount1>,<amount2>
//	contract,<caller>,<record>,<fee>,<value>
import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/ledger"
	"repro/internal/types"
)

// Source produces a transaction stream with a matching genesis state; both
// Generator and Trace implement it, so the cluster harness can run either
// synthetic or recorded workloads.
type Source interface {
	Next() *types.Transaction
	Genesis() func(st *ledger.Store)
}

// Trace is a recorded transaction sequence replayed in order. When the
// sequence is exhausted it wraps around with fresh nonces, mirroring the
// paper's repeated re-execution of its 200k-transaction dataset.
type Trace struct {
	txs     []*types.Transaction
	pos     int
	lap     uint64
	balance types.Amount
}

// NewTrace wraps a transaction list into a replayable source; balance is
// the reset value every referenced account starts from.
func NewTrace(txs []*types.Transaction, balance types.Amount) *Trace {
	if balance <= 0 {
		balance = 1_000_000
	}
	return &Trace{txs: txs, balance: balance}
}

// Len returns the number of recorded transactions.
func (t *Trace) Len() int { return len(t.txs) }

// Clone returns an independent replay of the same recorded sequence: a
// fresh cursor and per-run copies of the transactions, so one parsed trace
// can seed many runs — including concurrent ones — without sharing the
// read position or the per-run fields the harness stamps on submitted
// transactions.
func (t *Trace) Clone() *Trace {
	txs := make([]*types.Transaction, len(t.txs))
	for i, tx := range t.txs {
		txs[i] = tx.Clone()
	}
	return &Trace{txs: txs, balance: t.balance}
}

// Next implements Source. Wrapped-around laps get distinct nonces so the
// replayed transactions are new to the dedup layer.
func (t *Trace) Next() *types.Transaction {
	src := t.txs[t.pos]
	t.pos++
	if t.pos == len(t.txs) {
		t.pos = 0
		t.lap++
	}
	if t.lap == 0 {
		return src
	}
	clone := &types.Transaction{
		Ops:    src.Ops,
		Client: src.Client,
		Nonce:  src.Nonce + t.lap*1_000_000_007,
	}
	return clone
}

// Genesis implements Source: every account mentioned anywhere in the trace
// is reset to the configured balance, every shared record to zero.
func (t *Trace) Genesis() func(st *ledger.Store) {
	accounts := map[types.Key]bool{}
	records := map[types.Key]bool{}
	for _, tx := range t.txs {
		accounts[tx.Client] = true
		for _, op := range tx.Ops {
			if op.Type == types.Owned {
				accounts[op.Key] = true
			} else {
				records[op.Key] = true
			}
		}
	}
	balance := t.balance
	return func(st *ledger.Store) {
		for k := range accounts {
			st.Credit(k, balance)
		}
		for k := range records {
			st.SetShared(k, 0)
		}
	}
}

// WriteTrace serializes transactions in the CSV trace format. Only the
// three shapes the paper's workload contains are supported; other
// transactions are rejected.
func WriteTrace(w io.Writer, txs []*types.Transaction) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	for i, tx := range txs {
		rec, err := encodeTraceTx(tx)
		if err != nil {
			return fmt.Errorf("workload: tx %d: %w", i, err)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func encodeTraceTx(tx *types.Transaction) ([]string, error) {
	payers := tx.Payers()
	if tx.Kind() == types.Contract {
		if len(payers) != 1 {
			return nil, fmt.Errorf("contract trace lines support one caller, have %d", len(payers))
		}
		var record types.Key
		var value types.Amount
		for _, op := range tx.Ops {
			if op.Type == types.Shared && op.Kind == types.OpAssign {
				record, value = op.Key, op.Amount
				break
			}
		}
		if record == "" {
			return nil, fmt.Errorf("contract trace lines need a shared assignment")
		}
		return []string{"contract", string(payers[0]), string(record),
			itoa(tx.TotalDebit()), itoa(value)}, nil
	}
	switch len(payers) {
	case 1:
		var to types.Key
		for _, op := range tx.Ops {
			if op.Type == types.Owned && op.Kind == types.OpIncrement {
				to = op.Key
			}
		}
		return []string{"payment", string(payers[0]), string(to), itoa(tx.TotalDebit())}, nil
	case 2:
		var to types.Key
		amounts := map[types.Key]types.Amount{}
		for _, op := range tx.Ops {
			if op.IsPayerOp() {
				amounts[op.Key] = op.Amount
			} else if op.Type == types.Owned && op.Kind == types.OpIncrement {
				to = op.Key
			}
		}
		return []string{"multipay", string(payers[0]), string(payers[1]), string(to),
			itoa(amounts[payers[0]]), itoa(amounts[payers[1]])}, nil
	default:
		return nil, fmt.Errorf("payment with %d payers not representable", len(payers))
	}
}

func itoa(a types.Amount) string { return strconv.FormatInt(int64(a), 10) }

// ReadTrace parses a CSV trace into a replayable Trace.
func ReadTrace(r io.Reader, balance types.Amount) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var txs []*types.Transaction
	nonce := uint64(0)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		nonce++
		tx, err := decodeTraceTx(rec, nonce)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", nonce, err)
		}
		txs = append(txs, tx)
	}
	if len(txs) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return NewTrace(txs, balance), nil
}

func decodeTraceTx(rec []string, nonce uint64) (*types.Transaction, error) {
	amount := func(s string) (types.Amount, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad amount %q", s)
		}
		return types.Amount(v), nil
	}
	switch rec[0] {
	case "payment":
		if len(rec) != 4 {
			return nil, fmt.Errorf("payment needs 4 fields, has %d", len(rec))
		}
		amt, err := amount(rec[3])
		if err != nil {
			return nil, err
		}
		return types.NewPayment(types.Key(rec[1]), types.Key(rec[2]), amt, nonce), nil
	case "multipay":
		if len(rec) != 6 {
			return nil, fmt.Errorf("multipay needs 6 fields, has %d", len(rec))
		}
		a1, err := amount(rec[4])
		if err != nil {
			return nil, err
		}
		a2, err := amount(rec[5])
		if err != nil {
			return nil, err
		}
		return types.NewMultiPayment(types.Key(rec[1]), []types.Transfer{
			{From: types.Key(rec[1]), To: types.Key(rec[3]), Amount: a1},
			{From: types.Key(rec[2]), To: types.Key(rec[3]), Amount: a2},
		}, nonce), nil
	case "contract":
		if len(rec) != 5 {
			return nil, fmt.Errorf("contract needs 5 fields, has %d", len(rec))
		}
		fee, err := amount(rec[3])
		if err != nil {
			return nil, err
		}
		val, err := amount(rec[4])
		if err != nil {
			return nil, err
		}
		return types.NewContractCall(types.Key(rec[1]), []types.Key{types.Key(rec[1])}, fee,
			[]types.Op{types.NewSharedAssign(types.Key(rec[2]), val)}, nonce), nil
	default:
		return nil, fmt.Errorf("unknown trace line kind %q", rec[0])
	}
}

// Export records the generator's next n transactions as a trace, so a
// synthetic workload can be frozen, shared and replayed bit-for-bit.
func (g *Generator) Export(w io.Writer, n int) error {
	return WriteTrace(w, g.Batch(n))
}
