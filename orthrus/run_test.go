package orthrus

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/orthrus/scenariodsl"
)

// smallOpts is a fast fault-free LAN configuration shared by the run tests.
func smallOpts() []Option {
	return []Option{
		WithReplicas(4), WithNet(LAN), WithLoad(500),
		WithDuration(2 * time.Second), WithWarmup(500 * time.Millisecond), WithDrain(2 * time.Second),
		WithBatching(64, 20*time.Millisecond), WithSeed(1),
	}
}

func TestRunConfirmsTransactions(t *testing.T) {
	res, err := Run(context.Background(), smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confirmed == 0 || res.ThroughputTPS == 0 {
		t.Fatalf("no progress: %s", res)
	}
	if res.Protocol != "Orthrus" || res.Net != "LAN" || res.Replicas != 4 {
		t.Fatalf("config echo wrong: %s", res)
	}
	if len(res.Windows) == 0 || len(res.Breakdown) != 5 {
		t.Fatalf("series/breakdown missing: windows=%d breakdown=%d", len(res.Windows), len(res.Breakdown))
	}
	if res.Halted {
		t.Fatal("fault-free run reported Halted")
	}
}

// TestRunMatchesInternalHarness pins the public API to the internal one:
// the same knobs must measure the same numbers.
func TestRunMatchesInternalHarness(t *testing.T) {
	res, err := Run(context.Background(), smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.Run(NewConfig(smallOpts()...).clusterConfig())
	if res.Confirmed != want.Confirmed || res.ThroughputTPS != want.ThroughputTPS ||
		res.Latency.Mean != want.Latency.Mean() || res.SimEvents != want.Events {
		t.Fatalf("public run diverged from internal run:\n  public   %v\n  internal %v", res, want)
	}
}

func TestObserverStreams(t *testing.T) {
	var confirms int
	var streamed []Window
	res, err := Run(context.Background(), append(smallOpts(),
		WithObserver(ObserverFuncs{
			Confirm: func(tx TxInfo, success bool, at time.Duration) {
				confirms++
				if tx.ID == "" || tx.Kind == "" {
					t.Errorf("empty TxInfo: %+v", tx)
				}
			},
			Window: func(w Window) {
				if w.Index != len(streamed) {
					t.Errorf("window %d arrived out of order (want %d)", w.Index, len(streamed))
				}
				streamed = append(streamed, w)
			},
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	if confirms != res.Latency.Count {
		t.Fatalf("OnConfirm fired %d times, result has %d confirmations", confirms, res.Latency.Count)
	}
	if len(streamed) < len(res.Windows) {
		t.Fatalf("streamed %d windows, result has %d", len(streamed), len(res.Windows))
	}
	// Streamed windows agree with the result's series; the stream may add
	// trailing empty windows past the last confirmation.
	for i, w := range streamed {
		if w.End-w.Start != 500*time.Millisecond {
			t.Fatalf("window %d width %v", i, w.End-w.Start)
		}
		if i < len(res.Windows) {
			if w != res.Windows[i] {
				t.Fatalf("streamed window %+v != result window %+v", w, res.Windows[i])
			}
		} else if w.Confirmed != 0 {
			t.Fatalf("trailing streamed window %+v not empty", w)
		}
	}
}

// TestObserverStreamsEveryClosedWindow pins the flush contract: with a run
// length that is not a 0.5 s multiple, every bin in Result.Windows —
// including the trailing partial one — reaches the observer, and the
// streamed confirmations sum to the run's confirmations.
func TestObserverStreamsEveryClosedWindow(t *testing.T) {
	var streamed []Window
	res, err := Run(context.Background(),
		WithReplicas(4), WithNet(LAN), WithLoad(500),
		WithDuration(2*time.Second), WithWarmup(500*time.Millisecond),
		WithDrain(2300*time.Millisecond), // runEnd at 4.3s: last bin is partial
		WithBatching(64, 20*time.Millisecond), WithSeed(1),
		WithObserver(ObserverFuncs{Window: func(w Window) { streamed = append(streamed, w) }}))
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) < len(res.Windows) {
		t.Fatalf("streamed %d windows, result has %d", len(streamed), len(res.Windows))
	}
	total := 0
	for _, w := range streamed {
		total += w.Confirmed
	}
	if total != res.Latency.Count {
		t.Fatalf("streamed windows sum to %d confirmations, run had %d", total, res.Latency.Count)
	}
}

func TestObserverPhases(t *testing.T) {
	scn := scenariodsl.New("phase-test").
		CrashAt(800*time.Millisecond, 3).
		RecoverAt(1600*time.Millisecond, 3).
		Build()
	var phases []Phase
	res, err := Run(context.Background(), append(smallOpts(),
		WithScenario(scn),
		WithObserver(ObserverFuncs{Phase: func(p Phase) { phases = append(phases, p) }}))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != len(res.Phases) {
		t.Fatalf("streamed %d phases, result has %d", len(phases), len(res.Phases))
	}
	if !reflect.DeepEqual(phases, res.Phases) {
		t.Fatalf("streamed phases diverge from result:\n  streamed %+v\n  result   %+v", phases, res.Phases)
	}
	if phases[0].Label != "baseline" || phases[1].Label != "crash" || phases[2].Label != "recover" {
		t.Fatalf("phase labels %v", phases)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, smallOpts()...); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var windows int
	res, err := Run(ctx, append(smallOpts(),
		WithObserver(ObserverFuncs{Window: func(w Window) {
			windows++
			if windows == 2 {
				cancel() // cancel from inside the run: stops at the next window poll
			}
		}}))...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if windows > 3 {
		t.Fatalf("run kept going after cancellation: %d windows", windows)
	}
	// The partial measurements survive alongside the error, and the
	// throughput is a rate over the elapsed window (halt at 1.5s with 0.5s
	// warmup → 1s), not the configured 1.5s one.
	if res == nil || !res.Halted {
		t.Fatalf("cancelled run must return the partial result with Halted set, got %+v", res)
	}
	if want := float64(res.Confirmed); res.ThroughputTPS != want {
		t.Fatalf("halted ThroughputTPS = %g, want %g (Confirmed over the 1s elapsed window)", res.ThroughputTPS, want)
	}
}

// TestRegisterPublicSeam registers a protocol through the public API only
// — no internal imports needed beyond what the SDK re-exports — and runs
// it end to end.
func TestRegisterPublicSeam(t *testing.T) {
	err := Register("Hydra", "dynamic ordering, no fast path", func() Mode {
		return Mode{
			Name:      "Hydra",
			NewGlobal: func(m int) GlobalOrdering { return DynamicOrdering(m) },
		}
	})
	if err != nil && !errors.Is(err, ErrDuplicateProtocol) {
		// Duplicate only if another test in this process registered it.
		t.Fatal(err)
	}
	if _, err := LookupProtocol("Hydra"); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), append(smallOpts(), WithProtocol("Hydra"))...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "Hydra" || res.Confirmed == 0 {
		t.Fatalf("registered protocol did not run: %s", res)
	}
	// Registering the same name again is the typed duplicate error.
	if err := Register("Hydra", "again", func() Mode { return Mode{} }); !errors.Is(err, ErrDuplicateProtocol) {
		t.Fatalf("want ErrDuplicateProtocol, got %v", err)
	}
}

func TestRunInvalidConfigDoesNotRun(t *testing.T) {
	if _, err := Run(context.Background(), WithReplicas(0)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("want ErrInvalidConfig, got %v", err)
	}
}

func TestRunManySerialMatchesParallel(t *testing.T) {
	cfgs := []Config{
		NewConfig(smallOpts()...),
		NewConfig(append(smallOpts(), WithProtocol("ISS"))...),
		NewConfig(append(smallOpts(), WithStragglers(1, 10))...),
	}
	serial, err := RunMany(context.Background(), cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMany(context.Background(), cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel RunMany results differ from serial")
	}
	if serial[1].Protocol != "ISS" {
		t.Fatalf("results out of order: %v", serial[1])
	}
}

func TestRunManyValidatesUpFront(t *testing.T) {
	cfgs := []Config{NewConfig(smallOpts()...), NewConfig(WithReplicas(-1))}
	_, err := RunMany(context.Background(), cfgs, 1)
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("want ErrInvalidConfig, got %v", err)
	}
}

func TestScriptedRunWithFinalState(t *testing.T) {
	pay := Payment("alice", "bob", 30, 1)
	call := ContractCall("bob", []string{"bob"}, 5, 2, SharedAssign("counter", 7))
	var confirmed []string
	res, err := Run(context.Background(),
		WithReplicas(4), WithNet(LAN), WithLoad(1),
		WithDuration(3*time.Second), WithDrain(3*time.Second),
		WithBatching(16, 20*time.Millisecond), WithSeed(1),
		WithGenesis(map[string]int64{"alice": 100, "bob": 50}),
		WithTransactions(pay, call),
		WithFinalState(),
		WithObserver(ObserverFuncs{Confirm: func(tx TxInfo, success bool, at time.Duration) {
			if success {
				confirmed = append(confirmed, tx.ID)
			}
		}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(confirmed) != 2 || confirmed[0] != pay.ID() || confirmed[1] != call.ID() {
		t.Fatalf("confirmations %v, want [%s %s]", confirmed, pay.ID(), call.ID())
	}
	if a, b, cnt := res.Balance("alice"), res.Balance("bob"), res.SharedValue("counter"); a != 70 || b != 75 || cnt != 7 {
		t.Fatalf("final state alice=%d bob=%d counter=%d", a, b, cnt)
	}
	if !res.Converged {
		t.Fatal("replicas did not converge")
	}
	if pay.Kind() != "payment" || call.Kind() != "contract" {
		t.Fatalf("kinds %s/%s", pay.Kind(), call.Kind())
	}
}

func TestTraceReplayRun(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSyntheticTrace(&buf, 200, 100, 2024); err != nil {
		t.Fatal(err)
	}
	frozen := buf.Bytes()
	replay := func(protocol string) *Result {
		res, err := Run(context.Background(),
			WithProtocol(protocol), WithReplicas(4), WithNet(LAN),
			WithTrace(bytes.NewReader(frozen), 1_000_000),
			WithLoad(400), WithDuration(2*time.Second), WithDrain(5*time.Second),
			WithBatching(64, 20*time.Millisecond), WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if got := replay("Orthrus").Latency.Count; got != 200 {
		t.Fatalf("replayed %d confirmations, want 200", got)
	}
	// The same frozen trace replays under a different protocol.
	if got := replay("ISS").Latency.Count; got != 200 {
		t.Fatalf("ISS replayed %d confirmations, want 200", got)
	}
}

// TestTraceConfigReusable is the shared-cursor regression: one Config
// built with WithTrace must reproduce exactly when run repeatedly and when
// listed multiple times in a parallel RunMany — the trace is cloned per
// run, cursor and all.
func TestTraceConfigReusable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSyntheticTrace(&buf, 100, 50, 7); err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(
		WithReplicas(4), WithNet(LAN),
		WithTrace(bytes.NewReader(buf.Bytes()), 1_000_000),
		WithLoad(200), WithDuration(2*time.Second), WithDrain(4*time.Second),
		WithBatching(64, 20*time.Millisecond), WithSeed(3))
	first, err := cfg.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := cfg.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same trace Config produced different results:\n  %v\n  %v", first, second)
	}
	many, err := RunMany(context.Background(), []Config{cfg, cfg}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(many[0], many[1]) || !reflect.DeepEqual(many[0], first) {
		t.Fatal("parallel runs of one trace Config diverged")
	}
}

// TestSharedTxAcrossConfigs is the shared-pointer regression: passing the
// same *Tx values to several configs of a parallel RunMany must be safe
// (each run submits its own clones) and reproducible.
func TestSharedTxAcrossConfigs(t *testing.T) {
	pay := Payment("alice", "bob", 30, 1)
	cfg := func(protocol string) Config {
		return NewConfig(
			WithProtocol(protocol), WithReplicas(4), WithNet(LAN),
			WithLoad(1), WithDuration(2*time.Second), WithDrain(2*time.Second),
			WithBatching(16, 20*time.Millisecond), WithSeed(1),
			WithGenesis(map[string]int64{"alice": 100}),
			WithTransactions(pay), WithFinalState())
	}
	cfgs := []Config{cfg("Orthrus"), cfg("ISS"), cfg("Ladon"), cfg("Orthrus")}
	res, err := RunMany(context.Background(), cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Latency.Count != 1 || r.Balance("bob") != 30 {
			t.Fatalf("run %d: confirmations=%d bob=%d", i, r.Latency.Count, r.Balance("bob"))
		}
	}
	if !reflect.DeepEqual(res[0], res[3]) {
		t.Fatal("identical configs sharing a Tx diverged")
	}
}
