package scenariodsl

import (
	"errors"
	"sort"
	"testing"
)

// FuzzScenarioDSL drives Parse with arbitrary input: it must never panic,
// every failure must wrap ErrInvalidConfig, and every success must yield
// a time-sorted scenario whose events survive Validate (against several
// cluster sizes) without panicking. The seed corpus lives under
// testdata/fuzz/FuzzScenarioDSL alongside the f.Add seeds below.
func FuzzScenarioDSL(f *testing.F) {
	f.Add("3s crash 5 6\n6s recover 5 6\n")
	f.Add("1s straggle x10 3\n4s load-surge x2.5\n")
	f.Add("5s partition 0 1 2 | 3 4\n8s heal\n")
	f.Add("# comment only\n\n")
	f.Add("1s crash 1\n1s crash 1\n1s heal\n")
	f.Add("999999h heal\n0s load-surge x100\n")
	f.Add("1s partition 0|1|2|3\n")
	f.Add("bogus line")
	f.Add("1s crash -1")
	f.Add("\x00\xff")
	f.Add("3s equivocate 2\n")
	f.Add("3s censor 3\n5s censor 3 4\n")
	f.Add("2s mute-leader 1 2 3\n0s mute-leader 5\n")
	f.Add("1s equivocate\n") // attack verbs need nodes: parse error
	f.Add("1s mute-leader x2\n")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse("fuzz", src)
		if err != nil {
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Parse error %v does not wrap ErrInvalidConfig", err)
			}
			return
		}
		if s == nil {
			t.Fatal("nil scenario without error")
		}
		if !sort.SliceIsSorted(s.Events, func(i, j int) bool {
			return s.Events[i].At < s.Events[j].At
		}) {
			t.Fatalf("events not time-sorted: %v", s.Events)
		}
		for _, e := range s.Events {
			if e.At < 0 {
				t.Fatalf("negative event time survived parsing: %v", e)
			}
		}
		// Validation against concrete cluster sizes must be a clean
		// error or success, never a panic — including n smaller than the
		// largest parsed node index.
		for _, n := range []int{1, 4, 7, 128} {
			_ = s.Validate(n)
		}
	})
}
