package scenariodsl_test

import (
	"fmt"
	"time"

	"repro/orthrus/scenariodsl"
)

// ExampleNew builds a composite timeline fluently; Build sorts events by
// time and the result is immutable.
func ExampleNew() {
	scn := scenariodsl.New("demo").
		CrashAt(3*time.Second, 5, 6).
		StraggleAt(1*time.Second, 10, 4).
		RecoverAt(6*time.Second, 5, 6).
		Build()
	fmt.Println(scn.Name)
	for _, e := range scn.Events {
		fmt.Println(e)
	}
	// Output:
	// demo
	// 1s straggle nodes=[4] x10
	// 3s crash nodes=[5 6]
	// 6s recover nodes=[5 6]
}

// ExamplePreset builds a named preset; equal arguments always yield the
// same timeline.
func ExamplePreset() {
	scn, err := scenariodsl.Preset("flash-crowd", 10, 10*time.Second, 42)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, e := range scn.Events {
		fmt.Println(e)
	}
	// Output:
	// 3.5s load-surge x3
	// 6.5s load-surge x1
}

// ExamplePresets lists the preset names with their descriptions.
func ExamplePresets() {
	for _, name := range scenariodsl.Presets() {
		fmt.Printf("%s: %s\n", name, scenariodsl.Describe(name))
	}
	// Output:
	// crash-recover: crash f replicas at 30% of the run, recover them at 60%
	// rolling-stragglers: walk one 10x straggler across three replicas, one per 20% window
	// partition-heal: isolate f replicas at 30% of the run, heal the cut at 60%
	// flash-crowd: triple the client submission rate between 35% and 65% of the run
}
