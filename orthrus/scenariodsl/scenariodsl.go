// Package scenariodsl is the public surface of the declarative fault/load
// scenario engine: named, seeded timelines of mid-run events — crashes
// that recover, partitions that heal, stragglers that come and go, load
// surges — built fluently and passed to a run with orthrus.WithScenario.
//
//	scn := scenariodsl.New("demo").
//		StraggleAt(1*time.Second, 10, 4).
//		CrashAt(3*time.Second, 5, 6).
//		RecoverAt(6*time.Second, 5, 6).
//		Build()
//
//	res, err := orthrus.Run(ctx,
//		orthrus.WithReplicas(7),
//		orthrus.WithScenario(scn),
//	)
//
// A Scenario is pure data: its events are compiled onto the seeded
// discrete-event simulator, so a given (scenario, seed, config) triple
// reproduces exactly, serial or parallel. Event times also delimit the
// per-phase measurement windows a run reports (orthrus.Result.Phases and
// the Observer's OnPhase callbacks).
//
// The types are aliases of the internal scenario engine's, so scenarios
// built here flow through the whole toolchain — cluster runs, the S1
// figure suite, and both CLIs — unchanged.
package scenariodsl

import (
	"time"

	"repro/internal/scenario"
)

// Scenario is a named, time-ordered fault/load timeline, immutable after
// Build. See New for construction and Preset for the named presets.
type Scenario = scenario.Scenario

// Builder assembles a Scenario fluently: CrashAt, RecoverAt, PartitionAt,
// HealAt, StraggleAt and LoadSurgeAt append events, Build finalizes.
type Builder = scenario.Builder

// Event is one timeline entry; its String renders compactly, e.g.
// "3s crash nodes=[5 6]".
type Event = scenario.Event

// Kind identifies what an Event does to the running cluster.
type Kind = scenario.Kind

// The event vocabulary: Crash/Recover act on replicas, Partition/Heal on
// links, Straggle rescales a node's egress delay and proposal pulse, and
// LoadSurge rescales the open-loop client submission rate. The last three
// are one-way Byzantine attacks — equivocating, censoring and silent
// leaders — ended by the protocol's own view changes, not by a timeline
// event.
const (
	Crash      = scenario.Crash
	Recover    = scenario.Recover
	Partition  = scenario.Partition
	Heal       = scenario.Heal
	Straggle   = scenario.Straggle
	LoadSurge  = scenario.LoadSurge
	Equivocate = scenario.Equivocate
	Censor     = scenario.Censor
	MuteLeader = scenario.MuteLeader
)

// New starts building a scenario with the given name; the name appears in
// run labels and the S1 figure's rows.
func New(name string) *Builder { return scenario.New(name) }

// Preset builds one of the named preset timelines (see Presets) for an
// n-replica cluster whose submission window is dur long. Victim replicas
// are drawn from an RNG seeded from seed — replica 0 always survives as
// the metrics observer — so the same (name, n, dur, seed) always yields
// the same timeline. Unknown names error, listing the presets.
func Preset(name string, n int, dur time.Duration, seed int64) (*Scenario, error) {
	return scenario.Preset(name, n, dur, seed)
}

// Presets returns the preset scenario names in S1 figure order:
// crash-recover, rolling-stragglers, partition-heal, flash-crowd.
func Presets() []string { return scenario.Names() }

// SoakChurnPreset is the long-horizon churn preset behind the F-soak
// figure: a rotating victim crashes every tenth of the run and recovers
// half a cycle later, eight cycles total. It builds through Preset like
// the S1 presets but is not part of Presets() — the soak harness (and
// anyone wanting continuous churn) selects it explicitly, usually with
// orthrus.WithStateTransfer so recovered replicas catch up.
const SoakChurnPreset = scenario.SoakChurn

// AttackPresets returns the Byzantine attack preset names in S2 figure
// order: equivocation, censorship, silent-leader, view-change-storm. They
// build through Preset exactly like the S1 presets.
func AttackPresets() []string { return scenario.AttackNames() }

// Describe returns a one-line description of a preset for listings;
// unknown names describe as the empty string.
func Describe(name string) string { return scenario.Describe(name) }
