package scenariodsl

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/errs"
)

// ErrInvalidConfig is the sentinel every Parse failure wraps; match with
// errors.Is. It is the same value as orthrus.ErrInvalidConfig, so one
// check covers scenario-DSL and configuration failures alike.
var ErrInvalidConfig = errs.ErrInvalidConfig

// Parse builds a scenario from its compact text form: one event per line,
//
//	<time> <kind> <operands...>
//
// where <time> is a Go duration (e.g. 3s, 500ms) and <kind> one of:
//
//	3s   crash 5 6              # stop replicas 5 and 6
//	6s   recover 5 6            # restart them
//	1s   straggle x10 3         # slow replica 3 by 10x (x1 heals)
//	4s   load-surge x2.5        # multiply the client load by 2.5
//	5s   partition 0 1 2 | 3 4  # cut groups apart ('|' separates groups)
//	8s   heal                   # remove every link cut
//	7s   equivocate 2           # replica 2 leads with conflicting proposals
//	7s   censor 3               # replica 3 drops all txs it should propose
//	7s   mute-leader 4 5        # replicas 4 and 5 go silent as leaders
//
// The attack verbs are one-way switches: the view-change machinery, not a
// later timeline event, ends an attack by rotating the victims out of
// their leader roles.
//
// Blank lines and '#' comments are ignored; events may appear in any
// order (the scenario sorts by time). Parse checks syntax only — node
// indices against a concrete cluster size are checked by the scenario's
// Validate, which runs before anything executes. Every parse failure
// wraps ErrInvalidConfig and pinpoints its line. The name names the
// scenario in run labels, like New.
func Parse(name, src string) (*Scenario, error) {
	b := New(name)
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, lineErr(ln, "want <time> <kind> [operands], got %q", strings.TrimSpace(line))
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, lineErr(ln, "bad event time %q: %v", fields[0], err)
		}
		if at < 0 {
			return nil, lineErr(ln, "negative event time %q", fields[0])
		}
		kind, args := fields[1], fields[2:]
		switch kind {
		case "crash", "recover":
			nodes, err := parseNodes(ln, kind, args)
			if err != nil {
				return nil, err
			}
			if kind == "crash" {
				b.CrashAt(at, nodes...)
			} else {
				b.RecoverAt(at, nodes...)
			}
		case "straggle":
			if len(args) == 0 {
				return nil, lineErr(ln, "straggle wants x<scale> and nodes")
			}
			scale, err := parseScale(ln, "straggle", args[0])
			if err != nil {
				return nil, err
			}
			nodes, err := parseNodes(ln, "straggle", args[1:])
			if err != nil {
				return nil, err
			}
			b.StraggleAt(at, scale, nodes...)
		case "load-surge":
			if len(args) != 1 {
				return nil, lineErr(ln, "load-surge wants exactly x<multiplier>")
			}
			mult, err := parseScale(ln, "load-surge", args[0])
			if err != nil {
				return nil, err
			}
			b.LoadSurgeAt(at, mult)
		case "partition":
			groups, err := parseGroups(ln, args)
			if err != nil {
				return nil, err
			}
			b.PartitionAt(at, groups...)
		case "heal":
			if len(args) != 0 {
				return nil, lineErr(ln, "heal takes no operands, got %v", args)
			}
			b.HealAt(at)
		case "equivocate", "censor", "mute-leader":
			nodes, err := parseNodes(ln, kind, args)
			if err != nil {
				return nil, err
			}
			switch kind {
			case "equivocate":
				b.EquivocateAt(at, nodes...)
			case "censor":
				b.CensorAt(at, nodes...)
			default:
				b.MuteLeaderAt(at, nodes...)
			}
		default:
			return nil, lineErr(ln, "unknown event kind %q (want crash, recover, straggle, load-surge, partition, heal, equivocate, censor or mute-leader)", kind)
		}
	}
	return b.Build(), nil
}

// lineErr wraps a parse failure with its 1-based line number and the
// ErrInvalidConfig sentinel.
func lineErr(ln int, format string, args ...any) error {
	return fmt.Errorf("%w: scenariodsl: line %d: %s", ErrInvalidConfig, ln+1, fmt.Sprintf(format, args...))
}

// parseNodes parses a non-empty list of non-negative replica indices.
func parseNodes(ln int, kind string, args []string) ([]int, error) {
	if len(args) == 0 {
		return nil, lineErr(ln, "%s names no nodes", kind)
	}
	nodes := make([]int, len(args))
	for i, a := range args {
		id, err := strconv.Atoi(a)
		if err != nil || id < 0 {
			return nil, lineErr(ln, "%s: bad node index %q", kind, a)
		}
		nodes[i] = id
	}
	return nodes, nil
}

// parseScale parses an x-prefixed positive factor like x10 or x2.5.
func parseScale(ln int, kind, arg string) (float64, error) {
	num, ok := strings.CutPrefix(arg, "x")
	if !ok {
		return 0, lineErr(ln, "%s: want x<factor>, got %q", kind, arg)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v <= 0 {
		return 0, lineErr(ln, "%s: bad factor %q", kind, arg)
	}
	return v, nil
}

// parseGroups splits partition operands on '|' into node groups. The
// separator may be its own token or glued to a neighbor (0 1| 2). At
// least one group with at least one node is required.
func parseGroups(ln int, args []string) ([][]int, error) {
	if len(args) == 0 {
		return nil, lineErr(ln, "partition names no groups")
	}
	var groups [][]int
	cur := []int{}
	flush := func() {
		groups = append(groups, cur)
		cur = []int{}
	}
	for _, a := range args {
		parts := strings.Split(a, "|")
		for i, p := range parts {
			if i > 0 {
				flush()
			}
			if p == "" {
				continue
			}
			id, err := strconv.Atoi(p)
			if err != nil || id < 0 {
				return nil, lineErr(ln, "partition: bad node index %q", p)
			}
			cur = append(cur, id)
		}
	}
	flush()
	for _, g := range groups {
		if len(g) == 0 {
			return nil, lineErr(ln, "partition: empty group")
		}
	}
	return groups, nil
}
