package scenariodsl

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseFullVocabulary(t *testing.T) {
	src := `
# a composite timeline
1s    straggle x10 3
3s    crash 5 6          # trailing comment
5s    partition 0 1 2 | 3 4
6s    recover 5 6
6500ms load-surge x2.5
8s    heal
9s    equivocate 2
10s   censor 3
11s   mute-leader 4 5
`
	s, err := Parse("demo", src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" {
		t.Fatalf("name = %q", s.Name)
	}
	wantKinds := []Kind{Straggle, Crash, Partition, Recover, LoadSurge, Heal, Equivocate, Censor, MuteLeader}
	if len(s.Events) != len(wantKinds) {
		t.Fatalf("parsed %d events, want %d: %v", len(s.Events), len(wantKinds), s.Events)
	}
	for i, e := range s.Events {
		if e.Kind != wantKinds[i] {
			t.Fatalf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
	}
	if got := s.Events[4].At; got != 6500*time.Millisecond {
		t.Fatalf("load-surge at %v", got)
	}
	if got := s.Events[2].Groups; len(got) != 2 || len(got[0]) != 3 || len(got[1]) != 2 {
		t.Fatalf("partition groups = %v", got)
	}
	if err := s.Validate(7); err != nil {
		t.Fatalf("parsed scenario failed Validate(7): %v", err)
	}
}

func TestParseSortsByTime(t *testing.T) {
	s, err := Parse("order", "5s heal\n1s crash 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Events[0].Kind != Crash || s.Events[1].Kind != Heal {
		t.Fatalf("events not sorted by time: %v", s.Events)
	}
}

func TestParseGluedPartitionSeparators(t *testing.T) {
	for _, src := range []string{
		"2s partition 0 1|2 3",
		"2s partition 0 1 |2 3",
		"2s partition 0 1| 2 3",
	} {
		s, err := Parse("p", src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if g := s.Events[0].Groups; len(g) != 2 || len(g[0]) != 2 || len(g[1]) != 2 {
			t.Fatalf("%q: groups = %v", src, g)
		}
	}
}

func TestParseErrorsAreTyped(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of the error
	}{
		{"bogus", "want <time> <kind>"},
		{"1s explode 3", "unknown event kind"},
		{"xyz crash 1", "bad event time"},
		{"-1s crash 1", "negative event time"},
		{"1s crash", "names no nodes"},
		{"1s crash -2", "bad node index"},
		{"1s crash 1.5", "bad node index"},
		{"1s straggle 3", "want x<factor>"},
		{"1s straggle x0 3", "bad factor"},
		{"1s straggle x10", "names no nodes"},
		{"1s load-surge", "exactly x<multiplier>"},
		{"1s load-surge x2 x3", "exactly x<multiplier>"},
		{"1s heal 3", "takes no operands"},
		{"1s partition", "names no groups"},
		{"1s partition 0 1 |", "empty group"},
		{"1s partition a b", "bad node index"},
		{"1s equivocate", "names no nodes"},
		{"1s censor -2", "bad node index"},
		{"1s mute-leader x2", "bad node index"},
	}
	for _, c := range cases {
		_, err := Parse("bad", c.src)
		if err == nil {
			t.Fatalf("Parse(%q): expected error", c.src)
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("Parse(%q): error %v does not wrap ErrInvalidConfig", c.src, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("Parse(%q) = %v, want substring %q", c.src, err, c.want)
		}
		if !strings.Contains(err.Error(), "line 1") {
			t.Fatalf("Parse(%q) = %v, missing line number", c.src, err)
		}
	}
}

func TestParseEmptyIsEmptyScenario(t *testing.T) {
	s, err := Parse("empty", "\n# nothing but comments\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 0 {
		t.Fatalf("events = %v", s.Events)
	}
}
