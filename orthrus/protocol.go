package orthrus

import (
	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/registry"

	// The comparison protocols register themselves at init time; importing
	// them here guarantees every SDK user sees the full panel.
	_ "repro/internal/baseline"
)

// Mode describes a protocol to the replica framework: how the global log
// is built (NewGlobal), whether payments bypass it (FastPathPayments),
// how multi-payer transactions are assigned (SplitMultiPayer), and how
// the system reacts to leader failure (the epoch/view-change flags). Most
// SDK callers never construct one — they pick protocols by name — but a
// new protocol composes a Mode from the ordering building blocks below
// (PredeterminedOrdering, DynamicOrdering, or a custom GlobalOrdering
// implementation) and registers its constructor with Register:
//
//	orthrus.Register("Hydra", "dynamic ordering, no fast path", func() orthrus.Mode {
//		return orthrus.Mode{
//			Name:      "Hydra",
//			NewGlobal: func(m int) orthrus.GlobalOrdering { return orthrus.DynamicOrdering(m) },
//		}
//	})
type Mode = core.Mode

// GlobalOrdering merges the blocks delivered by the m worker instances
// into the globally confirmed sequence; implementations must be
// deterministic functions of the local delivery sequence. The two
// orderings the paper's protocols use are PredeterminedOrdering and
// DynamicOrdering.
type GlobalOrdering = core.GlobalOrdering

// PredeterminedOrdering returns the fixed round-robin global ordering
// over m instances (ISS/Mir/RCC style: instance i's k-th block occupies a
// position known in advance).
func PredeterminedOrdering(m int) GlobalOrdering {
	return core.WorkerOrdering{Ord: order.NewPredetermined(m)}
}

// DynamicOrdering returns the rank-based dynamic global ordering over m
// instances (Ladon/Orthrus style: positions follow delivery ranks, so
// slow instances do not block fast ones).
func DynamicOrdering(m int) GlobalOrdering {
	return core.WorkerOrdering{Ord: order.NewDynamic(m)}
}

// Protocol describes one registered protocol for listings and lookups.
type Protocol struct {
	name        string
	description string
}

// Name returns the protocol's registered name, as printed in figures and
// accepted by WithProtocol (case-sensitive).
func (p Protocol) Name() string { return p.name }

// Description returns the protocol's one-line description.
func (p Protocol) Description() string { return p.description }

// Sentinel errors of the protocol registry; returned errors wrap these, so
// match with errors.Is.
var (
	// ErrDuplicateProtocol reports a Register call whose name is taken.
	ErrDuplicateProtocol = registry.ErrDuplicate
	// ErrUnknownProtocol reports a lookup of a name nobody registered.
	ErrUnknownProtocol = registry.ErrUnknown
)

// Register adds a protocol to the shared registry under the given name.
// Every sweep, scenario suite, example and CLI flag resolves protocols
// through the registry, so a registered protocol plugs into all of them
// without touching the cluster or experiments layers. The constructor is
// invoked once per run and must return a fresh Mode each call. Empty
// names, nil constructors and duplicate names (ErrDuplicateProtocol) are
// rejected.
func Register(name, description string, mode func() Mode) error {
	return registry.Register(registry.Protocol{Name: name, Description: description, New: mode})
}

// Protocols lists every registered protocol in registration order —
// Orthrus first, then the paper's baselines (ISS, RCC, Mir, DQBFT, Ladon),
// then anything registered later.
func Protocols() []Protocol {
	ps := registry.All()
	out := make([]Protocol, len(ps))
	for i, p := range ps {
		out[i] = Protocol{name: p.Name, description: p.Description}
	}
	return out
}

// ProtocolNames lists the registered protocol names in registration order.
func ProtocolNames() []string { return registry.Names() }

// LookupProtocol resolves a protocol by name; the error wraps
// ErrUnknownProtocol and names the registered protocols.
func LookupProtocol(name string) (Protocol, error) {
	p, err := registry.Lookup(name)
	if err != nil {
		return Protocol{}, err
	}
	return Protocol{name: p.Name, description: p.Description}, nil
}
