package orthrus

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/orthrus/scenariodsl"
)

// corpusDir is FuzzScenarioDSL's checked-in seed corpus: every file is a
// go-fuzz v1 entry holding one DSL source string, including deliberately
// malformed ones.
const corpusDir = "scenariodsl/testdata/fuzz/FuzzScenarioDSL"

// decodeCorpusEntry extracts the fuzzed source string from a go-fuzz v1
// corpus file ("go test fuzz v1\nstring(<quoted>)\n").
func decodeCorpusEntry(t *testing.T, path string) (string, bool) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(raw), "\n", 3)
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		t.Fatalf("%s: not a go-fuzz v1 corpus entry", path)
	}
	body := strings.TrimSpace(lines[1])
	if !strings.HasPrefix(body, "string(") || !strings.HasSuffix(body, ")") {
		return "", false // non-string corpus entry; nothing to replay
	}
	src, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(body, "string("), ")"))
	if err != nil {
		t.Fatalf("%s: bad quoted literal: %v", path, err)
	}
	return src, true
}

// TestKernelScenarioCorpusDifferential replays every parseable
// FuzzScenarioDSL seed as a full cluster run under the serial and the
// parallel kernel and requires bit-identical Results. The fuzz target
// proves Parse never panics; this test proves the *timelines* the corpus
// encodes — crashes, recoveries, partitions, heals, stragglers, attack
// verbs, duplicate and zero-time events — cannot drive the two kernels
// apart. Entries the SDK rejects (unknown nodes for this cluster size,
// or straggle factors below 1, which the parallel kernel refuses) are
// skipped with a note rather than failed: the corpus exists to exercise
// edge cases, not to stay runnable forever.
func TestKernelScenarioCorpusDifferential(t *testing.T) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("empty fuzz corpus at %s", corpusDir)
	}
	dur := 3 * time.Second
	budget := len(names)
	if testing.Short() {
		// The race-stress CI matrix runs this at three GOMAXPROCS
		// settings; a trimmed window and corpus keep each leg cheap.
		dur, budget = 2*time.Second, 3
	}
	ran := 0
	for _, name := range names {
		if ran >= budget {
			break
		}
		src, ok := decodeCorpusEntry(t, filepath.Join(corpusDir, name))
		if !ok {
			continue
		}
		s, err := scenariodsl.Parse(name, src)
		if err != nil {
			continue // the corpus keeps parse-error seeds on purpose
		}
		// Seven replicas cover the highest node index the seed corpus
		// references; the window spans most event times, and the NIC is
		// off because the parallel kernel requires it.
		opts := []Option{
			WithReplicas(7), WithNet(LAN), WithLoad(400),
			WithDuration(dur), WithWarmup(500 * time.Millisecond), WithDrain(dur),
			WithBatching(64, 20*time.Millisecond), WithSeed(1),
			WithNIC(false), WithScenario(s),
		}
		serial, err := Run(context.Background(), opts...)
		if errors.Is(err, ErrInvalidConfig) {
			t.Logf("%s: skipped, rejected by Validate: %v", name, err)
			continue
		}
		if err != nil {
			t.Fatalf("%s: serial run failed: %v", name, err)
		}
		parallel, err := Run(context.Background(),
			append(opts, WithKernel(KernelParallel), WithWorkers(2))...)
		if errors.Is(err, ErrInvalidConfig) {
			t.Logf("%s: skipped, parallel kernel rejects this timeline: %v", name, err)
			continue
		}
		if err != nil {
			t.Fatalf("%s: parallel run failed: %v", name, err)
		}
		if parallel.Kernel != "parallel" || parallel.Shards < 2 {
			t.Fatalf("%s: parallel run did not shard: kernel=%q shards=%d", name, parallel.Kernel, parallel.Shards)
		}
		serial.Kernel, serial.Shards = parallel.Kernel, parallel.Shards
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("%s: kernels diverged on corpus timeline:\n  source   %q\n  serial   %v\n  parallel %v",
				name, src, serial, parallel)
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("no corpus entry survived to a differential run; the corpus or the skips are broken")
	}
}
