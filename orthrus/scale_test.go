package orthrus

import (
	"errors"
	"testing"

	"repro/internal/pbft"
)

// TestClusterSizeValidation pins the SDK's large-n contract: sizes in
// [1, MaxReplicas] validate, anything outside is an ErrInvalidConfig
// naming the Replicas field, and WithClusterSize is WithReplicas.
func TestClusterSizeValidation(t *testing.T) {
	for _, n := range []int{1, 4, 100, MaxReplicas} {
		cfg := NewConfig(WithClusterSize(n))
		if err := cfg.Validate(); err != nil {
			t.Fatalf("WithClusterSize(%d): %v", n, err)
		}
		if cfg.Replicas != n {
			t.Fatalf("WithClusterSize(%d) set Replicas = %d", n, cfg.Replicas)
		}
	}
	for _, n := range []int{0, -3, MaxReplicas + 1, 100000} {
		err := NewConfig(WithClusterSize(n)).Validate()
		if err == nil {
			t.Fatalf("WithClusterSize(%d): expected validation error", n)
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("WithClusterSize(%d): %v does not wrap ErrInvalidConfig", n, err)
		}
		var ve *ValidationError
		if !errors.As(err, &ve) || ve.Field != "Replicas" {
			t.Fatalf("WithClusterSize(%d): error %v does not name Replicas", n, err)
		}
	}
}

// TestQuorumMathPerProtocol checks, for every registered protocol and
// every F-scale cluster size, that a validated configuration lowers onto
// engines whose quorum intersects honestly: q = ceil((n+f+1)/2) with
// f = (n-1)/3 (the SDK shares one engine config across protocols; the
// engine-level sweep lives in internal/pbft).
func TestQuorumMathPerProtocol(t *testing.T) {
	for _, p := range Protocols() {
		for _, n := range []int{4, 10, 25, 50, 100, MaxReplicas} {
			if err := NewConfig(WithProtocol(p.Name()), WithClusterSize(n)).Validate(); err != nil {
				t.Fatalf("%s n=%d rejected: %v", p.Name(), n, err)
			}
			f := (n - 1) / 3
			q := pbft.Config{N: n, F: f}.Quorum()
			if 2*q-n <= f {
				t.Fatalf("%s n=%d: quorum %d intersection not honest", p.Name(), n, q)
			}
			if q > n-f {
				t.Fatalf("%s n=%d: quorum %d unreachable under f faults", p.Name(), n, q)
			}
		}
	}
}
