package orthrus

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/types"
)

// Latency summarizes the client-observed latency distribution of a run:
// submission to the (f+1)-th replica reply, including the reply's network
// delay.
type Latency struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// String renders the summary compactly.
func (l Latency) String() string {
	return fmt.Sprintf("mean=%.2fs p50=%.2fs p99=%.2fs max=%.2fs n=%d",
		l.Mean.Seconds(), l.P50.Seconds(), l.P99.Seconds(), l.Max.Seconds(), l.Count)
}

// StageLatency is one stage of the five-stage latency breakdown (Fig. 6),
// measured at the observer replica.
type StageLatency struct {
	Stage string
	Mean  time.Duration
}

// Result aggregates one run's measurements. Runs are deterministic: the
// same Config (including Seed) always produces the same Result.
type Result struct {
	// Protocol, Net and Replicas echo the configuration that ran.
	Protocol string
	Net      string
	Replicas int

	// Submitted counts submissions; Confirmed counts client-visible
	// confirmations inside the measured window (warmup excluded); Aborted
	// counts transactions confirmed unsuccessfully.
	Submitted int
	Confirmed int
	Aborted   int

	// ThroughputTPS is Confirmed over the measured window length.
	ThroughputTPS float64
	// Latency is the client-observed latency distribution.
	Latency Latency
	// Windows bins confirmations over 0.5 s intervals (Fig. 7's series).
	Windows []Window
	// Breakdown is the observer replica's five-stage latency split, in
	// stage order (Fig. 6).
	Breakdown []StageLatency
	// Phases holds the scenario-delimited measurement windows when the run
	// had a Scenario, nil otherwise.
	Phases []Phase

	// ViewChanges counts view changes seen by the observer replica, and
	// SimEvents the discrete-event simulator's processed events (a cost
	// measure; observers and cancellable contexts add bookkeeping events).
	ViewChanges int
	SimEvents   uint64

	// Kernel names the discrete-event engine that executed the run
	// ("serial" or "parallel"), and Shards the number of replica shards
	// the parallel kernel used (0 under the serial kernel — including
	// when a parallel request fell back because the cluster was too small
	// to shard). Results never differ across kernels.
	Kernel string
	Shards int

	// LiveSetSamples holds the periodic retained-state censuses when the
	// run sampled them (WithLiveSetSampling), nil otherwise, and
	// LiveSetPeak the largest sampled Total — the soak harness's
	// bounded-memory signal.
	LiveSetSamples []LiveSetSample
	LiveSetPeak    int

	// StateTransferApplied counts blocks applied through the checkpoint-
	// anchored catch-up protocol rather than live SB delivery, summed
	// across replicas — always 0 unless the run enabled WithStateTransfer
	// and some replica actually had a gap to repair.
	StateTransferApplied uint64

	// Halted reports the run was stopped early by context cancellation;
	// the measurements cover only the virtual time before the stop.
	Halted bool
	// Converged reports whether every replica's final ledger snapshot
	// agreed (only computed under WithFinalState).
	Converged bool

	state *ledger.Store
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%-8s %s n=%-3d tput=%8.1f tps  lat(%s)  confirmed=%d aborted=%d vc=%d",
		r.Protocol, r.Net, r.Replicas, r.ThroughputTPS, r.Latency.String(), r.Confirmed, r.Aborted, r.ViewChanges)
}

// Balance returns an account's final balance at the observer replica.
// It requires WithFinalState; without it every account reads as 0.
func (r *Result) Balance(account string) int64 {
	if r.state == nil {
		return 0
	}
	return int64(r.state.Balance(types.Key(account)))
}

// SharedValue returns a shared record's final value at the observer
// replica. It requires WithFinalState; without it every record reads as 0.
func (r *Result) SharedValue(key string) int64 {
	if r.state == nil {
		return 0
	}
	return int64(r.state.SharedValue(types.Key(key)))
}

// EscrowsOutstanding returns the number of escrow entries still open at
// the observer replica when the run ended — 0 means no funds were left
// stuck by aborted multi-payer transactions. It requires WithFinalState.
func (r *Result) EscrowsOutstanding() int {
	if r.state == nil {
		return 0
	}
	return r.state.EscrowCount()
}

// LiveSetSample is one cluster-wide retained-state census: the state
// categories checkpoint GC is responsible for bounding, summed across
// replicas, plus the scheduler's pending event count, at one instant of
// virtual time since run start.
type LiveSetSample struct {
	At        time.Duration // virtual time of the census
	Events    int           // scheduler events pending
	Trackers  int           // transaction trackers retained
	Slots     int           // in-flight pbft slots
	ExecQ     int           // delivered blocks awaiting escrow
	GlogQ     int           // confirmed blocks awaiting execution
	Escrows   int           // live escrow-log entries
	Archive   int           // state-transfer archive blocks
	Retained  int           // blocks retained for NewView repair
	CkptVotes int           // live checkpoint votes
	Total     int           // all of the above
}

// fromCluster projects an internal run result onto the public surface.
func fromCluster(res *cluster.Result) *Result {
	out := &Result{
		Protocol:      res.Protocol,
		Net:           res.Net,
		Replicas:      res.N,
		Submitted:     res.Submitted,
		Confirmed:     res.Confirmed,
		Aborted:       res.Aborted,
		ThroughputTPS: res.ThroughputTPS,
		Latency: Latency{
			Count: res.Latency.Count(),
			Mean:  res.Latency.Mean(),
			P50:   res.Latency.Percentile(50),
			P99:   res.Latency.Percentile(99),
			Max:   res.Latency.Max(),
		},
		ViewChanges: res.ViewChanges,
		SimEvents:   res.Events,
		Kernel:      res.Kernel,
		Shards:      res.Shards,
		Halted:      res.Halted,
		Converged:   res.Converged,
		state:       res.State,
	}
	for i := 0; i < res.Series.Bins(); i++ {
		out.Windows = append(out.Windows, Window{
			Index:         i,
			Start:         time.Duration(i) * res.Series.Bin,
			End:           time.Duration(i+1) * res.Series.Bin,
			Confirmed:     res.Series.Count(i),
			ThroughputTPS: res.Series.Throughput(i),
			MeanLatency:   res.Series.MeanLatency(i),
		})
	}
	for _, s := range metrics.Stages() {
		out.Breakdown = append(out.Breakdown, StageLatency{Stage: s.String(), Mean: res.Breakdown.Mean(s)})
	}
	for _, p := range res.Phases {
		out.Phases = append(out.Phases, Phase(p))
	}
	for _, s := range res.LiveSetSamples {
		out.LiveSetSamples = append(out.LiveSetSamples, LiveSetSample(s))
	}
	out.LiveSetPeak = res.LiveSetPeak
	out.StateTransferApplied = res.StateTransferApplied
	return out
}
