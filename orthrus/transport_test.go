package orthrus

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/orthrus/scenariodsl"
)

// mustPreset builds a scenario preset for validation tests.
func mustPreset(t *testing.T, name string) *scenariodsl.Scenario {
	t.Helper()
	s, err := scenariodsl.Preset(name, 10, 20*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWithTransportValidation pins the real backend's option gate: every
// simulation-only knob is rejected with ErrInvalidConfig before anything
// runs.
func TestWithTransportValidation(t *testing.T) {
	bad := map[string][]Option{
		"analytic":  {WithTransport(TransportProc), WithAnalyticSB()},
		"scenario":  {WithTransport(TransportProc), WithScenario(mustPreset(t, "crash-recover"))},
		"straggler": {WithTransport(TransportProc), WithStragglers(1, 10)},
		"crash":     {WithTransport(TransportProc), WithFaults(1, time.Second)},
		"byzantine": {WithTransport(TransportProc), WithByzantine(1)},
		"parallel":  {WithTransport(TransportProc), WithKernel(KernelParallel), WithNIC(false)},
		"range":     {func(c *Config) { c.Transport = Transport(99) }},
	}
	for name, opts := range bad {
		opts := opts
		t.Run(name, func(t *testing.T) {
			err := NewConfig(opts...).Validate()
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("Validate() = %v, want ErrInvalidConfig", err)
			}
		})
	}
	if err := NewConfig(WithTransport(TransportProc)).Validate(); err != nil {
		t.Fatalf("plain TransportProc config rejected: %v", err)
	}
	if got := TransportProc.String(); got != "proc" {
		t.Fatalf("TransportProc.String() = %q", got)
	}
	if got := TransportSim.String(); got != "sim" {
		t.Fatalf("TransportSim.String() = %q", got)
	}
}

// TestRunMany_RejectsRealTransport pins that wall-clock measurement runs
// cannot be fanned out over the worker pool they would contend with.
func TestRunMany_RejectsRealTransport(t *testing.T) {
	cfgs := []Config{NewConfig(), NewConfig(WithTransport(TransportProc))}
	if _, err := RunMany(context.Background(), cfgs, 0); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("RunMany = %v, want ErrInvalidConfig", err)
	}
}

// TestRunRealTransport drives a short cluster over the in-process real
// transport through the public SDK and checks the Result carries real
// measurements.
func TestRunRealTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run; skipped under -short")
	}
	res, err := Run(context.Background(),
		WithTransport(TransportProc),
		WithReplicas(4),
		WithNet(LAN),
		WithLoad(300),
		WithDuration(time.Second),
		WithWarmup(250*time.Millisecond),
		WithDrain(8*time.Second),
		WithBatching(4096, 50*time.Millisecond),
		WithAccounts(64),
		WithPayments(1),
		WithFinalState(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "real" {
		t.Fatalf("Kernel = %q, want \"real\"", res.Kernel)
	}
	if res.Confirmed == 0 || res.ThroughputTPS <= 0 {
		t.Fatalf("no progress: confirmed=%d tput=%g", res.Confirmed, res.ThroughputTPS)
	}
	if res.Latency.Mean <= 0 {
		t.Fatalf("latency not measured: %+v", res.Latency)
	}
	if !res.Converged {
		t.Fatal("replica states diverged")
	}
}
