package orthrus

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

func TestFiguresMatchFigureIDs(t *testing.T) {
	figs := Figures()
	ids := FigureIDs()
	if len(figs) != len(ids) {
		t.Fatalf("Figures() has %d entries, FigureIDs() %d", len(figs), len(ids))
	}
	for i, f := range figs {
		if f.ID != ids[i] {
			t.Fatalf("Figures()[%d].ID = %q, FigureIDs()[%d] = %q", i, f.ID, i, ids[i])
		}
		if f.Title == "" {
			t.Fatalf("figure %q has no title", f.ID)
		}
	}
}

func TestScenarioPresetsNonEmpty(t *testing.T) {
	if len(ScenarioPresets()) == 0 {
		t.Fatal("no scenario presets")
	}
}

func TestRunFiguresRejectsUnknown(t *testing.T) {
	if _, err := RunFigures(context.Background(), []string{"nope"}, FigureOptions{}); err == nil {
		t.Fatal("unknown figure id accepted")
	}
	if _, err := RunFigures(context.Background(), []string{"S1"}, FigureOptions{Scenarios: []string{"nope"}}); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}

func TestRunFiguresRejectsBadScale(t *testing.T) {
	for _, scale := range []float64{-0.5, 1.5} {
		_, err := RunFigures(context.Background(), []string{"1b"}, FigureOptions{Scale: scale})
		if !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("scale %g: want ErrInvalidConfig, got %v", scale, err)
		}
	}
}

func TestRunFiguresCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunFigures(ctx, []string{"1b"}, FigureOptions{}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// TestRunFiguresSerialMatchesParallel pins the acceptance property on the
// public path: serial and parallel figure artifacts are byte-identical.
func TestRunFiguresSerialMatchesParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs miniature clusters")
	}
	run := func(workers int) []byte {
		res, err := RunFigures(context.Background(), []string{"6"}, FigureOptions{Workers: workers, Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial, parallel := run(1), run(0)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and parallel artifacts differ:\n%s\n%s", serial, parallel)
	}
}
