package orthrus_test

import (
	"context"
	"fmt"
	"time"

	"repro/orthrus"
	"repro/orthrus/scenariodsl"
)

// Example runs the canonical SDK snippet: a 4-replica Orthrus cluster on a
// simulated LAN executing two scripted transactions, with final balances
// read back from the observer replica.
func Example() {
	res, err := orthrus.Run(context.Background(),
		orthrus.WithReplicas(4),
		orthrus.WithNet(orthrus.LAN),
		orthrus.WithLoad(1), // one scripted transaction per second
		orthrus.WithDuration(3*time.Second),
		orthrus.WithDrain(3*time.Second),
		orthrus.WithBatching(16, 20*time.Millisecond),
		orthrus.WithSeed(1),
		orthrus.WithGenesis(map[string]int64{"alice": 100, "bob": 50}),
		orthrus.WithTransactions(
			orthrus.Payment("alice", "bob", 30, 1),
			orthrus.ContractCall("bob", []string{"bob"}, 5, 2, orthrus.SharedAssign("counter", 7)),
		),
		orthrus.WithFinalState(),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("confirmed %d of %d transactions\n", res.Latency.Count, res.Submitted)
	fmt.Printf("alice=%d bob=%d counter=%d converged=%v\n",
		res.Balance("alice"), res.Balance("bob"), res.SharedValue("counter"), res.Converged)
	// Output:
	// confirmed 2 of 2 transactions
	// alice=70 bob=75 counter=7 converged=true
}

// ExampleProtocols lists the registered protocol panel (the first six are
// always the compiled-in ones; orthrus.Register appends after them).
func ExampleProtocols() {
	for _, p := range orthrus.Protocols()[:6] {
		fmt.Println(p.Name())
	}
	// Output:
	// Orthrus
	// ISS
	// RCC
	// Mir
	// DQBFT
	// Ladon
}

// ExampleConfig_Validate shows typed validation errors: nothing runs, the
// error wraps ErrInvalidConfig, and every problem is reported.
func ExampleConfig_Validate() {
	cfg := orthrus.NewConfig(
		orthrus.WithReplicas(4),
		orthrus.WithStragglers(9, 10),
	)
	fmt.Println(cfg.Validate())
	// Output:
	// orthrus: invalid configuration: orthrus: invalid Stragglers: 9 stragglers exceed 4 replicas
}

// ExampleWithScenario attaches a dynamic fault timeline and streams the
// per-phase windows as they close.
func ExampleWithScenario() {
	scn := scenariodsl.New("demo").
		CrashAt(800*time.Millisecond, 3).
		RecoverAt(1600*time.Millisecond, 3).
		Build()
	_, err := orthrus.Run(context.Background(),
		orthrus.WithReplicas(4),
		orthrus.WithNet(orthrus.LAN),
		orthrus.WithLoad(500),
		orthrus.WithDuration(2*time.Second),
		orthrus.WithDrain(2*time.Second),
		orthrus.WithBatching(64, 20*time.Millisecond),
		orthrus.WithScenario(scn),
		orthrus.WithObserver(orthrus.ObserverFuncs{
			Phase: func(p orthrus.Phase) { fmt.Println(p.Label) },
		}),
	)
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// baseline
	// crash
	// recover
}
